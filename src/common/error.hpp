#pragma once
// Error handling used throughout NDFT.
//
// Configuration and usage errors throw NdftError (these are programmer or
// user mistakes: invalid machine configuration, out-of-range kernel
// parameters, ...). Internal invariants use NDFT_ASSERT which also throws so
// that tests can verify violations without death tests.

#include <stdexcept>
#include <string>

namespace ndft {

/// Exception type for all NDFT configuration and usage errors.
class NdftError : public std::runtime_error {
 public:
  explicit NdftError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

}  // namespace ndft

/// Checks an invariant; throws ndft::NdftError with location info on failure.
/// Enabled in all build types: the simulator is a research tool where silent
/// state corruption is far more expensive than the check.
#define NDFT_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::ndft::detail::assert_fail(#expr, __FILE__, __LINE__, "");          \
    }                                                                      \
  } while (false)

/// NDFT_ASSERT with an explanatory message appended to the exception text.
#define NDFT_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::ndft::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));       \
    }                                                                      \
  } while (false)

/// Validates a user-facing precondition; throws ndft::NdftError on failure.
#define NDFT_REQUIRE(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      throw ::ndft::NdftError(std::string("requirement failed: ") + (msg)); \
    }                                                                      \
  } while (false)
