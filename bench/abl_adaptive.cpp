// Ablation A5: static vs profile-guided scheduling. The SCA is fed a
// deliberately wrong machine profile (it believes the host CPU has
// HBM-class bandwidth), which makes the static plan keep memory-bound
// kernels on the CPU. The adaptive scheduler measures one iteration on
// each side and re-plans, recovering most of the regret.

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"
#include "runtime/adaptive.hpp"

using namespace ndft;

int main() {
  std::printf("Ablation A5: static (misprofiled) vs adaptive scheduling, "
              "Si_256\n\n");
  const core::NdftSystem truth;  // correctly profiled system
  const dft::Workload workload = truth.workload_for(256);

  // A system whose SCA wrongly believes the CPU side has 2 TB/s of DRAM
  // bandwidth (e.g. a stale machine description).
  core::SystemConfig wrong_config = core::SystemConfig::paper_default();
  wrong_config.cpu_profile.dram_gbps = 2000.0;
  const core::NdftSystem misprofiled(wrong_config);

  const runtime::ExecutionPlan oracle_plan = truth.plan(workload);
  const runtime::ExecutionPlan static_plan = misprofiled.plan(workload);

  const core::RunReport oracle = truth.run_planned(workload, oracle_plan);
  const core::RunReport static_run =
      truth.run_planned(workload, static_plan);

  // Adaptive pass: measure every kernel on both sides once (one all-NDP
  // probe iteration plus the static iteration), then re-plan.
  const runtime::Sca sca(wrong_config.cpu_profile,
                         wrong_config.ndp_profile);
  const runtime::CostModel cost(wrong_config.cpu_profile,
                                wrong_config.ndp_profile);
  runtime::AdaptiveScheduler adaptive(sca, cost);
  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    adaptive.record(workload.kernels[i].name,
                    static_plan.placements[i].device,
                    static_run.kernels[i].time_ps);
  }
  const core::RunReport ndp_probe =
      truth.run(workload, core::ExecMode::kNdpOnly);
  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    adaptive.record(workload.kernels[i].name, DeviceKind::kNdp,
                    ndp_probe.kernels[i].time_ps);
  }
  const runtime::ExecutionPlan adapted_plan = adaptive.plan(workload);
  const core::RunReport adapted = truth.run_planned(workload, adapted_plan);

  TextTable table({"schedule", "simulated total", "vs oracle"});
  const auto row = [&](const char* name, const core::RunReport& r) {
    table.add_row({name, format_time(r.total_ps()),
                   strformat("%.2fx", static_cast<double>(r.total_ps()) /
                                          static_cast<double>(
                                              oracle.total_ps()))});
  };
  row("oracle (true profile)", oracle);
  row("static, misprofiled SCA", static_run);
  row("adaptive after 2 probe iterations", adapted);
  std::printf("%s\n", table.render().c_str());

  std::printf("placements (oracle / static / adaptive):\n");
  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    std::printf("  %-22s %s / %s / %s\n", workload.kernels[i].name.c_str(),
                to_string(oracle_plan.placements[i].device),
                to_string(static_plan.placements[i].device),
                to_string(adapted_plan.placements[i].device));
  }
  return 0;
}
