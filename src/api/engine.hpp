#pragma once
// The Engine: the single public entry point of the framework.
//
// One Engine owns the long-lived shared resources — the process-wide
// kernel thread pool, the (process-wide) FFT plan cache it warms, and the
// simulated machine template (core::NdftSystem + SystemConfig) — and
// executes typed JobRequests either synchronously (`run`) or through an
// async submission queue (`submit` -> JobHandle) drained by a small set
// of dispatcher threads. Each dispatched job's numerical kernels flow
// through the shared deterministic thread pool (parallel_for serializes
// top-level calls), so concurrent jobs produce results bitwise identical
// to serial execution.
//
// The queue is cost-aware: each submission is stamped with an SCA-style
// estimate of its execution cost (the PlanJob roofline machinery) and
// dispatchers drain cheapest-first, so light jobs are not stuck behind
// heavy mixed traffic. Equal-cost jobs keep FIFO submission order, which
// also keeps the ordering stable for job kinds the estimator treats
// uniformly.
//
// Thread safety: every Engine method may be called from any thread.
// JobHandles are value types over shared state; status(), cancel() and
// wait() are safe from any thread.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/job.hpp"
#include "api/result.hpp"
#include "common/cancel.hpp"
#include "core/ndft_system.hpp"
#include "runtime/profile_store.hpp"

namespace ndft::api {

/// Engine construction knobs.
struct EngineConfig {
  /// Machine template every SimulateJob / PlanJob runs against.
  core::SystemConfig system = core::SystemConfig::paper_default();
  /// Dispatcher threads draining the async queue. 0 = manual mode: queued
  /// jobs execute only inside drain() on the calling thread (deterministic
  /// single-threaded embedding and cancellation tests).
  std::size_t dispatch_threads = 2;
  /// Upper bound on not-yet-started jobs; submit() throws NdftError when
  /// the queue is full (backpressure instead of unbounded growth).
  std::size_t max_pending = 4096;
  /// Aging escape hatch of the cost-aware queue: once the oldest pending
  /// job has waited this long, it runs next regardless of cost, so a
  /// sustained stream of cheap submissions cannot starve a heavy job.
  /// 0 degenerates to pure FIFO (age always wins).
  double starvation_limit_ms = 10000.0;
  /// Execution attempts per job for transient failures (allocation
  /// pressure, simulated device faults). 1 disables retry.
  unsigned max_attempts = 3;
  /// Deterministic backoff before retry k: retry_backoff_ms * 2^(k-1),
  /// capped at retry_backoff_cap_ms. No jitter — retry schedules replay.
  double retry_backoff_ms = 1.0;
  double retry_backoff_cap_ms = 50.0;
  /// Fault-injection spec installed at construction (see
  /// docs/ROBUSTNESS.md for the grammar). Empty = leave the process-wide
  /// fault state alone; the NDFT_FAULTS environment variable is the
  /// fallback when this is empty. The destructor clears whatever the
  /// constructor installed.
  std::string fault_spec;
  /// Path of the persistent device-profile store
  /// ("ndft.device_profile_store.v1", runtime/profile_store.hpp). When
  /// non-empty, calibrated CoDesignJob runs record their fitted CPU
  /// profile there and PlanJobs without an explicit profile_override
  /// default to the stored beliefs for this {git SHA, host, pool width}.
  /// Empty (the default) disables persistence entirely.
  std::string profile_store_path;
};

namespace detail {

/// Shared state behind a JobHandle.
struct JobState {
  std::uint64_t id = 0;
  JobRequest request;
  std::chrono::steady_clock::time_point submitted_at;
  /// Submission-time cost estimate: the queue's priority key (smaller
  /// drains first; the id breaks ties in FIFO order).
  TimePs est_cost_ps = 0;

  /// Cooperative cancel/deadline channel into the running job; also
  /// carries the queued-phase deadline.
  CancelToken cancel;
  /// The engine's cancelled-jobs counter. cancel() bumps it exactly once
  /// at the unique kQueued -> kCancelled transition; running-phase
  /// cancellations are counted by execute_queued() when the cancelled
  /// result is published. Null for states without an owning engine.
  std::atomic<std::uint64_t>* cancelled_counter = nullptr;

  std::mutex mutex;
  std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;  // guarded by mutex
  bool terminal = false;                  // result is final
  JobResult result;                       // valid once terminal
  /// Taken off the pending queue (guarded by Engine::queue_mutex_); lets
  /// the submission-order view prune lazily instead of erasing eagerly.
  bool dequeued = false;
};

}  // namespace detail

/// Handle to an asynchronously submitted job.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  std::uint64_t id() const;
  JobStatus status() const;

  /// Requests cancellation. A still-queued job becomes terminal
  /// kCancelled immediately. A running job is cancelled cooperatively:
  /// the request is accepted (returns true) and the job stops at its
  /// next stage boundary — SCF iteration, per-k solve, Davidson sweep,
  /// sim event batch — with status kCancelled; a job that finishes
  /// before reaching one keeps its result. Returns false once the job
  /// is already terminal.
  bool cancel();

  /// Blocks until the job reaches a terminal state and returns its result.
  const JobResult& wait() const;

  /// Waits up to `timeout_ms` for a terminal state. Returns true when the
  /// job is terminal (result available via wait(), which no longer
  /// blocks), false on timeout. The long-poll primitive of the service
  /// layer.
  bool wait_for(double timeout_ms) const;

 private:
  friend class Engine;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

/// The job-oriented front door of NDFT.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validates and executes `request` synchronously on the calling thread.
  /// Never throws for request-level problems: rejection and execution
  /// failures come back as JobResult.status / error.
  JobResult run(const JobRequest& request);

  /// Enqueues `request` for asynchronous execution, ordered by the
  /// engine's cost estimate (cheapest jobs drain first; equal estimates
  /// keep submission order). Throws NdftError when the pending queue is
  /// full.
  JobHandle submit(JobRequest request);

  /// Enqueues a batch in order; equivalent to calling submit() per entry.
  std::vector<JobHandle> submit_batch(std::vector<JobRequest> requests);

  /// Blocks until every submitted job is terminal. With
  /// dispatch_threads == 0 the calling thread executes the queue itself.
  void drain();

  // ---- shared-resource views / engine metadata.
  const core::SystemConfig& system_config() const noexcept;
  const core::NdftSystem& system() const noexcept { return system_; }
  std::size_t pool_threads() const noexcept;
  std::size_t dispatch_threads() const noexcept {
    return config_.dispatch_threads;
  }
  std::uint64_t jobs_submitted() const noexcept { return submitted_; }
  std::uint64_t jobs_completed() const noexcept { return completed_; }
  std::uint64_t jobs_cancelled() const noexcept { return cancelled_; }
  /// Transient-failure retries across all jobs (attempts beyond the
  /// first).
  std::uint64_t jobs_retried() const noexcept { return retries_; }
  /// Jobs that ended kDeadlineExceeded (queued or mid-run).
  std::uint64_t jobs_deadline_exceeded() const noexcept {
    return deadline_expired_;
  }
  /// Queued jobs that began executing (the exec-sequence high-water mark).
  std::uint64_t jobs_started() const noexcept { return exec_seq_; }
  /// Jobs that completed with at least one degradation note.
  std::uint64_t jobs_degraded() const noexcept { return degraded_; }
  /// Jobs waiting in the pending queue right now.
  std::size_t jobs_pending();
  /// Jobs currently executing on dispatcher (or drain) threads.
  std::size_t jobs_running();

 private:
  void dispatcher_loop();
  /// Removes the next job to run (queue_mutex_ held, queue non-empty):
  /// the cheapest job, unless the oldest one has aged past the
  /// starvation limit.
  std::shared_ptr<detail::JobState> pop_next_locked();
  /// Runs one queued job to its terminal state (dispatcher or drain
  /// path) and retires the in-flight count — atomically with the
  /// terminal publish, so a waiter never sees a finished job still
  /// counted by jobs_running().
  void execute_queued(const std::shared_ptr<detail::JobState>& state);
  /// Decrements in_flight_ and signals idle_cv_ when fully drained.
  void retire_in_flight_locked();  // queue_mutex_ held
  void retire_in_flight();
  /// Validation + retry loop around execute_once + timing/metadata
  /// stamping (no queue logic).
  JobResult execute(const JobRequest& request, const CancelToken& token);
  /// One execution attempt under the cancel/degradation scopes.
  JobResult execute_once(const JobRequest& request,
                         const CancelToken& token);

  EngineConfig config_;
  core::NdftSystem system_;  ///< machine template (thread-safe, immutable)
  /// Persistent calibrated-profile store; null when
  /// EngineConfig::profile_store_path is empty.
  std::unique_ptr<runtime::ProfileStore> profile_store_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;  ///< signals dispatchers: work/stop
  std::condition_variable idle_cv_;   ///< signals drain(): queue empty
  /// Pending jobs, kept sorted by (est_cost_ps, id): front is always the
  /// cheapest job, FIFO among equals.
  std::deque<std::shared_ptr<detail::JobState>> queue_;
  /// The same jobs in submission order (lazily pruned via
  /// JobState::dequeued), so the starvation check finds the oldest
  /// pending job in O(1) instead of scanning the queue.
  std::deque<std::shared_ptr<detail::JobState>> fifo_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> dispatchers_;

  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> exec_seq_{0};  ///< queued-job start order
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> degraded_{0};
  /// True when the constructor installed a fault spec (and the
  /// destructor therefore clears the process-wide fault state).
  bool installed_faults_ = false;
};

}  // namespace ndft::api
