// Ablation A7: memory-system energy. The flip side of near-data
// computing: stack-local HBM accesses cost ~4 pJ/bit against ~20 pJ/bit
// for off-chip DDR4 and ~10 pJ/bit PCIe staging, so NDFT's energy win
// exceeds its speedup. (The paper leaves energy to future work; this
// bench quantifies it under the same workloads.)

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"

using namespace ndft;

int main() {
  std::printf("Ablation A7: memory-system energy per LR-TDDFT iteration\n\n");
  const core::NdftSystem system;
  TextTable table({"system", "CPU (DDR4)", "GPU (HBM+PCIe)", "NDFT "
                   "(HBM+mesh)", "CPU/NDFT", "GPU/NDFT"});
  for (const std::size_t atoms : {std::size_t{64}, std::size_t{1024}}) {
    const dft::Workload w = system.workload_for(atoms);
    const core::RunReport cpu =
        system.run(w, core::ExecMode::kCpuBaseline);
    const core::RunReport gpu =
        system.run(w, core::ExecMode::kGpuBaseline);
    const core::RunReport ndft = system.run(w, core::ExecMode::kNdft);
    table.add_row({strformat("Si_%zu", atoms),
                   strformat("%.1f mJ", cpu.memory_energy_mj),
                   strformat("%.1f mJ", gpu.memory_energy_mj),
                   strformat("%.1f mJ", ndft.memory_energy_mj),
                   format_speedup(cpu.memory_energy_mj /
                                  ndft.memory_energy_mj),
                   format_speedup(gpu.memory_energy_mj /
                                  ndft.memory_energy_mj)});
    std::fflush(stdout);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
