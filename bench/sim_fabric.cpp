// bench_sim_fabric: throughput of the port/connection event fabric.
// Simulates one LR-TDDFT iteration on machines of 1 / 4 / 16 stacks
// (mesh 1x1 / 2x2 / 4x4, described through "ndft.machine.v1" documents)
// and reports simulated picoseconds, wall time and fabric events per
// wall second — the cross-commit scaling record for the credit-based
// simulator. Results go to BENCH_sim.json.
//
// Modes:
//   bench_sim_fabric           full sweep at atoms=32
//   bench_sim_fabric --smoke   atoms=16, 1x1 and 2x2 only; every machine
//                              is simulated twice and the two payloads
//                              must be bitwise identical (the
//                              verify.sh --bench-smoke gate)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.hpp"
#include "common/run_metadata.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "ndp/ndp_system.hpp"

using namespace ndft;

namespace {

using Clock = std::chrono::steady_clock;

struct FabricRun {
  unsigned mesh = 0;          ///< mesh width == height
  std::size_t stacks = 0;
  TimePs simulated_ps = 0;
  double wall_ms = 0.0;
  double events = 0.0;        ///< fabric messages + DRAM commands
  double events_per_sec = 0.0;
  std::string payload;        ///< SimulatePayload JSON (bitwise record)
};

/// A Table-III machine rebased to a `width` x `width` stack mesh.
Json machine_for(unsigned width) {
  Json doc = ndp::NdpSystemConfig::table3().to_json();
  Json mesh = *doc.find("mesh");
  mesh.set("width", Json(width));
  mesh.set("height", Json(width));
  doc.set("mesh", mesh);
  return doc;
}

FabricRun run_machine(unsigned width, std::size_t atoms) {
  api::EngineConfig config;
  config.dispatch_threads = 0;
  api::Engine engine(config);

  api::SimulateJob job;
  job.atoms = atoms;
  job.mode = core::ExecMode::kNdft;
  job.machine = machine_for(width);

  const Clock::time_point start = Clock::now();
  const api::JobResult result = engine.run(job);
  const Clock::time_point stop = Clock::now();
  if (!result.ok() || !result.simulate) {
    throw NdftError(strformat("simulate on %ux%u mesh failed: %s", width,
                              width, result.error_message.c_str()));
  }

  FabricRun run;
  run.mesh = width;
  run.stacks = static_cast<std::size_t>(width) * width;
  run.simulated_ps = result.simulate->total_ps;
  run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  for (const char* key : {"mesh.messages", "dram.reads", "dram.writes"}) {
    const auto it = result.simulate->stats.find(key);
    if (it != result.simulate->stats.end()) run.events += it->second;
  }
  run.events_per_sec =
      run.wall_ms > 0.0 ? run.events / (run.wall_ms * 1e-3) : 0.0;
  const Json result_json = result.to_json();
  run.payload = result_json.at("payload").dump();
  return run;
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t atoms = smoke ? 16 : 32;
  const std::vector<unsigned> widths =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4};
  std::printf("event-fabric scaling, atoms=%zu%s\n\n", atoms,
              smoke ? " (smoke)" : "");

  bool deterministic = true;
  std::vector<FabricRun> runs;
  for (const unsigned width : widths) {
    FabricRun run = run_machine(width, atoms);
    if (smoke) {
      // The determinism gate: an identical machine document must produce
      // a bitwise-identical payload on a fresh engine.
      const FabricRun again = run_machine(width, atoms);
      if (again.payload != run.payload) {
        std::fprintf(stderr,
                     "sim_fabric: %ux%u mesh payload not bitwise "
                     "reproducible\n",
                     width, width);
        deterministic = false;
      }
    }
    runs.push_back(std::move(run));
  }

  TextTable table({"mesh", "stacks", "simulated_ps", "wall_ms",
                   "fabric events", "events/s"});
  for (const FabricRun& run : runs) {
    table.add_row({strformat("%ux%u", run.mesh, run.mesh),
                   strformat("%zu", run.stacks),
                   strformat("%llu",
                             static_cast<unsigned long long>(
                                 run.simulated_ps)),
                   strformat("%.1f", run.wall_ms),
                   strformat("%.0f", run.events),
                   strformat("%.3g", run.events_per_sec)});
  }
  std::printf("%s\n", table.render().c_str());

  Json bench = Json::object();
  bench.set("bench", "sim_fabric");
  bench.set("meta", run_metadata_json());
  bench.set("atoms", static_cast<std::uint64_t>(atoms));
  Json entries = Json::array();
  for (const FabricRun& run : runs) {
    Json entry = Json::object();
    entry.set("mesh", run.mesh);
    entry.set("stacks", static_cast<std::uint64_t>(run.stacks));
    entry.set("simulated_ps", static_cast<std::uint64_t>(run.simulated_ps));
    entry.set("wall_ms", run.wall_ms);
    entry.set("events", run.events);
    entry.set("events_per_sec", run.events_per_sec);
    entries.push_back(std::move(entry));
  }
  bench.set("runs", std::move(entries));
  const char* path = "BENCH_sim.json";
  if (std::FILE* file = std::fopen(path, "w")) {
    const std::string text = bench.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("wrote %zu runs to %s\n", runs.size(), path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }
  if (smoke) {
    for (const FabricRun& run : runs) {
      if (run.simulated_ps == 0 || run.events <= 0.0) {
        std::fprintf(stderr, "sim_fabric: %ux%u mesh produced no work\n",
                     run.mesh, run.mesh);
        return 1;
      }
    }
    if (!deterministic) return 1;
  }
  return 0;
} catch (const NdftError& error) {
  std::fprintf(stderr, "sim_fabric: %s\n", error.what());
  return 1;
}
