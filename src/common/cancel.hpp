#pragma once
// Cooperative cancellation and deadlines for long-running jobs.
//
// A CancelToken wraps shared state carrying a cancel flag and an optional
// deadline. The running side installs a CancelScope (thread-local, same
// pattern as TraceScope) and the pipeline calls cancel_point() at its
// stage boundaries — SCF iterations, per-k solves, Davidson sweeps, sim
// event batches. When the token is cancelled or past its deadline, the
// next cancel_point() throws CancelledError / DeadlineExceededError,
// which the Engine maps to the kCancelled / kDeadlineExceeded statuses.
//
// cancel_point() off any scope (direct library use, tests, pool workers)
// is a thread-local null check — effectively free — so the checks can
// stay in the pipeline unconditionally.
//
// Neither exception derives from NdftError: an escaped cancellation must
// not be mistaken for a physics failure.

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace ndft {

/// Thrown by cancel_point() after CancelToken::request_cancel().
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("job cancelled while running") {}
};

/// Thrown by cancel_point() once the token's deadline has passed.
class DeadlineExceededError : public std::runtime_error {
 public:
  DeadlineExceededError() : std::runtime_error("job deadline exceeded") {}
};

namespace detail {

/// Shared state behind a CancelToken.
struct CancelShared {
  std::atomic<bool> cancelled{false};
  /// Deadline as nanoseconds since the steady_clock epoch; 0 = none.
  /// Set once (before or while the job runs), read at every checkpoint.
  std::atomic<std::int64_t> deadline_ns{0};
};

}  // namespace detail

/// Value-type handle to the shared cancel/deadline state. A
/// default-constructed token is inert (never cancels, no deadline).
class CancelToken {
 public:
  CancelToken() = default;

  /// A fresh, uncancelled token with no deadline.
  static CancelToken create() {
    return CancelToken(std::make_shared<detail::CancelShared>());
  }

  bool valid() const noexcept { return shared_ != nullptr; }

  /// Requests cooperative cancellation; the running side observes it at
  /// its next cancel_point(). Idempotent, safe from any thread.
  void request_cancel() const noexcept {
    if (shared_) shared_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// Arms the absolute deadline (steady clock).
  void set_deadline(std::chrono::steady_clock::time_point when) const noexcept {
    if (shared_) {
      shared_->deadline_ns.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              when.time_since_epoch())
              .count(),
          std::memory_order_relaxed);
    }
  }

  bool cancel_requested() const noexcept {
    return shared_ &&
           shared_->cancelled.load(std::memory_order_relaxed);
  }

  bool deadline_exceeded() const noexcept {
    if (!shared_) return false;
    const std::int64_t ns =
        shared_->deadline_ns.load(std::memory_order_relaxed);
    return ns != 0 &&
           std::chrono::steady_clock::now().time_since_epoch() >=
               std::chrono::nanoseconds(ns);
  }

  /// Throws CancelledError / DeadlineExceededError when due; cancellation
  /// wins when both are.
  void check() const {
    if (!shared_) return;
    if (cancel_requested()) throw CancelledError();
    if (deadline_exceeded()) throw DeadlineExceededError();
  }

 private:
  explicit CancelToken(std::shared_ptr<detail::CancelShared> shared)
      : shared_(std::move(shared)) {}

  std::shared_ptr<detail::CancelShared> shared_;
};

/// RAII installer: makes `token` the one cancel_point() checks on this
/// thread (nests; the outer token is restored on destruction).
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken token_;
  const CancelToken* previous_;
};

/// Stage-boundary checkpoint: throws when the installed token is
/// cancelled or past its deadline; a null check otherwise.
void cancel_point();

/// True when the installed token is cancelled or past deadline (for call
/// sites that want to stop without throwing).
bool cancel_pending() noexcept;

}  // namespace ndft
