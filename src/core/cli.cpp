#include "core/cli.hpp"

#include <cstdlib>

namespace ndft::core {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string name = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[name] = argv[++i];
      } else {
        flags_[name] = "";
      }
    } else {
      positional_.push_back(token);
    }
  }
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  NDFT_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" + name + " expects an integer");
  return value;
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

}  // namespace ndft::core
