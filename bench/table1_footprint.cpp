// Reproduces Table I: memory footprint of pseudopotentials in CPU and NDP
// systems for the small (Si_64) and large (Si_1024) systems, under the
// traditional per-process replicated layout, plus the paper's headline
// ratios and the OOM threshold the shared-block design removes.

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"
#include "runtime/pseudo_store.hpp"

using namespace ndft;

int main() {
  std::printf("Table I reproduction: pseudopotential memory footprint\n");
  std::printf("(paper: NDP-small 4.43 GB / 6.92 %%, CPU-small 1.84 GB / "
              "2.88 %%, NDP-large 35.3 GB / 55.15 %%, CPU-large 13.8 GB / "
              "21.56 %%;\n NDP +140.2 %% / +155.7 %% over CPU)\n\n");

  const core::NdftSystem system;
  const Bytes capacity = system.config().cpu_capacity;

  TextTable table({"configuration", "footprint", "% of 64 GiB", "status"});
  double ndp_total[2] = {0, 0};
  double cpu_total[2] = {0, 0};
  int index = 0;
  for (const std::size_t atoms : {std::size_t{64}, std::size_t{1024}}) {
    const dft::Workload w = system.workload_for(atoms);
    const runtime::PseudoStore store(w, system.config().processes);
    const auto ndp =
        store.on_ndp(runtime::PseudoLayout::kReplicated, capacity);
    const auto cpu = store.on_cpu(capacity);
    const char* scale = (atoms == 64) ? "Small" : "Large";
    table.add_row({strformat("NDP in %s system (Si_%zu)", scale, atoms),
                   format_bytes(ndp.total), format_percent(ndp.fraction()),
                   ndp.out_of_memory() ? "OOM" : "fits"});
    table.add_row({strformat("CPU in %s system (Si_%zu)", scale, atoms),
                   format_bytes(cpu.total), format_percent(cpu.fraction()),
                   cpu.out_of_memory() ? "OOM" : "fits"});
    ndp_total[index] = static_cast<double>(ndp.total);
    cpu_total[index] = static_cast<double>(cpu.total);
    ++index;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("NDP over CPU: +%.1f %% (small), +%.1f %% (large)\n",
              (ndp_total[0] / cpu_total[0] - 1.0) * 100.0,
              (ndp_total[1] / cpu_total[1] - 1.0) * 100.0);

  // The OOM cliff the paper attributes to replication on NDP systems.
  const dft::Workload w2048 = system.workload_for(2048);
  const runtime::PseudoStore store2048(w2048, system.config().processes);
  const auto rep =
      store2048.on_ndp(runtime::PseudoLayout::kReplicated, capacity);
  const auto shared =
      store2048.on_ndp(runtime::PseudoLayout::kSharedBlock, capacity);
  std::printf("Si_2048 on NDP: replicated %s (%s) -> shared blocks %s "
              "(%s)\n",
              format_bytes(rep.total).c_str(),
              rep.out_of_memory() ? "OOM" : "fits",
              format_bytes(shared.total).c_str(),
              shared.out_of_memory() ? "OOM" : "fits");
  return 0;
}
