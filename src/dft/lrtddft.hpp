#pragma once
// The LR-TDDFT pipeline of the paper's Fig. 1, functional implementation:
//
//   valence/conduction orbitals
//     -> face-splitting products  P_vc(r) = psi_v(r) * psi_c(r)
//     -> FFT                      P_vc(G)
//     -> Coulomb + ALDA kernels   f_H(G) P, f_xc(r) P
//     -> GEMM                     K = P f conj(P)^T  (response Hamiltonian)
//     -> SYEVD (heev)             excitation energies
//
// within the Tamm-Dancoff approximation at the Gamma point. Every stage
// tallies its flop/byte cost per kernel class so the analytic workload
// descriptors (workload.hpp) can be validated against real numerics.

#include <map>
#include <vector>

#include "dft/basis.hpp"
#include "dft/epm.hpp"
#include "dft/fft.hpp"
#include "dft/linalg.hpp"

namespace ndft::dft {

/// Per-kernel-class operation tallies for one LR-TDDFT run.
using KernelCounts = std::map<KernelClass, OpCount>;

/// Configuration of the excitation-space window.
struct LrTddftConfig {
  /// Highest valence bands included (0 = all valence bands).
  std::size_t valence_window = 0;
  /// Lowest conduction bands included.
  std::size_t conduction_window = 4;
  /// Include the adiabatic-LDA exchange-correlation kernel.
  bool include_xc = true;
  /// Spin factor for singlet excitations (2 K in the A matrix).
  double spin_factor = 2.0;
  /// Keep the Casida eigenvectors (needed for oscillator strengths).
  bool keep_eigenvectors = false;
};

/// Result of an LR-TDDFT calculation.
struct LrTddftResult {
  std::vector<double> excitations_ha;  ///< excitation energies, ascending
  std::size_t pair_count = 0;          ///< dimension of the response matrix
  KernelCounts counts;                 ///< per-kernel operation tallies
  /// Casida eigenvectors (pair x excitation), populated only when
  /// LrTddftConfig::keep_eigenvectors is set. Complex: the Casida matrix
  /// is Hermitian for a general orbital gauge (degenerate multiplets come
  /// out of the eigensolver in an arbitrary orientation).
  ComplexMatrix eigenvectors;

  /// Lowest excitation in eV.
  double lowest_ev() const;
};

/// Runs the full pipeline on a ground state. The ground state must carry
/// at least valence + conduction_window bands.
LrTddftResult solve_lrtddft(const PlaneWaveBasis& basis,
                            const GroundState& ground,
                            const LrTddftConfig& config);

/// Builds the independent-particle transition energies (eps_c - eps_v) for
/// the window; exposed for tests (the A matrix diagonal without kernels).
std::vector<double> transition_energies(const GroundState& ground,
                                        const LrTddftConfig& config);

}  // namespace ndft::dft
