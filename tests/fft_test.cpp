// Unit and property tests for the from-scratch FFT: reference DFT
// comparison, round trips, Parseval, linearity, shift theorem, and the
// 3D transforms, across power-of-two, mixed-radix and prime (Bluestein)
// lengths.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "dft/fft.hpp"

namespace ndft::dft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<Complex> x(n);
  for (auto& value : x) {
    value = Complex{prng.next_double(-1, 1), prng.next_double(-1, 1)};
  }
  return x;
}

/// O(n^2) reference DFT.
std::vector<Complex> reference_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> result(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{};
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * j) /
                           static_cast<double>(n);
      acc += x[j] * Complex{std::cos(angle), std::sin(angle)};
    }
    result[k] = acc;
  }
  return result;
}

double max_error(const std::vector<Complex>& a,
                 const std::vector<Complex>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(FftSizeTest, FriendlySizes) {
  EXPECT_TRUE(is_friendly_size(1));
  EXPECT_TRUE(is_friendly_size(2));
  EXPECT_TRUE(is_friendly_size(360));  // 2^3 * 3^2 * 5
  EXPECT_FALSE(is_friendly_size(7));
  EXPECT_FALSE(is_friendly_size(0));
  EXPECT_EQ(friendly_size(7), 8u);
  EXPECT_EQ(friendly_size(11), 12u);
  EXPECT_EQ(friendly_size(25), 25u);
  EXPECT_EQ(friendly_size(121), 125u);
}

TEST(FftTest, ImpulseTransformsToConstant) {
  std::vector<Complex> x(16);
  x[0] = Complex{1.0, 0.0};
  fft(x, FftDirection::kForward);
  for (const Complex& value : x) {
    EXPECT_NEAR(value.real(), 1.0, 1e-12);
    EXPECT_NEAR(value.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantTransformsToImpulse) {
  std::vector<Complex> x(32, Complex{1.0, 0.0});
  fft(x, FftDirection::kForward);
  EXPECT_NEAR(x[0].real(), 32.0, 1e-10);
  for (std::size_t i = 1; i < 32; ++i) {
    EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-10);
  }
}

// Property sweep over lengths covering pow2, radix-3/5 mixes and primes.
class FftLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftLengthTest, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  std::vector<Complex> x = random_signal(n, n);
  const std::vector<Complex> expected = reference_dft(x);
  fft(x, FftDirection::kForward);
  EXPECT_LT(max_error(x, expected), 1e-8 * static_cast<double>(n))
      << "length " << n;
}

TEST_P(FftLengthTest, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const std::vector<Complex> original = random_signal(n, 7 * n + 1);
  std::vector<Complex> x = original;
  fft(x, FftDirection::kForward);
  fft(x, FftDirection::kInverse);
  EXPECT_LT(max_error(x, original), 1e-10) << "length " << n;
}

TEST_P(FftLengthTest, ParsevalHolds) {
  const std::size_t n = GetParam();
  std::vector<Complex> x = random_signal(n, 13 * n + 5);
  double time_energy = 0.0;
  for (const Complex& value : x) time_energy += std::norm(value);
  fft(x, FftDirection::kForward);
  double freq_energy = 0.0;
  for (const Complex& value : x) freq_energy += std::norm(value);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * time_energy * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLengthTest,
                         ::testing::Values(1, 2, 4, 8, 64, 3, 9, 5, 25, 6,
                                           12, 60, 120, 7, 11, 13, 17, 31,
                                           97, 100, 128));

TEST(FftTest, Linearity) {
  const std::size_t n = 48;
  const std::vector<Complex> a = random_signal(n, 1);
  const std::vector<Complex> b = random_signal(n, 2);
  std::vector<Complex> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i] = 2.0 * a[i] + Complex{0.0, 1.0} * b[i];
  }
  std::vector<Complex> fa = a;
  std::vector<Complex> fb = b;
  fft(fa, FftDirection::kForward);
  fft(fb, FftDirection::kForward);
  fft(sum, FftDirection::kForward);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex expected = 2.0 * fa[i] + Complex{0.0, 1.0} * fb[i];
    EXPECT_LT(std::abs(sum[i] - expected), 1e-9);
  }
}

TEST(FftTest, CircularShiftTheorem) {
  // Shifting the input by s multiplies bin k by exp(-2*pi*i*k*s/n).
  const std::size_t n = 36;
  const std::size_t s = 5;
  const std::vector<Complex> x = random_signal(n, 3);
  std::vector<Complex> shifted(n);
  for (std::size_t i = 0; i < n; ++i) {
    shifted[i] = x[(i + s) % n];
  }
  std::vector<Complex> fx = x;
  std::vector<Complex> fshifted = shifted;
  fft(fx, FftDirection::kForward);
  fft(fshifted, FftDirection::kForward);
  for (std::size_t k = 0; k < n; ++k) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(k * s) /
                         static_cast<double>(n);
    const Complex phase{std::cos(angle), std::sin(angle)};
    EXPECT_LT(std::abs(fshifted[k] - fx[k] * phase), 1e-9);
  }
}

TEST(FftTest, RealSignalHasHermitianSpectrum) {
  const std::size_t n = 40;
  Prng prng(4);
  std::vector<Complex> x(n);
  for (auto& value : x) {
    value = Complex{prng.next_double(-1, 1), 0.0};
  }
  fft(x, FftDirection::kForward);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_LT(std::abs(x[k] - std::conj(x[n - k])), 1e-10);
  }
}

TEST(FftFlopsTest, AnalyticCostGrowsNLogN) {
  EXPECT_EQ(fft_flops(1), 0u);
  const Flops f1k = fft_flops(1024);
  EXPECT_EQ(f1k, static_cast<Flops>(5 * 1024 * 10));
  EXPECT_GT(fft_flops(2048), 2 * f1k);
  EXPECT_LT(fft_flops(2048), 3 * f1k);
}

TEST(Grid3Test, IndexingIsXFastest) {
  Grid3 grid(4, 3, 2);
  grid.at(1, 2, 1) = Complex{7.0, 0.0};
  EXPECT_DOUBLE_EQ(grid[(1 * 3 + 2) * 4 + 1].real(), 7.0);
  EXPECT_EQ(grid.size(), 24u);
}

// One length per plan kind: power of two, mixed-radix 2/3/5, Bluestein
// prime. The parameterised sweep above covers many more lengths through
// fft(); these exercise the plan object and its workspace API directly.
class FftPlanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftPlanTest, ExecuteMatchesReferenceDft) {
  const std::size_t n = GetParam();
  const FftPlan& plan = fft_plan(n);
  EXPECT_EQ(plan.length(), n);
  std::vector<Complex> x = random_signal(n, 1000 + n);
  const std::vector<Complex> expected = reference_dft(x);
  std::vector<Complex> work(plan.workspace_size());
  plan.execute(x.data(), work.data(), FftDirection::kForward);
  EXPECT_LT(max_error(x, expected), 1e-8 * static_cast<double>(n));
}

TEST_P(FftPlanTest, ExecuteRoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const FftPlan& plan = fft_plan(n);
  const std::vector<Complex> original = random_signal(n, 2000 + n);
  std::vector<Complex> x = original;
  plan.execute(x, FftDirection::kForward);
  plan.execute(x, FftDirection::kInverse);
  EXPECT_LT(max_error(x, original), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(SizeClasses, FftPlanTest,
                         ::testing::Values(128, 60, 97));

TEST(FftPlanTest, CacheReturnsOnePlanPerLength) {
  EXPECT_EQ(&fft_plan(96), &fft_plan(96));
  EXPECT_NE(&fft_plan(96), &fft_plan(97));
}

TEST(Fft3dTest, DeterministicAcrossThreadCounts) {
  // 48^3 is large enough that the line loops split across the pool; the
  // transform must be bitwise identical to the single-threaded result.
  Grid3 grid(48, 48, 48);
  Prng prng(11);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = Complex{prng.next_double(-1, 1), prng.next_double(-1, 1)};
  }
  Grid3 parallel_grid = grid;

  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();
  pool.resize(1);
  fft3d(grid, FftDirection::kForward);
  pool.resize(4);
  fft3d(parallel_grid, FftDirection::kForward);
  pool.resize(original_threads);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_EQ(grid[i], parallel_grid[i]) << "index " << i;
  }
}

TEST(Fft3dTest, RoundTripIsIdentity) {
  Grid3 grid(8, 6, 5);
  Prng prng(5);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = Complex{prng.next_double(-1, 1), prng.next_double(-1, 1)};
  }
  const std::vector<Complex> original = grid.raw();
  fft3d(grid, FftDirection::kForward);
  fft3d(grid, FftDirection::kInverse);
  EXPECT_LT(max_error(grid.raw(), original), 1e-10);
}

TEST(Fft3dTest, PlaneWaveMapsToSingleBin) {
  // exp(i*2*pi*(hx/nx*x + ...)) transforms to a single nonzero bin.
  const std::size_t nx = 6, ny = 4, nz = 5;
  Grid3 grid(nx, ny, nz);
  const int h = 2, k = 1, l = 3;
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const double phase =
            2.0 * std::numbers::pi *
            (static_cast<double>(h * x) / nx + static_cast<double>(k * y) / ny +
             static_cast<double>(l * z) / nz);
        grid.at(x, y, z) = Complex{std::cos(phase), std::sin(phase)};
      }
    }
  }
  fft3d(grid, FftDirection::kForward);
  const double total = static_cast<double>(grid.size());
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const double expected =
            (x == h && y == static_cast<std::size_t>(k) && z == l) ? total
                                                                   : 0.0;
        EXPECT_NEAR(std::abs(grid.at(x, y, z)), expected, 1e-8);
      }
    }
  }
}

TEST(Fft3dTest, OpCountAccumulates) {
  Grid3 grid(8, 8, 8);
  OpCount count;
  fft3d(grid, FftDirection::kForward, &count);
  EXPECT_EQ(count.flops, fft_flops(512));
  // Fused X+Y sweep + Z sweep: 4 grid traversals.
  EXPECT_EQ(count.bytes, 4u * 512 * sizeof(Complex));
  OpCount unfused_count;
  Grid3 grid2(8, 8, 8);
  fft3d_unfused(grid2, FftDirection::kForward, &unfused_count);
  EXPECT_EQ(unfused_count.flops, fft_flops(512));
  EXPECT_EQ(unfused_count.bytes, 6u * 512 * sizeof(Complex));
}

TEST(Fft3dTest, FusedMatchesUnfusedBitwise) {
  // The fused X+Y slab pass performs the exact per-line operations of the
  // separate passes, in the same per-element order, so the two transforms
  // must agree bitwise — including on non-friendly (Bluestein) lengths.
  for (const auto& dims : {std::array<std::size_t, 3>{32, 32, 32},
                           std::array<std::size_t, 3>{12, 10, 7}}) {
    Grid3 fused(dims[0], dims[1], dims[2]);
    Prng prng(77);
    for (std::size_t i = 0; i < fused.size(); ++i) {
      fused[i] = Complex{prng.next_double(-1, 1), prng.next_double(-1, 1)};
    }
    Grid3 unfused = fused;
    fft3d(fused, FftDirection::kForward);
    fft3d_unfused(unfused, FftDirection::kForward);
    for (std::size_t i = 0; i < fused.size(); ++i) {
      ASSERT_EQ(fused[i], unfused[i]) << "index " << i;
    }
  }
}

TEST(Fft3dTest, FusedDeterministicAcrossThreadCounts) {
  // The fused transform parallelises over z slabs; each slab is written
  // by exactly one task, so any pool width must give bitwise-identical
  // grids.
  Grid3 reference(48, 48, 48);
  Prng prng(13);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference[i] = Complex{prng.next_double(-1, 1), prng.next_double(-1, 1)};
  }

  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();
  std::vector<Grid3> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    pool.resize(threads);
    Grid3 grid = reference;
    fft3d(grid, FftDirection::kForward);
    results.push_back(std::move(grid));
  }
  pool.resize(original_threads);

  for (std::size_t t = 1; t < results.size(); ++t) {
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(results[0][i], results[t][i])
          << "index " << i << " at thread variant " << t;
    }
  }
}

}  // namespace
}  // namespace ndft::dft
