#include "ndp/ndp_stack.hpp"

namespace ndft::ndp {

NdpStackConfig NdpStackConfig::table3() {
  NdpStackConfig c{};
  c.core = cpu::CoreConfig::ndp_core();
  c.l1 = cache::CacheConfig::l1(c.core.freq_mhz);
  c.l1.mshrs = 1;          // fully blocking loads: one miss at a time
  c.l1.prefetch = false;   // no streamers in the wimpy logic-layer cores
  return c;
}

NdpStack::NdpStack(const std::string& name, sim::EventQueue& queue,
                   const NdpStackConfig& config)
    : config_(config) {
  dram_ = std::make_unique<mem::DramSystem>(name + ".dram", queue,
                                            config.dram);
  spm_ = std::make_unique<Spm>(name + ".spm", queue, config.spm);
  const unsigned cores = config.total_cores();
  l1s_.reserve(cores);
  cores_.reserve(cores);
  for (unsigned i = 0; i < cores; ++i) {
    const unsigned unit = i / config.cores_per_unit;
    const std::string core_name = name + ".u" + std::to_string(unit) +
                                  ".core" + std::to_string(i);
    l1s_.push_back(std::make_unique<cache::Cache>(core_name + ".l1", queue,
                                                  config.l1, *dram_));
    cores_.push_back(std::make_unique<cpu::Core>(core_name, queue,
                                                 config.core, *l1s_.back()));
  }
}

void NdpStack::flush_caches() {
  for (auto& l1 : l1s_) {
    l1->flush();
  }
}

void NdpStack::invalidate_caches() {
  for (auto& l1 : l1s_) {
    l1->invalidate_all();
  }
}

void NdpStack::collect_stats(const std::string& prefix,
                             sim::StatSet& out) const {
  dram_->collect_stats(prefix + ".dram", out);
  out.merge_prefixed(prefix + ".spm", spm_->stats());
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    cores_[i]->publish_stats();
    l1s_[i]->publish_stats();
    out.merge_prefixed(prefix + ".core" + std::to_string(i),
                       cores_[i]->stats());
    out.merge_prefixed(prefix + ".core" + std::to_string(i) + ".l1",
                       l1s_[i]->stats());
  }
}

}  // namespace ndft::ndp
