#!/usr/bin/env bash
# One-shot tier-1 gate: configure, build, and run the full test suite.
# The fast kernel tier (ctest label `kernel`) runs first so a broken
# numerical kernel fails the gate before the physics/simulator tiers pay
# their startup cost.
#
# Usage: scripts/verify.sh [--tier LABEL] [--bench-smoke] [--sanitize]
#                          [build-dir]
#   (default build-dir: build)
#   --tier LABEL   build, then run only the ctest tier LABEL (kernel,
#                  physics, api, robust, trace, net, shard or sim) and
#                  stop — e.g. `--tier sim` while iterating on the
#                  simulator.
#   --bench-smoke  additionally run the SYEVD microbenchmark at n=128
#                  (fail if the blocked solver is slower than the serial
#                  reference, or the partial-spectrum solver slower than
#                  the full blocked solve), the co-design loop smoke
#                  (record -> calibrate -> plan -> simulate must close
#                  end to end), the fault-injection sweep over every
#                  registered site, the engine-overhead guard (the
#                  disabled-faults path must stay within noise), and the
#                  HTTP service throughput smoke (every request through
#                  the loopback storm must succeed), and the
#                  scatter/gather smoke (sharded payloads must stay
#                  bitwise identical to a single engine; on >= 4
#                  hardware threads the 4-backend tier must also reach
#                  a 1.7x speedup), and the event-fabric smoke
#                  (machine-document simulations must reproduce
#                  bitwise).
#   --sanitize     additionally build an ASan+UBSan tree (build-asan,
#                  -DNDFT_SANITIZE=ON) and run the api and robust tiers
#                  under it; any sanitizer report fails the gate.
set -euo pipefail

cd "$(dirname "$0")/.."
BENCH_SMOKE=0
SANITIZE=0
TIER=""
BUILD_DIR="build"
while [ "$#" -gt 0 ]; do
  case "$1" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    --sanitize) SANITIZE=1 ;;
    --tier)
      [ "$#" -ge 2 ] || { echo "verify.sh: --tier needs a label" >&2; exit 2; }
      TIER="$2"; shift ;;
    -*) echo "verify.sh: unknown option '$1'" >&2; exit 2 ;;
    *) BUILD_DIR="$1" ;;
  esac
  shift
done
JOBS="$(nproc 2>/dev/null || echo 2)"

if [ -n "$TIER" ] && [ "$BENCH_SMOKE" -eq 1 ]; then
  # --tier is an iteration shortcut that stops after one ctest label; it
  # would silently skip the smoke gates the caller asked for.
  echo "verify.sh: --tier and --bench-smoke cannot be combined" >&2
  exit 2
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"

if [ -n "$TIER" ]; then
  ctest --test-dir "$BUILD_DIR" -L "$TIER" --output-on-failure -j "$JOBS"
  echo "tier '$TIER': OK"
  exit 0
fi

ctest --test-dir "$BUILD_DIR" -L kernel --output-on-failure -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -LE kernel --output-on-failure -j "$JOBS"

# API smoke: one simulation job end to end through the Engine, emitting a
# machine-readable JobResult that must be valid JSON.
SMOKE_JSON="$BUILD_DIR/smoke_ndft_run.json"
"$BUILD_DIR/example_ndft_run" --atoms 16 --mode ndft --json > "$SMOKE_JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$SMOKE_JSON" >/dev/null
else
  grep -q '"schema": "ndft.job_result.v1"' "$SMOKE_JSON"
fi
echo "ndft_run --json smoke: OK ($SMOKE_JSON)"

if [ "$BENCH_SMOKE" -eq 1 ]; then
  # The bench exits nonzero if the two-stage eigensolver loses to the
  # reference at n=128 or to the one-stage solver at n=256, the partial
  # solver loses to the full solve, the fused fft3d loses to the unfused
  # baseline, or the spectra disagree.
  (cd "$BUILD_DIR" && ./bench_micro_eig --smoke)
  echo "bench smoke: OK ($BUILD_DIR/BENCH_eig.json)"
  # The co-design loop must close: record a real LR-TDDFT trace, replay
  # it through the calibrated scheduler, survive a JSON round trip.
  (cd "$BUILD_DIR" && ./bench_codesign --smoke)
  echo "codesign smoke: OK ($BUILD_DIR/BENCH_codesign.json)"
  # Every registered fault site must honour its class contract (transient
  # sites retry/classify, degradable sites keep the job Ok) with no hang.
  (cd "$BUILD_DIR" && ./bench_fault_sweep --smoke)
  echo "fault sweep smoke: OK ($BUILD_DIR/BENCH_fault_sweep.json)"
  # Disabled-faults engine path must stay within noise of the armed one.
  (cd "$BUILD_DIR" && ./bench_micro_engine --smoke)
  echo "engine overhead smoke: OK ($BUILD_DIR/BENCH_engine.json)"
  # The HTTP service layer: loopback storms at 1/8/64 clients; any failed
  # request fails the gate.
  (cd "$BUILD_DIR" && ./bench_service_bench --smoke)
  echo "service smoke: OK ($BUILD_DIR/BENCH_service.json)"
  # Scatter/gather: sharded band-job payloads must match a single engine
  # bitwise at 1/2/4 backends; the speedup gate applies on real cores.
  (cd "$BUILD_DIR" && ./bench_shard_bench --smoke)
  echo "shard smoke: OK ($BUILD_DIR/BENCH_shard.json)"
  # Event-fabric determinism: simulating the same "ndft.machine.v1"
  # document twice must produce bitwise-identical payloads.
  (cd "$BUILD_DIR" && ./bench_sim_fabric --smoke)
  echo "sim fabric smoke: OK ($BUILD_DIR/BENCH_sim.json)"
fi

if [ "$SANITIZE" -eq 1 ]; then
  # Instrumented pass over the tiers that exercise concurrency, fault
  # paths and cancellation races; -fno-sanitize-recover=all makes any
  # report fail the run.
  SAN_DIR="build-asan"
  cmake -B "$SAN_DIR" -S . -DNDFT_SANITIZE=ON
  cmake --build "$SAN_DIR" -j "$JOBS"
  ctest --test-dir "$SAN_DIR" -L 'api|robust' --output-on-failure -j "$JOBS"
  echo "sanitize (api|robust): OK ($SAN_DIR)"
fi
