#!/usr/bin/env bash
# One-shot tier-1 gate: configure, build, and run the full test suite.
# The fast kernel tier (ctest label `kernel`) runs first so a broken
# numerical kernel fails the gate before the physics/simulator tiers pay
# their startup cost.
#
# Usage: scripts/verify.sh [--bench-smoke] [build-dir]   (default: build)
#   --bench-smoke  additionally run the SYEVD microbenchmark at n=128 and
#                  fail if the blocked solver is slower than the serial
#                  reference.
set -euo pipefail

cd "$(dirname "$0")/.."
BENCH_SMOKE=0
BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    -*) echo "verify.sh: unknown option '$arg'" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L kernel --output-on-failure -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -LE kernel --output-on-failure -j "$JOBS"

# API smoke: one simulation job end to end through the Engine, emitting a
# machine-readable JobResult that must be valid JSON.
SMOKE_JSON="$BUILD_DIR/smoke_ndft_run.json"
"$BUILD_DIR/example_ndft_run" --atoms 16 --mode ndft --json > "$SMOKE_JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$SMOKE_JSON" >/dev/null
else
  grep -q '"schema": "ndft.job_result.v1"' "$SMOKE_JSON"
fi
echo "ndft_run --json smoke: OK ($SMOKE_JSON)"

if [ "$BENCH_SMOKE" -eq 1 ]; then
  # The bench exits nonzero if the blocked eigensolver loses to the
  # reference at n=128 or the spectra disagree.
  (cd "$BUILD_DIR" && ./bench_micro_eig --smoke)
  echo "bench smoke: OK ($BUILD_DIR/BENCH_eig.json)"
fi
