#pragma once
// Optical observables on top of the LR-TDDFT solution: momentum (velocity
// gauge) transition matrix elements, oscillator strengths, and the
// Lorentzian-broadened absorption spectrum — what a user of the paper's
// system would actually plot.

#include <vector>

#include "dft/basis.hpp"
#include "dft/epm.hpp"
#include "dft/lrtddft.hpp"

namespace ndft::dft {

/// One excitation with its oscillator strength.
struct OscillatorLine {
  double energy_ev = 0.0;
  double strength = 0.0;  ///< dimensionless f_I >= 0
};

/// Velocity-gauge transition moments |<psi_v| p |psi_c>|^2 summed over
/// Cartesian directions, for every (v, c) pair in the window, in the same
/// pair ordering as solve_lrtddft.
std::vector<double> momentum_matrix_elements(const PlaneWaveBasis& basis,
                                             const GroundState& ground,
                                             const LrTddftConfig& config);

/// Oscillator strengths for every excitation of an LR-TDDFT result:
/// f_I = (2 / (3 omega_I)) * sum_dir |sum_vc X^I_vc <v|p_dir|c>|^2.
/// Requires the eigenvectors, so this variant re-runs the solve internally
/// when given only a result without vectors; use the returned lines for
/// plotting.
std::vector<OscillatorLine> oscillator_strengths(
    const PlaneWaveBasis& basis, const GroundState& ground,
    const LrTddftConfig& config);

/// Lorentzian-broadened absorption cross-section on an energy grid:
/// sigma(E) = sum_I f_I * (gamma/pi) / ((E - E_I)^2 + gamma^2).
std::vector<double> absorption_spectrum(
    const std::vector<OscillatorLine>& lines,
    const std::vector<double>& energies_ev, double gamma_ev = 0.1);

}  // namespace ndft::dft
