#pragma once
// The scheduling-overhead model of Eq. 1 (Section IV-A2):
//
//   Scheduling Overhead = sum_{i in NDP} sum_{j in CPU} ( DT(i,j) + CXT )
//
// DT is the data-transfer cost of migrating a kernel's working data
// between the CPU's and the NDP side's preferred placements (cache flush,
// relocation into stack-local layout); CXT is the constant context-switch
// cost of handing execution across the boundary.

#include "common/types.hpp"
#include "dft/workload.hpp"
#include "runtime/device_profile.hpp"

namespace ndft::runtime {

/// Cost model for device-crossing overheads.
class CostModel {
 public:
  CostModel(const DeviceProfile& cpu, const DeviceProfile& ndp)
      : cpu_(cpu), ndp_(ndp) {}

  /// DT: time to migrate `bytes` of kernel data between the devices.
  TimePs transfer_time(Bytes bytes) const;

  /// CXT: constant context-switch latency for one crossing.
  TimePs context_switch_time() const;

  /// Full crossing cost for handing `bytes` across the boundary (DT + CXT).
  TimePs crossing_cost(Bytes bytes) const {
    return transfer_time(bytes) + context_switch_time();
  }

 private:
  DeviceProfile cpu_;
  DeviceProfile ndp_;
};

}  // namespace ndft::runtime
