// Tests of the co-design loop through the Engine: record_trace on real
// physics jobs, trace serialization on JobResult, the CoDesignJob replay
// (plan + simulate), and the acceptance bound on the calibrated CPU
// roofline (estimates within 2x of measured kernel times for the traced
// run's significant kernels).

#include <gtest/gtest.h>

#include <string>

#include "api/engine.hpp"
#include "common/json.hpp"
#include "runtime/calibrate.hpp"

namespace ndft::api {
namespace {

/// Fast sampling so simulation-backed tests stay quick.
EngineConfig fast_config() {
  EngineConfig config;
  config.dispatch_threads = 0;
  config.system.sampled_ops_per_kernel = 20000;
  config.system.min_ops_per_core = 200;
  return config;
}

/// A small SCF job whose trace carries a few iterations of real kernels.
ScfJob traced_scf() {
  ScfJob job;
  job.atoms = 8;
  job.ecut_ry = 4.0;
  job.scf.max_iterations = 4;
  job.record_trace = true;
  return job;
}

TEST(RecordTraceTest, ScfJobCarriesTrace) {
  Engine engine(fast_config());
  const JobResult result = engine.run(traced_scf());
  ASSERT_TRUE(result.ok()) << result.error_message;
  ASSERT_TRUE(result.trace.has_value());
  const KernelTrace& trace = *result.trace;
  EXPECT_FALSE(trace.events.empty());
  EXPECT_EQ(trace.atoms, 8u);
  EXPECT_GT(trace.basis_size, 0u);
  EXPECT_GT(trace.grid_points, 0u);
  EXPECT_EQ(trace.pool_threads, engine.pool_threads());
  // One eigensolve per iteration, stamped with its stage.
  EXPECT_EQ(trace.count_of(KernelClass::kSyevd), 4u);
  bool staged = false;
  for (const TraceEvent& event : trace.events) {
    if (event.stage.rfind("scf[", 0) == 0) staged = true;
  }
  EXPECT_TRUE(staged);
}

TEST(RecordTraceTest, UntracedJobCarriesNoTrace) {
  Engine engine(fast_config());
  ScfJob job = traced_scf();
  job.record_trace = false;
  const JobResult result = engine.run(job);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.trace.has_value());
  // Serialized form keeps the member null, additively.
  EXPECT_TRUE(result.to_json().at("trace").is_null());
}

TEST(RecordTraceTest, TraceRoundTripsThroughJobResultJson) {
  Engine engine(fast_config());
  const JobResult result = engine.run(traced_scf());
  ASSERT_TRUE(result.ok());
  const std::string dumped = result.to_json().dump(2);
  const JobResult rebuilt = JobResult::from_json(Json::parse(dumped));
  EXPECT_EQ(rebuilt.to_json().dump(2), dumped);
  ASSERT_TRUE(rebuilt.trace.has_value());
  EXPECT_EQ(rebuilt.trace->events.size(), result.trace->events.size());
}

TEST(CoDesignTest, ValidationRejectsEmptyTrace) {
  Engine engine(fast_config());
  CoDesignJob job;
  const JobResult result = engine.run(job);
  EXPECT_EQ(result.status, JobStatus::kInvalid);
  EXPECT_EQ(result.error, ErrorKind::kInvalidRequest);
}

TEST(CoDesignTest, RecordedTraceReplaysThroughEngine) {
  Engine engine(fast_config());
  const JobResult recorded = engine.run(traced_scf());
  ASSERT_TRUE(recorded.ok()) << recorded.error_message;

  CoDesignJob replay;
  replay.trace = *recorded.trace;
  replay.simulate = true;
  const JobResult result = engine.run(replay);
  ASSERT_TRUE(result.ok()) << result.error_message;
  ASSERT_TRUE(result.codesign.has_value());
  const CoDesignPayload& payload = *result.codesign;

  // The plan covers every schedulable trace event, placements and
  // crossings included.
  EXPECT_EQ(payload.trace_events, recorded.trace->events.size());
  ASSERT_FALSE(payload.plan.placements.empty());
  EXPECT_LE(payload.plan.placements.size(), payload.trace_events);
  EXPECT_GT(payload.plan.est_total_ps, 0u);
  unsigned crossings = 0;
  for (const PlacementPayload& placement : payload.plan.placements) {
    if (placement.crossing) ++crossings;
  }
  EXPECT_EQ(crossings, payload.plan.crossings);

  // The simulated execution of the planned schedule is attached.
  ASSERT_TRUE(payload.simulate.has_value());
  EXPECT_EQ(payload.simulate->kernels.size(),
            payload.plan.placements.size());
  EXPECT_GT(payload.simulate->total_ps, 0u);
  EXPECT_EQ(payload.simulate->atoms, 8u);

  // Placements and crossings are reported in the JobResult JSON and the
  // document round-trips exactly.
  const std::string dumped = result.to_json().dump(2);
  EXPECT_NE(dumped.find("\"placements\""), std::string::npos);
  EXPECT_NE(dumped.find("\"crossings\""), std::string::npos);
  const JobResult rebuilt = JobResult::from_json(Json::parse(dumped));
  EXPECT_EQ(rebuilt.to_json().dump(2), dumped);
}

TEST(CoDesignTest, CalibratedCpuEstimatesWithinTwoXOfMeasured) {
  // The acceptance bound of the co-design loop: after calibration, the
  // SCA's CPU roofline must reproduce every significant measured kernel
  // time (>= 2% of the traced total; sub-floor kernels are dominated by
  // call overhead the roofline does not model) within a factor of two.
  // Wall-clock measurement on a potentially loaded machine: warm up
  // first and accept the best of three recordings, so one preempted
  // kernel cannot fail the bound (same policy as the bench smoke gates).
  Engine engine(fast_config());
  ScfJob job = traced_scf();
  job.record_trace = false;
  (void)engine.run(job);  // warm the pool, plans and allocators first

  CalibrationPayload best;
  best.max_ratio = 1e18;
  for (int attempt = 0; attempt < 3 && best.max_ratio > 2.0; ++attempt) {
    const JobResult recorded = engine.run(traced_scf());
    ASSERT_TRUE(recorded.ok()) << recorded.error_message;
    CoDesignJob replay;
    replay.trace = *recorded.trace;
    replay.simulate = false;
    const JobResult result = engine.run(replay);
    ASSERT_TRUE(result.ok()) << result.error_message;
    const CalibrationPayload& calibration = result.codesign->calibration;
    if (calibration.calibrated && calibration.max_ratio < best.max_ratio) {
      best = calibration;
    }
  }
  EXPECT_TRUE(best.calibrated);
  EXPECT_GT(best.fitted_events, 0u);
  EXPECT_GT(best.peak_gflops, 0.0);
  EXPECT_GT(best.dram_gbps, 0.0);
  EXPECT_LE(best.max_ratio, 2.0)
      << "calibrated roofline misses measured kernel times";
}

TEST(CoDesignTest, CalibrationChangesTheCpuBeliefs) {
  // Direct check that the fitted profile differs from the paper's
  // Table III beliefs and reproduces through the public entry point.
  Engine engine(fast_config());
  (void)engine.run(traced_scf());  // warm
  const JobResult recorded = engine.run(traced_scf());
  ASSERT_TRUE(recorded.ok());
  const runtime::DeviceProfile base =
      engine.system_config().cpu_profile;
  const runtime::CpuCalibration calibration =
      runtime::calibrate_cpu(*recorded.trace, base);
  ASSERT_TRUE(calibration.calibrated);
  // The fit keeps the non-roofline beliefs (links, switch latency).
  EXPECT_EQ(calibration.profile.link_gbps, base.link_gbps);
  EXPECT_EQ(calibration.profile.switch_latency_ps, base.switch_latency_ps);
  // On any real machine at least one achieved rate differs from the
  // paper's Table III beliefs (which constant moves depends on whether
  // the trace's significant kernels were compute- or memory-bound).
  EXPECT_TRUE(calibration.profile.peak_gflops != base.peak_gflops ||
              calibration.profile.dram_gbps != base.dram_gbps ||
              calibration.profile.blocked_compute_efficiency !=
                  base.blocked_compute_efficiency);
}

}  // namespace
}  // namespace ndft::api
