// Unit tests for the NDP hardware: SPM allocator and timing, stack
// construction, the CPU port's SerDes+mesh+DRAM round trip, and kernel
// execution across stacks.

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "ndp/ndp_system.hpp"
#include "sim/event_queue.hpp"

namespace ndft::ndp {
namespace {

TEST(SpmTest, AllocateAlignsAndTracksUsage) {
  sim::EventQueue queue;
  Spm spm("spm", queue, SpmConfig::table3());
  const auto block = spm.alloc(100);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(spm.used(), 128u);  // 64 B aligned
  spm.free(*block);
  EXPECT_EQ(spm.used(), 0u);
}

TEST(SpmTest, ExhaustionReturnsNullopt) {
  sim::EventQueue queue;
  SpmConfig config;
  config.capacity = 1024;
  Spm spm("spm", queue, config);
  EXPECT_TRUE(spm.alloc(512).has_value());
  EXPECT_TRUE(spm.alloc(512).has_value());
  EXPECT_FALSE(spm.alloc(64).has_value());
}

TEST(SpmTest, FreeMergesNeighbours) {
  sim::EventQueue queue;
  SpmConfig config;
  config.capacity = 1024;
  Spm spm("spm", queue, config);
  const auto a = spm.alloc(256);
  const auto b = spm.alloc(256);
  const auto c = spm.alloc(512);
  ASSERT_TRUE(a && b && c);
  spm.free(*a);
  spm.free(*b);  // merges with a
  // A 512-byte block must fit in the merged front region.
  const auto d = spm.alloc(512);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 0u);
}

TEST(SpmTest, DoubleFreeRejected) {
  sim::EventQueue queue;
  Spm spm("spm", queue, SpmConfig::table3());
  const auto block = spm.alloc(64);
  spm.free(*block);
  EXPECT_THROW(spm.free(*block), NdftError);
}

TEST(SpmTest, AccessLatencyAndSerialization) {
  sim::EventQueue queue;
  SpmConfig config = SpmConfig::table3();
  Spm spm("spm", queue, config);
  TimePs small_done = 0;
  spm.read(64, [&](TimePs at) { small_done = at; });
  queue.run();
  EXPECT_EQ(small_done, config.access_latency_ps +
                            transfer_time_ps(64, config.bandwidth_gbps));
  // Bulk read takes proportionally longer.
  TimePs big_done = 0;
  const TimePs start = queue.now();
  spm.write(1 << 16, [&](TimePs at) { big_done = at; });
  queue.run();
  EXPECT_GT(big_done - start,
            transfer_time_ps(1 << 16, config.bandwidth_gbps) - 1);
}

TEST(SpmTest, PortContentionSerialisesAccesses) {
  sim::EventQueue queue;
  SpmConfig config = SpmConfig::table3();
  Spm spm("spm", queue, config);
  TimePs first = 0;
  TimePs second = 0;
  spm.read(1 << 14, [&](TimePs at) { first = at; });
  spm.read(1 << 14, [&](TimePs at) { second = at; });
  queue.run();
  EXPECT_GE(second - first,
            transfer_time_ps(1 << 14, config.bandwidth_gbps) - 1);
}

TEST(NdpStackTest, Table3Configuration) {
  const NdpStackConfig config = NdpStackConfig::table3();
  EXPECT_EQ(config.units, 8u);
  EXPECT_EQ(config.cores_per_unit, 2u);
  EXPECT_EQ(config.total_cores(), 16u);
  EXPECT_EQ(config.spm.capacity, 256u * 1024);
  sim::EventQueue queue;
  NdpStack stack("s", queue, config);
  EXPECT_EQ(stack.core_count(), 16u);
}

TEST(NdpSystemTest, Table3SystemShape) {
  const NdpSystemConfig config = NdpSystemConfig::table3();
  EXPECT_EQ(config.stacks(), 16u);
  EXPECT_EQ(config.total_cores(), 256u);
  EXPECT_EQ(config.total_capacity(), 64ull << 30);
}

TEST(NdpSystemTest, CpuPortReadRoundTrip) {
  sim::EventQueue queue;
  NdpSystem ndp("ndp", queue, NdpSystemConfig::table3());
  TimePs done = 0;
  mem::MemRequest req;
  req.addr = 12345 * 64;
  req.size = 64;
  req.on_complete = [&done](TimePs at) { done = at; };
  ndp.cpu_port().access(std::move(req));
  queue.run();
  // SerDes both ways + mesh both ways + DRAM: roughly 60-250 ns.
  EXPECT_GT(done, 50 * kPsPerNs);
  EXPECT_LT(done, 400 * kPsPerNs);
}

TEST(NdpSystemTest, CpuPortWriteIsPosted) {
  sim::EventQueue queue;
  NdpSystem ndp("ndp", queue, NdpSystemConfig::table3());
  TimePs write_done = 0;
  mem::MemRequest write;
  write.addr = 64;
  write.size = 64;
  write.is_write = true;
  write.on_complete = [&write_done](TimePs at) { write_done = at; };
  ndp.cpu_port().access(std::move(write));
  queue.run();
  TimePs read_done = 0;
  mem::MemRequest read;
  read.addr = 64;
  read.size = 64;
  read.on_complete = [&read_done](TimePs at) { read_done = at; };
  const TimePs start = queue.now();
  ndp.cpu_port().access(std::move(read));
  queue.run();
  // A posted write completes faster than a full read round trip.
  EXPECT_LT(write_done, read_done - start);
}

TEST(NdpSystemTest, StackInterleavingCoversAllStacks) {
  sim::EventQueue queue;
  NdpSystem ndp("ndp", queue, NdpSystemConfig::table3());
  // Consecutive lines map round-robin across the 16 stacks.
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(ndp.stack_of_core(i), i % 16);
  }
}

TEST(NdpSystemTest, RunsTracesAcrossStacks) {
  sim::EventQueue queue;
  NdpSystem ndp("ndp", queue, NdpSystemConfig::table3());
  std::vector<cpu::Trace> traces(32);
  for (unsigned t = 0; t < traces.size(); ++t) {
    for (int i = 0; i < 20; ++i) {
      cpu::TraceOp op;
      op.kind = cpu::OpKind::kLoad;
      op.addr = Addr(t) * (1 << 16) + Addr(i) * 64;
      op.size = 64;
      traces[t].ops.push_back(op);
    }
  }
  std::vector<const cpu::Trace*> ptrs;
  for (const auto& trace : traces) ptrs.push_back(&trace);
  bool done = false;
  ndp.run(ptrs, [&done] { done = true; });
  queue.run();
  EXPECT_TRUE(done);
  // Work landed in at least 16 distinct cores (2 per stack here).
  unsigned active = 0;
  for (unsigned s = 0; s < ndp.stack_count(); ++s) {
    for (unsigned c = 0; c < ndp.stack(s).core_count(); ++c) {
      if (ndp.stack(s).core(c).counters().loads > 0) ++active;
    }
  }
  EXPECT_EQ(active, 32u);
}

TEST(NdpSystemTest, LocalAccessBeatsCpuPort) {
  // The core premise of NDP: a stack-local access is much faster than the
  // CPU's SerDes+mesh round trip to the same data.
  sim::EventQueue queue;
  NdpSystem ndp("ndp", queue, NdpSystemConfig::table3());
  TimePs local_done = 0;
  mem::MemRequest local;
  local.addr = 0;
  local.size = 64;
  local.on_complete = [&local_done](TimePs at) { local_done = at; };
  ndp.stack(0).dram().access(std::move(local));
  queue.run();

  sim::EventQueue queue2;
  NdpSystem ndp2("ndp2", queue2, NdpSystemConfig::table3());
  TimePs remote_done = 0;
  mem::MemRequest remote;
  remote.addr = 10 * 64;  // stack 10: several mesh hops from any corner
  remote.size = 64;
  remote.on_complete = [&remote_done](TimePs at) { remote_done = at; };
  ndp2.cpu_port().access(std::move(remote));
  queue2.run();
  EXPECT_GT(remote_done, local_done * 2);
}

TEST(NdpSystemTest, RejectsTooManyTraces) {
  sim::EventQueue queue;
  NdpSystem ndp("ndp", queue, NdpSystemConfig::table3());
  cpu::Trace trace;
  std::vector<const cpu::Trace*> ptrs(257, &trace);
  EXPECT_THROW(ndp.run(ptrs, [] {}), NdftError);
}

}  // namespace
}  // namespace ndft::ndp
