#include "core/report.hpp"

#include "common/error.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"

namespace ndft::core {

const char* to_string(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::kCpuBaseline: return "CPU";
    case ExecMode::kGpuBaseline: return "GPU";
    case ExecMode::kNdpOnly: return "NDP-only";
    case ExecMode::kNdft: return "NDFT";
  }
  return "?";
}

TimePs RunReport::total_ps() const noexcept {
  TimePs total = sched_overhead_ps;
  for (const KernelTime& k : kernels) {
    total += k.time_ps;
  }
  return total;
}

TimePs RunReport::time_of(KernelClass cls) const noexcept {
  TimePs total = 0;
  for (const KernelTime& k : kernels) {
    if (k.cls == cls) {
      total += k.time_ps;
    }
  }
  return total;
}

std::string render_kernel_table(ExecMode mode, std::size_t atoms,
                                const std::vector<KernelTime>& kernels,
                                TimePs total_ps, TimePs sched_overhead_ps,
                                double memory_energy_mj) {
  TextTable table({"kernel", "class", "device", "time", "share"});
  const double total = static_cast<double>(total_ps);
  for (const KernelTime& k : kernels) {
    table.add_row({k.name, to_string(k.cls), to_string(k.device),
                   format_time(k.time_ps),
                   format_percent(static_cast<double>(k.time_ps) /
                                  (total > 0 ? total : 1.0))});
  }
  if (sched_overhead_ps != 0) {
    table.add_row({"(scheduling overhead)", "-", "-",
                   format_time(sched_overhead_ps),
                   format_percent(static_cast<double>(sched_overhead_ps) /
                                  (total > 0 ? total : 1.0))});
  }
  std::string out = strformat("%s on Si_%zu: total %s\n", to_string(mode),
                              atoms, format_time(total_ps).c_str());
  out += table.render();
  if (memory_energy_mj > 0.0) {
    out += strformat("memory-system energy: %.2f mJ\n", memory_energy_mj);
  }
  return out;
}

std::string RunReport::render() const {
  return render_kernel_table(mode, dims.atoms, kernels, total_ps(),
                             sched_overhead_ps, memory_energy_mj);
}

double speedup(const RunReport& baseline, const RunReport& candidate) {
  NDFT_REQUIRE(candidate.total_ps() > 0, "candidate has zero runtime");
  return static_cast<double>(baseline.total_ps()) /
         static_cast<double>(candidate.total_ps());
}

}  // namespace ndft::core
