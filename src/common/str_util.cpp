#include "common/str_util.hpp"

#include <cstdarg>
#include <cstdio>

namespace ndft {

std::string strformat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string format_bytes(Bytes bytes) {
  constexpr const char* suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t suffix = 0;
  while (value >= 1024.0 && suffix + 1 < std::size(suffixes)) {
    value /= 1024.0;
    ++suffix;
  }
  if (suffix == 0) {
    return strformat("%llu B", static_cast<unsigned long long>(bytes));
  }
  return strformat("%.2f %s", value, suffixes[suffix]);
}

std::string format_time(TimePs ps) {
  const double value = static_cast<double>(ps);
  if (ps < kPsPerNs) return strformat("%llu ps", (unsigned long long)ps);
  if (ps < kPsPerUs) return strformat("%.2f ns", value / kPsPerNs);
  if (ps < kPsPerMs) return strformat("%.2f us", value / kPsPerUs);
  if (ps < kPsPerSec) return strformat("%.2f ms", value / (double)kPsPerMs);
  return strformat("%.3f s", value / (double)kPsPerSec);
}

std::string format_speedup(double ratio) { return strformat("%.2fx", ratio); }

std::string format_percent(double fraction) {
  return strformat("%.2f %%", fraction * 100.0);
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text.substr(0, width);
  return text + std::string(width - text.size(), ' ');
}

}  // namespace ndft
