#include "api/result.hpp"

#include <cstring>
#include <iterator>

#include "common/str_util.hpp"

namespace ndft::api {
namespace {

constexpr const char* kSchema = "ndft.job_result.v1";

// ---- enum <-> string maps. Serialization reuses the human-readable
// names the reports already print, so JSON and text output agree.

KernelClass kernel_class_from(const std::string& name) {
  for (const KernelClass cls :
       {KernelClass::kFft, KernelClass::kFaceSplit, KernelClass::kGemm,
        KernelClass::kSyevd, KernelClass::kPseudopotential,
        KernelClass::kAlltoall, KernelClass::kOther}) {
    if (name == to_string(cls)) return cls;
  }
  throw NdftError("unknown kernel class: " + name);
}

DeviceKind device_from(const std::string& name) {
  for (const DeviceKind device :
       {DeviceKind::kCpu, DeviceKind::kNdp, DeviceKind::kGpu}) {
    if (name == to_string(device)) return device;
  }
  throw NdftError("unknown device: " + name);
}

core::ExecMode exec_mode_from(const std::string& name) {
  for (const core::ExecMode mode :
       {core::ExecMode::kCpuBaseline, core::ExecMode::kGpuBaseline,
        core::ExecMode::kNdpOnly, core::ExecMode::kNdft}) {
    if (name == core::to_string(mode)) return mode;
  }
  throw NdftError("unknown execution mode: " + name);
}

const char* granularity_name(runtime::Granularity granularity) {
  switch (granularity) {
    case runtime::Granularity::kInstruction: return "instruction";
    case runtime::Granularity::kBasicBlock: return "block";
    case runtime::Granularity::kFunction: return "function";
    case runtime::Granularity::kKernel: return "kernel";
  }
  return "?";
}

runtime::Granularity granularity_from(const std::string& name) {
  for (const runtime::Granularity g :
       {runtime::Granularity::kInstruction, runtime::Granularity::kBasicBlock,
        runtime::Granularity::kFunction, runtime::Granularity::kKernel}) {
    if (name == granularity_name(g)) return g;
  }
  throw NdftError("unknown granularity: " + name);
}

// ---- exhaustive enum name tables. The static_asserts tie the table
// length to the kCount_ sentinel, so adding an enumerator without a
// serialized name fails the build instead of silently printing "?" or
// breaking JSON round trips.

constexpr const char* kJobStatusNames[] = {
    "queued", "running", "ok", "invalid", "failed", "cancelled",
    "deadline_exceeded",
};
static_assert(std::size(kJobStatusNames) ==
                  static_cast<std::size_t>(JobStatus::kCount_),
              "every JobStatus enumerator needs a serialized name");

constexpr const char* kErrorKindNames[] = {
    "none", "invalid_request", "physics", "internal", "cancelled",
    "deadline_exceeded", "transient_resource", "transient_device",
};
static_assert(std::size(kErrorKindNames) ==
                  static_cast<std::size_t>(ErrorKind::kCount_),
              "every ErrorKind enumerator needs a serialized name");

// ---- small array helpers.

Json doubles_to_json(const std::vector<double>& values) {
  Json array = Json::array();
  for (const double v : values) array.push_back(v);
  return array;
}

std::vector<double> doubles_from_json(const Json& json) {
  std::vector<double> out;
  out.reserve(json.size());
  for (const Json& v : json.items()) out.push_back(v.as_double());
  return out;
}

// ---- payload serializers.

Json to_json(const ScfPayload& p) {
  Json j = Json::object();
  j.set("atoms", p.atoms);
  j.set("basis_size", p.basis_size);
  j.set("grid_points", p.grid_points);
  j.set("converged", p.converged);
  j.set("iterations", p.iterations);
  j.set("total_energy_ha", p.total_energy_ha);
  j.set("gap_ev", p.gap_ev);
  j.set("final_residual", p.final_residual);
  j.set("electron_count", p.electron_count);
  j.set("residual_history", doubles_to_json(p.residual_history));
  j.set("energy_history", doubles_to_json(p.energy_history));
  return j;
}

ScfPayload scf_from_json(const Json& j) {
  ScfPayload p;
  p.atoms = j.at("atoms").as_uint();
  p.basis_size = j.at("basis_size").as_uint();
  p.grid_points = j.at("grid_points").as_uint();
  p.converged = j.at("converged").as_bool();
  p.iterations = j.at("iterations").as_uint();
  p.total_energy_ha = j.at("total_energy_ha").as_double();
  p.gap_ev = j.at("gap_ev").as_double();
  p.final_residual = j.at("final_residual").as_double();
  p.electron_count = j.at("electron_count").as_double();
  p.residual_history = doubles_from_json(j.at("residual_history"));
  p.energy_history = doubles_from_json(j.at("energy_history"));
  return p;
}

Json to_json(const BandStructurePayload& p) {
  Json j = Json::object();
  j.set("basis_size", p.basis_size);
  Json path = Json::array();
  for (const BandsAtKPayload& at_k : p.path) {
    Json point = Json::object();
    point.set("label", at_k.label);
    point.set("energies_ha", doubles_to_json(at_k.energies_ha));
    point.set("weight", at_k.weight);
    // Additive since the scatter/gather layer (%.17g coordinates
    // round-trip bitwise, so merged and direct payloads stay comparable).
    Json coords = Json::array();
    for (const double c : at_k.k) coords.push_back(c);
    point.set("k", std::move(coords));
    path.push_back(std::move(point));
  }
  j.set("path", std::move(path));
  j.set("vbm_ha", p.vbm_ha);
  j.set("cbm_ha", p.cbm_ha);
  j.set("vbm_label", p.vbm_label);
  j.set("cbm_label", p.cbm_label);
  j.set("indirect_gap_ev", p.indirect_gap_ev);
  j.set("direct_gap_gamma_ev", p.direct_gap_gamma_ev);
  // Additive since the generalized (crystal + Monkhorst-Pack) job;
  // appended so older documents differ only by absent keys.
  j.set("atoms", p.atoms);
  j.set("sampling", p.sampling);
  j.set("band_energy_ha", p.band_energy_ha);
  j.set("weight_sum", p.weight_sum);
  return j;
}

BandStructurePayload bands_from_json(const Json& j) {
  BandStructurePayload p;
  p.basis_size = j.at("basis_size").as_uint();
  for (const Json& point : j.at("path").items()) {
    BandsAtKPayload at_k;
    at_k.label = point.at("label").as_string();
    at_k.energies_ha = doubles_from_json(point.at("energies_ha"));
    // Additive: unit weight in pre-grid documents.
    if (const Json* weight = point.find("weight")) {
      at_k.weight = weight->as_double();
    }
    // Additive: zero coordinates in pre-sharding documents.
    if (const Json* coords = point.find("k")) {
      NDFT_REQUIRE(coords->size() == 3, "point 'k' needs 3 coordinates");
      for (std::size_t i = 0; i < 3; ++i) {
        at_k.k[i] = (*coords)[i].as_double();
      }
    }
    p.path.push_back(std::move(at_k));
  }
  p.vbm_ha = j.at("vbm_ha").as_double();
  p.cbm_ha = j.at("cbm_ha").as_double();
  p.vbm_label = j.at("vbm_label").as_string();
  p.cbm_label = j.at("cbm_label").as_string();
  p.indirect_gap_ev = j.at("indirect_gap_ev").as_double();
  p.direct_gap_gamma_ev = j.at("direct_gap_gamma_ev").as_double();
  // Additive members: absent in documents emitted before the
  // generalized job; defaults keep them deserializable.
  if (const Json* atoms = j.find("atoms")) {
    p.atoms = atoms->as_uint();
  }
  if (const Json* sampling = j.find("sampling")) {
    p.sampling = sampling->as_string();
  }
  if (const Json* band_energy = j.find("band_energy_ha")) {
    p.band_energy_ha = band_energy->as_double();
  }
  if (const Json* weight_sum = j.find("weight_sum")) {
    p.weight_sum = weight_sum->as_double();
  }
  return p;
}

Json to_json(const LrtddftPayload& p) {
  Json j = Json::object();
  j.set("atoms", p.atoms);
  j.set("basis_size", p.basis_size);
  Json dims = Json::array();
  for (const std::size_t d : p.grid_dims) dims.push_back(d);
  j.set("grid_dims", std::move(dims));
  j.set("ground_gap_ev", p.ground_gap_ev);
  j.set("valence_bands", p.valence_bands);
  j.set("projector_count", p.projector_count);
  j.set("nonlocal_expectation_ha", p.nonlocal_expectation_ha);
  j.set("pair_count", p.pair_count);
  j.set("excitations_ha", doubles_to_json(p.excitations_ha));
  Json counts = Json::array();
  for (const KernelCountPayload& count : p.counts) {
    Json entry = Json::object();
    entry.set("class", to_string(count.cls));
    entry.set("flops", count.flops);
    entry.set("bytes", count.bytes);
    counts.push_back(std::move(entry));
  }
  j.set("counts", std::move(counts));
  Json lines = Json::array();
  for (const OscillatorLinePayload& line : p.lines) {
    Json entry = Json::object();
    entry.set("energy_ev", line.energy_ev);
    entry.set("strength", line.strength);
    lines.push_back(std::move(entry));
  }
  j.set("lines", std::move(lines));
  return j;
}

LrtddftPayload lrtddft_from_json(const Json& j) {
  LrtddftPayload p;
  p.atoms = j.at("atoms").as_uint();
  p.basis_size = j.at("basis_size").as_uint();
  const Json& dims = j.at("grid_dims");
  NDFT_REQUIRE(dims.size() == 3, "grid_dims must have 3 entries");
  for (std::size_t i = 0; i < 3; ++i) p.grid_dims[i] = dims[i].as_uint();
  p.ground_gap_ev = j.at("ground_gap_ev").as_double();
  p.valence_bands = j.at("valence_bands").as_uint();
  p.projector_count = j.at("projector_count").as_uint();
  p.nonlocal_expectation_ha = j.at("nonlocal_expectation_ha").as_double();
  p.pair_count = j.at("pair_count").as_uint();
  p.excitations_ha = doubles_from_json(j.at("excitations_ha"));
  for (const Json& entry : j.at("counts").items()) {
    KernelCountPayload count;
    count.cls = kernel_class_from(entry.at("class").as_string());
    count.flops = entry.at("flops").as_uint();
    count.bytes = entry.at("bytes").as_uint();
    p.counts.push_back(count);
  }
  for (const Json& entry : j.at("lines").items()) {
    OscillatorLinePayload line;
    line.energy_ev = entry.at("energy_ev").as_double();
    line.strength = entry.at("strength").as_double();
    p.lines.push_back(line);
  }
  return p;
}

Json to_json(const SimulatePayload& p) {
  Json j = Json::object();
  j.set("mode", core::to_string(p.mode));
  j.set("atoms", p.atoms);
  j.set("pairs", p.pairs);
  j.set("grid_points", p.grid_points);
  j.set("basis_size", p.basis_size);
  Json kernels = Json::array();
  for (const core::KernelTime& k : p.kernels) {
    Json entry = Json::object();
    entry.set("name", k.name);
    entry.set("class", to_string(k.cls));
    entry.set("device", to_string(k.device));
    entry.set("time_ps", k.time_ps);
    kernels.push_back(std::move(entry));
  }
  j.set("kernels", std::move(kernels));
  j.set("total_ps", p.total_ps);
  j.set("sched_overhead_ps", p.sched_overhead_ps);
  j.set("memory_energy_mj", p.memory_energy_mj);
  j.set("mesh_bytes", p.mesh_bytes);
  j.set("sharing_bytes", p.sharing_bytes);
  Json pseudo = Json::object();
  pseudo.set("total", p.pseudo_total);
  pseudo.set("per_process", p.pseudo_per_process);
  pseudo.set("capacity", p.pseudo_capacity);
  pseudo.set("out_of_memory", p.pseudo_oom);
  j.set("pseudo", std::move(pseudo));
  // Additive: omitted entirely when empty so pre-fabric documents and
  // their byte-exact round-trips are unchanged.
  if (!p.stats.empty()) {
    Json stats = Json::object();
    for (const auto& [name, value] : p.stats) stats.set(name, value);
    j.set("stats", std::move(stats));
  }
  return j;
}

SimulatePayload simulate_from_json(const Json& j) {
  SimulatePayload p;
  p.mode = exec_mode_from(j.at("mode").as_string());
  p.atoms = j.at("atoms").as_uint();
  p.pairs = j.at("pairs").as_uint();
  p.grid_points = j.at("grid_points").as_uint();
  p.basis_size = j.at("basis_size").as_uint();
  for (const Json& entry : j.at("kernels").items()) {
    core::KernelTime k;
    k.name = entry.at("name").as_string();
    k.cls = kernel_class_from(entry.at("class").as_string());
    k.device = device_from(entry.at("device").as_string());
    k.time_ps = entry.at("time_ps").as_uint();
    p.kernels.push_back(std::move(k));
  }
  p.total_ps = j.at("total_ps").as_uint();
  p.sched_overhead_ps = j.at("sched_overhead_ps").as_uint();
  p.memory_energy_mj = j.at("memory_energy_mj").as_double();
  p.mesh_bytes = j.at("mesh_bytes").as_uint();
  p.sharing_bytes = j.at("sharing_bytes").as_uint();
  const Json& pseudo = j.at("pseudo");
  p.pseudo_total = pseudo.at("total").as_uint();
  p.pseudo_per_process = pseudo.at("per_process").as_uint();
  p.pseudo_capacity = pseudo.at("capacity").as_uint();
  p.pseudo_oom = pseudo.at("out_of_memory").as_bool();
  if (const Json* stats = j.find("stats")) {
    for (const auto& [name, value] : stats->members()) {
      p.stats[name] = value.as_double();
    }
  }
  return p;
}

Json to_json(const PlanPayload& p) {
  Json j = Json::object();
  j.set("atoms", p.atoms);
  j.set("granularity", granularity_name(p.granularity));
  Json placements = Json::array();
  for (const PlacementPayload& placement : p.placements) {
    Json entry = Json::object();
    entry.set("kernel", placement.kernel);
    entry.set("class", to_string(placement.cls));
    entry.set("device", to_string(placement.device));
    entry.set("crossing", placement.crossing);
    entry.set("est_time_ps", placement.est_time_ps);
    entry.set("transfer_in_ps", placement.transfer_in_ps);
    entry.set("switch_in_ps", placement.switch_in_ps);
    entry.set("arithmetic_intensity", placement.arithmetic_intensity);
    entry.set("est_cpu_ps", placement.est_cpu_ps);
    entry.set("est_ndp_ps", placement.est_ndp_ps);
    placements.push_back(std::move(entry));
  }
  j.set("placements", std::move(placements));
  j.set("est_total_ps", p.est_total_ps);
  j.set("est_overhead_ps", p.est_overhead_ps);
  j.set("crossings", p.crossings);
  // Additive: omitted when false so older documents round-trip unchanged.
  if (p.used_stored_profile) j.set("used_stored_profile", true);
  return j;
}

PlanPayload plan_from_json(const Json& j) {
  PlanPayload p;
  p.atoms = j.at("atoms").as_uint();
  p.granularity = granularity_from(j.at("granularity").as_string());
  for (const Json& entry : j.at("placements").items()) {
    PlacementPayload placement;
    placement.kernel = entry.at("kernel").as_string();
    placement.cls = kernel_class_from(entry.at("class").as_string());
    placement.device = device_from(entry.at("device").as_string());
    placement.crossing = entry.at("crossing").as_bool();
    placement.est_time_ps = entry.at("est_time_ps").as_uint();
    placement.transfer_in_ps = entry.at("transfer_in_ps").as_uint();
    placement.switch_in_ps = entry.at("switch_in_ps").as_uint();
    placement.arithmetic_intensity =
        entry.at("arithmetic_intensity").as_double();
    placement.est_cpu_ps = entry.at("est_cpu_ps").as_uint();
    placement.est_ndp_ps = entry.at("est_ndp_ps").as_uint();
    p.placements.push_back(std::move(placement));
  }
  p.est_total_ps = j.at("est_total_ps").as_uint();
  p.est_overhead_ps = j.at("est_overhead_ps").as_uint();
  p.crossings = static_cast<unsigned>(j.at("crossings").as_uint());
  if (const Json* used = j.find("used_stored_profile")) {
    p.used_stored_profile = used->as_bool();
  }
  return p;
}

Json to_json(const CalibrationPayload& p) {
  Json j = Json::object();
  j.set("calibrated", p.calibrated);
  j.set("peak_gflops", p.peak_gflops);
  j.set("dram_gbps", p.dram_gbps);
  j.set("blocked_efficiency", p.blocked_efficiency);
  j.set("max_ratio", p.max_ratio);
  j.set("fitted_events", p.fitted_events);
  j.set("fitted_ms", p.fitted_ms);
  return j;
}

CalibrationPayload calibration_from_json(const Json& j) {
  CalibrationPayload p;
  p.calibrated = j.at("calibrated").as_bool();
  p.peak_gflops = j.at("peak_gflops").as_double();
  p.dram_gbps = j.at("dram_gbps").as_double();
  p.blocked_efficiency = j.at("blocked_efficiency").as_double();
  p.max_ratio = j.at("max_ratio").as_double();
  p.fitted_events = j.at("fitted_events").as_uint();
  p.fitted_ms = j.at("fitted_ms").as_double();
  return p;
}

Json to_json(const CoDesignPayload& p) {
  Json j = Json::object();
  j.set("trace_events", p.trace_events);
  j.set("trace_atoms", p.trace_atoms);
  j.set("trace_flops", p.trace_flops);
  j.set("trace_bytes", p.trace_bytes);
  j.set("trace_host_ms", p.trace_host_ms);
  j.set("trace_truncated", p.trace_truncated);
  j.set("calibration", to_json(p.calibration));
  j.set("plan", to_json(p.plan));
  j.set("simulate", p.simulate ? to_json(*p.simulate) : Json());
  return j;
}

CoDesignPayload codesign_from_json(const Json& j) {
  CoDesignPayload p;
  p.trace_events = j.at("trace_events").as_uint();
  p.trace_atoms = j.at("trace_atoms").as_uint();
  p.trace_flops = j.at("trace_flops").as_uint();
  p.trace_bytes = j.at("trace_bytes").as_uint();
  p.trace_host_ms = j.at("trace_host_ms").as_double();
  p.trace_truncated = j.at("trace_truncated").as_bool();
  p.calibration = calibration_from_json(j.at("calibration"));
  p.plan = plan_from_json(j.at("plan"));
  const Json& simulate = j.at("simulate");
  if (!simulate.is_null()) {
    p.simulate = simulate_from_json(simulate);
  }
  return p;
}

}  // namespace

const char* to_string(JobStatus status) noexcept {
  const auto index = static_cast<std::size_t>(status);
  return index < std::size(kJobStatusNames) ? kJobStatusNames[index] : "?";
}

const char* to_string(ErrorKind kind) noexcept {
  const auto index = static_cast<std::size_t>(kind);
  return index < std::size(kErrorKindNames) ? kErrorKindNames[index] : "?";
}

JobStatus job_status_from_string(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kJobStatusNames); ++i) {
    if (name == kJobStatusNames[i]) return static_cast<JobStatus>(i);
  }
  throw NdftError("unknown job status: " + name);
}

ErrorKind error_kind_from_string(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kErrorKindNames); ++i) {
    if (name == kErrorKindNames[i]) return static_cast<ErrorKind>(i);
  }
  throw NdftError("unknown error kind: " + name);
}

bool is_transient(ErrorKind kind) noexcept {
  return kind == ErrorKind::kTransientResource ||
         kind == ErrorKind::kTransientDevice;
}

Json JobResult::to_json() const {
  Json j = Json::object();
  j.set("schema", kSchema);
  j.set("kind", engine.kind);
  j.set("status", to_string(status));

  Json error_json = Json::object();
  error_json.set("kind", to_string(error));
  error_json.set("message", error_message);
  Json details = Json::array();
  for (const std::string& detail : error_details) details.push_back(detail);
  error_json.set("details", std::move(details));
  j.set("error", std::move(error_json));

  Json timings_json = Json::object();
  timings_json.set("queue_ms", timings.queue_ms);
  timings_json.set("run_ms", timings.run_ms);
  timings_json.set("total_ms", timings.total_ms);
  timings_json.set("linalg_ms", timings.linalg_ms);
  timings_json.set("backoff_ms", timings.backoff_ms);
  timings_json.set("reduce_ms", timings.reduce_ms);
  timings_json.set("tridiag_ms", timings.tridiag_ms);
  timings_json.set("backtransform_ms", timings.backtransform_ms);
  j.set("timings", std::move(timings_json));

  Json engine_json = Json::object();
  engine_json.set("job_id", engine.job_id);
  engine_json.set("pool_threads", engine.pool_threads);
  engine_json.set("dispatch_threads", engine.dispatch_threads);
  engine_json.set("exec_seq", engine.exec_seq);
  engine_json.set("attempts", engine.attempts);
  j.set("engine", std::move(engine_json));

  // Additive since the robustness layer: how (if at all) the run was
  // degraded to still succeed.
  Json degraded_json = Json::array();
  for (const std::string& note : degraded) degraded_json.push_back(note);
  j.set("degraded", std::move(degraded_json));

  Json payload = Json();  // null unless a payload is engaged
  if (scf) payload = api::to_json(*scf);
  else if (band_structure) payload = api::to_json(*band_structure);
  else if (lrtddft) payload = api::to_json(*lrtddft);
  else if (simulate) payload = api::to_json(*simulate);
  else if (plan) payload = api::to_json(*plan);
  else if (codesign) payload = api::to_json(*codesign);
  j.set("payload", std::move(payload));
  // Additive since the schema's first emission: the recorded kernel
  // trace rides along when the request asked for one.
  j.set("trace", trace ? trace->to_json() : Json());
  // Additive since the scatter/gather layer: fan-out accounting when a
  // ShardedEngine executed the job (null for plain Engine results).
  if (shard) {
    Json shard_json = Json::object();
    shard_json.set("backends", shard->backends);
    shard_json.set("shards", shard->shards);
    shard_json.set("rerouted", shard->rerouted);
    shard_json.set("failed_backends", shard->failed_backends);
    j.set("shard", std::move(shard_json));
  } else {
    j.set("shard", Json());
  }
  return j;
}

JobResult JobResult::from_json(const Json& json) {
  NDFT_REQUIRE(json.is_object(), "job result must be a JSON object");
  const std::string schema = json.at("schema").as_string();
  NDFT_REQUIRE(schema == kSchema,
               ("unsupported schema: " + schema).c_str());

  JobResult result;
  result.engine.kind = json.at("kind").as_string();
  result.status = job_status_from_string(json.at("status").as_string());

  const Json& error_json = json.at("error");
  result.error = error_kind_from_string(error_json.at("kind").as_string());
  result.error_message = error_json.at("message").as_string();
  for (const Json& detail : error_json.at("details").items()) {
    result.error_details.push_back(detail.as_string());
  }

  const Json& timings_json = json.at("timings");
  result.timings.queue_ms = timings_json.at("queue_ms").as_double();
  result.timings.run_ms = timings_json.at("run_ms").as_double();
  result.timings.total_ms = timings_json.at("total_ms").as_double();
  // Additive telemetry introduced after v1 results were first emitted:
  // absent in older documents, default 0 keeps them deserializable.
  if (const Json* linalg = timings_json.find("linalg_ms")) {
    result.timings.linalg_ms = linalg->as_double();
  }
  if (const Json* backoff = timings_json.find("backoff_ms")) {
    result.timings.backoff_ms = backoff->as_double();
  }
  if (const Json* reduce = timings_json.find("reduce_ms")) {
    result.timings.reduce_ms = reduce->as_double();
  }
  if (const Json* tridiag = timings_json.find("tridiag_ms")) {
    result.timings.tridiag_ms = tridiag->as_double();
  }
  if (const Json* back = timings_json.find("backtransform_ms")) {
    result.timings.backtransform_ms = back->as_double();
  }

  const Json& engine_json = json.at("engine");
  result.engine.job_id = engine_json.at("job_id").as_uint();
  result.engine.pool_threads = engine_json.at("pool_threads").as_uint();
  result.engine.dispatch_threads =
      engine_json.at("dispatch_threads").as_uint();
  // Additive since the cost-aware queue; absent in older documents.
  if (const Json* seq = engine_json.find("exec_seq")) {
    result.engine.exec_seq = seq->as_uint();
  }
  // Additive since the retry loop; absent in older documents.
  if (const Json* attempts = engine_json.find("attempts")) {
    result.engine.attempts =
        static_cast<std::uint32_t>(attempts->as_uint());
  }
  if (const Json* degraded_json = json.find("degraded")) {
    for (const Json& note : degraded_json->items()) {
      result.degraded.push_back(note.as_string());
    }
  }

  const Json& payload = json.at("payload");
  if (!payload.is_null()) {
    const std::string& kind = result.engine.kind;
    if (kind == "scf") result.scf = scf_from_json(payload);
    else if (kind == "band_structure")
      result.band_structure = bands_from_json(payload);
    else if (kind == "lrtddft") result.lrtddft = lrtddft_from_json(payload);
    else if (kind == "simulate")
      result.simulate = simulate_from_json(payload);
    else if (kind == "plan") result.plan = plan_from_json(payload);
    else if (kind == "codesign")
      result.codesign = codesign_from_json(payload);
    else throw NdftError("unknown payload kind: " + kind);
  }
  // Absent in documents emitted before traces existed; null when the
  // request did not record one.
  if (const Json* trace_json = json.find("trace")) {
    if (!trace_json->is_null()) {
      result.trace = KernelTrace::from_json(*trace_json);
    }
  }
  // Absent in pre-sharding documents; null for plain Engine results.
  if (const Json* shard_json = json.find("shard")) {
    if (!shard_json->is_null()) {
      ShardInfo info;
      info.backends = shard_json->at("backends").as_uint();
      info.shards = shard_json->at("shards").as_uint();
      info.rerouted = shard_json->at("rerouted").as_uint();
      info.failed_backends = shard_json->at("failed_backends").as_uint();
      result.shard = info;
    }
  }
  return result;
}

}  // namespace ndft::api
