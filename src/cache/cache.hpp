#pragma once
// Non-blocking set-associative cache model.
//
// Write-back, write-allocate, true-LRU replacement, MSHR-based miss
// coalescing and an optional table-driven stride prefetcher. Caches chain
// through the MemoryPort interface: L1 -> L2 -> L3 -> DRAM, and the same
// class models every level (only the configuration differs).

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/mem_request.hpp"
#include "sim/sim_object.hpp"

namespace ndft::cache {

/// Geometry and latency of one cache level.
struct CacheConfig {
  Bytes size_bytes = 32 * 1024;
  unsigned ways = 8;
  Bytes line_bytes = 64;
  TimePs hit_latency_ps = 1334;  ///< tag+data access (4 cycles @ 3 GHz)
  unsigned mshrs = 16;           ///< outstanding distinct-line misses
  bool prefetch = false;         ///< enable the stride prefetcher
  unsigned prefetch_degree = 2;  ///< lines fetched ahead per trigger

  /// Number of sets implied by the geometry.
  unsigned sets() const noexcept {
    return static_cast<unsigned>(size_bytes / (line_bytes * ways));
  }

  /// 32 KiB 8-way L1 with 4-cycle latency at `freq_mhz`.
  static CacheConfig l1(std::uint64_t freq_mhz);
  /// 256 KiB 8-way L2 with 12-cycle latency at `freq_mhz`.
  static CacheConfig l2(std::uint64_t freq_mhz);
  /// 2 MiB 16-way L3 with 38-cycle latency at `freq_mhz`.
  static CacheConfig l3(std::uint64_t freq_mhz);
};

/// Event counters kept as plain integers (the access path is too hot for
/// string-keyed stats); publish_stats() copies them into the StatSet.
struct CacheCounters {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;       ///< misses merged into an MSHR
  std::uint64_t mshr_stalls = 0;     ///< requests parked for a free MSHR
  std::uint64_t writebacks = 0;
  std::uint64_t evictions = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t flush_writebacks = 0;
};

/// One cache level. Thread-unsafe by design: the event queue serialises.
class Cache : public sim::SimObject, public mem::MemoryPort {
 public:
  /// `next` is the next level towards memory; must outlive this cache.
  Cache(std::string name, sim::EventQueue& queue, const CacheConfig& config,
        mem::MemoryPort& next);

  /// Handles a request from the level above (or a core).
  void access(mem::MemRequest req) override;

  /// Invalidates every line, writing back dirty ones.
  void flush();

  /// Drops every line without writebacks. Used between *sampled* kernel
  /// windows: consecutive windows model independent steady-state slices,
  /// so carrying one window's full dirty LLC into the next would charge
  /// the (tiny) sampled window for the whole cache's drain.
  void invalidate_all();

  /// Hit ratio so far (0 when no accesses).
  double hit_ratio() const noexcept;

  /// Raw event counters.
  const CacheCounters& counters() const noexcept { return counters_; }

  /// Copies the counters into the named StatSet (call before reading
  /// stats()).
  void publish_stats();

  const CacheConfig& config() const noexcept { return config_; }

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;
  };

  struct Mshr {
    std::vector<mem::MemRequest> waiters;
    bool is_prefetch = false;
  };

  struct StrideStream {
    Addr last_line = 0;
    std::int64_t stride = 0;
    int confidence = 0;
  };

  Addr line_of(Addr addr) const noexcept { return addr / config_.line_bytes; }
  unsigned set_of(Addr line) const noexcept {
    return static_cast<unsigned>(line % sets_);
  }

  Line* lookup(Addr line_addr);
  Line& choose_victim(unsigned set);
  void handle_fill(Addr line_addr);
  void issue_fill(Addr line_addr, bool is_prefetch);
  void complete(mem::MemRequest& req, TimePs at);
  void maybe_prefetch(Addr line_addr);
  void retry_blocked();

  CacheConfig config_;
  mem::MemoryPort* next_;
  unsigned sets_;
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
  std::unordered_map<Addr, Mshr> mshrs_;
  std::deque<mem::MemRequest> blocked_;  // waiting for a free MSHR
  std::unordered_map<Addr, StrideStream> streams_;  // page -> stream state
  std::uint64_t lru_tick_ = 0;
  CacheCounters counters_;
};

/// A private L1+L2 pair in front of a shared port; convenience for building
/// per-core hierarchies.
class PrivateHierarchy {
 public:
  PrivateHierarchy(const std::string& name, sim::EventQueue& queue,
                   const CacheConfig& l1_cfg, const CacheConfig& l2_cfg,
                   mem::MemoryPort& shared);

  /// The port cores issue into (the L1).
  mem::MemoryPort& port() noexcept { return *l1_; }
  Cache& l1() noexcept { return *l1_; }
  Cache& l2() noexcept { return *l2_; }

 private:
  std::unique_ptr<Cache> l2_;
  std::unique_ptr<Cache> l1_;
};

}  // namespace ndft::cache
