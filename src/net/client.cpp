#include "net/client.hpp"

#include <utility>

namespace ndft::net {

HttpClient::HttpClient(std::string host, std::uint16_t port,
                       double timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

HttpResponse HttpClient::request(const std::string& method,
                                 const std::string& target,
                                 const std::string& body,
                                 const std::string& content_type) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  if (!bearer_.empty()) {
    wire += "Authorization: Bearer " + bearer_ + "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Type: " + content_type + "\r\n";
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  const bool was_connected = socket_.valid();
  if (!was_connected) {
    socket_ = Socket::connect(host_, port_);
    pipeline_rest_.clear();
  }
  try {
    return round_trip(wire);
  } catch (const NdftError&) {
    // A kept-alive connection the server closed between requests looks
    // like EOF/EPIPE on first reuse; retry once on a fresh connection.
    if (!was_connected) throw;
    socket_ = Socket::connect(host_, port_);
    pipeline_rest_.clear();
    return round_trip(wire);
  }
}

HttpResponse HttpClient::round_trip(const std::string& wire) {
  socket_.send_all(wire);
  HttpParser parser(HttpParser::Kind::kResponse);
  if (!pipeline_rest_.empty()) {
    parser.feed(pipeline_rest_);
    pipeline_rest_.clear();
  }
  char buf[8192];
  while (parser.state() == HttpParser::State::kNeedMore) {
    const long n = socket_.recv_some(buf, sizeof(buf), timeout_ms_);
    if (n < 0) {
      socket_.close();
      throw NdftError("HTTP response timeout after " +
                      std::to_string(timeout_ms_) + " ms");
    }
    if (n == 0) {
      socket_.close();
      throw NdftError("connection closed mid-response");
    }
    parser.feed(buf, static_cast<std::size_t>(n));
  }
  if (parser.state() == HttpParser::State::kError) {
    socket_.close();
    throw NdftError("malformed HTTP response: " + parser.error_detail());
  }
  HttpResponse response = parser.response();
  pipeline_rest_ = parser.remainder();
  // Honor the server's connection decision.
  std::string connection;
  for (const auto& [key, value] : response.headers) {
    if (key == "connection") connection = value;
  }
  if (connection == "close") socket_.close();
  return response;
}

}  // namespace ndft::net
