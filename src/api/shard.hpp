#pragma once
// Scatter/gather execution across N engines: the distributed front door.
//
// A ShardedEngine splits one BandStructureJob into per-k sub-jobs (and a
// batch of requests into per-member sub-jobs), fans them out across its
// backends — in-process Engines via LocalBackend, remote ndft_serve
// instances via HttpBackend speaking the PR 7 wire protocol
// (ndft.job_request.v1 in, long-polled ndft.job_result.v1 out) — and
// merges the partial payloads back into one JobResult.
//
// Determinism contract: the merged payload is bitwise identical to a
// single Engine::run of the same request, for any backend count and any
// completion order. Two properties carry it:
//   * scatter is canonical — the k-set (Monkhorst-Pack grids folded to
//     the time-reversal half via band_job_kpoints, exactly as the Engine
//     itself folds) is chunked contiguously in grid order, and gathered
//     results keep that order regardless of which backend finished when;
//   * the gap summary is recomputed ONCE over the concatenated points,
//     replaying dft::find_gap's arithmetic (weighted band-energy sums
//     first, a single final normalization by the total weight_sum) —
//     never by averaging per-shard summaries, whose per-run
//     normalization would double-divide and break bitwise equality.
//
// Failure model: a backend whose execute() throws NdftError is retried
// with deterministic backoff, then marked down for the run; its shards
// re-queue and the surviving workers absorb them. When every backend is
// down, the remaining shards degrade to local execution on a private
// fallback engine (tag "shard:local_fallback"). Cancellation and
// deadlines are observed between shard dispatches and propagate into
// sub-job deadline budgets. Fan-out accounting rides JobResult::shard.
//
// See docs/SHARDING.md for topology and semantics.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/job.hpp"
#include "api/result.hpp"
#include "common/cancel.hpp"

namespace ndft::net {
class HttpClient;
}

namespace ndft::api {

/// One execution backend of a ShardedEngine. execute() runs a request to
/// a terminal result on the calling thread; it throws NdftError when the
/// backend itself fails (transport error, dead engine) — the sharder then
/// retries/reroutes — while request-level failures come back inside the
/// JobResult. A ShardedEngine calls execute() from at most one thread at
/// a time per backend instance.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual const std::string& name() const noexcept = 0;
  virtual JobResult execute(const JobRequest& request) = 0;
};

/// Backend over a borrowed in-process Engine (must outlive the backend).
class LocalBackend final : public Backend {
 public:
  explicit LocalBackend(Engine& engine, std::string name = "local");
  const std::string& name() const noexcept override { return name_; }
  JobResult execute(const JobRequest& request) override;

 private:
  Engine& engine_;
  std::string name_;
};

/// Backend over a remote ndft_serve instance: POST /v1/jobs with a
/// long-poll, then GET-poll the job to its terminal result. A 4xx on
/// submission becomes a structured failed JobResult (the request itself
/// is at fault); transport errors and backend saturation (429/5xx) throw
/// NdftError so the sharder can reroute.
class HttpBackend final : public Backend {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string bearer;            ///< "" = no Authorization header
    double timeout_ms = 30000.0;   ///< per HTTP round trip
    double poll_wait_ms = 2000.0;  ///< long-poll slice per request
    /// Give up waiting for a sub-job after this long (0 = forever); the
    /// job-level deadline usually bites first.
    double result_deadline_ms = 600000.0;
  };

  explicit HttpBackend(Config config);
  ~HttpBackend() override;
  const std::string& name() const noexcept override { return name_; }
  JobResult execute(const JobRequest& request) override;

 private:
  Config config_;
  std::string name_;
  std::mutex mutex_;  // HttpClient is not thread-safe; serialize execute()
  std::unique_ptr<net::HttpClient> client_;
};

/// ShardedEngine construction knobs.
struct ShardedEngineConfig {
  /// Target sub-jobs per backend when splitting one job: oversubscription
  /// smooths uneven per-shard times and lets survivors absorb a failed
  /// backend's shards in small pieces. 1 = one chunk per backend.
  std::size_t shards_per_backend = 4;
  /// Floor on k-points per shard; below it the per-shard basis rebuild
  /// dominates the eigensolves it amortizes.
  std::size_t min_points_per_shard = 2;
  /// execute() attempts per backend before it is marked down for the run
  /// (transient transport blips retry in place; composes with the
  /// Engine's own internal retry of transient faults). 1 disables.
  unsigned backend_attempts = 2;
  /// Deterministic pause before an in-place backend retry.
  double retry_backoff_ms = 10.0;
  /// When every backend is down, run leftover shards on a private local
  /// fallback engine and tag the result "shard:local_fallback" instead
  /// of failing the job.
  bool allow_local_fallback = true;
  /// Config of the lazily created fallback engine (dispatch threads are
  /// forced to 0 — the fallback only ever services synchronous run()).
  EngineConfig local;
};

/// The distributed front door: same run()/run_batch() shape as Engine,
/// scatter/gather underneath. Thread-safe; backends are owned shared so
/// topologies can share engines between sharders.
class ShardedEngine {
 public:
  explicit ShardedEngine(std::vector<std::shared_ptr<Backend>> backends,
                         ShardedEngineConfig config = {});
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Validates and executes `request`, scattering splittable jobs
  /// (band-structure k-sets) across the backends. Non-splittable
  /// requests run whole on one backend. Never throws for request-level
  /// problems; all failure surfaces as JobResult status/error.
  JobResult run(const JobRequest& request);
  /// Same, observing an external cancel token between shard dispatches.
  JobResult run(const JobRequest& request, const CancelToken& cancel);

  /// Scatters independent requests across the backends, one sub-job per
  /// member, and gathers results in submission order. Each member's
  /// result is exactly what a single Engine::run would produce.
  std::vector<JobResult> run_batch(const std::vector<JobRequest>& requests);
  std::vector<JobResult> run_batch(const std::vector<JobRequest>& requests,
                                   const CancelToken& cancel);

  std::size_t backend_count() const noexcept { return backends_.size(); }

  // ---- lifetime counters (the /metrics-style view of the fan-out).
  std::uint64_t jobs_run() const noexcept { return jobs_run_; }
  std::uint64_t shards_executed() const noexcept { return shards_exec_; }
  std::uint64_t shards_rerouted() const noexcept { return rerouted_; }
  std::uint64_t backends_failed() const noexcept { return backends_failed_; }
  std::uint64_t local_fallback_shards() const noexcept {
    return local_fallback_;
  }

 private:
  struct ScatterOutcome;
  struct RunGuard;

  JobResult run_impl(const JobRequest& request, const RunGuard& guard);
  std::vector<JobResult> run_batch_impl(
      const std::vector<JobRequest>& requests, const RunGuard& guard);
  /// Fans `subs` out across the backends (one worker thread per backend,
  /// shared shard queue, reroute on backend loss), filling `outcome`.
  void execute_scatter(const std::vector<JobRequest>& subs,
                       const RunGuard& guard, ScatterOutcome& outcome);
  /// Runs one non-splittable request whole on some backend (round-robin
  /// with failover), with the same local fallback as scatter.
  JobResult execute_single(const JobRequest& request, const RunGuard& guard,
                           ShardInfo& info);
  Engine& fallback_engine();

  std::vector<std::shared_ptr<Backend>> backends_;
  ShardedEngineConfig config_;

  std::mutex fallback_mutex_;            // guards lazy creation
  std::unique_ptr<Engine> fallback_;     // created on first use

  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> next_backend_{0};  // round-robin cursor
  std::atomic<std::uint64_t> jobs_run_{0};
  std::atomic<std::uint64_t> shards_exec_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> backends_failed_{0};
  std::atomic<std::uint64_t> local_fallback_{0};
};

}  // namespace ndft::api
