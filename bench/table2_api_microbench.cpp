// API microbenchmarks, two layers:
//
//  1. The job-oriented Engine API (the system's front door): submit and
//     drain latency plus throughput of async batches at sizes 1 / 8 / 64,
//     for cheap PlanJobs and for trace-driven SimulateJobs. Results are
//     written to BENCH_api.json for cross-commit tracking.
//  2. Table II of the paper: latency and bandwidth of the NDFT
//     shared-memory programming interface inside the simulated machine,
//     separating intra-stack accesses (SPM-backed) from inter-stack
//     accesses (arbiter + mesh). This measures the *simulated* API the
//     NDP processes use, not the host-side Engine.

#include <chrono>
#include <cstdio>
#include <vector>

#include "api/engine.hpp"
#include "common/json.hpp"
#include "common/run_metadata.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "ndp/ndp_system.hpp"
#include "runtime/shared_memory.hpp"

using namespace ndft;

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

struct BatchSample {
  const char* job_kind = "";
  std::size_t batch = 0;
  double submit_us = 0.0;  ///< enqueue all requests
  double drain_us = 0.0;   ///< wait for the whole batch
  double jobs_per_sec = 0.0;
};

/// Submits `batch` copies of `request` and times enqueue vs drain.
BatchSample run_batch(api::Engine& engine, const api::JobRequest& request,
                      std::size_t batch) {
  std::vector<api::JobRequest> requests(batch, request);
  const Clock::time_point t0 = Clock::now();
  std::vector<api::JobHandle> handles =
      engine.submit_batch(std::move(requests));
  const Clock::time_point t1 = Clock::now();
  for (const api::JobHandle& handle : handles) {
    const api::JobResult& result = handle.wait();
    if (!result.ok()) {
      // Throw rather than exit: the Engine must unwind (joining its
      // dispatchers) before the process tears down static state.
      throw NdftError("bench job failed: " + result.error_message);
    }
  }
  const Clock::time_point t2 = Clock::now();

  BatchSample sample;
  sample.batch = batch;
  sample.submit_us = us_between(t0, t1);
  sample.drain_us = us_between(t1, t2);
  const double total_s = us_between(t0, t2) * 1e-6;
  sample.jobs_per_sec =
      total_s > 0.0 ? static_cast<double>(batch) / total_s : 0.0;
  return sample;
}

/// Runs one timed shared-memory API call, returning completion latency.
template <typename Fn>
TimePs timed(sim::EventQueue& queue, Fn&& call) {
  const TimePs start = queue.now();
  TimePs end = start;
  call([&end](TimePs at) { end = at; });
  queue.run();
  return end - start;
}

}  // namespace

int main() try {
  // ---------------------------------------------------- Engine job API
  std::printf("Engine API microbenchmark: async submit/drain\n\n");

  api::EngineConfig config;
  config.dispatch_threads = 4;
  // Cheap trace windows: this benchmarks the submission path, not the
  // fidelity of the simulated machines.
  config.system.sampled_ops_per_kernel = 20000;
  config.system.min_ops_per_core = 200;
  api::Engine engine(config);

  api::PlanJob plan_job;
  plan_job.atoms = 256;

  api::SimulateJob simulate_job;
  simulate_job.atoms = 16;
  simulate_job.mode = core::ExecMode::kNdft;

  std::vector<BatchSample> samples;
  for (const std::size_t batch : {1u, 8u, 64u}) {
    BatchSample sample = run_batch(engine, plan_job, batch);
    sample.job_kind = "plan";
    samples.push_back(sample);
  }
  // Trace-driven simulation is ~1e5 slower per job; stop at batch 8 so
  // the bench stays interactive.
  for (const std::size_t batch : {1u, 8u}) {
    BatchSample sample = run_batch(engine, simulate_job, batch);
    sample.job_kind = "simulate";
    samples.push_back(sample);
  }

  TextTable api_table({"job", "batch", "submit", "drain", "us/job",
                       "jobs/s"});
  for (const BatchSample& s : samples) {
    api_table.add_row(
        {s.job_kind, strformat("%zu", s.batch),
         strformat("%.1f us", s.submit_us),
         strformat("%.1f us", s.drain_us),
         strformat("%.1f", (s.submit_us + s.drain_us) /
                               static_cast<double>(s.batch)),
         strformat("%.1f", s.jobs_per_sec)});
  }
  std::printf("%s\n", api_table.render().c_str());

  Json bench = Json::object();
  bench.set("bench", "api_submit_drain");
  bench.set("meta", run_metadata_json());
  bench.set("dispatch_threads", config.dispatch_threads);
  Json entries = Json::array();
  for (const BatchSample& s : samples) {
    Json entry = Json::object();
    entry.set("job_kind", s.job_kind);
    entry.set("batch", s.batch);
    entry.set("submit_us", s.submit_us);
    entry.set("drain_us", s.drain_us);
    entry.set("jobs_per_sec", s.jobs_per_sec);
    entries.push_back(std::move(entry));
  }
  bench.set("batches", std::move(entries));
  const char* path = "BENCH_api.json";
  if (std::FILE* file = std::fopen(path, "w")) {
    const std::string text = bench.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("wrote %zu batch records to %s\n\n", samples.size(), path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
  }

  // ------------------------------------------- Table II (simulated API)
  std::printf("Table II microbenchmark: NDFT shared-memory API\n\n");

  sim::EventQueue queue;
  ndp::NdpSystem ndp("ndp", queue, ndp::NdpSystemConfig::table3());
  runtime::SharedMemoryManager shm("shm", queue, ndp,
                                   runtime::SharedMemoryConfig{});

  TextTable table({"API call", "payload", "latency", "effective GB/s"});
  const auto add = [&](const char* name, Bytes bytes, TimePs latency) {
    const double gbps =
        latency == 0 ? 0.0
                     : static_cast<double>(bytes) /
                           static_cast<double>(latency);  // B/ps = TB/s
    table.add_row({name, format_bytes(bytes), format_time(latency),
                   strformat("%.2f", gbps * 1000.0)});
  };

  // Alloc + intra-stack read/write on a 16 KiB block owned by unit 0.
  const runtime::SharedBlock block = shm.alloc_shared(16 * 1024, 0);
  add("NDFT_Alloc_Shared(16 KiB)", 16 * 1024, 0);
  for (const Bytes size : {Bytes{256}, Bytes{4096}, Bytes{16384}}) {
    add("NDFT_Read (intra-stack)", size,
        timed(queue, [&](auto cb) { shm.read(block, size, cb); }));
    add("NDFT_Write (intra-stack)", size,
        timed(queue, [&](auto cb) { shm.write(block, size, cb); }));
  }

  // Remote reads: first touch crosses the mesh, the second hits the
  // arbiter's staging filter.
  for (const unsigned requester : {1u, 15u}) {
    const std::string label =
        strformat("NDFT_Read_Remote (stack %u, cold)", requester);
    add(label.c_str(), 16384, timed(queue, [&](auto cb) {
          shm.read_remote(block, 16384, requester, cb);
        }));
    const std::string warm =
        strformat("NDFT_Read_Remote (stack %u, staged)", requester);
    add(warm.c_str(), 16384, timed(queue, [&](auto cb) {
          shm.read_remote(block, 16384, requester, cb);
        }));
  }
  add("NDFT_Write_Remote (stack 15)", 16384, timed(queue, [&](auto cb) {
        shm.write_remote(block, 16384, 15, cb);
      }));
  add("NDFT_Broadcast (16 KiB to 15 stacks)", 16384 * 15,
      timed(queue, [&](auto cb) { shm.broadcast(block, cb); }));

  std::printf("%s\n", table.render().c_str());
  std::printf("staging filter: %llu hits, %llu misses; intra %s, inter %s\n",
              static_cast<unsigned long long>(shm.staging_hits()),
              static_cast<unsigned long long>(shm.staging_misses()),
              format_bytes(shm.intra_stack_bytes()).c_str(),
              format_bytes(shm.inter_stack_bytes()).c_str());
  return 0;
} catch (const NdftError& error) {
  std::fprintf(stderr, "table2_api_microbench: %s\n", error.what());
  return 1;
}
