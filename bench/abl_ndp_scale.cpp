// Ablation A6: how NDFT scales with the number of memory stacks (the
// "future work" axis of the paper: a bigger mesh means more near-data
// bandwidth and compute but longer average hop counts).

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"

using namespace ndft;

int main() {
  std::printf("Ablation A6: NDFT vs mesh size (Si_256)\n\n");
  struct MeshCase {
    const char* name;
    unsigned width;
    unsigned height;
  };
  const MeshCase cases[] = {{"2x2 (4 stacks)", 2, 2},
                            {"2x4 (8 stacks)", 2, 4},
                            {"4x4 (16 stacks, Table III)", 4, 4},
                            {"4x8 (32 stacks)", 4, 8}};

  TextTable table({"mesh", "NDP cores", "HBM peak", "CPU time",
                   "NDFT time", "speedup"});
  for (const MeshCase& mesh_case : cases) {
    core::SystemConfig config = core::SystemConfig::paper_default();
    config.ndp.mesh.width = mesh_case.width;
    config.ndp.mesh.height = mesh_case.height;
    config.processes.stacks = config.ndp.stacks();
    const core::NdftSystem system(config);
    const dft::Workload workload = system.workload_for(256);
    const core::RunReport cpu =
        system.run(workload, core::ExecMode::kCpuBaseline);
    const core::RunReport ndft = system.run(workload, core::ExecMode::kNdft);
    const double hbm_gbps =
        config.ndp.stack.dram.peak_gbps() * config.ndp.stacks();
    table.add_row({mesh_case.name,
                   strformat("%u", config.ndp.total_cores()),
                   strformat("%.0f GB/s", hbm_gbps),
                   format_time(cpu.total_ps()),
                   format_time(ndft.total_ps()),
                   format_speedup(core::speedup(cpu, ndft))});
    std::fflush(stdout);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
