#pragma once
// Analytic device profiles used by the static code analyzer and the
// cost-aware scheduler. These are the scheduler's *beliefs* about the
// machine (peak rates and transfer costs); the actual performance comes
// from the timing simulation, which is how scheduling mispredictions stay
// possible, as in the real system.

#include "common/json.hpp"
#include "common/types.hpp"

namespace ndft::runtime {

/// What the scheduler knows about one execution domain.
struct DeviceProfile {
  DeviceKind kind = DeviceKind::kCpu;
  double peak_gflops = 0.0;   ///< aggregate FP throughput
  double dram_gbps = 0.0;     ///< sustained memory bandwidth
  double link_gbps = 0.0;     ///< bandwidth for moving data to this device
  TimePs switch_latency_ps = 0;  ///< context-switch cost (CXT in Eq. 1)
  /// FP efficiency on blocked/irregular kernels (dense panels, tiled
  /// GEMM). In-order wimpy cores cannot keep their FMA pipes fed through
  /// panel factorisations, so the NDP side carries a penalty here.
  double blocked_compute_efficiency = 1.0;

  /// Machine balance in flop/byte: kernels above are compute-bound here.
  double balance() const noexcept {
    return dram_gbps <= 0.0 ? 1e18 : peak_gflops / dram_gbps;
  }

  /// Table III host CPU reaching HBM through the SerDes links.
  static DeviceProfile table3_cpu();
  /// Table III NDP side: 128 units x 2 wimpy cores with stack-local HBM.
  static DeviceProfile table3_ndp();
  /// Section V Xeon baseline (2x E5-2695, DDR4).
  static DeviceProfile xeon_baseline();

  /// JSON form used by the job-request wire schema and the on-disk
  /// device-profile store; from_json(to_json()) round-trips exactly.
  Json to_json() const;
  static DeviceProfile from_json(const Json& j);
};

}  // namespace ndft::runtime
