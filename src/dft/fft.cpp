#include "dft/fft.hpp"

#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>

#include "common/kernel_trace.hpp"
#include "common/math_util.hpp"
#include "common/thread_pool.hpp"

namespace ndft::dft {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

Complex unit_root(double turns) {
  // exp(2*pi*i*turns), computed from the angle for accuracy.
  return Complex{std::cos(kTwoPi * turns), std::sin(kTwoPi * turns)};
}

/// Smallest factor of n among {2,3,5}; 0 if none divides n.
std::size_t small_factor(std::size_t n) {
  if (n % 2 == 0) return 2;
  if (n % 3 == 0) return 3;
  if (n % 5 == 0) return 5;
  return 0;
}

/// Conjugates on demand so one forward twiddle table serves both
/// directions.
template <bool Inverse>
Complex directed(const Complex& root) {
  if constexpr (Inverse) {
    return std::conj(root);
  } else {
    return root;
  }
}

/// Lines gathered per batch in the strided (Y/Z) fft3d passes: enough that
/// every cache line fetched from the grid is used fully while hot.
constexpr std::size_t kLineBatch = 8;

}  // namespace

// ---------------------------------------------------------------- FftPlan

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (n_ <= 1) {
    kind_ = Kind::kTrivial;
    return;
  }
  if (is_pow2(n_)) {
    kind_ = Kind::kPow2;
    // Half-table of forward roots: stage `len` uses index k * (n/len),
    // which stays below n/2 for every butterfly.
    roots_.resize(n_ / 2);
    for (std::size_t k = 0; k < n_ / 2; ++k) {
      roots_[k] = unit_root(-static_cast<double>(k) / static_cast<double>(n_));
    }
    bitrev_.resize(n_);
    for (std::size_t i = 0, j = 0; i < n_; ++i) {
      bitrev_[i] = static_cast<std::uint32_t>(j);
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) {
        j ^= bit;
      }
      j |= bit;
    }
    workspace_size_ = 0;
    return;
  }
  if (is_friendly_size(n_)) {
    kind_ = Kind::kMixed;
    // Full forward root table: every recursion level works on a length
    // n' dividing n, so w_{n'}^t = roots_[t * (n/n')].
    roots_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      roots_[k] = unit_root(-static_cast<double>(k) / static_cast<double>(n_));
    }
    // Workspace: an output line plus the recursion arena (one live `sub`
    // buffer per level: n + n/p1 + n/(p1*p2) + ... < 2n).
    std::size_t arena = 0;
    for (std::size_t level = n_; level > 1; level /= small_factor(level)) {
      arena += level;
    }
    workspace_size_ = n_ + arena;
    return;
  }

  kind_ = Kind::kBluestein;
  // Forward chirp is w^{k^2/2} with w = exp(-2*pi*i/n); k^2 mod 2n avoids
  // catastrophic angle loss for large k (lengths stay far below 2^32).
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t k2 = (k * k) % (2 * n_);
    chirp_[k] = unit_root(-0.5 * static_cast<double>(k2) /
                          static_cast<double>(n_));
  }
  const std::size_t conv_n = next_pow2(2 * n_ - 1);
  conv_plan_ = std::make_unique<FftPlan>(conv_n);
  // Convolution kernels b_k = w^{-k^2/2} for each direction, transformed
  // once here so execute() only does the two data FFTs.
  b_spec_fwd_.assign(conv_n, Complex{});
  b_spec_inv_.assign(conv_n, Complex{});
  for (std::size_t k = 0; k < n_; ++k) {
    b_spec_fwd_[k] = std::conj(chirp_[k]);
    b_spec_inv_[k] = chirp_[k];
    if (k > 0) {
      b_spec_fwd_[conv_n - k] = std::conj(chirp_[k]);
      b_spec_inv_[conv_n - k] = chirp_[k];
    }
  }
  conv_plan_->pow2_core<false>(b_spec_fwd_.data());
  conv_plan_->pow2_core<false>(b_spec_inv_.data());
  workspace_size_ = conv_n;
}

FftPlan::~FftPlan() = default;

template <bool Inverse>
void FftPlan::pow2_core(Complex* data) const {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t root_stride = n / len;
    for (std::size_t block = 0; block < n; block += len) {
      Complex* lo = data + block;
      Complex* hi = lo + half;
      for (std::size_t k = 0; k < half; ++k) {
        const Complex w = directed<Inverse>(roots_[k * root_stride]);
        const Complex even = lo[k];
        const Complex odd = hi[k] * w;
        lo[k] = even + odd;
        hi[k] = even - odd;
      }
    }
  }
}

template <bool Inverse>
void FftPlan::mixed_recurse(const Complex* in, Complex* out, std::size_t n,
                            std::size_t stride, Complex* work) const {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  if (n == 2) {
    const Complex a = in[0];
    const Complex b = in[stride];
    out[0] = a + b;
    out[1] = a - b;
    return;
  }
  const std::size_t p = small_factor(n);
  NDFT_ASSERT(p != 0);
  const std::size_t m = n / p;
  const std::size_t root_stride = n_ / n;  // table is built for length n_

  // Sub-transforms of the p decimated sequences, laid out back to back in
  // this level's slice of the arena.
  Complex* sub = work;
  for (std::size_t r = 0; r < p; ++r) {
    mixed_recurse<Inverse>(in + r * stride, sub + r * m, m, stride * p,
                           work + n);
  }

  // Combine: X[q + s*m] = sum_r w_n^{r q} * w_p^{r s} * Sub_r[q].
  if (p == 2) {
    for (std::size_t q = 0; q < m; ++q) {
      const Complex w = directed<Inverse>(roots_[q * root_stride]);
      const Complex t = sub[m + q] * w;
      out[q] = sub[q] + t;
      out[q + m] = sub[q] - t;
    }
    return;
  }
  const std::size_t p_root_stride = n_ / p;
  for (std::size_t q = 0; q < m; ++q) {
    Complex twiddled[5];
    twiddled[0] = sub[q];
    for (std::size_t r = 1; r < p; ++r) {
      const Complex w = directed<Inverse>(roots_[r * q * root_stride]);
      twiddled[r] = sub[r * m + q] * w;
    }
    for (std::size_t s = 0; s < p; ++s) {
      Complex acc = twiddled[0];
      for (std::size_t r = 1; r < p; ++r) {
        const Complex w =
            directed<Inverse>(roots_[((r * s) % p) * p_root_stride]);
        acc += twiddled[r] * w;
      }
      out[q + s * m] = acc;
    }
  }
}

template <bool Inverse>
void FftPlan::bluestein_core(Complex* data, Complex* work) const {
  const std::size_t n = n_;
  const std::size_t conv_n = conv_plan_->length();
  Complex* a = work;
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = data[k] * directed<Inverse>(chirp_[k]);
  }
  for (std::size_t k = n; k < conv_n; ++k) {
    a[k] = Complex{};
  }
  conv_plan_->pow2_core<false>(a);
  const std::vector<Complex>& b_spec = Inverse ? b_spec_inv_ : b_spec_fwd_;
  for (std::size_t k = 0; k < conv_n; ++k) {
    a[k] *= b_spec[k];
  }
  conv_plan_->pow2_core<true>(a);
  const double scale = 1.0 / static_cast<double>(conv_n);
  for (std::size_t k = 0; k < n; ++k) {
    data[k] = a[k] * scale * directed<Inverse>(chirp_[k]);
  }
}

void FftPlan::execute(Complex* data, Complex* work,
                      FftDirection direction) const {
  const bool inverse = (direction == FftDirection::kInverse);
  switch (kind_) {
    case Kind::kTrivial:
      return;
    case Kind::kPow2:
      if (inverse) {
        pow2_core<true>(data);
      } else {
        pow2_core<false>(data);
      }
      break;
    case Kind::kMixed: {
      // work = [output line | recursion arena].
      Complex* out = work;
      if (inverse) {
        mixed_recurse<true>(data, out, n_, 1, work + n_);
      } else {
        mixed_recurse<false>(data, out, n_, 1, work + n_);
      }
      std::copy(out, out + n_, data);
      break;
    }
    case Kind::kBluestein:
      if (inverse) {
        bluestein_core<true>(data, work);
      } else {
        bluestein_core<false>(data, work);
      }
      break;
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      data[k] *= scale;
    }
  }
}

void FftPlan::execute(std::vector<Complex>& data,
                      FftDirection direction) const {
  NDFT_REQUIRE(data.size() == n_, "fft plan length mismatch");
  std::vector<Complex> work(workspace_size());
  execute(data.data(), work.data(), direction);
}

const FftPlan& fft_plan(std::size_t n) {
  static std::mutex mutex;
  static std::unordered_map<std::size_t, std::unique_ptr<FftPlan>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  std::unique_ptr<FftPlan>& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<FftPlan>(n);
  }
  return *slot;
}

// ------------------------------------------------------------- free funcs

bool is_friendly_size(std::size_t n) {
  if (n == 0) return false;
  for (std::size_t p : {2, 3, 5}) {
    while (n % p == 0) n /= p;
  }
  return n == 1;
}

std::size_t friendly_size(std::size_t n) {
  NDFT_REQUIRE(n >= 1, "friendly_size needs n >= 1");
  while (!is_friendly_size(n)) {
    ++n;
  }
  return n;
}

void fft(std::vector<Complex>& data, FftDirection direction) {
  if (data.size() <= 1) return;
  fft_plan(data.size()).execute(data, direction);
}

Flops fft_flops(std::size_t n) {
  if (n <= 1) return 0;
  const double logn = std::log2(static_cast<double>(n));
  return static_cast<Flops>(5.0 * static_cast<double>(n) * logn);
}

namespace {

/// Transforms `batch` lines that are adjacent in x: line b has elements
/// base[b + i * stride]. The gather walks the grid with unit stride in b,
/// so every fetched cache line is consumed whole while hot.
/// Out of line for the same bitwise-identity reason as transform_x_lines
/// below: every caller must run the same machine code.
[[gnu::noinline]] void transform_line_batch(
    Complex* base, std::size_t batch, std::size_t len, std::size_t stride,
    const FftPlan& plan, FftDirection direction, Complex* gather,
    Complex* work) {
  for (std::size_t i = 0; i < len; ++i) {
    const Complex* src = base + i * stride;
    for (std::size_t b = 0; b < batch; ++b) {
      gather[b * len + i] = src[b];
    }
  }
  for (std::size_t b = 0; b < batch; ++b) {
    plan.execute(gather + b * len, work, direction);
  }
  for (std::size_t i = 0; i < len; ++i) {
    Complex* dst = base + i * stride;
    for (std::size_t b = 0; b < batch; ++b) {
      dst[b] = gather[b * len + i];
    }
  }
}

}  // namespace

namespace {

/// The Z pass shared by the fused and unfused 3D transforms: lines of
/// stride nx*ny, batched over adjacent x; one task per y row.
void fft3d_z_pass(Complex* data, std::size_t nx, std::size_t ny,
                  std::size_t nz, FftDirection direction) {
  const FftPlan& plan = fft_plan(nz);
  parallel_for(
      0, ny, parallel_grain(nx * nz), [&](std::size_t lo, std::size_t hi) {
        std::vector<Complex> gather(kLineBatch * nz);
        std::vector<Complex> work(plan.workspace_size());
        for (std::size_t iy = lo; iy < hi; ++iy) {
          for (std::size_t ix = 0; ix < nx; ix += kLineBatch) {
            const std::size_t batch = std::min(kLineBatch, nx - ix);
            transform_line_batch(data + iy * nx + ix, batch, nz, nx * ny,
                                 plan, direction, gather.data(),
                                 work.data());
          }
        }
      });
}

/// Transforms `count` contiguous X lines starting at `base` in place.
/// Shared (and kept out of line) by the fused and unfused 3D transforms:
/// the compiler may contract/vectorise the line kernels differently per
/// inlining site, so the fused/unfused bitwise-identity contract requires
/// both to run the exact same machine code.
[[gnu::noinline]] void transform_x_lines(Complex* base, std::size_t count,
                                         std::size_t nx, const FftPlan& plan,
                                         FftDirection direction,
                                         Complex* work) {
  for (std::size_t line = 0; line < count; ++line) {
    plan.execute(base + line * nx, work, direction);
  }
}

}  // namespace

void fft3d(Grid3& grid, FftDirection direction, OpCount* count) {
  const std::size_t nx = grid.nx();
  const std::size_t ny = grid.ny();
  const std::size_t nz = grid.nz();
  NDFT_REQUIRE(nx > 0 && ny > 0 && nz > 0, "fft3d on an empty grid");
  KernelTimer trace(KernelClass::kFft, "fft3d");
  trace.set_dims(nx, ny, nz);
  trace.set_work(fft_flops(grid.size()),
                 static_cast<Bytes>(4) * grid.size() * sizeof(Complex));
  trace.set_io(grid.size() * sizeof(Complex), grid.size() * sizeof(Complex));
  Complex* data = grid.raw().data();

  // Fused X+Y pass: one task per z slab transforms that slab's X lines
  // in place and immediately re-reads it for the strided Y lines while
  // the slab (nx*ny points) is still cache-resident — the X-pass scatter
  // and the Y-pass gather share one trip through memory, so the full
  // transform sweeps the grid 4 times instead of 6. Per-line arithmetic
  // and ordering are exactly those of the unfused passes, so results are
  // bitwise identical to fft3d_unfused for any thread count (each slab
  // is written by exactly one task).
  {
    const FftPlan& plan_x = fft_plan(nx);
    const FftPlan& plan_y = fft_plan(ny);
    parallel_for(
        0, nz, parallel_grain(nx * ny), [&](std::size_t lo, std::size_t hi) {
          std::vector<Complex> work_x(plan_x.workspace_size());
          std::vector<Complex> gather(kLineBatch * ny);
          std::vector<Complex> work_y(plan_y.workspace_size());
          for (std::size_t iz = lo; iz < hi; ++iz) {
            Complex* slab = data + iz * nx * ny;
            transform_x_lines(slab, ny, nx, plan_x, direction,
                              work_x.data());
            for (std::size_t ix = 0; ix < nx; ix += kLineBatch) {
              const std::size_t batch = std::min(kLineBatch, nx - ix);
              transform_line_batch(slab + ix, batch, ny, nx, plan_y,
                                   direction, gather.data(), work_y.data());
            }
          }
        });
  }
  fft3d_z_pass(data, nx, ny, nz, direction);
  if (count != nullptr) {
    const std::size_t n = grid.size();
    count->add(fft_flops(n),
               // Fused X+Y sweep (read + write) plus the Z sweep.
               static_cast<Bytes>(4) * n * sizeof(Complex));
  }
}

void fft3d_unfused(Grid3& grid, FftDirection direction, OpCount* count) {
  const std::size_t nx = grid.nx();
  const std::size_t ny = grid.ny();
  const std::size_t nz = grid.nz();
  NDFT_REQUIRE(nx > 0 && ny > 0 && nz > 0, "fft3d on an empty grid");
  KernelTimer trace(KernelClass::kFft, "fft3d.unfused");
  trace.set_dims(nx, ny, nz);
  trace.set_work(fft_flops(grid.size()),
                 static_cast<Bytes>(6) * grid.size() * sizeof(Complex));
  trace.set_io(grid.size() * sizeof(Complex), grid.size() * sizeof(Complex));
  Complex* data = grid.raw().data();

  // X lines are contiguous rows of the storage: transform them in place,
  // no gather/scatter round trip at all.
  {
    const FftPlan& plan = fft_plan(nx);
    parallel_for(0, ny * nz, parallel_grain(nx),
                 [&](std::size_t lo, std::size_t hi) {
                   std::vector<Complex> work(plan.workspace_size());
                   transform_x_lines(data + lo * nx, hi - lo, nx, plan,
                                     direction, work.data());
                 });
  }
  // Y lines: stride nx, batched over adjacent x; one task per z slab.
  {
    const FftPlan& plan = fft_plan(ny);
    parallel_for(
        0, nz, parallel_grain(nx * ny), [&](std::size_t lo, std::size_t hi) {
          std::vector<Complex> gather(kLineBatch * ny);
          std::vector<Complex> work(plan.workspace_size());
          for (std::size_t iz = lo; iz < hi; ++iz) {
            for (std::size_t ix = 0; ix < nx; ix += kLineBatch) {
              const std::size_t batch = std::min(kLineBatch, nx - ix);
              transform_line_batch(data + iz * nx * ny + ix, batch, ny, nx,
                                   plan, direction, gather.data(),
                                   work.data());
            }
          }
        });
  }
  fft3d_z_pass(data, nx, ny, nz, direction);
  if (count != nullptr) {
    const std::size_t n = grid.size();
    count->add(fft_flops(n),
               // One read + one write of the full grid per dimension.
               static_cast<Bytes>(6) * n * sizeof(Complex));
  }
}

}  // namespace ndft::dft
