#pragma once
// Service: the route table of the NDFT HTTP front end. Owns no sockets —
// it is an HttpHandler (plug it into HttpServer, or call handle()
// directly in tests to skip the wire) that maps requests onto a
// borrowed api::Engine:
//
//   GET    /healthz           liveness (auth-exempt)
//   GET    /metrics           Prometheus text format (auth-exempt)
//   POST   /v1/jobs           submit an ndft.job_request.v1 body;
//                             202 + Location, or 200 with the full
//                             ndft.job_result.v1 when ?wait_ms= is given
//                             and the job finishes in time
//   GET    /v1/jobs/{id}      poll (or long-poll with ?wait_ms=) status;
//                             terminal jobs return the full result
//   DELETE /v1/jobs/{id}      cancel
//
// Cross-cutting: static bearer-token auth, per-client token-bucket rate
// limiting, per-client queue quotas, and one structured log line per
// request with latency.

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "net/http.hpp"

namespace ndft::net {

struct ServiceConfig {
  /// Accepted bearer tokens. Empty falls back to the NDFT_AUTH_TOKENS
  /// environment variable (comma-separated); when that is empty too, the
  /// service runs open (no auth) — the loopback-development default.
  std::vector<std::string> auth_tokens;
  /// Token-bucket rate limit per client address; <= 0 disables limiting.
  double rate_limit_per_s = 0.0;
  /// Bucket depth (burst size). Defaults to the per-second rate.
  double rate_burst = 0.0;
  /// Max simultaneously queued-or-running jobs per client address;
  /// 0 = unlimited.
  std::size_t queue_quota = 0;
  /// Terminal jobs kept for GET after completion; oldest are evicted.
  std::size_t max_retained_jobs = 4096;
  /// Structured request log destination; nullptr silences logging.
  std::FILE* log = stderr;
};

class Service {
 public:
  /// `engine` must outlive the Service.
  Service(api::Engine& engine, ServiceConfig config = {});

  /// Routes one request. Thread-safe; this is the HttpHandler.
  HttpResponse handle(const HttpRequest& request);

  /// Count of responses sent per HTTP status code (for tests/metrics).
  std::uint64_t responses_with_status(int status);

 private:
  struct JobEntry {
    api::JobHandle handle;
    std::string client;
  };
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
    bool initialized = false;
  };

  HttpResponse route(const HttpRequest& request);
  HttpResponse post_job(const HttpRequest& request);
  HttpResponse get_job(const HttpRequest& request, std::uint64_t id);
  HttpResponse delete_job(const HttpRequest& request, std::uint64_t id);
  HttpResponse metrics();

  bool authorized(const HttpRequest& request) const;
  /// True when the client is within its rate limit (consumes a token).
  /// On rejection, `*retry_after_s` (when non-null) receives the whole
  /// seconds until the bucket refills enough for one request (>= 1) —
  /// the value the 429's Retry-After header advertises.
  bool admit_rate(const std::string& client, double* retry_after_s = nullptr);
  /// Queued-or-running jobs owned by `client` (prunes terminal handles).
  std::size_t active_jobs_locked(const std::string& client);
  void retain_locked(std::uint64_t id, JobEntry entry);
  void log_request(const HttpRequest& request, int status,
                   double latency_ms) const;

  api::Engine& engine_;
  ServiceConfig config_;
  std::vector<std::string> tokens_;  // resolved auth tokens

  std::mutex mutex_;
  std::map<std::uint64_t, JobEntry> jobs_;
  std::deque<std::uint64_t> job_order_;  // insertion order, for eviction
  std::map<std::string, Bucket> buckets_;
  std::map<int, std::uint64_t> status_counts_;
  mutable std::mutex log_mutex_;
};

}  // namespace ndft::net
