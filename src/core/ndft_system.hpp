#pragma once
// NdftSystem: the public facade of the framework.
//
// Builds the paper's three machines from a SystemConfig, constructs the
// LR-TDDFT workload for a silicon system, and simulates one iteration in
// any of the four execution modes (CPU baseline, GPU baseline, NDP-only,
// NDFT). Timing for CPU/NDP modes is trace-driven through the cache/DRAM/
// mesh models; the GPU baseline is analytic (see src/gpu).

#include <memory>

#include "core/report.hpp"
#include "core/system_config.hpp"
#include "dft/workload.hpp"
#include "runtime/scheduler.hpp"

namespace ndft::core {

/// The simulated-machine template of the framework. Thread-safe: the
/// instance itself is immutable after construction, and every run()
/// builds its complete simulation state (event queue, machines, trace
/// arena) locally — see RunArena in ndft_system.cpp — so any number of
/// concurrent runs may share one instance. ndft::api::Engine relies on
/// this to execute concurrent SimulateJobs against a single template;
/// prefer entering through the Engine rather than using this class
/// directly.
class NdftSystem {
 public:
  explicit NdftSystem(SystemConfig config = SystemConfig::paper_default());

  /// The representative LR-TDDFT iteration for an Si_n system.
  dft::Workload workload_for(std::size_t atoms) const;

  /// A measured workload rebuilt from a recorded kernel trace; plan() and
  /// run() accept it interchangeably with the analytic model (the
  /// co-design loop: record a real DFT run, replay it on the simulated
  /// machine).
  dft::Workload workload_from_trace(const KernelTrace& trace) const;

  /// The cost-aware schedule NDFT would use for a workload.
  runtime::ExecutionPlan plan(
      const dft::Workload& workload,
      runtime::Granularity granularity =
          runtime::Granularity::kFunction) const;

  /// Simulates one iteration of `workload` on the chosen machine.
  RunReport run(const dft::Workload& workload, ExecMode mode) const;

  /// Convenience: workload_for(atoms) + run().
  RunReport run(std::size_t atoms, ExecMode mode) const;

  /// Simulates the CPU-NDP machine under a caller-provided schedule
  /// (e.g. from the adaptive scheduler or a what-if experiment).
  RunReport run_planned(const dft::Workload& workload,
                        const runtime::ExecutionPlan& plan) const;

  const SystemConfig& config() const noexcept { return config_; }

 private:
  RunReport run_cpu_baseline(const dft::Workload& workload) const;
  RunReport run_gpu_baseline(const dft::Workload& workload) const;
  RunReport run_ndp(const dft::Workload& workload, bool co_design) const;
  RunReport run_hybrid(const dft::Workload& workload,
                       const runtime::ExecutionPlan& plan, ExecMode mode,
                       bool co_design) const;

  SystemConfig config_;
};

}  // namespace ndft::core
