#include "dft/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "dft/lattice.hpp"
#include "dft/linalg.hpp"

namespace ndft::dft {
namespace {

/// Volume per silicon atom in Bohr^3 (diamond cell: a0^3 / 8).
double si_volume_per_atom() {
  const double a0 = kSiliconLatticeBohr;
  return a0 * a0 * a0 / 8.0;
}

// Class-specific DRAM reuse assumptions, shared by the analytic
// descriptors and the trace conversion so measured and analytic
// workloads land on the same roofline axes.

/// Cache-blocked GEMM (b = 192): DRAM traffic is flops / 48.
constexpr Flops kGemmBlockedReuse = 48;

/// Two-stage blocked SYEVD: arithmetic intensity grows as n/340 between
/// the memory-bound small-matrix regime and the panel cap.
double syevd_ai(double n) { return std::clamp(n / 340.0, 1.0, 16.0); }

}  // namespace

SystemDims SystemDims::silicon(std::size_t atoms, double ecut_ha) {
  NDFT_REQUIRE(atoms >= 8 && atoms % 8 == 0,
               "silicon systems need a multiple of 8 atoms");
  SystemDims dims;
  dims.atoms = atoms;
  dims.ecut_ha = ecut_ha;
  dims.valence_bands = 2 * atoms;
  // Energy-window truncation around the gap, standard for large-system
  // LR-TDDFT: the response is built from the bands nearest the gap while
  // grids/pseudopotentials still scale with the full system.
  dims.valence_window = std::min<std::size_t>(dims.valence_bands, 64);
  dims.conduction_window = std::min<std::size_t>(
      16, std::max<std::size_t>(8, dims.valence_bands / 4));
  dims.pairs = dims.valence_window * dims.conduction_window;
  // SYEVD targets ~34 excitations per atom until the subspace cap.
  dims.subspace = std::min<std::size_t>(34 * atoms, 2600);
  dims.davidson_block = 16;

  const double volume = si_volume_per_atom() * static_cast<double>(atoms);
  const double kmax = std::sqrt(2.0 * ecut_ha);
  // FFT grid density (kmax/pi)^3; basis density kmax^3 / (6 pi^2).
  dims.grid_points = static_cast<std::size_t>(
      volume * std::pow(kmax / std::numbers::pi, 3.0));
  dims.basis_size = static_cast<std::size_t>(
      volume * kmax * kmax * kmax / (6.0 * std::numbers::pi *
                                     std::numbers::pi));
  return dims;
}

Flops Workload::total_flops() const {
  Flops total = 0;
  for (const KernelWork& k : kernels) total += k.flops;
  return total;
}

Bytes Workload::total_dram_bytes() const {
  Bytes total = 0;
  for (const KernelWork& k : kernels) total += k.dram_bytes;
  return total;
}

Workload Workload::lrtddft_iteration(const SystemDims& dims,
                                     const PseudoSizing& sizing) {
  Workload w;
  w.dims = dims;
  w.pseudo_sizing = sizing;

  const auto npair = static_cast<Flops>(dims.pairs);
  const auto nr = static_cast<Flops>(dims.grid_points);
  const auto nsub = static_cast<Flops>(dims.subspace);
  const auto nx = static_cast<Flops>(dims.davidson_block);
  const auto bands =
      static_cast<Flops>(dims.valence_window + dims.conduction_window);
  const auto atoms = static_cast<Flops>(dims.atoms);
  const double log_nr = std::log2(static_cast<double>(nr));

  const Bytes pair_matrix_bytes = 16ull * npair * nr;
  const Bytes orbital_bytes = 16ull * bands * nr;

  // --- 1. Face-splitting products P_vc = psi_v* psi_c plus the pointwise
  // Coulomb/XC kernel application (the paper's "point-point multiplication"
  // phase). Pure streaming: ~112 B and 10 flops per pair-point.
  {
    KernelWork k;
    k.cls = KernelClass::kFaceSplit;
    k.name = "FaceSplit+Kernels";
    k.flops = 10 * npair * nr;
    k.l1_bytes = 112 * npair * nr;
    k.dram_bytes = k.l1_bytes;
    k.pattern = AccessPattern::kSequential;
    k.input_bytes = orbital_bytes;
    k.output_bytes = pair_matrix_bytes;
    w.kernels.push_back(k);
  }

  // --- 2. Alltoall #1: band -> grid redistribution of P (16 B/point).
  const auto alltoall = [&](const char* name) {
    KernelWork k;
    k.cls = KernelClass::kAlltoall;
    k.name = name;
    k.flops = 0;
    k.l1_bytes = 2 * pair_matrix_bytes;  // gather + scatter
    k.dram_bytes = k.l1_bytes;
    k.pattern = AccessPattern::kRandom;
    k.comm_volume = pair_matrix_bytes;
    k.input_bytes = pair_matrix_bytes;
    k.output_bytes = pair_matrix_bytes;
    return k;
  };
  w.kernels.push_back(alltoall("Alltoall(band->grid)"));

  // --- 3. 3D FFTs of every pair product: 5 Nr log2 Nr flops, two
  // read+write sweeps over the grid (the fused X+Y slab pass plus the
  // strided Z pass).
  {
    KernelWork k;
    k.cls = KernelClass::kFft;
    k.name = "FFT(P_vc)";
    k.flops = static_cast<Flops>(5.0 * static_cast<double>(npair * nr) *
                                 log_nr);
    k.l1_bytes = 64 * npair * nr;
    k.dram_bytes = k.l1_bytes;
    k.pattern = AccessPattern::kStrided;
    k.stride_bytes = 1024;  // pass-mix average: one mostly-contiguous
                            // fused sweep + one strided Z sweep
    k.input_bytes = pair_matrix_bytes;
    k.output_bytes = pair_matrix_bytes;
    w.kernels.push_back(k);
  }

  // --- 4. Alltoall #2: grid -> band redistribution.
  w.kernels.push_back(alltoall("Alltoall(grid->band)"));

  // --- 5. Response GEMMs: two contractions with the Davidson block
  // (P * X and P^T * (f P X)); complex, cache-blocked (b = 192), so DRAM
  // traffic is flops/48 while registers see ~1 load per 8 flops.
  {
    KernelWork k;
    k.cls = KernelClass::kGemm;
    k.name = "GEMM(response)";
    k.flops = 16 * nx * npair * nr;
    k.l1_bytes = k.flops;      // ~1 byte of L1 traffic per flop
    k.dram_bytes = k.flops / kGemmBlockedReuse;
    k.pattern = AccessPattern::kBlocked;
    k.input_bytes = pair_matrix_bytes + 16 * nx * nr;
    k.output_bytes = 16 * nx * npair;
    w.kernels.push_back(k);
  }

  // --- 6. Alltoall #3: gather the projected response matrix.
  w.kernels.push_back(alltoall("Alltoall(gather K)"));

  // --- 7. Nonlocal pseudopotential application to the band window:
  // real-space projection against each atom's dataset (Algorithm 1's
  // wavefunction-update loop). The per-atom dataset streams once per
  // 16-band batch; this is the data the shared-block design shares.
  {
    KernelWork k;
    k.cls = KernelClass::kPseudopotential;
    k.name = "Pseudopotential";
    const auto sphere = static_cast<Flops>(sizing.sphere_points(false));
    const auto proj = static_cast<Flops>(sizing.projectors);
    k.flops = 4 * proj * sphere * atoms * bands;
    const Flops batches = std::max<Flops>((bands + 15) / 16, 1);
    k.dram_bytes = batches * w.pseudo_copy_bytes();
    k.l1_bytes = std::max<Bytes>(k.flops, 2 * k.dram_bytes);
    k.pattern = AccessPattern::kSequential;
    k.input_bytes = orbital_bytes;
    k.output_bytes = orbital_bytes;
    w.kernels.push_back(k);
  }

  // --- 8. SYEVD on the energy-truncated pair space. Two-stage blocked
  // solver: AI grows with the matrix size (n/340), crossing the CPU's
  // blocked-kernel machine balance between the small and large systems.
  {
    KernelWork k;
    k.cls = KernelClass::kSyevd;
    k.name = "SYEVD(Casida)";
    k.flops = syevd_cost(dims.subspace).flops;
    const double ai = syevd_ai(static_cast<double>(nsub));
    k.dram_bytes = static_cast<Bytes>(static_cast<double>(k.flops) / ai);
    k.l1_bytes = 2 * k.dram_bytes;
    k.pattern = AccessPattern::kBlocked;
    k.input_bytes = 16 * nsub * nsub;
    k.output_bytes = 16 * nsub * nsub;
    w.kernels.push_back(k);
  }

  return w;
}

KernelWork kernel_work_from_event(const TraceEvent& event) {
  KernelWork k;
  k.cls = event.cls;
  k.name = event.stage.empty() ? event.name
                               : event.stage + "/" + event.name;
  k.flops = event.flops;
  k.l1_bytes = std::max<Bytes>(event.bytes, 1);
  k.input_bytes = event.input_bytes;
  k.output_bytes = event.output_bytes;
  const Bytes operands = event.input_bytes + event.output_bytes;
  switch (event.cls) {
    case KernelClass::kGemm: {
      // Cache-blocked: DRAM sees the shared blocked-reuse fraction, but
      // never less than one pass over the operands.
      k.pattern = AccessPattern::kBlocked;
      k.dram_bytes = std::max<Bytes>(k.flops / kGemmBlockedReuse, operands);
      break;
    }
    case KernelClass::kSyevd: {
      // The shared AI transition of the analytic descriptor. The
      // reduction's panel sweeps stream far more than the n^2 matrix
      // bytes the OpCount tally reports, so the DRAM estimate comes
      // from the AI model, not from the event's byte count.
      k.pattern = AccessPattern::kBlocked;
      const double ai = syevd_ai(static_cast<double>(event.dims[0]));
      k.dram_bytes =
          static_cast<Bytes>(static_cast<double>(k.flops) / ai);
      break;
    }
    case KernelClass::kFft:
      // Strided grid sweeps (fused X+Y, then Z): instruction-level ==
      // DRAM-level.
      k.pattern = AccessPattern::kStrided;
      k.stride_bytes = 1024;
      k.dram_bytes = k.l1_bytes;
      break;
    case KernelClass::kAlltoall:
      k.pattern = AccessPattern::kRandom;
      k.dram_bytes = k.l1_bytes;
      k.comm_volume = k.l1_bytes / 2;
      break;
    case KernelClass::kFaceSplit:
    case KernelClass::kPseudopotential:
    case KernelClass::kOther:
      // Pure streaming / assembly: every instruction-level byte misses.
      k.pattern = AccessPattern::kSequential;
      k.dram_bytes = k.l1_bytes;
      break;
  }
  // Instruction-level traffic can never trail the DRAM estimate (the
  // blocked classes' reuse models sit above their OpCount byte tallies,
  // mirroring the analytic descriptors' l1 >= dram invariant).
  k.dram_bytes = std::max<Bytes>(k.dram_bytes, 1);
  k.l1_bytes = std::max(k.l1_bytes, k.dram_bytes);
  return k;
}

Workload Workload::from_trace(const KernelTrace& trace,
                              const PseudoSizing& sizing) {
  NDFT_REQUIRE(!trace.events.empty(),
               "cannot build a workload from an empty trace");
  Workload w;
  w.pseudo_sizing = sizing;
  // Rebuild the dimensions from the recorded system: the silicon closed
  // forms where the atom count fits the supercell family, measured basis
  // and grid sizes always.
  if (trace.atoms >= 8 && trace.atoms % 8 == 0) {
    w.dims = SystemDims::silicon(trace.atoms);
  } else {
    w.dims.atoms = trace.atoms;
    w.dims.valence_bands = 2 * trace.atoms;
  }
  if (trace.basis_size != 0) w.dims.basis_size = trace.basis_size;
  if (trace.grid_points != 0) w.dims.grid_points = trace.grid_points;

  w.kernels.reserve(trace.events.size());
  for (const TraceEvent& event : trace.events) {
    if (event.flops == 0 && event.bytes == 0) {
      continue;  // marker-only event, nothing to schedule
    }
    w.kernels.push_back(kernel_work_from_event(event));
  }
  NDFT_REQUIRE(!w.kernels.empty(),
               "trace carries no schedulable kernel work");
  return w;
}

}  // namespace ndft::dft
