#include "core/ndft_system.hpp"

#include <algorithm>
#include <cmath>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "cpu/trace_gen.hpp"
#include "mem/energy.hpp"
#include "runtime/pseudo_store.hpp"
#include "runtime/sca.hpp"

namespace ndft::core {
namespace {

/// Fraction of a kernel's instruction-level traffic that is stores.
double write_fraction(KernelClass cls) {
  switch (cls) {
    case KernelClass::kFaceSplit: return 32.0 / 112.0;
    case KernelClass::kAlltoall: return 0.5;
    case KernelClass::kFft: return 0.5;
    case KernelClass::kGemm: return 0.05;
    case KernelClass::kPseudopotential: return 0.1;
    case KernelClass::kSyevd: return 0.3;
    case KernelClass::kOther: return 0.25;
  }
  return 0.25;
}

/// Per-run mutable state. One RunArena lives on the stack of each run_*
/// call, which is what makes NdftSystem safe to share across concurrent
/// jobs: nothing a run writes outlives or escapes it.
struct RunArena {
  Addr next_base = 0;  ///< simulated-address cursor for trace placement
};

/// Builds one trace per core for a kernel, splitting work evenly. All
/// traces share the same sampling scale. The arena cursor advances past
/// the data. `llc_share` is the per-core slice of the machine's last-level
/// cache and `reuse_floor` the smallest footprint that still reuses at LLC
/// distance (i.e. just above the private levels).
std::vector<cpu::Trace> make_traces(const dft::KernelWork& kernel,
                                    unsigned cores, RunArena& arena,
                                    const SystemConfig& config,
                                    Bytes block_bytes, Bytes llc_share,
                                    Bytes reuse_floor) {
  NDFT_ASSERT(cores > 0);
  const double wf = write_fraction(kernel.cls);
  const Bytes l1_per_core = std::max<Bytes>(kernel.l1_bytes / cores, 64);
  const auto writes = static_cast<Bytes>(static_cast<double>(l1_per_core) *
                                         wf);
  const Bytes reads = l1_per_core - writes;
  // Streaming kernels revisit their live buffers (input + output), the
  // way the real code makes multiple passes over P; blocked kernels use
  // the analytic panel-traffic volume as their sweep footprint — unless
  // the whole matrix is LLC-resident, in which case the only DRAM
  // traffic is the matrix itself. Using traffic volume as the address
  // footprint for streams would sprawl past physical memory and alias
  // DRAM rows unphysically.
  const Bytes live = kernel.input_bytes + kernel.output_bytes;
  Bytes footprint = kernel.dram_bytes;
  if (kernel.pattern != AccessPattern::kBlocked) {
    if (live > 0) {
      footprint = std::min<Bytes>(footprint, live);
    }
  } else if (live > 0 && live <= llc_share * cores) {
    footprint = live;  // LLC-resident panels: stream the matrix once
  }
  Bytes ws = std::max<Bytes>(footprint / cores, 4096);
  std::size_t ops =
      std::clamp(config.sampled_ops_per_kernel / cores,
                 config.min_ops_per_core, config.max_ops_per_core);

  // A blocked kernel's sample must cover at least one full reuse cycle
  // of the physical tile; with fewer ops the trace generator shrinks the
  // tile to fit the window, which moves its reuse hits into a faster
  // cache level than the real tile can reach (a 128 KiB panel reused
  // from L2 would sample as L1-resident and report an optimistic time).
  // Grow the window instead of letting the tile shrink.
  if (kernel.pattern == AccessPattern::kBlocked) {
    const Bytes block = std::min<Bytes>(std::max<Bytes>(block_bytes, 64),
                                        std::max<Bytes>(ws, 64));
    const std::uint64_t reuse =
        std::max<std::uint64_t>(l1_per_core / std::max<Bytes>(ws, 1), 1);
    const auto cycle_ops =
        static_cast<std::size_t>(reuse * std::max<Bytes>(block / 64, 1));
    ops = std::max(ops, std::min(cycle_ops, config.max_ops_per_core));
  }

  // Sampling-window correction: when the real execution makes several
  // passes over an LLC-resident footprint but the sampled window is
  // shorter than one pass, the sample would look all-cold and
  // misrepresent a cache-friendly kernel as DRAM-bound. Shrink the
  // footprint so the window observes the same number of passes, keeping
  // the reuse distance above the private levels (reuse_floor) so hits
  // come from the correct cache level.
  const Bytes sampled_bytes = static_cast<Bytes>(ops) * 64;
  const std::uint64_t passes =
      std::max<std::uint64_t>(l1_per_core / std::max<Bytes>(ws, 1), 1);
  if (passes > 1 && ws <= llc_share && ws > sampled_bytes) {
    ws = std::max<Bytes>(sampled_bytes / passes, reuse_floor);
    ws = std::max<Bytes>(ws, 4096);
  }
  const Bytes ws_aligned = (ws + 4095) / 4096 * 4096;

  std::vector<cpu::Trace> traces;
  traces.reserve(cores);
  for (unsigned c = 0; c < cores; ++c) {
    cpu::TraceParams params;
    params.flops = kernel.flops / cores;
    params.bytes_read = reads;
    params.bytes_written = writes;
    params.pattern = kernel.pattern;
    params.working_set = ws;
    params.stride_bytes = kernel.stride_bytes;
    params.base_addr = arena.next_base + static_cast<Addr>(c) * ws_aligned;
    params.seed = 0x5eed0000 + c;
    params.max_mem_ops = ops;
    params.block_bytes = block_bytes;
    traces.push_back(cpu::generate_trace(params));
  }
  arena.next_base += static_cast<Addr>(cores) * ws_aligned;
  return traces;
}

std::vector<const cpu::Trace*> pointers(
    const std::vector<cpu::Trace>& traces) {
  std::vector<const cpu::Trace*> ptrs;
  ptrs.reserve(traces.size());
  for (const cpu::Trace& t : traces) {
    ptrs.push_back(&t);
  }
  return ptrs;
}

TimePs scaled(TimePs elapsed, double scale) {
  return static_cast<TimePs>(static_cast<double>(elapsed) * scale + 0.5);
}

/// Rolls the full per-instance StatSet tree into RunReport::stats: one
/// bounded key per (component class, counter) pair. Counters sum across
/// instances; *_peak counters keep the maximum seen on any instance.
/// The allowlist keeps the payload size independent of the machine size
/// (a 16-stack machine has 128 DRAM channels — nobody wants 128 rows of
/// "row_hits" in a job result).
void roll_up_stats(const sim::StatSet& all,
                   std::map<std::string, double>& out) {
  static const char* const kLeaves[] = {
      // Fabric connection / staging counters (sim/port.hpp).
      "messages", "bytes", "hops", "contention_ps", "backpressure_stalls",
      "backpressure_stall_ps", "staged_peak", "queue_peak", "fault_delays",
      // DRAM channel counters (mem/dram_channel.cpp).
      "reads", "writes", "row_hits", "row_misses", "row_conflicts",
      "refresh_stall_ps", "refreshes",
  };
  for (const auto& [key, value] : all.snapshot()) {
    const char* group = nullptr;
    if (key.find(".mesh.") != std::string::npos) group = "mesh";
    else if (key.find(".serdes.") != std::string::npos) group = "serdes";
    else if (key.find(".dram.") != std::string::npos) group = "dram";
    else if (key.find(".spm.") != std::string::npos) group = "spm";
    else continue;  // core/cache counters stay out of the bounded set
    const std::size_t dot = key.rfind('.');
    const std::string leaf = key.substr(dot + 1);
    bool allowed = false;
    for (const char* candidate : kLeaves) {
      if (leaf == candidate) allowed = true;
    }
    if (!allowed) continue;
    double& slot = out[std::string(group) + "." + leaf];
    if (leaf.size() > 5 && leaf.compare(leaf.size() - 5, 5, "_peak") == 0) {
      slot = std::max(slot, value);
    } else {
      slot += value;
    }
  }
}

}  // namespace

NdftSystem::NdftSystem(SystemConfig config) : config_(std::move(config)) {}

dft::Workload NdftSystem::workload_for(std::size_t atoms) const {
  return dft::Workload::lrtddft_iteration(dft::SystemDims::silicon(atoms));
}

dft::Workload NdftSystem::workload_from_trace(
    const KernelTrace& trace) const {
  return dft::Workload::from_trace(trace);
}

runtime::ExecutionPlan NdftSystem::plan(
    const dft::Workload& workload, runtime::Granularity granularity) const {
  const runtime::Sca sca(config_.cpu_profile, config_.ndp_profile);
  const runtime::CostModel cost(config_.cpu_profile, config_.ndp_profile);
  const runtime::Scheduler scheduler(sca, cost);
  return scheduler.plan(workload, granularity);
}

RunReport NdftSystem::run(std::size_t atoms, ExecMode mode) const {
  return run(workload_for(atoms), mode);
}

RunReport NdftSystem::run(const dft::Workload& workload,
                          ExecMode mode) const {
  switch (mode) {
    case ExecMode::kCpuBaseline: return run_cpu_baseline(workload);
    case ExecMode::kGpuBaseline: return run_gpu_baseline(workload);
    case ExecMode::kNdpOnly: return run_ndp(workload, /*co_design=*/false);
    case ExecMode::kNdft: return run_ndp(workload, /*co_design=*/true);
  }
  throw NdftError("unknown execution mode");
}

RunReport NdftSystem::run_cpu_baseline(const dft::Workload& workload) const {
  sim::EventQueue queue;
  mem::DramSystem dram("xeon.dram", queue, config_.xeon_dram);
  cpu::CpuComplex machine("xeon", queue, config_.xeon, dram);

  RunReport report;
  report.mode = ExecMode::kCpuBaseline;
  report.dims = workload.dims;

  const Bytes xeon_llc_share =
      config_.xeon.l3.size_bytes / config_.xeon.cores;
  const Bytes xeon_reuse_floor = config_.xeon.l2.size_bytes * 3 / 2;
  RunArena arena;
  for (const dft::KernelWork& kernel : workload.kernels) {
    // Stage boundary: one simulated kernel (event batch) at a time.
    cancel_point();
    fault_point("sim.mem");
    const auto traces =
        make_traces(kernel, config_.xeon.cores, arena, config_,
                    Bytes{128} << 10, xeon_llc_share, xeon_reuse_floor);
    const auto ptrs = pointers(traces);
    const TimePs start = queue.now();
    const double energy_before =
        dram.dynamic_energy_nj(mem::DramEnergy::ddr4());
    bool finished = false;
    machine.run(ptrs, [&finished] { finished = true; });
    queue.run();
    NDFT_ASSERT(finished);
    const TimePs elapsed = scaled(queue.now() - start,
                                  traces.front().scale);
    report.kernels.push_back(
        KernelTime{kernel.name, kernel.cls, DeviceKind::kCpu, elapsed});
    // Dynamic energy scales with the sampling factor; background power
    // burns over the kernel's (already scaled) duration.
    const double background_mw =
        mem::DramEnergy::ddr4().background_with_refresh_mw(
            config_.xeon_dram.timing.tCK_ps *
            config_.xeon_dram.timing.tREFI) *
        config_.xeon_dram.channels;
    report.memory_energy_mj +=
        (dram.dynamic_energy_nj(mem::DramEnergy::ddr4()) - energy_before) *
            traces.front().scale * 1e-6 +
        background_mw * static_cast<double>(elapsed) * 1e-12;
    machine.invalidate_caches();
    queue.run();
  }

  sim::StatSet all_stats;
  dram.collect_stats("xeon.dram", all_stats);
  roll_up_stats(all_stats, report.stats);
  if (queue.now() > 0) {
    // GB/s (decimal) is 1e-3 bytes/ps.
    report.stats["dram.channel_utilization"] =
        report.stats["dram.bytes"] /
        (config_.xeon_dram.peak_gbps() * 1e-3 *
         static_cast<double>(queue.now()));
  }

  const runtime::PseudoStore store(workload, config_.processes);
  report.pseudo = store.on_cpu(config_.cpu_capacity);
  return report;
}

RunReport NdftSystem::run_gpu_baseline(const dft::Workload& workload) const {
  const gpu::GpuModel model(config_.gpu);
  RunReport report;
  report.mode = ExecMode::kGpuBaseline;
  report.dims = workload.dims;

  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    const dft::KernelWork& kernel = workload.kernels[i];
    Bytes h2d = 0;
    Bytes d2h = 0;
    // The paper's GPU critique: the multi-process LR-TDDFT pipeline
    // stages each kernel's working arrays between host and device memory
    // around the MPI steps. The response GEMM is the exception: its
    // operands were just produced on-device, so it runs resident; the
    // Alltoall moves device-to-device over NVLink instead of PCIe.
    if (kernel.cls != KernelClass::kGemm &&
        kernel.cls != KernelClass::kAlltoall) {
      h2d += kernel.input_bytes;
      d2h += kernel.output_bytes;
    }
    // Working data beyond device memory additionally spills each pass.
    const Bytes working = kernel.input_bytes + kernel.output_bytes;
    if (working > config_.gpu.device_memory) {
      const Bytes spill = working - config_.gpu.device_memory;
      h2d += spill;
      d2h += spill;
    }
    gpu::GpuStepTime t = model.execute(kernel.cls, kernel.flops,
                                       kernel.dram_bytes, h2d, d2h);
    if (kernel.cls == KernelClass::kAlltoall) {
      t.kernel += model.peer_transfer(kernel.comm_volume);
    }
    report.kernels.push_back(KernelTime{kernel.name, kernel.cls,
                                        DeviceKind::kGpu, t.total()});
    // Memory-system energy: device HBM at ~4 pJ/bit, PCIe at ~10 pJ/bit
    // (1 pJ = 1e-9 mJ), plus ~20 W of HBM background across both devices.
    report.memory_energy_mj +=
        (static_cast<double>(kernel.dram_bytes) * 8.0 * 4.0 +
         static_cast<double>(h2d + d2h) * 8.0 * 10.0) *
            1e-9 +
        20000.0 * static_cast<double>(t.total()) * 1e-12;
  }

  const runtime::PseudoStore store(workload, config_.processes);
  runtime::PseudoFootprint footprint;
  footprint.capacity = config_.gpu.device_memory;
  footprint.per_process = store.copy_bytes();
  footprint.total = store.copy_bytes();  // one resident copy on the device
  report.pseudo = footprint;
  return report;
}

RunReport NdftSystem::run_ndp(const dft::Workload& workload,
                              bool co_design) const {
  runtime::ExecutionPlan plan;
  if (co_design) {
    plan = this->plan(workload);
  } else {
    plan.placements.assign(workload.kernels.size(), runtime::Placement{});
    for (auto& p : plan.placements) {
      p.device = DeviceKind::kNdp;
    }
  }
  return run_hybrid(workload, plan,
                    co_design ? ExecMode::kNdft : ExecMode::kNdpOnly,
                    co_design);
}

RunReport NdftSystem::run_planned(const dft::Workload& workload,
                                  const runtime::ExecutionPlan& plan) const {
  return run_hybrid(workload, plan, ExecMode::kNdft, /*co_design=*/true);
}

RunReport NdftSystem::run_hybrid(const dft::Workload& workload,
                                 const runtime::ExecutionPlan& plan,
                                 ExecMode mode, bool co_design) const {
  sim::EventQueue queue;
  ndp::NdpSystem ndp("ndp", queue, config_.ndp);
  cpu::CpuComplex host("host", queue, config_.host_cpu, ndp.cpu_port());

  NDFT_REQUIRE(plan.placements.size() == workload.kernels.size(),
               "plan must cover every kernel of the workload");

  RunReport report;
  report.mode = mode;
  report.dims = workload.dims;

  const unsigned stacks = ndp.stack_count();
  const unsigned ndp_cores = config_.ndp.total_cores();
  const runtime::PseudoStore store(workload, config_.processes);

  RunArena arena;
  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    // Stage boundary: one simulated kernel (event batch) at a time.
    cancel_point();
    fault_point("sim.mem");
    const dft::KernelWork& kernel = workload.kernels[i];
    const runtime::Placement& placement = plan.placements[i];
    if (co_design && placement.crossing) {
      report.sched_overhead_ps +=
          placement.transfer_in_ps + placement.switch_in_ps;
    }

    const TimePs start = queue.now();
    TimePs elapsed = 0;
    const double dram_energy_before = ndp.dram_dynamic_energy_nj();
    const double mesh_energy_before = ndp.mesh().energy_nj();
    double kernel_scale = 1.0;

    if (placement.device == DeviceKind::kCpu) {
      const auto traces = make_traces(
          kernel, config_.host_cpu.cores, arena, config_, Bytes{128} << 10,
          config_.host_cpu.l3.size_bytes / config_.host_cpu.cores,
          config_.host_cpu.l2.size_bytes * 3 / 2);
      const auto ptrs = pointers(traces);
      bool finished = false;
      host.run(ptrs, [&finished] { finished = true; });
      queue.run();
      NDFT_ASSERT(finished);
      elapsed = scaled(queue.now() - start, traces.front().scale);
      kernel_scale = traces.front().scale;
    } else {
      const auto traces =
          make_traces(kernel, ndp_cores, arena, config_, Bytes{16} << 10,
                      config_.ndp.stack.l1.size_bytes, 4096);
      const auto ptrs = pointers(traces);

      // Fabric traffic that overlaps the computation: Alltoall exchange
      // between stacks, and (under the co-design) the pseudopotential
      // shared-block streaming filtered by the per-stack arbiters.
      Bytes per_pair_bytes = 0;
      if (kernel.cls == KernelClass::kAlltoall) {
        per_pair_bytes = kernel.comm_volume / (stacks * stacks);
      } else if (co_design &&
                 kernel.cls == KernelClass::kPseudopotential) {
        per_pair_bytes = kernel.dram_bytes / (stacks * stacks);
        if (!config_.shared_memory.hierarchical) {
          // Flat mode: every worker process fetches its own remote copy.
          per_pair_bytes *=
              std::max(1u, config_.processes.ndp_processes / stacks);
        }
        report.sharing_bytes +=
            static_cast<Bytes>(stacks) * (stacks - 1) * per_pair_bytes;
      }

      TimePs trace_done = start;
      TimePs mesh_done = start;
      bool finished = false;
      ndp.run(ptrs, [&finished, &trace_done, &queue] {
        finished = true;
        trace_done = queue.now();
      });
      if (per_pair_bytes > 0) {
        for (unsigned s = 0; s < stacks; ++s) {
          for (unsigned d = 0; d < stacks; ++d) {
            if (s == d) continue;
            ndp.mesh().send(s, d, per_pair_bytes,
                            [&mesh_done, &queue](TimePs) {
                              mesh_done = queue.now();
                            });
          }
        }
      }
      queue.run();
      NDFT_ASSERT(finished);
      elapsed = std::max(scaled(trace_done - start, traces.front().scale),
                         mesh_done - start);
      kernel_scale = traces.front().scale;
    }

    // DRAM command energy in the window scales with the sampling factor;
    // mesh messages were issued at full volume; background power burns
    // over the kernel's (already scaled) duration.
    report.memory_energy_mj +=
        (ndp.dram_dynamic_energy_nj() - dram_energy_before) * kernel_scale *
            1e-6 +
        (ndp.mesh().energy_nj() - mesh_energy_before) * 1e-6 +
        ndp.dram_background_mw() * static_cast<double>(elapsed) * 1e-12;

    report.kernels.push_back(
        KernelTime{kernel.name, kernel.cls, placement.device, elapsed});
    host.invalidate_caches();
    ndp.invalidate_caches();
    queue.run();
  }

  sim::StatSet all_stats;
  ndp.collect_stats("ndp", all_stats);
  roll_up_stats(all_stats, report.stats);
  if (queue.now() > 0) {
    // GB/s (decimal) is 1e-3 bytes/ps; peak aggregates over all stacks.
    report.stats["dram.channel_utilization"] =
        report.stats["dram.bytes"] /
        (config_.ndp.stack.dram.peak_gbps() * stacks * 1e-3 *
         static_cast<double>(queue.now()));
  }

  report.mesh_bytes = ndp.mesh().bytes_sent();
  report.pseudo = co_design
                      ? store.on_ndft(config_.ndp_capacity)
                      : store.on_ndp(runtime::PseudoLayout::kReplicated,
                                     config_.ndp_capacity);
  return report;
}

}  // namespace ndft::core
