// Tests of the job-oriented Engine API: JSON model, request validation
// and rejection, JobResult serialization round-trips, async submission
// with cancellation, and the concurrent-submission determinism guarantee
// (results bitwise identical to serial execution).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "common/json.hpp"
#include "dft/kpoints.hpp"

namespace ndft::api {
namespace {

// ------------------------------------------------------------------ Json

TEST(JsonTest, ScalarsRoundTrip) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(-42).dump(), "-42");
  EXPECT_EQ(Json(7u).dump(), "7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(JsonTest, LargeUint64Exact) {
  const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
  const Json value(big);
  EXPECT_EQ(Json::parse(value.dump()).as_uint(), big);
}

TEST(JsonTest, DoublePrecisionExact) {
  const double value = 0.1234567890123456789;
  const Json parsed = Json::parse(Json(value).dump());
  EXPECT_EQ(parsed.as_double(), value);
}

TEST(JsonTest, IntegralDoubleStaysNumber) {
  // 12.0 dumps with a ".0" marker so it reparses as a double, keeping
  // dump(parse(dump(x))) == dump(x).
  const std::string text = Json(12.0).dump();
  EXPECT_EQ(text, "12.0");
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(JsonTest, StringEscapes) {
  const std::string text = "line\nquote\"back\\slash\ttab";
  const Json parsed = Json::parse(Json(text).dump());
  EXPECT_EQ(parsed.as_string(), text);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json object = Json::object();
  object.set("zeta", 1);
  object.set("alpha", 2);
  EXPECT_EQ(object.dump(), "{\"zeta\":1,\"alpha\":2}");
  // set() on an existing key replaces in place.
  object.set("zeta", 3);
  EXPECT_EQ(object.dump(), "{\"zeta\":3,\"alpha\":2}");
}

TEST(JsonTest, NestedContainersParse) {
  const Json parsed =
      Json::parse("{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": null}}");
  EXPECT_EQ(parsed.at("a").size(), 3u);
  EXPECT_EQ(parsed.at("a")[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(parsed.at("a")[1].as_double(), 2.5);
  EXPECT_TRUE(parsed.at("b").at("c").is_null());
}

TEST(JsonTest, NonFiniteDoublesCollapseToNullAndReadAsNan) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Json(inf).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  // A stored document containing such a value stays ingestible.
  EXPECT_TRUE(std::isnan(Json::parse("null").as_double()));
}

TEST(JsonTest, OutOfRangeDoubleToIntegerThrows) {
  EXPECT_THROW(Json(1e300).as_uint(), NdftError);
  EXPECT_THROW(Json(1e300).as_int(), NdftError);
  EXPECT_THROW(Json(-1.0).as_uint(), NdftError);
  EXPECT_THROW(Json(std::nan("")).as_uint(), NdftError);
  EXPECT_EQ(Json(42.0).as_uint(), 42u);
}

TEST(JsonTest, MalformedInputThrows) {
  EXPECT_THROW(Json::parse(""), NdftError);
  EXPECT_THROW(Json::parse("{"), NdftError);
  EXPECT_THROW(Json::parse("[1,]"), NdftError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), NdftError);
  EXPECT_THROW(Json::parse("\"unterminated"), NdftError);
}

// ------------------------------------------------------------ validation

TEST(JobValidationTest, GoodRequestsPass) {
  EXPECT_TRUE(validate(ScfJob{}).empty());
  EXPECT_TRUE(validate(BandStructureJob{}).empty());
  EXPECT_TRUE(validate(LrtddftJob{}).empty());
  EXPECT_TRUE(validate(SimulateJob{}).empty());
  EXPECT_TRUE(validate(PlanJob{}).empty());
}

TEST(JobValidationTest, AtomCountMustBeMultipleOfEight) {
  ScfJob job;
  job.atoms = 7;
  EXPECT_EQ(validate(job).size(), 1u);
  SimulateJob simulate;
  simulate.atoms = 0;
  EXPECT_FALSE(validate(simulate).empty());
}

TEST(JobValidationTest, CollectsEveryViolation) {
  ScfJob job;
  job.atoms = 3;
  job.ecut_ry = -1.0;
  job.scf.mixing = 2.0;
  job.scf.tolerance = 0.0;
  job.scf.max_iterations = 0;
  EXPECT_EQ(validate(job).size(), 5u);
}

TEST(JobValidationTest, BandStructureWindow) {
  BandStructureJob job;
  job.valence_bands = 8;  // == bands: no conduction band left
  EXPECT_FALSE(validate(job).empty());
  job.valence_bands = 4;
  job.segments = 0;
  EXPECT_FALSE(validate(job).empty());
  // Mirrors find_gap's valence >= 1 precondition (the size_t underflow
  // regression): zero valence bands must be rejected up front.
  job.segments = 2;
  job.valence_bands = 0;
  EXPECT_FALSE(validate(job).empty());
}

TEST(JobValidationTest, BandStructureCrystalAndSampling) {
  // Monkhorst-Pack on a supercell is valid.
  BandStructureJob job;
  job.atoms = 8;
  job.sampling = BandStructureJob::Sampling::kMonkhorstPack;
  job.mp_grid[0] = job.mp_grid[1] = job.mp_grid[2] = 2;
  job.bands = 20;
  job.valence_bands = 16;
  EXPECT_TRUE(validate(job).empty());
  // The FCC path is primitive-cell-only.
  job.sampling = BandStructureJob::Sampling::kPath;
  EXPECT_FALSE(validate(job).empty());
  // Supercell sizes follow the usual multiple-of-8 rule.
  job.sampling = BandStructureJob::Sampling::kMonkhorstPack;
  job.atoms = 12;
  EXPECT_FALSE(validate(job).empty());
  // Grid divisions must be positive and the point count bounded.
  job.atoms = 8;
  job.mp_grid[1] = 0;
  EXPECT_FALSE(validate(job).empty());
  job.mp_grid[0] = job.mp_grid[1] = job.mp_grid[2] = 1u << 10;
  EXPECT_FALSE(validate(job).empty());
  // A product that wraps a 64-bit accumulator (2^22 * 2^21 * 2^21 =
  // 2^64 -> 0) must still be rejected, not validate via overflow.
  job.mp_grid[0] = 1u << 22;
  job.mp_grid[1] = 1u << 21;
  job.mp_grid[2] = 1u << 21;
  EXPECT_FALSE(validate(job).empty());
}

TEST(JobValidationTest, PlanProfileOverridePairs) {
  PlanJob job;
  job.profile_override.resize(1);
  EXPECT_FALSE(validate(job).empty());
  job.profile_override.resize(2);
  EXPECT_TRUE(validate(job).empty());
}

TEST(EngineTest, InvalidRequestRejectedNotThrown) {
  Engine engine;
  LrtddftJob job;
  job.atoms = 12;  // not a multiple of 8
  job.config.conduction_window = 0;
  const JobResult result = engine.run(job);
  EXPECT_EQ(result.status, JobStatus::kInvalid);
  EXPECT_EQ(result.error, ErrorKind::kInvalidRequest);
  EXPECT_EQ(result.error_details.size(), 2u);
  EXPECT_FALSE(result.lrtddft.has_value());
}

TEST(EngineTest, PhysicsFailureIsTaxonomised) {
  Engine engine;
  ScfJob job;  // valid request, but the band count is physically absurd:
  job.scf.bands = 1;  // below the valence count -> solver rejects
  const JobResult result = engine.run(job);
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_EQ(result.error, ErrorKind::kPhysics);
  EXPECT_FALSE(result.error_message.empty());
}

// ------------------------------------------------------- JSON round trip

/// Fast sampling so simulation-backed tests stay quick.
EngineConfig fast_config(std::size_t dispatch_threads = 2) {
  EngineConfig config;
  config.dispatch_threads = dispatch_threads;
  config.system.sampled_ops_per_kernel = 20000;
  config.system.min_ops_per_core = 200;
  return config;
}

void expect_round_trip(const JobResult& result) {
  const std::string dumped = result.to_json().dump(2);
  const JobResult rebuilt = JobResult::from_json(Json::parse(dumped));
  EXPECT_EQ(rebuilt.to_json().dump(2), dumped);
  EXPECT_EQ(rebuilt.status, result.status);
  EXPECT_EQ(rebuilt.engine.job_id, result.engine.job_id);
}

TEST(JobResultJsonTest, AllJobKindsRoundTrip) {
  Engine engine(fast_config());

  ScfJob scf;
  scf.scf.max_iterations = 3;  // no need to converge for serialization
  scf.scf.tolerance = 1e-2;
  expect_round_trip(engine.run(scf));

  BandStructureJob bands;
  bands.segments = 2;
  expect_round_trip(engine.run(bands));

  LrtddftJob lrtddft;
  lrtddft.oscillator_strengths = true;
  expect_round_trip(engine.run(lrtddft));

  SimulateJob simulate;
  simulate.atoms = 16;
  expect_round_trip(engine.run(simulate));

  PlanJob plan;
  expect_round_trip(engine.run(plan));
}

TEST(BandStructureJobTest, MonkhorstPackPrimitiveMatchesDirectSolve) {
  // The generalized job on the primitive cell must reproduce the direct
  // dft-layer computation exactly (same crystal, grid and window). The
  // engine folds the grid to its time-reversal half before solving, so
  // the reference is the folded grid: 4 representatives of the 2x2x2
  // grid's 8 points, weights doubled, same total weight and summary.
  Engine engine(fast_config());
  BandStructureJob job;
  job.sampling = BandStructureJob::Sampling::kMonkhorstPack;
  job.mp_grid[0] = job.mp_grid[1] = job.mp_grid[2] = 2;
  job.bands = 6;
  job.valence_bands = 4;
  const JobResult result = engine.run(job);
  ASSERT_TRUE(result.ok()) << result.error_message;
  ASSERT_TRUE(result.band_structure.has_value());
  const BandStructurePayload& payload = *result.band_structure;
  EXPECT_EQ(payload.atoms, 2u);
  EXPECT_EQ(payload.sampling, "monkhorst_pack");
  ASSERT_EQ(payload.path.size(), 4u);
  EXPECT_NEAR(payload.weight_sum, 1.0, 1e-12);

  const dft::Crystal primitive = dft::silicon_primitive();
  const dft::PlaneWaveBasis basis(primitive, job.ecut_ry * 0.5);
  EXPECT_EQ(payload.basis_size, basis.size());
  const auto grid =
      dft::fold_time_reversal(dft::monkhorst_pack(primitive, 2, 2, 2));
  ASSERT_EQ(grid.size(), 4u);
  const auto structure = dft::band_structure(basis, grid, job.bands);
  const dft::GapSummary gap = dft::find_gap(structure, job.valence_bands);
  EXPECT_EQ(payload.vbm_ha, gap.vbm_ha);
  EXPECT_EQ(payload.cbm_ha, gap.cbm_ha);
  EXPECT_EQ(payload.indirect_gap_ev, gap.indirect_gap_ev());
  EXPECT_EQ(payload.band_energy_ha, gap.band_energy_ha);
  for (std::size_t i = 0; i < payload.path.size(); ++i) {
    EXPECT_EQ(payload.path[i].weight, grid[i].weight);
    ASSERT_EQ(payload.path[i].energies_ha.size(),
              structure[i].energies_ha.size());
    for (std::size_t b = 0; b < job.bands; ++b) {
      EXPECT_EQ(payload.path[i].energies_ha[b],
                structure[i].energies_ha[b]);
    }
  }
}

TEST(BandStructureJobTest, SupercellMonkhorstPackThroughSubmit) {
  // The acceptance path: a Monkhorst-Pack job on a non-primitive crystal
  // enters through Engine::submit(), round-trips its JSON result
  // losslessly, and reproduces the primitive-cell gap summary when
  // configured equivalently (the Gamma-only grid of the 8-atom
  // conventional cell folds the primitive {Gamma, X_x, X_y, X_z} set).
  Engine engine(fast_config());
  BandStructureJob job;
  job.atoms = 8;
  job.sampling = BandStructureJob::Sampling::kMonkhorstPack;
  job.mp_grid[0] = job.mp_grid[1] = job.mp_grid[2] = 1;
  job.bands = 20;
  job.valence_bands = 16;
  JobHandle handle = engine.submit(job);
  const JobResult& result = handle.wait();
  ASSERT_TRUE(result.ok()) << result.error_message;
  ASSERT_TRUE(result.band_structure.has_value());
  const BandStructurePayload& payload = *result.band_structure;
  EXPECT_EQ(payload.atoms, 8u);
  EXPECT_EQ(payload.sampling, "monkhorst_pack");
  ASSERT_EQ(payload.path.size(), 1u);
  EXPECT_NEAR(payload.weight_sum, 1.0, 1e-12);
  // The 1x1x1 MP grid is the (unlabelled) zone centre, so the direct
  // gap is reported off the k == 0 point.
  EXPECT_GT(payload.direct_gap_gamma_ev, 0.0);

  expect_round_trip(result);

  // Primitive-cell reference over the folded cosets.
  const dft::Crystal primitive = dft::silicon_primitive();
  const dft::PlaneWaveBasis basis(primitive, job.ecut_ry * 0.5);
  const double unit = 2.0 * std::numbers::pi / dft::kSiliconLatticeBohr;
  std::vector<dft::KPoint> cosets(4);
  cosets[1].k = {unit, 0.0, 0.0};
  cosets[2].k = {0.0, unit, 0.0};
  cosets[3].k = {0.0, 0.0, unit};
  const auto solved = dft::band_structure(basis, cosets, 6);
  const dft::GapSummary reference = dft::find_gap(solved, 4);
  EXPECT_NEAR(payload.vbm_ha, reference.vbm_ha, 1e-10);
  EXPECT_NEAR(payload.cbm_ha, reference.cbm_ha, 1e-3);
  EXPECT_NEAR(payload.indirect_gap_ev, reference.indirect_gap_ev(), 0.03);
  // Folded occupied band energy = sum of the cosets' (equal-weight)
  // occupied energies; both summaries normalise by their weight sums.
  EXPECT_NEAR(payload.band_energy_ha / 4.0, reference.band_energy_ha,
              2e-3);
}

TEST(BandStructureJobTest, PathJobKeepsPrimitiveDefaults) {
  // The generalized job with default crystal/sampling reproduces the old
  // hard-wired primitive path behaviour, weights included.
  Engine engine(fast_config());
  BandStructureJob job;
  job.segments = 2;
  const JobResult result = engine.run(job);
  ASSERT_TRUE(result.ok()) << result.error_message;
  const BandStructurePayload& payload = *result.band_structure;
  EXPECT_EQ(payload.atoms, 2u);
  EXPECT_EQ(payload.sampling, "path");
  EXPECT_EQ(payload.path.size(), 4u * job.segments + 1);
  for (const BandsAtKPayload& point : payload.path) {
    EXPECT_EQ(point.weight, 1.0);
  }
  EXPECT_NEAR(payload.weight_sum,
              static_cast<double>(payload.path.size()), 1e-12);
  EXPECT_EQ(payload.path.front().label, "L");
  EXPECT_EQ(payload.path.back().label, "Gamma");
}

TEST(JobResultJsonTest, RejectionRoundTrips) {
  Engine engine;
  SimulateJob job;
  job.atoms = 5;
  expect_round_trip(engine.run(job));
}

TEST(JobResultJsonTest, SchemaMismatchThrows) {
  Json json = Json::object();
  json.set("schema", "something.else.v9");
  EXPECT_THROW(JobResult::from_json(json), NdftError);
}

// ------------------------------------------------- async queue semantics

TEST(EngineTest, ManualDrainExecutesQueuedJobs) {
  Engine engine(fast_config(/*dispatch_threads=*/0));
  JobHandle handle = engine.submit(PlanJob{});
  EXPECT_EQ(handle.status(), JobStatus::kQueued);
  engine.drain();
  EXPECT_EQ(handle.status(), JobStatus::kOk);
  EXPECT_TRUE(handle.wait().ok());
  EXPECT_EQ(engine.jobs_completed(), 1u);
}

TEST(EngineTest, CancelWhileQueued) {
  Engine engine(fast_config(/*dispatch_threads=*/0));
  JobHandle first = engine.submit(PlanJob{});
  JobHandle second = engine.submit(PlanJob{});
  EXPECT_TRUE(second.cancel());
  EXPECT_FALSE(second.cancel());  // already terminal
  engine.drain();
  EXPECT_EQ(first.status(), JobStatus::kOk);
  EXPECT_EQ(second.status(), JobStatus::kCancelled);
  const JobResult& cancelled = second.wait();
  EXPECT_EQ(cancelled.error, ErrorKind::kCancelled);
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(engine.jobs_cancelled(), 1u);
}

TEST(EngineTest, DestructionCancelsQueuedJobs) {
  JobHandle orphan;
  {
    Engine engine(fast_config(/*dispatch_threads=*/0));
    orphan = engine.submit(PlanJob{});
  }
  EXPECT_EQ(orphan.status(), JobStatus::kCancelled);
}

TEST(EngineTest, JobIdsAreUniqueAndMonotonic) {
  Engine engine(fast_config(/*dispatch_threads=*/0));
  const JobHandle a = engine.submit(PlanJob{});
  const JobHandle b = engine.submit(PlanJob{});
  EXPECT_LT(a.id(), b.id());
  engine.drain();
}

// ------------------------------------------------ cost-aware queue order

TEST(EngineQueueTest, DrainsCheapestEstimateFirst) {
  // Submission order is heaviest-first; the queue must reorder so the
  // near-free plan drains first and the large simulation last
  // (exec_seq records the start order of the single-threaded drain).
  Engine engine(fast_config(/*dispatch_threads=*/0));
  SimulateJob heavy;
  heavy.atoms = 128;
  SimulateJob light;
  light.atoms = 16;
  PlanJob plan;
  JobHandle h_heavy = engine.submit(heavy);
  JobHandle h_light = engine.submit(light);
  JobHandle h_plan = engine.submit(plan);
  engine.drain();
  ASSERT_TRUE(h_heavy.wait().ok());
  ASSERT_TRUE(h_light.wait().ok());
  ASSERT_TRUE(h_plan.wait().ok());
  EXPECT_LT(h_plan.wait().engine.exec_seq, h_light.wait().engine.exec_seq);
  EXPECT_LT(h_light.wait().engine.exec_seq, h_heavy.wait().engine.exec_seq);
}

TEST(EngineQueueTest, EqualEstimatesKeepFifoOrder) {
  Engine engine(fast_config(/*dispatch_threads=*/0));
  JobHandle first = engine.submit(PlanJob{});
  JobHandle second = engine.submit(PlanJob{});
  JobHandle third = engine.submit(PlanJob{});
  engine.drain();
  EXPECT_LT(first.wait().engine.exec_seq, second.wait().engine.exec_seq);
  EXPECT_LT(second.wait().engine.exec_seq, third.wait().engine.exec_seq);
}

TEST(EngineQueueTest, AgedJobsBypassCostOrder) {
  // The aging escape hatch: with a zero starvation limit the oldest
  // pending job always runs next, degenerating to FIFO even when later
  // submissions are cheaper — so heavy jobs cannot be starved by a
  // stream of cheap ones.
  EngineConfig config = fast_config(/*dispatch_threads=*/0);
  config.starvation_limit_ms = 0.0;
  Engine engine(config);
  SimulateJob heavy;
  heavy.atoms = 64;
  JobHandle h_heavy = engine.submit(heavy);
  JobHandle h_cheap = engine.submit(PlanJob{});
  engine.drain();
  EXPECT_LT(h_heavy.wait().engine.exec_seq,
            h_cheap.wait().engine.exec_seq);
}

TEST(EngineQueueTest, CheapBandJobOutranksLargeScfJob) {
  // Regression for the two-stage syevd_cost/syevd_partial_cost rewrite:
  // the queue prices jobs through those estimates, and a small band
  // solve must still drain ahead of a large multi-iteration SCF job
  // submitted first.
  Engine engine(fast_config(/*dispatch_threads=*/0));
  ScfJob scf;
  scf.atoms = 64;
  scf.scf.max_iterations = 2;
  scf.scf.tolerance = 1e-1;
  BandStructureJob band;
  band.segments = 1;
  band.bands = 6;
  JobHandle h_scf = engine.submit(scf);
  JobHandle h_band = engine.submit(band);
  engine.drain();
  ASSERT_TRUE(h_scf.wait().ok());
  ASSERT_TRUE(h_band.wait().ok());
  EXPECT_LT(h_band.wait().engine.exec_seq, h_scf.wait().engine.exec_seq);
}

// ------------------------------------------------- stage timing telemetry

TEST(JobTimingsTest, EigensolverStageSplitIsAdditiveAndSerialized) {
  // Any eigensolver-backed job must report the reduce/tridiag/
  // backtransform split: each bucket non-negative, their sum bounded by
  // the linalg total (they are disjoint sub-spans of it), and the fields
  // must survive the v1 JSON round trip.
  Engine engine(fast_config(/*dispatch_threads=*/0));
  BandStructureJob band;
  band.segments = 2;
  const JobResult result = engine.run(band);
  ASSERT_TRUE(result.ok());
  const JobTimings& t = result.timings;
  EXPECT_GT(t.reduce_ms, 0.0);
  EXPECT_GE(t.tridiag_ms, 0.0);
  EXPECT_GT(t.backtransform_ms, 0.0);
  EXPECT_LE(t.reduce_ms + t.tridiag_ms + t.backtransform_ms,
            t.linalg_ms + 1e-9);

  const JobResult rebuilt =
      JobResult::from_json(Json::parse(result.to_json().dump()));
  EXPECT_EQ(rebuilt.timings.reduce_ms, t.reduce_ms);
  EXPECT_EQ(rebuilt.timings.tridiag_ms, t.tridiag_ms);
  EXPECT_EQ(rebuilt.timings.backtransform_ms, t.backtransform_ms);
}

// --------------------------------------------- concurrency determinism

TEST(EngineStressTest, ConcurrentSimulationsMatchSerialBitwise) {
  // Serial reference: one job at a time through run().
  Engine serial(fast_config(/*dispatch_threads=*/0));
  // Concurrent: 8 dispatchers draining 16 jobs from one queue, all
  // sharing one NdftSystem template and the process thread pool.
  Engine concurrent(fast_config(/*dispatch_threads=*/8));

  std::vector<JobRequest> requests;
  for (int copy = 0; copy < 4; ++copy) {
    for (const core::ExecMode mode :
         {core::ExecMode::kCpuBaseline, core::ExecMode::kGpuBaseline,
          core::ExecMode::kNdpOnly, core::ExecMode::kNdft}) {
      SimulateJob job;
      job.atoms = 16;
      job.mode = mode;
      requests.emplace_back(job);
    }
  }

  std::vector<std::string> expected;
  for (const JobRequest& request : requests) {
    const JobResult result = serial.run(request);
    ASSERT_TRUE(result.ok()) << result.error_message;
    expected.push_back(result.to_json().at("payload").dump());
  }

  std::vector<JobHandle> handles = concurrent.submit_batch(requests);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const JobResult& result = handles[i].wait();
    ASSERT_TRUE(result.ok()) << result.error_message;
    // The payload (every kernel time, energy, byte counter) must be
    // bitwise identical to the serial run: payload JSON prints doubles
    // with %.17g, so string equality is bit equality.
    EXPECT_EQ(result.to_json().at("payload").dump(), expected[i])
        << "job " << i << " diverged under concurrency";
  }
  EXPECT_EQ(concurrent.jobs_completed(), requests.size());
}

TEST(EngineStressTest, MixedJobKindsConcurrently) {
  Engine engine(fast_config(/*dispatch_threads=*/4));
  ScfJob scf;
  scf.scf.max_iterations = 2;
  scf.scf.tolerance = 1e-2;
  BandStructureJob bands;
  bands.segments = 2;
  PlanJob plan;
  SimulateJob simulate;
  simulate.atoms = 16;

  std::vector<JobHandle> handles =
      engine.submit_batch({scf, bands, plan, simulate, scf, plan});
  for (JobHandle& handle : handles) {
    EXPECT_TRUE(handle.wait().ok()) << handle.wait().error_message;
  }
  engine.drain();
  EXPECT_EQ(engine.jobs_completed(), 6u);
}

}  // namespace
}  // namespace ndft::api
