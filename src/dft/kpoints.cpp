#include "dft/kpoints.hpp"

#include <array>
#include <cmath>
#include <iterator>
#include <map>

#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "common/kernel_trace.hpp"
#include "common/str_util.hpp"
#include "common/thread_pool.hpp"
#include "dft/linalg.hpp"

namespace ndft::dft {

Crystal silicon_primitive() {
  const double a0 = kSiliconLatticeBohr;
  const Vec3 a1{0.0, a0 / 2.0, a0 / 2.0};
  const Vec3 a2{a0 / 2.0, 0.0, a0 / 2.0};
  const Vec3 a3{a0 / 2.0, a0 / 2.0, 0.0};
  const Vec3 tau{a0 / 8.0, a0 / 8.0, a0 / 8.0};
  return Crystal(a1, a2, a3, {tau, tau * -1.0});
}

std::vector<KPoint> fcc_kpath(double a0, unsigned segments) {
  NDFT_REQUIRE(segments >= 1, "need at least one point per leg");
  const double unit = 2.0 * std::numbers::pi / a0;
  const Vec3 gamma{0.0, 0.0, 0.0};
  const Vec3 x{0.0, unit, 0.0};                       // zone boundary
  const Vec3 l{unit / 2.0, unit / 2.0, unit / 2.0};
  const Vec3 k_point{0.75 * unit, 0.75 * unit, 0.0};  // K

  const struct Leg {
    Vec3 from;
    Vec3 to;
    const char* from_label;
    const char* to_label;
  } legs[] = {{l, gamma, "L", "Gamma"},
              {gamma, x, "Gamma", "X"},
              {x, k_point, "X", "K"},
              {k_point, gamma, "K", "Gamma"}};
  constexpr std::size_t kLegCount = std::size(legs);

  // Every leg emits its labelled start and interior points; the terminal
  // is emitted (and labelled) by the next leg it chains into, except for
  // the last leg, which emits its own endpoint. Labelling both endpoints
  // here (rather than relying on the chaining) keeps the high-symmetry
  // junctions named in traces and gap summaries even if the leg table
  // ever stops being contiguous.
  std::vector<KPoint> path;
  path.reserve(kLegCount * segments + 1);
  for (std::size_t li = 0; li < kLegCount; ++li) {
    const Leg& leg = legs[li];
    const unsigned points = (li + 1 == kLegCount) ? segments + 1 : segments;
    for (unsigned s = 0; s < points; ++s) {
      const double t = static_cast<double>(s) / segments;
      KPoint kp;
      kp.k = leg.from + (leg.to - leg.from) * t;
      if (s == 0) {
        kp.label = leg.from_label;
      } else if (s == segments) {
        kp.label = leg.to_label;
      }
      path.push_back(kp);
    }
  }
  return path;
}

std::vector<KPoint> monkhorst_pack(const Crystal& crystal, unsigned n1,
                                   unsigned n2, unsigned n3) {
  NDFT_REQUIRE(n1 > 0 && n2 > 0 && n3 > 0, "grid dimensions must be >= 1");
  std::vector<KPoint> grid;
  grid.reserve(static_cast<std::size_t>(n1) * n2 * n3);
  const double weight = 1.0 / (static_cast<double>(n1) * n2 * n3);
  for (unsigned i = 0; i < n1; ++i) {
    for (unsigned j = 0; j < n2; ++j) {
      for (unsigned k = 0; k < n3; ++k) {
        // Monkhorst-Pack fractional coordinates (2r - n - 1) / 2n.
        const double f1 = (2.0 * i + 1.0 - n1) / (2.0 * n1);
        const double f2 = (2.0 * j + 1.0 - n2) / (2.0 * n2);
        const double f3 = (2.0 * k + 1.0 - n3) / (2.0 * n3);
        KPoint kp;
        kp.k = crystal.b1() * f1 + crystal.b2() * f2 + crystal.b3() * f3;
        kp.weight = weight;
        grid.push_back(kp);
      }
    }
  }
  return grid;
}

std::vector<KPoint> fold_time_reversal(const std::vector<KPoint>& grid) {
  // Exact-coordinate index of every point. operator< on doubles treats
  // 0.0 and -0.0 as equal, so the Gamma point self-pairs even when a
  // negation produced a signed zero.
  std::map<std::array<double, 3>, std::size_t> index;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    // Duplicate coordinates keep the first occurrence: folding must never
    // merge two distinct entries of a (pathological) repeated-point set.
    index.emplace(std::array<double, 3>{grid[i].k.x, grid[i].k.y,
                                        grid[i].k.z},
                  i);
  }
  std::vector<KPoint> folded;
  folded.reserve((grid.size() + 1) / 2);
  std::vector<bool> consumed(grid.size(), false);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (consumed[i]) continue;
    KPoint kp = grid[i];
    const auto partner = index.find(
        std::array<double, 3>{-grid[i].k.x, -grid[i].k.y, -grid[i].k.z});
    if (partner != index.end() && partner->second > i &&
        !consumed[partner->second]) {
      kp.weight += grid[partner->second].weight;
      consumed[partner->second] = true;
    }
    folded.push_back(std::move(kp));
  }
  return folded;
}

BandsAtK solve_epm_at_k(const PlaneWaveBasis& basis, const KPoint& kpoint,
                        std::size_t bands) {
  const std::size_t n = basis.size();
  NDFT_REQUIRE(n > 0, "empty plane-wave basis");
  const auto& g = basis.gvectors();
  const std::size_t keep = bands == 0 ? n : std::min(bands, n);

  // Rows of the upper triangle are independent: assemble on the thread
  // pool, then mirror (same deterministic pattern as solve_epm; the
  // region aggregates, so the trace shape ignores the chunking).
  RealMatrix hamiltonian(n, n);
  {
    TraceRegion region(KernelClass::kOther, "bands.assembly");
    region.set_dims(n, n, 0);
    region.add_work(static_cast<Flops>(n) * n * 8,
                    static_cast<Bytes>(n) * n * sizeof(double));
    region.set_io(0, static_cast<Bytes>(n) * n * sizeof(double));
    parallel_for(0, n, parallel_grain(n),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) {
                     const Vec3 kg = kpoint.k + g[i].g;
                     hamiltonian(i, i) = 0.5 * kg.norm2();
                     for (std::size_t j = i + 1; j < n; ++j) {
                       hamiltonian(i, j) =
                           epm_potential(basis.crystal(), g[i], g[j]);
                     }
                   }
                 });
    mirror_upper(hamiltonian);
  }
  // Band windows below the basis size only need the lowest eigenpairs.
  EigenResult eigen = keep < n ? syevd_partial(hamiltonian, keep)
                               : syevd(hamiltonian);

  BandsAtK result;
  result.kpoint = kpoint;
  result.energies_ha.assign(
      eigen.eigenvalues.begin(),
      eigen.eigenvalues.begin() + static_cast<std::ptrdiff_t>(keep));
  return result;
}

std::vector<BandsAtK> band_structure(const PlaneWaveBasis& basis,
                                     const std::vector<KPoint>& path,
                                     std::size_t bands) {
  trace_set_system(basis.crystal().atom_count(), basis.size(),
                   basis.fft_size());
  std::vector<BandsAtK> result(path.size());
  if (trace_active() || fault_enabled()) {
    // Traced runs keep the serial k-loop: per-k stage events stay in
    // program order with a pool-width-independent shape (kernels inside a
    // parallel k-loop would record or not depending on which thread ran
    // them). Fault-armed runs serialize too, so injection decisions and
    // degradation notes stay on the job thread and replay bitwise.
    for (std::size_t i = 0; i < path.size(); ++i) {
      cancel_point();               // per-k stage boundary
      fault_point("bands.alloc");
      const KPoint& kp = path[i];
      const TraceStage trace_stage(
          trace_active()
              ? strformat("bands[%zu]%s%s", i, kp.label.empty() ? "" : ":",
                          kp.label.c_str())
              : std::string());
      result[i] = solve_epm_at_k(basis, kp, bands);
    }
    return result;
  }
  // Independent k-points across the pool (each is a dense assembly plus
  // an eigensolve; nested kernels degrade to serial inline), in batches
  // so the calling thread hits a cancellation/deadline checkpoint
  // between batches instead of only after the whole grid. Each k-point's
  // arithmetic is identical to the serial loop's, so the result is
  // bitwise identical for any thread count and batch size.
  const std::size_t batch =
      std::max<std::size_t>(std::size_t{1},
                            ThreadPool::instance().threads()) *
      2;
  for (std::size_t start = 0; start < path.size(); start += batch) {
    cancel_point();  // batch stage boundary (calling thread)
    const std::size_t stop = std::min(path.size(), start + batch);
    parallel_for(start, stop, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        result[i] = solve_epm_at_k(basis, path[i], bands);
      }
    });
  }
  return result;
}

GapSummary find_gap(const std::vector<BandsAtK>& bands,
                    std::size_t valence) {
  NDFT_REQUIRE(!bands.empty(), "no k-points solved");
  NDFT_REQUIRE(valence >= 1,
               "need at least one valence band (valence == 0 would read "
               "energies_ha[-1])");
  GapSummary summary;
  summary.vbm_ha = -1e18;
  summary.cbm_ha = 1e18;
  double weighted_band_energy = 0.0;
  for (const BandsAtK& at_k : bands) {
    NDFT_REQUIRE(at_k.energies_ha.size() > valence,
                 "need at least one conduction band per k-point");
    const double vbm = at_k.energies_ha[valence - 1];
    const double cbm = at_k.energies_ha[valence];
    if (vbm > summary.vbm_ha) {
      summary.vbm_ha = vbm;
      summary.vbm_label = at_k.kpoint.label;
    }
    if (cbm < summary.cbm_ha) {
      summary.cbm_ha = cbm;
      summary.cbm_label = at_k.kpoint.label;
    }
    double occupied = 0.0;
    for (std::size_t v = 0; v < valence; ++v) {
      occupied += at_k.energies_ha[v];
    }
    weighted_band_energy += at_k.kpoint.weight * 2.0 * occupied;
    summary.weight_sum += at_k.kpoint.weight;
  }
  summary.band_energy_ha = summary.weight_sum > 0.0
                               ? weighted_band_energy / summary.weight_sum
                               : 0.0;
  return summary;
}

}  // namespace ndft::dft
