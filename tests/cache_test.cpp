// Unit tests for the cache model: hits/misses, LRU, write-back and
// write-validate paths, MSHR coalescing and stalls, the stride prefetcher
// and invalidation semantics.

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hpp"
#include "mem/mem_request.hpp"
#include "sim/event_queue.hpp"

namespace ndft::cache {
namespace {

/// A scriptable backing memory that records requests and answers after a
/// fixed latency.
class RecordingMemory : public mem::MemoryPort {
 public:
  RecordingMemory(sim::EventQueue& queue, TimePs latency)
      : queue_(&queue), latency_(latency) {}

  void access(mem::MemRequest req) override {
    if (req.is_write) {
      writes.push_back(req.addr);
      if (req.on_complete) {
        auto cb = std::move(req.on_complete);
        queue_->schedule_after(latency_,
                               [cb = std::move(cb), this] { cb(queue_->now()); });
      }
      return;
    }
    reads.push_back(req.addr);
    auto cb = std::move(req.on_complete);
    queue_->schedule_after(latency_, [cb = std::move(cb), this] {
      if (cb) cb(queue_->now());
    });
  }

  std::vector<Addr> reads;
  std::vector<Addr> writes;

 private:
  sim::EventQueue* queue_;
  TimePs latency_;
};

struct CacheFixture : public ::testing::Test {
  CacheFixture()
      : memory(queue, 80000 /* 80 ns */), cache("l1", queue, config(), memory) {}

  static CacheConfig config() {
    CacheConfig c;
    c.size_bytes = 4096;  // 64 lines: small enough to evict in tests
    c.ways = 4;
    c.line_bytes = 64;
    c.hit_latency_ps = 1000;
    c.mshrs = 4;
    return c;
  }

  /// Issues a read and returns its completion time (runs the queue).
  TimePs read(Addr addr) {
    TimePs done = 0;
    mem::MemRequest req;
    req.addr = addr;
    req.size = 64;
    req.on_complete = [&done](TimePs at) { done = at; };
    cache.access(std::move(req));
    queue.run();
    return done;
  }

  /// Issues a full-line write and returns its completion time.
  TimePs write(Addr addr) {
    TimePs done = 0;
    mem::MemRequest req;
    req.addr = addr;
    req.size = 64;
    req.is_write = true;
    req.on_complete = [&done](TimePs at) { done = at; };
    cache.access(std::move(req));
    queue.run();
    return done;
  }

  sim::EventQueue queue;
  RecordingMemory memory;
  Cache cache;
};

TEST_F(CacheFixture, MissThenHit) {
  const TimePs miss_done = read(0);
  EXPECT_GE(miss_done, 80000u);  // paid the memory latency
  EXPECT_EQ(memory.reads.size(), 1u);
  const TimePs t_before = queue.now();
  const TimePs hit_done = read(0);
  EXPECT_EQ(hit_done - t_before, 1000u);  // hit latency only
  EXPECT_EQ(memory.reads.size(), 1u);     // no new fill
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST_F(CacheFixture, LruEvictsOldest) {
  // Fill one set: addresses that map to set 0 (16 sets): stride 16*64.
  const Addr set_stride = 16 * 64;
  for (unsigned i = 0; i < 4; ++i) {
    read(Addr(i) * set_stride);
  }
  EXPECT_EQ(memory.reads.size(), 4u);
  read(0);  // touch line 0 so line 1 is LRU
  EXPECT_EQ(memory.reads.size(), 4u);
  read(4 * set_stride);  // evicts line 1 (the LRU)
  EXPECT_EQ(memory.reads.size(), 5u);
  read(0);  // still resident
  EXPECT_EQ(memory.reads.size(), 5u);
  read(1 * set_stride);  // was evicted -> miss
  EXPECT_EQ(memory.reads.size(), 6u);
}

TEST_F(CacheFixture, FullLineWriteMissDoesNotFetch) {
  // Write-validate: no read-for-ownership for full-line stores.
  write(0);
  EXPECT_EQ(memory.reads.size(), 0u);
  EXPECT_EQ(memory.writes.size(), 0u);  // dirty, not yet written back
  // Read hits the installed line.
  const TimePs t_before = queue.now();
  EXPECT_EQ(read(0) - t_before, 1000u);
}

TEST_F(CacheFixture, DirtyEvictionWritesBack) {
  const Addr set_stride = 16 * 64;
  write(0);
  for (unsigned i = 1; i <= 4; ++i) {
    read(Addr(i) * set_stride);  // force eviction of the dirty line
  }
  ASSERT_EQ(memory.writes.size(), 1u);
  EXPECT_EQ(memory.writes[0], 0u);
  EXPECT_EQ(cache.counters().writebacks, 1u);
}

TEST_F(CacheFixture, PartialWriteMissFetchesLine) {
  mem::MemRequest req;
  req.addr = 0;
  req.size = 8;  // sub-line store needs the rest of the line
  req.is_write = true;
  cache.access(std::move(req));
  queue.run();
  EXPECT_EQ(memory.reads.size(), 1u);
}

TEST_F(CacheFixture, MshrCoalescesSameLine) {
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    mem::MemRequest req;
    req.addr = 0;
    req.size = 64;
    req.on_complete = [&completions](TimePs) { ++completions; };
    cache.access(std::move(req));
  }
  queue.run();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(memory.reads.size(), 1u);  // one fill serves all three
  EXPECT_EQ(cache.counters().coalesced, 2u);
}

TEST_F(CacheFixture, MshrLimitStallsAndRetries) {
  int completions = 0;
  // 6 distinct lines with only 4 MSHRs.
  for (int i = 0; i < 6; ++i) {
    mem::MemRequest req;
    req.addr = Addr(i) * 64 * 16;
    req.size = 64;
    req.on_complete = [&completions](TimePs) { ++completions; };
    cache.access(std::move(req));
  }
  EXPECT_EQ(cache.counters().mshr_stalls, 2u);
  queue.run();
  EXPECT_EQ(completions, 6);  // stalled requests eventually complete
  EXPECT_EQ(memory.reads.size(), 6u);
}

TEST_F(CacheFixture, FlushWritesBackAndEmpties) {
  write(0);
  write(64);
  cache.flush();
  queue.run();
  EXPECT_EQ(memory.writes.size(), 2u);
  EXPECT_EQ(cache.counters().flush_writebacks, 2u);
  // Everything gone: next read misses.
  read(0);
  EXPECT_EQ(memory.reads.size(), 1u);
}

TEST_F(CacheFixture, InvalidateDropsWithoutWriteback) {
  write(0);
  cache.invalidate_all();
  queue.run();
  EXPECT_EQ(memory.writes.size(), 0u);  // dirty data silently dropped
  read(0);
  EXPECT_EQ(memory.reads.size(), 1u);  // miss after invalidate
}

TEST_F(CacheFixture, HitRatioTracksAccesses) {
  read(0);
  read(0);
  read(0);
  read(64 * 16);
  EXPECT_NEAR(cache.hit_ratio(), 0.5, 1e-9);
}

TEST(CachePrefetchTest, SequentialStreamTriggersPrefetches) {
  sim::EventQueue queue;
  RecordingMemory memory(queue, 80000);
  CacheConfig config;
  config.size_bytes = 256 * 1024;
  config.ways = 8;
  config.hit_latency_ps = 1000;
  config.mshrs = 24;
  config.prefetch = true;
  config.prefetch_degree = 4;
  Cache cache("l2", queue, config, memory);

  for (Addr line = 0; line < 64; ++line) {
    mem::MemRequest req;
    req.addr = line * 64;
    req.size = 64;
    req.on_complete = [](TimePs) {};
    cache.access(std::move(req));
    queue.run();
  }
  EXPECT_GT(cache.counters().prefetches, 20u);
  // Demands behind the prefetch front hit or coalesce.
  EXPECT_GT(cache.counters().hits + cache.counters().coalesced, 30u);
}

TEST(CachePrefetchTest, StridedStreamIsDetected) {
  sim::EventQueue queue;
  RecordingMemory memory(queue, 80000);
  CacheConfig config;
  config.size_bytes = 256 * 1024;
  config.ways = 8;
  config.hit_latency_ps = 1000;
  config.mshrs = 24;
  config.prefetch = true;
  config.prefetch_degree = 4;
  Cache cache("l2", queue, config, memory);

  // Stride of 4 lines.
  for (Addr i = 0; i < 48; ++i) {
    mem::MemRequest req;
    req.addr = i * 4 * 64;
    req.size = 64;
    req.on_complete = [](TimePs) {};
    cache.access(std::move(req));
    queue.run();
  }
  EXPECT_GT(cache.counters().prefetches, 10u);
}

TEST(CachePrefetchTest, RandomStreamDoesNotPrefetch) {
  sim::EventQueue queue;
  RecordingMemory memory(queue, 80000);
  CacheConfig config;
  config.size_bytes = 256 * 1024;
  config.ways = 8;
  config.hit_latency_ps = 1000;
  config.mshrs = 24;
  config.prefetch = true;
  Cache cache("l2", queue, config, memory);

  Addr addr = 12345;
  for (int i = 0; i < 64; ++i) {
    addr = addr * 6364136223846793005ull + 1442695040888963407ull;
    mem::MemRequest req;
    req.addr = (addr % (1 << 24)) / 64 * 64;
    req.size = 64;
    req.on_complete = [](TimePs) {};
    cache.access(std::move(req));
    queue.run();
  }
  EXPECT_LT(cache.counters().prefetches, 8u);
}

TEST(CacheConfigTest, PresetsMatchTableIII) {
  const CacheConfig l1 = CacheConfig::l1(3000);
  EXPECT_EQ(l1.size_bytes, 32u * 1024);
  const CacheConfig l2 = CacheConfig::l2(3000);
  EXPECT_EQ(l2.size_bytes, 256u * 1024);
  const CacheConfig l3 = CacheConfig::l3(3000);
  EXPECT_EQ(l3.size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(l1.sets(), 64u);
}

TEST(CacheConfigTest, RejectsBadGeometry) {
  sim::EventQueue queue;
  RecordingMemory memory(queue, 1000);
  CacheConfig bad;
  bad.size_bytes = 1000;  // not a whole number of sets
  bad.ways = 3;
  EXPECT_THROW(Cache("bad", queue, bad, memory), NdftError);
}

TEST(CacheHierarchyTest, MissPropagatesThroughLevels) {
  sim::EventQueue queue;
  RecordingMemory memory(queue, 80000);
  Cache l2("l2", queue, CacheConfig::l2(2400), memory);
  PrivateHierarchy hierarchy("core0", queue, CacheConfig::l1(2400),
                             CacheConfig::l2(2400), l2);
  TimePs done = 0;
  mem::MemRequest req;
  req.addr = 4096;
  req.size = 64;
  req.on_complete = [&done](TimePs at) { done = at; };
  hierarchy.port().access(std::move(req));
  queue.run();
  EXPECT_GT(done, 80000u);
  EXPECT_EQ(memory.reads.size(), 1u);
  // Second access: L1 hit, no new memory traffic.
  mem::MemRequest req2;
  req2.addr = 4096;
  req2.size = 64;
  req2.on_complete = [](TimePs) {};
  hierarchy.port().access(std::move(req2));
  queue.run();
  EXPECT_EQ(memory.reads.size(), 1u);
  EXPECT_EQ(hierarchy.l1().counters().hits, 1u);
}

}  // namespace
}  // namespace ndft::cache
