#!/usr/bin/env bash
# One-shot tier-1 gate: configure, build, and run the full test suite.
# Usage: scripts/verify.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# API smoke: one simulation job end to end through the Engine, emitting a
# machine-readable JobResult that must be valid JSON.
SMOKE_JSON="$BUILD_DIR/smoke_ndft_run.json"
"$BUILD_DIR/example_ndft_run" --atoms 16 --mode ndft --json > "$SMOKE_JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$SMOKE_JSON" >/dev/null
else
  grep -q '"schema": "ndft.job_result.v1"' "$SMOKE_JSON"
fi
echo "ndft_run --json smoke: OK ($SMOKE_JSON)"
