#include "runtime/adaptive.hpp"

#include <array>
#include <limits>

namespace ndft::runtime {

namespace {
/// Weight of the newest sample in the moving average.
constexpr double kBlend = 0.5;
}  // namespace

void AdaptiveScheduler::record(const std::string& kernel_name,
                               DeviceKind device, TimePs measured_ps) {
  const auto key = std::make_pair(kernel_name, device);
  const auto it = measurements_.find(key);
  if (it == measurements_.end()) {
    measurements_[key] = static_cast<double>(measured_ps);
  } else {
    it->second = (1.0 - kBlend) * it->second +
                 kBlend * static_cast<double>(measured_ps);
  }
}

std::size_t AdaptiveScheduler::record_trace(const KernelTrace& trace) {
  std::size_t recorded = 0;
  for (const TraceEvent& event : trace.events) {
    if (!(event.host_ms > 0.0)) {
      continue;  // zero-time events carry no timing signal
    }
    DeviceKind device = DeviceKind::kCpu;
    if (event.stage == "sim[ndp]") {
      device = DeviceKind::kNdp;
    } else if (event.stage == "sim[gpu]") {
      device = DeviceKind::kGpu;
    }
    record(event.name, device, static_cast<TimePs>(event.host_ms * 1e9));
    ++recorded;
  }
  return recorded;
}

bool AdaptiveScheduler::has_measurement(const std::string& kernel_name,
                                        DeviceKind device) const {
  return measurements_.count({kernel_name, device}) != 0;
}

TimePs AdaptiveScheduler::believed_time(const dft::KernelWork& kernel,
                                        DeviceKind device) const {
  const auto it = measurements_.find({kernel.name, device});
  if (it != measurements_.end()) {
    return static_cast<TimePs>(it->second);
  }
  return sca_->estimate(kernel, device == DeviceKind::kNdp ? sca_->ndp()
                                                           : sca_->cpu());
}

ExecutionPlan AdaptiveScheduler::plan(const dft::Workload& workload) const {
  // Same linear-pipeline dynamic program as Scheduler::plan_function_level
  // with believed_time() as the per-kernel cost.
  const std::size_t n = workload.kernels.size();
  ExecutionPlan plan;
  if (n == 0) {
    return plan;
  }
  constexpr TimePs kInf = std::numeric_limits<TimePs>::max() / 4;
  std::array<TimePs, 2> cost{0, 0};
  std::vector<std::array<std::uint8_t, 2>> parent(
      n, std::array<std::uint8_t, 2>{0, 0});

  const auto device_of = [](std::size_t index) {
    return index == 0 ? DeviceKind::kCpu : DeviceKind::kNdp;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const dft::KernelWork& work = workload.kernels[i];
    std::array<TimePs, 2> next{kInf, kInf};
    for (std::size_t to = 0; to < 2; ++to) {
      const TimePs kernel_cost = believed_time(work, device_of(to));
      for (std::size_t from = 0; from < 2; ++from) {
        TimePs c = cost[from] + kernel_cost;
        if (from != to) {
          c += cost_->crossing_cost(work.input_bytes);
        }
        if (c < next[to]) {
          next[to] = c;
          parent[i][to] = static_cast<std::uint8_t>(from);
        }
      }
    }
    cost = next;
  }

  std::size_t state = cost[1] < cost[0] ? 1 : 0;
  std::vector<std::size_t> chosen(n);
  for (std::size_t i = n; i-- > 0;) {
    chosen[i] = state;
    state = parent[i][state];
  }

  plan.placements.resize(n);
  std::size_t previous = chosen[0];
  for (std::size_t i = 0; i < n; ++i) {
    Placement& p = plan.placements[i];
    p.device = device_of(chosen[i]);
    p.est_time_ps = believed_time(workload.kernels[i], p.device);
    p.crossing = (i != 0) && (chosen[i] != previous);
    if (p.crossing) {
      p.transfer_in_ps =
          cost_->transfer_time(workload.kernels[i].input_bytes);
      p.switch_in_ps = cost_->context_switch_time();
      plan.crossings += 1;
    }
    plan.est_overhead_ps += p.transfer_in_ps + p.switch_in_ps;
    plan.est_total_ps += p.est_time_ps + p.transfer_in_ps + p.switch_in_ps;
    previous = chosen[i];
  }
  return plan;
}

}  // namespace ndft::runtime
