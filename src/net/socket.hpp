#pragma once
// Thin RAII layer over POSIX stream sockets: everything src/net needs
// (bind/listen/accept, connect, timed reads, full writes) with no
// dependencies beyond the C library. IPv4 only — the service fronts a
// loopback or LAN port, not the open internet.
//
// Timeouts are poll()-based and sliced (see recv_some), so callers that
// hold a long idle timeout can still observe a shutdown flag promptly.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace ndft::net {

/// Move-only owner of one connected stream socket.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of an already-open descriptor.
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to an IPv4 address ("127.0.0.1") and port; throws NdftError
  /// when the address is malformed or the connection is refused.
  static Socket connect(const std::string& address, std::uint16_t port);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Writes the whole buffer (looping over partial writes); throws
  /// NdftError when the peer closed or the socket errored.
  void send_all(const char* data, std::size_t size);
  void send_all(const std::string& data) {
    send_all(data.data(), data.size());
  }

  /// Reads up to `size` bytes, waiting at most `timeout_ms` (0 = forever)
  /// for the first byte. Returns the byte count, 0 on orderly peer close,
  /// or -1 on timeout; throws NdftError on socket errors.
  long recv_some(char* data, std::size_t size, double timeout_ms);

  /// The peer's IPv4 address ("a.b.c.d", no port — reconnecting clients
  /// keep one rate-limit identity), or "?" when unavailable.
  std::string peer_address() const;

 private:
  int fd_ = -1;
};

/// Listening IPv4 socket with a poll-based accept.
class Listener {
 public:
  Listener() = default;
  /// Binds `address`:`port` (port 0 = kernel-assigned ephemeral port,
  /// readable from port()) and listens. Throws NdftError on failure.
  Listener(const std::string& address, std::uint16_t port,
           int backlog = 128);
  ~Listener() { close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  /// The port actually bound (resolves port 0 requests).
  std::uint16_t port() const noexcept { return port_; }

  /// Waits up to `timeout_ms` for a connection. Returns an invalid Socket
  /// on timeout or when the listener was closed concurrently; throws
  /// NdftError on unexpected errors.
  Socket accept(double timeout_ms);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ndft::net
