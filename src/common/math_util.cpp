#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

namespace ndft {

double relative_difference(double a, double b) noexcept {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / scale;
}

bool approx_equal(double a, double b, double tolerance) noexcept {
  return std::fabs(a - b) <= tolerance * std::max({std::fabs(a), std::fabs(b), 1.0});
}

}  // namespace ndft
