#include "mem/dram_channel.hpp"

#include <algorithm>

namespace ndft::mem {

sim::LinkConfig DramChannel::ingress_link(std::size_t queue_depth) {
  // An untimed (inline-delivering) wire: the bound is the controller
  // queue, not a physical link, so the connection adds no latency. The
  // credit returns explicitly when a request's data transfer retires.
  sim::LinkConfig link;
  link.latency_ps = 0;
  link.gbps = 0.0;
  link.capacity = queue_depth;
  link.manual_credit = true;
  return link;
}

DramChannel::DramChannel(std::string name, sim::EventQueue& queue,
                         const DramTiming& timing,
                         const DramGeometry& geometry, const AddressMap& map,
                         PagePolicy policy, std::size_t queue_depth)
    : SimObject(std::move(name), queue),
      timing_(timing),
      geometry_(geometry),
      policy_(policy),
      map_(&map),
      ingress_(queue, ingress_link(queue_depth), &stats()),
      banks_(geometry.banks),
      next_refresh_(cycles(timing.tREFI)) {
  ingress_.on_receive([this] {
    while (!ingress_.empty()) {
      ChannelRequest request = ingress_.pop();  // credit held until retire
      enqueue_pending(Pending{std::move(request.req), request.coord, now(),
                              /*credited=*/true});
    }
  });
}

void DramChannel::enqueue(MemRequest req, const DramCoord& coord) {
  enqueue_pending(Pending{std::move(req), coord, now(), /*credited=*/false});
}

void DramChannel::enqueue_pending(Pending pending) {
  NDFT_ASSERT(pending.coord.bank < banks_.size());
  if (pending.req.is_write) {
    ++counters_.writes;
  } else {
    ++counters_.reads;
  }
  queue_.push_back(std::move(pending));
  ++queue_depth_;
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    // Same-timestamp drain runs after all enqueues issued at this instant,
    // giving FR-FCFS a reordering window over the whole burst of misses.
    queue().schedule_after(0, [this] {
      drain_scheduled_ = false;
      drain();
    });
  }
}

TimePs DramChannel::apply_refresh(TimePs t) {
  // All-bank refresh: the channel is unavailable for tRFC every tREFI.
  while (t >= next_refresh_) {
    ++counters_.refreshes;
    const TimePs refresh_end = next_refresh_ + cycles(timing_.tRFC);
    if (t < refresh_end) {
      t = refresh_end;
      counters_.refresh_stall_ps +=
          static_cast<double>(refresh_end - next_refresh_);
    }
    next_refresh_ += cycles(timing_.tREFI);
  }
  return t;
}

std::size_t DramChannel::pick_next() const {
  // FR-FCFS: among queued requests, prefer the oldest row hit; if no row
  // hits exist, take the oldest request. The scan is capped at a
  // realistic controller window.
  constexpr std::size_t kScanWindow = 64;
  const std::size_t window = std::min(queue_.size(), kScanWindow);
  std::size_t best = 0;
  bool best_hit = false;
  for (std::size_t i = 0; i < window; ++i) {
    const auto& pending = queue_[i];
    const BankState& bank = banks_[pending.coord.bank];
    const bool hit = bank.row_open && bank.open_row == pending.coord.row;
    if (hit && !best_hit) {
      best = i;
      best_hit = true;
    }
  }
  return best_hit ? best : 0;
}

void DramChannel::drain() {
  while (!queue_.empty()) {
    const std::size_t index = pick_next();
    Pending pending = std::move(queue_[index]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));

    BankState& bank = banks_[pending.coord.bank];
    const bool row_hit = bank.row_open && bank.open_row == pending.coord.row;
    const bool row_closed = !bank.row_open;

    // Earliest moment the column command could start on this bank.
    TimePs t = std::max(now(), bank.ready_at);
    t = apply_refresh(t);

    if (!row_hit) {
      if (!row_closed) {
        // Row conflict: precharge first (respecting tRAS), then activate.
        t = std::max(t, bank.precharge_ok);
        t += cycles(timing_.tRP);
        ++counters_.row_conflicts;
      } else {
        ++counters_.row_misses;
      }
      // Activate throttling: tRRD between ACTs, at most 4 in tFAW.
      if (!recent_acts_.empty()) {
        t = std::max(t, recent_acts_.back() + cycles(timing_.tRRD));
      }
      if (recent_acts_.size() >= 4) {
        t = std::max(t, recent_acts_[recent_acts_.size() - 4] +
                            cycles(timing_.tFAW));
      }
      recent_acts_.push_back(t);
      while (recent_acts_.size() > 8) recent_acts_.pop_front();
      bank.row_open = true;
      bank.open_row = pending.coord.row;
      bank.precharge_ok = t + cycles(timing_.tRAS);
      t += cycles(timing_.tRCD);
    } else {
      ++counters_.row_hits;
    }

    // Column access: data burst occupies the shared bus.
    const unsigned cas = pending.req.is_write ? timing_.CWL : timing_.CL;
    TimePs data_start = std::max(t + cycles(cas), bus_free_at_);
    if (!pending.req.is_write && last_write_end_ != 0) {
      data_start = std::max(data_start,
                            last_write_end_ + cycles(timing_.tWTR));
    }
    const TimePs data_end = data_start + timing_.burst_time_ps();
    bus_free_at_ = data_end;
    if (pending.req.is_write) {
      last_write_end_ = data_end;
      bank.ready_at = std::max(bank.ready_at, data_end + cycles(timing_.tWR));
      bank.precharge_ok =
          std::max(bank.precharge_ok, data_end + cycles(timing_.tWR));
    } else {
      bank.ready_at = std::max(bank.ready_at, t + cycles(timing_.tCCD));
      bank.precharge_ok =
          std::max(bank.precharge_ok, t + cycles(timing_.tRTP));
    }

    if (policy_ == PagePolicy::kClosed) {
      // Auto-precharge: the row closes after the access; the bank is
      // ready for a fresh ACT once tRAS and tRP have elapsed.
      bank.row_open = false;
      bank.ready_at =
          std::max(bank.ready_at, bank.precharge_ok + cycles(timing_.tRP));
    }

    bytes_ += pending.req.size;
    counters_.latency_ps_total +=
        static_cast<double>(data_end - pending.arrival);

    --queue_depth_;
    if (pending.req.on_complete || pending.credited) {
      // One retire event: free the controller slot (waking any staged
      // producer) and deliver the data to the requester.
      queue().schedule_at(
          data_end, [this, credited = pending.credited,
                     callback = std::move(pending.req.on_complete),
                     data_end] {
            if (credited) ingress_.return_credit();
            if (callback) callback(data_end);
          });
    }
  }
}

double DramChannel::energy_nj(const DramEnergy& energy) const {
  const double acts = static_cast<double>(counters_.row_misses +
                                          counters_.row_conflicts);
  return channel_energy_nj(energy, acts,
                           static_cast<double>(counters_.reads),
                           static_cast<double>(counters_.writes),
                           static_cast<double>(counters_.refreshes), now());
}

double DramChannel::dynamic_energy_nj(const DramEnergy& energy) const {
  // Command energy only: refresh is a time-based cost (the counter
  // fast-forwards across idle gaps), so callers fold it into the
  // background power via background_with_refresh_mw().
  const double acts = static_cast<double>(counters_.row_misses +
                                          counters_.row_conflicts);
  return channel_energy_nj(energy, acts,
                           static_cast<double>(counters_.reads),
                           static_cast<double>(counters_.writes), 0.0, 0);
}

void DramChannel::publish_stats() {
  stats().set("reads", static_cast<double>(counters_.reads));
  stats().set("writes", static_cast<double>(counters_.writes));
  stats().set("row_hits", static_cast<double>(counters_.row_hits));
  stats().set("row_misses", static_cast<double>(counters_.row_misses));
  stats().set("row_conflicts",
              static_cast<double>(counters_.row_conflicts));
  stats().set("refresh_stall_ps", counters_.refresh_stall_ps);
  stats().set("refreshes", static_cast<double>(counters_.refreshes));
  stats().set("latency_ps_total", counters_.latency_ps_total);
  stats().set("bytes", static_cast<double>(bytes_));
}

}  // namespace ndft::mem
