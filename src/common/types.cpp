#include "common/types.hpp"

namespace ndft {

const char* to_string(DeviceKind kind) noexcept {
  switch (kind) {
    case DeviceKind::kCpu: return "CPU";
    case DeviceKind::kNdp: return "NDP";
    case DeviceKind::kGpu: return "GPU";
  }
  return "?";
}

const char* to_string(AccessPattern pattern) noexcept {
  switch (pattern) {
    case AccessPattern::kSequential: return "sequential";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kRandom: return "random";
    case AccessPattern::kBlocked: return "blocked";
  }
  return "?";
}

const char* to_string(KernelClass kernel_class) noexcept {
  switch (kernel_class) {
    case KernelClass::kFft: return "FFT";
    case KernelClass::kFaceSplit: return "FaceSplit";
    case KernelClass::kGemm: return "GEMM";
    case KernelClass::kSyevd: return "SYEVD";
    case KernelClass::kPseudopotential: return "Pseudopotential";
    case KernelClass::kAlltoall: return "Alltoall";
    case KernelClass::kOther: return "Other";
  }
  return "?";
}

}  // namespace ndft
