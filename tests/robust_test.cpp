// Adversarial robustness tests: the fault-injection harness (spec
// grammar, deterministic replay, site catalog), cooperative cancellation
// and deadlines at stage boundaries, the Engine's retry/backoff loop for
// transient failures, graceful degradation (solver fallbacks, untraced
// runs), exactly-once cancellation accounting under races, starvation
// aging, and a deterministic malformed-request fuzz sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iterator>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "common/prng.hpp"
#include "dft/davidson.hpp"
#include "dft/linalg.hpp"

namespace ndft::api {
namespace {

/// Fast simulation sampling so engine-backed tests stay quick.
EngineConfig fast_config(std::size_t dispatch_threads = 0) {
  EngineConfig config;
  config.dispatch_threads = dispatch_threads;
  config.system.sampled_ops_per_kernel = 20000;
  config.system.min_ops_per_core = 200;
  return config;
}

/// Every test leaves the process-wide fault state clean, even on failure.
class FaultFixture : public ::testing::Test {
 protected:
  void TearDown() override { fault_clear(); }
};

// ------------------------------------------------------------ fault spec

using FaultSpecTest = FaultFixture;

TEST_F(FaultSpecTest, ParsesSeedSitesAndCaps) {
  const FaultSpec spec =
      FaultSpec::parse("seed=7; scf.alloc=0.5, trace.recorder=1.0@1");
  EXPECT_EQ(spec.seed, 7u);
  ASSERT_EQ(spec.rules.size(), 2u);
  EXPECT_EQ(spec.rules[0].site, "scf.alloc");
  EXPECT_DOUBLE_EQ(spec.rules[0].probability, 0.5);
  EXPECT_EQ(spec.rules[0].max_fires, 0u);
  EXPECT_EQ(spec.rules[1].site, "trace.recorder");
  EXPECT_DOUBLE_EQ(spec.rules[1].probability, 1.0);
  EXPECT_EQ(spec.rules[1].max_fires, 1u);
}

TEST_F(FaultSpecTest, EmptySpecHasNoRules) {
  EXPECT_TRUE(FaultSpec::parse("").empty());
  EXPECT_TRUE(FaultSpec::parse("  ").empty());
}

TEST_F(FaultSpecTest, RejectsUnknownSitesAndBadSyntax) {
  EXPECT_THROW(FaultSpec::parse("no.such.site=1.0"), NdftError);
  EXPECT_THROW(FaultSpec::parse("scf.alloc"), NdftError);
  EXPECT_THROW(FaultSpec::parse("scf.alloc=2.0"), NdftError);
  EXPECT_THROW(FaultSpec::parse("scf.alloc=-0.1"), NdftError);
  EXPECT_THROW(FaultSpec::parse("scf.alloc=nan"), NdftError);
  EXPECT_THROW(FaultSpec::parse("seed=banana"), NdftError);
  EXPECT_THROW(FaultSpec::parse("=0.5"), NdftError);
}

TEST_F(FaultSpecTest, CatalogIsNonEmptyAndStable) {
  const auto& sites = fault_sites();
  ASSERT_FALSE(sites.empty());
  for (const FaultSite& site : sites) {
    EXPECT_NE(site.name, nullptr);
    EXPECT_NE(site.description, nullptr);
    // Every cataloged name parses as a spec entry.
    const FaultSpec spec =
        FaultSpec::parse(std::string(site.name) + "=0.25");
    ASSERT_EQ(spec.rules.size(), 1u);
    EXPECT_EQ(spec.rules[0].site, site.name);
  }
}

TEST_F(FaultSpecTest, WildcardArmsEveryUnconfiguredSite) {
  fault_install(FaultSpec::parse("*=1.0"));
  EXPECT_TRUE(fault_enabled());
  for (const FaultSite& site : fault_sites()) {
    EXPECT_TRUE(fault_fires(site.name)) << site.name;
  }
  // An explicit zero rule beats the wildcard.
  fault_install(FaultSpec::parse("*=1.0;scf.alloc=0.0"));
  EXPECT_FALSE(fault_fires("scf.alloc"));
  EXPECT_TRUE(fault_fires("bands.alloc"));
}

TEST_F(FaultSpecTest, DisabledPathIsInert) {
  fault_clear();
  EXPECT_FALSE(fault_enabled());
  EXPECT_FALSE(fault_fires("scf.alloc"));
  EXPECT_NO_THROW(fault_point("scf.alloc"));
}

TEST_F(FaultSpecTest, ReplayIsBitwiseDeterministic) {
  const FaultSpec spec = FaultSpec::parse("seed=3;scf.alloc=0.35");
  fault_install(spec);
  std::vector<bool> first;
  for (int i = 0; i < 256; ++i) first.push_back(fault_fires("scf.alloc"));
  // Reinstalling the same spec resets the sequence counters: the exact
  // same fire pattern replays.
  fault_install(spec);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(fault_fires("scf.alloc"), first[i]) << "draw " << i;
  }
  // p = 0.35 over 256 draws: both outcomes occur (fixed seed, so this is
  // a deterministic property of the stream, not a statistical hope).
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 256);
}

TEST_F(FaultSpecTest, SitesDrawIndependentStreams) {
  fault_install(FaultSpec::parse("seed=3;scf.alloc=0.5;bands.alloc=0.5"));
  std::vector<bool> a;
  std::vector<bool> b;
  for (int i = 0; i < 128; ++i) {
    a.push_back(fault_fires("scf.alloc"));
    b.push_back(fault_fires("bands.alloc"));
  }
  EXPECT_NE(a, b);  // site name keys the hash: distinct streams
}

TEST_F(FaultSpecTest, MaxFiresCapsInjection) {
  fault_install(FaultSpec::parse("engine.alloc=1.0@2"));
  EXPECT_TRUE(fault_fires("engine.alloc"));
  EXPECT_TRUE(fault_fires("engine.alloc"));
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(fault_fires("engine.alloc"));
  }
}

TEST_F(FaultSpecTest, FaultPointThrowsClassified) {
  fault_install(FaultSpec::parse("sim.mem=1.0"));
  try {
    fault_point("sim.mem");
    FAIL() << "fault_point did not throw";
  } catch (const FaultInjected& fault) {
    EXPECT_EQ(fault.site(), "sim.mem");
    EXPECT_EQ(fault.fault_class(), FaultClass::kDevice);
    EXPECT_EQ(fault.sequence(), 0u);
  }
  // FaultInjected is an NdftError: un-instrumented layers see a normal
  // framework error.
  fault_install(FaultSpec::parse("sim.mem=1.0"));
  EXPECT_THROW(fault_point("sim.mem"), NdftError);
}

// ----------------------------------------------------- enum round trips

TEST(EnumRoundTripTest, JobStatusNamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(JobStatus::kCount_); ++i) {
    const auto status = static_cast<JobStatus>(i);
    EXPECT_EQ(job_status_from_string(to_string(status)), status);
  }
  EXPECT_THROW(job_status_from_string("not-a-status"), NdftError);
  EXPECT_THROW(job_status_from_string(""), NdftError);
}

TEST(EnumRoundTripTest, ErrorKindNamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(ErrorKind::kCount_); ++i) {
    const auto kind = static_cast<ErrorKind>(i);
    EXPECT_EQ(error_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(error_kind_from_string("not-an-error"), NdftError);
}

TEST(EnumRoundTripTest, TransienceTaxonomy) {
  EXPECT_TRUE(is_transient(ErrorKind::kTransientResource));
  EXPECT_TRUE(is_transient(ErrorKind::kTransientDevice));
  EXPECT_FALSE(is_transient(ErrorKind::kNone));
  EXPECT_FALSE(is_transient(ErrorKind::kInvalidRequest));
  EXPECT_FALSE(is_transient(ErrorKind::kPhysics));
  EXPECT_FALSE(is_transient(ErrorKind::kInternal));
  EXPECT_FALSE(is_transient(ErrorKind::kCancelled));
  EXPECT_FALSE(is_transient(ErrorKind::kDeadlineExceeded));
}

// ------------------------------------------------------- retry / backoff

using EngineRetryTest = FaultFixture;

TEST_F(EngineRetryTest, TransientFaultRetriesToSuccess) {
  EngineConfig config = fast_config();
  config.fault_spec = "engine.alloc=1.0@1";  // first attempt only
  config.retry_backoff_ms = 0.1;
  Engine engine(config);
  const JobResult result = engine.run(PlanJob{});
  ASSERT_TRUE(result.ok()) << result.error_message;
  EXPECT_EQ(result.engine.attempts, 2u);
  EXPECT_GT(result.timings.backoff_ms, 0.0);
  EXPECT_EQ(engine.jobs_retried(), 1u);
  // The attempt count survives the JSON round trip (additive in v1).
  const JobResult rebuilt =
      JobResult::from_json(Json::parse(result.to_json().dump()));
  EXPECT_EQ(rebuilt.engine.attempts, 2u);
  EXPECT_EQ(rebuilt.to_json().dump(), result.to_json().dump());
}

TEST_F(EngineRetryTest, SubmitPathPreservesAttemptCount) {
  // Regression: execute_queued merges the pre-stamped queue metadata
  // (id/kind/exec_seq) into the executed result; that merge used to
  // clobber the retry loop's attempt count back to 1.
  EngineConfig config = fast_config();
  config.fault_spec = "engine.alloc=1.0@1";
  config.retry_backoff_ms = 0.1;
  Engine engine(config);
  JobHandle handle = engine.submit(PlanJob{});
  engine.drain();
  const JobResult result = handle.wait();
  ASSERT_TRUE(result.ok()) << result.error_message;
  EXPECT_EQ(result.engine.attempts, 2u);
  EXPECT_GT(result.timings.backoff_ms, 0.0);
  EXPECT_EQ(result.engine.exec_seq, 1u);  // queue stamps still present
  EXPECT_EQ(engine.jobs_retried(), 1u);
}

TEST_F(EngineRetryTest, ExhaustedRetriesSurfaceClassified) {
  EngineConfig config = fast_config();
  config.fault_spec = "engine.alloc=1.0";  // every attempt fails
  config.max_attempts = 2;
  config.retry_backoff_ms = 0.1;
  Engine engine(config);
  const JobResult result = engine.run(PlanJob{});
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_EQ(result.error, ErrorKind::kTransientResource);
  EXPECT_EQ(result.engine.attempts, 2u);
  EXPECT_FALSE(result.error_message.empty());
  EXPECT_EQ(engine.jobs_retried(), 1u);
}

TEST_F(EngineRetryTest, DeviceFaultsClassifyTransientDevice) {
  EngineConfig config = fast_config();
  config.fault_spec = "sim.mem=1.0";
  config.max_attempts = 1;  // retry disabled: the raw classification
  Engine engine(config);
  SimulateJob job;
  job.atoms = 16;
  const JobResult result = engine.run(job);
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_EQ(result.error, ErrorKind::kTransientDevice);
  EXPECT_EQ(result.engine.attempts, 1u);
  EXPECT_EQ(engine.jobs_retried(), 0u);
}

TEST_F(EngineRetryTest, PermanentErrorsDoNotRetry) {
  EngineConfig config = fast_config();
  config.max_attempts = 3;
  Engine engine(config);
  ScfJob job;
  job.scf.bands = 1;  // physically absurd: solver rejects permanently
  const JobResult result = engine.run(job);
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_EQ(result.error, ErrorKind::kPhysics);
  EXPECT_EQ(result.engine.attempts, 1u);
  EXPECT_EQ(engine.jobs_retried(), 0u);
}

// -------------------------------------------------- graceful degradation

using DegradationTest = FaultFixture;

TEST_F(DegradationTest, SolverFaultFallsBackToFullSolver) {
  EngineConfig config = fast_config();
  config.fault_spec = "solver.syevd_partial=1.0@1";
  Engine engine(config);
  BandStructureJob job;
  job.segments = 2;
  const JobResult result = engine.run(job);
  ASSERT_TRUE(result.ok()) << result.error_message;
  ASSERT_FALSE(result.degraded.empty());
  EXPECT_EQ(result.degraded.front(), "syevd_partial:full_fallback");
  // The degraded job still answers the physics question.
  ASSERT_TRUE(result.band_structure.has_value());
  EXPECT_GT(result.band_structure->indirect_gap_ev, 0.0);
  // The degradation record survives serialization (additive in v1).
  const JobResult rebuilt =
      JobResult::from_json(Json::parse(result.to_json().dump()));
  ASSERT_FALSE(rebuilt.degraded.empty());
  EXPECT_EQ(rebuilt.degraded.front(), "syevd_partial:full_fallback");
}

TEST_F(DegradationTest, FallbackMatchesPartialSolverNumerics) {
  // The fallback path answers with the same eigenpairs the partial path
  // would have produced (to solver tolerance).
  dft::RealMatrix m(64, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    m(i, i) = static_cast<double>(i) + 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      const double v = 0.1 / static_cast<double>(i + j + 1);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  const dft::EigenResult reference = dft::syevd_partial(m, 6);
  fault_install(FaultSpec::parse("solver.syevd_partial=1.0@1"));
  DegradationScope notes;
  const dft::EigenResult degraded = dft::syevd_partial(m, 6);
  const std::vector<std::string> taken = notes.take();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken.front(), "syevd_partial:full_fallback");
  ASSERT_EQ(degraded.eigenvalues.size(), 6u);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(degraded.eigenvalues[k], reference.eigenvalues[k], 1e-9);
  }
}

TEST_F(DegradationTest, DavidsonFaultFallsBackToDense) {
  dft::RealMatrix m(48, 48);
  for (std::size_t i = 0; i < 48; ++i) {
    m(i, i) = static_cast<double>(i) + 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      const double v = 0.05 / static_cast<double>(i + j + 1);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  const dft::EigenResult dense = dft::syevd(m);
  fault_install(FaultSpec::parse("solver.davidson=1.0@1"));
  DegradationScope notes;
  dft::DavidsonConfig config;
  config.wanted = 4;
  const dft::DavidsonResult result = dft::davidson(m, config);
  const std::vector<std::string> taken = notes.take();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken.front(), "davidson:dense_fallback");
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.eigenvalues.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(result.eigenvalues[k], dense.eigenvalues[k], 1e-9);
  }
  // Bad requests still throw, fault or no fault.
  fault_install(FaultSpec::parse("solver.davidson=1.0"));
  dft::DavidsonConfig bad;
  bad.wanted = 0;
  EXPECT_THROW(dft::davidson(m, bad), NdftError);
}

TEST_F(DegradationTest, TraceRecorderFaultDowngradesToUntraced) {
  EngineConfig config = fast_config();
  config.fault_spec = "trace.recorder=1.0";
  Engine engine(config);
  ScfJob job;
  job.record_trace = true;
  job.scf.max_iterations = 2;
  job.scf.tolerance = 1e-2;
  const JobResult result = engine.run(job);
  ASSERT_TRUE(result.ok()) << result.error_message;
  EXPECT_FALSE(result.trace.has_value());  // downgraded, not failed
  ASSERT_FALSE(result.degraded.empty());
  EXPECT_EQ(result.degraded.front(), "trace:recorder_failed");
}

// ------------------------------------------------ cancellation/deadlines

TEST(EngineCancelTest, RunningScfJobCancelsAtStageBoundary) {
  Engine engine(fast_config(/*dispatch_threads=*/1));
  ScfJob job;
  job.scf.max_iterations = 1000000;  // would run ~forever uncancelled
  job.scf.tolerance = 1e-300;
  JobHandle handle = engine.submit(job);
  while (handle.status() == JobStatus::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(handle.cancel());
  const JobResult& result = handle.wait();
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_EQ(result.error, ErrorKind::kCancelled);
  EXPECT_FALSE(result.scf.has_value());
  EXPECT_EQ(engine.jobs_cancelled(), 1u);
  EXPECT_EQ(engine.jobs_completed(), 0u);
}

TEST(EngineCancelTest, RunningBandStructureJobCancelsAtStageBoundary) {
  Engine engine(fast_config(/*dispatch_threads=*/1));
  BandStructureJob job;
  job.sampling = BandStructureJob::Sampling::kMonkhorstPack;
  job.mp_grid[0] = job.mp_grid[1] = job.mp_grid[2] = 12;  // 1728 solves
  job.bands = 6;
  JobHandle handle = engine.submit(job);
  while (handle.status() == JobStatus::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(handle.cancel());
  const JobResult& result = handle.wait();
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_EQ(engine.jobs_cancelled(), 1u);
}

TEST(EngineCancelTest, DeadlineExpiresMidRun) {
  Engine engine(fast_config());
  ScfJob job;
  job.scf.max_iterations = 1000000;
  job.scf.tolerance = 1e-300;
  job.deadline_ms = 0.001;  // expires at the first stage boundary
  const JobResult result = engine.run(job);
  EXPECT_EQ(result.status, JobStatus::kDeadlineExceeded);
  EXPECT_EQ(result.error, ErrorKind::kDeadlineExceeded);
}

TEST(EngineCancelTest, QueuedDeadlineExpiresWithoutExecuting) {
  Engine engine(fast_config(/*dispatch_threads=*/0));
  PlanJob job;
  job.deadline_ms = 1.0;
  JobHandle handle = engine.submit(job);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  engine.drain();
  const JobResult& result = handle.wait();
  EXPECT_EQ(result.status, JobStatus::kDeadlineExceeded);
  EXPECT_EQ(result.error, ErrorKind::kDeadlineExceeded);
  EXPECT_FALSE(result.plan.has_value());  // never executed
  EXPECT_EQ(engine.jobs_deadline_exceeded(), 1u);
}

TEST(EngineCancelTest, InvalidDeadlinesAreRejected) {
  Engine engine(fast_config());
  PlanJob job;
  job.deadline_ms = -1.0;
  EXPECT_EQ(engine.run(job).status, JobStatus::kInvalid);
  job.deadline_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine.run(job).status, JobStatus::kInvalid);
  job.deadline_ms = std::numeric_limits<double>::infinity();
  EXPECT_EQ(engine.run(job).status, JobStatus::kInvalid);
  job.deadline_ms = 0.0;  // unlimited
  EXPECT_TRUE(engine.run(job).ok());
}

// --------------------------------------- exactly-once cancel accounting

TEST(EngineCancelTest, ConcurrentCancelsCountEachJobOnce) {
  // Regression for the cancel-race double count: many threads cancelling
  // the same queued jobs must produce exactly one winner per job.
  Engine engine(fast_config(/*dispatch_threads=*/0));
  constexpr std::size_t kJobs = 32;
  std::vector<JobHandle> handles;
  for (std::size_t i = 0; i < kJobs; ++i) {
    handles.push_back(engine.submit(PlanJob{}));
  }
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (JobHandle& handle : handles) {
        if (handle.cancel()) wins.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wins.load(), kJobs);  // one winning cancel per job
  EXPECT_EQ(engine.jobs_cancelled(), kJobs);
  // The drain path must not re-count jobs cancelled between pop and
  // start (the orphan-drain regression).
  engine.drain();
  EXPECT_EQ(engine.jobs_cancelled(), kJobs);
  EXPECT_EQ(engine.jobs_completed(), 0u);
  for (JobHandle& handle : handles) {
    EXPECT_EQ(handle.status(), JobStatus::kCancelled);
    EXPECT_FALSE(handle.cancel());  // terminal: no further winners
  }
}

TEST(EngineCancelTest, CancellationStormKeepsExactCensus) {
  // Cancel everything while four dispatchers are mid-drain: every job
  // ends terminal, and submitted == completed + cancelled exactly.
  Engine engine(fast_config(/*dispatch_threads=*/4));
  constexpr std::size_t kJobs = 64;
  std::vector<JobHandle> handles;
  for (std::size_t i = 0; i < kJobs; ++i) {
    handles.push_back(engine.submit(PlanJob{}));
  }
  std::vector<std::thread> cancellers;
  for (int t = 0; t < 3; ++t) {
    cancellers.emplace_back([&] {
      for (JobHandle& handle : handles) handle.cancel();
    });
  }
  for (std::thread& thread : cancellers) thread.join();
  engine.drain();
  for (JobHandle& handle : handles) {
    const JobStatus status = handle.wait().status;
    EXPECT_TRUE(status == JobStatus::kOk || status == JobStatus::kCancelled)
        << to_string(status);
  }
  EXPECT_EQ(engine.jobs_submitted(), kJobs);
  EXPECT_EQ(engine.jobs_completed() + engine.jobs_cancelled(), kJobs);
}

// ------------------------------------------------------ starvation aging

TEST(EngineQueueTest, AgingBypassesCostOrderAfterLimit) {
  // A heavy job that has waited past starvation_limit_ms runs before a
  // cheaper later submission (deterministic in manual-drain mode).
  EngineConfig config = fast_config(/*dispatch_threads=*/0);
  config.starvation_limit_ms = 5.0;
  Engine engine(config);
  SimulateJob heavy;
  heavy.atoms = 64;
  JobHandle h_heavy = engine.submit(heavy);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  JobHandle h_cheap = engine.submit(PlanJob{});
  engine.drain();
  ASSERT_TRUE(h_heavy.wait().ok());
  ASSERT_TRUE(h_cheap.wait().ok());
  EXPECT_LT(h_heavy.wait().engine.exec_seq, h_cheap.wait().engine.exec_seq);

  // Control: with a generous limit the cheap job jumps ahead.
  EngineConfig fifo_free = fast_config(/*dispatch_threads=*/0);
  fifo_free.starvation_limit_ms = 60000.0;
  Engine control(fifo_free);
  JobHandle c_heavy = control.submit(heavy);
  JobHandle c_cheap = control.submit(PlanJob{});
  control.drain();
  EXPECT_LT(c_cheap.wait().engine.exec_seq,
            c_heavy.wait().engine.exec_seq);
}

TEST(EngineQueueTest, AgingBoundsStarvationUnderAdversarialMix) {
  // Adversarial mixed traffic: expensive jobs interleaved with floods of
  // cheap ones that pure cost order would always favour. The escape
  // hatch must bound starvation — an aged heavy job runs before EVERY
  // cheaper later arrival, while a fresh heavy job still yields to all
  // of them. Manual drain keeps the order deterministic, so the census
  // is exact, not statistical. The limit must dwarf the full drain time
  // (~1 s worst case on a loaded single core): if the fresh heavy job
  // could age while the floods drain, it would legally jump the late
  // flood and the exact census would flake.
  EngineConfig config = fast_config(/*dispatch_threads=*/0);
  config.starvation_limit_ms = 8000.0;
  Engine engine(config);

  SimulateJob heavy;
  heavy.atoms = 64;

  // Phase 1: a heavy job, then a flood of cheap ones.
  JobHandle aged_heavy = engine.submit(heavy);
  std::vector<JobHandle> early_cheap;
  for (int i = 0; i < 6; ++i) early_cheap.push_back(engine.submit(PlanJob{}));

  // Let the heavy job (and the early flood) age past the limit, then
  // pile on a second heavy job and a fresh flood.
  std::this_thread::sleep_for(std::chrono::milliseconds(8200));
  JobHandle fresh_heavy = engine.submit(heavy);
  std::vector<JobHandle> late_cheap;
  for (int i = 0; i < 6; ++i) late_cheap.push_back(engine.submit(PlanJob{}));

  engine.drain();
  ASSERT_TRUE(aged_heavy.wait().ok());
  ASSERT_TRUE(fresh_heavy.wait().ok());

  // Exact census of the execution order:
  //  * the aged heavy job ran FIRST — zero cheap jobs overtook it;
  EXPECT_EQ(aged_heavy.wait().engine.exec_seq, 1u);
  //  * the fresh heavy job ran LAST — all 12 cheap jobs (6 of them
  //    submitted later) overtook it, cost order intact for the young;
  EXPECT_EQ(fresh_heavy.wait().engine.exec_seq, 14u);
  //  * equal-cost cheap jobs kept FIFO order among themselves, early
  //    flood before late flood.
  std::vector<std::uint64_t> cheap_seq;
  for (JobHandle& handle : early_cheap) {
    ASSERT_TRUE(handle.wait().ok());
    cheap_seq.push_back(handle.wait().engine.exec_seq);
  }
  for (JobHandle& handle : late_cheap) {
    ASSERT_TRUE(handle.wait().ok());
    cheap_seq.push_back(handle.wait().engine.exec_seq);
  }
  for (std::size_t i = 0; i < cheap_seq.size(); ++i) {
    EXPECT_EQ(cheap_seq[i], i + 2) << "cheap job " << i;
  }
  EXPECT_EQ(engine.jobs_completed(), 14u);
}

// ------------------------------------------------- malformed-request fuzz

TEST(EngineFuzzTest, MalformedRequestsNeverEscapeClassification) {
  // Deterministic PRNG sweep over adversarial request fields: every run
  // returns a classified result (never throws), invalid requests carry
  // the validator's findings, and every result JSON round-trips.
  Prng prng(0xfeedfacecafe1234ull);
  Engine engine(fast_config());
  const double weird[] = {-1.0,
                          0.0,
                          0.5,
                          2.0,
                          1e308,
                          std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity()};
  const std::size_t atom_choices[] = {0, 1, 3, 7, 8, 12, 16};
  int invalid_seen = 0;
  for (int i = 0; i < 120; ++i) {
    JobRequest request;
    switch (prng.next_below(3)) {
      case 0: {
        ScfJob job;
        job.atoms = atom_choices[prng.next_below(std::size(atom_choices))];
        job.ecut_ry = weird[prng.next_below(std::size(weird))];
        job.scf.mixing = weird[prng.next_below(std::size(weird))];
        job.scf.tolerance = weird[prng.next_below(std::size(weird))];
        job.scf.max_iterations =
            static_cast<unsigned>(prng.next_below(3));
        job.deadline_ms = weird[prng.next_below(std::size(weird))];
        request = job;
        break;
      }
      case 1: {
        BandStructureJob job;
        job.atoms = atom_choices[prng.next_below(std::size(atom_choices))];
        job.ecut_ry = weird[prng.next_below(std::size(weird))];
        job.segments = static_cast<unsigned>(prng.next_below(3));
        job.bands = prng.next_below(4);
        job.valence_bands = prng.next_below(6);
        job.mp_grid[0] = static_cast<unsigned>(prng.next_below(1u << 23));
        job.mp_grid[1] = static_cast<unsigned>(prng.next_below(1u << 23));
        job.mp_grid[2] = static_cast<unsigned>(prng.next_below(1u << 23));
        job.sampling = prng.next_bool(0.5)
                           ? BandStructureJob::Sampling::kPath
                           : BandStructureJob::Sampling::kMonkhorstPack;
        job.deadline_ms = weird[prng.next_below(std::size(weird))];
        request = job;
        break;
      }
      default: {
        SimulateJob job;
        job.atoms = atom_choices[prng.next_below(std::size(atom_choices))];
        job.deadline_ms = weird[prng.next_below(std::size(weird))];
        request = job;
        break;
      }
    }
    const std::vector<std::string> findings = validate(request);
    JobResult result;
    ASSERT_NO_THROW(result = engine.run(request)) << "iteration " << i;
    if (!findings.empty()) {
      ++invalid_seen;
      EXPECT_EQ(result.status, JobStatus::kInvalid);
      EXPECT_EQ(result.error, ErrorKind::kInvalidRequest);
      EXPECT_EQ(result.error_details, findings);
    }
    const std::string dumped = result.to_json().dump();
    const JobResult rebuilt = JobResult::from_json(Json::parse(dumped));
    EXPECT_EQ(rebuilt.to_json().dump(), dumped) << "iteration " << i;
  }
  EXPECT_GT(invalid_seen, 50);  // the sweep actually exercises rejection
}

TEST(EngineFuzzTest, FaultSpecParserNeverCrashes) {
  // Random concatenations of grammar fragments either parse or throw
  // NdftError — nothing else escapes.
  Prng prng(0x5eedbeef0badull);
  const char* fragments[] = {"seed=",   "scf.alloc",  "engine.alloc",
                             "=",       "0.5",        "1.0",
                             "@",       "3",          ";",
                             ",",       "*",          " ",
                             "nan",     "-1",         "bogus.site",
                             "1e309",   "@@",         "=="};
  for (int i = 0; i < 500; ++i) {
    std::string text;
    const std::size_t parts = 1 + prng.next_below(8);
    for (std::size_t p = 0; p < parts; ++p) {
      text += fragments[prng.next_below(std::size(fragments))];
    }
    try {
      const FaultSpec spec = FaultSpec::parse(text);
      (void)spec;
    } catch (const NdftError&) {
      // expected for malformed text
    }
  }
}

}  // namespace
}  // namespace ndft::api
