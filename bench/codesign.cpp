// bench_codesign: the co-design loop end to end. Records a real LR-TDDFT
// run's kernel trace through the Engine, replays it through the
// calibrated cost-aware scheduler, and simulates the planned schedule on
// the CPU-NDP machine. Results go to BENCH_codesign.json for
// cross-commit tracking.
//
// Modes:
//   bench_codesign            full loop at Si_8 and Si_16
//   bench_codesign --smoke    Si_8 only; exits nonzero if the replay
//                             fails, the plan does not cover the trace,
//                             or the payload does not round-trip as JSON
//                             (the verify.sh --bench-smoke gate)

#include <cstdio>
#include <cstring>
#include <vector>

#include "api/engine.hpp"
#include "common/run_metadata.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"

using namespace ndft;

namespace {

struct LoopSample {
  std::size_t atoms = 0;
  std::size_t events = 0;
  std::size_t planned = 0;
  double traced_ms = 0.0;
  unsigned crossings = 0;
  TimePs est_total_ps = 0;
  TimePs sim_total_ps = 0;
  api::CalibrationPayload calibration;
};

const api::JobResult& check(const api::JobResult& result, const char* what) {
  if (!result.ok()) {
    throw NdftError(strformat("%s failed (%s): %s", what,
                              api::to_string(result.error),
                              result.error_message.c_str()));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::vector<std::size_t> systems =
      smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{8, 16};

  api::EngineConfig config;
  config.dispatch_threads = 0;  // deterministic single-thread drain
  api::Engine engine(config);

  std::printf("co-design loop: record -> calibrate -> plan -> simulate%s\n\n",
              smoke ? " (smoke)" : "");

  std::vector<LoopSample> samples;
  for (const std::size_t atoms : systems) {
    api::LrtddftJob record;
    record.atoms = atoms;
    record.ecut_ry = 4.5;
    record.config.valence_window = 4;
    record.config.conduction_window = 4;
    // One untraced warmup so the recorded times measure kernel behaviour
    // rather than first-touch allocation and plan-cache misses.
    check(engine.run(record), "warmup");
    record.record_trace = true;
    const api::JobResult recorded = check(engine.run(record), "record");
    if (!recorded.trace || recorded.trace->events.empty()) {
      throw NdftError("recorded run carries no trace");
    }

    api::CoDesignJob replay;
    replay.trace = *recorded.trace;
    replay.simulate = true;
    const api::JobResult result = check(engine.run(replay), "replay");
    const api::CoDesignPayload& payload = *result.codesign;

    LoopSample sample;
    sample.atoms = atoms;
    sample.events = payload.trace_events;
    sample.planned = payload.plan.placements.size();
    sample.traced_ms = payload.trace_host_ms;
    sample.crossings = payload.plan.crossings;
    sample.est_total_ps = payload.plan.est_total_ps;
    sample.sim_total_ps = payload.simulate ? payload.simulate->total_ps : 0;
    sample.calibration = payload.calibration;
    samples.push_back(sample);

    if (smoke) {
      // Structural gate: the plan must cover every schedulable event and
      // the result must survive a JSON round trip bit-exactly.
      if (sample.planned == 0 || sample.planned > sample.events) {
        std::fprintf(stderr, "FAIL: plan covers %zu of %zu events\n",
                     sample.planned, sample.events);
        return 1;
      }
      if (!sample.calibration.calibrated) {
        std::fprintf(stderr, "FAIL: calibration did not fit any event\n");
        return 1;
      }
      const std::string dumped = result.to_json().dump();
      const api::JobResult reparsed =
          api::JobResult::from_json(Json::parse(dumped));
      if (reparsed.to_json().dump() != dumped) {
        std::fprintf(stderr, "FAIL: codesign result JSON round trip\n");
        return 1;
      }
      std::printf("smoke OK: %zu events planned, %u crossings, "
                  "calibration ratio %.2f\n",
                  sample.planned, sample.crossings,
                  sample.calibration.max_ratio);
    }
  }

  TextTable table({"atoms", "events", "traced", "est total", "sim total",
                   "crossings", "fit GF/s", "fit GB/s", "fit ratio"});
  for (const LoopSample& s : samples) {
    table.add_row({strformat("%zu", s.atoms), strformat("%zu", s.events),
                   strformat("%.1f ms", s.traced_ms),
                   format_time(s.est_total_ps),
                   format_time(s.sim_total_ps),
                   strformat("%u", s.crossings),
                   strformat("%.1f", s.calibration.peak_gflops),
                   strformat("%.1f", s.calibration.dram_gbps),
                   strformat("%.2f", s.calibration.max_ratio)});
  }
  std::printf("%s\n", table.render().c_str());

  Json bench = Json::object();
  bench.set("bench", "codesign");
  bench.set("meta", run_metadata_json());
  Json entries = Json::array();
  for (const LoopSample& s : samples) {
    Json entry = Json::object();
    entry.set("atoms", s.atoms);
    entry.set("trace_events", s.events);
    entry.set("planned_kernels", s.planned);
    entry.set("traced_ms", s.traced_ms);
    entry.set("crossings", s.crossings);
    entry.set("est_total_ps", s.est_total_ps);
    entry.set("sim_total_ps", s.sim_total_ps);
    Json calibration = Json::object();
    calibration.set("calibrated", s.calibration.calibrated);
    calibration.set("peak_gflops", s.calibration.peak_gflops);
    calibration.set("dram_gbps", s.calibration.dram_gbps);
    calibration.set("blocked_efficiency", s.calibration.blocked_efficiency);
    calibration.set("max_ratio", s.calibration.max_ratio);
    calibration.set("fitted_events", s.calibration.fitted_events);
    entry.set("calibration", std::move(calibration));
    entries.push_back(std::move(entry));
  }
  bench.set("systems", std::move(entries));
  const char* path = "BENCH_codesign.json";
  if (std::FILE* file = std::fopen(path, "w")) {
    const std::string text = bench.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("wrote %zu loop records to %s\n", samples.size(), path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }
  return 0;
} catch (const NdftError& error) {
  std::fprintf(stderr, "codesign: %s\n", error.what());
  return 1;
}
