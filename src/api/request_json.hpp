#pragma once
// Wire form of JobRequest: the "ndft.job_request.v1" JSON schema, the
// inverse of the result serializer in api/result.hpp. This is what the
// network front end (src/net) accepts on POST /v1/jobs and what
// HttpClient sends — but it has no network dependency of its own, so
// batch drivers and tests can use it for request persistence too.
//
// Shape:
//   {"schema": "ndft.job_request.v1", "kind": "<job kind>", "job": {...}}
//
// Every member of "job" is optional and defaults to the corresponding
// struct default, so {"schema": ..., "kind": "plan", "job": {}} is a
// complete request. Unknown members inside "job" are ignored (additive
// evolution, mirroring the result schema's policy); an unknown "kind" or
// a type-mismatched member throws NdftError, which the service layer
// maps to a clean 400.
//
// Round trip: job_request_from_json(job_request_to_json(r)) reproduces r
// exactly (pinned by tests/net_test.cpp).

#include "api/job.hpp"
#include "common/json.hpp"

namespace ndft::api {

/// The request schema identifier ("ndft.job_request.v1").
extern const char* const kJobRequestSchema;

/// Serializes a request under the "ndft.job_request.v1" schema.
Json job_request_to_json(const JobRequest& request);

/// Reconstructs a request from its serialized form; throws NdftError on
/// schema mismatch, unknown kind, or malformed members. The result is
/// structurally well-formed but NOT yet validated: run api::validate()
/// (or let the Engine do it) before executing.
JobRequest job_request_from_json(const Json& json);

}  // namespace ndft::api
