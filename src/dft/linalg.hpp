#pragma once
// Dense linear algebra kernels: blocked GEMM and symmetric/Hermitian
// eigensolvers (the paper's SYEVD), implemented from scratch.
//
// The production eigensolver (`syevd`) dispatches by size between two
// complete paths:
//
//  * One-stage (small n, and public as `syevd_onestage`): blocked
//    Householder panel reduction straight to tridiagonal form with the
//    trailing-matrix rank-2k updates expressed as GEMM on the blocked
//    kernel, implicit-shift QL on the tridiagonal matrix with the Givens
//    rotations applied in pool-parallel contiguous sweeps, and a
//    compact-WY GEMM back-transformation.
//  * Two-stage + divide-and-conquer (large n): full -> band reduction via
//    blocked QR panels whose two-sided trailing updates are pure level-3
//    GEMM, band -> tridiagonal via Givens bulge chasing (the rotations are
//    logged), then a Cuppen divide-and-conquer tridiagonal eigensolver
//    (secular-equation roots with dlaed2-style deflation, merges
//    back-multiplied as GEMMs). Eigenvectors come back through the
//    reversed rotation log and the same compact-WY GEMMs.
//
// The serial EISPACK-lineage tred2/tql2 pair is kept as `syevd_naive`,
// the reference both production paths are tested and benchmarked against.
// Complex Hermitian problems are solved through the standard real
// embedding [[A, -B], [B, A]], so they ride the blocked real path too;
// large complex GEMMs are computed with a 3M split (three real products
// on the real microkernel).

#include <vector>

#include "dft/matrix.hpp"

namespace ndft::dft {

/// Running tally of arithmetic and traffic, used to validate the analytic
/// kernel descriptors against the real numerics.
struct OpCount {
  Flops flops = 0;
  Bytes bytes = 0;

  void add(Flops f, Bytes b) noexcept {
    flops += f;
    bytes += b;
  }
};

/// C = alpha * op(A) * op(B) + beta * C for real matrices.
/// op is controlled by `transpose_a` / `transpose_b`. Cache-blocked with
/// panel packing (transposition happens inside the packing, so no operand
/// copies) and parallelised over row blocks on the thread pool; results
/// are bitwise identical for any thread count. `count`, when non-null,
/// accumulates flop/byte tallies.
void gemm(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
          double alpha = 1.0, double beta = 0.0, bool transpose_a = false,
          bool transpose_b = false, OpCount* count = nullptr);

/// Complex version; `transpose_a` applies the conjugate transpose.
void gemm(const ComplexMatrix& a, const ComplexMatrix& b, ComplexMatrix& c,
          Complex alpha = Complex{1.0, 0.0}, Complex beta = Complex{0.0, 0.0},
          bool conj_transpose_a = false, bool transpose_b = false,
          OpCount* count = nullptr);

/// Textbook triple-loop GEMM, kept as the reference implementation the
/// blocked kernels are tested and benchmarked against. Same semantics and
/// OpCount accounting as gemm().
void gemm_naive(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
                double alpha = 1.0, double beta = 0.0,
                bool transpose_a = false, bool transpose_b = false,
                OpCount* count = nullptr);

/// Complex reference; `conj_transpose_a` applies the conjugate transpose.
void gemm_naive(const ComplexMatrix& a, const ComplexMatrix& b,
                ComplexMatrix& c, Complex alpha = Complex{1.0, 0.0},
                Complex beta = Complex{0.0, 0.0},
                bool conj_transpose_a = false, bool transpose_b = false,
                OpCount* count = nullptr);

/// Analytic cost tally of a full-spectrum n x n symmetric eigensolve,
/// modelling the production two-stage path: ~2n^3 level-3 flops for the
/// full->band reduction, ~(8/3)n^3 for the divide-and-conquer merges,
/// ~3n^3 for the reversed bulge-chase rotations and ~2n^3 for the
/// compact-WY back-transform, plus the O(n^2 b) chase itself; bytes are
/// dominated by the per-panel trailing-square copies (O(n^3 / b)). The
/// one formula shared by the solvers' OpCount/trace accounting, the
/// analytic workload descriptors and the Engine's queue estimator.
struct SyevdCost {
  Flops flops = 0;
  Bytes bytes = 0;
};
SyevdCost syevd_cost(std::size_t n) noexcept;

/// Result of a symmetric eigensolve.
struct EigenResult {
  std::vector<double> eigenvalues;  ///< ascending
  RealMatrix eigenvectors;          ///< column j pairs with eigenvalue j
};

/// Solves the full eigenproblem of a real symmetric matrix (SYEVD). This
/// is the production entry point every physics consumer goes through. It
/// dispatches by size: small problems run the one-stage path (blocked
/// Householder tridiagonalization, pool-parallel QL rotation sweeps,
/// compact-WY GEMM back-transformation), large problems the two-stage
/// band reduction + bulge chase + divide-and-conquer path, whose trailing
/// updates and merge back-multiplications are level-3 GEMM. Results are
/// bitwise identical for any thread count. Throws NdftError if the matrix
/// is not square or an iteration fails to converge (pathological input).
EigenResult syevd(const RealMatrix& symmetric, OpCount* count = nullptr);

/// The one-stage path (blocked tridiagonalization + QL + compact WY),
/// callable directly regardless of size. Kept public as the regression
/// baseline the two-stage solver is benchmarked and gated against; small
/// `syevd` calls dispatch here. Same semantics and OpCount accounting as
/// syevd().
EigenResult syevd_onestage(const RealMatrix& symmetric,
                           OpCount* count = nullptr);

/// Serial reference solver (EISPACK tred2/tql2 lineage), kept as the
/// ground truth `syevd` is validated and benchmarked against. Same
/// semantics and OpCount accounting as syevd().
EigenResult syevd_naive(const RealMatrix& symmetric,
                        OpCount* count = nullptr);

/// Analytic cost tally of a partial eigensolve returning the lowest `m`
/// pairs: the full reduction (~(4/3)n^3) survives, but the QL rotations
/// and the back-transformation shrink to O(n^2 m). Collapses to
/// syevd_cost(n) in the regime where syevd_partial() delegates to the
/// full solver.
SyevdCost syevd_partial_cost(std::size_t n, std::size_t m) noexcept;

/// Solves for the lowest `m` eigenpairs of a real symmetric matrix
/// (1 <= m <= n). Reuses the blocked Householder reduction, then replaces
/// the full-spectrum QL stage with bisection (Sturm counts on the
/// tridiagonal matrix) plus inverse iteration for just those `m` vectors,
/// which are back-transformed through the compact-WY GEMMs restricted to
/// m columns — O(n^2 m) after the reduction instead of O(n^3). When
/// 2m > n the savings vanish and the call delegates to syevd(),
/// truncated to m pairs, so callers can request any window. Eigenvalues
/// match the full solver to ~n*eps*||A||; eigenvectors match to sign
/// within nondegenerate multiplets (clustered eigenvalues are
/// re-orthogonalised, spanning the same invariant subspace). Results are
/// bitwise identical for any thread count.
EigenResult syevd_partial(const RealMatrix& symmetric, std::size_t m,
                          OpCount* count = nullptr);

/// Result of a Hermitian eigensolve.
struct HermitianEigenResult {
  std::vector<double> eigenvalues;  ///< ascending
  ComplexMatrix eigenvectors;       ///< column j pairs with eigenvalue j
};

/// Solves the full eigenproblem of a complex Hermitian matrix via the real
/// 2n x 2n embedding (each eigenvalue appears twice; duplicates are
/// folded), so the solve runs on the blocked real syevd() path.
HermitianEigenResult heev(const ComplexMatrix& hermitian,
                          OpCount* count = nullptr);

/// Zeroes the calling thread's accumulated linalg wall time, including
/// the per-stage tallies below. The engine resets before executing a job
/// and reads the tallies after, giving every JobResult its `linalg_ms` /
/// stage timing buckets.
void linalg_timer_reset() noexcept;

/// Wall-clock milliseconds the calling thread has spent inside top-level
/// linalg entry points (gemm/syevd/heev) since the last reset. Nested
/// calls (GEMM inside syevd) are counted once, under the outermost entry.
double linalg_timer_ms() noexcept;

/// Per-stage wall-clock split of the eigensolver time: the reduction to
/// tridiagonal form (one-stage Householder, or band reduction + bulge
/// chase), the tridiagonal eigensolve (QL, divide-and-conquer, or
/// bisection), and the eigenvector back-transformations (reversed
/// rotation log + compact-WY GEMMs). The three buckets are disjoint
/// sub-spans of `linalg_timer_ms`, so they add up to at most the total.
struct LinalgStageTimes {
  double reduce_ms = 0.0;
  double tridiag_ms = 0.0;
  double backtransform_ms = 0.0;
};

/// The calling thread's accumulated stage split since the last
/// linalg_timer_reset().
LinalgStageTimes linalg_stage_times() noexcept;

/// Frobenius norm of (A*x - lambda*x) for result verification in tests.
double eigen_residual(const RealMatrix& symmetric, const EigenResult& result);

/// Copies the upper triangle into the lower one. Used by the symmetric
/// Hamiltonian assemblies, whose upper triangles are filled row-wise on
/// the thread pool; the mirror runs on the pool too (each task writes
/// only its own rows, so the result is deterministic).
void mirror_upper(RealMatrix& symmetric);

}  // namespace ndft::dft
