#pragma once
// Fundamental scalar types shared by every NDFT module.
//
// All simulated time is kept in integer picoseconds so that clock domains
// with non-commensurate periods (e.g. a 3 GHz CPU against a 1 GHz DRAM bus)
// can be composed without rounding drift.

#include <cstdint>
#include <limits>

namespace ndft {

/// Simulated time in picoseconds.
using TimePs = std::uint64_t;

/// Cycle count within one clock domain.
using Cycles = std::uint64_t;

/// Physical byte address inside the simulated machine.
using Addr = std::uint64_t;

/// Size or traffic volume in bytes.
using Bytes = std::uint64_t;

/// Floating-point operation count.
using Flops = std::uint64_t;

/// Sentinel for "no time" / "never".
inline constexpr TimePs kTimeNever = std::numeric_limits<TimePs>::max();

/// One nanosecond expressed in picoseconds.
inline constexpr TimePs kPsPerNs = 1000;
/// One microsecond expressed in picoseconds.
inline constexpr TimePs kPsPerUs = 1000 * 1000;
/// One millisecond expressed in picoseconds.
inline constexpr TimePs kPsPerMs = 1000ull * 1000 * 1000;
/// One second expressed in picoseconds.
inline constexpr TimePs kPsPerSec = 1000ull * 1000 * 1000 * 1000;

/// Identifies the kind of compute device a task may execute on.
enum class DeviceKind : std::uint8_t {
  kCpu,  ///< host out-of-order cores
  kNdp,  ///< near-data in-order cores in the memory-stack logic layer
  kGpu,  ///< discrete accelerator baseline
};

/// Human-readable name for a device kind.
const char* to_string(DeviceKind kind) noexcept;

/// Access-pattern classes recognised by the static code analyzer and used
/// by the trace generator to synthesise representative address streams.
enum class AccessPattern : std::uint8_t {
  kSequential,  ///< unit-stride streaming (e.g. face-splitting product)
  kStrided,     ///< constant non-unit stride (e.g. FFT butterflies, transposes)
  kRandom,      ///< data-dependent scatter/gather (e.g. Alltoall buckets)
  kBlocked,     ///< tiled reuse within a cache-resident block (e.g. GEMM)
};

/// Human-readable name for an access pattern.
const char* to_string(AccessPattern pattern) noexcept;

/// The kernel families that make up LR-TDDFT (paper Fig. 1). Used by the
/// static code analyzer, the GPU model and the reports.
enum class KernelClass : std::uint8_t {
  kFft,             ///< 3D fast Fourier transforms
  kFaceSplit,       ///< face-splitting (point-wise orbital-pair) products
  kGemm,            ///< dense matrix multiplication
  kSyevd,           ///< dense symmetric eigensolve (diagonalization)
  kPseudopotential, ///< nonlocal pseudopotential application
  kAlltoall,        ///< global transpose (MPI_Alltoall)
  kOther,           ///< bookkeeping / miscellaneous
};

/// Human-readable name for a kernel class.
const char* to_string(KernelClass kernel_class) noexcept;

}  // namespace ndft
