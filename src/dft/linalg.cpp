#include "dft/linalg.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/fault.hpp"
#include "common/kernel_trace.hpp"
#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"

namespace ndft::dft {
namespace {

// --------------------------------------------------------- linalg timer
//
// Per-thread wall-clock tally of time spent inside top-level linalg entry
// points. Jobs execute on one engine thread, so reset-before / read-after
// brackets exactly the linalg share of that job. The depth counter keeps
// nested entries (GEMM called from inside syevd) from double counting.

thread_local double tl_linalg_ms = 0.0;
thread_local unsigned tl_linalg_depth = 0;

class LinalgTimerScope {
 public:
  LinalgTimerScope() noexcept : start_(std::chrono::steady_clock::now()) {
    ++tl_linalg_depth;
  }
  ~LinalgTimerScope() {
    if (--tl_linalg_depth == 0) {
      tl_linalg_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    }
  }
  LinalgTimerScope(const LinalgTimerScope&) = delete;
  LinalgTimerScope& operator=(const LinalgTimerScope&) = delete;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// sqrt(a^2 + b^2) without destructive overflow.
double pythag(double a, double b) noexcept {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double ratio = absb / absa;
    return absa * std::sqrt(1.0 + ratio * ratio);
  }
  if (absb == 0.0) {
    return 0.0;
  }
  const double ratio = absa / absb;
  return absb * std::sqrt(1.0 + ratio * ratio);
}

double sign_of(double magnitude, double sign) noexcept {
  return sign >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

#if defined(__GNUC__) && defined(__AVX512F__)
#define NDFT_GEMM_SIMD 1
/// 8 doubles per lane; the GEMM microkernel's kNr is exactly two lanes.
typedef double V8d __attribute__((vector_size(64)));

V8d v8_load(const double* p) {
  V8d v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned load, folds to vmovupd
  return v;
}
#endif

/// Dot product of x[begin:end) with y[begin:end) over fixed-width
/// independent partial sums: breaks the FP add latency chain that makes a
/// naive dot run at ~1 element per 4 cycles under -ffp-contract=off, and
/// vectorises on AVX-512 builds. The accumulation order depends only on
/// the index range, so results are identical for any thread count.
double dot_range(const double* __restrict x, const double* __restrict y,
                 std::size_t begin, std::size_t end) {
  std::size_t c = begin;
  double head = 0.0;
#if NDFT_GEMM_SIMD
  V8d acc0{};
  V8d acc1{};
  for (; c + 16 <= end; c += 16) {
    acc0 += v8_load(x + c) * v8_load(y + c);
    acc1 += v8_load(x + c + 8) * v8_load(y + c + 8);
  }
  const V8d acc = acc0 + acc1;
  double lanes[8];
  __builtin_memcpy(lanes, &acc, sizeof(lanes));
  head = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
#else
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (; c + 4 <= end; c += 4) {
    s0 += x[c] * y[c];
    s1 += x[c + 1] * y[c + 1];
    s2 += x[c + 2] * y[c + 2];
    s3 += x[c + 3] * y[c + 3];
  }
  head = (s0 + s1) + (s2 + s3);
#endif
  for (; c < end; ++c) head += x[c] * y[c];
  return head;
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// (EISPACK tred2 lineage). On return `z` holds the accumulated orthogonal
/// transformation, `d` the diagonal and `e` the subdiagonal (e[0] unused).
void tred2(RealMatrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the transformation matrix.
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on a tridiagonal matrix with eigenvector
/// accumulation (EISPACK tql2 lineage). `d` holds eigenvalues on return.
void tql2(std::vector<double>& d, std::vector<double>& e, RealMatrix& z) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    unsigned iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        NDFT_REQUIRE(iter++ < 50, "QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          e[i + 1] = r = pythag(f, g);
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

// ------------------------------------------------- blocked eigensolver
//
// LAPACK-shaped two-phase path on full symmetric storage. Reduction
// processes panels of kEigBlock columns: each column's reflector is
// generated after folding in the panel's previous reflectors (dlatrd
// recurrence, with the dominant trailing matrix-vector product running on
// the thread pool), and the trailing matrix is updated once per panel
// with a single rank-2k GEMM on the blocked kernel. The tridiagonal
// eigenproblem reuses the tql2 recurrence for d/e, but buffers each QL
// sweep's Givens rotations and applies them to the *transposed*
// eigenvector matrix, where a rotation touches two contiguous rows: the
// sweep vectorises and splits across the pool by column ranges. The
// back-transformation accumulates each panel into a compact-WY factor
// (I - V T V^T) and applies it with three GEMMs. Every stage either runs
// serially or partitions disjoint outputs with a fixed per-element
// operation order, so results are bitwise identical for any thread count.

constexpr std::size_t kEigBlock = 32;  ///< reduction/back-transform panel

/// The eigensolver issues many short-lived stages (per-column gemv, panel
/// copies); waking the pool costs more than such a stage is worth, so
/// these dispatch only above ~1M flops per call. The chunky stages (QL
/// rotation batches, GEMM) keep the default grain policy.
constexpr std::size_t kEigDispatchWork = std::size_t{1} << 20;

std::size_t eig_grain(std::size_t work_per_index) {
  return std::max<std::size_t>(
      1, kEigDispatchWork / std::max<std::size_t>(1, work_per_index));
}

/// Blocked Householder reduction to tridiagonal form (dsytrd/dlatrd
/// lineage, lower-triangle convention). On return `d` is the diagonal,
/// `e` the subdiagonal (e[0] unused), `tau` the reflector scalars, and
/// reflector j's vector sits in a(j+1:n, j) with its leading 1 stored
/// explicitly at a(j+1, j) for the back-transformation.
void blocked_tridiagonalize(RealMatrix& a, std::vector<double>& d,
                            std::vector<double>& e,
                            std::vector<double>& tau) {
  const std::size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  tau.assign(n, 0.0);
  std::vector<double> v(n, 0.0);  // contiguous copy of the active reflector
  for (std::size_t i0 = 0; i0 + 2 < n;) {
    const std::size_t kb = std::min(kEigBlock, n - 2 - i0);
    RealMatrix w(n, kb);  // the panel's W accumulator (dlatrd)
    for (std::size_t jj = 0; jj < kb; ++jj) {
      const std::size_t j = i0 + jj;
      // Fold the panel's previous reflectors into column j:
      // a(j:n, j) -= V(j:n, 0:jj) w(j, 0:jj)^T + W(j:n, 0:jj) v(j, 0:jj)^T.
      if (jj > 0) {
        for (std::size_t r = j; r < n; ++r) {
          double acc = 0.0;
          for (std::size_t p = 0; p < jj; ++p) {
            acc += a(r, i0 + p) * w(j, p) + w(r, p) * a(j, i0 + p);
          }
          a(r, j) -= acc;
        }
      }
      // Householder reflector annihilating a(j+2:n, j).
      double tail2 = 0.0;
      for (std::size_t r = j + 2; r < n; ++r) tail2 += a(r, j) * a(r, j);
      const double alpha = a(j + 1, j);
      double beta = alpha;
      double tau_j = 0.0;
      if (tail2 != 0.0) {
        beta = -sign_of(pythag(alpha, std::sqrt(tail2)), alpha);
        tau_j = (beta - alpha) / beta;
        const double inv = 1.0 / (alpha - beta);
        for (std::size_t r = j + 2; r < n; ++r) a(r, j) *= inv;
      }
      tau[j] = tau_j;
      e[j + 1] = beta;
      a(j + 1, j) = 1.0;  // leading 1 of v_j, kept for the back-transform
      for (std::size_t r = 0; r < n; ++r) v[r] = (r > j) ? a(r, j) : 0.0;
      // w_j = tau (A_t v - V (W^T v) - W (V^T v)) - (tau/2)(w^T v) v, with
      // A_t the trailing square as of panel start. The matrix-vector
      // product dominates the panel work; rows are independent.
      parallel_for(j + 1, n, eig_grain(n - j),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       w(r, jj) = dot_range(a.row(r), v.data(), j + 1, n);
                     }
                   });
      if (jj > 0) {
        // Row-outer accumulation: the W / V panel rows are contiguous and
        // the jj partial sums are independent chains.
        std::vector<double> wtv(jj, 0.0);
        std::vector<double> vtv(jj, 0.0);
        for (std::size_t r = j + 1; r < n; ++r) {
          const double* wrow = w.row(r);
          const double* arow = a.row(r) + i0;
          const double vr = v[r];
          for (std::size_t p = 0; p < jj; ++p) {
            wtv[p] += wrow[p] * vr;
            vtv[p] += arow[p] * vr;
          }
        }
        for (std::size_t r = j + 1; r < n; ++r) {
          double acc = 0.0;
          for (std::size_t p = 0; p < jj; ++p) {
            acc += a(r, i0 + p) * wtv[p] + w(r, p) * vtv[p];
          }
          w(r, jj) -= acc;
        }
      }
      double dot = 0.0;
      for (std::size_t r = j + 1; r < n; ++r) {
        w(r, jj) *= tau_j;
        dot += w(r, jj) * v[r];
      }
      const double correction = -0.5 * tau_j * dot;
      for (std::size_t r = j + 1; r < n; ++r) {
        w(r, jj) += correction * v[r];
      }
    }
    // Trailing rank-2k update A_t -= V W^T + W V^T, expressed as the
    // single blocked GEMM A_t += (-[V | W]) [W | V]^T over the full
    // trailing square (the update is symmetric, so full storage stays
    // consistent for the next panel's matrix-vector products).
    const std::size_t t0 = i0 + kb;
    const std::size_t m = n - t0;
    if (m > 0) {
      RealMatrix left(m, 2 * kb);
      RealMatrix right(m, 2 * kb);
      RealMatrix trailing(m, m);
      parallel_for(0, m, eig_grain(4 * kb + m),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       for (std::size_t p = 0; p < kb; ++p) {
                         const double vv = a(t0 + r, i0 + p);
                         const double ww = w(t0 + r, p);
                         left(r, p) = vv;
                         left(r, kb + p) = ww;
                         right(r, p) = ww;
                         right(r, kb + p) = vv;
                       }
                       std::copy(a.row(t0 + r) + t0, a.row(t0 + r) + n,
                                 trailing.row(r));
                     }
                   });
      gemm(left, right, trailing, -1.0, 1.0, /*transpose_a=*/false,
           /*transpose_b=*/true);
      parallel_for(0, m, eig_grain(m),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       std::copy(trailing.row(r), trailing.row(r) + m,
                                 a.row(t0 + r) + t0);
                     }
                   });
    }
    i0 += kb;
  }
  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i);
  if (n >= 2) e[n - 1] = a(n - 1, n - 2);
}

/// One Givens rotation of a QL sweep, mixing eigenvector-matrix columns
/// (col, col + 1).
struct GivensRotation {
  std::size_t col;
  double c;
  double s;
};

/// Deferred application of QL rotations to the transposed eigenvector
/// matrix (zt(j, k) = Z(k, j)). The d/e recurrence never reads zt, so
/// rotations accumulate in a log and hit the matrix in large batches: one
/// pool dispatch applies tens of sweeps, amortising the dispatch cost
/// that per-sweep application would pay ~2n times per solve. Within a
/// batch every column sees the rotations in recorded order — exactly the
/// serial order — so results stay bitwise identical for any thread count
/// and any batch boundary.
class RotationLog {
 public:
  explicit RotationLog(RealMatrix& zt) : zt_(&zt) {
    pending_.reserve(kFlushThreshold + zt.rows());
  }

  void push(std::size_t col, double c, double s) {
    pending_.push_back({col, c, s});
  }

  /// Called between sweeps; applies the log once it is worth a dispatch.
  void maybe_flush() {
    if (pending_.size() >= kFlushThreshold) flush();
  }

  void flush() {
    if (pending_.empty()) return;
    RealMatrix& zt = *zt_;
    // Wide column bands: every band re-reads the whole rotation log, so
    // narrow bands multiply the per-rotation fixed cost. 128 columns keep
    // that amortised while still splitting across the pool.
    const std::size_t band = std::max<std::size_t>(
        128, parallel_grain(6 * pending_.size()));
    parallel_for(0, zt.cols(), band,
                 [&](std::size_t lo, std::size_t hi) {
                   for (const GivensRotation& rot : pending_) {
                     double* upper = zt.row(rot.col);
                     double* lower = zt.row(rot.col + 1);
                     for (std::size_t k = lo; k < hi; ++k) {
                       const double f = lower[k];
                       const double g = upper[k];
                       lower[k] = rot.s * g + rot.c * f;
                       upper[k] = rot.c * g - rot.s * f;
                     }
                   }
                 });
    pending_.clear();
  }

 private:
  /// Rotations per batch: big enough that one dispatch carries real work
  /// (~6 * threshold * n flops), small enough to stay cache-resident.
  static constexpr std::size_t kFlushThreshold = 16384;

  std::vector<GivensRotation> pending_;
  RealMatrix* zt_;
};

/// Implicit-shift QL with the same d/e recurrence as tql2, but with the
/// rotations routed through a RotationLog instead of being applied to the
/// eigenvector matrix one sweep at a time. The rotation sequence depends
/// only on d/e, so it is identical for any thread count.
void tridiag_ql(std::vector<double>& d, std::vector<double>& e,
                RealMatrix& zt) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  RotationLog log(zt);

  for (std::size_t l = 0; l < n; ++l) {
    unsigned iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        NDFT_REQUIRE(iter++ < 50, "QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          e[i + 1] = r = pythag(f, g);
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          log.push(i, c, s);
        }
        log.maybe_flush();
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  log.flush();
}

/// z := Q z with Q = H_0 H_1 ... H_{n-3} read from the reflectors
/// blocked_tridiagonalize stored in `a`. Panels are applied in reverse
/// order as compact-WY updates (dlarft forward factor, then three GEMMs
/// per panel restricted to the rows the panel touches).
void apply_q_blocked(const RealMatrix& a, const std::vector<double>& tau,
                     RealMatrix& z) {
  const std::size_t n = a.rows();
  if (n < 3) return;
  std::vector<std::size_t> panel_starts;
  for (std::size_t i0 = 0; i0 + 2 < n;
       i0 += std::min(kEigBlock, n - 2 - i0)) {
    panel_starts.push_back(i0);
  }
  const std::size_t cols = z.cols();
  for (std::size_t pi = panel_starts.size(); pi-- > 0;) {
    const std::size_t i0 = panel_starts[pi];
    const std::size_t kb = std::min(kEigBlock, n - 2 - i0);
    const std::size_t r0 = i0 + 1;  // first row the panel can touch
    const std::size_t m = n - r0;
    // V (m x kb): column p is reflector i0+p, unit at global row i0+p+1,
    // zero above (zero-initialised storage provides the zeros).
    RealMatrix v(m, kb);
    for (std::size_t rr = 0; rr < m; ++rr) {
      const std::size_t r = r0 + rr;
      for (std::size_t p = 0; p < kb && i0 + p + 1 <= r; ++p) {
        v(rr, p) = a(r, i0 + p);
      }
    }
    // Compact-WY factor (dlarft, forward columnwise): the panel's product
    // of reflectors is I - V T V^T with T upper triangular.
    RealMatrix t(kb, kb);
    std::vector<double> h(kb, 0.0);
    for (std::size_t p = 0; p < kb; ++p) {
      const double tau_p = tau[i0 + p];
      if (tau_p == 0.0) continue;  // H = I: the zero row/column is exact
      for (std::size_t q = 0; q < p; ++q) {
        double acc = 0.0;
        for (std::size_t rr = 0; rr < m; ++rr) acc += v(rr, q) * v(rr, p);
        h[q] = acc;
      }
      for (std::size_t q = 0; q < p; ++q) {
        double acc = 0.0;
        for (std::size_t u = q; u < p; ++u) acc += t(q, u) * h[u];
        t(q, p) = -tau_p * acc;
      }
      t(p, p) = tau_p;
    }
    // z(r0:n, :) -= V (T (V^T z(r0:n, :))).
    RealMatrix zs(m, cols);
    parallel_for(0, m, eig_grain(cols),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t rr = lo; rr < hi; ++rr) {
                     std::copy(z.row(r0 + rr), z.row(r0 + rr) + cols,
                               zs.row(rr));
                   }
                 });
    RealMatrix x1;
    gemm(v, zs, x1, 1.0, 0.0, /*transpose_a=*/true);
    RealMatrix x2;
    gemm(t, x1, x2);
    gemm(v, x2, zs, -1.0, 1.0);
    parallel_for(0, m, eig_grain(cols),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t rr = lo; rr < hi; ++rr) {
                     std::copy(zs.row(rr), zs.row(rr) + cols,
                               z.row(r0 + rr));
                   }
                 });
  }
}

// ---------------------------------------------- partial tridiagonal stage
//
// The partial-spectrum path replaces the QL stage: bisection (Sturm
// counts) finds the lowest m eigenvalues of the tridiagonal matrix, and
// inverse iteration builds just those m eigenvectors. Both stages process
// independent eigenvalue indices (clusters of close eigenvalues are one
// index group), so they split across the pool with disjoint writes and a
// fixed per-index operation order — bitwise identical for any thread
// count, like every other stage of the solver.

/// Number of eigenvalues of the tridiagonal matrix strictly below x, via
/// the LDL^T Sturm recurrence. `d` is the diagonal, `e2[i]` the squared
/// coupling of rows (i-1, i) (e2[0] unused); `pivmin` guards zero pivots
/// (dstebz convention).
std::size_t sturm_count_below(const std::vector<double>& d,
                              const std::vector<double>& e2, double pivmin,
                              double x) {
  const std::size_t n = d.size();
  std::size_t count = 0;
  double q = d[0] - x;
  if (q < 0.0) ++count;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::fabs(q) < pivmin) q = -pivmin;
    q = d[i] - x - e2[i] / q;
    if (q < 0.0) ++count;
  }
  return count;
}

/// Bisects for eigenvalue `k` (0-based, ascending) inside [lo, hi], which
/// must satisfy count(lo) <= k < count(hi). Runs to floating-point
/// fixpoint (~60 halvings), so the result is determined by the matrix
/// alone.
double bisect_eigenvalue(const std::vector<double>& d,
                         const std::vector<double>& e2, double pivmin,
                         double lo, double hi, std::size_t k) {
  for (;;) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // interval shrunk to one ulp
    if (sturm_count_below(d, e2, pivmin, mid) > k) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;  // count(hi) > k: the k-th eigenvalue is at most hi
}

/// Solves (T - lambda I) x = b in place by Gaussian elimination with
/// partial pivoting (dgttrf/dgttrs shape, refactored per call — the solve
/// is O(n) either way). `e[i]` couples rows (i-1, i); zero pivots are
/// nudged to pivmin so exactly-converged shifts cannot divide by zero.
void tridiag_shifted_solve(const std::vector<double>& d,
                           const std::vector<double>& e, double lambda,
                           double pivmin, std::vector<double>& x,
                           std::vector<double>& diag,
                           std::vector<double>& upper,
                           std::vector<double>& upper2) {
  const std::size_t n = d.size();
  diag.resize(n);
  upper.resize(n);
  upper2.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = d[i] - lambda;
    upper[i] = (i + 1 < n) ? e[i + 1] : 0.0;  // T(i, i+1)
    upper2[i] = 0.0;                          // fill-in from row swaps
  }
  // Forward elimination, pivoting between rows i and i+1. Row swaps fold
  // into the stored upper diagonals; the multiplier applies to x directly.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double sub = e[i + 1];  // T(i+1, i), untouched by earlier steps
    if (std::fabs(diag[i]) >= std::fabs(sub)) {
      const double pivot =
          std::fabs(diag[i]) < pivmin ? sign_of(pivmin, diag[i]) : diag[i];
      const double mult = sub / pivot;
      diag[i] = pivot;
      diag[i + 1] -= mult * upper[i];
      x[i + 1] -= mult * x[i];
    } else {
      // Swap rows i and i+1; row i+1's upper element becomes fill-in.
      const double mult = diag[i] / sub;
      diag[i] = sub;
      const double old_upper = upper[i];
      upper[i] = diag[i + 1];
      upper2[i] = upper[i + 1];
      diag[i + 1] = old_upper - mult * upper[i];
      upper[i + 1] = -mult * upper2[i];
      std::swap(x[i], x[i + 1]);
      x[i + 1] -= mult * x[i];
    }
  }
  if (std::fabs(diag[n - 1]) < pivmin) {
    diag[n - 1] = sign_of(pivmin, diag[n - 1]);
  }
  // Back substitution.
  x[n - 1] /= diag[n - 1];
  if (n >= 2) {
    x[n - 2] = (x[n - 2] - upper[n - 2] * x[n - 1]) / diag[n - 2];
    for (std::size_t i = n - 2; i-- > 0;) {
      x[i] = (x[i] - upper[i] * x[i + 1] - upper2[i] * x[i + 2]) / diag[i];
    }
  }
}

/// Lowest-m eigenpairs of the tridiagonal matrix (d, e): eigenvalues by
/// bisection, eigenvectors by inverse iteration (dstein shape: clusters
/// of close eigenvalues are orthogonalised against their earlier members
/// every iteration, with ulp-scale shift perturbations separating exact
/// degeneracies). Vectors land in the rows of `vt` (m x n).
void tridiag_lowest(const std::vector<double>& d, const std::vector<double>& e,
                    std::size_t m, std::vector<double>& eigenvalues,
                    RealMatrix& vt) {
  const std::size_t n = d.size();
  std::vector<double> e2(n, 0.0);
  double emax2 = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    e2[i] = e[i] * e[i];
    emax2 = std::max(emax2, e2[i]);
  }
  const double pivmin = std::numeric_limits<double>::min() * emax2;

  // Gershgorin bounds, widened by a few ulps so the count invariants
  // (count(lo) == 0, count(hi) == n) hold strictly.
  double lo = d[0];
  double hi = d[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double radius = (i > 0 ? std::fabs(e[i]) : 0.0) +
                          (i + 1 < n ? std::fabs(e[i + 1]) : 0.0);
    lo = std::min(lo, d[i] - radius);
    hi = std::max(hi, d[i] + radius);
  }
  const double anorm = std::max(std::fabs(lo), std::fabs(hi));
  const double margin =
      16.0 * std::numeric_limits<double>::epsilon() * anorm + 2.0 * pivmin;
  lo -= margin;
  hi += margin;

  eigenvalues.assign(m, 0.0);
  parallel_for(0, m, eig_grain(64 * n),
               [&](std::size_t klo, std::size_t khi) {
                 for (std::size_t k = klo; k < khi; ++k) {
                   eigenvalues[k] =
                       bisect_eigenvalue(d, e2, pivmin, lo, hi, k);
                 }
               });

  // Cluster boundaries: consecutive eigenvalues closer than the dstein
  // orthogonalisation threshold iterate as one group, so their vectors
  // are re-orthogonalised against each other every inverse-iteration
  // pass. The grouping depends only on the eigenvalues.
  const double cluster_tol =
      1e-3 * std::max(anorm, std::numeric_limits<double>::min());
  std::vector<std::size_t> cluster_starts{0};
  for (std::size_t k = 1; k < m; ++k) {
    if (eigenvalues[k] - eigenvalues[k - 1] > cluster_tol) {
      cluster_starts.push_back(k);
    }
  }
  cluster_starts.push_back(m);

  vt = RealMatrix(m, n);
  const double eps = std::numeric_limits<double>::epsilon();
  parallel_for(
      0, cluster_starts.size() - 1, 1, [&](std::size_t clo, std::size_t chi) {
        std::vector<double> diag, upper, upper2;
        for (std::size_t c = clo; c < chi; ++c) {
          const std::size_t begin = cluster_starts[c];
          const std::size_t end = cluster_starts[c + 1];
          for (std::size_t k = begin; k < end; ++k) {
            // Exact degeneracies make (T - lambda I) singular in the same
            // direction for every member; an index-scaled ulp nudge plus
            // the per-pass orthogonalisation separates them (dstein).
            const double shift =
                eigenvalues[k] +
                static_cast<double>(k - begin) * 2.0 * eps * anorm;
            double* v = vt.row(k);
            Prng prng(0x9e1d5eedull + 1000003ull * k);
            std::vector<double> x(n);
            for (std::size_t i = 0; i < n; ++i) {
              x[i] = prng.next_double(-0.5, 0.5);
            }
            const auto orthogonalise_normalise = [&]() {
              for (std::size_t j = begin; j < k; ++j) {
                const double* u = vt.row(j);
                double dot = 0.0;
                for (std::size_t i = 0; i < n; ++i) dot += u[i] * x[i];
                for (std::size_t i = 0; i < n; ++i) x[i] -= dot * u[i];
              }
              double norm2 = 0.0;
              for (const double value : x) norm2 += value * value;
              if (!(norm2 > 0.0) || !std::isfinite(norm2)) {
                return false;
              }
              const double inv = 1.0 / std::sqrt(norm2);
              for (double& value : x) value *= inv;
              return true;
            };
            for (unsigned pass = 0; pass < 4; ++pass) {
              tridiag_shifted_solve(d, e, shift, pivmin, x, diag, upper,
                                    upper2);
              if (!orthogonalise_normalise()) {
                // Degenerate start (orthogonalised away or overflowed):
                // restart from the next deterministic random vector.
                for (std::size_t i = 0; i < n; ++i) {
                  x[i] = prng.next_double(-0.5, 0.5);
                }
              }
            }
            if (!orthogonalise_normalise()) {
              // Pathological fallback: a canonical basis vector made
              // orthogonal to the cluster prefix (still deterministic).
              std::fill(x.begin(), x.end(), 0.0);
              x[k % n] = 1.0;
              (void)orthogonalise_normalise();
            }
            std::copy(x.begin(), x.end(), v);
          }
        }
      });
}

/// Sorts eigenvalues ascending, permuting eigenvector columns to match.
void sort_eigenpairs(const std::vector<double>& d, const RealMatrix& z,
                     EigenResult& result) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d[x] < d[y]; });
  result.eigenvalues.resize(n);
  RealMatrix sorted(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted(i, j) = z(i, order[j]);
    }
  }
  result.eigenvectors = std::move(sorted);
}

/// Analytic SYEVD tally shared by both solvers (the syevd_cost formula).
void count_syevd(std::size_t n, OpCount* count) {
  if (count == nullptr) return;
  const SyevdCost cost = syevd_cost(n);
  count->add(cost.flops, cost.bytes);
}

/// Conjugates complex values when `Conj`; the identity for doubles.
template <bool Conj, typename T>
T maybe_conj(const T& value) {
  if constexpr (Conj && !std::is_same_v<T, double>) {
    return std::conj(value);
  } else {
    return value;
  }
}

// ------------------------------------------------------------ GEMM layer
//
// BLIS-style blocking: C is computed in (kMc x kNr)-tall bands. op(A) and
// op(B) blocks are packed into contiguous micro-panels (the transpose /
// conjugation is absorbed by the packing, so whole-operand copies never
// happen), and an (kMr x kNr) register-tile microkernel runs over the
// packed panels. Row blocks are independent, so they are spread across
// the thread pool; every C element sees k-terms in the same order
// regardless of the thread count, keeping results bitwise deterministic.

constexpr std::size_t kMr = 6;    ///< microkernel rows (register tile)
constexpr std::size_t kNr = 16;   ///< microkernel cols (two AVX-512 lanes)
constexpr std::size_t kMc = 96;   ///< row block, multiple of kMr
constexpr std::size_t kKc = 240;  ///< depth block (packed panels stay hot)
constexpr std::size_t kNc = 2016; ///< column block, multiple of kNr

/// Below this op(A)*op(B) volume (m*n*k) the packing overhead dominates
/// and the reference loop wins; also keeps tiny products allocation-free.
constexpr std::size_t kSmallGemmVolume = 32768;

/// Packs an (mc x kc) block of op(A) into kMr-row micro-panels,
/// zero-padding the row remainder. Panel p holds rows [p*kMr, p*kMr+kMr)
/// in k-major order: element (i, l) of the block at p*kMr*kc + l*kMr + i.
template <bool Transpose, bool Conj, typename T>
void pack_a_block(const Matrix<T>& a, std::size_t row0, std::size_t col0,
                  std::size_t mc, std::size_t kc, T* buffer) {
  for (std::size_t ip = 0; ip < mc; ip += kMr) {
    const std::size_t rows = std::min(kMr, mc - ip);
    for (std::size_t l = 0; l < kc; ++l) {
      for (std::size_t i = 0; i < kMr; ++i) {
        T value{};
        if (i < rows) {
          value = Transpose
                      ? maybe_conj<Conj>(a(col0 + l, row0 + ip + i))
                      : a(row0 + ip + i, col0 + l);
        }
        *buffer++ = value;
      }
    }
  }
}

/// Packs a (kc x nc) block of op(B) into kNr-column micro-panels,
/// zero-padding the column remainder: element (l, j) of panel p sits at
/// p*kNr*kc + l*kNr + j.
template <bool Transpose, typename T>
void pack_b_block(const Matrix<T>& b, std::size_t row0, std::size_t col0,
                  std::size_t kc, std::size_t nc, T* buffer) {
  for (std::size_t jp = 0; jp < nc; jp += kNr) {
    const std::size_t cols = std::min(kNr, nc - jp);
    for (std::size_t l = 0; l < kc; ++l) {
      for (std::size_t j = 0; j < kNr; ++j) {
        T value{};
        if (j < cols) {
          value = Transpose ? b(col0 + jp + j, row0 + l)
                            : b(row0 + l, col0 + jp + j);
        }
        *buffer++ = value;
      }
    }
  }
}

/// Register-tile kernel: acc(kMr x kNr) += Apanel * Bpanel over kc terms.
/// The double path names every accumulator lane explicitly — compilers
/// reliably spill a 2D accumulator array to the stack, which costs an
/// order of magnitude here — and the generic path (complex, non-AVX512
/// builds) uses plain loops with compile-time extents.
template <typename T>
void micro_kernel(std::size_t kc, const T* __restrict a_panel,
                  const T* __restrict b_panel, T* __restrict acc) {
#if NDFT_GEMM_SIMD
  if constexpr (std::is_same_v<T, double>) {
    static_assert(kMr == 6 && kNr == 16, "tile shape is hard-wired below");
    V8d c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
    V8d c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
    for (std::size_t l = 0; l < kc; ++l) {
      const double* a = a_panel + l * kMr;
      const V8d b0 = v8_load(b_panel + l * kNr);
      const V8d b1 = v8_load(b_panel + l * kNr + 8);
      V8d av;
      av = V8d{} + a[0]; c00 += av * b0; c01 += av * b1;
      av = V8d{} + a[1]; c10 += av * b0; c11 += av * b1;
      av = V8d{} + a[2]; c20 += av * b0; c21 += av * b1;
      av = V8d{} + a[3]; c30 += av * b0; c31 += av * b1;
      av = V8d{} + a[4]; c40 += av * b0; c41 += av * b1;
      av = V8d{} + a[5]; c50 += av * b0; c51 += av * b1;
    }
    const V8d rows[12] = {c00, c01, c10, c11, c20, c21,
                          c30, c31, c40, c41, c50, c51};
    __builtin_memcpy(acc, rows, sizeof(rows));
    return;
  }
#endif
  for (std::size_t l = 0; l < kc; ++l) {
    const T* a = a_panel + l * kMr;
    const T* b = b_panel + l * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const T aval = a[i];
      T* row = acc + i * kNr;
      for (std::size_t j = 0; j < kNr; ++j) {
        row[j] += aval * b[j];
      }
    }
  }
}

/// Reference triple loop (also the small-product fast path): transposition
/// read through indexing, no operand copies, no branches in the k loop.
template <bool TransposeA, bool TransposeB, bool ConjA, typename T>
void gemm_reference(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                    T alpha, T beta, std::size_t m, std::size_t n,
                    std::size_t k) {
  for (std::size_t i = 0; i < m; ++i) {
    T* crow = c.row(i);
    if (beta == T{}) {
      std::fill(crow, crow + n, T{});
    } else if (beta != T{1.0}) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::size_t l = 0; l < k; ++l) {
      const T aval =
          alpha * (TransposeA ? maybe_conj<ConjA>(a(l, i)) : a(i, l));
      if constexpr (TransposeB) {
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aval * b(j, l);
        }
      } else {
        const T* brow = b.row(l);
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aval * brow[j];
        }
      }
    }
  }
}

template <typename T>
void gemm_reference_dispatch(const Matrix<T>& a, const Matrix<T>& b,
                             Matrix<T>& c, T alpha, T beta, bool transpose_a,
                             bool transpose_b, std::size_t m, std::size_t n,
                             std::size_t k) {
  if (transpose_a) {
    if (transpose_b) {
      gemm_reference<true, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_reference<true, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  } else {
    if (transpose_b) {
      gemm_reference<false, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_reference<false, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  }
}

/// Shape checks shared by every entry point; sizes C when allowed.
template <typename T>
void gemm_prepare(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                  T beta, bool transpose_a, bool transpose_b, std::size_t& m,
                  std::size_t& n, std::size_t& k) {
  m = transpose_a ? a.cols() : a.rows();
  k = transpose_a ? a.rows() : a.cols();
  const std::size_t b_rows = transpose_b ? b.cols() : b.rows();
  n = transpose_b ? b.rows() : b.cols();
  NDFT_REQUIRE(b_rows == k, "gemm: inner dimensions must agree");
  if (c.rows() != m || c.cols() != n) {
    NDFT_REQUIRE(beta == T{}, "gemm: beta != 0 requires a sized C");
    c = Matrix<T>(m, n);
  }
}

template <bool TransposeA, bool TransposeB, bool ConjA, typename T>
void gemm_blocked(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                  T alpha, T beta, std::size_t m, std::size_t n,
                  std::size_t k) {
  std::vector<T> b_pack(kKc * std::min(kNc, round_up(n, kNr)));
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const bool first_k_block = (pc == 0);
      pack_b_block<TransposeB>(b, pc, jc, kc, nc, b_pack.data());

      const std::size_t row_blocks = ceil_div(m, kMc);
      parallel_for(0, row_blocks, 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<T> a_pack(kMc * kc);
        T acc[kMr * kNr];
        for (std::size_t block = lo; block < hi; ++block) {
          const std::size_t ic = block * kMc;
          const std::size_t mc = std::min(kMc, m - ic);
          pack_a_block<TransposeA, ConjA>(a, ic, pc, mc, kc, a_pack.data());
          for (std::size_t jp = 0; jp < nc; jp += kNr) {
            const std::size_t cols = std::min(kNr, nc - jp);
            const T* b_panel = b_pack.data() + (jp / kNr) * kNr * kc;
            for (std::size_t ip = 0; ip < mc; ip += kMr) {
              const std::size_t rows = std::min(kMr, mc - ip);
              const T* a_panel = a_pack.data() + (ip / kMr) * kMr * kc;
              std::fill(acc, acc + kMr * kNr, T{});
              micro_kernel(kc, a_panel, b_panel, acc);
              for (std::size_t i = 0; i < rows; ++i) {
                T* crow = c.row(ic + ip + i) + jc + jp;
                const T* arow = acc + i * kNr;
                if (first_k_block) {
                  if (beta == T{}) {
                    for (std::size_t j = 0; j < cols; ++j) {
                      crow[j] = alpha * arow[j];
                    }
                  } else {
                    for (std::size_t j = 0; j < cols; ++j) {
                      crow[j] = beta * crow[j] + alpha * arow[j];
                    }
                  }
                } else {
                  for (std::size_t j = 0; j < cols; ++j) {
                    crow[j] += alpha * arow[j];
                  }
                }
              }
            }
          }
        }
      });
    }
  }
}

/// 3M split-complex product: op(A) op(B) through three real GEMMs on the
/// blocked real kernel (Re, Im and Re+Im products), recombined with the
/// complex alpha/beta afterwards. The conjugate transpose is absorbed by
/// negating Im(A) before the transposed real products. Every stage is
/// either the deterministic blocked kernel or a disjoint-row pool loop,
/// so the result is bitwise identical for any thread count.
void gemm_3m(const ComplexMatrix& a, const ComplexMatrix& b,
             ComplexMatrix& c, Complex alpha, Complex beta,
             bool conj_transpose_a, bool transpose_b, std::size_t m,
             std::size_t n) {
  RealMatrix a_re(a.rows(), a.cols());
  RealMatrix a_im(a.rows(), a.cols());
  RealMatrix a_sum(a.rows(), a.cols());
  const double im_sign = conj_transpose_a ? -1.0 : 1.0;
  parallel_for(0, a.rows(), parallel_grain(a.cols()),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   const Complex* src = a.row(r);
                   for (std::size_t j = 0; j < a.cols(); ++j) {
                     a_re(r, j) = src[j].real();
                     a_im(r, j) = im_sign * src[j].imag();
                     a_sum(r, j) = a_re(r, j) + a_im(r, j);
                   }
                 }
               });
  RealMatrix b_re(b.rows(), b.cols());
  RealMatrix b_im(b.rows(), b.cols());
  RealMatrix b_sum(b.rows(), b.cols());
  parallel_for(0, b.rows(), parallel_grain(b.cols()),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   const Complex* src = b.row(r);
                   for (std::size_t j = 0; j < b.cols(); ++j) {
                     b_re(r, j) = src[j].real();
                     b_im(r, j) = src[j].imag();
                     b_sum(r, j) = b_re(r, j) + b_im(r, j);
                   }
                 }
               });
  RealMatrix p1;  // Re x Re
  RealMatrix p2;  // Im x Im
  RealMatrix p3;  // (Re+Im) x (Re+Im)
  gemm(a_re, b_re, p1, 1.0, 0.0, conj_transpose_a, transpose_b);
  gemm(a_im, b_im, p2, 1.0, 0.0, conj_transpose_a, transpose_b);
  gemm(a_sum, b_sum, p3, 1.0, 0.0, conj_transpose_a, transpose_b);
  parallel_for(0, m, parallel_grain(n),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   Complex* crow = c.row(i);
                   for (std::size_t j = 0; j < n; ++j) {
                     const Complex prod{p1(i, j) - p2(i, j),
                                        p3(i, j) - p1(i, j) - p2(i, j)};
                     crow[j] = (beta == Complex{})
                                   ? alpha * prod
                                   : beta * crow[j] + alpha * prod;
                   }
                 }
               });
}

template <typename T>
void gemm_impl(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c, T alpha,
               T beta, bool transpose_a, bool transpose_b) {
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, transpose_a, transpose_b, m, n, k);
  if (m * n * k <= kSmallGemmVolume) {
    gemm_reference_dispatch(a, b, c, alpha, beta, transpose_a, transpose_b,
                            m, n, k);
    return;
  }
  if constexpr (std::is_same_v<T, Complex>) {
    // Large complex products ride the real microkernel via the 3M split
    // instead of the generic scalar complex micro-tile.
    gemm_3m(a, b, c, alpha, beta, transpose_a, transpose_b, m, n);
  } else {
    if (transpose_a) {
      if (transpose_b) {
        gemm_blocked<true, true, true>(a, b, c, alpha, beta, m, n, k);
      } else {
        gemm_blocked<true, false, true>(a, b, c, alpha, beta, m, n, k);
      }
    } else {
      if (transpose_b) {
        gemm_blocked<false, true, true>(a, b, c, alpha, beta, m, n, k);
      } else {
        gemm_blocked<false, false, true>(a, b, c, alpha, beta, m, n, k);
      }
    }
  }
}

}  // namespace

void gemm(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
          double alpha, double beta, bool transpose_a, bool transpose_b,
          OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kGemm, "gemm");
  {
    const std::size_t m = transpose_a ? a.cols() : a.rows();
    const std::size_t k = transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    trace.set_dims(m, n, k);
    trace.set_work(2ull * m * n * k,
                   (m * k + k * n + 2 * m * n) * sizeof(double));
    trace.set_io((m * k + k * n) * sizeof(double), m * n * sizeof(double));
  }
  gemm_impl(a, b, c, alpha, beta, transpose_a, transpose_b);
  if (count != nullptr) {
    const std::size_t m = transpose_a ? a.cols() : a.rows();
    const std::size_t k = transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    count->add(2ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(double));
  }
}

void gemm(const ComplexMatrix& a, const ComplexMatrix& b, ComplexMatrix& c,
          Complex alpha, Complex beta, bool conj_transpose_a,
          bool transpose_b, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kGemm, "gemm.c");
  {
    const std::size_t m = conj_transpose_a ? a.cols() : a.rows();
    const std::size_t k = conj_transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    trace.set_dims(m, n, k);
    trace.set_work(8ull * m * n * k,
                   (m * k + k * n + 2 * m * n) * sizeof(Complex));
    trace.set_io((m * k + k * n) * sizeof(Complex), m * n * sizeof(Complex));
  }
  gemm_impl(a, b, c, alpha, beta, conj_transpose_a, transpose_b);
  if (count != nullptr) {
    const std::size_t m = conj_transpose_a ? a.cols() : a.rows();
    const std::size_t k = conj_transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    count->add(8ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(Complex));
  }
}

void gemm_naive(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
                double alpha, double beta, bool transpose_a,
                bool transpose_b, OpCount* count) {
  LinalgTimerScope timer;
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, transpose_a, transpose_b, m, n, k);
  gemm_reference_dispatch(a, b, c, alpha, beta, transpose_a, transpose_b, m,
                          n, k);
  if (count != nullptr) {
    count->add(2ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(double));
  }
}

void gemm_naive(const ComplexMatrix& a, const ComplexMatrix& b,
                ComplexMatrix& c, Complex alpha, Complex beta,
                bool conj_transpose_a, bool transpose_b, OpCount* count) {
  LinalgTimerScope timer;
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, conj_transpose_a, transpose_b, m, n, k);
  gemm_reference_dispatch(a, b, c, alpha, beta, conj_transpose_a,
                          transpose_b, m, n, k);
  if (count != nullptr) {
    count->add(8ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(Complex));
  }
}

EigenResult syevd(const RealMatrix& symmetric, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kSyevd, "syevd");
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syevd: matrix must be square");
  const std::size_t n = symmetric.rows();
  trace.set_dims(n, n, 0);
  {
    const SyevdCost cost = syevd_cost(n);
    trace.set_work(cost.flops, cost.bytes);
  }
  trace.set_io(n * n * sizeof(double), (n * n + n) * sizeof(double));
  EigenResult result;
  if (n == 0) return result;

  RealMatrix reduced = symmetric;
  std::vector<double> d;
  std::vector<double> e;
  std::vector<double> tau;
  blocked_tridiagonalize(reduced, d, e, tau);

  // Eigenvectors of the tridiagonal matrix, accumulated transposed so the
  // QL rotation sweeps touch contiguous rows.
  RealMatrix zt(n, n);
  for (std::size_t i = 0; i < n; ++i) zt(i, i) = 1.0;
  tridiag_ql(d, e, zt);

  RealMatrix z(n, n);
  parallel_for(0, n, eig_grain(n),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   double* row = z.row(r);
                   for (std::size_t c = 0; c < n; ++c) row[c] = zt(c, r);
                 }
               });
  apply_q_blocked(reduced, tau, z);

  sort_eigenpairs(d, z, result);
  count_syevd(n, count);
  return result;
}

EigenResult syevd_naive(const RealMatrix& symmetric, OpCount* count) {
  LinalgTimerScope timer;
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syevd_naive: matrix must be square");
  const std::size_t n = symmetric.rows();
  EigenResult result;
  result.eigenvectors = symmetric;  // tred2 works in place
  std::vector<double> d;
  std::vector<double> e;
  tred2(result.eigenvectors, d, e);
  tql2(d, e, result.eigenvectors);
  sort_eigenpairs(d, result.eigenvectors, result);
  count_syevd(n, count);
  return result;
}

namespace {

/// Full-spectrum answer cut down to the lowest m pairs: the fallback the
/// partial solver degrades to (and the fast path near the full spectrum).
EigenResult partial_from_full(const RealMatrix& symmetric, std::size_t m,
                              OpCount* count) {
  const std::size_t n = symmetric.rows();
  EigenResult full = syevd(symmetric, count);
  if (m == n) return full;
  EigenResult result;
  result.eigenvalues.assign(
      full.eigenvalues.begin(),
      full.eigenvalues.begin() + static_cast<std::ptrdiff_t>(m));
  result.eigenvectors = RealMatrix(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = full.eigenvectors.row(i);
    std::copy(src, src + m, result.eigenvectors.row(i));
  }
  return result;
}

}  // namespace

EigenResult syevd_partial(const RealMatrix& symmetric, std::size_t m,
                          OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kSyevd, "syevd.partial");
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syevd_partial: matrix must be square");
  const std::size_t n = symmetric.rows();
  NDFT_REQUIRE(m >= 1 && m <= n,
               "syevd_partial: eigenpair count must be in [1, n]");
  trace.set_dims(n, m, 0);
  {
    const SyevdCost cost = syevd_partial_cost(n, m);
    trace.set_work(cost.flops, cost.bytes);
  }
  trace.set_io(n * n * sizeof(double), (n * m + m) * sizeof(double));

  if (fault_fires("solver.syevd_partial")) {
    // Injected solver fault: degrade to the always-available full
    // solver instead of failing the job.
    note_degradation("syevd_partial:full_fallback");
    return partial_from_full(symmetric, m, count);
  }

  if (2 * m > n) {
    // The QL/back-transform savings vanish near the full spectrum; the
    // full blocked solver is both faster and more robust there. Nested
    // timer/trace entries fold into this one.
    return partial_from_full(symmetric, m, count);
  }

  try {
    RealMatrix reduced = symmetric;
    std::vector<double> d;
    std::vector<double> e;
    std::vector<double> tau;
    blocked_tridiagonalize(reduced, d, e, tau);

    EigenResult result;
    RealMatrix vt;  // tridiagonal eigenvectors, one per row
    tridiag_lowest(d, e, m, result.eigenvalues, vt);

    // Assemble the n x m eigenvector block and push it through the same
    // compact-WY panels as the full solver — O(n^2 m) instead of O(n^3).
    RealMatrix z(n, m);
    parallel_for(0, n, eig_grain(m),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t r = lo; r < hi; ++r) {
                     double* row = z.row(r);
                     for (std::size_t c = 0; c < m; ++c) row[c] = vt(c, r);
                   }
                 });
    apply_q_blocked(reduced, tau, z);
    result.eigenvectors = std::move(z);

    if (count != nullptr) {
      const SyevdCost cost = syevd_partial_cost(n, m);
      count->add(cost.flops, cost.bytes);
    }
    return result;
  } catch (const NdftError&) {
    // The partial path rejected the problem (e.g. a degenerate cluster
    // its inverse iteration cannot split): same answer from the full
    // solver, recorded as a degradation.
    note_degradation("syevd_partial:full_fallback");
    return partial_from_full(symmetric, m, count);
  }
}

SyevdCost syevd_partial_cost(std::size_t n, std::size_t m) noexcept {
  if (2 * m > n) return syevd_cost(n);
  const auto nn = static_cast<Flops>(n) * n;
  // Reduction (~4/3 n^3), WY back-transform (~2 n^2 m), bisection +
  // inverse iteration (~60 Sturm sweeps and a few O(n) solves per pair).
  return {nn * n * 4 / 3 + 2 * nn * m + 400ull * n * m,
          (2 * nn + 2 * static_cast<Bytes>(n) * m) * sizeof(double)};
}

HermitianEigenResult heev(const ComplexMatrix& hermitian, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kSyevd, "heev");
  NDFT_REQUIRE(hermitian.rows() == hermitian.cols(),
               "heev: matrix must be square");
  const std::size_t n = hermitian.rows();
  // Dims and costs follow the 2n x 2n real embedding the solve actually
  // runs: the trace consumers' SYEVD reuse model keys its arithmetic
  // intensity off dims[0], which must name the executed solve size.
  trace.set_dims(2 * n, 2 * n, 0);
  {
    const SyevdCost cost = syevd_cost(2 * n);
    trace.set_work(cost.flops, cost.bytes);
  }
  trace.set_io(n * n * sizeof(Complex), (n * n + n) * sizeof(Complex));
  // Real embedding M = [[A, -B], [B, A]] for H = A + iB: the Hermitian
  // solve rides the blocked real path.
  RealMatrix embedded(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const Complex h = hermitian(i, j);
      embedded(i, j) = h.real();
      embedded(i + n, j + n) = h.real();
      embedded(i, j + n) = -h.imag();
      embedded(i + n, j) = h.imag();
    }
  }
  EigenResult real_result = syevd(embedded, count);

  // Each eigenvalue of H appears twice; fold pairs and rebuild complex
  // eigenvectors v = x + i y, re-orthonormalising inside degenerate groups.
  HermitianEigenResult result;
  result.eigenvalues.reserve(n);
  result.eigenvectors = ComplexMatrix(n, n);
  std::vector<std::vector<Complex>> kept;
  kept.reserve(n);
  for (std::size_t j = 0; j < 2 * n && kept.size() < n; ++j) {
    std::vector<Complex> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = Complex{real_result.eigenvectors(i, j),
                     real_result.eigenvectors(i + n, j)};
    }
    // Project out already-kept vectors (modified Gram-Schmidt).
    for (const auto& u : kept) {
      Complex overlap{};
      for (std::size_t i = 0; i < n; ++i) overlap += std::conj(u[i]) * v[i];
      for (std::size_t i = 0; i < n; ++i) v[i] -= overlap * u[i];
    }
    double norm = 0.0;
    for (const Complex& value : v) norm += std::norm(value);
    norm = std::sqrt(norm);
    if (norm < 1e-8) {
      continue;  // duplicate of an already-kept pair partner
    }
    for (Complex& value : v) value /= norm;
    result.eigenvalues.push_back(real_result.eigenvalues[j]);
    kept.push_back(std::move(v));
  }
  NDFT_REQUIRE(kept.size() == n, "heev: failed to fold embedded eigenpairs");
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = kept[j][i];
    }
  }
  return result;
}

SyevdCost syevd_cost(std::size_t n) noexcept {
  const auto cubic = static_cast<Flops>(n) * n * n;
  return {cubic * 22 / 3, 3ull * n * n * sizeof(double)};
}

void linalg_timer_reset() noexcept { tl_linalg_ms = 0.0; }

double linalg_timer_ms() noexcept { return tl_linalg_ms; }

void mirror_upper(RealMatrix& symmetric) {
  const std::size_t n = symmetric.rows();
  NDFT_REQUIRE(symmetric.cols() == n, "mirror_upper: matrix must be square");
  parallel_for(0, n, parallel_grain(n), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        symmetric(i, j) = symmetric(j, i);
      }
    }
  });
}

double eigen_residual(const RealMatrix& symmetric,
                      const EigenResult& result) {
  const std::size_t n = symmetric.rows();
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double value = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        value += symmetric(i, k) * result.eigenvectors(k, j);
      }
      value -= result.eigenvalues[j] * result.eigenvectors(i, j);
      sum += value * value;
    }
  }
  return std::sqrt(sum);
}

}  // namespace ndft::dft
