#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/str_util.hpp"

namespace ndft::sim {

void StatSet::add(const std::string& name, double delta) {
  values_[name] += delta;
}

void StatSet::set(const std::string& name, double value) {
  values_[name] = value;
}

double StatSet::get(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool StatSet::contains(const std::string& name) const {
  return values_.count(name) != 0;
}

void StatSet::merge_prefixed(const std::string& prefix, const StatSet& other) {
  for (const auto& [name, value] : other.snapshot()) {
    values_[prefix + "." + name] += value;
  }
}

std::string StatSet::render() const {
  std::string out;
  for (const auto& [name, value] : values_) {
    out += strformat("%s = %.6g\n", name.c_str(), value);
  }
  return out;
}

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : bucket_width_(bucket_width), buckets_(bucket_count + 1, 0) {
  NDFT_REQUIRE(bucket_width > 0.0, "bucket width must be positive");
  NDFT_REQUIRE(bucket_count > 0, "need at least one bucket");
}

void Histogram::record(double value) {
  NDFT_ASSERT(value >= 0.0);
  const auto index = static_cast<std::size_t>(value / bucket_width_);
  buckets_[std::min(index, buckets_.size() - 1)]++;
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  NDFT_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Report the upper edge of the bucket; overflow reports the max seen.
      if (i + 1 == buckets_.size()) return max_;
      return static_cast<double>(i + 1) * bucket_width_;
    }
  }
  return max_;
}

}  // namespace ndft::sim
