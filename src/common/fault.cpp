#include "common/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/str_util.hpp"

namespace ndft {
namespace {

// The site catalog. Order is stable (the fault-sweep smoke iterates it);
// names are part of the spec grammar, so renaming one is a breaking
// change for saved NDFT_FAULTS strings.
const std::vector<FaultSite>& catalog() {
  static const std::vector<FaultSite> sites = {
      {"engine.alloc", "allocation pressure at job setup", FaultClass::kResource},
      {"scf.alloc", "allocation pressure at an SCF iteration boundary",
       FaultClass::kResource},
      {"bands.alloc", "allocation pressure at a band-structure k batch",
       FaultClass::kResource},
      {"solver.syevd_partial",
       "partial eigensolver non-convergence (degrades to the full solver)",
       FaultClass::kSolver},
      {"solver.davidson",
       "Davidson non-convergence (degrades to a dense partial solve)",
       FaultClass::kSolver},
      {"trace.recorder",
       "kernel trace recorder failure (degrades to an untraced run)",
       FaultClass::kTrace},
      {"sim.mem", "simulated NDP/DRAM fault during an event batch",
       FaultClass::kDevice},
      {"sim.port",
       "message dropped on a fabric connection (recovered by a delayed "
       "retransmission inside the simulation)",
       FaultClass::kDevice},
      {"net.accept",
       "accepted connection dropped at the service boundary",
       FaultClass::kDevice},
  };
  return sites;
}

const FaultSite* find_site(const std::string& name) noexcept {
  for (const FaultSite& site : catalog()) {
    if (name == site.name) return &site;
  }
  return nullptr;
}

/// splitmix64: the standard 64-bit finalizer — a bijective mix, so
/// distinct (seed, site, sequence) triples decorrelate fully.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(const char* name) noexcept {
  // FNV-1a; site names are short and static.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// One armed site's mutable state (sequence/fire counters).
struct ArmedSite {
  bool configured = false;  ///< has its own rule (wildcard fills the rest)
  double probability = 0.0;
  std::uint64_t max_fires = 0;
  std::uint64_t sequence = 0;
  std::uint64_t fired = 0;
};

struct FaultState {
  std::uint64_t seed = 0;
  std::vector<ArmedSite> sites;  ///< parallel to catalog()
};

std::mutex g_mutex;            // guards g_state mutations and rolls
FaultState g_state;            // armed rules + counters (under g_mutex)

double trim_number(const std::string& text, const char* what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw NdftError(strformat("fault spec: bad %s '%s'", what, text.c_str()));
  }
  if (pos != text.size()) {
    throw NdftError(strformat("fault spec: bad %s '%s'", what, text.c_str()));
  }
  return value;
}

}  // namespace

const char* to_string(FaultClass cls) noexcept {
  switch (cls) {
    case FaultClass::kResource: return "resource";
    case FaultClass::kDevice: return "device";
    case FaultClass::kSolver: return "solver";
    case FaultClass::kTrace: return "trace";
  }
  return "?";
}

FaultInjected::FaultInjected(std::string site, FaultClass cls,
                             std::uint64_t sequence)
    : NdftError(strformat("injected %s fault at %s (draw %llu)",
                          to_string(cls), site.c_str(),
                          static_cast<unsigned long long>(sequence))),
      site_(std::move(site)),
      cls_(cls),
      sequence_(sequence) {}

const std::vector<FaultSite>& fault_sites() { return catalog(); }

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find_first_of(";,", start);
    if (end == std::string::npos) end = text.size();
    std::string entry = text.substr(start, end - start);
    start = end + 1;
    // Trim surrounding whitespace so "a=1; b=1" parses.
    const std::size_t first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) {
      if (start > text.size()) break;
      continue;  // empty entry (trailing separator)
    }
    entry = entry.substr(first, entry.find_last_not_of(" \t") - first + 1);

    const std::size_t eq = entry.find('=');
    NDFT_REQUIRE(eq != std::string::npos && eq != 0,
                 ("fault spec: entry is not name=value: " + entry).c_str());
    const std::string name = entry.substr(0, eq);
    std::string value = entry.substr(eq + 1);

    if (name == "seed") {
      const double seed = trim_number(value, "seed");
      NDFT_REQUIRE(seed >= 0.0, "fault spec: seed must be non-negative");
      spec.seed = static_cast<std::uint64_t>(seed);
      continue;
    }
    FaultRule rule;
    rule.site = name;
    if (name != "*" && find_site(name) == nullptr) {
      throw NdftError(strformat("fault spec: unknown site '%s'",
                                name.c_str()));
    }
    const std::size_t at = value.find('@');
    if (at != std::string::npos) {
      const double fires = trim_number(value.substr(at + 1), "fire count");
      NDFT_REQUIRE(fires >= 0.0, "fault spec: fire count must be >= 0");
      rule.max_fires = static_cast<std::uint64_t>(fires);
      value = value.substr(0, at);
    }
    rule.probability = trim_number(value, "probability");
    NDFT_REQUIRE(rule.probability >= 0.0 && rule.probability <= 1.0,
                 "fault spec: probability must be in [0, 1]");
    spec.rules.push_back(std::move(rule));
    if (start > text.size()) break;
  }
  return spec;
}

void fault_install(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_state = FaultState{};
  g_state.seed = spec.seed;
  g_state.sites.assign(catalog().size(), ArmedSite{});
  bool any = false;
  bool has_wildcard = false;
  FaultRule wildcard;
  for (const FaultRule& rule : spec.rules) {
    if (rule.site == "*") {
      has_wildcard = true;
      wildcard = rule;
      any = true;
      continue;
    }
    for (std::size_t i = 0; i < catalog().size(); ++i) {
      if (rule.site == catalog()[i].name) {
        g_state.sites[i].configured = true;
        g_state.sites[i].probability = rule.probability;
        g_state.sites[i].max_fires = rule.max_fires;
        any = true;
        break;
      }
    }
  }
  if (has_wildcard) {
    // Sites without their own rule inherit the wildcard; explicit rules
    // (including probability 0) win.
    for (ArmedSite& site : g_state.sites) {
      if (!site.configured) {
        site.probability = wildcard.probability;
        site.max_fires = wildcard.max_fires;
      }
    }
  }
  detail::g_fault_enabled.store(any, std::memory_order_relaxed);
}

void fault_clear() noexcept {
  std::lock_guard<std::mutex> lock(g_mutex);
  detail::g_fault_enabled.store(false, std::memory_order_relaxed);
  g_state = FaultState{};
}

bool fault_enabled() noexcept {
  return detail::g_fault_enabled.load(std::memory_order_relaxed);
}

namespace detail {

std::atomic<bool> g_fault_enabled{false};

bool fault_roll(const char* site) noexcept {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_state.sites.empty()) return false;  // cleared concurrently
  ArmedSite* armed = nullptr;
  for (std::size_t i = 0; i < catalog().size(); ++i) {
    if (std::strcmp(site, catalog()[i].name) == 0) {
      armed = &g_state.sites[i];
      break;
    }
  }
  if (armed == nullptr) return false;  // unregistered site: never fires
  const std::uint64_t sequence = armed->sequence++;
  if (armed->probability <= 0.0) return false;
  if (armed->max_fires != 0 && armed->fired >= armed->max_fires) {
    return false;
  }
  // Deterministic draw keyed by (seed, site, sequence): 53 uniform bits
  // mapped to [0, 1), compared against the rule's probability.
  const std::uint64_t key =
      mix64(g_state.seed ^ hash_name(site) ^
            (sequence * 0x9e3779b97f4a7c15ull));
  const double u =
      static_cast<double>(key >> 11) * 0x1.0p-53;
  if (u >= armed->probability) return false;
  ++armed->fired;
  return true;
}

}  // namespace detail

void fault_point(const char* site) {
  if (!fault_fires(site)) return;
  const FaultSite* entry = find_site(site);
  const FaultClass cls =
      entry != nullptr ? entry->cls : FaultClass::kResource;
  // The sequence that fired was the previous draw.
  std::uint64_t sequence = 0;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    for (std::size_t i = 0; i < catalog().size(); ++i) {
      if (std::strcmp(site, catalog()[i].name) == 0 &&
          i < g_state.sites.size()) {
        sequence = g_state.sites[i].sequence - 1;
        break;
      }
    }
  }
  throw FaultInjected(site, cls, sequence);
}

// ------------------------------------------------------- degradation notes

namespace {
thread_local std::vector<std::string>* t_degradation_sink = nullptr;
}  // namespace

DegradationScope::DegradationScope() : previous_(t_degradation_sink) {
  t_degradation_sink = &notes_;
}

DegradationScope::~DegradationScope() { t_degradation_sink = previous_; }

void note_degradation(std::string note) {
  if (t_degradation_sink != nullptr) {
    t_degradation_sink->push_back(std::move(note));
  }
}

}  // namespace ndft
