#include "ndp/spm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ndft::ndp {

namespace {

sim::LinkConfig spm_port_link(const SpmConfig& config) {
  sim::LinkConfig link;
  link.latency_ps = config.access_latency_ps;
  link.gbps = config.bandwidth_gbps;
  link.capacity = config.port_queue;
  link.delivery = sim::Delivery::kStoreForward;
  return link;
}

}  // namespace

Spm::Spm(std::string name, sim::EventQueue& queue, const SpmConfig& config)
    : SimObject(std::move(name), queue),
      config_(config),
      port_(queue, spm_port_link(config), &stats()),
      out_(port_),
      sender_(queue, out_, &stats()) {
  NDFT_REQUIRE(config.capacity > 0, "SPM capacity must be positive");
  regions_.push_back(Region{0, config.capacity, false});
  port_.on_receive([this] {
    while (!port_.empty()) {
      Access access = port_.pop();
      if (access.done) access.done(now());
    }
  });
}

std::optional<Addr> Spm::alloc(Bytes size) {
  NDFT_REQUIRE(size > 0, "cannot allocate zero bytes");
  // Align to 64 B so shared blocks are line-aligned.
  const Bytes aligned = (size + 63) / 64 * 64;
  for (auto it = regions_.begin(); it != regions_.end(); ++it) {
    if (it->allocated || it->size < aligned) {
      continue;
    }
    const Addr offset = it->offset;
    if (it->size > aligned) {
      // Split: the tail remains free.
      regions_.insert(std::next(it),
                      Region{offset + aligned, it->size - aligned, false});
      it->size = aligned;
    }
    it->allocated = true;
    used_ += aligned;
    stats().add("allocs");
    return offset;
  }
  stats().add("alloc_failures");
  return std::nullopt;
}

void Spm::free(Addr offset) {
  for (auto it = regions_.begin(); it != regions_.end(); ++it) {
    if (it->offset != offset || !it->allocated) {
      continue;
    }
    it->allocated = false;
    used_ -= it->size;
    // Merge with free neighbours.
    if (it != regions_.begin()) {
      auto prev = std::prev(it);
      if (!prev->allocated) {
        prev->size += it->size;
        regions_.erase(it);
        it = prev;
      }
    }
    auto next = std::next(it);
    if (next != regions_.end() && !next->allocated) {
      it->size += next->size;
      regions_.erase(next);
    }
    return;
  }
  throw NdftError("Spm::free: unknown or already-free offset");
}

void Spm::timed_access(Bytes size, bool is_write,
                       std::function<void(TimePs)> done) {
  stats().add(is_write ? "write_bytes" : "read_bytes",
              static_cast<double>(size));
  // The connection reproduces the previous port arithmetic exactly:
  // start = max(now, wire_free), completion at start + latency +
  // serialization, wire busy for the serialization time.
  sender_.push(Access{std::move(done)}, std::max<Bytes>(size, 1));
}

void Spm::read(Bytes size, std::function<void(TimePs)> done) {
  timed_access(size, /*is_write=*/false, std::move(done));
}

void Spm::write(Bytes size, std::function<void(TimePs)> done) {
  timed_access(size, /*is_write=*/true, std::move(done));
}

}  // namespace ndft::ndp
