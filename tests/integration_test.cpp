// End-to-end integration tests: the four execution modes of NdftSystem on
// small paper systems, report structure, determinism, and the qualitative
// relations the paper's evaluation asserts.

#include <gtest/gtest.h>

#include "core/ndft_system.hpp"

namespace ndft::core {
namespace {

/// Shared fixture with cheaper sampling so integration tests stay fast.
class NdftSystemFixture : public ::testing::Test {
 protected:
  static SystemConfig fast_config() {
    SystemConfig config = SystemConfig::paper_default();
    config.sampled_ops_per_kernel = 30000;
    config.min_ops_per_core = 200;
    return config;
  }

  NdftSystemFixture() : system(fast_config()) {}

  NdftSystem system;
};

TEST_F(NdftSystemFixture, CpuReportHasAllKernels) {
  const RunReport report = system.run(16, ExecMode::kCpuBaseline);
  EXPECT_EQ(report.mode, ExecMode::kCpuBaseline);
  EXPECT_EQ(report.kernels.size(), 8u);
  for (const KernelTime& k : report.kernels) {
    EXPECT_GT(k.time_ps, 0u) << k.name;
    EXPECT_EQ(k.device, DeviceKind::kCpu);
  }
  EXPECT_EQ(report.sched_overhead_ps, 0u);
  EXPECT_GT(report.total_ps(), 0u);
}

TEST_F(NdftSystemFixture, GpuReportUsesGpuDevice) {
  const RunReport report = system.run(16, ExecMode::kGpuBaseline);
  for (const KernelTime& k : report.kernels) {
    EXPECT_EQ(k.device, DeviceKind::kGpu);
    EXPECT_GT(k.time_ps, 0u);
  }
}

TEST_F(NdftSystemFixture, NdftPlacementFollowsPlan) {
  const dft::Workload w = system.workload_for(64);
  const runtime::ExecutionPlan plan = system.plan(w);
  const RunReport report = system.run(w, ExecMode::kNdft);
  ASSERT_EQ(report.kernels.size(), plan.placements.size());
  for (std::size_t i = 0; i < report.kernels.size(); ++i) {
    EXPECT_EQ(report.kernels[i].device, plan.placements[i].device)
        << report.kernels[i].name;
  }
  EXPECT_GT(report.sched_overhead_ps, 0u);
}

TEST_F(NdftSystemFixture, NdpOnlyRunsEverythingOnNdp) {
  const RunReport report = system.run(16, ExecMode::kNdpOnly);
  for (const KernelTime& k : report.kernels) {
    EXPECT_EQ(k.device, DeviceKind::kNdp);
  }
  EXPECT_GT(report.mesh_bytes, 0u);  // the Alltoall crossed the mesh
}

TEST_F(NdftSystemFixture, RunsAreDeterministic) {
  const dft::Workload w = system.workload_for(16);
  const RunReport a = system.run(w, ExecMode::kNdft);
  const RunReport b = system.run(w, ExecMode::kNdft);
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (std::size_t i = 0; i < a.kernels.size(); ++i) {
    EXPECT_EQ(a.kernels[i].time_ps, b.kernels[i].time_ps);
  }
  EXPECT_EQ(a.total_ps(), b.total_ps());
}

TEST_F(NdftSystemFixture, NdftBeatsCpuAtScale) {
  // The headline claim, at a reduced size for test speed: NDFT must be
  // clearly faster than the CPU baseline from Si_64 up.
  const dft::Workload w = system.workload_for(64);
  const RunReport cpu = system.run(w, ExecMode::kCpuBaseline);
  const RunReport ndft = system.run(w, ExecMode::kNdft);
  EXPECT_GT(speedup(cpu, ndft), 1.5);
}

TEST(NdftScalingTest, NdftAdvantageGrowsWithSystemSize) {
  // Fig. 8's shape: the speedup over CPU grows with the physical system.
  // The curve is nearly flat below Si_64 (caches still carry the CPU), so
  // compare across a wide gap where the growth is unambiguous. Full
  // sampling is needed here: coarse windows blur the small-size cache
  // behaviour this test is about.
  const NdftSystem system;  // paper-default sampling
  const RunReport cpu_small = system.run(16, ExecMode::kCpuBaseline);
  const RunReport ndft_small = system.run(16, ExecMode::kNdft);
  const RunReport cpu_big = system.run(256, ExecMode::kCpuBaseline);
  const RunReport ndft_big = system.run(256, ExecMode::kNdft);
  EXPECT_GT(speedup(cpu_big, ndft_big), speedup(cpu_small, ndft_small));
}

TEST_F(NdftSystemFixture, MemoryKernelsAccelerateMost) {
  const dft::Workload w = system.workload_for(64);
  const RunReport cpu = system.run(w, ExecMode::kCpuBaseline);
  const RunReport ndft = system.run(w, ExecMode::kNdft);
  const double fft_speedup =
      static_cast<double>(cpu.time_of(KernelClass::kFft)) /
      static_cast<double>(ndft.time_of(KernelClass::kFft));
  const double gemm_speedup =
      static_cast<double>(cpu.time_of(KernelClass::kGemm)) /
      static_cast<double>(ndft.time_of(KernelClass::kGemm));
  EXPECT_GT(fft_speedup, 3.0);
  EXPECT_GT(fft_speedup, gemm_speedup);  // Fig. 7's central contrast
}

TEST_F(NdftSystemFixture, SchedulingOverheadStaysSmall) {
  const RunReport ndft = system.run(64, ExecMode::kNdft);
  const double fraction =
      static_cast<double>(ndft.sched_overhead_ps) /
      static_cast<double>(ndft.total_ps());
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, 0.12);  // paper: 3.8-4.9 %
}

TEST_F(NdftSystemFixture, FootprintsFollowTableI) {
  const dft::Workload w = system.workload_for(64);
  const RunReport cpu = system.run(w, ExecMode::kCpuBaseline);
  const RunReport ndp = system.run(w, ExecMode::kNdpOnly);
  const RunReport ndft = system.run(w, ExecMode::kNdft);
  EXPECT_GT(ndp.pseudo.total, cpu.pseudo.total);  // replication penalty
  EXPECT_LT(ndft.pseudo.total, ndp.pseudo.total); // shared blocks shrink it
  const double vs_cpu = static_cast<double>(ndft.pseudo.total) /
                        static_cast<double>(cpu.pseudo.total);
  EXPECT_NEAR(vs_cpu, 1.08, 0.1);  // "close to CPU execution (1.08x)"
}

TEST_F(NdftSystemFixture, SharingTrafficOnlyUnderCoDesign) {
  const dft::Workload w = system.workload_for(64);
  const RunReport ndp = system.run(w, ExecMode::kNdpOnly);
  const RunReport ndft = system.run(w, ExecMode::kNdft);
  EXPECT_EQ(ndp.sharing_bytes, 0u);
  EXPECT_GT(ndft.sharing_bytes, 0u);
}

TEST_F(NdftSystemFixture, ReportRendersReadably) {
  const RunReport report = system.run(16, ExecMode::kNdft);
  const std::string out = report.render();
  EXPECT_NE(out.find("NDFT"), std::string::npos);
  EXPECT_NE(out.find("Si_16"), std::string::npos);
  EXPECT_NE(out.find("SYEVD"), std::string::npos);
  EXPECT_NE(out.find("scheduling overhead"), std::string::npos);
}

TEST_F(NdftSystemFixture, TimeOfAggregatesClasses) {
  const RunReport report = system.run(16, ExecMode::kCpuBaseline);
  TimePs alltoall = 0;
  for (const KernelTime& k : report.kernels) {
    if (k.cls == KernelClass::kAlltoall) alltoall += k.time_ps;
  }
  EXPECT_EQ(report.time_of(KernelClass::kAlltoall), alltoall);
  EXPECT_EQ(report.global_comm_ps(), alltoall);
}

TEST(ExecModeTest, Names) {
  EXPECT_STREQ(to_string(ExecMode::kCpuBaseline), "CPU");
  EXPECT_STREQ(to_string(ExecMode::kGpuBaseline), "GPU");
  EXPECT_STREQ(to_string(ExecMode::kNdpOnly), "NDP-only");
  EXPECT_STREQ(to_string(ExecMode::kNdft), "NDFT");
}

TEST(SystemConfigTest, PaperDefaultsMatchTableIII) {
  const SystemConfig config = SystemConfig::paper_default();
  EXPECT_EQ(config.host_cpu.cores, 8u);
  EXPECT_EQ(config.host_cpu.core.freq_mhz, 3000u);
  EXPECT_EQ(config.ndp.stacks(), 16u);
  EXPECT_EQ(config.ndp.total_cores(), 256u);
  EXPECT_EQ(config.ndp.total_capacity(), 64ull << 30);
  EXPECT_EQ(config.ndp.stack.spm.capacity, 256u * 1024);
  EXPECT_EQ(config.xeon.cores, 24u);
  EXPECT_NEAR(config.gpu.peak_gflops, 15600.0, 1.0);
}

TEST(SpeedupTest, RejectsZeroRuntime) {
  RunReport a;
  RunReport b;
  a.kernels.push_back(KernelTime{"x", KernelClass::kOther,
                                 DeviceKind::kCpu, 100});
  EXPECT_THROW(speedup(a, b), NdftError);
  EXPECT_DOUBLE_EQ(speedup(a, a), 1.0);
}

}  // namespace
}  // namespace ndft::core
