#include "dft/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/math_util.hpp"

namespace ndft::dft {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

Complex unit_root(double turns) {
  // exp(2*pi*i*turns), computed from the angle for accuracy.
  return Complex{std::cos(kTwoPi * turns), std::sin(kTwoPi * turns)};
}

/// Iterative radix-2 FFT, in place; n must be a power of two.
void fft_pow2(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j |= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 1.0 : -1.0) / static_cast<double>(len);
    const Complex step = unit_root(angle);
    for (std::size_t block = 0; block < n; block += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex even = data[block + k];
        const Complex odd = data[block + k + len / 2] * w;
        data[block + k] = even + odd;
        data[block + k + len / 2] = even - odd;
        w *= step;
      }
    }
  }
}

/// Smallest factor of n among {2,3,5}; 0 if none divides n.
std::size_t small_factor(std::size_t n) {
  if (n % 2 == 0) return 2;
  if (n % 3 == 0) return 3;
  if (n % 5 == 0) return 5;
  return 0;
}

/// Recursive mixed-radix DIT for n = 2^a * 3^b * 5^c.
/// Reads in[0], in[stride], ... and writes out[0..n-1] contiguously.
void fft_mixed(const Complex* in, Complex* out, std::size_t n,
               std::size_t stride, bool inverse) {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  const std::size_t p = small_factor(n);
  NDFT_ASSERT(p != 0);
  const std::size_t m = n / p;

  // Sub-transforms of the p decimated sequences, laid out back to back.
  std::vector<Complex> sub(n);
  for (std::size_t r = 0; r < p; ++r) {
    fft_mixed(in + r * stride, sub.data() + r * m, m, stride * p, inverse);
  }

  // Combine: X[q + s*m] = sum_r w_n^{r q} * w_p^{r s} * Sub_r[q].
  const double direction = inverse ? 1.0 : -1.0;
  for (std::size_t q = 0; q < m; ++q) {
    // Twiddled sub values for this q.
    Complex twiddled[5];
    for (std::size_t r = 0; r < p; ++r) {
      const double turns =
          direction * static_cast<double>(r * q) / static_cast<double>(n);
      twiddled[r] = sub[r * m + q] * unit_root(turns);
    }
    for (std::size_t s = 0; s < p; ++s) {
      Complex acc{};
      for (std::size_t r = 0; r < p; ++r) {
        const double turns =
            direction * static_cast<double>(r * s) / static_cast<double>(p);
        acc += twiddled[r] * unit_root(turns);
      }
      out[q + s * m] = acc;
    }
  }
}

/// Bluestein's chirp-z transform for arbitrary n, via a pow2 convolution.
void fft_bluestein(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  // Forward chirp is w^{k^2/2} with w = exp(-2*pi*i/n), i.e. a *negative*
  // angle; the -0.5 below carries the sign, so forward uses +1 here.
  const double direction = inverse ? -1.0 : 1.0;
  // a_k = x_k * w^{k^2/2};  b_k = w^{-k^2/2} (chirp).
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids catastrophic angle loss for large k. Transform
    // lengths stay far below 2^32, so the product fits in 64 bits.
    const std::size_t k2 = (k * k) % (2 * n);
    chirp[k] = unit_root(direction * -0.5 * static_cast<double>(k2) /
                         static_cast<double>(n));
  }
  const std::size_t conv_n = next_pow2(2 * n - 1);
  std::vector<Complex> a(conv_n);
  std::vector<Complex> b(conv_n);
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = data[k] * chirp[k];
    b[k] = std::conj(chirp[k]);
  }
  for (std::size_t k = 1; k < n; ++k) {
    b[conv_n - k] = std::conj(chirp[k]);
  }
  fft_pow2(a, false);
  fft_pow2(b, false);
  for (std::size_t k = 0; k < conv_n; ++k) {
    a[k] *= b[k];
  }
  fft_pow2(a, true);
  const double scale = 1.0 / static_cast<double>(conv_n);
  for (std::size_t k = 0; k < n; ++k) {
    data[k] = a[k] * scale * chirp[k];
  }
}

}  // namespace

bool is_friendly_size(std::size_t n) {
  if (n == 0) return false;
  for (std::size_t p : {2, 3, 5}) {
    while (n % p == 0) n /= p;
  }
  return n == 1;
}

std::size_t friendly_size(std::size_t n) {
  NDFT_REQUIRE(n >= 1, "friendly_size needs n >= 1");
  while (!is_friendly_size(n)) {
    ++n;
  }
  return n;
}

void fft(std::vector<Complex>& data, FftDirection direction) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  const bool inverse = (direction == FftDirection::kInverse);
  if (is_pow2(n)) {
    fft_pow2(data, inverse);
  } else if (is_friendly_size(n)) {
    std::vector<Complex> out(n);
    fft_mixed(data.data(), out.data(), n, 1, inverse);
    data = std::move(out);
  } else {
    fft_bluestein(data, inverse);
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& value : data) {
      value *= scale;
    }
  }
}

Flops fft_flops(std::size_t n) {
  if (n <= 1) return 0;
  const double logn = std::log2(static_cast<double>(n));
  return static_cast<Flops>(5.0 * static_cast<double>(n) * logn);
}

void fft3d(Grid3& grid, FftDirection direction, OpCount* count) {
  const std::size_t nx = grid.nx();
  const std::size_t ny = grid.ny();
  const std::size_t nz = grid.nz();
  NDFT_REQUIRE(nx > 0 && ny > 0 && nz > 0, "fft3d on an empty grid");

  std::vector<Complex> line;
  // X lines (contiguous).
  line.resize(nx);
  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) line[ix] = grid.at(ix, iy, iz);
      fft(line, direction);
      for (std::size_t ix = 0; ix < nx; ++ix) grid.at(ix, iy, iz) = line[ix];
    }
  }
  // Y lines.
  line.resize(ny);
  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      for (std::size_t iy = 0; iy < ny; ++iy) line[iy] = grid.at(ix, iy, iz);
      fft(line, direction);
      for (std::size_t iy = 0; iy < ny; ++iy) grid.at(ix, iy, iz) = line[iy];
    }
  }
  // Z lines.
  line.resize(nz);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      for (std::size_t iz = 0; iz < nz; ++iz) line[iz] = grid.at(ix, iy, iz);
      fft(line, direction);
      for (std::size_t iz = 0; iz < nz; ++iz) grid.at(ix, iy, iz) = line[iz];
    }
  }
  if (count != nullptr) {
    const std::size_t n = grid.size();
    count->add(fft_flops(n),
               // One read + one write of the full grid per dimension.
               static_cast<Bytes>(6) * n * sizeof(Complex));
  }
}

}  // namespace ndft::dft
