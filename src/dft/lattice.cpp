#include "dft/lattice.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ndft::dft {

Crystal::Crystal(Vec3 a1, Vec3 a2, Vec3 a3, std::vector<Vec3> positions)
    : a1_(a1), a2_(a2), a3_(a3), positions_(std::move(positions)) {
  volume_ = std::fabs(a1_.dot(a2_.cross(a3_)));
  NDFT_REQUIRE(volume_ > 1e-12, "degenerate lattice vectors");
  const double factor = 2.0 * std::numbers::pi / a1_.dot(a2_.cross(a3_));
  b1_ = a2_.cross(a3_) * factor;
  b2_ = a3_.cross(a1_) * factor;
  b3_ = a1_.cross(a2_) * factor;
}

std::array<std::size_t, 3> Crystal::supercell_factors(std::size_t n_cells) {
  NDFT_REQUIRE(n_cells >= 1, "need at least one cell");
  // Greedily split the factorisation as evenly as possible: repeatedly
  // divide by 2 assigning to the smallest dimension. All paper sizes are
  // powers of two times the 8-atom cell.
  std::array<std::size_t, 3> dims{1, 1, 1};
  std::size_t remaining = n_cells;
  while (remaining % 2 == 0) {
    auto smallest = std::min_element(dims.begin(), dims.end());
    *smallest *= 2;
    remaining /= 2;
  }
  // Any odd leftover goes to the smallest dimension.
  if (remaining > 1) {
    auto smallest = std::min_element(dims.begin(), dims.end());
    *smallest *= remaining;
  }
  std::sort(dims.begin(), dims.end());
  return dims;
}

Crystal Crystal::silicon_supercell(std::size_t n_atoms) {
  NDFT_REQUIRE(n_atoms >= 8 && n_atoms % 8 == 0,
               "silicon supercells need a multiple of 8 atoms");
  const std::size_t n_cells = n_atoms / 8;
  const auto dims = supercell_factors(n_cells);
  const double a0 = kSiliconLatticeBohr;

  // Diamond structure in the conventional cubic cell, with the origin at a
  // bond centre so atoms sit at +/- tau and structure factors are real:
  // four FCC points, each with a two-atom basis at +/- (1/8)(1,1,1).
  const std::array<Vec3, 4> fcc{Vec3{0.0, 0.0, 0.0}, Vec3{0.0, 0.5, 0.5},
                                Vec3{0.5, 0.0, 0.5}, Vec3{0.5, 0.5, 0.0}};
  const Vec3 tau{0.125, 0.125, 0.125};

  std::vector<Vec3> positions;
  positions.reserve(n_atoms);
  for (std::size_t cx = 0; cx < dims[0]; ++cx) {
    for (std::size_t cy = 0; cy < dims[1]; ++cy) {
      for (std::size_t cz = 0; cz < dims[2]; ++cz) {
        const Vec3 cell_origin{static_cast<double>(cx),
                               static_cast<double>(cy),
                               static_cast<double>(cz)};
        for (const Vec3& site : fcc) {
          for (const double sign : {+1.0, -1.0}) {
            const Vec3 fractional = cell_origin + site + tau * sign;
            positions.push_back(fractional * a0);
          }
        }
      }
    }
  }
  NDFT_ASSERT(positions.size() == n_atoms);

  const Vec3 a1{a0 * static_cast<double>(dims[0]), 0.0, 0.0};
  const Vec3 a2{0.0, a0 * static_cast<double>(dims[1]), 0.0};
  const Vec3 a3{0.0, 0.0, a0 * static_cast<double>(dims[2])};
  return Crystal(a1, a2, a3, std::move(positions));
}

}  // namespace ndft::dft
