#pragma once
// HttpServer: accept loop + thread-per-connection HTTP/1.1 serving over
// net::Socket/net::HttpParser. Thread-per-connection (rather than a
// fixed worker pool) because keep-alive connections are held for the
// whole client session — a 64-client bench on an 8-worker pool would
// simply deadlock. A max_connections cap bounds the thread count.
//
// The accept path is a fault-injection site ("net.accept", class
// kDevice): when it fires the freshly accepted connection is closed
// immediately, modelling transient connection loss that well-behaved
// clients retry.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "net/socket.hpp"

namespace ndft::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port().
  std::size_t max_connections = 256;
  /// Idle read timeout per connection; the connection closes when the
  /// client sends nothing for this long. Sliced internally so shutdown()
  /// is honored promptly regardless.
  double io_timeout_ms = 30000.0;
  HttpLimits limits;
};

/// Maps one parsed request to a response. Must be thread-safe: it is
/// invoked concurrently from connection threads.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer(ServerConfig config, HttpHandler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and starts the accept thread; throws NdftError when the bind
  /// fails. Idempotent per instance (second call throws).
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting, waits for in-flight connections to finish their
  /// current request, and joins all threads. Safe to call twice.
  void shutdown();

  bool running() const noexcept { return running_.load(); }

  // Counters (monotonic over the server's lifetime).
  std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load();
  }
  std::uint64_t connections_dropped() const noexcept {
    return connections_dropped_.load();
  }
  std::uint64_t requests_served() const noexcept {
    return requests_served_.load();
  }

 private:
  void accept_loop();
  void serve_connection(Socket socket);
  void reap_finished();

  ServerConfig config_;
  HttpHandler handler_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_dropped_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::size_t> live_connections_{0};
};

}  // namespace ndft::net
