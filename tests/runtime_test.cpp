// Tests for the paper's Section IV machinery: the static code analyzer,
// the Eq. 1 cost model, the cost-aware scheduler with its granularity
// choices, the Table II shared-memory API with hierarchical
// communication, and the pseudopotential store.

#include <gtest/gtest.h>

#include "dft/workload.hpp"
#include "ndp/ndp_system.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/pseudo_store.hpp"
#include "runtime/sca.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/shared_memory.hpp"

namespace ndft::runtime {
namespace {

dft::Workload paper_workload(std::size_t atoms) {
  return dft::Workload::lrtddft_iteration(dft::SystemDims::silicon(atoms));
}

Sca paper_sca() {
  return Sca(DeviceProfile::table3_cpu(), DeviceProfile::table3_ndp());
}

// -------------------------------------------------------------------- SCA

TEST(ScaTest, FftIsMemoryBoundOnCpuAndPrefersNdp) {
  // Fig. 4 classifies kernels against the *CPU* roofline: FFT sits deep
  // in the memory-bound region there. (On the NDP side the wimpy cores
  // make the same kernel compute-limited — which is fine: it is still
  // far faster near the data, so the SCA offloads it.)
  const Sca sca = paper_sca();
  const dft::Workload w = paper_workload(1024);
  for (const dft::KernelWork& k : w.kernels) {
    if (k.cls != KernelClass::kFft) continue;
    const KernelAnalysis a = sca.analyze(k);
    EXPECT_EQ(a.on_cpu, Boundedness::kMemoryBound);
    EXPECT_EQ(a.preferred, DeviceKind::kNdp);
  }
}

TEST(ScaTest, GemmIsComputeBoundAndPrefersCpu) {
  const Sca sca = paper_sca();
  const dft::Workload w = paper_workload(1024);
  for (const dft::KernelWork& k : w.kernels) {
    if (k.cls != KernelClass::kGemm) continue;
    const KernelAnalysis a = sca.analyze(k);
    EXPECT_EQ(a.on_cpu, Boundedness::kComputeBound);
    EXPECT_EQ(a.preferred, DeviceKind::kCpu);
  }
}

TEST(ScaTest, SyevdPrefersCpu) {
  const Sca sca = paper_sca();
  for (const std::size_t atoms : {std::size_t{64}, std::size_t{1024}}) {
    const dft::Workload w = paper_workload(atoms);
    for (const dft::KernelWork& k : w.kernels) {
      if (k.cls != KernelClass::kSyevd) continue;
      EXPECT_EQ(sca.analyze(k).preferred, DeviceKind::kCpu) << atoms;
    }
  }
}

TEST(ScaTest, EstimateIsRoofline) {
  const Sca sca = paper_sca();
  const DeviceProfile cpu = DeviceProfile::table3_cpu();
  dft::KernelWork k;
  k.flops = 1'000'000'000;      // 1 GF
  k.dram_bytes = 100'000'000;   // 0.1 GB
  k.pattern = AccessPattern::kSequential;
  const double compute_ms =
      static_cast<double>(k.flops) / cpu.peak_gflops / 1e6;
  const double memory_ms =
      static_cast<double>(k.dram_bytes) / cpu.dram_gbps / 1e6;
  const double expected_ms = std::max(compute_ms, memory_ms);
  const TimePs est = sca.estimate(k, cpu);
  EXPECT_NEAR(static_cast<double>(est) / kPsPerMs, expected_ms,
              expected_ms * 0.02);
}

TEST(ScaTest, AnalyzeWholeWorkload) {
  const Sca sca = paper_sca();
  const dft::Workload w = paper_workload(64);
  const std::vector<KernelAnalysis> analyses = sca.analyze(w);
  EXPECT_EQ(analyses.size(), w.kernels.size());
}

// ------------------------------------------------------------- cost model

TEST(CostModelTest, TransferScalesWithBytes) {
  const CostModel cost(DeviceProfile::table3_cpu(),
                       DeviceProfile::table3_ndp());
  EXPECT_EQ(cost.transfer_time(0), 0u);
  const TimePs one = cost.transfer_time(1 << 20);
  const TimePs two = cost.transfer_time(2 << 20);
  EXPECT_NEAR(static_cast<double>(two), 2.0 * static_cast<double>(one),
              1000.0);
}

TEST(CostModelTest, CrossingIncludesContextSwitch) {
  const CostModel cost(DeviceProfile::table3_cpu(),
                       DeviceProfile::table3_ndp());
  EXPECT_EQ(cost.crossing_cost(1 << 20),
            cost.transfer_time(1 << 20) + cost.context_switch_time());
  EXPECT_GT(cost.context_switch_time(), 0u);
}

// --------------------------------------------------------------- scheduler

TEST(SchedulerTest, FunctionPlanMatchesPaperPlacement) {
  const Sca sca = paper_sca();
  const CostModel cost(sca.cpu(), sca.ndp());
  const Scheduler scheduler(sca, cost);
  const dft::Workload w = paper_workload(1024);
  const ExecutionPlan plan = scheduler.plan(w);
  ASSERT_EQ(plan.placements.size(), w.kernels.size());
  for (std::size_t i = 0; i < w.kernels.size(); ++i) {
    const KernelClass cls = w.kernels[i].cls;
    const DeviceKind device = plan.placements[i].device;
    if (cls == KernelClass::kGemm || cls == KernelClass::kSyevd) {
      EXPECT_EQ(device, DeviceKind::kCpu) << w.kernels[i].name;
    }
    if (cls == KernelClass::kFft || cls == KernelClass::kFaceSplit) {
      EXPECT_EQ(device, DeviceKind::kNdp) << w.kernels[i].name;
    }
  }
  EXPECT_GT(plan.crossings, 0u);
  EXPECT_GT(plan.est_total_ps, 0u);
}

TEST(SchedulerTest, OverheadFractionIsSmall) {
  // The paper reports 3.8-4.9 % scheduling overhead; the plan estimate
  // should be in single digits.
  const Sca sca = paper_sca();
  const CostModel cost(sca.cpu(), sca.ndp());
  const Scheduler scheduler(sca, cost);
  for (const std::size_t atoms : {std::size_t{64}, std::size_t{1024}}) {
    const ExecutionPlan plan = scheduler.plan(paper_workload(atoms));
    EXPECT_GT(plan.overhead_fraction(), 0.0);
    EXPECT_LT(plan.overhead_fraction(), 0.12) << atoms;
  }
}

TEST(SchedulerTest, FinerGranularityCostsMore) {
  // Section IV-A1: homogeneous functions make sub-function offload pure
  // overhead.
  const Sca sca = paper_sca();
  const CostModel cost(sca.cpu(), sca.ndp());
  const Scheduler scheduler(sca, cost);
  const dft::Workload w = paper_workload(64);
  const ExecutionPlan fn = scheduler.plan(w, Granularity::kFunction);
  const ExecutionPlan bb = scheduler.plan(w, Granularity::kBasicBlock);
  const ExecutionPlan inst = scheduler.plan(w, Granularity::kInstruction);
  EXPECT_LE(fn.est_total_ps, bb.est_total_ps);
  EXPECT_LE(bb.est_total_ps, inst.est_total_ps);
  EXPECT_LT(fn.est_overhead_ps, inst.est_overhead_ps);
}

TEST(SchedulerTest, KernelGranularityUsesOneDevice) {
  const Sca sca = paper_sca();
  const CostModel cost(sca.cpu(), sca.ndp());
  const Scheduler scheduler(sca, cost);
  const ExecutionPlan plan =
      scheduler.plan(paper_workload(1024), Granularity::kKernel);
  EXPECT_EQ(plan.crossings, 0u);
  EXPECT_EQ(plan.est_overhead_ps, 0u);
  const DeviceKind device = plan.placements.front().device;
  for (const Placement& p : plan.placements) {
    EXPECT_EQ(p.device, device);
  }
}

TEST(SchedulerTest, FunctionBeatsSingleDevice) {
  // The whole point of the co-design: the hybrid schedule beats running
  // everything on either device alone.
  const Sca sca = paper_sca();
  const CostModel cost(sca.cpu(), sca.ndp());
  const Scheduler scheduler(sca, cost);
  const dft::Workload w = paper_workload(1024);
  const ExecutionPlan hybrid = scheduler.plan(w, Granularity::kFunction);
  const ExecutionPlan single = scheduler.plan(w, Granularity::kKernel);
  EXPECT_LT(hybrid.est_total_ps, single.est_total_ps);
}

TEST(SchedulerTest, SegmentsForGranularity) {
  EXPECT_EQ(Scheduler::segments_for(Granularity::kFunction), 1u);
  EXPECT_GT(Scheduler::segments_for(Granularity::kBasicBlock), 1u);
  EXPECT_GT(Scheduler::segments_for(Granularity::kInstruction),
            Scheduler::segments_for(Granularity::kBasicBlock));
}

// ----------------------------------------------------------- shared memory

struct ShmFixture : public ::testing::Test {
  ShmFixture()
      : ndp("ndp", queue, ndp::NdpSystemConfig::table3()),
        shm("shm", queue, ndp, SharedMemoryConfig{}) {}

  TimePs timed(std::function<void(ShmCallback)> call) {
    const TimePs start = queue.now();
    TimePs end = start;
    call([&end](TimePs at) { end = at; });
    queue.run();
    return end - start;
  }

  sim::EventQueue queue;
  ndp::NdpSystem ndp;
  SharedMemoryManager shm;
};

TEST_F(ShmFixture, AllocPrefersSpm) {
  const SharedBlock block = shm.alloc_shared(4096, 0);
  EXPECT_TRUE(block.in_spm);
  EXPECT_EQ(block.owner_stack, 0u);
  EXPECT_GT(ndp.stack(0).spm().used(), 0u);
  shm.free_shared(block);
  EXPECT_EQ(ndp.stack(0).spm().used(), 0u);
}

TEST_F(ShmFixture, AllocFallsBackToDramWhenSpmFull) {
  // 256 KiB SPM: the second 200 KiB block cannot fit.
  const SharedBlock a = shm.alloc_shared(200 * 1024, 0);
  const SharedBlock b = shm.alloc_shared(200 * 1024, 0);
  EXPECT_TRUE(a.in_spm);
  EXPECT_FALSE(b.in_spm);
}

TEST_F(ShmFixture, OwnerUnitMapsToStack) {
  const SharedBlock block = shm.alloc_shared(64, 9 * 8 + 3);  // unit 75
  EXPECT_EQ(block.owner_stack, 9u);
}

TEST_F(ShmFixture, IntraStackReadIsFast) {
  const SharedBlock block = shm.alloc_shared(16 * 1024, 0);
  const TimePs intra =
      timed([&](ShmCallback cb) { shm.read(block, 4096, cb); });
  EXPECT_LT(intra, 2 * kPsPerUs);
}

TEST_F(ShmFixture, RemoteReadCrossesMeshThenStages) {
  const SharedBlock block = shm.alloc_shared(16 * 1024, 0);
  const TimePs cold = timed(
      [&](ShmCallback cb) { shm.read_remote(block, 16 * 1024, 15, cb); });
  EXPECT_EQ(shm.staging_misses(), 1u);
  const TimePs warm = timed(
      [&](ShmCallback cb) { shm.read_remote(block, 16 * 1024, 15, cb); });
  EXPECT_EQ(shm.staging_hits(), 1u);
  EXPECT_GT(cold, warm * 2);  // the filter pays off
}

TEST_F(ShmFixture, RemoteReadFromOwnerIsLocal) {
  const SharedBlock block = shm.alloc_shared(4096, 0);
  timed([&](ShmCallback cb) { shm.read_remote(block, 4096, 0, cb); });
  EXPECT_EQ(shm.inter_stack_bytes(), 0u);
  EXPECT_GT(shm.intra_stack_bytes(), 0u);
}

TEST_F(ShmFixture, WriteRemoteInvalidatesStagedCopies) {
  const SharedBlock block = shm.alloc_shared(8192, 0);
  timed([&](ShmCallback cb) { shm.read_remote(block, 8192, 5, cb); });
  EXPECT_EQ(shm.staging_misses(), 1u);
  timed([&](ShmCallback cb) { shm.write_remote(block, 8192, 7, cb); });
  // The staged copy in stack 5 is gone: the next read misses again.
  timed([&](ShmCallback cb) { shm.read_remote(block, 8192, 5, cb); });
  EXPECT_EQ(shm.staging_misses(), 2u);
}

TEST_F(ShmFixture, BroadcastStagesEverywhere) {
  const SharedBlock block = shm.alloc_shared(4096, 0);
  TimePs end = 0;
  shm.broadcast(block, [&end](TimePs at) { end = at; });
  queue.run();
  EXPECT_GT(end, 0u);
  // Every non-owner stack now serves the block locally.
  for (unsigned s = 1; s < ndp.stack_count(); ++s) {
    timed([&](ShmCallback cb) { shm.read_remote(block, 4096, s, cb); });
  }
  EXPECT_EQ(shm.staging_misses(), 0u);
  EXPECT_EQ(shm.staging_hits(), 15u);
}

TEST_F(ShmFixture, UnknownBlockRejected) {
  SharedBlock bogus;
  bogus.id = 999;
  EXPECT_THROW(shm.read(bogus, 64, nullptr), NdftError);
  EXPECT_THROW(shm.free_shared(bogus), NdftError);
}

TEST(ShmFlatModeTest, FlatCostsMoreMeshTraffic) {
  // A3 in miniature: with the arbiter filter off, repeat remote reads
  // keep crossing the mesh.
  const auto run_mode = [](bool hierarchical) {
    sim::EventQueue queue;
    ndp::NdpSystem ndp("ndp", queue, ndp::NdpSystemConfig::table3());
    SharedMemoryConfig config;
    config.hierarchical = hierarchical;
    SharedMemoryManager shm("shm", queue, ndp, config);
    const SharedBlock block = shm.alloc_shared(16 * 1024, 0);
    for (int i = 0; i < 8; ++i) {
      shm.read_remote(block, 16 * 1024, 12, nullptr);
    }
    queue.run();
    return shm.inter_stack_bytes();
  };
  EXPECT_GT(run_mode(false), 4 * run_mode(true));
}

// ------------------------------------------------------------ pseudo store

TEST(PseudoStoreTest, ReplicatedScalesWithProcesses) {
  const dft::Workload w = paper_workload(64);
  ProcessConfig processes;
  const PseudoStore store(w, processes);
  const PseudoFootprint ndp =
      store.on_ndp(PseudoLayout::kReplicated, 64ull << 30);
  const PseudoFootprint cpu = store.on_cpu(64ull << 30);
  EXPECT_EQ(ndp.total, processes.ndp_processes * store.copy_bytes());
  EXPECT_EQ(cpu.total, processes.cpu_processes * store.copy_bytes());
  // The paper's headline: NDP replication costs ~2.4-2.7x the CPU's.
  const double ratio =
      static_cast<double>(ndp.total) / static_cast<double>(cpu.total);
  EXPECT_NEAR(ratio, 64.0 / 24.0, 0.01);
}

TEST(PseudoStoreTest, SharedBlocksCollapseToOneCopy) {
  const dft::Workload w = paper_workload(1024);
  const PseudoStore store(w, ProcessConfig{});
  const PseudoFootprint shared =
      store.on_ndp(PseudoLayout::kSharedBlock, 64ull << 30);
  EXPECT_LT(shared.total, store.copy_bytes() * 11 / 10);
  EXPECT_GT(shared.total, store.copy_bytes());  // copy + indices + staging
}

TEST(PseudoStoreTest, OomAtSi2048Replicated) {
  // The paper's motivation: replication OOMs large systems on NDP; the
  // shared-block layout does not.
  const dft::Workload w = paper_workload(2048);
  const PseudoStore store(w, ProcessConfig{});
  EXPECT_TRUE(store.on_ndp(PseudoLayout::kReplicated, 64ull << 30)
                  .out_of_memory());
  EXPECT_FALSE(store.on_ndp(PseudoLayout::kSharedBlock, 64ull << 30)
                   .out_of_memory());
}

TEST(PseudoStoreTest, NdftLandsNearCpuFootprint) {
  // Fig. 7 discussion: NDFT's footprint is ~1.08x the CPU baseline's and
  // ~58 % below replicated NDP.
  const dft::Workload w = paper_workload(1024);
  const PseudoStore store(w, ProcessConfig{});
  const Bytes capacity = 64ull << 30;
  const double ndft = static_cast<double>(store.on_ndft(capacity).total);
  const double cpu = static_cast<double>(store.on_cpu(capacity).total);
  const double ndp = static_cast<double>(
      store.on_ndp(PseudoLayout::kReplicated, capacity).total);
  EXPECT_NEAR(ndft / cpu, 1.08, 0.08);
  EXPECT_NEAR(1.0 - ndft / ndp, 0.578, 0.08);
}

TEST(PseudoStoreTest, HierarchicalTrafficBeatsFlat) {
  const dft::Workload w = paper_workload(256);
  const PseudoStore store(w, ProcessConfig{});
  const Bytes hier = store.sharing_traffic_bytes(true);
  const Bytes flat = store.sharing_traffic_bytes(false);
  EXPECT_GT(flat, 3 * hier);  // 4 workers per stack coalesce into 1 fetch
}

}  // namespace
}  // namespace ndft::runtime
