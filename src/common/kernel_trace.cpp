#include "common/kernel_trace.hpp"

#include <chrono>
#include <mutex>
#include <utility>

#include "common/thread_pool.hpp"

namespace ndft {
namespace {

constexpr const char* kTraceSchema = "ndft.kernel_trace.v1";

double now_ms() noexcept {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

KernelClass kernel_class_from(const std::string& name) {
  for (const KernelClass cls :
       {KernelClass::kFft, KernelClass::kFaceSplit, KernelClass::kGemm,
        KernelClass::kSyevd, KernelClass::kPseudopotential,
        KernelClass::kAlltoall, KernelClass::kOther}) {
    if (name == to_string(cls)) return cls;
  }
  throw NdftError("unknown kernel class: " + name);
}

}  // namespace

// ---------------------------------------------------- thread-local routing
//
// tl_recorder is the sink TraceScope installed on this thread.
// tl_kernel_depth counts nested KernelTimer entries so only the outermost
// kernel emits. tl_region points at the innermost open TraceRegion; while
// one is open, kernel entries are suppressed and explicit work folds into
// it. Pool workers never see a recorder, so everything off the scope
// thread is a no-op by construction.

struct TraceRegion::State {
  TraceEvent event;
  double start_ms = 0.0;
  State* parent = nullptr;
};

namespace {

thread_local TraceRecorder* tl_recorder = nullptr;
thread_local unsigned tl_kernel_depth = 0;
thread_local TraceRegion::State* tl_region = nullptr;
thread_local std::string tl_stage;

}  // namespace

// -------------------------------------------------------------- KernelTrace

Flops KernelTrace::total_flops() const noexcept {
  Flops total = 0;
  for (const TraceEvent& e : events) total += e.flops;
  return total;
}

Bytes KernelTrace::total_bytes() const noexcept {
  Bytes total = 0;
  for (const TraceEvent& e : events) total += e.bytes;
  return total;
}

double KernelTrace::total_host_ms() const noexcept {
  double total = 0.0;
  for (const TraceEvent& e : events) total += e.host_ms;
  return total;
}

std::size_t KernelTrace::count_of(KernelClass cls) const noexcept {
  std::size_t count = 0;
  for (const TraceEvent& e : events) count += (e.cls == cls) ? 1 : 0;
  return count;
}

Flops KernelTrace::flops_of(KernelClass cls) const noexcept {
  Flops total = 0;
  for (const TraceEvent& e : events) {
    if (e.cls == cls) total += e.flops;
  }
  return total;
}

Bytes KernelTrace::bytes_of(KernelClass cls) const noexcept {
  Bytes total = 0;
  for (const TraceEvent& e : events) {
    if (e.cls == cls) total += e.bytes;
  }
  return total;
}

Json KernelTrace::to_json() const {
  Json j = Json::object();
  j.set("schema", kTraceSchema);
  j.set("atoms", atoms);
  j.set("basis_size", basis_size);
  j.set("grid_points", grid_points);
  j.set("pool_threads", pool_threads);
  j.set("truncated", truncated);
  Json list = Json::array();
  for (const TraceEvent& e : events) {
    Json entry = Json::object();
    entry.set("class", to_string(e.cls));
    entry.set("name", e.name);
    entry.set("stage", e.stage);
    entry.set("flops", e.flops);
    entry.set("bytes", e.bytes);
    entry.set("input_bytes", e.input_bytes);
    entry.set("output_bytes", e.output_bytes);
    Json dims = Json::array();
    for (const std::uint64_t d : e.dims) dims.push_back(d);
    entry.set("dims", std::move(dims));
    entry.set("host_ms", e.host_ms);
    list.push_back(std::move(entry));
  }
  j.set("events", std::move(list));
  return j;
}

KernelTrace KernelTrace::from_json(const Json& json) {
  NDFT_REQUIRE(json.is_object(), "kernel trace must be a JSON object");
  const std::string schema = json.at("schema").as_string();
  NDFT_REQUIRE(schema == kTraceSchema,
               ("unsupported trace schema: " + schema).c_str());
  KernelTrace trace;
  trace.atoms = json.at("atoms").as_uint();
  trace.basis_size = json.at("basis_size").as_uint();
  trace.grid_points = json.at("grid_points").as_uint();
  trace.pool_threads = json.at("pool_threads").as_uint();
  trace.truncated = json.at("truncated").as_bool();
  for (const Json& entry : json.at("events").items()) {
    TraceEvent e;
    e.cls = kernel_class_from(entry.at("class").as_string());
    e.name = entry.at("name").as_string();
    e.stage = entry.at("stage").as_string();
    e.flops = entry.at("flops").as_uint();
    e.bytes = entry.at("bytes").as_uint();
    e.input_bytes = entry.at("input_bytes").as_uint();
    e.output_bytes = entry.at("output_bytes").as_uint();
    const Json& dims = entry.at("dims");
    NDFT_REQUIRE(dims.size() == 3, "trace event dims must have 3 entries");
    for (std::size_t i = 0; i < 3; ++i) e.dims[i] = dims[i].as_uint();
    e.host_ms = entry.at("host_ms").as_double();
    trace.events.push_back(std::move(e));
  }
  return trace;
}

// ------------------------------------------------------------ TraceRecorder

struct TraceRecorder::Impl {
  std::mutex mutex;
  KernelTrace trace;
};

TraceRecorder::TraceRecorder() : impl_(std::make_unique<Impl>()) {}
TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->trace.events.size() >= kMaxEvents) {
    impl_->trace.truncated = true;
    return;
  }
  impl_->trace.events.push_back(std::move(event));
}

void TraceRecorder::set_system(std::size_t atoms, std::size_t basis_size,
                               std::size_t grid_points) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->trace.atoms = atoms;
  impl_->trace.basis_size = basis_size;
  impl_->trace.grid_points = grid_points;
}

KernelTrace TraceRecorder::take() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  KernelTrace out = std::move(impl_->trace);
  impl_->trace = KernelTrace{};
  out.pool_threads = ThreadPool::instance().threads();
  return out;
}

// --------------------------------------------------------------- TraceScope

bool trace_active() noexcept {
  return tl_recorder != nullptr && tl_kernel_depth == 0 &&
         tl_region == nullptr;
}

TraceScope::TraceScope(TraceRecorder& recorder) {
  NDFT_REQUIRE(tl_recorder == nullptr,
               "TraceScope must not nest on one thread");
  tl_recorder = &recorder;
  tl_stage.clear();
}

TraceScope::~TraceScope() {
  tl_recorder = nullptr;
  tl_stage.clear();
}

// --------------------------------------------------------------- TraceStage

TraceStage::TraceStage(std::string stage) {
  if (tl_recorder == nullptr) return;
  active_ = true;
  previous_ = std::move(tl_stage);
  tl_stage = std::move(stage);
}

TraceStage::~TraceStage() {
  if (active_) tl_stage = std::move(previous_);
}

// -------------------------------------------------------------- TraceRegion

TraceRegion::TraceRegion(KernelClass cls, std::string name) {
  if (tl_recorder == nullptr) return;
  state_ = new State();
  state_->event.cls = cls;
  state_->event.name = std::move(name);
  state_->event.stage = tl_stage;
  state_->start_ms = now_ms();
  state_->parent = tl_region;
  tl_region = state_;
}

TraceRegion::~TraceRegion() {
  if (state_ == nullptr) return;
  state_->event.host_ms = now_ms() - state_->start_ms;
  tl_region = state_->parent;
  if (tl_region != nullptr) {
    // Nested region: fold into the parent instead of emitting.
    tl_region->event.flops += state_->event.flops;
    tl_region->event.bytes += state_->event.bytes;
  } else if (tl_recorder != nullptr) {
    tl_recorder->record(std::move(state_->event));
  }
  delete state_;
}

void TraceRegion::add_work(Flops flops, Bytes bytes) noexcept {
  if (state_ == nullptr) return;
  state_->event.flops += flops;
  state_->event.bytes += bytes;
}

void TraceRegion::set_dims(std::uint64_t a, std::uint64_t b,
                           std::uint64_t c) noexcept {
  if (state_ == nullptr) return;
  state_->event.dims[0] = a;
  state_->event.dims[1] = b;
  state_->event.dims[2] = c;
}

void TraceRegion::set_io(Bytes input_bytes, Bytes output_bytes) noexcept {
  if (state_ == nullptr) return;
  state_->event.input_bytes = input_bytes;
  state_->event.output_bytes = output_bytes;
}

void trace_add_work(Flops flops, Bytes bytes) noexcept {
  if (tl_region != nullptr) {
    tl_region->event.flops += flops;
    tl_region->event.bytes += bytes;
  }
}

void trace_set_system(std::size_t atoms, std::size_t basis_size,
                      std::size_t grid_points) noexcept {
  if (tl_recorder != nullptr) {
    tl_recorder->set_system(atoms, basis_size, grid_points);
  }
}

// -------------------------------------------------------------- KernelTimer

KernelTimer::KernelTimer(KernelClass cls, const char* name) {
  ++tl_kernel_depth;
  if (tl_recorder == nullptr || tl_kernel_depth != 1 ||
      tl_region != nullptr) {
    return;  // untraced thread, nested kernel, or aggregated region
  }
  active_ = true;
  event_.cls = cls;
  event_.name = name;
  event_.stage = tl_stage;
  start_ms_ = now_ms();
}

KernelTimer::~KernelTimer() {
  --tl_kernel_depth;
  if (!active_) return;
  event_.host_ms = now_ms() - start_ms_;
  if (tl_recorder != nullptr) {
    tl_recorder->record(std::move(event_));
  }
}

void KernelTimer::set_work(Flops flops, Bytes bytes) noexcept {
  if (!active_) return;
  event_.flops = flops;
  event_.bytes = bytes;
}

void KernelTimer::set_dims(std::uint64_t a, std::uint64_t b,
                           std::uint64_t c) noexcept {
  if (!active_) return;
  event_.dims[0] = a;
  event_.dims[1] = b;
  event_.dims[2] = c;
}

void KernelTimer::set_io(Bytes input_bytes, Bytes output_bytes) noexcept {
  if (!active_) return;
  event_.input_bytes = input_bytes;
  event_.output_bytes = output_bytes;
}

}  // namespace ndft
