// Unit and property tests for the DRAM model: timing presets, address
// mapping (including the permutation interleaving), bank state machines,
// FR-FCFS behaviour, and physical bandwidth bounds.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/units.hpp"
#include "mem/address_map.hpp"
#include "mem/dram_system.hpp"
#include "sim/event_queue.hpp"

namespace ndft::mem {
namespace {

TEST(DramTimingTest, Ddr4PresetIsConsistent) {
  const DramTiming t = DramTiming::ddr4_2400();
  EXPECT_EQ(t.burst_bytes(), 64u);           // 64-bit bus x BL8
  EXPECT_EQ(t.burst_time_ps(), 4 * t.tCK_ps);  // BL/2 clocks
  EXPECT_NEAR(t.peak_gbps(), 19.2, 0.3);     // 2400 MT/s x 8 B
  EXPECT_LT(t.tRCD, t.tRAS);
  EXPECT_LE(t.tRAS + t.tRP, t.tRC + 1);
}

TEST(DramTimingTest, Hbm2PresetIsConsistent) {
  const DramTiming t = DramTiming::hbm2_1000();
  EXPECT_EQ(t.burst_bytes(), 64u);  // 128-bit bus x BL4
  EXPECT_NEAR(t.peak_gbps(), 32.0, 0.5);
}

TEST(DramGeometryTest, CapacityMatchesTableIII) {
  EXPECT_EQ(DramGeometry::ddr4_16gb_channel().channel_capacity(), 16_GiB);
  EXPECT_EQ(DramGeometry::hbm2_512mb_channel().channel_capacity(), 512_MiB);
}

TEST(DramConfigTest, PaperCapacities) {
  // Xeon: 4 channels x 16 GiB = 64 GiB; HBM stack: 8 x 512 MiB = 4 GiB.
  const DramConfig xeon = DramConfig::xeon_ddr4();
  EXPECT_EQ(static_cast<Bytes>(xeon.channels) *
                xeon.geometry.channel_capacity(),
            64_GiB);
  const DramConfig stack = DramConfig::hbm2_stack();
  EXPECT_EQ(static_cast<Bytes>(stack.channels) *
                stack.geometry.channel_capacity(),
            4_GiB);
  EXPECT_NEAR(stack.peak_gbps(), 256.0, 4.0);  // 8 x 32 GB/s
}

TEST(AddressMapTest, DecodeStaysInBounds) {
  const AddressMap map(4, DramGeometry::ddr4_16gb_channel(), 64);
  for (Addr addr = 0; addr < 1_MiB; addr += 4096 + 64) {
    const DramCoord c = map.decode(addr);
    EXPECT_LT(c.channel, 4u);
    EXPECT_LT(c.bank, map.capacity());  // trivially true; bank bound below
    EXPECT_LT(c.bank, 32u);
    EXPECT_LT(c.column, map.lines_per_row());
  }
}

TEST(AddressMapTest, SequentialLinesSpreadOverChannels) {
  const AddressMap map(4, DramGeometry::ddr4_16gb_channel(), 64);
  unsigned counts[4] = {0, 0, 0, 0};
  for (Addr line = 0; line < 4096; ++line) {
    counts[map.decode(line * 64).channel]++;
  }
  for (unsigned c = 0; c < 4; ++c) {
    EXPECT_GT(counts[c], 700u);  // roughly uniform
    EXPECT_LT(counts[c], 1400u);
  }
}

TEST(AddressMapTest, PowerOfTwoStrideStillUsesAllChannels) {
  // Without permutation interleaving a 2048-byte stride would alias onto
  // a single channel; the XOR fold must spread it.
  const AddressMap map(4, DramGeometry::ddr4_16gb_channel(), 64);
  std::set<unsigned> channels;
  for (Addr i = 0; i < 256; ++i) {
    channels.insert(map.decode(i * 2048).channel);
  }
  EXPECT_EQ(channels.size(), 4u);
}

TEST(AddressMapTest, ConcurrentStreamsLandInDifferentBanks) {
  // Streams at large power-of-two offsets must not all collide in one
  // bank (the row-fold declusters them).
  const AddressMap map(4, DramGeometry::ddr4_16gb_channel(), 64);
  std::set<unsigned> banks;
  for (unsigned stream = 0; stream < 16; ++stream) {
    const Addr base = static_cast<Addr>(stream) * 256_MiB;
    banks.insert(map.decode(base).bank);
  }
  EXPECT_GE(banks.size(), 8u);
}

TEST(AddressMapTest, AddressesWrapAtCapacity) {
  const AddressMap map(4, DramGeometry::ddr4_16gb_channel(), 64);
  const DramCoord a = map.decode(123 * 64);
  const DramCoord b = map.decode(123 * 64 + map.capacity());
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.column, b.column);
}

/// Helper: issues `count` reads with the given address generator and
/// returns the completion time of the last one.
template <typename AddrFn>
TimePs run_reads(DramSystem& dram, sim::EventQueue& queue, unsigned count,
                 AddrFn&& next_addr) {
  TimePs last = 0;
  for (unsigned i = 0; i < count; ++i) {
    MemRequest req;
    req.addr = next_addr(i);
    req.size = 64;
    req.is_write = false;
    req.on_complete = [&last](TimePs at) { last = std::max(last, at); };
    dram.access(std::move(req));
  }
  queue.run();
  return last;
}

TEST(DramSystemTest, SingleReadLatencyIsPlausible) {
  sim::EventQueue queue;
  DramConfig config = DramConfig::xeon_ddr4();
  config.access_latency_ps = 0;
  DramSystem dram("d", queue, config);
  const TimePs done = run_reads(dram, queue, 1, [](unsigned) { return 0; });
  // Cold access: ACT + CAS + burst = (tRCD + CL + BL/2) * tCK ~ 31.6 ns.
  EXPECT_GT(done, 25 * kPsPerNs);
  EXPECT_LT(done, 60 * kPsPerNs);
}

TEST(DramSystemTest, RowHitsAreFasterThanConflicts) {
  sim::EventQueue queue;
  DramConfig config = DramConfig::xeon_ddr4();
  config.access_latency_ps = 0;
  DramSystem dram("d", queue, config);
  // Same-row stream: lines within one row of one bank.
  const TimePs hits =
      run_reads(dram, queue, 64, [](unsigned i) { return Addr(i) * 64; });

  sim::EventQueue queue2;
  DramSystem dram2("d2", queue2, config);
  // Row-conflict stream: jump rows in the same bank each time (stride of
  // one full row set * banks keeps bank bits constant pre-hash; use the
  // map to find genuinely conflicting addresses).
  const AddressMap& map = dram2.address_map();
  std::vector<Addr> conflicting;
  const DramCoord first = map.decode(0);
  for (Addr candidate = 0; conflicting.size() < 64 && candidate < 2_GiB;
       candidate += 256 * 1024) {
    const DramCoord c = map.decode(candidate);
    if (c.channel == first.channel && c.bank == first.bank) {
      conflicting.push_back(candidate);
    }
  }
  ASSERT_EQ(conflicting.size(), 64u);
  const TimePs conflicts = run_reads(
      dram2, queue2, 64,
      [&](unsigned i) { return conflicting[i]; });
  EXPECT_GT(conflicts, hits * 3);
}

TEST(DramSystemTest, BandwidthNeverExceedsPeak) {
  sim::EventQueue queue;
  DramConfig config = DramConfig::xeon_ddr4();
  config.access_latency_ps = 0;
  DramSystem dram("d", queue, config);
  const unsigned count = 20000;
  const TimePs done =
      run_reads(dram, queue, count, [](unsigned i) { return Addr(i) * 64; });
  const double gbps = static_cast<double>(count) * 64 /
                      static_cast<double>(done) * 1000.0;
  EXPECT_LT(gbps, config.peak_gbps() * 1.001);
  EXPECT_GT(gbps, config.peak_gbps() * 0.4);  // streaming should do well
}

TEST(DramSystemTest, HbmStackOutpacesDdr4) {
  const auto stream = [](const DramConfig& config) {
    sim::EventQueue queue;
    DramConfig c = config;
    c.access_latency_ps = 0;
    DramSystem dram("d", queue, c);
    return run_reads(dram, queue, 8000,
                     [](unsigned i) { return Addr(i) * 64; });
  };
  const TimePs ddr = stream(DramConfig::xeon_ddr4());
  const TimePs hbm = stream(DramConfig::hbm2_stack());
  // 256 GB/s stack vs 76.8 GB/s DDR4: at least 2.5x faster.
  EXPECT_GT(ddr, hbm * 5 / 2);
}

TEST(DramSystemTest, WritesAreCountedAndComplete) {
  sim::EventQueue queue;
  DramConfig config = DramConfig::xeon_ddr4();
  config.access_latency_ps = 0;
  DramSystem dram("d", queue, config);
  int completions = 0;
  for (unsigned i = 0; i < 100; ++i) {
    MemRequest req;
    req.addr = Addr(i) * 64;
    req.size = 64;
    req.is_write = true;
    req.on_complete = [&completions](TimePs) { ++completions; };
    dram.access(std::move(req));
  }
  queue.run();
  EXPECT_EQ(completions, 100);
  EXPECT_EQ(dram.bytes_transferred(), 6400u);
  sim::StatSet stats;
  dram.collect_stats("dram", stats);
  double writes = 0;
  for (const auto& [name, value] : stats.snapshot()) {
    if (name.find(".writes") != std::string::npos) writes += value;
  }
  EXPECT_DOUBLE_EQ(writes, 100.0);
}

TEST(DramSystemTest, AccessLatencyDelaysService) {
  const auto single = [](TimePs extra) {
    sim::EventQueue queue;
    DramConfig config = DramConfig::xeon_ddr4();
    config.access_latency_ps = extra;
    DramSystem dram("d", queue, config);
    return run_reads(dram, queue, 1, [](unsigned) { return 0; });
  };
  EXPECT_EQ(single(50 * kPsPerNs), single(0) + 50 * kPsPerNs);
}

TEST(DramSystemTest, RefreshStallsAppearOverTime) {
  sim::EventQueue queue;
  DramConfig config = DramConfig::xeon_ddr4();
  config.access_latency_ps = 0;
  DramSystem dram("d", queue, config);
  // Spread accesses over > tREFI of simulated time via spaced arrivals.
  TimePs when = 0;
  int done = 0;
  for (unsigned i = 0; i < 100; ++i) {
    when += 200 * kPsPerNs;  // 20 us total, several refresh windows
    queue.schedule_at(when, [&dram, &done, i] {
      MemRequest req;
      req.addr = Addr(i) * 64;
      req.size = 64;
      req.on_complete = [&done](TimePs) { ++done; };
      dram.access(std::move(req));
    });
  }
  queue.run();
  EXPECT_EQ(done, 100);
  sim::StatSet stats;
  dram.collect_stats("dram", stats);
  double stall = 0;
  for (const auto& [name, value] : stats.snapshot()) {
    if (name.find("refresh_stall_ps") != std::string::npos) stall += value;
  }
  EXPECT_GT(stall, 0.0);
}

// Parameterized sweep: streaming efficiency must hold across channel
// counts and both technologies.
struct StreamCase {
  const char* name;
  DramConfig config;
};

class DramStreamTest : public ::testing::TestWithParam<StreamCase> {};

TEST_P(DramStreamTest, StreamingReachesHalfPeak) {
  sim::EventQueue queue;
  DramConfig config = GetParam().config;
  config.access_latency_ps = 0;
  DramSystem dram("d", queue, config);
  const unsigned count = 10000;
  const TimePs done =
      run_reads(dram, queue, count, [](unsigned i) { return Addr(i) * 64; });
  const double gbps = static_cast<double>(count) * 64 /
                      static_cast<double>(done) * 1000.0;
  EXPECT_GT(gbps, config.peak_gbps() * 0.5) << GetParam().name;
  EXPECT_LE(gbps, config.peak_gbps() * 1.001) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Technologies, DramStreamTest,
    ::testing::Values(StreamCase{"ddr4", DramConfig::xeon_ddr4()},
                      StreamCase{"hbm2", DramConfig::hbm2_stack()}),
    [](const ::testing::TestParamInfo<StreamCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace ndft::mem
