#include "dft/scf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numbers>

#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "common/kernel_trace.hpp"
#include "common/str_util.hpp"
#include "common/thread_pool.hpp"
#include "dft/linalg.hpp"

namespace ndft::dft {
namespace {

constexpr double kFourPi = 4.0 * std::numbers::pi;
constexpr double kEvPerHa = 27.211386;
constexpr double kDensityFloor = 1e-12;

/// Puts a real-coefficient orbital onto the FFT grid in real space with
/// the sqrt(Nr/Omega) normalisation used throughout (sum_G |c|^2 = 1
/// implies integral |psi(r)|^2 dr = 1).
Grid3 orbital_realspace(const PlaneWaveBasis& basis,
                        const RealMatrix& orbitals, std::size_t band) {
  const auto dims = basis.fft_dims();
  Grid3 grid(dims[0], dims[1], dims[2]);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    grid[basis.grid_index(i)] = Complex{orbitals(i, band), 0.0};
  }
  fft3d(grid, FftDirection::kInverse);
  const double scale = static_cast<double>(grid.size()) /
                       std::sqrt(basis.crystal().volume());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] *= scale;
  }
  return grid;
}

}  // namespace

double lda_vxc(double n) {
  n = std::max(n, kDensityFloor);
  // Slater exchange: V_x = -(3/pi)^(1/3) n^(1/3).
  const double vx = -std::cbrt(3.0 / std::numbers::pi) * std::cbrt(n);
  // Perdew-Zunger '81 correlation, unpolarised.
  const double rs = std::cbrt(3.0 / (kFourPi * n));
  double vc;
  if (rs >= 1.0) {
    constexpr double gamma = -0.1423;
    constexpr double beta1 = 1.0529;
    constexpr double beta2 = 0.3334;
    const double sqrt_rs = std::sqrt(rs);
    const double denom = 1.0 + beta1 * sqrt_rs + beta2 * rs;
    const double ec = gamma / denom;
    vc = ec * (1.0 + 7.0 / 6.0 * beta1 * sqrt_rs + 4.0 / 3.0 * beta2 * rs) /
         denom;
  } else {
    constexpr double a = 0.0311;
    constexpr double b = -0.048;
    constexpr double c = 0.0020;
    constexpr double d = -0.0116;
    const double ln_rs = std::log(rs);
    vc = a * ln_rs + (b - a / 3.0) + 2.0 / 3.0 * c * rs * ln_rs +
         (2.0 * d - c) / 3.0 * rs;
  }
  return vx + vc;
}

double lda_exc(double n) {
  n = std::max(n, kDensityFloor);
  const double ex = -0.75 * std::cbrt(3.0 / std::numbers::pi) * std::cbrt(n);
  const double rs = std::cbrt(3.0 / (kFourPi * n));
  double ec;
  if (rs >= 1.0) {
    const double sqrt_rs = std::sqrt(rs);
    ec = -0.1423 / (1.0 + 1.0529 * sqrt_rs + 0.3334 * rs);
  } else {
    const double ln_rs = std::log(rs);
    ec = 0.0311 * ln_rs - 0.048 + 0.0020 * rs * ln_rs - 0.0116 * rs;
  }
  return ex + ec;
}

double ashcroft_potential(const Crystal& crystal, const Vec3& dg,
                          double valence_charge, double core_radius_bohr) {
  const double q2 = dg.norm2();
  if (q2 < 1e-12) {
    return 0.0;  // cancelled by the neutralising background
  }
  const double q = std::sqrt(q2);
  const double form = -(kFourPi * valence_charge / q2) *
                      std::cos(q * core_radius_bohr);
  double structure = 0.0;
  for (const Vec3& position : crystal.positions()) {
    structure += std::cos(dg.dot(position));
  }
  return form * structure / crystal.volume();
}

double ashcroft_potential(const Crystal& crystal, const GVector& g,
                          const GVector& gp, double valence_charge,
                          double core_radius_bohr) {
  return ashcroft_potential(crystal, g.g - gp.g, valence_charge,
                            core_radius_bohr);
}

double ScfResult::electron_count(const PlaneWaveBasis& basis) const {
  const double element = basis.crystal().volume() /
                         static_cast<double>(basis.fft_size());
  double total = 0.0;
  for (const double n : density) {
    total += n;
  }
  return total * element;
}

ScfResult solve_scf(const PlaneWaveBasis& basis, const ScfConfig& config) {
  NDFT_REQUIRE(config.mixing > 0.0 && config.mixing <= 1.0,
               "mixing must be in (0, 1]");
  NDFT_REQUIRE(config.tolerance > 0.0, "tolerance must be positive");

  const std::size_t n_g = basis.size();
  const std::size_t nr = basis.fft_size();
  const auto dims = basis.fft_dims();
  const double omega = basis.crystal().volume();
  const double element = omega / static_cast<double>(nr);
  const std::size_t valence = basis.crystal().atom_count() * 2;
  const std::size_t bands =
      config.bands == 0 ? std::min(n_g, valence + 8)
                        : std::min(n_g, config.bands);
  NDFT_REQUIRE(bands > valence, "band count must exceed the valence count");

  // Bare ionic potential matrix, fixed across the loop. The matrix
  // element depends only on the integer G-difference (dh, dk, dl), so the
  // form factor and the per-atom structure-factor cos() sum are tabulated
  // once per geometry over the (4H+1)(4K+1)(4L+1) distinct differences
  // (components span [-2H, 2H] etc.); the O(n_g^2) assembly then reduces
  // to table lookups. Table rows and matrix rows are independent, so both
  // go to the thread pool.
  const auto& g = basis.gvectors();
  const Crystal& crystal = basis.crystal();
  int span_h = 0;
  int span_k = 0;
  int span_l = 0;
  for (const GVector& gv : g) {
    span_h = std::max(span_h, std::abs(gv.h));
    span_k = std::max(span_k, std::abs(gv.k));
    span_l = std::max(span_l, std::abs(gv.l));
  }
  // Differences reach twice the single-vector extent in each direction.
  const std::size_t dim_h = static_cast<std::size_t>(4 * span_h + 1);
  const std::size_t dim_k = static_cast<std::size_t>(4 * span_k + 1);
  const std::size_t dim_l = static_cast<std::size_t>(4 * span_l + 1);
  std::vector<double> v_ion_table(dim_h * dim_k * dim_l);
  RealMatrix v_ion(n_g, n_g);
  trace_set_system(crystal.atom_count(), n_g, nr);
  {
    // One trace event for the per-geometry ionic-potential tabulation:
    // ~20 flops per cos() plus the dot product, per table entry per atom,
    // and the O(n_g^2) lookup assembly.
    TraceRegion region(KernelClass::kOther, "scf.v_ion");
    region.set_dims(n_g, n_g, 0);
    region.add_work(static_cast<Flops>(v_ion_table.size()) *
                            (24 * crystal.atom_count() + 8) +
                        static_cast<Flops>(n_g) * n_g,
                    v_ion_table.size() * sizeof(double) +
                        static_cast<Bytes>(n_g) * n_g * sizeof(double));
    region.set_io(0, static_cast<Bytes>(n_g) * n_g * sizeof(double));
    parallel_for(
        0, dim_h, parallel_grain(dim_k * dim_l * crystal.atom_count()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t th = lo; th < hi; ++th) {
            const int dh = static_cast<int>(th) - 2 * span_h;
            for (std::size_t tk = 0; tk < dim_k; ++tk) {
              const int dk = static_cast<int>(tk) - 2 * span_k;
              for (std::size_t tl = 0; tl < dim_l; ++tl) {
                const int dl = static_cast<int>(tl) - 2 * span_l;
                const Vec3 dg = crystal.b1() * static_cast<double>(dh) +
                                crystal.b2() * static_cast<double>(dk) +
                                crystal.b3() * static_cast<double>(dl);
                v_ion_table[(th * dim_k + tk) * dim_l + tl] =
                    ashcroft_potential(crystal, dg, config.valence_charge,
                                       config.core_radius_bohr);
              }
            }
          }
        });
    const auto v_ion_at = [&](const GVector& a, const GVector& b) {
      const std::size_t th = static_cast<std::size_t>(a.h - b.h + 2 * span_h);
      const std::size_t tk = static_cast<std::size_t>(a.k - b.k + 2 * span_k);
      const std::size_t tl = static_cast<std::size_t>(a.l - b.l + 2 * span_l);
      return v_ion_table[(th * dim_k + tk) * dim_l + tl];
    };
    parallel_for(0, n_g, parallel_grain(n_g),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) {
                     for (std::size_t j = i; j < n_g; ++j) {
                       v_ion(i, j) = v_ion_at(g[i], g[j]);
                     }
                   }
                 });
    mirror_upper(v_ion);
  }

  // Integer grid offsets for assembling V_eff(G_i - G_j) from the FFT grid.
  const auto wrap = [](int idx, std::size_t n) {
    const int ni = static_cast<int>(n);
    return static_cast<std::size_t>(((idx % ni) + ni) % ni);
  };

  ScfResult result;
  // Initial guess: uniform density with the right electron count
  // (2 electrons per valence band).
  result.density.assign(nr, static_cast<double>(2 * valence) / omega);

  // Previous iterate and residual for Anderson acceleration.
  std::vector<double> prev_density;
  std::vector<double> prev_residual;

  GroundState state;
  for (unsigned iteration = 0; iteration < config.max_iterations;
       ++iteration) {
    // Stage boundary: cooperative cancellation/deadline checkpoint and
    // the per-iteration allocation-pressure injection site. Both are a
    // single branch when no token/spec is installed.
    cancel_point();
    fault_point("scf.alloc");
    const TraceStage trace_stage(
        trace_active() ? strformat("scf[%u]", iteration) : std::string());
    // --- effective potential on the grid.
    // Hartree: V_H(G) = 4 pi n(G) / G^2, via FFT of the density.
    Grid3 density_grid(dims[0], dims[1], dims[2]);
    for (std::size_t i = 0; i < nr; ++i) {
      density_grid[i] = Complex{result.density[i], 0.0};
    }
    fft3d(density_grid, FftDirection::kForward);
    // Forward FFT yields sum_r n(r) e^{-iGr}; n(G) = that * element/Omega
    // in the convention where V_H(r) = sum_G V_H(G) e^{iGr}.
    Grid3 hartree_grid(dims[0], dims[1], dims[2]);
    for (std::size_t i = 0; i < n_g; ++i) {
      const std::size_t idx = basis.grid_index(i);
      if (g[i].g2 < 1e-12) {
        hartree_grid[idx] = Complex{};  // neutralising background
        continue;
      }
      const Complex n_of_g = density_grid[idx] * (element / omega);
      hartree_grid[idx] = kFourPi / g[i].g2 * n_of_g;
    }
    fft3d(hartree_grid, FftDirection::kInverse);
    // The inverse FFT divides by Nr; compensate to get V_H(r) = sum_G ...
    for (std::size_t i = 0; i < nr; ++i) {
      hartree_grid[i] *= static_cast<double>(nr);
    }

    std::vector<double> v_eff(nr);
    for (std::size_t i = 0; i < nr; ++i) {
      v_eff[i] = hartree_grid[i].real() + lda_vxc(result.density[i]);
    }

    // --- dense Hamiltonian: kinetic + ionic + FFT of V_eff.
    Grid3 veff_grid(dims[0], dims[1], dims[2]);
    for (std::size_t i = 0; i < nr; ++i) {
      veff_grid[i] = Complex{v_eff[i], 0.0};
    }
    fft3d(veff_grid, FftDirection::kForward);
    const double veff_norm = 1.0 / static_cast<double>(nr);

    RealMatrix hamiltonian(n_g, n_g);
    {
      TraceRegion region(KernelClass::kOther, "scf.hamiltonian");
      region.set_dims(n_g, n_g, 0);
      region.add_work(3ull * n_g * n_g,
                      3ull * n_g * n_g * sizeof(double));
      region.set_io(static_cast<Bytes>(nr) * sizeof(Complex),
                    static_cast<Bytes>(n_g) * n_g * sizeof(double));
      parallel_for(
          0, n_g, parallel_grain(n_g), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              hamiltonian(i, i) = 0.5 * g[i].g2 + v_ion(i, i) +
                                  veff_grid[0].real() * veff_norm;
              for (std::size_t j = i + 1; j < n_g; ++j) {
                const std::size_t ix = wrap(g[i].h - g[j].h, dims[0]);
                const std::size_t iy = wrap(g[i].k - g[j].k, dims[1]);
                const std::size_t iz = wrap(g[i].l - g[j].l, dims[2]);
                // Inversion-symmetric cell: V_eff(G) is real; symmetrise
                // away the residual imaginary part from the finite grid.
                hamiltonian(i, j) =
                    veff_grid.at(ix, iy, iz).real() * veff_norm + v_ion(i, j);
              }
            }
          });
      mirror_upper(hamiltonian);
    }

    // Only the lowest `bands` pairs feed the density and the band window;
    // the partial solver skips the full-spectrum QL and back-transform.
    EigenResult eigen = syevd_partial(hamiltonian, bands);

    state.valence_bands = valence;
    state.energies_ha.assign(
        eigen.eigenvalues.begin(),
        eigen.eigenvalues.begin() + static_cast<std::ptrdiff_t>(bands));
    state.orbitals = RealMatrix(n_g, bands);
    for (std::size_t b = 0; b < bands; ++b) {
      for (std::size_t i = 0; i < n_g; ++i) {
        state.orbitals(i, b) = eigen.eigenvectors(i, b);
      }
    }

    // --- new density from the occupied orbitals.
    std::vector<double> fresh(nr, 0.0);
    for (std::size_t v = 0; v < valence; ++v) {
      const Grid3 orbital = orbital_realspace(basis, state.orbitals, v);
      for (std::size_t i = 0; i < nr; ++i) {
        fresh[i] += 2.0 * std::norm(orbital[i]);
      }
    }

    // --- residual, energy bookkeeping, mixing.
    double residual2 = 0.0;
    for (std::size_t i = 0; i < nr; ++i) {
      const double d = fresh[i] - result.density[i];
      residual2 += d * d;
    }
    const double residual = std::sqrt(residual2 / static_cast<double>(nr));

    double band_energy = 0.0;
    for (std::size_t v = 0; v < valence; ++v) {
      band_energy += 2.0 * state.energies_ha[v];
    }
    // Double-counting corrections: E = sum eps - E_H - int(Vxc n) + E_xc.
    double e_h = 0.0;
    double e_xc_correction = 0.0;
    for (std::size_t i = 0; i < nr; ++i) {
      e_h += 0.5 * hartree_grid[i].real() * fresh[i];
      e_xc_correction +=
          (lda_exc(fresh[i]) - lda_vxc(fresh[i])) * fresh[i];
    }
    ScfStep step;
    step.iteration = iteration;
    step.density_residual = residual;
    step.total_energy_ha =
        band_energy - e_h * element + e_xc_correction * element;
    step.gap_ev =
        (state.energies_ha[valence] - state.energies_ha[valence - 1]) *
        kEvPerHa;
    result.history.push_back(step);

    // --- mixing update.
    std::vector<double> residual_vec(nr);
    for (std::size_t i = 0; i < nr; ++i) {
      residual_vec[i] = fresh[i] - result.density[i];
    }
    if (config.scheme == MixingScheme::kAnderson && !prev_density.empty()) {
      // Two-point Anderson: choose theta minimising
      // ||(1-theta) r_k + theta r_{k-1}||^2, then mix the blended iterate.
      double num = 0.0;
      double den = 0.0;
      for (std::size_t i = 0; i < nr; ++i) {
        const double dr = residual_vec[i] - prev_residual[i];
        num += residual_vec[i] * dr;
        den += dr * dr;
      }
      double theta = den > 1e-30 ? num / den : 0.0;
      theta = std::clamp(theta, -1.0, 1.0);  // keep the update tame
      for (std::size_t i = 0; i < nr; ++i) {
        const double blended_n = (1.0 - theta) * result.density[i] +
                                 theta * prev_density[i];
        const double blended_r = (1.0 - theta) * residual_vec[i] +
                                 theta * prev_residual[i];
        prev_density[i] = result.density[i];
        prev_residual[i] = residual_vec[i];
        result.density[i] =
            std::max(blended_n + config.mixing * blended_r, 0.0);
      }
    } else {
      prev_density = result.density;
      prev_residual = residual_vec;
      for (std::size_t i = 0; i < nr; ++i) {
        result.density[i] = std::max(
            result.density[i] + config.mixing * residual_vec[i], 0.0);
      }
    }

    if (residual < config.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.state = std::move(state);
  return result;
}

}  // namespace ndft::dft
