#pragma once
// Empirical-pseudopotential (Cohen-Bergstresser) ground state for silicon.
//
// Diagonalising H(G,G') = |G|^2/2 * delta_GG' + V_ps(G-G') on the
// plane-wave basis yields realistic valence/conduction orbitals for the
// silicon systems the paper evaluates, at a cost small enough to run the
// functional LR-TDDFT pipeline end-to-end. With the bond-centred diamond
// geometry the structure factor is real, so H is real symmetric and the
// paper's SYEVD kernel is exercised directly.

#include <vector>

#include "dft/basis.hpp"
#include "dft/linalg.hpp"

namespace ndft::dft {

/// Ground-state result: Kohn-Sham-like orbitals on the plane-wave basis.
struct GroundState {
  std::vector<double> energies_ha;  ///< band energies, ascending (Hartree)
  RealMatrix orbitals;              ///< column j = orbital j over G vectors
  std::size_t valence_bands = 0;    ///< #occupied bands (2 per Si atom)

  /// Energy gap between highest valence and lowest conduction band (eV).
  double band_gap_ev() const;
};

/// Cohen-Bergstresser silicon form factors, in Hartree, keyed by
/// |G|^2 in units of (2*pi/a0)^2 (shells 3, 8 and 11).
double silicon_form_factor(double g2_units);

/// Local EPM potential matrix element V(G - G') for the given crystal.
/// Returns the real (bond-centred symmetric) value.
double epm_potential(const Crystal& crystal, const GVector& g,
                     const GVector& gp);

/// Solves the EPM eigenproblem on the basis. `bands` limits how many
/// eigenpairs are retained (0 keeps all). `count` accumulates the SYEVD
/// plus Hamiltonian-assembly cost.
GroundState solve_epm(const PlaneWaveBasis& basis, std::size_t bands = 0,
                      OpCount* count = nullptr);

}  // namespace ndft::dft
