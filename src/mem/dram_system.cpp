#include "mem/dram_system.hpp"

#include "common/str_util.hpp"
#include "common/units.hpp"

namespace ndft::mem {

DramConfig DramConfig::xeon_ddr4() {
  DramConfig c{};
  c.timing = DramTiming::ddr4_2400();
  c.geometry = DramGeometry::ddr4_16gb_channel();
  c.channels = 4;
  c.line_bytes = 64;
  c.access_latency_ps = 50 * kPsPerNs;  // uncore + board traversal
  return c;
}

DramConfig DramConfig::hbm2_stack() {
  DramConfig c{};
  c.timing = DramTiming::hbm2_1000();
  c.geometry = DramGeometry::hbm2_512mb_channel();
  c.channels = 8;
  c.line_bytes = 64;
  c.access_latency_ps = 2 * kPsPerNs;  // TSV hop inside the stack
  return c;
}

DramSystem::DramSystem(std::string name, sim::EventQueue& queue,
                       const DramConfig& config)
    : SimObject(std::move(name), queue),
      config_(config),
      map_(config.channels, config.geometry, config.line_bytes) {
  channels_.reserve(config.channels);
  ports_.reserve(config.channels);
  senders_.reserve(config.channels);
  for (unsigned i = 0; i < config.channels; ++i) {
    channels_.push_back(std::make_unique<DramChannel>(
        this->name() + ".ch" + std::to_string(i), queue, config.timing,
        config.geometry, map_, config.page_policy, config.queue_depth));
    ports_.push_back(std::make_unique<sim::OutputPort<ChannelRequest>>());
    ports_.back()->bind(channels_.back()->ingress());
    senders_.push_back(std::make_unique<sim::CreditedSender<ChannelRequest>>(
        queue, *ports_.back(), &channels_.back()->stats()));
  }
}

void DramSystem::access(MemRequest req) {
  const DramCoord coord = map_.decode(req.addr);
  NDFT_ASSERT(coord.channel < channels_.size());
  if (config_.access_latency_ps == 0) {
    const Bytes size = req.size;
    senders_[coord.channel]->push(ChannelRequest{std::move(req), coord},
                                  size);
    return;
  }
  // Interconnect hop between the requester and the controller.
  queue().schedule_after(
      config_.access_latency_ps,
      [this, req = std::move(req), coord]() mutable {
        const Bytes size = req.size;
        senders_[coord.channel]->push(ChannelRequest{std::move(req), coord},
                                      size);
      });
}

Bytes DramSystem::bytes_transferred() const noexcept {
  Bytes total = 0;
  for (const auto& channel : channels_) {
    total += channel->bytes_transferred();
  }
  return total;
}

double DramSystem::energy_nj(const DramEnergy& energy) const {
  double total = 0.0;
  for (const auto& channel : channels_) {
    total += channel->energy_nj(energy);
  }
  return total;
}

double DramSystem::dynamic_energy_nj(const DramEnergy& energy) const {
  double total = 0.0;
  for (const auto& channel : channels_) {
    total += channel->dynamic_energy_nj(energy);
  }
  return total;
}

void DramSystem::collect_stats(const std::string& prefix,
                               sim::StatSet& out) const {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    channels_[i]->publish_stats();
    out.merge_prefixed(prefix + ".ch" + std::to_string(i),
                       channels_[i]->stats());
  }
}

}  // namespace ndft::mem
