#include "dft/pseudopotential.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>

namespace ndft::dft {
namespace {

constexpr double kFourPi = 4.0 * std::numbers::pi;

/// Real spherical harmonics * radial form for the 4 KB channels.
/// Channel 0: s. Channels 1-3: p_x, p_y, p_z.
double channel_angular(std::size_t channel, const Vec3& g, double gnorm) {
  const double y00 = 1.0 / std::sqrt(kFourPi);
  if (channel == 0) {
    return y00;
  }
  if (gnorm < 1e-12) {
    return 0.0;  // p projectors vanish at G = 0
  }
  const double y1 = std::sqrt(3.0 / kFourPi);
  switch (channel) {
    case 1: return y1 * g.x / gnorm;
    case 2: return y1 * g.y / gnorm;
    case 3: return y1 * g.z / gnorm;
    default: NDFT_ASSERT(false); return 0.0;
  }
}

}  // namespace

KbProjectors::KbProjectors(const PlaneWaveBasis& basis, double sigma_bohr)
    : basis_(&basis) {
  NDFT_REQUIRE(sigma_bohr > 0.0, "projector width must be positive");
  const auto& g = basis.gvectors();
  const auto& atoms = basis.crystal().positions();
  const std::size_t n_proj = atoms.size() * kProjectorsPerAtom;
  coefficients_ = ComplexMatrix(n_proj, g.size());
  couplings_.resize(n_proj);

  // Model coupling constants (Hartree): attractive s, repulsive p; the
  // split mirrors typical norm-conserving Si pseudopotentials.
  constexpr double kCouplingS = -0.6;
  constexpr double kCouplingP = 0.35;

  for (std::size_t a = 0; a < atoms.size(); ++a) {
    for (std::size_t ch = 0; ch < kProjectorsPerAtom; ++ch) {
      const std::size_t p = a * kProjectorsPerAtom + ch;
      couplings_[p] = (ch == 0) ? kCouplingS : kCouplingP;
      for (std::size_t i = 0; i < g.size(); ++i) {
        const double gnorm = std::sqrt(g[i].g2);
        // Gaussian radial form: s ~ exp(-g^2 s^2/2), p ~ g exp(-g^2 s^2/2).
        double radial =
            std::exp(-0.5 * g[i].g2 * sigma_bohr * sigma_bohr);
        if (ch != 0) {
          radial *= gnorm * sigma_bohr;
        }
        const double angular = channel_angular(ch, g[i].g, gnorm);
        // Structure phase anchors the projector on its atom.
        const double phase = -g[i].g.dot(atoms[a]);
        coefficients_(p, i) = radial * angular *
                              Complex{std::cos(phase), std::sin(phase)};
      }
    }
  }
}

std::vector<Complex> KbProjectors::project(
    const std::vector<Complex>& in) const {
  NDFT_REQUIRE(in.size() == basis_->size(),
               "wavefunction length must match the basis");
  std::vector<Complex> result(count());
  for (std::size_t p = 0; p < count(); ++p) {
    Complex acc{};
    const Complex* row = coefficients_.row(p);
    for (std::size_t i = 0; i < in.size(); ++i) {
      acc += std::conj(row[i]) * in[i];
    }
    result[p] = acc;
  }
  return result;
}

void KbProjectors::apply(const std::vector<Complex>& in,
                         std::vector<Complex>& out, OpCount* count) const {
  NDFT_REQUIRE(in.size() == basis_->size(),
               "wavefunction length must match the basis");
  if (out.size() != in.size()) {
    out.assign(in.size(), Complex{});
  }
  const std::vector<Complex> amplitudes = project(in);
  for (std::size_t p = 0; p < amplitudes.size(); ++p) {
    const Complex weight = couplings_[p] * amplitudes[p];
    const Complex* row = coefficients_.row(p);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += weight * row[i];
    }
  }
  if (count != nullptr) {
    // Projection + expansion: two complex dot/axpy passes per projector.
    count->add(16ull * amplitudes.size() * in.size(),
               2ull * amplitudes.size() * in.size() * sizeof(Complex));
  }
}

double PseudoSizing::grid_density() const {
  NDFT_REQUIRE(ecut_ha > 0.0, "cutoff must be positive");
  const double kmax = std::sqrt(2.0 * ecut_ha);
  const double spacing = std::numbers::pi / kmax;
  return 1.0 / (spacing * spacing * spacing);
}

std::size_t PseudoSizing::sphere_points(bool dense) const {
  const double r = cutoff_radius_bohr;
  const double volume = 4.0 / 3.0 * std::numbers::pi * r * r * r;
  double density = grid_density();
  if (dense) {
    density *= static_cast<double>(dense_factor) * dense_factor *
               dense_factor;
  }
  return static_cast<std::size_t>(volume * density);
}

Bytes PseudoSizing::bytes_per_atom() const {
  const std::size_t dense_points = sphere_points(/*dense=*/true);
  const Bytes projector_values =
      static_cast<Bytes>(projectors) * dense_points * sizeof(double);
  const std::size_t q_pairs = projectors * (projectors + 1) / 2;
  const Bytes augmentation =
      static_cast<Bytes>(q_pairs) * dense_points * sizeof(double);
  const Bytes radial_tables =
      static_cast<Bytes>(projectors) * radial_points * sizeof(double);
  const Bytes coupling_matrix =
      static_cast<Bytes>(projectors) * projectors * sizeof(double);
  const Bytes index_map =
      static_cast<Bytes>(dense_points) * sizeof(std::int32_t);
  const Bytes header = 64;  // atom id, species, extents, counts
  return projector_values + augmentation + radial_tables + coupling_matrix +
         index_map + header;
}

}  // namespace ndft::dft
