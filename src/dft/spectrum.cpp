#include "dft/spectrum.hpp"

#include <cmath>
#include <numbers>

namespace ndft::dft {
namespace {

constexpr double kEvPerHa = 27.211386;

}  // namespace

std::vector<double> momentum_matrix_elements(const PlaneWaveBasis& basis,
                                             const GroundState& ground,
                                             const LrTddftConfig& config) {
  const std::size_t nv_total = ground.valence_bands;
  const std::size_t nv = (config.valence_window == 0)
                             ? nv_total
                             : std::min(config.valence_window, nv_total);
  const std::size_t nc = config.conduction_window;
  NDFT_REQUIRE(ground.energies_ha.size() >= nv_total + nc,
               "ground state carries too few conduction bands");
  const auto& g = basis.gvectors();

  std::vector<double> result;
  result.reserve(nv * nc);
  for (std::size_t v = nv_total - nv; v < nv_total; ++v) {
    for (std::size_t c = nv_total; c < nv_total + nc; ++c) {
      // <v| p |c> = sum_G conj(c_v(G)) (G) c_c(G): for real coefficients
      // the matrix element is purely imaginary; accumulate |.|^2 per
      // Cartesian direction.
      Vec3 moment{};
      for (std::size_t i = 0; i < basis.size(); ++i) {
        const double w = ground.orbitals(i, v) * ground.orbitals(i, c);
        moment = moment + g[i].g * w;
      }
      result.push_back(moment.norm2());
    }
  }
  return result;
}

std::vector<OscillatorLine> oscillator_strengths(
    const PlaneWaveBasis& basis, const GroundState& ground,
    const LrTddftConfig& config) {
  LrTddftConfig solve_config = config;
  solve_config.keep_eigenvectors = true;
  const LrTddftResult result =
      solve_lrtddft(basis, ground, solve_config);

  // Per-pair momentum vectors (directional, not squared): recompute the
  // three components so excitation amplitudes can interfere correctly.
  const std::size_t nv_total = ground.valence_bands;
  const std::size_t nv = (config.valence_window == 0)
                             ? nv_total
                             : std::min(config.valence_window, nv_total);
  const std::size_t nc = config.conduction_window;
  const auto& g = basis.gvectors();
  std::vector<Vec3> moments;
  moments.reserve(nv * nc);
  for (std::size_t v = nv_total - nv; v < nv_total; ++v) {
    for (std::size_t c = nv_total; c < nv_total + nc; ++c) {
      Vec3 moment{};
      for (std::size_t i = 0; i < basis.size(); ++i) {
        const double w = ground.orbitals(i, v) * ground.orbitals(i, c);
        moment = moment + g[i].g * w;
      }
      moments.push_back(moment);
    }
  }

  std::vector<OscillatorLine> lines;
  lines.reserve(result.excitations_ha.size());
  for (std::size_t x = 0; x < result.excitations_ha.size(); ++x) {
    const double omega = result.excitations_ha[x];
    // Casida eigenvectors are complex (Hermitian response matrix), so the
    // Cartesian amplitudes interfere as complex sums; the strength takes
    // their squared moduli.
    Complex ax{};
    Complex ay{};
    Complex az{};
    for (std::size_t p = 0; p < result.pair_count; ++p) {
      const Complex weight = result.eigenvectors(p, x);
      ax += moments[p].x * weight;
      ay += moments[p].y * weight;
      az += moments[p].z * weight;
    }
    const double amplitude2 =
        std::norm(ax) + std::norm(ay) + std::norm(az);
    OscillatorLine line;
    line.energy_ev = omega * kEvPerHa;
    line.strength =
        omega > 1e-12 ? 2.0 / (3.0 * omega) * amplitude2 : 0.0;
    lines.push_back(line);
  }
  return lines;
}

std::vector<double> absorption_spectrum(
    const std::vector<OscillatorLine>& lines,
    const std::vector<double>& energies_ev, double gamma_ev) {
  NDFT_REQUIRE(gamma_ev > 0.0, "broadening must be positive");
  std::vector<double> sigma(energies_ev.size(), 0.0);
  for (std::size_t e = 0; e < energies_ev.size(); ++e) {
    for (const OscillatorLine& line : lines) {
      const double delta = energies_ev[e] - line.energy_ev;
      sigma[e] += line.strength * (gamma_ev / std::numbers::pi) /
                  (delta * delta + gamma_ev * gamma_ev);
    }
  }
  return sigma;
}

}  // namespace ndft::dft
