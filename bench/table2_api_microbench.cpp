// Exercises Table II: latency and bandwidth microbenchmarks of the NDFT
// shared-memory programming interface, separating intra-stack accesses
// (SPM-backed) from inter-stack accesses (arbiter + mesh).

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "ndp/ndp_system.hpp"
#include "runtime/shared_memory.hpp"

using namespace ndft;

namespace {

/// Runs one timed API call and returns its completion latency.
template <typename Fn>
TimePs timed(sim::EventQueue& queue, Fn&& call) {
  const TimePs start = queue.now();
  TimePs end = start;
  call([&end](TimePs at) { end = at; });
  queue.run();
  return end - start;
}

}  // namespace

int main() {
  std::printf("Table II microbenchmark: NDFT shared-memory API\n\n");

  sim::EventQueue queue;
  ndp::NdpSystem ndp("ndp", queue, ndp::NdpSystemConfig::table3());
  runtime::SharedMemoryManager shm("shm", queue, ndp,
                                   runtime::SharedMemoryConfig{});

  TextTable table({"API call", "payload", "latency", "effective GB/s"});
  const auto add = [&](const char* name, Bytes bytes, TimePs latency) {
    const double gbps =
        latency == 0 ? 0.0
                     : static_cast<double>(bytes) /
                           static_cast<double>(latency);  // B/ps = TB/s
    table.add_row({name, format_bytes(bytes), format_time(latency),
                   strformat("%.2f", gbps * 1000.0)});
  };

  // Alloc + intra-stack read/write on a 16 KiB block owned by unit 0.
  const runtime::SharedBlock block = shm.alloc_shared(16 * 1024, 0);
  add("NDFT_Alloc_Shared(16 KiB)", 16 * 1024, 0);
  for (const Bytes size : {Bytes{256}, Bytes{4096}, Bytes{16384}}) {
    add("NDFT_Read (intra-stack)", size,
        timed(queue, [&](auto cb) { shm.read(block, size, cb); }));
    add("NDFT_Write (intra-stack)", size,
        timed(queue, [&](auto cb) { shm.write(block, size, cb); }));
  }

  // Remote reads: first touch crosses the mesh, the second hits the
  // arbiter's staging filter.
  for (const unsigned requester : {1u, 15u}) {
    const std::string label =
        strformat("NDFT_Read_Remote (stack %u, cold)", requester);
    add(label.c_str(), 16384, timed(queue, [&](auto cb) {
          shm.read_remote(block, 16384, requester, cb);
        }));
    const std::string warm =
        strformat("NDFT_Read_Remote (stack %u, staged)", requester);
    add(warm.c_str(), 16384, timed(queue, [&](auto cb) {
          shm.read_remote(block, 16384, requester, cb);
        }));
  }
  add("NDFT_Write_Remote (stack 15)", 16384, timed(queue, [&](auto cb) {
        shm.write_remote(block, 16384, 15, cb);
      }));
  add("NDFT_Broadcast (16 KiB to 15 stacks)", 16384 * 15,
      timed(queue, [&](auto cb) { shm.broadcast(block, cb); }));

  std::printf("%s\n", table.render().c_str());
  std::printf("staging filter: %llu hits, %llu misses; intra %s, inter %s\n",
              static_cast<unsigned long long>(shm.staging_hits()),
              static_cast<unsigned long long>(shm.staging_misses()),
              format_bytes(shm.intra_stack_bytes()).c_str(),
              format_bytes(shm.inter_stack_bytes()).c_str());
  return 0;
}
