// Unit tests for the common substrate: PRNG, math helpers, units/clocks,
// string formatting and the table printer.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace ndft {
namespace {

TEST(PrngTest, DeterministicForSameSeed) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(PrngTest, DifferentSeedsDiverge) {
  Prng a(1);
  Prng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(PrngTest, NextBelowStaysInRange) {
  Prng prng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 30}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(prng.next_below(bound), bound);
    }
  }
}

TEST(PrngTest, NextBelowHandlesLargeBounds) {
  Prng prng(9);
  const std::uint64_t bound = (1ull << 40) + 12345;
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(prng.next_below(bound), bound);
  }
}

TEST(PrngTest, DoubleInUnitInterval) {
  Prng prng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = prng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // uniform mean
}

TEST(PrngTest, NormalHasUnitVarianceRoughly) {
  Prng prng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = prng.next_normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.1);
}

TEST(PrngTest, BernoulliMatchesProbability) {
  Prng prng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (prng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(ceil_div<std::uint64_t>(0, 4), 0u);
  EXPECT_EQ(ceil_div<std::uint64_t>(1, 4), 1u);
  EXPECT_EQ(ceil_div<std::uint64_t>(4, 4), 1u);
  EXPECT_EQ(ceil_div<std::uint64_t>(5, 4), 2u);
}

TEST(MathUtilTest, RoundUp) {
  EXPECT_EQ(round_up<std::uint64_t>(0, 64), 0u);
  EXPECT_EQ(round_up<std::uint64_t>(1, 64), 64u);
  EXPECT_EQ(round_up<std::uint64_t>(64, 64), 64u);
  EXPECT_EQ(round_up<std::uint64_t>(65, 64), 128u);
}

TEST(MathUtilTest, PowersOfTwo) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
  EXPECT_EQ(log2_floor(5), 2u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4096), 4096u);
}

TEST(MathUtilTest, BitsExtraction) {
  EXPECT_EQ(bits(0b1101100, 2, 3), 0b011u);
  EXPECT_EQ(bits(0xFF00, 8, 8), 0xFFu);
  EXPECT_EQ(bits(0, 5, 7), 0u);
}

TEST(MathUtilTest, RelativeDifference) {
  EXPECT_DOUBLE_EQ(relative_difference(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_difference(1.0, 1.1), 0.0909, 1e-3);
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.1));
}

TEST(ClockTest, PeriodAndConversion) {
  const Clock clock(2000);  // 2 GHz
  EXPECT_EQ(clock.period_ps(), 500u);
  EXPECT_EQ(clock.to_ps(4), 2000u);
  EXPECT_EQ(clock.to_cycles(2400), 4u);
}

TEST(ClockTest, NextEdgeRoundsUp) {
  const Clock clock(1000);  // 1 GHz, 1000 ps period
  EXPECT_EQ(clock.next_edge(0), 0u);
  EXPECT_EQ(clock.next_edge(1), 1000u);
  EXPECT_EQ(clock.next_edge(1000), 1000u);
  EXPECT_EQ(clock.next_edge(1001), 2000u);
}

TEST(ClockTest, RejectsZeroFrequency) {
  EXPECT_THROW(Clock(0), NdftError);
}

TEST(UnitsTest, ByteLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648ull);
}

TEST(UnitsTest, TransferTime) {
  // 1 GB at 1 GB/s = 1 second = 1e12 ps.
  EXPECT_NEAR(static_cast<double>(transfer_time_ps(1000000000ull, 1.0)),
              1e12, 1e9);
  // 64 B at 64 GB/s = 1 ns.
  EXPECT_EQ(transfer_time_ps(64, 64.0), 1000u);
}

TEST(StrUtilTest, Formatting) {
  EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4096), "4.00 KiB");
  EXPECT_EQ(format_speedup(2.5), "2.50x");
  EXPECT_EQ(format_percent(0.5515), "55.15 %");
}

TEST(StrUtilTest, FormatTimeUnits) {
  EXPECT_EQ(format_time(500), "500 ps");
  EXPECT_EQ(format_time(1500), "1.50 ns");
  EXPECT_EQ(format_time(2500000), "2.50 us");
  EXPECT_EQ(format_time(3 * kPsPerMs), "3.00 ms");
  EXPECT_EQ(format_time(2 * kPsPerSec), "2.000 s");
}

TEST(StrUtilTest, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_right("abcdef", 3), "abc");
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), NdftError);
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable table({"k", "v"});
  table.add_row({"a,b", "say \"hi\""});
  const std::string csv = table.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(ErrorTest, AssertMacroThrows) {
  EXPECT_THROW([] { NDFT_ASSERT(1 == 2); }(), NdftError);
  EXPECT_NO_THROW([] { NDFT_ASSERT(1 == 1); }());
  EXPECT_THROW([] { NDFT_REQUIRE(false, "nope"); }(), NdftError);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();
  pool.resize(4);
  const std::size_t n = 100000;
  std::vector<int> hits(n, 0);
  parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  pool.resize(original_threads);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPoolTest, SmallRangesRunInline) {
  // A range at or below the grain must execute as one chunk on the
  // calling thread.
  std::atomic<int> calls{0};
  parallel_for(10, 20, 16, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 10u);
    EXPECT_EQ(hi, 20u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();
  pool.resize(4);
  std::vector<int> hits(4096, 0);
  parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t outer = lo; outer < hi; ++outer) {
      parallel_for(0, 512, 1, [&](std::size_t ilo, std::size_t ihi) {
        for (std::size_t i = ilo; i < ihi; ++i) ++hits[outer * 512 + i];
      });
    }
  });
  pool.resize(original_threads);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPoolTest, EnvThreadCountParsesStrictly) {
  // Well-formed positive integers pass through.
  EXPECT_EQ(thread_count_from_env("1"), 1u);
  EXPECT_EQ(thread_count_from_env("8"), 8u);
  EXPECT_EQ(thread_count_from_env("512"), 512u);
  // Regression: strtol's longest-prefix parse used to accept trailing
  // garbage ("8x" ran with 8 threads). Malformed values must be
  // rejected (0 = fall back to hardware concurrency).
  EXPECT_EQ(thread_count_from_env("8x"), 0u);
  EXPECT_EQ(thread_count_from_env("x8"), 0u);
  EXPECT_EQ(thread_count_from_env("8 "), 0u);
  EXPECT_EQ(thread_count_from_env("3.5"), 0u);
  EXPECT_EQ(thread_count_from_env(""), 0u);
  EXPECT_EQ(thread_count_from_env(nullptr), 0u);
  EXPECT_EQ(thread_count_from_env("0"), 0u);
  EXPECT_EQ(thread_count_from_env("-4"), 0u);
}

TEST(ThreadPoolTest, EnvThreadCountClampsAbsurdValues) {
  bool clamped = false;
  EXPECT_EQ(thread_count_from_env("100000", &clamped), kMaxPoolThreads);
  EXPECT_TRUE(clamped);
  // Overflowing strtol entirely still clamps rather than wrapping.
  clamped = false;
  EXPECT_EQ(thread_count_from_env("99999999999999999999999", &clamped),
            kMaxPoolThreads);
  EXPECT_TRUE(clamped);
  EXPECT_EQ(thread_count_from_env("-99999999999999999999999"), 0u);
  // In-range values do not report a clamp.
  clamped = true;
  EXPECT_EQ(thread_count_from_env("2", &clamped), 2u);
  EXPECT_FALSE(clamped);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();
  pool.resize(2);
  EXPECT_THROW(
      parallel_for(0, 10000, 1,
                   [&](std::size_t lo, std::size_t) {
                     if (lo == 0) throw NdftError("boom");
                   }),
      NdftError);
  pool.resize(original_threads);
}

TEST(TypesTest, EnumNames) {
  EXPECT_STREQ(to_string(DeviceKind::kCpu), "CPU");
  EXPECT_STREQ(to_string(DeviceKind::kNdp), "NDP");
  EXPECT_STREQ(to_string(DeviceKind::kGpu), "GPU");
  EXPECT_STREQ(to_string(AccessPattern::kBlocked), "blocked");
  EXPECT_STREQ(to_string(KernelClass::kFft), "FFT");
  EXPECT_STREQ(to_string(KernelClass::kAlltoall), "Alltoall");
}

}  // namespace
}  // namespace ndft
