#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/str_util.hpp"

namespace ndft {
namespace {

const char* type_name(Json::Type type) {
  switch (type) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kInt: return "int";
    case Json::Type::kUint: return "uint";
    case Json::Type::kDouble: return "double";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(Json::Type have, const char* want) {
  throw NdftError(strformat("json: value is %s, wanted %s",
                            type_name(have), want));
}

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; emit null like most tolerant writers.
    out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
  // Keep a trailing marker so integral doubles stay doubles on reparse.
  if (out.find_first_of(".eE", out.size() - std::strlen(buffer)) ==
      std::string::npos) {
    out += ".0";
  }
}

/// Recursive-descent parser over a raw byte range.
class Parser {
 public:
  Parser(const char* begin, const char* end) : cur_(begin), begin_(begin),
                                               end_(end) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (cur_ != end_) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw NdftError(strformat("json parse error at byte %zu: %s",
                              static_cast<std::size_t>(cur_ - begin_),
                              what.c_str()));
  }

  void skip_ws() {
    while (cur_ != end_ &&
           (*cur_ == ' ' || *cur_ == '\t' || *cur_ == '\n' ||
            *cur_ == '\r')) {
      ++cur_;
    }
  }

  char peek() {
    if (cur_ == end_) fail("unexpected end of input");
    return *cur_;
  }

  void expect(char c) {
    if (cur_ == end_ || *cur_ != c) {
      fail(strformat("expected '%c'", c));
    }
    ++cur_;
  }

  bool consume_literal(const char* literal) {
    const char* p = cur_;
    for (const char* l = literal; *l != '\0'; ++l, ++p) {
      if (p == end_ || *p != *l) return false;
    }
    cur_ = p;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    skip_ws();
    if (peek() == '}') { ++cur_; return object; }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.set(key, parse_value());
      skip_ws();
      if (peek() == ',') { ++cur_; continue; }
      expect('}');
      return object;
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    skip_ws();
    if (peek() == ']') { ++cur_; return array; }
    for (;;) {
      array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++cur_; continue; }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (cur_ == end_) fail("unterminated string");
      const char c = *cur_++;
      if (c == '"') return out;
      if (c != '\\') { out += c; continue; }
      if (cur_ == end_) fail("unterminated escape");
      const char esc = *cur_++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (end_ - cur_ < 4) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *cur_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the code point (BMP only; surrogate pairs are
          // not produced by our own writer).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const char* start = cur_;
    if (cur_ != end_ && *cur_ == '-') ++cur_;
    bool integral = true;
    while (cur_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*cur_)) ||
            *cur_ == '.' || *cur_ == 'e' || *cur_ == 'E' || *cur_ == '+' ||
            *cur_ == '-')) {
      if (*cur_ == '.' || *cur_ == 'e' || *cur_ == 'E') integral = false;
      ++cur_;
    }
    if (cur_ == start) fail("expected a value");
    const std::string token(start, cur_);
    errno = 0;
    if (integral) {
      if (token[0] == '-') {
        char* end = nullptr;
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return Json(v);
        }
      } else {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          // Small non-negative integers stay uint, matching the writer.
          return Json(v);
        }
      }
      // Out-of-range integer literal: fall through to double.
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json(v);
  }

  const char* cur_;
  const char* begin_;
  const char* end_;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) kind_error(type_, "bool");
  return bool_;
}

std::int64_t Json::as_int() const {
  switch (type_) {
    case Type::kInt: return int_;
    case Type::kUint:
      if (uint_ > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max())) {
        throw NdftError("json: uint value out of int64 range");
      }
      return static_cast<std::int64_t>(uint_);
    case Type::kDouble:
      // Range-check before the cast: out-of-range (or NaN) conversion to
      // integer is undefined behavior, and this accessor ingests
      // externally produced documents.
      if (!(double_ >= -9223372036854775808.0 &&  // -2^63
            double_ < 9223372036854775808.0)) {   // 2^63
        throw NdftError("json: double value out of int64 range");
      }
      return static_cast<std::int64_t>(double_);
    default: kind_error(type_, "number");
  }
}

std::uint64_t Json::as_uint() const {
  switch (type_) {
    case Type::kUint: return uint_;
    case Type::kInt:
      if (int_ < 0) throw NdftError("json: negative value as uint");
      return static_cast<std::uint64_t>(int_);
    case Type::kDouble:
      if (!(double_ >= 0.0 &&
            double_ < 18446744073709551616.0)) {  // 2^64
        throw NdftError("json: double value out of uint64 range");
      }
      return static_cast<std::uint64_t>(double_);
    default: kind_error(type_, "number");
  }
}

double Json::as_double() const {
  switch (type_) {
    case Type::kDouble: return double_;
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUint: return static_cast<double>(uint_);
    // JSON cannot represent NaN/Inf; the writer collapses them to null,
    // and they read back as NaN so a stored result stays ingestible.
    case Type::kNull: return std::numeric_limits<double>::quiet_NaN();
    default: kind_error(type_, "number");
  }
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) kind_error(type_, "string");
  return string_;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) kind_error(type_, "array");
  array_.push_back(std::move(value));
}

const Json& Json::operator[](std::size_t index) const {
  if (type_ != Type::kArray) kind_error(type_, "array");
  if (index >= array_.size()) {
    throw NdftError(strformat("json: index %zu out of range (size %zu)",
                              index, array_.size()));
  }
  return array_[index];
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) kind_error(type_, "array");
  return array_;
}

void Json::set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) kind_error(type_, "object");
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

bool Json::has(const std::string& key) const noexcept {
  return find(key) != nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw NdftError(strformat("json: missing member \"%s\"", key.c_str()));
  }
  return *value;
}

const Json* Json::find(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) kind_error(type_, "object");
  return object_;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += strformat("%lld",
                                      static_cast<long long>(int_)); break;
    case Type::kUint:
      out += strformat("%llu", static_cast<unsigned long long>(uint_));
      break;
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.parse_document();
}

}  // namespace ndft
