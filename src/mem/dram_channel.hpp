#pragma once
// One DRAM channel: per-bank row-buffer state machines, an FR-FCFS request
// queue, a shared data bus, FAW/RRD activate throttling and periodic
// refresh. Transaction-level: each request is scheduled analytically from
// the bank/bus state instead of replaying individual ACT/PRE commands as
// separate events, which keeps large benches fast while preserving
// row-hit/miss/conflict behaviour.
//
// The channel fronts the fabric with a bounded manual-credit ingress
// Connection: a credit is consumed when a request enters the controller
// and returned when its data transfer retires, so at most
// `queue_depth` requests are outstanding inside the controller and a
// saturating producer back-pressures (stages in the DramSystem's
// CreditedSender) instead of growing an unbounded request queue.

#include <deque>
#include <vector>

#include "mem/address_map.hpp"
#include "mem/dram_timing.hpp"
#include "mem/energy.hpp"
#include "mem/mem_request.hpp"
#include "sim/port.hpp"
#include "sim/sim_object.hpp"

namespace ndft::mem {

/// Hot-path event counters; publish_stats() copies them into the StatSet.
struct DramCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;
  double refresh_stall_ps = 0.0;
  double latency_ps_total = 0.0;
  std::uint64_t refreshes = 0;
};

/// One request on a channel's ingress connection.
struct ChannelRequest {
  MemRequest req;
  DramCoord coord;
};

/// A single DRAM channel with FR-FCFS scheduling.
class DramChannel : public sim::SimObject {
 public:
  DramChannel(std::string name, sim::EventQueue& queue,
              const DramTiming& timing, const DramGeometry& geometry,
              const AddressMap& map, PagePolicy policy = PagePolicy::kOpen,
              std::size_t queue_depth = 4096);

  /// Enqueues one line-granularity request for this channel directly
  /// (bypassing the credited ingress — unit tests and legacy callers).
  /// The coordinate must belong to this channel.
  void enqueue(MemRequest req, const DramCoord& coord);

  /// The bounded ingress port; DramSystem sends ChannelRequests through
  /// it. Credits (== controller queue slots) return as requests retire.
  sim::Connection<ChannelRequest>& ingress() noexcept { return ingress_; }

  /// Requests waiting or in flight.
  std::size_t pending() const noexcept { return queue_depth_; }

  /// Bytes transferred so far (reads + writes).
  Bytes bytes_transferred() const noexcept { return bytes_; }

  /// Raw event counters.
  const DramCounters& counters() const noexcept { return counters_; }

  /// Copies the counters into the StatSet (call before reading stats()).
  void publish_stats();

  /// Energy consumed so far under the given parameters (nJ); the
  /// background term uses the queue's current time.
  double energy_nj(const DramEnergy& energy) const;

  /// Dynamic (command) energy only, without the background term. Use this
  /// when the caller accounts for background power over a differently
  /// scaled time base (sampled-trace execution).
  double dynamic_energy_nj(const DramEnergy& energy) const;

 private:
  struct BankState {
    bool row_open = false;
    unsigned open_row = 0;
    TimePs ready_at = 0;      ///< earliest time the next column command may start
    TimePs precharge_ok = 0;  ///< earliest time a PRE may complete (tRAS)
  };

  struct Pending {
    MemRequest req;
    DramCoord coord;
    TimePs arrival;
    bool credited;  ///< arrived via ingress(): return the credit at retire
  };

  static sim::LinkConfig ingress_link(std::size_t queue_depth);

  void enqueue_pending(Pending pending);

  /// Drains the queue with FR-FCFS order, analytically scheduling each
  /// request's data transfer and completion callback.
  void drain();

  /// Advances `t` past any refresh windows it collides with.
  TimePs apply_refresh(TimePs t);

  /// Picks the next request index: oldest row-hit first, then oldest.
  std::size_t pick_next() const;

  TimePs cycles(unsigned n) const noexcept { return timing_.tCK_ps * n; }

  DramTiming timing_;
  DramGeometry geometry_;
  PagePolicy policy_;
  const AddressMap* map_;
  sim::Connection<ChannelRequest> ingress_;
  std::vector<BankState> banks_;
  std::deque<Pending> queue_;
  std::size_t queue_depth_ = 0;
  bool drain_scheduled_ = false;
  TimePs bus_free_at_ = 0;
  TimePs last_write_end_ = 0;       ///< for write-to-read turnaround
  std::deque<TimePs> recent_acts_;  ///< activate timestamps for FAW
  TimePs next_refresh_ = 0;
  Bytes bytes_ = 0;
  DramCounters counters_;
};

}  // namespace ndft::mem
