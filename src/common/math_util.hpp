#pragma once
// Small integer/floating-point helpers used across the simulator and the
// numerical library.

#include <cstdint>
#include <type_traits>

#include "common/error.hpp"

namespace ndft {

/// Ceiling division for unsigned integral types.
template <typename T>
  requires std::is_unsigned_v<T>
constexpr T ceil_div(T numerator, T denominator) {
  NDFT_ASSERT(denominator != 0);
  return (numerator + denominator - 1) / denominator;
}

/// Rounds `value` up to the next multiple of `alignment` (alignment > 0).
template <typename T>
  requires std::is_unsigned_v<T>
constexpr T round_up(T value, T alignment) {
  return ceil_div(value, alignment) * alignment;
}

/// True iff `value` is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Floor of log2 for a nonzero value.
constexpr unsigned log2_floor(std::uint64_t value) {
  NDFT_ASSERT(value != 0);
  unsigned result = 0;
  while (value >>= 1) {
    ++result;
  }
  return result;
}

/// Exact log2; requires `value` to be a power of two.
constexpr unsigned log2_exact(std::uint64_t value) {
  NDFT_ASSERT(is_pow2(value));
  return log2_floor(value);
}

/// Smallest power of two >= value (value >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t value) {
  NDFT_ASSERT(value != 0);
  std::uint64_t p = 1;
  while (p < value) {
    p <<= 1;
  }
  return p;
}

/// Extracts `count` bits of `value` starting at bit `offset`.
constexpr std::uint64_t bits(std::uint64_t value, unsigned offset,
                             unsigned count) {
  return (value >> offset) & ((std::uint64_t{1} << count) - 1);
}

/// Relative difference |a-b| / max(|a|,|b|,eps); symmetric and safe at zero.
double relative_difference(double a, double b) noexcept;

/// True iff `a` and `b` agree to within `tolerance` relative difference.
bool approx_equal(double a, double b, double tolerance = 1e-9) noexcept;

}  // namespace ndft
