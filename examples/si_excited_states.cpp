// Runs the *functional* LR-TDDFT pipeline end to end on a real silicon
// supercell: empirical-pseudopotential ground state, face-splitting
// products, FFTs, Coulomb/ALDA kernels, GEMM contraction and SYEVD
// diagonalization — printing the band structure summary and the lowest
// excitation energies.
//
//   ./si_excited_states [atoms] [ecut_ry]    (defaults: Si_8, 4.5 Ry)

#include <cstdio>
#include <cstdlib>

#include "dft/epm.hpp"
#include "dft/lrtddft.hpp"
#include "dft/pseudopotential.hpp"
#include "dft/scf.hpp"
#include "dft/spectrum.hpp"

using namespace ndft;

namespace {
constexpr double kEvPerHa = 27.211386;
}

int main(int argc, char** argv) {
  std::size_t atoms = 8;
  double ecut_ry = 4.5;
  if (argc > 1) atoms = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) ecut_ry = std::strtod(argv[2], nullptr);

  // Ground state via the Cohen-Bergstresser empirical pseudopotential.
  const dft::Crystal crystal = dft::Crystal::silicon_supercell(atoms);
  const dft::PlaneWaveBasis basis(crystal, ecut_ry * 0.5);
  std::printf("Si_%zu: %zu plane waves at %.1f Ry, FFT grid %zux%zux%zu\n",
              atoms, basis.size(), ecut_ry, basis.fft_dims()[0],
              basis.fft_dims()[1], basis.fft_dims()[2]);

  const std::size_t bands = 2 * atoms + 8;  // valence + 8 conduction
  dft::OpCount ground_cost;
  const dft::GroundState ground =
      dft::solve_epm(basis, bands, &ground_cost);
  std::printf("ground state: %zu bands, gap %.3f eV (%.2f GFLOP in "
              "H-build + SYEVD)\n",
              ground.energies_ha.size(), ground.band_gap_ev(),
              static_cast<double>(ground_cost.flops) / 1e9);

  std::printf("  band edges (eV, vs valence-band max):");
  const double vbm = ground.energies_ha[ground.valence_bands - 1];
  for (std::size_t b = ground.valence_bands - 2;
       b < ground.valence_bands + 4 && b < ground.energies_ha.size(); ++b) {
    std::printf(" %.2f", (ground.energies_ha[b] - vbm) * kEvPerHa);
  }
  std::printf("\n");

  // Nonlocal pseudopotential application (Algorithm 1's update loop).
  const dft::KbProjectors projectors(basis);
  std::vector<dft::Complex> psi(basis.size());
  for (std::size_t i = 0; i < basis.size(); ++i) {
    psi[i] = dft::Complex{ground.orbitals(i, 0), 0.0};
  }
  std::vector<dft::Complex> v_psi;
  dft::OpCount pseudo_cost;
  projectors.apply(psi, v_psi, &pseudo_cost);
  dft::Complex expectation{};
  for (std::size_t i = 0; i < basis.size(); ++i) {
    expectation += std::conj(psi[i]) * v_psi[i];
  }
  std::printf("nonlocal pseudopotential: %zu projectors, <psi0|V_nl|psi0> "
              "= %.4f Ha\n",
              projectors.count(), expectation.real());

  // LR-TDDFT excitation spectrum (TDA) over a window around the gap.
  dft::LrTddftConfig config;
  config.valence_window = std::min<std::size_t>(ground.valence_bands, 8);
  config.conduction_window = 4;
  const dft::LrTddftResult result =
      dft::solve_lrtddft(basis, ground, config);
  std::printf("\nLR-TDDFT (TDA): %zu pair states\n", result.pair_count);
  std::printf("  lowest excitations (eV):");
  for (std::size_t i = 0; i < std::min<std::size_t>(6, result.pair_count);
       ++i) {
    std::printf(" %.3f", result.excitations_ha[i] * kEvPerHa);
  }
  std::printf("\n  per-kernel cost of this run:\n");
  for (const auto& [cls, count] : result.counts) {
    std::printf("    %-16s %8.2f MFLOP  %8.2f MB\n", to_string(cls),
                static_cast<double>(count.flops) / 1e6,
                static_cast<double>(count.bytes) / 1e6);
  }

  // Oscillator strengths and a broadened absorption spectrum.
  const auto lines = dft::oscillator_strengths(basis, ground, config);
  double strongest = 0.0;
  double strongest_ev = 0.0;
  for (const auto& line : lines) {
    if (line.strength > strongest) {
      strongest = line.strength;
      strongest_ev = line.energy_ev;
    }
  }
  std::printf("\nstrongest optical line: %.2f eV (f = %.3f)\n",
              strongest_ev, strongest);
  std::printf("absorption spectrum (0.5 eV bins, Lorentzian 0.2 eV):\n  ");
  std::vector<double> grid;
  for (double e = 0.5; e <= 12.0; e += 0.5) grid.push_back(e);
  const auto sigma = dft::absorption_spectrum(lines, grid, 0.2);
  double peak = 1e-12;
  for (const double v : sigma) peak = std::max(peak, v);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const int bars = static_cast<int>(sigma[i] / peak * 40.0);
    std::printf("%5.1f eV |%.*s\n  ", grid[i], bars,
                "########################################");
  }
  std::printf("\n");

  // Fully self-consistent ground state (Ashcroft empty-core + LDA) for
  // comparison with the empirical one.
  dft::ScfConfig scf_config;
  scf_config.tolerance = 1e-5;
  const dft::ScfResult scf = dft::solve_scf(basis, scf_config);
  std::printf("SCF-LDA ground state: %s after %zu iterations, gap %.3f eV, "
              "%.1f electrons\n",
              scf.converged ? "converged" : "NOT converged",
              scf.history.size(), scf.history.back().gap_ev,
              scf.electron_count(basis));
  return 0;
}
