#include "net/http.hpp"

#include <algorithm>
#include <cctype>

namespace ndft::net {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

bool parse_size(const std::string& text, int base, std::size_t* out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    if (value > (static_cast<std::size_t>(-1) - digit) / base) return false;
    value = value * base + static_cast<std::size_t>(digit);
  }
  *out = value;
  return true;
}

std::string find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return "";
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  return find_header(headers, name);
}

std::string HttpRequest::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::query(const std::string& name) const {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return "";
  std::size_t pos = q + 1;
  while (pos < target.size()) {
    std::size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const std::string pair = target.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    const std::string key = eq == std::string::npos ? pair : pair.substr(0, eq);
    if (key == name) {
      return eq == std::string::npos ? "" : pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return "";
}

bool HttpRequest::keep_alive() const {
  const std::string connection = lower(header("connection"));
  if (connection == "close") return false;
  if (version == "HTTP/1.0") return connection == "keep-alive";
  return true;
}

std::string HttpResponse::serialize(bool keep_alive) const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    status_reason(status) + "\r\n";
  for (const auto& [key, value] : headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

void HttpParser::fail(int status, const std::string& detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = detail;
}

bool HttpParser::parse_start_line(const std::string& line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    fail(400, "malformed start line");
    return false;
  }
  if (kind_ == Kind::kRequest) {
    request_.method = line.substr(0, sp1);
    request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    request_.version = line.substr(sp2 + 1);
    if (request_.method.empty() || request_.target.empty() ||
        request_.target[0] != '/') {
      fail(400, "malformed request target");
      return false;
    }
    if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
      fail(505, "unsupported HTTP version: " + request_.version);
      return false;
    }
  } else {
    const std::string version = line.substr(0, sp1);
    if (version.rfind("HTTP/1.", 0) != 0) {
      fail(400, "malformed status line");
      return false;
    }
    std::size_t status = 0;
    if (!parse_size(line.substr(sp1 + 1, sp2 - sp1 - 1), 10, &status) ||
        status < 100 || status > 599) {
      fail(400, "malformed status code");
      return false;
    }
    response_.status = static_cast<int>(status);
  }
  return true;
}

bool HttpParser::parse_header_line(const std::string& line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    fail(400, "malformed header line");
    return false;
  }
  const std::string name = lower(trim(line.substr(0, colon)));
  const std::string value = trim(line.substr(colon + 1));
  if (name.find(' ') != std::string::npos ||
      name.find('\t') != std::string::npos) {
    fail(400, "whitespace in header name");
    return false;
  }
  auto& headers = kind_ == Kind::kRequest ? request_.headers
                                          : response_.headers;
  headers.emplace_back(name, value);
  return true;
}

void HttpParser::headers_complete() {
  const auto& headers =
      kind_ == Kind::kRequest ? request_.headers : response_.headers;
  const std::string transfer = lower(find_header(headers, "transfer-encoding"));
  const std::string length = find_header(headers, "content-length");
  if (!transfer.empty()) {
    if (transfer != "chunked") {
      fail(400, "unsupported transfer-encoding: " + transfer);
      return;
    }
    if (!length.empty()) {
      // Ambiguous framing is the classic request-smuggling vector: reject.
      fail(400, "both content-length and transfer-encoding present");
      return;
    }
    chunked_ = true;
    phase_ = Phase::kChunkSize;
    return;
  }
  if (!length.empty()) {
    if (!parse_size(length, 10, &body_expected_)) {
      fail(400, "malformed content-length");
      return;
    }
    if (body_expected_ > limits_.max_body_bytes) {
      fail(413, "declared body exceeds limit");
      return;
    }
    phase_ = Phase::kBody;
    if (body_expected_ == 0) finish();
    return;
  }
  // No framing headers: no body (the service never parses responses that
  // close-delimit their body, and requests must declare one).
  finish();
}

void HttpParser::finish() {
  state_ = State::kDone;
  remainder_ = buffer_;
  buffer_.clear();
}

HttpParser::State HttpParser::feed(const char* data, std::size_t size) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(data, size);
  process();
  return state_;
}

void HttpParser::process() {
  while (state_ == State::kNeedMore) {
    switch (phase_) {
      case Phase::kStartLine:
      case Phase::kHeaders: {
        const std::size_t eol = buffer_.find("\r\n");
        if (eol == std::string::npos) {
          const std::size_t limit = phase_ == Phase::kStartLine
                                        ? limits_.max_start_line
                                        : limits_.max_header_bytes;
          if (buffer_.size() > limit + 2) {
            fail(431, "start line or header too long");
          }
          return;  // need more bytes
        }
        const std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 2);
        if (phase_ == Phase::kStartLine) {
          if (line.empty()) continue;  // tolerate leading blank lines
          if (line.size() > limits_.max_start_line) {
            fail(431, "start line too long");
            return;
          }
          if (!parse_start_line(line)) return;
          phase_ = Phase::kHeaders;
        } else {
          header_bytes_ += line.size() + 2;
          if (header_bytes_ > limits_.max_header_bytes) {
            fail(431, "headers exceed limit");
            return;
          }
          if (line.empty()) {
            headers_complete();
            if (state_ != State::kNeedMore || phase_ == Phase::kBody ||
                chunked_) {
              continue;
            }
            return;
          }
          if (!parse_header_line(line)) return;
        }
        break;
      }
      case Phase::kBody: {
        auto& body = kind_ == Kind::kRequest ? request_.body : response_.body;
        const std::size_t want = body_expected_ - body.size();
        const std::size_t take = std::min(want, buffer_.size());
        body.append(buffer_, 0, take);
        buffer_.erase(0, take);
        if (body.size() == body_expected_) {
          finish();
        }
        return;
      }
      case Phase::kChunkSize: {
        const std::size_t eol = buffer_.find("\r\n");
        if (eol == std::string::npos) {
          if (buffer_.size() > 1024) fail(400, "chunk size line too long");
          return;
        }
        std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 2);
        // Ignore chunk extensions (";...").
        const std::size_t semi = line.find(';');
        if (semi != std::string::npos) line.erase(semi);
        std::size_t size = 0;
        if (!parse_size(trim(line), 16, &size)) {
          fail(400, "malformed chunk size");
          return;
        }
        auto& body = kind_ == Kind::kRequest ? request_.body : response_.body;
        if (body.size() + size > limits_.max_body_bytes) {
          fail(413, "chunked body exceeds limit");
          return;
        }
        chunk_remaining_ = size;
        phase_ = size == 0 ? Phase::kChunkTrailer : Phase::kChunkData;
        break;
      }
      case Phase::kChunkData: {
        auto& body = kind_ == Kind::kRequest ? request_.body : response_.body;
        const std::size_t take = std::min(chunk_remaining_, buffer_.size());
        body.append(buffer_, 0, take);
        buffer_.erase(0, take);
        chunk_remaining_ -= take;
        if (chunk_remaining_ == 0) {
          phase_ = Phase::kChunkEnd;
          break;
        }
        return;
      }
      case Phase::kChunkEnd: {
        if (buffer_.size() < 2) return;
        if (buffer_[0] != '\r' || buffer_[1] != '\n') {
          fail(400, "missing CRLF after chunk data");
          return;
        }
        buffer_.erase(0, 2);
        phase_ = Phase::kChunkSize;
        break;
      }
      case Phase::kChunkTrailer: {
        const std::size_t eol = buffer_.find("\r\n");
        if (eol == std::string::npos) {
          if (buffer_.size() > limits_.max_header_bytes) {
            fail(431, "trailer exceeds limit");
          }
          return;
        }
        const std::string line = buffer_.substr(0, eol);
        buffer_.erase(0, eol + 2);
        if (line.empty()) {
          finish();
          return;
        }
        // Trailer fields are parsed for framing but discarded.
        break;
      }
    }
  }
}

void HttpParser::reset() {
  state_ = State::kNeedMore;
  phase_ = Phase::kStartLine;
  error_status_ = 0;
  error_detail_.clear();
  buffer_.clear();
  header_bytes_ = 0;
  body_expected_ = 0;
  chunked_ = false;
  chunk_remaining_ = 0;
  request_ = HttpRequest();
  response_ = HttpResponse();
  remainder_.clear();
}

}  // namespace ndft::net
