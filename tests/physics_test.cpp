// Tests for the physics stack: silicon lattices, plane-wave bases, the
// empirical-pseudopotential ground state, Kleinman-Bylander projectors and
// the functional LR-TDDFT pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dft/basis.hpp"
#include "dft/epm.hpp"
#include "dft/lattice.hpp"
#include "dft/lrtddft.hpp"
#include "dft/pseudopotential.hpp"
#include "dft/scf.hpp"

namespace ndft::dft {
namespace {

constexpr double kEvPerHa = 27.211386;

TEST(LatticeTest, SupercellFactorsBalanceDims) {
  EXPECT_EQ(Crystal::supercell_factors(1), (std::array<std::size_t, 3>{1, 1, 1}));
  EXPECT_EQ(Crystal::supercell_factors(2), (std::array<std::size_t, 3>{1, 1, 2}));
  EXPECT_EQ(Crystal::supercell_factors(4), (std::array<std::size_t, 3>{1, 2, 2}));
  EXPECT_EQ(Crystal::supercell_factors(8), (std::array<std::size_t, 3>{2, 2, 2}));
  EXPECT_EQ(Crystal::supercell_factors(128),
            (std::array<std::size_t, 3>{4, 4, 8}));
  EXPECT_EQ(Crystal::supercell_factors(256),
            (std::array<std::size_t, 3>{4, 8, 8}));
}

TEST(LatticeTest, PaperSystemSizesBuild) {
  for (const std::size_t atoms : {16, 32, 64, 128, 256}) {
    const Crystal crystal = Crystal::silicon_supercell(atoms);
    EXPECT_EQ(crystal.atom_count(), atoms);
  }
}

TEST(LatticeTest, VolumeMatchesCellCount) {
  const Crystal crystal = Crystal::silicon_supercell(64);
  const double a0 = kSiliconLatticeBohr;
  EXPECT_NEAR(crystal.volume(), 8.0 * a0 * a0 * a0, 1e-6);
}

TEST(LatticeTest, NearestNeighbourIsBondLength) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  // Diamond bond length = sqrt(3)/4 * a0 ~ 2.35 Angstrom = 4.44 Bohr.
  const double expected = std::sqrt(3.0) / 4.0 * kSiliconLatticeBohr;
  double nearest = 1e9;
  const auto& pos = crystal.positions();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      nearest = std::min(nearest, std::sqrt((pos[i] - pos[j]).norm2()));
    }
  }
  EXPECT_NEAR(nearest, expected, 1e-6);
}

TEST(LatticeTest, ReciprocalVectorsAreDual) {
  const Crystal crystal = Crystal::silicon_supercell(16);
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  EXPECT_NEAR(crystal.a1().dot(crystal.b1()), kTwoPi, 1e-9);
  EXPECT_NEAR(crystal.a1().dot(crystal.b2()), 0.0, 1e-9);
  EXPECT_NEAR(crystal.a2().dot(crystal.b3()), 0.0, 1e-9);
  EXPECT_NEAR(crystal.a3().dot(crystal.b3()), kTwoPi, 1e-9);
}

TEST(LatticeTest, RejectsBadAtomCounts) {
  EXPECT_THROW(Crystal::silicon_supercell(7), NdftError);
  EXPECT_THROW(Crystal::silicon_supercell(12), NdftError);
}

TEST(BasisTest, GammaPointBasisContainsOriginAndNegations) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.0);
  ASSERT_GT(basis.size(), 1u);
  EXPECT_EQ(basis.gvectors().front().g2, 0.0);  // sorted: G = 0 first
  // Closed under negation (real potentials need +/-G pairs).
  std::set<std::tuple<int, int, int>> keys;
  for (const GVector& g : basis.gvectors()) {
    keys.insert({g.h, g.k, g.l});
  }
  for (const GVector& g : basis.gvectors()) {
    EXPECT_TRUE(keys.count({-g.h, -g.k, -g.l}) == 1);
  }
}

TEST(BasisTest, SizeGrowsWithCutoffAndVolume) {
  const Crystal small = Crystal::silicon_supercell(8);
  const Crystal large = Crystal::silicon_supercell(16);
  const PlaneWaveBasis low(small, 1.0);
  const PlaneWaveBasis high(small, 2.0);
  const PlaneWaveBasis big(large, 1.0);
  EXPECT_GT(high.size(), low.size());
  // Doubling the volume roughly doubles the basis.
  EXPECT_NEAR(static_cast<double>(big.size()) /
                  static_cast<double>(low.size()),
              2.0, 0.5);
}

TEST(BasisTest, AllVectorsWithinCutoff) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 1.5);
  for (const GVector& g : basis.gvectors()) {
    EXPECT_LE(0.5 * g.g2, 1.5 + 1e-9);
  }
}

TEST(BasisTest, FftDimsAreFriendlyAndAliasFree) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.0);
  int hmax = 0;
  for (const GVector& g : basis.gvectors()) {
    hmax = std::max({hmax, std::abs(g.h), std::abs(g.k), std::abs(g.l)});
  }
  for (const std::size_t dim : basis.fft_dims()) {
    EXPECT_TRUE(is_friendly_size(dim));
    EXPECT_GE(dim, static_cast<std::size_t>(2 * hmax + 1));
  }
}

TEST(BasisTest, GridIndicesAreUnique) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.0);
  std::set<std::size_t> indices;
  for (std::size_t i = 0; i < basis.size(); ++i) {
    EXPECT_LT(basis.grid_index(i), basis.fft_size());
    indices.insert(basis.grid_index(i));
  }
  EXPECT_EQ(indices.size(), basis.size());
}

TEST(EpmTest, FormFactorsMatchCohenBergstresser) {
  EXPECT_NEAR(silicon_form_factor(3.0), -0.105, 1e-9);  // -0.21 Ry
  EXPECT_NEAR(silicon_form_factor(8.0), 0.02, 1e-9);
  EXPECT_NEAR(silicon_form_factor(11.0), 0.04, 1e-9);
  EXPECT_DOUBLE_EQ(silicon_form_factor(4.0), 0.0);
}

TEST(EpmTest, PotentialIsSymmetric) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.25);
  const auto& g = basis.gvectors();
  for (std::size_t i = 0; i < std::min<std::size_t>(g.size(), 20); ++i) {
    for (std::size_t j = 0; j < std::min<std::size_t>(g.size(), 20); ++j) {
      EXPECT_NEAR(epm_potential(crystal, g[i], g[j]),
                  epm_potential(crystal, g[j], g[i]), 1e-12);
    }
  }
}

TEST(EpmTest, SiliconGroundStateHasGap) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.25);  // 4.5 Ry: classic EPM cutoff
  const GroundState state = solve_epm(basis);
  EXPECT_EQ(state.valence_bands, 16u);  // 2 bands per atom
  ASSERT_GT(state.energies_ha.size(), state.valence_bands + 4);
  // Eigenvalues ascending.
  for (std::size_t i = 1; i < state.energies_ha.size(); ++i) {
    EXPECT_LE(state.energies_ha[i - 1], state.energies_ha[i]);
  }
  // The supercell folds X into Gamma, so the gap is the indirect gap;
  // Cohen-Bergstresser puts it near 0.8-1.2 eV. Accept a generous window
  // (the basis here is intentionally small).
  const double gap = state.band_gap_ev();
  EXPECT_GT(gap, 0.2);
  EXPECT_LT(gap, 2.5);
}

TEST(EpmTest, ValenceBandWidthIsPlausible) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.25);
  const GroundState state = solve_epm(basis);
  // Silicon valence band width ~ 12 eV (EPM gives roughly this).
  const double width =
      (state.energies_ha[state.valence_bands - 1] - state.energies_ha[0]) *
      kEvPerHa;
  EXPECT_GT(width, 6.0);
  EXPECT_LT(width, 20.0);
}

TEST(EpmTest, BandLimitKeepsRequestedCount) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.25);
  const GroundState state = solve_epm(basis, 24);
  EXPECT_EQ(state.energies_ha.size(), 24u);
  EXPECT_EQ(state.orbitals.cols(), 24u);
  EXPECT_THROW(solve_epm(basis, 4), NdftError);  // fewer than valence
}

TEST(EpmTest, OrbitalsAreOrthonormal) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.0);
  const GroundState state = solve_epm(basis, 20);
  for (std::size_t a = 0; a < 20; ++a) {
    for (std::size_t b = a; b < 20; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < basis.size(); ++i) {
        dot += state.orbitals(i, a) * state.orbitals(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(KbProjectorsTest, CountAndCouplings) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 1.5);
  const KbProjectors projectors(basis);
  EXPECT_EQ(projectors.count(), 8u * 4);
  EXPECT_LT(projectors.coupling(0), 0.0);  // attractive s channel
  EXPECT_GT(projectors.coupling(1), 0.0);  // repulsive p channel
}

TEST(KbProjectorsTest, ApplyIsHermitian) {
  // <phi | V_nl | psi> == conj(<psi | V_nl | phi>) for the separable form.
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 1.5);
  const KbProjectors projectors(basis);
  const std::size_t n = basis.size();
  std::vector<Complex> psi(n), phi(n);
  for (std::size_t i = 0; i < n; ++i) {
    psi[i] = Complex{std::sin(0.1 * static_cast<double>(i)), 0.2};
    phi[i] = Complex{0.3, std::cos(0.2 * static_cast<double>(i))};
  }
  std::vector<Complex> v_psi(n), v_phi(n);
  projectors.apply(psi, v_psi);
  projectors.apply(phi, v_phi);
  Complex left{};
  Complex right{};
  for (std::size_t i = 0; i < n; ++i) {
    left += std::conj(phi[i]) * v_psi[i];
    right += std::conj(psi[i]) * v_phi[i];
  }
  EXPECT_NEAR(left.real(), right.real(), 1e-9);
  EXPECT_NEAR(left.imag(), -right.imag(), 1e-9);
}

TEST(KbProjectorsTest, ApplyAccumulatesAndCounts) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 1.5);
  const KbProjectors projectors(basis);
  std::vector<Complex> psi(basis.size(), Complex{1.0, 0.0});
  std::vector<Complex> out;
  OpCount count;
  projectors.apply(psi, out, &count);
  EXPECT_EQ(out.size(), psi.size());
  EXPECT_GT(count.flops, 0u);
  double norm = 0.0;
  for (const Complex& value : out) norm += std::norm(value);
  EXPECT_GT(norm, 0.0);  // the potential actually did something
}

TEST(PseudoSizingTest, BytesPerAtomInPaperRange) {
  const PseudoSizing sizing;
  // Table I implies roughly 0.5-1.2 MB of pseudopotential data per atom.
  EXPECT_GT(sizing.bytes_per_atom(), 400u * 1024);
  EXPECT_LT(sizing.bytes_per_atom(), 1300u * 1024);
  EXPECT_EQ(sizing.bytes_total(64), 64 * sizing.bytes_per_atom());
}

TEST(PseudoSizingTest, ScalesWithKnobs) {
  PseudoSizing base;
  PseudoSizing bigger = base;
  bigger.cutoff_radius_bohr = base.cutoff_radius_bohr * 1.3;
  EXPECT_GT(bigger.bytes_per_atom(), base.bytes_per_atom());
  PseudoSizing finer = base;
  finer.ecut_ha = base.ecut_ha * 2.0;
  EXPECT_GT(finer.bytes_per_atom(), base.bytes_per_atom());
  EXPECT_GT(base.sphere_points(true),
            base.sphere_points(false) * 7);  // dense factor 2 => 8x
}

class LrTddftFixture : public ::testing::Test {
 protected:
  LrTddftFixture()
      : crystal(Crystal::silicon_supercell(8)),
        basis(crystal, 2.25),
        ground(solve_epm(basis, 24)) {}

  Crystal crystal;
  PlaneWaveBasis basis;
  GroundState ground;
};

TEST_F(LrTddftFixture, TransitionEnergiesArePositive) {
  LrTddftConfig config;
  config.valence_window = 4;
  config.conduction_window = 4;
  const std::vector<double> transitions = transition_energies(ground, config);
  EXPECT_EQ(transitions.size(), 16u);
  for (const double t : transitions) {
    EXPECT_GT(t, 0.0);  // gapped system
  }
}

TEST_F(LrTddftFixture, ExcitationsSortedAndPositive) {
  LrTddftConfig config;
  config.valence_window = 4;
  config.conduction_window = 2;
  const LrTddftResult result = solve_lrtddft(basis, ground, config);
  EXPECT_EQ(result.pair_count, 8u);
  EXPECT_EQ(result.excitations_ha.size(), 8u);
  for (std::size_t i = 0; i < result.excitations_ha.size(); ++i) {
    EXPECT_GT(result.excitations_ha[i], 0.0);
    if (i > 0) {
      EXPECT_LE(result.excitations_ha[i - 1], result.excitations_ha[i]);
    }
  }
  // Optical gap in a loose physical window (eV).
  EXPECT_GT(result.lowest_ev(), 0.1);
  EXPECT_LT(result.lowest_ev(), 10.0);
}

TEST_F(LrTddftFixture, PipelinePopulatesAllKernelCounters) {
  LrTddftConfig config;
  config.valence_window = 2;
  config.conduction_window = 2;
  const LrTddftResult result = solve_lrtddft(basis, ground, config);
  EXPECT_GT(result.counts.at(KernelClass::kFft).flops, 0u);
  EXPECT_GT(result.counts.at(KernelClass::kFaceSplit).flops, 0u);
  EXPECT_GT(result.counts.at(KernelClass::kGemm).flops, 0u);
  EXPECT_GT(result.counts.at(KernelClass::kSyevd).flops, 0u);
}

TEST_F(LrTddftFixture, HartreeKernelShiftsExcitationsUp) {
  // The diagonal of the TDA matrix is eps_c - eps_v; the (positive
  // semidefinite) Hartree kernel cannot lower the *highest* excitation,
  // and for silicon it raises the spectrum on average.
  LrTddftConfig config;
  config.valence_window = 3;
  config.conduction_window = 2;
  config.include_xc = false;
  const LrTddftResult with_kernel = solve_lrtddft(basis, ground, config);
  const std::vector<double> bare = transition_energies(ground, config);
  double bare_sum = 0.0;
  double dressed_sum = 0.0;
  for (std::size_t i = 0; i < bare.size(); ++i) {
    bare_sum += bare[i];
    dressed_sum += with_kernel.excitations_ha[i];
  }
  EXPECT_GE(dressed_sum, bare_sum - 1e-9);
}

TEST_F(LrTddftFixture, XcKernelLowersSpectrumRelativeToHartreeOnly) {
  LrTddftConfig config;
  config.valence_window = 3;
  config.conduction_window = 2;
  config.include_xc = false;
  const LrTddftResult hartree_only = solve_lrtddft(basis, ground, config);
  config.include_xc = true;
  const LrTddftResult with_xc = solve_lrtddft(basis, ground, config);
  // ALDA f_xc is attractive: the summed spectrum comes down.
  double h_sum = 0.0;
  double xc_sum = 0.0;
  for (std::size_t i = 0; i < hartree_only.excitations_ha.size(); ++i) {
    h_sum += hartree_only.excitations_ha[i];
    xc_sum += with_xc.excitations_ha[i];
  }
  EXPECT_LT(xc_sum, h_sum);
}

TEST_F(LrTddftFixture, RejectsWindowBeyondComputedBands) {
  LrTddftConfig config;
  config.conduction_window = 100;  // only 24 bands were kept
  EXPECT_THROW(solve_lrtddft(basis, ground, config), NdftError);
}

// ---------------------------------------------------- golden regressions
//
// Pinned end-to-end physics values. The loose windows above catch gross
// breakage; these catch the subtle kind — an eigensolver or kernel swap
// that shifts eigenvalues by more than numerical noise changes these
// observables long before it breaks a monotonicity property. Values were
// produced by the blocked SYEVD path and verified bitwise identical for
// NDFT_NUM_THREADS in {1, 2, 8}. Tolerances are far above solver noise
// (~1e-12) but far below any physical effect, so a legitimate kernel
// rewrite passes and a wrong one fails on values, not just smoke.

TEST(PhysicsGoldenTest, EpmSiliconBandStructure) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.25);
  ASSERT_EQ(basis.size(), 179u);  // goldens are tied to this basis
  const GroundState state = solve_epm(basis, 24);
  // Indirect gap of the folded 8-atom cell, Cohen-Bergstresser form
  // factors at the 4.5 Ry cutoff.
  EXPECT_NEAR(state.band_gap_ev(), 0.925350553339, 1e-6);
  // Band-edge anchors: bottom of the valence band and the VBM (Ha).
  EXPECT_NEAR(state.energies_ha[0], -0.078736065541, 1e-7);
  EXPECT_NEAR(state.energies_ha[state.valence_bands - 1], 0.388892802013,
              1e-7);
}

TEST(PhysicsGoldenTest, ScfSiliconTotalEnergyAndGap) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.0);
  ScfConfig config;
  config.tolerance = 1e-6;
  config.max_iterations = 60;
  const ScfResult result = solve_scf(basis, config);
  ASSERT_TRUE(result.converged);
  // The fixed point is tolerance-limited, so the pin is looser than the
  // EPM eigenvalue pins: 1e-5 Ha still catches any real solver change.
  EXPECT_NEAR(result.history.back().total_energy_ha, -3.075515232837, 1e-5);
  EXPECT_NEAR(result.history.back().gap_ev, 0.837089395823, 1e-4);
}

TEST(PhysicsGoldenTest, LrtddftSiliconLowestExcitation) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.25);
  const GroundState ground = solve_epm(basis, 24);
  LrTddftConfig config;
  config.valence_window = 4;
  config.conduction_window = 2;
  const LrTddftResult result = solve_lrtddft(basis, ground, config);
  ASSERT_EQ(result.pair_count, 8u);
  // Lowest TDA excitation from the Hermitian (gauge-robust) Casida solve:
  // above the ground-state gap (the Hartree kernel's shift beats the ALDA
  // attraction here). Unlike the eigenvalue pins above, this value is
  // gauge-sensitive at the ~0.02 eV level: the truncated excitation
  // window slices the folded cell's degenerate band-edge multiplets, so
  // any eigensolver change that rotates those multiplets (e.g. a
  // summation-order change in the reduction) legitimately moves it.
  // Re-pinned for the two-stage eigensolver (band reduction + D&C
  // rotates the degenerate multiplets differently from the one-stage
  // QL path); verified bitwise identical for NDFT_NUM_THREADS in
  // {1, 2, 8}.
  EXPECT_NEAR(result.lowest_ev(), 0.974598094592, 1e-5);
}

}  // namespace
}  // namespace ndft::dft
