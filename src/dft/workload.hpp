#pragma once
// Analytic workload model of one representative LR-TDDFT iteration
// (paper Fig. 1) for silicon systems Si_16 ... Si_2048.
//
// The functional pipeline (lrtddft.cpp) runs end-to-end only for small
// systems; the timing simulation of the large paper systems uses these
// closed-form kernel descriptors instead. The op/byte formulas follow the
// implementation and standard practice for production plane-wave codes:
//
//  - band windows: Nv_win = min(2*atoms, 256) valence bands around the
//    gap, Nc_win = min(32, max(8, Nv/4)) conduction bands (energy-window
//    truncation, standard for large-system LR-TDDFT);
//  - response GEMMs use a Davidson block of Nx = 16 trial vectors;
//  - SYEVD diagonalises the energy-truncated pair space
//    n_sub = min(Npair, 5000);
//  - the grid/basis sizes follow the 25 Ry cutoff (ecut = 12.5 Ha).
//
// Tests in tests/dft validate these formulas against instrumented runs of
// the functional kernels at small sizes.

#include <string>
#include <vector>

#include "common/kernel_trace.hpp"
#include "common/types.hpp"
#include "dft/pseudopotential.hpp"

namespace ndft::dft {

/// Problem dimensions derived from the atom count.
struct SystemDims {
  std::size_t atoms = 0;
  std::size_t valence_bands = 0;      ///< 2 per Si atom
  std::size_t valence_window = 0;     ///< bands entering the response
  std::size_t conduction_window = 0;
  std::size_t pairs = 0;              ///< Nv_win * Nc_win
  std::size_t subspace = 0;           ///< SYEVD dimension n_sub
  std::size_t davidson_block = 16;    ///< Nx response vectors
  std::size_t grid_points = 0;        ///< Nr (FFT grid)
  std::size_t basis_size = 0;         ///< N_G (plane waves)
  double ecut_ha = 12.5;

  /// Builds the dimensions for an Si_n system (n multiple of 8).
  static SystemDims silicon(std::size_t atoms, double ecut_ha = 12.5);
};

/// One kernel of the iteration with machine-independent costs.
struct KernelWork {
  KernelClass cls = KernelClass::kOther;
  std::string name;
  Flops flops = 0;
  /// Bytes issued by instructions (L1-level traffic).
  Bytes l1_bytes = 0;
  /// Expected DRAM-level traffic for a well-blocked implementation; the
  /// trace generator uses this as the streaming working set.
  Bytes dram_bytes = 0;
  AccessPattern pattern = AccessPattern::kSequential;
  Bytes stride_bytes = 64;
  /// For Alltoall: bytes that must cross the fabric between processes.
  Bytes comm_volume = 0;
  /// Bytes this kernel consumes from the previous pipeline stage; moved
  /// between devices when the schedule changes placement (DT in Eq. 1).
  Bytes input_bytes = 0;
  /// Bytes this kernel hands to the next stage.
  Bytes output_bytes = 0;

  /// Arithmetic intensity at the DRAM level (roofline x-coordinate).
  double arithmetic_intensity() const noexcept {
    return dram_bytes == 0 ? 1e9
                           : static_cast<double>(flops) /
                                 static_cast<double>(dram_bytes);
  }
};

/// The full iteration: kernels in pipeline order plus footprint inputs.
struct Workload {
  SystemDims dims;
  std::vector<KernelWork> kernels;
  PseudoSizing pseudo_sizing;

  /// Bytes of one complete per-process pseudopotential copy.
  Bytes pseudo_copy_bytes() const {
    return pseudo_sizing.bytes_total(dims.atoms);
  }

  /// Sum of flops over all kernels.
  Flops total_flops() const;
  /// Sum of DRAM bytes over all kernels.
  Bytes total_dram_bytes() const;

  /// Builds the representative LR-TDDFT iteration for the dimensions.
  static Workload lrtddft_iteration(const SystemDims& dims,
                                    const PseudoSizing& sizing = {});

  /// Builds a workload from a measured kernel trace (the co-design path):
  /// every recorded event becomes one KernelWork in trace order, with the
  /// DRAM-level traffic estimated by the class-specific reuse model of
  /// kernel_work_from_event. System dimensions come from the trace's
  /// recorded atoms/basis/grid. Throws NdftError on an empty trace.
  static Workload from_trace(const KernelTrace& trace,
                             const PseudoSizing& sizing = {});
};

/// Converts one measured trace event into a schedulable kernel
/// descriptor. The instruction-level bytes are the event's own tally;
/// DRAM traffic applies the same reuse assumptions as the analytic model
/// (GEMM/SYEVD blocked with flops/AI traffic, FFT and streaming kernels
/// at instruction-level volume), so measured and analytic workloads land
/// on the same roofline axes.
KernelWork kernel_work_from_event(const TraceEvent& event);

}  // namespace ndft::dft
