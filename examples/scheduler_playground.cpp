// Explores the cost-aware offloading mechanism through PlanJobs: how the
// SCA classifies each kernel, what the Eq. 1 overheads look like, and how
// the schedule reacts when the machine balance changes (e.g. a beefier
// CPU or slower NDP links) via the job's device-profile override.
//
//   ./scheduler_playground [atoms]           (default Si_1024)

#include <cstdio>
#include <cstdlib>

#include "api/engine.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"

using namespace ndft;

namespace {

/// Unwraps a plan or throws; the throw unwinds past the Engine (joining
/// its dispatchers) before main reports it.
const api::PlanPayload& plan_or_die(const api::JobResult& result) {
  if (!result.ok()) {
    throw NdftError("plan job failed: " + result.error_message);
  }
  return *result.plan;
}

void show_plan(const char* title, api::Engine& engine, std::size_t atoms,
               const runtime::DeviceProfile& cpu,
               const runtime::DeviceProfile& ndp) {
  api::PlanJob job;
  job.atoms = atoms;
  job.profile_override = {cpu, ndp};
  const api::JobResult result = engine.run(job);
  const api::PlanPayload& plan = plan_or_die(result);

  std::printf("--- %s (CPU %.0f GF / %.0f GB/s, NDP %.0f GF / %.0f GB/s) "
              "---\n",
              title, cpu.peak_gflops, cpu.dram_gbps, ndp.peak_gflops,
              ndp.dram_gbps);
  TextTable table({"kernel", "AI", "CPU est", "NDP est", "placed on",
                   "crossing cost"});
  for (const api::PlacementPayload& p : plan.placements) {
    table.add_row({p.kernel, strformat("%.2f", p.arithmetic_intensity),
                   format_time(p.est_cpu_ps), format_time(p.est_ndp_ps),
                   to_string(p.device),
                   p.crossing
                       ? format_time(p.transfer_in_ps + p.switch_in_ps)
                       : std::string("-")});
  }
  std::printf("%s", table.render().c_str());
  std::printf("estimated total %s, overhead %s (%.1f %%), %u crossings\n\n",
              format_time(plan.est_total_ps).c_str(),
              format_time(plan.est_overhead_ps).c_str(),
              plan.overhead_fraction() * 100.0, plan.crossings);
}

}  // namespace

int main(int argc, char** argv) try {
  std::size_t atoms = 1024;
  if (argc > 1) atoms = std::strtoul(argv[1], nullptr, 10);

  api::Engine engine;
  const core::SystemConfig& config = engine.system_config();

  // The paper's configuration.
  show_plan("Table III machine", engine, atoms, config.cpu_profile,
            config.ndp_profile);

  // What if the host CPU had HBM-class bandwidth? Memory-bound kernels
  // stop being worth offloading.
  runtime::DeviceProfile fat_cpu = config.cpu_profile;
  fat_cpu.dram_gbps = 2000.0;
  show_plan("hypothetical HBM-fed CPU", engine, atoms, fat_cpu,
            config.ndp_profile);

  // What if CPU<->NDP crossings were nearly free? The schedule stays the
  // same but the overhead disappears.
  runtime::DeviceProfile cheap_cpu = config.cpu_profile;
  runtime::DeviceProfile cheap_ndp = config.ndp_profile;
  cheap_cpu.link_gbps = 10000.0;
  cheap_ndp.link_gbps = 10000.0;
  cheap_cpu.switch_latency_ps = 0;
  cheap_ndp.switch_latency_ps = 0;
  show_plan("free crossings", engine, atoms, cheap_cpu, cheap_ndp);

  // Granularity comparison (the Section IV-A1 argument), one async
  // PlanJob per granularity drained through the engine queue.
  std::printf("--- offload granularity on Si_%zu ---\n", atoms);
  const std::pair<const char*, runtime::Granularity> rows[] = {
      {"instruction", runtime::Granularity::kInstruction},
      {"basic block", runtime::Granularity::kBasicBlock},
      {"function (NDFT)", runtime::Granularity::kFunction},
      {"whole kernel", runtime::Granularity::kKernel},
  };
  std::vector<api::JobRequest> batch;
  for (const auto& [name, granularity] : rows) {
    api::PlanJob job;
    job.atoms = atoms;
    job.granularity = granularity;
    batch.emplace_back(job);
  }
  std::vector<api::JobHandle> handles =
      engine.submit_batch(std::move(batch));

  TextTable table({"granularity", "est total", "overhead %"});
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const api::PlanPayload& plan = plan_or_die(handles[i].wait());
    table.add_row({rows[i].first, format_time(plan.est_total_ps),
                   format_percent(plan.overhead_fraction())});
  }
  std::printf("%s", table.render().c_str());
  return 0;
} catch (const NdftError& error) {
  std::fprintf(stderr, "scheduler_playground: %s\n", error.what());
  return 1;
}
