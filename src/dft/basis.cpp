#include "dft/basis.hpp"

#include <algorithm>
#include <cmath>

#include "dft/fft.hpp"

namespace ndft::dft {

PlaneWaveBasis::PlaneWaveBasis(const Crystal& crystal, double ecut_ha)
    : crystal_(&crystal), ecut_(ecut_ha) {
  NDFT_REQUIRE(ecut_ha > 0.0, "cutoff must be positive");
  const double gmax2 = 2.0 * ecut_ha;
  const double gmax = std::sqrt(gmax2);

  // Integer search bounds per axis from the reciprocal vector lengths
  // (orthorhombic supercells in this codebase, but computed generally).
  const auto bound = [&](const Vec3& b) {
    return static_cast<int>(std::ceil(gmax / std::sqrt(b.norm2()))) + 1;
  };
  const int hmaxs[3] = {bound(crystal.b1()), bound(crystal.b2()),
                        bound(crystal.b3())};

  for (int h = -hmaxs[0]; h <= hmaxs[0]; ++h) {
    for (int k = -hmaxs[1]; k <= hmaxs[1]; ++k) {
      for (int l = -hmaxs[2]; l <= hmaxs[2]; ++l) {
        const Vec3 g = crystal.b1() * static_cast<double>(h) +
                       crystal.b2() * static_cast<double>(k) +
                       crystal.b3() * static_cast<double>(l);
        const double g2 = g.norm2();
        if (g2 <= gmax2 + 1e-12) {
          g_.push_back(GVector{h, k, l, g, g2});
        }
      }
    }
  }
  std::sort(g_.begin(), g_.end(), [](const GVector& a, const GVector& b) {
    if (a.g2 != b.g2) return a.g2 < b.g2;
    if (a.h != b.h) return a.h < b.h;
    if (a.k != b.k) return a.k < b.k;
    return a.l < b.l;
  });

  // FFT grid: needs indices in [-2*hmax, 2*hmax] to hold densities (products
  // of two wavefunctions) alias-free; wavefunction-only work uses the same
  // grid for simplicity.
  int extent[3] = {0, 0, 0};
  for (const GVector& gv : g_) {
    extent[0] = std::max(extent[0], std::abs(gv.h));
    extent[1] = std::max(extent[1], std::abs(gv.k));
    extent[2] = std::max(extent[2], std::abs(gv.l));
  }
  for (int axis = 0; axis < 3; ++axis) {
    fft_dims_[static_cast<std::size_t>(axis)] =
        friendly_size(static_cast<std::size_t>(2 * extent[axis] + 1));
  }

  grid_index_.reserve(g_.size());
  const auto wrap = [](int idx, std::size_t n) {
    const int ni = static_cast<int>(n);
    return static_cast<std::size_t>(((idx % ni) + ni) % ni);
  };
  for (const GVector& gv : g_) {
    const std::size_t ix = wrap(gv.h, fft_dims_[0]);
    const std::size_t iy = wrap(gv.k, fft_dims_[1]);
    const std::size_t iz = wrap(gv.l, fft_dims_[2]);
    grid_index_.push_back((iz * fft_dims_[1] + iy) * fft_dims_[0] + ix);
  }
}

}  // namespace ndft::dft
