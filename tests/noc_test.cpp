// Unit tests for the stack mesh: routing, serialization, contention.

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "noc/mesh.hpp"
#include "sim/event_queue.hpp"

namespace ndft::noc {
namespace {

TEST(MeshTest, HopCountsAreManhattan) {
  sim::EventQueue queue;
  Mesh mesh("m", queue, MeshConfig::table3());
  EXPECT_EQ(mesh.hops(0, 0), 0u);
  EXPECT_EQ(mesh.hops(0, 3), 3u);    // along the top row
  EXPECT_EQ(mesh.hops(0, 15), 6u);   // opposite corner of 4x4
  EXPECT_EQ(mesh.hops(5, 6), 1u);
  EXPECT_EQ(mesh.hops(12, 3), 6u);
}

TEST(MeshTest, DeliveryTimeScalesWithDistance) {
  const auto send_time = [](unsigned dst) {
    sim::EventQueue queue;
    Mesh mesh("m", queue, MeshConfig::table3());
    TimePs arrival = 0;
    mesh.send(0, dst, 64, [&arrival](TimePs at) { arrival = at; });
    queue.run();
    return arrival;
  };
  const TimePs near = send_time(1);
  const TimePs far = send_time(15);
  EXPECT_GT(far, near);
  // 6 hops vs 1 hop: 5 extra hop latencies.
  EXPECT_EQ(far - near, 5 * MeshConfig::table3().hop_latency_ps);
}

TEST(MeshTest, SerializationByLinkBandwidth) {
  sim::EventQueue queue;
  MeshConfig config = MeshConfig::table3();
  Mesh mesh("m", queue, config);
  TimePs small_arrival = 0;
  TimePs big_arrival = 0;
  mesh.send(0, 1, 64, [&](TimePs at) { small_arrival = at; });
  queue.run();
  sim::EventQueue queue2;
  Mesh mesh2("m2", queue2, config);
  mesh2.send(0, 1, 1 << 20, [&](TimePs at) { big_arrival = at; });
  queue2.run();
  const TimePs extra = transfer_time_ps((1 << 20) - 64, config.link_gbps);
  EXPECT_NEAR(static_cast<double>(big_arrival - small_arrival),
              static_cast<double>(extra), 1000.0);
}

TEST(MeshTest, ContentionDelaysSecondMessage) {
  sim::EventQueue queue;
  MeshConfig config = MeshConfig::table3();
  Mesh mesh("m", queue, config);
  TimePs first = 0;
  TimePs second = 0;
  // Two large messages over the same link at the same time.
  mesh.send(0, 1, 1 << 20, [&](TimePs at) { first = at; });
  mesh.send(0, 1, 1 << 20, [&](TimePs at) { second = at; });
  queue.run();
  const TimePs serialization = transfer_time_ps((1 << 20) + 16,
                                                config.link_gbps);
  EXPECT_GE(second - first, serialization - 1000);
  EXPECT_GT(mesh.stats().get("contention_ps"), 0.0);
}

TEST(MeshTest, DisjointPathsDoNotContend) {
  sim::EventQueue queue;
  Mesh mesh("m", queue, MeshConfig::table3());
  TimePs a = 0;
  TimePs b = 0;
  mesh.send(0, 1, 1 << 20, [&](TimePs at) { a = at; });
  mesh.send(4, 5, 1 << 20, [&](TimePs at) { b = at; });
  queue.run();
  EXPECT_EQ(a, b);  // identical distance, no shared links
}

TEST(MeshTest, LocalLoopbackCostsOneHop) {
  sim::EventQueue queue;
  MeshConfig config = MeshConfig::table3();
  Mesh mesh("m", queue, config);
  TimePs arrival = 0;
  mesh.send(7, 7, 64, [&](TimePs at) { arrival = at; });
  queue.run();
  EXPECT_EQ(arrival, config.hop_latency_ps +
                         transfer_time_ps(64 + config.packet_overhead,
                                          config.link_gbps));
}

TEST(MeshTest, BytesAccounted) {
  sim::EventQueue queue;
  Mesh mesh("m", queue, MeshConfig::table3());
  mesh.send(0, 5, 1000, nullptr);
  mesh.send(3, 9, 2000, nullptr);
  queue.run();
  EXPECT_EQ(mesh.bytes_sent(), 3000u);
  EXPECT_DOUBLE_EQ(mesh.stats().get("messages"), 2.0);
}

TEST(MeshTest, RejectsOutOfRangeNodes) {
  sim::EventQueue queue;
  Mesh mesh("m", queue, MeshConfig::table3());
  EXPECT_THROW(mesh.send(0, 16, 64, nullptr), NdftError);
  EXPECT_THROW(mesh.hops(99, 0), NdftError);
}

TEST(MeshTest, AlltoallFinishesWithinBisectionBound) {
  // A full 16-way exchange: delivery time must exceed the ideal
  // bisection-limited bound but stay within a small factor of it.
  sim::EventQueue queue;
  MeshConfig config = MeshConfig::table3();
  Mesh mesh("m", queue, config);
  const Bytes per_pair = 1 << 20;
  TimePs last = 0;
  for (unsigned s = 0; s < 16; ++s) {
    for (unsigned d = 0; d < 16; ++d) {
      if (s == d) continue;
      mesh.send(s, d, per_pair, [&last](TimePs at) {
        last = std::max(last, at);
      });
    }
  }
  queue.run();
  // 120 of 240 messages cross the 4-link bisection in each direction.
  const double cross_bytes = 120.0 * (per_pair + config.packet_overhead);
  const double bound_ps = cross_bytes / gbps_to_bytes_per_ps(
                                            config.link_gbps * 8);
  EXPECT_GT(static_cast<double>(last), bound_ps * 0.8);
  EXPECT_LT(static_cast<double>(last), bound_ps * 8.0);
}

}  // namespace
}  // namespace ndft::noc
