#pragma once
// Crystal lattices and the silicon supercells used throughout the paper
// (Si_16 ... Si_2048). Lengths are in Bohr, energies in Hartree.

#include <array>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace ndft::dft {

/// Minimal 3-vector for lattice geometry.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  Vec3 operator*(double s) const noexcept { return {x * s, y * s, z * s}; }
  double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  Vec3 cross(const Vec3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm2() const noexcept { return dot(*this); }
};

/// Conventional silicon lattice constant (5.431 Angstrom) in Bohr.
inline constexpr double kSiliconLatticeBohr = 10.2631;

/// A periodic crystal: lattice vectors plus atom positions (Cartesian Bohr).
class Crystal {
 public:
  Crystal(Vec3 a1, Vec3 a2, Vec3 a3, std::vector<Vec3> positions);

  const Vec3& a1() const noexcept { return a1_; }
  const Vec3& a2() const noexcept { return a2_; }
  const Vec3& a3() const noexcept { return a3_; }

  /// Reciprocal lattice vectors (include the 2*pi factor).
  const Vec3& b1() const noexcept { return b1_; }
  const Vec3& b2() const noexcept { return b2_; }
  const Vec3& b3() const noexcept { return b3_; }

  /// Cell volume in Bohr^3.
  double volume() const noexcept { return volume_; }

  const std::vector<Vec3>& positions() const noexcept { return positions_; }
  std::size_t atom_count() const noexcept { return positions_.size(); }

  /// Builds the diamond-structure silicon supercell with `n_atoms` atoms
  /// (must be a multiple of 8: the conventional cubic cell holds 8). The
  /// supercell replication (n1, n2, n3) is chosen as cubic as possible;
  /// Si_16 -> 1x1x2 cells, Si_64 -> 2x2x2, Si_1024 -> 4x4x8, ...
  static Crystal silicon_supercell(std::size_t n_atoms);

  /// The replication factors silicon_supercell() would pick.
  static std::array<std::size_t, 3> supercell_factors(std::size_t n_cells);

 private:
  Vec3 a1_, a2_, a3_;
  Vec3 b1_, b2_, b3_;
  double volume_;
  std::vector<Vec3> positions_;
};

}  // namespace ndft::dft
