#include "runtime/scheduler.hpp"

#include <algorithm>
#include <array>
#include <limits>

namespace ndft::runtime {

unsigned Scheduler::segments_for(Granularity granularity) {
  switch (granularity) {
    case Granularity::kInstruction: return 512;
    case Granularity::kBasicBlock: return 32;
    case Granularity::kFunction: return 1;
    case Granularity::kKernel: return 1;
  }
  return 1;
}

ExecutionPlan Scheduler::plan(const dft::Workload& workload,
                              Granularity granularity) const {
  if (granularity == Granularity::kKernel) {
    return plan_single_device(workload);
  }
  return plan_function_level(workload, segments_for(granularity));
}

ExecutionPlan Scheduler::plan_single_device(
    const dft::Workload& workload) const {
  // Whole-iteration granularity: pick the device with the lower summed
  // roofline estimate, no crossings.
  TimePs cpu_total = 0;
  TimePs ndp_total = 0;
  for (const dft::KernelWork& work : workload.kernels) {
    cpu_total += sca_->estimate(work, sca_->cpu());
    ndp_total += sca_->estimate(work, sca_->ndp());
  }
  const DeviceKind device =
      ndp_total < cpu_total ? DeviceKind::kNdp : DeviceKind::kCpu;

  ExecutionPlan plan;
  plan.placements.reserve(workload.kernels.size());
  for (const dft::KernelWork& work : workload.kernels) {
    Placement p;
    p.device = device;
    p.est_time_ps = sca_->estimate(
        work, device == DeviceKind::kNdp ? sca_->ndp() : sca_->cpu());
    plan.placements.push_back(p);
    plan.est_total_ps += p.est_time_ps;
  }
  return plan;
}

ExecutionPlan Scheduler::plan_function_level(
    const dft::Workload& workload, unsigned segments_per_kernel) const {
  // Dynamic program over the linear pipeline. State: which device holds
  // the live data after kernel i. Transition cost: the kernel's roofline
  // estimate on the chosen device plus, when the device changes, the
  // Eq. 1 crossing cost for the kernel's input data. Sub-function
  // granularities split each kernel into S segments that each pay their
  // own (smaller) DT plus a full CXT when they cross, modelling the
  // ping-pong overhead the paper's Section IV-A1 argues against.
  const std::size_t n = workload.kernels.size();
  ExecutionPlan plan;
  if (n == 0) {
    return plan;
  }
  constexpr TimePs kInf = std::numeric_limits<TimePs>::max() / 4;
  // cost[d] = best total with data on device d after the processed prefix.
  std::array<TimePs, 2> cost{0, 0};
  std::vector<std::array<std::uint8_t, 2>> parent(
      n, std::array<std::uint8_t, 2>{0, 0});

  const auto device_of = [](std::size_t index) {
    return index == 0 ? DeviceKind::kCpu : DeviceKind::kNdp;
  };

  std::vector<std::array<TimePs, 2>> kernel_cost(n);
  for (std::size_t i = 0; i < n; ++i) {
    kernel_cost[i][0] = sca_->estimate(workload.kernels[i], sca_->cpu());
    kernel_cost[i][1] = sca_->estimate(workload.kernels[i], sca_->ndp());
  }

  for (std::size_t i = 0; i < n; ++i) {
    const dft::KernelWork& work = workload.kernels[i];
    std::array<TimePs, 2> next{kInf, kInf};
    for (std::size_t to = 0; to < 2; ++to) {
      for (std::size_t from = 0; from < 2; ++from) {
        TimePs c = cost[from] + kernel_cost[i][to];
        if (from != to) {
          if (segments_per_kernel <= 1) {
            c += cost_->crossing_cost(work.input_bytes);
          } else {
            // S segments each move input/S and pay a CXT; in the worst
            // (homogeneous-kernel) case every segment crosses once.
            c += segments_per_kernel *
                 cost_->crossing_cost(work.input_bytes /
                                      segments_per_kernel);
          }
        }
        if (c < next[to]) {
          next[to] = c;
          parent[i][to] = static_cast<std::uint8_t>(from);
        }
      }
    }
    cost = next;
  }

  // Backtrack the cheaper terminal state.
  std::size_t state = cost[1] < cost[0] ? 1 : 0;
  std::vector<std::size_t> chosen(n);
  for (std::size_t i = n; i-- > 0;) {
    chosen[i] = state;
    state = parent[i][state];
  }

  plan.placements.resize(n);
  std::size_t previous = chosen[0];
  for (std::size_t i = 0; i < n; ++i) {
    Placement& p = plan.placements[i];
    p.device = device_of(chosen[i]);
    p.est_time_ps = kernel_cost[i][chosen[i]];
    p.crossing = (i == 0) ? false : (chosen[i] != previous);
    if (p.crossing) {
      const Bytes input = workload.kernels[i].input_bytes;
      if (segments_per_kernel <= 1) {
        p.transfer_in_ps = cost_->transfer_time(input);
        p.switch_in_ps = cost_->context_switch_time();
      } else {
        p.transfer_in_ps =
            segments_per_kernel *
            cost_->transfer_time(input / segments_per_kernel);
        p.switch_in_ps =
            segments_per_kernel * cost_->context_switch_time();
      }
      plan.crossings += 1;
    }
    plan.est_overhead_ps += p.transfer_in_ps + p.switch_in_ps;
    plan.est_total_ps += p.est_time_ps + p.transfer_in_ps + p.switch_in_ps;
    previous = chosen[i];
  }
  return plan;
}

}  // namespace ndft::runtime
