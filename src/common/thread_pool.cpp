#include "common/thread_pool.hpp"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace ndft {
namespace {

/// True while the current thread is executing chunks of some parallel_for;
/// nested calls run inline to avoid deadlock and oversubscription.
thread_local bool t_in_parallel_region = false;

std::size_t hardware_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t default_thread_count() {
  const char* env = std::getenv("NDFT_NUM_THREADS");
  if (env == nullptr) {
    return hardware_thread_count();
  }
  bool clamped = false;
  const std::size_t parsed = thread_count_from_env(env, &clamped);
  if (parsed == 0) {
    // Malformed override ("8x", "", "abc", "-2"): strtol's longest-prefix
    // reading would silently accept the garbage. Warn once (this runs
    // once, at first pool use) and fall back to the hardware width.
    const std::size_t fallback = hardware_thread_count();
    std::fprintf(stderr,
                 "ndft: ignoring malformed NDFT_NUM_THREADS='%s'; "
                 "using %zu hardware threads\n",
                 env, fallback);
    return fallback;
  }
  if (clamped) {
    std::fprintf(stderr,
                 "ndft: NDFT_NUM_THREADS='%s' exceeds the %zu-thread "
                 "ceiling; clamping\n",
                 env, kMaxPoolThreads);
  }
  return parsed;
}

}  // namespace

std::size_t thread_count_from_env(const char* value,
                                  bool* clamped) noexcept {
  if (clamped != nullptr) {
    *clamped = false;
  }
  if (value == nullptr || *value == '\0') {
    return 0;
  }
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value, &end, 10);
  const bool overflowed = errno == ERANGE;
  if (end == value || *end != '\0') {
    return 0;  // non-numeric, or a trailing suffix like "8x"
  }
  if (overflowed && parsed <= 0) {
    return 0;  // underflowed a huge negative value
  }
  if (!overflowed && parsed < 1) {
    return 0;
  }
  if (overflowed || static_cast<unsigned long>(parsed) > kMaxPoolThreads) {
    if (clamped != nullptr) {
      *clamped = true;
    }
    return kMaxPoolThreads;
  }
  return static_cast<std::size_t>(parsed);
}

struct ThreadPool::Impl {
  // One broadcast job at a time: concurrent top-level parallel_for calls
  // serialize here (workers never touch this mutex, so there is no
  // deadlock; nested calls already run inline before reaching it).
  std::mutex submit_mutex;
  // Broadcast job state: every worker (plus the caller) pulls chunk
  // indices from `next_chunk` until the job is drained.
  std::mutex mutex;
  std::condition_variable job_ready;
  std::condition_variable job_done;
  std::vector<std::thread> workers;
  std::uint64_t generation = 0;
  bool stopping = false;

  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::size_t job_begin = 0;
  std::size_t job_end = 0;
  std::size_t chunk_size = 1;
  std::size_t chunk_count = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::size_t active_workers = 0;
  std::exception_ptr first_error;

  void run_chunks() {
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t chunk = next_chunk.fetch_add(1);
      if (chunk >= chunk_count) break;
      const std::size_t lo = job_begin + chunk * chunk_size;
      const std::size_t hi = std::min(job_end, lo + chunk_size);
      try {
        (*body)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
    t_in_parallel_region = false;
  }

  void worker_loop(std::uint64_t spawn_generation) {
    // Start at the generation current when the worker was spawned:
    // workers added by resize() must not mistake an already-finished
    // job's generation for new work.
    std::uint64_t seen = spawn_generation;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      job_ready.wait(lock, [&] { return stopping || generation != seen; });
      if (stopping) return;
      seen = generation;
      lock.unlock();
      run_chunks();
      lock.lock();
      if (--active_workers == 0) {
        job_done.notify_all();
      }
    }
  }

  void start(std::size_t total_threads) {
    stopping = false;
    const std::uint64_t spawn_generation = generation;
    for (std::size_t i = 1; i < total_threads; ++i) {
      workers.emplace_back(
          [this, spawn_generation] { worker_loop(spawn_generation); });
    }
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    job_ready.notify_all();
    for (std::thread& worker : workers) {
      worker.join();
    }
    workers.clear();
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  impl_->start(threads == 0 ? 1 : threads);
}

ThreadPool::~ThreadPool() { impl_->stop(); }

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

std::size_t ThreadPool::threads() const noexcept {
  return impl_->workers.size() + 1;
}

void ThreadPool::resize(std::size_t threads) {
  NDFT_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  impl_->stop();
  impl_->start(threads);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  const std::size_t total_threads = threads();
  if (range <= std::max<std::size_t>(grain, 1) || total_threads == 1 ||
      t_in_parallel_region) {
    body(begin, end);
    return;
  }

  // Chunk boundaries depend only on (range, grain, thread count): ~4
  // chunks per thread for load balance, never below the grain.
  const std::size_t target_chunks = total_threads * 4;
  const std::size_t chunk_size = std::max(
      std::max<std::size_t>(grain, 1),
      (range + target_chunks - 1) / target_chunks);

  Impl& impl = *impl_;
  std::lock_guard<std::mutex> submission(impl.submit_mutex);
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    impl.body = &body;
    impl.job_begin = begin;
    impl.job_end = end;
    impl.chunk_size = chunk_size;
    impl.chunk_count = (range + chunk_size - 1) / chunk_size;
    impl.next_chunk.store(0);
    impl.active_workers = impl.workers.size();
    impl.first_error = nullptr;
    ++impl.generation;
  }
  impl.job_ready.notify_all();
  impl.run_chunks();
  std::unique_lock<std::mutex> lock(impl.mutex);
  impl.job_done.wait(lock, [&] { return impl.active_workers == 0; });
  impl.body = nullptr;
  if (impl.first_error) {
    std::rethrow_exception(impl.first_error);
  }
}

}  // namespace ndft
