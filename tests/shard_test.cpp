// The scatter/gather layer (ctest label: shard, RUN_SERIAL).
//
// Pins the distributed front door's contract: a band-structure job
// sharded across 1/2/4 backends — in-process Engines and loopback HTTP
// services alike — produces a payload BITWISE identical to a single
// Engine::run, including with a faulted backend rerouting mid-job and
// with every backend down (local-fallback degradation). Also covers
// batch scatter, cancellation/deadlines at the shard layer, upfront
// validation, and the explicit k-point sampling the sub-jobs ride on.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "api/shard.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "net/server.hpp"
#include "net/service.hpp"

namespace ndft::api {
namespace {

EngineConfig fast_config() {
  EngineConfig config;
  config.dispatch_threads = 0;
  config.system.sampled_ops_per_kernel = 20000;
  config.system.min_ops_per_core = 200;
  return config;
}

/// The canonical splittable job of these tests: a Monkhorst-Pack band
/// sweep on the primitive cell (3x3x3 folds to 14 k-points).
BandStructureJob mp_band_job() {
  BandStructureJob job;
  job.sampling = BandStructureJob::Sampling::kMonkhorstPack;
  job.mp_grid[0] = job.mp_grid[1] = job.mp_grid[2] = 3;
  job.bands = 6;
  job.valence_bands = 4;
  return job;
}

/// The reference: what one plain Engine produces for `request`.
std::string reference_payload(const JobRequest& request) {
  Engine engine(fast_config());
  const JobResult result = engine.run(request);
  EXPECT_TRUE(result.ok()) << result.error_message;
  return result.to_json().at("payload").dump();
}

/// A sharder over `n` fresh in-process engines. Engines are owned by the
/// returned pair's second member and must outlive the sharder.
struct LocalCluster {
  std::vector<std::unique_ptr<Engine>> engines;
  std::unique_ptr<ShardedEngine> sharded;

  explicit LocalCluster(std::size_t n, ShardedEngineConfig config = {}) {
    std::vector<std::shared_ptr<Backend>> backends;
    for (std::size_t i = 0; i < n; ++i) {
      engines.push_back(std::make_unique<Engine>(fast_config()));
      backends.push_back(std::make_shared<LocalBackend>(
          *engines.back(), "local-" + std::to_string(i)));
    }
    config.local = fast_config();
    sharded = std::make_unique<ShardedEngine>(std::move(backends), config);
  }
};

/// Backend that fails its first `failures` execute() calls with an
/// NdftError (a dead/unreachable engine), then recovers.
class FlakyBackend final : public Backend {
 public:
  FlakyBackend(std::shared_ptr<Backend> inner, int failures)
      : inner_(std::move(inner)), failures_(failures) {}
  const std::string& name() const noexcept override { return inner_->name(); }
  JobResult execute(const JobRequest& request) override {
    if (failures_.fetch_sub(1) > 0) {
      throw NdftError("injected backend failure");
    }
    return inner_->execute(request);
  }
  int remaining() const noexcept { return failures_.load(); }

 private:
  std::shared_ptr<Backend> inner_;
  std::atomic<int> failures_;
};

// -------------------------------------------------- in-process scatter

TEST(ShardedEngineTest, BandJobMatchesSingleEngineBitwiseFor1_2_4Backends) {
  const JobRequest request = mp_band_job();
  const std::string expected = reference_payload(request);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    LocalCluster cluster(n);
    const JobResult result = cluster.sharded->run(request);
    ASSERT_TRUE(result.ok()) << result.error_message;
    EXPECT_EQ(result.to_json().at("payload").dump(), expected)
        << n << " backends";
    ASSERT_TRUE(result.shard.has_value());
    EXPECT_EQ(result.shard->backends, n);
    EXPECT_GT(result.shard->shards, 1u);
    EXPECT_EQ(result.shard->failed_backends, 0u);
    ASSERT_TRUE(result.band_structure.has_value());
    EXPECT_EQ(result.band_structure->sampling, "monkhorst_pack");
    EXPECT_EQ(result.band_structure->path.size(), 14u);  // 27 folded
  }
}

TEST(ShardedEngineTest, PathSamplingShardsBitwiseToo) {
  BandStructureJob job;
  job.segments = 4;  // 17 path points
  job.bands = 6;
  const JobRequest request = job;
  const std::string expected = reference_payload(request);
  LocalCluster cluster(3);
  const JobResult result = cluster.sharded->run(request);
  ASSERT_TRUE(result.ok()) << result.error_message;
  EXPECT_EQ(result.to_json().at("payload").dump(), expected);
  ASSERT_TRUE(result.band_structure.has_value());
  EXPECT_EQ(result.band_structure->sampling, "path");
  // The direct gap comes from the labelled Gamma point, which sits in
  // the middle of some shard: the merge must still find it.
  EXPECT_GT(result.band_structure->direct_gap_gamma_ev, 0.0);
}

TEST(ShardedEngineTest, ExplicitSamplingRunsVerbatimThroughEngine) {
  // The sub-job wire form is a first-class sampling: an explicit list
  // solves exactly those points, no folding, weights flowing through.
  BandStructureJob job;
  job.sampling = BandStructureJob::Sampling::kExplicit;
  BandStructureJob::KPointSpec gamma;
  gamma.label = "Gamma";
  gamma.weight = 0.25;
  job.kpoints.push_back(gamma);
  BandStructureJob::KPointSpec other;
  other.k[0] = 0.2;
  other.weight = 0.75;
  job.kpoints.push_back(other);
  job.bands = 6;
  Engine engine(fast_config());
  const JobResult result = engine.run(job);
  ASSERT_TRUE(result.ok()) << result.error_message;
  ASSERT_TRUE(result.band_structure.has_value());
  EXPECT_EQ(result.band_structure->sampling, "explicit");
  ASSERT_EQ(result.band_structure->path.size(), 2u);
  EXPECT_EQ(result.band_structure->path[0].label, "Gamma");
  EXPECT_EQ(result.band_structure->path[0].weight, 0.25);
  EXPECT_EQ(result.band_structure->weight_sum, 1.0);
  EXPECT_GT(result.band_structure->direct_gap_gamma_ev, 0.0);
}

TEST(ShardedEngineTest, ExplicitSamplingValidates) {
  Engine engine(fast_config());
  BandStructureJob job;
  job.sampling = BandStructureJob::Sampling::kExplicit;
  EXPECT_EQ(engine.run(job).status, JobStatus::kInvalid);  // empty list
  BandStructureJob::KPointSpec bad;
  bad.weight = -1.0;
  job.kpoints.push_back(bad);
  EXPECT_EQ(engine.run(job).status, JobStatus::kInvalid);
  job.kpoints[0].weight = 1.0;
  job.kpoints[0].k[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine.run(job).status, JobStatus::kInvalid);
  job.kpoints[0].k[1] = 0.0;
  EXPECT_TRUE(engine.run(job).ok());
}

// --------------------------------------------------- faults and reroute

TEST(ShardedEngineTest, FaultedBackendReroutesAndPayloadStaysBitwise) {
  const JobRequest request = mp_band_job();
  const std::string expected = reference_payload(request);

  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::shared_ptr<Backend>> backends;
  for (int i = 0; i < 2; ++i) {
    engines.push_back(std::make_unique<Engine>(fast_config()));
  }
  // Backend 0 is permanently down (every attempt throws); backend 1
  // absorbs its shards.
  backends.push_back(std::make_shared<FlakyBackend>(
      std::make_shared<LocalBackend>(*engines[0], "down"), 1 << 20));
  backends.push_back(
      std::make_shared<LocalBackend>(*engines[1], "healthy"));
  ShardedEngineConfig config;
  config.backend_attempts = 2;
  config.retry_backoff_ms = 0.1;
  config.local = fast_config();
  ShardedEngine sharded(std::move(backends), config);

  const JobResult result = sharded.run(request);
  ASSERT_TRUE(result.ok()) << result.error_message;
  EXPECT_EQ(result.to_json().at("payload").dump(), expected);
  ASSERT_TRUE(result.shard.has_value());
  EXPECT_EQ(result.shard->failed_backends, 1u);
  EXPECT_GE(result.shard->rerouted, 1u);
  EXPECT_TRUE(result.degraded.empty());  // rerouting is not degradation
  EXPECT_GE(sharded.shards_rerouted(), 1u);
  EXPECT_EQ(sharded.backends_failed(), 1u);
}

TEST(ShardedEngineTest, AllBackendsDownDegradesToLocalFallback) {
  const JobRequest request = mp_band_job();
  const std::string expected = reference_payload(request);

  std::vector<std::shared_ptr<Backend>> backends;
  Engine unused(fast_config());
  for (int i = 0; i < 2; ++i) {
    backends.push_back(std::make_shared<FlakyBackend>(
        std::make_shared<LocalBackend>(unused, "dead"), 1 << 20));
  }
  ShardedEngineConfig config;
  config.backend_attempts = 1;
  config.retry_backoff_ms = 0.0;
  config.local = fast_config();
  ShardedEngine sharded(std::move(backends), config);

  const JobResult result = sharded.run(request);
  ASSERT_TRUE(result.ok()) << result.error_message;
  EXPECT_EQ(result.to_json().at("payload").dump(), expected);
  EXPECT_EQ(unused.jobs_completed(), 0u);  // nothing reached the backends
  ASSERT_TRUE(result.shard.has_value());
  EXPECT_EQ(result.shard->failed_backends, 2u);
  // Every shard ran locally, each tagged in the merged degradation list.
  ASSERT_FALSE(result.degraded.empty());
  for (const std::string& tag : result.degraded) {
    EXPECT_EQ(tag, "shard:local_fallback");
  }
  EXPECT_EQ(sharded.local_fallback_shards(), result.shard->shards);
}

TEST(ShardedEngineTest, AllBackendsDownWithoutFallbackFails) {
  Engine unused(fast_config());
  std::vector<std::shared_ptr<Backend>> backends;
  backends.push_back(std::make_shared<FlakyBackend>(
      std::make_shared<LocalBackend>(unused, "dead"), 1 << 20));
  ShardedEngineConfig config;
  config.backend_attempts = 1;
  config.retry_backoff_ms = 0.0;
  config.allow_local_fallback = false;
  ShardedEngine sharded(std::move(backends), config);
  const JobResult result = sharded.run(mp_band_job());
  EXPECT_EQ(result.status, JobStatus::kFailed);
  EXPECT_EQ(result.error, ErrorKind::kInternal);
}

// ------------------------------------------- cancellation and deadlines

TEST(ShardedEngineTest, PreCancelledTokenYieldsCancelled) {
  LocalCluster cluster(2);
  const CancelToken cancel = CancelToken::create();
  cancel.request_cancel();
  const JobResult result = cluster.sharded->run(mp_band_job(), cancel);
  EXPECT_EQ(result.status, JobStatus::kCancelled);
  EXPECT_EQ(result.error, ErrorKind::kCancelled);
}

TEST(ShardedEngineTest, TinyDeadlineSurfacesAsDeadlineExceeded) {
  LocalCluster cluster(2);
  BandStructureJob job = mp_band_job();
  job.mp_grid[0] = job.mp_grid[1] = job.mp_grid[2] = 8;  // plenty of work
  job.deadline_ms = 0.001;
  const JobResult result = cluster.sharded->run(job);
  EXPECT_EQ(result.status, JobStatus::kDeadlineExceeded);
  EXPECT_EQ(result.error, ErrorKind::kDeadlineExceeded);
}

TEST(ShardedEngineTest, InvalidRequestRejectedBeforeAnyBackend) {
  LocalCluster cluster(2);
  BandStructureJob job = mp_band_job();
  job.valence_bands = 0;
  const JobResult result = cluster.sharded->run(job);
  EXPECT_EQ(result.status, JobStatus::kInvalid);
  EXPECT_EQ(result.error, ErrorKind::kInvalidRequest);
  EXPECT_FALSE(result.error_details.empty());
  for (const auto& engine : cluster.engines) {
    EXPECT_EQ(engine->jobs_submitted(), 0u);
  }
}

// ---------------------------------------------------------------- batch

TEST(ShardedEngineTest, RunBatchMatchesPerMemberEngineRuns) {
  std::vector<JobRequest> requests;
  ScfJob scf;
  scf.atoms = 8;
  scf.ecut_ry = 3.0;
  scf.scf.max_iterations = 4;
  requests.emplace_back(scf);
  requests.emplace_back(PlanJob{});
  SimulateJob simulate;
  simulate.atoms = 16;
  requests.emplace_back(simulate);
  requests.emplace_back(mp_band_job());

  std::vector<std::string> expected;
  for (const JobRequest& request : requests) {
    expected.push_back(reference_payload(request));
  }

  LocalCluster cluster(2);
  const std::vector<JobResult> results = cluster.sharded->run_batch(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i << ": " << results[i].error_message;
    EXPECT_EQ(results[i].to_json().at("payload").dump(), expected[i])
        << "member " << i;
    ASSERT_TRUE(results[i].shard.has_value());
    EXPECT_EQ(results[i].shard->backends, 2u);
    EXPECT_EQ(results[i].shard->shards, requests.size());
  }
}

TEST(ShardedEngineTest, NonSplittableJobRunsWholeOnOneBackend) {
  LocalCluster cluster(3);
  const JobResult result = cluster.sharded->run(PlanJob{});
  ASSERT_TRUE(result.ok()) << result.error_message;
  ASSERT_TRUE(result.shard.has_value());
  EXPECT_EQ(result.shard->shards, 1u);
  // A traced band job must not shard either: the trace needs whole-run
  // program order.
  BandStructureJob traced = mp_band_job();
  traced.record_trace = true;
  const JobResult traced_result = cluster.sharded->run(traced);
  ASSERT_TRUE(traced_result.ok()) << traced_result.error_message;
  ASSERT_TRUE(traced_result.trace.has_value());
  ASSERT_TRUE(traced_result.shard.has_value());
  EXPECT_EQ(traced_result.shard->shards, 1u);
}

// ------------------------------------------------------- loopback HTTP

/// Engine + Service + HttpServer on an ephemeral loopback port.
struct TestServer {
  Engine engine;
  net::Service service;
  net::HttpServer server;

  TestServer()
      : engine(fast_config_async()),
        service(engine, quiet_service()),
        server(net::ServerConfig(), [this](const net::HttpRequest& request) {
          return service.handle(request);
        }) {
    server.start();
  }

  static EngineConfig fast_config_async() {
    EngineConfig config = fast_config();
    config.dispatch_threads = 2;  // remote jobs drain asynchronously
    return config;
  }
  static net::ServiceConfig quiet_service() {
    net::ServiceConfig config;
    config.log = nullptr;
    return config;
  }

  std::shared_ptr<HttpBackend> backend() {
    HttpBackend::Config config;
    config.host = "127.0.0.1";
    config.port = server.port();
    config.poll_wait_ms = 2000.0;
    return std::make_shared<HttpBackend>(config);
  }
};

TEST(ShardedEngineHttpTest, BandJobOverLoopbackMatchesBitwiseFor1_2Backends) {
  const JobRequest request = mp_band_job();
  const std::string expected = reference_payload(request);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}}) {
    std::vector<std::unique_ptr<TestServer>> servers;
    std::vector<std::shared_ptr<Backend>> backends;
    for (std::size_t i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<TestServer>());
      backends.push_back(servers.back()->backend());
    }
    ShardedEngineConfig config;
    config.local = fast_config();
    ShardedEngine sharded(std::move(backends), config);
    const JobResult result = sharded.run(request);
    ASSERT_TRUE(result.ok()) << result.error_message;
    EXPECT_EQ(result.to_json().at("payload").dump(), expected)
        << n << " HTTP backends";
    ASSERT_TRUE(result.shard.has_value());
    EXPECT_EQ(result.shard->backends, n);
    EXPECT_GT(result.shard->shards, 1u);
    for (const auto& server : servers) {
      EXPECT_GT(server->engine.jobs_completed(), 0u);
    }
  }
}

TEST(ShardedEngineHttpTest, MixedHttpAndLocalBackendsStayBitwise) {
  const JobRequest request = mp_band_job();
  const std::string expected = reference_payload(request);
  TestServer server;
  Engine local(fast_config());
  std::vector<std::shared_ptr<Backend>> backends;
  backends.push_back(server.backend());
  backends.push_back(std::make_shared<LocalBackend>(local, "local"));
  ShardedEngineConfig config;
  config.local = fast_config();
  ShardedEngine sharded(std::move(backends), config);
  const JobResult result = sharded.run(request);
  ASSERT_TRUE(result.ok()) << result.error_message;
  EXPECT_EQ(result.to_json().at("payload").dump(), expected);
}

TEST(ShardedEngineHttpTest, DeadHttpBackendReroutesToSurvivor) {
  const JobRequest request = mp_band_job();
  const std::string expected = reference_payload(request);
  TestServer healthy;
  // A port with no listener: every execute() throws on connect.
  HttpBackend::Config dead_config;
  dead_config.host = "127.0.0.1";
  dead_config.port = 1;  // reserved port, nothing listens
  dead_config.timeout_ms = 500.0;
  std::vector<std::shared_ptr<Backend>> backends;
  backends.push_back(std::make_shared<HttpBackend>(dead_config));
  backends.push_back(healthy.backend());
  ShardedEngineConfig config;
  config.backend_attempts = 1;
  config.local = fast_config();
  ShardedEngine sharded(std::move(backends), config);
  const JobResult result = sharded.run(request);
  ASSERT_TRUE(result.ok()) << result.error_message;
  EXPECT_EQ(result.to_json().at("payload").dump(), expected);
  ASSERT_TRUE(result.shard.has_value());
  EXPECT_EQ(result.shard->failed_backends, 1u);
  EXPECT_GE(result.shard->rerouted, 1u);
}

TEST(ShardedEngineHttpTest, InvalidSubRequestComesBackStructured) {
  // A 400 from the service must surface as a structured kInvalid result
  // (the request is at fault — rerouting would be useless), not as a
  // backend failure.
  TestServer server;
  auto backend = server.backend();
  BandStructureJob job = mp_band_job();
  job.valence_bands = 0;
  const JobResult result = backend->execute(job);
  EXPECT_EQ(result.status, JobStatus::kInvalid);
  EXPECT_EQ(result.error, ErrorKind::kInvalidRequest);
  EXPECT_FALSE(result.error_details.empty());
}

}  // namespace
}  // namespace ndft::api
