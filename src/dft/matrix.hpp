#pragma once
// Dense row-major matrices over double or complex<double>.
//
// The numerical substrate of the mini plane-wave DFT stack. Kept
// deliberately simple: contiguous storage, bounds-checked element access in
// debug paths, no expression templates. Performance-critical products go
// through the blocked kernels in linalg.hpp.

#include <algorithm>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ndft::dft {

using Complex = std::complex<double>;

/// Dense row-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    NDFT_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    NDFT_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw contiguous storage (row-major).
  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  /// Pointer to the start of row `r`.
  T* row(std::size_t r) {
    NDFT_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }
  const T* row(std::size_t r) const {
    NDFT_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Fills every element with `value`.
  void fill(const T& value) {
    std::fill(data_.begin(), data_.end(), value);
  }

  /// Returns the transpose (conjugation not applied).
  Matrix<T> transposed() const {
    Matrix<T> result(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        result(c, r) = (*this)(r, c);
      }
    }
    return result;
  }

  /// Storage size in bytes.
  std::size_t bytes() const noexcept { return data_.size() * sizeof(T); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<Complex>;

}  // namespace ndft::dft
