// ndft_run: command-line driver for one-off simulations.
//
//   ndft_run --atoms 256 --mode ndft
//   ndft_run --atoms 64 --mode all --csv
//   ndft_run --atoms 1024 --plan-only --granularity kernel
//
// Modes: cpu | gpu | ndp | ndft | all. With --csv the per-kernel
// breakdown is emitted as comma-separated values for plotting.

#include <cstdio>
#include <string>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/cli.hpp"
#include "core/ndft_system.hpp"

using namespace ndft;

namespace {

core::ExecMode mode_from(const std::string& name) {
  if (name == "cpu") return core::ExecMode::kCpuBaseline;
  if (name == "gpu") return core::ExecMode::kGpuBaseline;
  if (name == "ndp") return core::ExecMode::kNdpOnly;
  if (name == "ndft") return core::ExecMode::kNdft;
  throw NdftError("unknown mode: " + name + " (cpu|gpu|ndp|ndft|all)");
}

runtime::Granularity granularity_from(const std::string& name) {
  if (name == "instruction") return runtime::Granularity::kInstruction;
  if (name == "block") return runtime::Granularity::kBasicBlock;
  if (name == "function") return runtime::Granularity::kFunction;
  if (name == "kernel") return runtime::Granularity::kKernel;
  throw NdftError("unknown granularity: " + name);
}

void emit(const core::RunReport& report, bool csv) {
  if (!csv) {
    std::printf("%s\n", report.render().c_str());
    return;
  }
  TextTable table({"machine", "kernel", "class", "device", "time_ps"});
  for (const core::KernelTime& k : report.kernels) {
    table.add_row({to_string(report.mode), k.name, to_string(k.cls),
                   to_string(k.device), strformat("%llu",
                   static_cast<unsigned long long>(k.time_ps))});
  }
  std::printf("%s", table.render_csv().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const core::CliArgs args(argc, argv);
    if (args.has("help")) {
      std::printf("usage: ndft_run [--atoms N] [--mode cpu|gpu|ndp|ndft|all]"
                  " [--csv] [--plan-only] [--granularity g] [--ops N]\n");
      return 0;
    }
    const auto atoms =
        static_cast<std::size_t>(args.get_int("atoms", 64));
    const std::string mode_name = args.get("mode", "ndft");
    const bool csv = args.has("csv");

    core::SystemConfig config = core::SystemConfig::paper_default();
    if (args.has("ops")) {
      config.sampled_ops_per_kernel =
          static_cast<std::size_t>(args.get_int("ops", 150000));
    }
    const core::NdftSystem system(config);
    const dft::Workload workload = system.workload_for(atoms);

    if (args.has("plan-only")) {
      const runtime::ExecutionPlan plan = system.plan(
          workload, granularity_from(args.get("granularity", "function")));
      for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
        std::printf("%-22s -> %-4s%s\n", workload.kernels[i].name.c_str(),
                    to_string(plan.placements[i].device),
                    plan.placements[i].crossing ? "  (crossing)" : "");
      }
      std::printf("estimated total %s, overhead %s (%.1f %%)\n",
                  format_time(plan.est_total_ps).c_str(),
                  format_time(plan.est_overhead_ps).c_str(),
                  plan.overhead_fraction() * 100.0);
      return 0;
    }

    if (mode_name == "all") {
      const core::RunReport cpu =
          system.run(workload, core::ExecMode::kCpuBaseline);
      const core::RunReport gpu =
          system.run(workload, core::ExecMode::kGpuBaseline);
      const core::RunReport ndft =
          system.run(workload, core::ExecMode::kNdft);
      emit(cpu, csv);
      emit(gpu, csv);
      emit(ndft, csv);
      if (!csv) {
        std::printf("NDFT speedup: %s vs CPU, %s vs GPU\n",
                    format_speedup(core::speedup(cpu, ndft)).c_str(),
                    format_speedup(core::speedup(gpu, ndft)).c_str());
      }
      return 0;
    }
    emit(system.run(workload, mode_from(mode_name)), csv);
    return 0;
  } catch (const NdftError& error) {
    std::fprintf(stderr, "ndft_run: %s\n", error.what());
    return 1;
  }
}
