#pragma once
// From-scratch complex FFT: iterative radix-2, recursive mixed-radix for
// 2^a*3^b*5^c sizes, and Bluestein's algorithm for arbitrary lengths, plus
// the 3D transforms used on plane-wave grids. Forward transforms are
// unnormalised; the inverse divides by N so ifft(fft(x)) == x.
//
// All transforms run through FftPlan: a per-length object that owns the
// precomputed twiddle tables, bit-reversal permutation and (for Bluestein
// lengths) the chirp and its convolution spectra. Plans are immutable after
// construction, so one plan can execute many lines concurrently; a
// process-wide cache (fft_plan) hands out one plan per length. fft3d
// batches independent grid lines and spreads them across the thread pool.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dft/linalg.hpp"
#include "dft/matrix.hpp"

namespace ndft::dft {

/// Transform direction.
enum class FftDirection { kForward, kInverse };

/// A reusable transform plan for one length. Construction factors the
/// length, builds the twiddle/bit-reversal tables and, for non-friendly
/// lengths, the Bluestein chirp and convolution spectra; execution is
/// allocation-free given a caller-supplied workspace and is safe to run
/// from many threads at once on distinct lines.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);
  ~FftPlan();
  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

  std::size_t length() const noexcept { return n_; }

  /// Number of Complex elements of scratch `execute` needs (may be zero).
  std::size_t workspace_size() const noexcept { return workspace_size_; }

  /// In-place transform of one length-n line; `work` must point to at
  /// least workspace_size() elements (ignored when that is zero). Forward
  /// is unnormalised; inverse includes the 1/n scale.
  void execute(Complex* data, Complex* work, FftDirection direction) const;

  /// Convenience wrapper that allocates its own workspace.
  void execute(std::vector<Complex>& data, FftDirection direction) const;

 private:
  enum class Kind { kTrivial, kPow2, kMixed, kBluestein };

  template <bool Inverse>
  void pow2_core(Complex* data) const;
  template <bool Inverse>
  void mixed_recurse(const Complex* in, Complex* out, std::size_t n,
                     std::size_t stride, Complex* work) const;
  template <bool Inverse>
  void bluestein_core(Complex* data, Complex* work) const;

  std::size_t n_ = 0;
  Kind kind_ = Kind::kTrivial;
  std::size_t workspace_size_ = 0;
  std::vector<Complex> roots_;        ///< forward roots exp(-2*pi*i*k/n)
  std::vector<std::uint32_t> bitrev_; ///< pow2 only
  std::vector<Complex> chirp_;        ///< Bluestein forward chirp w^{k^2/2}
  std::vector<Complex> b_spec_fwd_;   ///< FFT of the forward chirp kernel
  std::vector<Complex> b_spec_inv_;   ///< FFT of the inverse chirp kernel
  std::unique_ptr<FftPlan> conv_plan_;///< pow2 plan for the convolution
};

/// The process-wide plan for length `n`, built on first request and cached
/// for the life of the process. Thread-safe.
const FftPlan& fft_plan(std::size_t n);

/// In-place 1D FFT of arbitrary length (Bluestein handles prime sizes).
void fft(std::vector<Complex>& data, FftDirection direction);

/// True if n factors completely into 2, 3 and 5 (fast path, no Bluestein).
bool is_friendly_size(std::size_t n);

/// Smallest size >= n that factors into 2, 3 and 5; used when choosing
/// plane-wave FFT grid dimensions.
std::size_t friendly_size(std::size_t n);

/// A dense complex scalar field on an nx x ny x nz grid.
/// Storage order: x fastest, then y, then z.
class Grid3 {
 public:
  Grid3() = default;
  Grid3(std::size_t nx, std::size_t ny, std::size_t nz)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz) {}

  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }
  std::size_t nz() const noexcept { return nz_; }
  std::size_t size() const noexcept { return data_.size(); }

  Complex& at(std::size_t ix, std::size_t iy, std::size_t iz) {
    NDFT_ASSERT(ix < nx_ && iy < ny_ && iz < nz_);
    return data_[(iz * ny_ + iy) * nx_ + ix];
  }
  const Complex& at(std::size_t ix, std::size_t iy, std::size_t iz) const {
    NDFT_ASSERT(ix < nx_ && iy < ny_ && iz < nz_);
    return data_[(iz * ny_ + iy) * nx_ + ix];
  }

  Complex& operator[](std::size_t i) { return data_[i]; }
  const Complex& operator[](std::size_t i) const { return data_[i]; }

  std::vector<Complex>& raw() noexcept { return data_; }
  const std::vector<Complex>& raw() const noexcept { return data_; }

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::size_t nz_ = 0;
  std::vector<Complex> data_;
};

/// In-place 3D FFT. The X and Y passes are fused per z slab: each pool
/// task transforms a slab's contiguous X lines in place and immediately
/// gathers its strided Y lines while the slab is still cache-resident,
/// so the transform sweeps the grid 4 times instead of 6; the Z pass
/// (stride nx*ny) follows in cache-friendly line batches. Results are
/// bitwise identical to fft3d_unfused() and for any thread count.
/// `count`, when non-null, accumulates the analytic flop/byte cost.
void fft3d(Grid3& grid, FftDirection direction, OpCount* count = nullptr);

/// The pre-fusion transform (one separate pass per dimension, 6 grid
/// sweeps), kept public as the regression baseline the fused fft3d is
/// tested and benchmarked against. Same semantics; bitwise-identical
/// results.
void fft3d_unfused(Grid3& grid, FftDirection direction,
                   OpCount* count = nullptr);

/// Analytic flop cost of a complex FFT of length n (~5 n log2 n).
Flops fft_flops(std::size_t n);

}  // namespace ndft::dft
