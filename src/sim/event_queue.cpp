#include "sim/event_queue.hpp"

#include <utility>

namespace ndft::sim {

void EventQueue::schedule_at(TimePs when, EventFn fn) {
  NDFT_ASSERT_MSG(when >= now_, "cannot schedule an event in the past");
  NDFT_ASSERT(fn != nullptr);
  heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

void EventQueue::pop_and_run() {
  // The callback may schedule new events; move it out before popping so the
  // queue is consistent while it runs.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.when;
  ++executed_;
  entry.fn();
}

TimePs EventQueue::run() {
  while (!heap_.empty()) {
    pop_and_run();
  }
  return now_;
}

TimePs EventQueue::run_until(TimePs deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) {
    pop_and_run();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace ndft::sim
