#pragma once
// Trace-driven core timing model.
//
// Models a decoupled core: compute bundles retire at the core's peak FP
// rate, memory operations issue into the cache hierarchy and overlap up to
// `max_outstanding` in flight (memory-level parallelism). With a wide
// window and high MLP this approximates an out-of-order host core; with
// MLP of 1-2 it approximates the paper's in-order NDP cores.

#include <functional>
#include <string>

#include "common/units.hpp"
#include "cpu/trace.hpp"
#include "mem/mem_request.hpp"
#include "sim/sim_object.hpp"

namespace ndft::cpu {

/// Hot-path execution counters; publish_stats() copies them into the
/// StatSet.
struct CoreCounters {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t mlp_stalls = 0;
  double flops = 0.0;
  double mem_bytes = 0.0;
};

/// Microarchitectural parameters of one core.
struct CoreConfig {
  std::uint64_t freq_mhz = 3000;
  unsigned issue_width = 4;       ///< memory ops issued per cycle (front end)
  double flops_per_cycle = 16.0;  ///< peak FP retire rate
  unsigned max_outstanding = 10;  ///< in-flight memory ops (MLP)

  /// Peak FP throughput in GFLOP/s.
  double peak_gflops() const noexcept {
    return static_cast<double>(freq_mhz) / 1000.0 * flops_per_cycle;
  }

  /// Xeon E5-2695-like baseline core: 2.4 GHz, AVX2 FMA (16 DP flop/cyc).
  static CoreConfig xeon_core();
  /// Table III host core: 3 GHz, 4-way superscalar, wide vector FP.
  static CoreConfig host_core();
  /// Table III NDP core: 2 GHz in-order, scalar FPU, shallow MLP.
  static CoreConfig ndp_core();
};

/// A single trace-driven core attached to a memory port (normally an L1).
class Core : public sim::SimObject {
 public:
  Core(std::string name, sim::EventQueue& queue, const CoreConfig& config,
       mem::MemoryPort& port);

  /// Begins executing `trace`; `on_done` fires (as an event) when the last
  /// operation has retired. The trace must outlive execution. A core runs
  /// one trace at a time.
  void run_trace(const Trace* trace, std::function<void()> on_done);

  /// True while a trace is executing.
  bool busy() const noexcept { return trace_ != nullptr; }

  /// Raw execution counters.
  const CoreCounters& counters() const noexcept { return counters_; }

  /// Copies the counters into the StatSet (call before reading stats()).
  void publish_stats();

  const CoreConfig& config() const noexcept { return config_; }

 private:
  void advance();
  void try_finish();

  CoreConfig config_;
  Clock clock_;
  mem::MemoryPort* port_;
  const Trace* trace_ = nullptr;
  std::function<void()> on_done_;
  std::size_t pc_ = 0;
  unsigned outstanding_ = 0;
  TimePs issue_time_ = 0;       ///< core-local front-end time
  TimePs last_completion_ = 0;  ///< latest memory completion
  CoreCounters counters_;
};

}  // namespace ndft::cpu
