#pragma once
// Unit helpers: byte sizes, frequencies, and time conversion between clock
// domains. Frequencies are stored in MHz (integer) which is exact for every
// clock in the paper's Table III.

#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ndft {

inline constexpr Bytes operator""_KiB(unsigned long long v) {
  return static_cast<Bytes>(v) << 10;
}
inline constexpr Bytes operator""_MiB(unsigned long long v) {
  return static_cast<Bytes>(v) << 20;
}
inline constexpr Bytes operator""_GiB(unsigned long long v) {
  return static_cast<Bytes>(v) << 30;
}

/// A clock domain: converts between cycles and picoseconds.
class Clock {
 public:
  /// Creates a clock running at `freq_mhz` megahertz. The period is the
  /// floor in picoseconds (e.g. 2400 MHz -> 416 ps, a 0.17 % error);
  /// every clock in the paper's configuration divides evenly or is
  /// within that rounding.
  explicit Clock(std::uint64_t freq_mhz) : freq_mhz_(freq_mhz) {
    NDFT_REQUIRE(freq_mhz > 0, "clock frequency must be positive");
    period_ps_ = 1000000 / freq_mhz;
    NDFT_REQUIRE(period_ps_ > 0, "clock frequency too high (>1 THz)");
  }

  /// Clock period in picoseconds (rounded down; exact for paper configs).
  TimePs period_ps() const noexcept { return period_ps_; }

  /// Frequency in MHz.
  std::uint64_t freq_mhz() const noexcept { return freq_mhz_; }

  /// Converts a cycle count to picoseconds.
  TimePs to_ps(Cycles cycles) const noexcept { return cycles * period_ps_; }

  /// Cycles elapsed at time `t` (floor).
  Cycles to_cycles(TimePs t) const noexcept { return t / period_ps_; }

  /// The earliest time >= `t` that falls on a cycle boundary.
  TimePs next_edge(TimePs t) const noexcept {
    const TimePs remainder = t % period_ps_;
    return remainder == 0 ? t : t + (period_ps_ - remainder);
  }

 private:
  std::uint64_t freq_mhz_;
  TimePs period_ps_;
};

/// Converts a bandwidth in GB/s (decimal) to bytes per picosecond.
constexpr double gbps_to_bytes_per_ps(double gb_per_s) noexcept {
  return gb_per_s * 1e9 / 1e12;
}

/// Time to move `bytes` at `gb_per_s` decimal gigabytes per second.
inline TimePs transfer_time_ps(Bytes bytes, double gb_per_s) {
  NDFT_ASSERT(gb_per_s > 0.0);
  const double ps = static_cast<double>(bytes) / gbps_to_bytes_per_ps(gb_per_s);
  return static_cast<TimePs>(ps + 0.5);
}

}  // namespace ndft
