#!/usr/bin/env bash
# One-shot tier-1 gate: configure, build, and run the full test suite.
# Usage: scripts/verify.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
