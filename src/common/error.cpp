#include "common/error.hpp"

#include <sstream>

namespace ndft::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream oss;
  oss << "assertion failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    oss << " (" << message << ")";
  }
  throw NdftError(oss.str());
}

}  // namespace ndft::detail
