#pragma once
// Dense linear algebra kernels: blocked GEMM and symmetric/Hermitian
// eigensolvers (the paper's SYEVD), implemented from scratch.
//
// The production eigensolver (`syevd`) is a blocked two-phase path:
// Householder panel reduction to tridiagonal form with the trailing-matrix
// rank-2k updates expressed as GEMM on the blocked kernel, implicit-shift
// QL on the tridiagonal matrix with the Givens rotations applied to the
// eigenvector matrix in pool-parallel contiguous sweeps, and a compact-WY
// back-transformation built from the same GEMM. The serial EISPACK-lineage
// tred2/tql2 pair is kept as `syevd_naive`, the reference the blocked
// solver is tested and benchmarked against. Complex Hermitian problems are
// solved through the standard real embedding [[A, -B], [B, A]], so they
// ride the blocked real path too; large complex GEMMs are computed with a
// 3M split (three real products on the real microkernel).

#include <vector>

#include "dft/matrix.hpp"

namespace ndft::dft {

/// Running tally of arithmetic and traffic, used to validate the analytic
/// kernel descriptors against the real numerics.
struct OpCount {
  Flops flops = 0;
  Bytes bytes = 0;

  void add(Flops f, Bytes b) noexcept {
    flops += f;
    bytes += b;
  }
};

/// C = alpha * op(A) * op(B) + beta * C for real matrices.
/// op is controlled by `transpose_a` / `transpose_b`. Cache-blocked with
/// panel packing (transposition happens inside the packing, so no operand
/// copies) and parallelised over row blocks on the thread pool; results
/// are bitwise identical for any thread count. `count`, when non-null,
/// accumulates flop/byte tallies.
void gemm(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
          double alpha = 1.0, double beta = 0.0, bool transpose_a = false,
          bool transpose_b = false, OpCount* count = nullptr);

/// Complex version; `transpose_a` applies the conjugate transpose.
void gemm(const ComplexMatrix& a, const ComplexMatrix& b, ComplexMatrix& c,
          Complex alpha = Complex{1.0, 0.0}, Complex beta = Complex{0.0, 0.0},
          bool conj_transpose_a = false, bool transpose_b = false,
          OpCount* count = nullptr);

/// Textbook triple-loop GEMM, kept as the reference implementation the
/// blocked kernels are tested and benchmarked against. Same semantics and
/// OpCount accounting as gemm().
void gemm_naive(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
                double alpha = 1.0, double beta = 0.0,
                bool transpose_a = false, bool transpose_b = false,
                OpCount* count = nullptr);

/// Complex reference; `conj_transpose_a` applies the conjugate transpose.
void gemm_naive(const ComplexMatrix& a, const ComplexMatrix& b,
                ComplexMatrix& c, Complex alpha = Complex{1.0, 0.0},
                Complex beta = Complex{0.0, 0.0},
                bool conj_transpose_a = false, bool transpose_b = false,
                OpCount* count = nullptr);

/// Analytic cost tally of a full-spectrum n x n symmetric eigensolve:
/// ~(4/3)n^3 flops for the reduction plus ~6n^3 for rotations with
/// eigenvectors (22 n^3 / 3 total) over the 3 n^2 matrix doubles. The
/// one formula shared by the solvers' OpCount/trace accounting, the
/// analytic workload descriptors and the Engine's queue estimator.
struct SyevdCost {
  Flops flops = 0;
  Bytes bytes = 0;
};
SyevdCost syevd_cost(std::size_t n) noexcept;

/// Result of a symmetric eigensolve.
struct EigenResult {
  std::vector<double> eigenvalues;  ///< ascending
  RealMatrix eigenvectors;          ///< column j pairs with eigenvalue j
};

/// Solves the full eigenproblem of a real symmetric matrix (SYEVD). This
/// is the production entry point every physics consumer goes through:
/// blocked Householder tridiagonalization (panel reflectors, GEMM
/// trailing updates), pool-parallel QL rotation sweeps, and a compact-WY
/// GEMM back-transformation of the eigenvectors. Results are bitwise
/// identical for any thread count. Throws NdftError if the matrix is not
/// square or the QL iteration fails to converge (pathological input).
EigenResult syevd(const RealMatrix& symmetric, OpCount* count = nullptr);

/// Serial reference solver (EISPACK tred2/tql2 lineage), kept as the
/// ground truth `syevd` is validated and benchmarked against. Same
/// semantics and OpCount accounting as syevd().
EigenResult syevd_naive(const RealMatrix& symmetric,
                        OpCount* count = nullptr);

/// Analytic cost tally of a partial eigensolve returning the lowest `m`
/// pairs: the full reduction (~(4/3)n^3) survives, but the QL rotations
/// and the back-transformation shrink to O(n^2 m). Collapses to
/// syevd_cost(n) in the regime where syevd_partial() delegates to the
/// full solver.
SyevdCost syevd_partial_cost(std::size_t n, std::size_t m) noexcept;

/// Solves for the lowest `m` eigenpairs of a real symmetric matrix
/// (1 <= m <= n). Reuses the blocked Householder reduction, then replaces
/// the full-spectrum QL stage with bisection (Sturm counts on the
/// tridiagonal matrix) plus inverse iteration for just those `m` vectors,
/// which are back-transformed through the compact-WY GEMMs restricted to
/// m columns — O(n^2 m) after the reduction instead of O(n^3). When
/// 2m > n the savings vanish and the call delegates to syevd(),
/// truncated to m pairs, so callers can request any window. Eigenvalues
/// match the full solver to ~n*eps*||A||; eigenvectors match to sign
/// within nondegenerate multiplets (clustered eigenvalues are
/// re-orthogonalised, spanning the same invariant subspace). Results are
/// bitwise identical for any thread count.
EigenResult syevd_partial(const RealMatrix& symmetric, std::size_t m,
                          OpCount* count = nullptr);

/// Result of a Hermitian eigensolve.
struct HermitianEigenResult {
  std::vector<double> eigenvalues;  ///< ascending
  ComplexMatrix eigenvectors;       ///< column j pairs with eigenvalue j
};

/// Solves the full eigenproblem of a complex Hermitian matrix via the real
/// 2n x 2n embedding (each eigenvalue appears twice; duplicates are
/// folded), so the solve runs on the blocked real syevd() path.
HermitianEigenResult heev(const ComplexMatrix& hermitian,
                          OpCount* count = nullptr);

/// Zeroes the calling thread's accumulated linalg wall time. The engine
/// resets before executing a job and reads the tally after, giving every
/// JobResult a `linalg_ms` timing bucket.
void linalg_timer_reset() noexcept;

/// Wall-clock milliseconds the calling thread has spent inside top-level
/// linalg entry points (gemm/syevd/heev) since the last reset. Nested
/// calls (GEMM inside syevd) are counted once, under the outermost entry.
double linalg_timer_ms() noexcept;

/// Frobenius norm of (A*x - lambda*x) for result verification in tests.
double eigen_residual(const RealMatrix& symmetric, const EigenResult& result);

/// Copies the upper triangle into the lower one. Used by the symmetric
/// Hamiltonian assemblies, whose upper triangles are filled row-wise on
/// the thread pool; the mirror runs on the pool too (each task writes
/// only its own rows, so the result is deterministic).
void mirror_upper(RealMatrix& symmetric);

}  // namespace ndft::dft
