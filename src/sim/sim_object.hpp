#pragma once
// Base class for named hardware models that live on the event queue.

#include <string>

#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace ndft::sim {

/// A named simulation component with access to the shared event queue and
/// its own statistics. Models derive from this (DRAM channel, cache, core,
/// NoC link, ...). Not copyable: components are identity objects.
class SimObject {
 public:
  SimObject(std::string name, EventQueue& queue)
      : name_(std::move(name)), queue_(&queue) {}
  virtual ~SimObject() = default;

  SimObject(const SimObject&) = delete;
  SimObject& operator=(const SimObject&) = delete;

  /// Hierarchical instance name, e.g. "ndp.stack3.unit5.core1".
  const std::string& name() const noexcept { return name_; }

  /// The shared event queue.
  EventQueue& queue() noexcept { return *queue_; }
  const EventQueue& queue() const noexcept { return *queue_; }

  /// Current simulated time.
  TimePs now() const noexcept { return queue_->now(); }

  /// This component's statistics.
  StatSet& stats() noexcept { return stats_; }
  const StatSet& stats() const noexcept { return stats_; }

 private:
  std::string name_;
  EventQueue* queue_;
  StatSet stats_;
};

}  // namespace ndft::sim
