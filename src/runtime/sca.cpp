#include "runtime/sca.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace ndft::runtime {

TimePs Sca::estimate(const dft::KernelWork& work,
                     const DeviceProfile& device) const {
  // Roofline: execution is bound by the slower of FP retire and DRAM
  // streaming. flops / GFLOP/s yields nanoseconds. Blocked kernels pay
  // the device's panel-efficiency factor.
  double gflops = device.peak_gflops;
  if (work.pattern == AccessPattern::kBlocked) {
    gflops *= device.blocked_compute_efficiency;
  }
  const double compute_ns =
      gflops <= 0.0 ? 0.0 : static_cast<double>(work.flops) / gflops;
  const double memory_ps =
      device.dram_gbps <= 0.0
          ? 0.0
          : static_cast<double>(work.dram_bytes) /
                gbps_to_bytes_per_ps(device.dram_gbps);
  return static_cast<TimePs>(
      std::llround(std::max(compute_ns * 1000.0, memory_ps)));
}

KernelAnalysis Sca::analyze(const dft::KernelWork& work) const {
  KernelAnalysis analysis;
  analysis.arithmetic_intensity = work.arithmetic_intensity();
  // Blocked kernels are judged against the sustainable panel rate, not
  // the absolute peak: that is the balance point a profiler sees.
  const double eff_cpu = work.pattern == AccessPattern::kBlocked
                             ? cpu_.blocked_compute_efficiency
                             : 1.0;
  const double eff_ndp = work.pattern == AccessPattern::kBlocked
                             ? ndp_.blocked_compute_efficiency
                             : 1.0;
  analysis.on_cpu = analysis.arithmetic_intensity >= cpu_.balance() * eff_cpu
                        ? Boundedness::kComputeBound
                        : Boundedness::kMemoryBound;
  analysis.on_ndp = analysis.arithmetic_intensity >= ndp_.balance() * eff_ndp
                        ? Boundedness::kComputeBound
                        : Boundedness::kMemoryBound;
  analysis.est_cpu_ps = estimate(work, cpu_);
  analysis.est_ndp_ps = estimate(work, ndp_);
  analysis.preferred = analysis.est_ndp_ps < analysis.est_cpu_ps
                           ? DeviceKind::kNdp
                           : DeviceKind::kCpu;
  return analysis;
}

std::vector<KernelAnalysis> Sca::analyze(
    const dft::Workload& workload) const {
  std::vector<KernelAnalysis> result;
  result.reserve(workload.kernels.size());
  for (const dft::KernelWork& work : workload.kernels) {
    result.push_back(analyze(work));
  }
  return result;
}

}  // namespace ndft::runtime
