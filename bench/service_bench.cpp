// bench_service_bench: throughput and latency of the HTTP service layer.
// An in-process ndft service (Engine + Service + HttpServer on an
// ephemeral loopback port) is stormed with cheap PlanJobs — submitted
// with a long poll so each request covers the full submit -> execute ->
// result round trip — at 1, 8 and 64 concurrent clients.
//
// Results go to BENCH_service.json for cross-commit tracking.
//
// Modes:
//   bench_service_bench           200 requests per client tier
//   bench_service_bench --smoke   25 requests per tier, exits nonzero
//                                 when any request fails (the verify.sh
//                                 --bench-smoke gate)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/request_json.hpp"
#include "common/run_metadata.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/service.hpp"

using namespace ndft;

namespace {

using Clock = std::chrono::steady_clock;

struct TierResult {
  std::size_t clients = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  double wall_s = 0.0;
  double req_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

TierResult storm(std::uint16_t port, std::size_t clients,
                 std::size_t requests_per_client) {
  const std::string body = api::job_request_to_json(api::PlanJob{}).dump();
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::size_t> failures{0};
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        // One keep-alive connection per client for the whole storm.
        net::HttpClient client("127.0.0.1", port);
        latencies[c].reserve(requests_per_client);
        for (std::size_t i = 0; i < requests_per_client; ++i) {
          const Clock::time_point t0 = Clock::now();
          const net::HttpResponse response =
              client.post("/v1/jobs?wait_ms=60000", body);
          const Clock::time_point t1 = Clock::now();
          if (response.status != 200) {
            failures.fetch_add(1);
            continue;
          }
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
      } catch (const NdftError&) {
        failures.fetch_add(requests_per_client);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  TierResult tier;
  tier.clients = clients;
  tier.requests = clients * requests_per_client;
  tier.failures = failures.load();
  tier.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    tier.p50_ms = all[all.size() / 2];
    tier.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
    tier.req_per_s = tier.wall_s > 0.0 ? all.size() / tier.wall_s : 0.0;
  }
  return tier;
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t requests_per_client = smoke ? 25 : 200;

  api::EngineConfig engine_config;
  engine_config.dispatch_threads = 4;
  engine_config.system.sampled_ops_per_kernel = 20000;
  engine_config.system.min_ops_per_core = 200;
  api::Engine engine(engine_config);
  net::ServiceConfig service_config;
  service_config.log = nullptr;  // the storm would swamp stderr
  net::Service service(engine, service_config);
  net::ServerConfig server_config;  // port 0 = ephemeral
  net::HttpServer server(server_config,
                         [&service](const net::HttpRequest& request) {
                           return service.handle(request);
                         });
  server.start();

  std::printf(
      "service throughput, %zu PlanJob requests per client "
      "(submit + long-poll)%s\n\n",
      requests_per_client, smoke ? " (smoke)" : "");

  std::vector<TierResult> tiers;
  for (const std::size_t clients : {1u, 8u, 64u}) {
    // Warm the path (connections, allocator, plan caches) untimed.
    (void)storm(server.port(), 1, 5);
    tiers.push_back(storm(server.port(), clients, requests_per_client));
  }
  server.shutdown();
  engine.drain();

  TextTable table({"clients", "req/s", "p50", "p99", "failures"});
  std::size_t total_failures = 0;
  for (const TierResult& tier : tiers) {
    table.add_row({strformat("%zu", tier.clients),
                   strformat("%.0f", tier.req_per_s),
                   strformat("%.2f ms", tier.p50_ms),
                   strformat("%.2f ms", tier.p99_ms),
                   strformat("%zu", tier.failures)});
    total_failures += tier.failures;
  }
  std::printf("%s\n", table.render().c_str());

  Json bench = Json::object();
  bench.set("bench", "service");
  bench.set("meta", run_metadata_json());
  bench.set("requests_per_client", requests_per_client);
  Json tier_list = Json::array();
  for (const TierResult& tier : tiers) {
    Json entry = Json::object();
    entry.set("clients", tier.clients);
    entry.set("requests", tier.requests);
    entry.set("failures", tier.failures);
    entry.set("wall_s", tier.wall_s);
    entry.set("req_per_s", tier.req_per_s);
    entry.set("p50_ms", tier.p50_ms);
    entry.set("p99_ms", tier.p99_ms);
    tier_list.push_back(std::move(entry));
  }
  bench.set("tiers", std::move(tier_list));
  const char* path = "BENCH_service.json";
  if (std::FILE* file = std::fopen(path, "w")) {
    const std::string text = bench.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }

  if (smoke && total_failures > 0) {
    std::fprintf(stderr, "FAIL: %zu requests failed\n", total_failures);
    return 1;
  }
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "service_bench: %s\n", error.what());
  return 1;
}
