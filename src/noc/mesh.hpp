#pragma once
// 2D-mesh memory network connecting the HBM stacks (Table III: 4x4 stacks
// in mesh). Transaction-level wormhole model: a message reserves each link
// along its XY route; contention is captured with per-link next-free
// times, serialization by the link bandwidth, and a per-hop router+wire
// latency.

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/sim_object.hpp"

namespace ndft::noc {

/// Callback invoked when a message is fully delivered.
using DeliveryFn = std::function<void(TimePs)>;

/// Mesh geometry and link parameters.
struct MeshConfig {
  unsigned width = 4;
  unsigned height = 4;
  double link_gbps = 120.0;      ///< per-direction link bandwidth (SerDes)
  TimePs hop_latency_ps = 4000;  ///< router traversal + wire, per hop
  Bytes packet_overhead = 16;    ///< header/CRC bytes per message
  double link_pj_per_bit = 4.0;  ///< SerDes + router energy per bit-hop

  unsigned stacks() const noexcept { return width * height; }

  /// Table III network: 4x4 stacks.
  static MeshConfig table3();
};

/// The stack-to-stack mesh. Node ids are row-major: id = y*width + x.
class Mesh : public sim::SimObject {
 public:
  Mesh(std::string name, sim::EventQueue& queue, const MeshConfig& config);

  /// Sends `bytes` from `src` to `dst`; `on_delivered` fires at arrival.
  /// A zero-hop send (src == dst) costs one hop latency (local loopback).
  void send(unsigned src, unsigned dst, Bytes bytes,
            DeliveryFn on_delivered);

  /// Manhattan distance between two nodes.
  unsigned hops(unsigned src, unsigned dst) const;

  /// Total bytes injected so far.
  Bytes bytes_sent() const noexcept { return bytes_sent_; }

  /// Energy of all traffic so far (nJ): bytes carried per link times the
  /// per-bit-hop cost.
  double energy_nj() const noexcept;

  const MeshConfig& config() const noexcept { return config_; }

 private:
  // Links are indexed [node][direction]; directions: 0=+x, 1=-x, 2=+y, 3=-y.
  struct Link {
    TimePs free_at = 0;
    Bytes bytes = 0;
  };

  unsigned node_x(unsigned id) const noexcept { return id % config_.width; }
  unsigned node_y(unsigned id) const noexcept { return id / config_.width; }
  Link& link_from(unsigned node, unsigned direction) {
    return links_[node * 4 + direction];
  }

  MeshConfig config_;
  std::vector<Link> links_;
  Bytes bytes_sent_ = 0;
};

}  // namespace ndft::noc
