#include "common/cancel.hpp"

namespace ndft {
namespace {

thread_local const CancelToken* t_cancel_token = nullptr;

}  // namespace

CancelScope::CancelScope(const CancelToken& token)
    : token_(token), previous_(t_cancel_token) {
  t_cancel_token = &token_;
}

CancelScope::~CancelScope() { t_cancel_token = previous_; }

void cancel_point() {
  if (t_cancel_token != nullptr) t_cancel_token->check();
}

bool cancel_pending() noexcept {
  return t_cancel_token != nullptr &&
         (t_cancel_token->cancel_requested() ||
          t_cancel_token->deadline_exceeded());
}

}  // namespace ndft
