#include "sim/port.hpp"

#include "common/fault.hpp"

namespace ndft::sim {

TimePs port_fault_delay_ps(TimePs latency_ps) noexcept {
  // A dropped message is recovered by retransmission: the receiver times
  // out after several wire latencies before the resend lands. The +1000ps
  // floor keeps untimed (latency 0) connections observably delayed too.
  return 10 * latency_ps + 1000;
}

bool port_fault_fires() noexcept { return fault_fires("sim.port"); }

}  // namespace ndft::sim
