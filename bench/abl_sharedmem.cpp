// Ablation A2 (Sections IV-B/IV-C): the pseudopotential data layout.
// Sweeps system sizes and compares the replicated layout against the
// shared-block layout on the NDP machine and the full NDFT co-design,
// reporting footprints and the OOM boundary.

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"
#include "runtime/pseudo_store.hpp"

using namespace ndft;

int main() {
  std::printf("Ablation A2: pseudopotential layout vs system size\n\n");
  const core::NdftSystem system;
  const Bytes capacity = system.config().ndp_capacity;

  TextTable table({"system", "replicated (NDP)", "shared blocks (NDP)",
                   "NDFT hybrid", "replicated status"});
  for (const std::size_t atoms : {16, 32, 64, 128, 256, 1024, 2048}) {
    const dft::Workload w = system.workload_for(atoms);
    const runtime::PseudoStore store(w, system.config().processes);
    const auto replicated =
        store.on_ndp(runtime::PseudoLayout::kReplicated, capacity);
    const auto shared =
        store.on_ndp(runtime::PseudoLayout::kSharedBlock, capacity);
    const auto ndft = store.on_ndft(capacity);
    table.add_row({strformat("Si_%zu", atoms),
                   strformat("%s (%s)", format_bytes(replicated.total).c_str(),
                             format_percent(replicated.fraction()).c_str()),
                   format_bytes(shared.total), format_bytes(ndft.total),
                   replicated.out_of_memory() ? "OOM" : "fits"});
  }
  std::printf("%s\n", table.render().c_str());

  // Sharing traffic cost of the distributed layout (per iteration).
  TextTable traffic({"system", "hierarchical traffic", "flat traffic",
                     "filter saving"});
  for (const std::size_t atoms : {std::size_t{64}, std::size_t{1024}}) {
    const dft::Workload w = system.workload_for(atoms);
    const runtime::PseudoStore store(w, system.config().processes);
    const Bytes hier = store.sharing_traffic_bytes(true);
    const Bytes flat = store.sharing_traffic_bytes(false);
    traffic.add_row({strformat("Si_%zu", atoms), format_bytes(hier),
                     format_bytes(flat),
                     format_speedup(static_cast<double>(flat) /
                                    static_cast<double>(hier))});
  }
  std::printf("%s", traffic.render().c_str());
  return 0;
}
