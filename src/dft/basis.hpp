#pragma once
// Plane-wave basis at the Gamma point: every reciprocal-lattice vector G
// with kinetic energy |G|^2/2 below the cutoff, plus the FFT grid that
// holds real-space fields without aliasing.

#include <array>
#include <vector>

#include "dft/lattice.hpp"

namespace ndft::dft {

/// One basis vector.
struct GVector {
  int h = 0;  ///< integer coordinates on the reciprocal lattice
  int k = 0;
  int l = 0;
  Vec3 g;          ///< Cartesian value (Bohr^-1)
  double g2 = 0.0; ///< |G|^2
};

/// Gamma-point plane-wave basis for a crystal at a kinetic-energy cutoff.
class PlaneWaveBasis {
 public:
  /// `ecut_ha` is the wavefunction cutoff in Hartree (|G|^2/2 <= ecut).
  PlaneWaveBasis(const Crystal& crystal, double ecut_ha);

  /// Basis vectors sorted by |G|^2 (G = 0 first).
  const std::vector<GVector>& gvectors() const noexcept { return g_; }
  std::size_t size() const noexcept { return g_.size(); }

  double ecut() const noexcept { return ecut_; }
  const Crystal& crystal() const noexcept { return *crystal_; }

  /// FFT grid dimensions: >= 2*gmax+1 per axis, rounded to 2/3/5-friendly
  /// sizes so transforms avoid the Bluestein fallback.
  std::array<std::size_t, 3> fft_dims() const noexcept { return fft_dims_; }
  /// Total FFT grid points.
  std::size_t fft_size() const noexcept {
    return fft_dims_[0] * fft_dims_[1] * fft_dims_[2];
  }

  /// Linear FFT-grid index of basis vector `i` (negative frequencies wrap).
  std::size_t grid_index(std::size_t i) const {
    NDFT_ASSERT(i < grid_index_.size());
    return grid_index_[i];
  }

 private:
  const Crystal* crystal_;
  double ecut_;
  std::vector<GVector> g_;
  std::array<std::size_t, 3> fft_dims_{};
  std::vector<std::size_t> grid_index_;
};

}  // namespace ndft::dft
