#include "dft/linalg.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cmath>
#include <numeric>
#include <type_traits>
#include <vector>

#if defined(__GNUC__) && defined(__AVX512F__)
#include <immintrin.h>  // _mm512_fmadd_pd for the GEMM microkernel
#endif

#include "common/fault.hpp"
#include "common/kernel_trace.hpp"
#include "common/math_util.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"

namespace ndft::dft {
namespace {

// --------------------------------------------------------- linalg timer
//
// Per-thread wall-clock tally of time spent inside top-level linalg entry
// points. Jobs execute on one engine thread, so reset-before / read-after
// brackets exactly the linalg share of that job. The depth counter keeps
// nested entries (GEMM called from inside syevd) from double counting.

thread_local double tl_linalg_ms = 0.0;
thread_local unsigned tl_linalg_depth = 0;
thread_local LinalgStageTimes tl_stage_times;

/// Accumulates the wall time of one eigensolver stage into the named
/// bucket of the thread's LinalgStageTimes. Stages never nest (each is a
/// disjoint span inside a solver entry point), so a plain scope suffices.
class StageTimerScope {
 public:
  explicit StageTimerScope(double LinalgStageTimes::*slot) noexcept
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~StageTimerScope() {
    tl_stage_times.*slot_ += std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start_)
                                 .count();
  }
  StageTimerScope(const StageTimerScope&) = delete;
  StageTimerScope& operator=(const StageTimerScope&) = delete;

 private:
  double LinalgStageTimes::*slot_;
  std::chrono::steady_clock::time_point start_;
};

class LinalgTimerScope {
 public:
  LinalgTimerScope() noexcept : start_(std::chrono::steady_clock::now()) {
    ++tl_linalg_depth;
  }
  ~LinalgTimerScope() {
    if (--tl_linalg_depth == 0) {
      tl_linalg_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    }
  }
  LinalgTimerScope(const LinalgTimerScope&) = delete;
  LinalgTimerScope& operator=(const LinalgTimerScope&) = delete;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// sqrt(a^2 + b^2) without destructive overflow.
double pythag(double a, double b) noexcept {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double ratio = absb / absa;
    return absa * std::sqrt(1.0 + ratio * ratio);
  }
  if (absb == 0.0) {
    return 0.0;
  }
  const double ratio = absa / absb;
  return absb * std::sqrt(1.0 + ratio * ratio);
}

double sign_of(double magnitude, double sign) noexcept {
  return sign >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

#if defined(__GNUC__) && defined(__AVX512F__)
#define NDFT_GEMM_SIMD 1
/// 8 doubles per lane; the GEMM microkernel's kNr is exactly two lanes.
typedef double V8d __attribute__((vector_size(64)));

V8d v8_load(const double* p) {
  V8d v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned load, folds to vmovupd
  return v;
}

void v8_store(double* p, V8d v) {
  __builtin_memcpy(p, &v, sizeof(v));  // unaligned store, folds to vmovupd
}

/// a*b + c as one fused instruction. The build pins -ffp-contract=off so
/// the compiler never fuses on its own (fusion would make results depend
/// on which call sites it picked); an explicit fma is a fixed part of the
/// kernel instead - deterministic everywhere, twice the FLOP throughput,
/// and one rounding tighter than mul+add.
V8d v8_fma(V8d a, V8d b, V8d c) {
  return reinterpret_cast<V8d>(_mm512_fmadd_pd(reinterpret_cast<__m512d>(a),
                                               reinterpret_cast<__m512d>(b),
                                               reinterpret_cast<__m512d>(c)));
}
#endif

/// Dot product of x[begin:end) with y[begin:end) over fixed-width
/// independent partial sums: breaks the FP add latency chain that makes a
/// naive dot run at ~1 element per 4 cycles under -ffp-contract=off, and
/// vectorises on AVX-512 builds. The accumulation order depends only on
/// the index range, so results are identical for any thread count.
double dot_range(const double* __restrict x, const double* __restrict y,
                 std::size_t begin, std::size_t end) {
  std::size_t c = begin;
  double head = 0.0;
#if NDFT_GEMM_SIMD
  V8d acc0{};
  V8d acc1{};
  for (; c + 16 <= end; c += 16) {
    acc0 += v8_load(x + c) * v8_load(y + c);
    acc1 += v8_load(x + c + 8) * v8_load(y + c + 8);
  }
  const V8d acc = acc0 + acc1;
  double lanes[8];
  __builtin_memcpy(lanes, &acc, sizeof(lanes));
  head = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
#else
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (; c + 4 <= end; c += 4) {
    s0 += x[c] * y[c];
    s1 += x[c + 1] * y[c + 1];
    s2 += x[c + 2] * y[c + 2];
    s3 += x[c + 3] * y[c + 3];
  }
  head = (s0 + s1) + (s2 + s3);
#endif
  for (; c < end; ++c) head += x[c] * y[c];
  return head;
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// (EISPACK tred2 lineage). On return `z` holds the accumulated orthogonal
/// transformation, `d` the diagonal and `e` the subdiagonal (e[0] unused).
void tred2(RealMatrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the transformation matrix.
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on a tridiagonal matrix with eigenvector
/// accumulation (EISPACK tql2 lineage). `d` holds eigenvalues on return.
void tql2(std::vector<double>& d, std::vector<double>& e, RealMatrix& z) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    unsigned iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        NDFT_REQUIRE(iter++ < 50, "QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          e[i + 1] = r = pythag(f, g);
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

// ------------------------------------------------- blocked eigensolver
//
// LAPACK-shaped two-phase path on full symmetric storage. Reduction
// processes panels of kEigBlock columns: each column's reflector is
// generated after folding in the panel's previous reflectors (dlatrd
// recurrence, with the dominant trailing matrix-vector product running on
// the thread pool), and the trailing matrix is updated once per panel
// with a single rank-2k GEMM on the blocked kernel. The tridiagonal
// eigenproblem reuses the tql2 recurrence for d/e, but buffers each QL
// sweep's Givens rotations and applies them to the *transposed*
// eigenvector matrix, where a rotation touches two contiguous rows: the
// sweep vectorises and splits across the pool by column ranges. The
// back-transformation accumulates each panel into a compact-WY factor
// (I - V T V^T) and applies it with three GEMMs. Every stage either runs
// serially or partitions disjoint outputs with a fixed per-element
// operation order, so results are bitwise identical for any thread count.

constexpr std::size_t kEigBlock = 32;  ///< reduction/back-transform panel

/// The eigensolver issues many short-lived stages (per-column gemv, panel
/// copies); waking the pool costs more than such a stage is worth, so
/// these dispatch only above ~1M flops per call. The chunky stages (QL
/// rotation batches, GEMM) keep the default grain policy.
constexpr std::size_t kEigDispatchWork = std::size_t{1} << 20;

std::size_t eig_grain(std::size_t work_per_index) {
  return std::max<std::size_t>(
      1, kEigDispatchWork / std::max<std::size_t>(1, work_per_index));
}

/// Blocked Householder reduction to tridiagonal form (dsytrd/dlatrd
/// lineage, lower-triangle convention). On return `d` is the diagonal,
/// `e` the subdiagonal (e[0] unused), `tau` the reflector scalars, and
/// reflector j's vector sits in a(j+1:n, j) with its leading 1 stored
/// explicitly at a(j+1, j) for the back-transformation.
void blocked_tridiagonalize(RealMatrix& a, std::vector<double>& d,
                            std::vector<double>& e,
                            std::vector<double>& tau) {
  const std::size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  tau.assign(n, 0.0);
  std::vector<double> v(n, 0.0);  // contiguous copy of the active reflector
  for (std::size_t i0 = 0; i0 + 2 < n;) {
    const std::size_t kb = std::min(kEigBlock, n - 2 - i0);
    RealMatrix w(n, kb);  // the panel's W accumulator (dlatrd)
    for (std::size_t jj = 0; jj < kb; ++jj) {
      const std::size_t j = i0 + jj;
      // Fold the panel's previous reflectors into column j:
      // a(j:n, j) -= V(j:n, 0:jj) w(j, 0:jj)^T + W(j:n, 0:jj) v(j, 0:jj)^T.
      if (jj > 0) {
        for (std::size_t r = j; r < n; ++r) {
          double acc = 0.0;
          for (std::size_t p = 0; p < jj; ++p) {
            acc += a(r, i0 + p) * w(j, p) + w(r, p) * a(j, i0 + p);
          }
          a(r, j) -= acc;
        }
      }
      // Householder reflector annihilating a(j+2:n, j).
      double tail2 = 0.0;
      for (std::size_t r = j + 2; r < n; ++r) tail2 += a(r, j) * a(r, j);
      const double alpha = a(j + 1, j);
      double beta = alpha;
      double tau_j = 0.0;
      if (tail2 != 0.0) {
        beta = -sign_of(pythag(alpha, std::sqrt(tail2)), alpha);
        tau_j = (beta - alpha) / beta;
        const double inv = 1.0 / (alpha - beta);
        for (std::size_t r = j + 2; r < n; ++r) a(r, j) *= inv;
      }
      tau[j] = tau_j;
      e[j + 1] = beta;
      a(j + 1, j) = 1.0;  // leading 1 of v_j, kept for the back-transform
      for (std::size_t r = 0; r < n; ++r) v[r] = (r > j) ? a(r, j) : 0.0;
      // w_j = tau (A_t v - V (W^T v) - W (V^T v)) - (tau/2)(w^T v) v, with
      // A_t the trailing square as of panel start. The matrix-vector
      // product dominates the panel work; rows are independent.
      parallel_for(j + 1, n, eig_grain(n - j),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       w(r, jj) = dot_range(a.row(r), v.data(), j + 1, n);
                     }
                   });
      if (jj > 0) {
        // Row-outer accumulation: the W / V panel rows are contiguous and
        // the jj partial sums are independent chains.
        std::vector<double> wtv(jj, 0.0);
        std::vector<double> vtv(jj, 0.0);
        for (std::size_t r = j + 1; r < n; ++r) {
          const double* wrow = w.row(r);
          const double* arow = a.row(r) + i0;
          const double vr = v[r];
          for (std::size_t p = 0; p < jj; ++p) {
            wtv[p] += wrow[p] * vr;
            vtv[p] += arow[p] * vr;
          }
        }
        for (std::size_t r = j + 1; r < n; ++r) {
          double acc = 0.0;
          for (std::size_t p = 0; p < jj; ++p) {
            acc += a(r, i0 + p) * wtv[p] + w(r, p) * vtv[p];
          }
          w(r, jj) -= acc;
        }
      }
      double dot = 0.0;
      for (std::size_t r = j + 1; r < n; ++r) {
        w(r, jj) *= tau_j;
        dot += w(r, jj) * v[r];
      }
      const double correction = -0.5 * tau_j * dot;
      for (std::size_t r = j + 1; r < n; ++r) {
        w(r, jj) += correction * v[r];
      }
    }
    // Trailing rank-2k update A_t -= V W^T + W V^T, expressed as the
    // single blocked GEMM A_t += (-[V | W]) [W | V]^T over the full
    // trailing square (the update is symmetric, so full storage stays
    // consistent for the next panel's matrix-vector products).
    const std::size_t t0 = i0 + kb;
    const std::size_t m = n - t0;
    if (m > 0) {
      RealMatrix left(m, 2 * kb);
      RealMatrix right(m, 2 * kb);
      RealMatrix trailing(m, m);
      parallel_for(0, m, eig_grain(4 * kb + m),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       for (std::size_t p = 0; p < kb; ++p) {
                         const double vv = a(t0 + r, i0 + p);
                         const double ww = w(t0 + r, p);
                         left(r, p) = vv;
                         left(r, kb + p) = ww;
                         right(r, p) = ww;
                         right(r, kb + p) = vv;
                       }
                       std::copy(a.row(t0 + r) + t0, a.row(t0 + r) + n,
                                 trailing.row(r));
                     }
                   });
      gemm(left, right, trailing, -1.0, 1.0, /*transpose_a=*/false,
           /*transpose_b=*/true);
      parallel_for(0, m, eig_grain(m),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       std::copy(trailing.row(r), trailing.row(r) + m,
                                 a.row(t0 + r) + t0);
                     }
                   });
    }
    i0 += kb;
  }
  for (std::size_t i = 0; i < n; ++i) d[i] = a(i, i);
  if (n >= 2) e[n - 1] = a(n - 1, n - 2);
}

/// One Givens rotation of a QL sweep, mixing eigenvector-matrix columns
/// (col, col + 1).
struct GivensRotation {
  std::size_t col;
  double c;
  double s;
};

/// Deferred application of QL rotations to the transposed eigenvector
/// matrix (zt(j, k) = Z(k, j)). The d/e recurrence never reads zt, so
/// rotations accumulate in a log and hit the matrix in large batches: one
/// pool dispatch applies tens of sweeps, amortising the dispatch cost
/// that per-sweep application would pay ~2n times per solve. Within a
/// batch every column sees the rotations in recorded order — exactly the
/// serial order — so results stay bitwise identical for any thread count
/// and any batch boundary.
class RotationLog {
 public:
  explicit RotationLog(RealMatrix& zt) : zt_(&zt) {
    pending_.reserve(kFlushThreshold + zt.rows());
  }

  void push(std::size_t col, double c, double s) {
    pending_.push_back({col, c, s});
  }

  /// Called between sweeps; applies the log once it is worth a dispatch.
  void maybe_flush() {
    if (pending_.size() >= kFlushThreshold) flush();
  }

  void flush() {
    if (pending_.empty()) return;
    RealMatrix& zt = *zt_;
    // Wide column bands: every band re-reads the whole rotation log, so
    // narrow bands multiply the per-rotation fixed cost. 128 columns keep
    // that amortised while still splitting across the pool.
    const std::size_t band = std::max<std::size_t>(
        128, parallel_grain(6 * pending_.size()));
    parallel_for(0, zt.cols(), band,
                 [&](std::size_t lo, std::size_t hi) {
                   for (const GivensRotation& rot : pending_) {
                     double* upper = zt.row(rot.col);
                     double* lower = zt.row(rot.col + 1);
                     for (std::size_t k = lo; k < hi; ++k) {
                       const double f = lower[k];
                       const double g = upper[k];
                       lower[k] = rot.s * g + rot.c * f;
                       upper[k] = rot.c * g - rot.s * f;
                     }
                   }
                 });
    pending_.clear();
  }

 private:
  /// Rotations per batch: big enough that one dispatch carries real work
  /// (~6 * threshold * n flops), small enough to stay cache-resident.
  static constexpr std::size_t kFlushThreshold = 16384;

  std::vector<GivensRotation> pending_;
  RealMatrix* zt_;
};

/// Implicit-shift QL with the same d/e recurrence as tql2, but with the
/// rotations routed through a RotationLog instead of being applied to the
/// eigenvector matrix one sweep at a time. The rotation sequence depends
/// only on d/e, so it is identical for any thread count.
void tridiag_ql(std::vector<double>& d, std::vector<double>& e,
                RealMatrix& zt) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  RotationLog log(zt);

  for (std::size_t l = 0; l < n; ++l) {
    unsigned iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        NDFT_REQUIRE(iter++ < 50, "QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          e[i + 1] = r = pythag(f, g);
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          log.push(i, c, s);
        }
        log.maybe_flush();
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  log.flush();
}

/// z := Q z with Q = H_0 H_1 ... read from reflectors stored in the
/// columns of `a`. Reflector j spans rows j+offset..n-1 with its unit
/// head stored explicitly at a(j+offset, j): offset 1 matches the
/// one-stage tridiagonalization, offset b the full->band reduction.
/// Panels are applied in reverse order as compact-WY updates (dlarft
/// forward factor, then three GEMMs per panel restricted to the rows the
/// panel touches).
void apply_q_panels(const RealMatrix& a, const std::vector<double>& tau,
                    RealMatrix& z, std::size_t offset) {
  const std::size_t n = a.rows();
  if (n < offset + 2) return;
  // The WY grouping here is independent of the panel width the reduction
  // used - any run of consecutive reflectors forms a panel. Wider panels
  // than kEigBlock pay off on the apply side: the staging copies and
  // per-panel fixed costs scale with the panel count while the GEMM flop
  // total stays constant.
  constexpr std::size_t kApplyBlock = 4 * kEigBlock;
  std::vector<std::size_t> panel_starts;
  for (std::size_t i0 = 0; i0 + offset + 1 < n;
       i0 += std::min(kApplyBlock, n - offset - 1 - i0)) {
    panel_starts.push_back(i0);
  }
  const std::size_t cols = z.cols();
  for (std::size_t pi = panel_starts.size(); pi-- > 0;) {
    const std::size_t i0 = panel_starts[pi];
    const std::size_t kb = std::min(kApplyBlock, n - offset - 1 - i0);
    const std::size_t r0 = i0 + offset;  // first row the panel can touch
    const std::size_t m = n - r0;
    // V (m x kb): column p is reflector i0+p, unit at global row
    // i0+p+offset, zero above (zero-initialised storage provides the
    // zeros).
    RealMatrix v(m, kb);
    for (std::size_t rr = 0; rr < m; ++rr) {
      const std::size_t r = r0 + rr;
      for (std::size_t p = 0; p < kb && i0 + p + offset <= r; ++p) {
        v(rr, p) = a(r, i0 + p);
      }
    }
    // Compact-WY factor (dlarft, forward columnwise): the panel's product
    // of reflectors is I - V T V^T with T upper triangular.
    RealMatrix t(kb, kb);
    // All the reflector inner products the dlarft recurrence needs are
    // entries of the Gram matrix V^T V - one GEMM instead of kb^2/2
    // stride-kb scalar dot products.
    RealMatrix gram;
    gemm(v, v, gram, 1.0, 0.0, /*transpose_a=*/true);
    for (std::size_t p = 0; p < kb; ++p) {
      const double tau_p = tau[i0 + p];
      if (tau_p == 0.0) continue;  // H = I: the zero row/column is exact
      for (std::size_t q = 0; q < p; ++q) {
        double acc = 0.0;
        for (std::size_t u = q; u < p; ++u) acc += t(q, u) * gram(u, p);
        t(q, p) = -tau_p * acc;
      }
      t(p, p) = tau_p;
    }
    // z(r0:n, :) -= V (T (V^T z(r0:n, :))).
    RealMatrix zs(m, cols);
    parallel_for(0, m, eig_grain(cols),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t rr = lo; rr < hi; ++rr) {
                     std::copy(z.row(r0 + rr), z.row(r0 + rr) + cols,
                               zs.row(rr));
                   }
                 });
    RealMatrix x1;
    gemm(v, zs, x1, 1.0, 0.0, /*transpose_a=*/true);
    RealMatrix x2;
    gemm(t, x1, x2);
    gemm(v, x2, zs, -1.0, 1.0);
    parallel_for(0, m, eig_grain(cols),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t rr = lo; rr < hi; ++rr) {
                     std::copy(zs.row(rr), zs.row(rr) + cols,
                               z.row(r0 + rr));
                   }
                 });
  }
}

/// One-stage back-transform: the tridiagonalization's reflectors have
/// their unit heads one row below the diagonal.
void apply_q_blocked(const RealMatrix& a, const std::vector<double>& tau,
                     RealMatrix& z) {
  apply_q_panels(a, tau, z, 1);
}

// ------------------------------------------- two-stage reduction (SBR)
//
// The two-stage path reduces full -> band -> tridiagonal. Stage one runs
// blocked QR panels of width b: each panel's reflectors are generated on a
// transposed copy (contiguous rows), and the trailing square absorbs the
// whole panel at once through the symmetric compact-WY update
// A <- A - Z V^T - V Z^T with Z = Y - (1/2) V S, Y = A V T,
// S = T^T (V^T Y) - pure level-3 GEMM, unlike the one-stage path whose
// per-column matrix-vector product is level-2 memory-bound. Stage two
// chases the band to tridiagonal form with Givens rotations (Schwarz /
// dsbtrd lineage) recorded into a log; the eigenvector back-transform
// replays that log reversed and transposed, then pushes through the same
// compact-WY panels as the one-stage solver (offset b instead of 1).

constexpr std::size_t kBandWidth = 64;  ///< stage-one bandwidth, large n

/// Stage-one target bandwidth. Wider bands shift work from the Givens
/// chase (O(n^2 b) but cache-unfriendly) into the blocked GEMM update,
/// which is the right trade once the matrix dwarfs the band: 64 wins at
/// n >= 384 but loses ~15% at n = 256 where the band would be a quarter
/// of the matrix. A function of n only, so the rotation sequence stays
/// pool-width independent.
std::size_t band_width(std::size_t n) {
  return n < 384 ? 48 : kBandWidth;
}

/// Problems below this size stay on the one-stage path: the chase and its
/// reversed-rotation back-transform only pay for themselves once the
/// trailing updates are big enough to run at level-3 GEMM rate.
constexpr std::size_t kTwoStageMin = 160;

/// Blocked full -> band reduction (bandwidth kBandWidth, lower-triangle
/// convention). On return the band of `a` holds the banded matrix;
/// strictly below it, column j holds reflector j's tail (rows j+b+1..n),
/// whose unit head lives at a(j+b, j) *conceptually* - that slot holds the
/// band entry until extract_band() captures it and writes the explicit 1
/// the back-transform reads. tau[j] is the reflector scalar.
void band_reduce(RealMatrix& a, std::vector<double>& tau) {
  const std::size_t n = a.rows();
  const std::size_t b = band_width(n);
  tau.assign(n, 0.0);
  for (std::size_t i0 = 0; i0 + b + 1 < n;) {
    const std::size_t kb = std::min(b, n - b - 1 - i0);
    const std::size_t r0 = i0 + b;  // first row the panel reflectors touch
    const std::size_t mt = n - r0;
    // Panel QR on the transposed block pt(p, r) = a(r0+r, i0+p): each
    // reflector's vector is a contiguous row slice.
    RealMatrix pt(kb, mt);
    for (std::size_t p = 0; p < kb; ++p) {
      double* row = pt.row(p);
      for (std::size_t r = 0; r < mt; ++r) row[r] = a(r0 + r, i0 + p);
    }
    for (std::size_t p = 0; p < kb; ++p) {
      double* vp = pt.row(p);
      // Householder reflector annihilating rows r0+p+1..n of column i0+p.
      double tail2 = 0.0;
      for (std::size_t r = p + 1; r < mt; ++r) tail2 += vp[r] * vp[r];
      const double alpha = vp[p];
      double beta = alpha;
      double tau_p = 0.0;
      if (tail2 != 0.0) {
        beta = -sign_of(pythag(alpha, std::sqrt(tail2)), alpha);
        tau_p = (beta - alpha) / beta;
        const double inv = 1.0 / (alpha - beta);
        for (std::size_t r = p + 1; r < mt; ++r) vp[r] *= inv;
      }
      tau[i0 + p] = tau_p;
      vp[p] = beta;  // R(p, p); the reflector's unit head stays implicit
      if (tau_p != 0.0) {
        // Fold H_p into the remaining panel columns:
        // row_q -= tau_p (v . row_q) v, with v's implicit unit at p.
        for (std::size_t q = p + 1; q < kb; ++q) {
          double* rq = pt.row(q);
          const double scale =
              tau_p * (rq[p] + dot_range(vp, rq, p + 1, mt));
          rq[p] -= scale;
          for (std::size_t r = p + 1; r < mt; ++r) rq[r] -= scale * vp[r];
        }
      }
    }
    // Write the factored panel back: R inside the band, reflector tails
    // below it.
    for (std::size_t p = 0; p < kb; ++p) {
      const double* row = pt.row(p);
      for (std::size_t r = 0; r < mt; ++r) a(r0 + r, i0 + p) = row[r];
    }
    // V (mt x kb, unit lower trapezoidal) and the dlarft forward factor T.
    RealMatrix v(mt, kb);
    for (std::size_t p = 0; p < kb; ++p) {
      v(p, p) = 1.0;
      for (std::size_t r = p + 1; r < mt; ++r) v(r, p) = pt(p, r);
    }
    RealMatrix t(kb, kb);
    std::vector<double> h(kb, 0.0);
    for (std::size_t p = 0; p < kb; ++p) {
      const double tau_p = tau[i0 + p];
      if (tau_p == 0.0) continue;
      for (std::size_t q = 0; q < p; ++q) {
        // v_q . v_p: v_p's unit head plus the contiguous tails in pt.
        h[q] = pt(q, p) + dot_range(pt.row(q), pt.row(p), p + 1, mt);
      }
      for (std::size_t q = 0; q < p; ++q) {
        double acc = 0.0;
        for (std::size_t u = q; u < p; ++u) acc += t(q, u) * h[u];
        t(q, p) = -tau_p * acc;
      }
      t(p, p) = tau_p;
    }
    // Final short panel (kb < b): the columns between the panel and the
    // trailing square see Q^T from the left only. Their updated entries
    // all land within band distance b, so they need no reflectors.
    const std::size_t strip0 = i0 + kb;
    if (strip0 < r0) {
      const std::size_t w = r0 - strip0;
      RealMatrix x(mt, w);
      for (std::size_t r = 0; r < mt; ++r) {
        for (std::size_t c = 0; c < w; ++c) x(r, c) = a(r0 + r, strip0 + c);
      }
      RealMatrix x1;
      gemm(v, x, x1, 1.0, 0.0, /*transpose_a=*/true);
      RealMatrix x2;
      gemm(t, x1, x2, 1.0, 0.0, /*transpose_a=*/true);
      gemm(v, x2, x, -1.0, 1.0);
      for (std::size_t r = 0; r < mt; ++r) {
        for (std::size_t c = 0; c < w; ++c) a(r0 + r, strip0 + c) = x(r, c);
      }
    }
    // Two-sided trailing update A_t <- Q^T A_t Q as level-3 GEMM:
    // W = A_t V, Y = W T, S = T^T (V^T Y) (symmetric), Z = Y - (1/2) V S,
    // then the rank-2k A_t -= Z V^T + V Z^T as one GEMM with
    // left = [Z | V], right = [V | Z].
    RealMatrix at(mt, mt);
    parallel_for(0, mt, eig_grain(mt),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t r = lo; r < hi; ++r) {
                     std::copy(a.row(r0 + r) + r0, a.row(r0 + r) + n,
                               at.row(r));
                   }
                 });
    RealMatrix wmat;
    gemm(at, v, wmat);
    RealMatrix y;
    gemm(wmat, t, y);
    RealMatrix vty;
    gemm(v, y, vty, 1.0, 0.0, /*transpose_a=*/true);
    RealMatrix s;
    gemm(t, vty, s, 1.0, 0.0, /*transpose_a=*/true);
    RealMatrix zmat = y;
    gemm(v, s, zmat, -0.5, 1.0);
    RealMatrix left(mt, 2 * kb);
    RealMatrix right(mt, 2 * kb);
    parallel_for(0, mt, eig_grain(4 * kb),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t r = lo; r < hi; ++r) {
                     for (std::size_t p = 0; p < kb; ++p) {
                       const double zz = zmat(r, p);
                       const double vv = v(r, p);
                       left(r, p) = zz;
                       left(r, kb + p) = vv;
                       right(r, p) = vv;
                       right(r, kb + p) = zz;
                     }
                   }
                 });
    gemm(left, right, at, -1.0, 1.0, /*transpose_a=*/false,
         /*transpose_b=*/true);
    parallel_for(0, mt, eig_grain(mt),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t r = lo; r < hi; ++r) {
                     std::copy(at.row(r), at.row(r) + mt,
                               a.row(r0 + r) + r0);
                   }
                 });
    i0 += kb;
  }
}

/// Captures the band into compact storage band(j, d) = A(j+d, j) for
/// d in [0, b] (column b+1 is the chase's bulge slot), then overwrites
/// each reflector's head slot a(j+b, j) with the explicit 1
/// apply_q_panels reads. Columns are the leading index so the chase's
/// varying-distance accesses land in one short row instead of striding
/// n doubles apart (a 4 KiB critical stride at n = 512 that thrashes
/// every access onto the same cache set).
RealMatrix extract_band(RealMatrix& a, std::size_t b) {
  const std::size_t n = a.rows();
  RealMatrix band(n, b + 2);
  for (std::size_t j = 0; j < n; ++j) {
    double* row = band.row(j);
    const std::size_t dmax = std::min(b, n - 1 - j);
    for (std::size_t d = 0; d <= dmax; ++d) row[d] = a(j + d, j);
  }
  for (std::size_t j = 0; j + b + 1 < n; ++j) a(j + b, j) = 1.0;
  return band;
}

/// Band -> tridiagonal Givens bulge chase (Schwarz / dsbtrd lineage) on
/// the compact band storage. For source column j, chase dist (run for
/// dist = dmax down to 2) annihilates the entry at distance dist below
/// the diagonal with a rotation in planes (j + dist - 1, j + dist),
/// then chases the fill-in bulge down the band to the edge; the chase's
/// m-th rotation acts on plane j + dist + m b. Every rotation G acts as
/// the similarity A <- G A G^T, so the accumulated transform is
/// Q2^T = G_N ... G_1; apply_chase_rotations replays the log reversed
/// and transposed. Before appending to `log`, each j's rotations are
/// regrouped depth-major (stable bucket by m): in the replayed
/// direction only same-depth adjacent-dist rotations conflict - planes
/// j + dist + m b of one j coincide or touch only at equal m - and the
/// stable scatter preserves their relative order, so the replayed
/// product is bitwise identical to replaying in emission order. Each
/// depth group then holds a run of consecutive descending planes
/// (dist descending at fixed m) that apply_chase_rotations turns into
/// one register-carried chain. `group_len` records each (j, m) group's
/// rotation count and `j_groups` the number of groups per j (chases
/// die off the bottom edge or on exact zeros, both data-dependent).
/// On return `d`/`e` hold the tridiagonal matrix (e[i] couples rows
/// i-1 and i, e[0] unused). Entirely serial: the rotation sequence is
/// part of the bitwise-determinism contract.
void band_to_tridiagonal(RealMatrix& band, std::size_t b,
                         std::vector<double>& d, std::vector<double>& e,
                         std::vector<GivensRotation>& log,
                         std::vector<std::uint32_t>& group_len,
                         std::vector<std::uint32_t>& j_groups) {
  const std::size_t n = band.rows();
  std::vector<GivensRotation> jbuf;    // this j's rotations, chase order
  std::vector<std::uint32_t> jdepth;   // depth of each jbuf entry
  std::vector<std::uint32_t> dcount;   // rotations per depth
  std::vector<std::uint32_t> doff;     // scatter cursors per depth
  std::vector<GivensRotation> sorted;  // depth-major scratch
  for (std::size_t j = 0; j + 2 < n; ++j) {
    const std::size_t dmax = std::min(b, n - 1 - j);
    jbuf.clear();
    jdepth.clear();
    dcount.clear();
    for (std::size_t dist = dmax; dist >= 2; --dist) {
      std::size_t sc = j;      // column holding the entry to annihilate
      std::size_t sd = dist;   // its distance below the diagonal
      std::uint32_t m = 0;     // chase depth
      for (;;) {
        const std::size_t p = sc + sd;  // rotation plane (p-1, p)
        const std::size_t p1 = p - 1;
        const double f = band(sc, sd - 1);
        const double g = band(sc, sd);
        if (g == 0.0) break;  // nothing to chase further
        const double r = pythag(f, g);
        const double c = f / r;
        const double s = -g / r;
        band(sc, sd - 1) = r;
        band(sc, sd) = 0.0;
        jbuf.push_back({p1, c, s});
        jdepth.push_back(m);
        if (m >= dcount.size()) dcount.resize(m + 1, 0);
        ++dcount[m];
        ++m;
        // Row pair (p-1, p) across earlier columns still inside the
        // band: one adjacent pair per column row, stepping b+1 doubles.
        for (std::size_t col = sc + 1; col < p1; ++col) {
          double* entry = band.row(col) + (p1 - col);
          const double u = entry[0];
          const double l = entry[1];
          entry[0] = c * u - s * l;
          entry[1] = s * u + c * l;
        }
        // The 2x2 diagonal block.
        {
          const double a11 = band(p1, 0);
          const double a21 = band(p1, 1);
          const double a22 = band(p, 0);
          band(p1, 0) = c * c * a11 - 2.0 * c * s * a21 + s * s * a22;
          band(p1, 1) =
              c * s * a11 + (c * c - s * s) * a21 - c * s * a22;
          band(p, 0) = s * s * a11 + 2.0 * c * s * a21 + c * c * a22;
        }
        // Column pair (p-1, p) for rows below p: two contiguous runs,
        // offset by one. Row p+b of column p-1 is the bulge slot the
        // rotation fills in. The runs are contiguous, so this is the one
        // chase loop worth vectorizing - explicit 8-wide FMA, with an
        // std::fma scalar tail keeping the arithmetic identical.
        const std::size_t rmax = std::min(n - 1, p + b);
        double* up = band.row(p1);
        double* lp = band.row(p);
        std::size_t row = p + 1;
#if NDFT_GEMM_SIMD
        {
          const V8d cv = V8d{} + c;
          const V8d sv = V8d{} + s;
          const V8d nsv = V8d{} - sv;
          for (; row + 7 <= rmax; row += 8) {
            double* uq = up + (row - p1);
            double* lq = lp + (row - p);
            const V8d u = v8_load(uq);
            const V8d l = v8_load(lq);
            v8_store(uq, v8_fma(cv, u, nsv * l));
            v8_store(lq, v8_fma(sv, u, cv * l));
          }
        }
#endif
        for (; row <= rmax; ++row) {
          const double u = up[row - p1];
          const double l = lp[row - p];
          up[row - p1] = std::fma(c, u, -s * l);
          lp[row - p] = std::fma(s, u, c * l);
        }
        if (p + b >= n) break;  // bulge chased off the bottom
        sc = p1;
        sd = b + 1;
      }
    }
    // Scatter this j's log segment into depth-major order (stable).
    doff.assign(dcount.size(), 0);
    std::uint32_t run = 0;
    for (std::size_t m = 0; m < dcount.size(); ++m) {
      doff[m] = run;
      run += dcount[m];
    }
    sorted.resize(jbuf.size());
    for (std::size_t i = 0; i < jbuf.size(); ++i) {
      sorted[doff[jdepth[i]]++] = jbuf[i];
    }
    log.insert(log.end(), sorted.begin(), sorted.end());
    std::uint32_t groups = 0;
    for (std::size_t m = 0; m < dcount.size(); ++m) {
      if (dcount[m] > 0) {
        group_len.push_back(dcount[m]);
        ++groups;
      }
    }
    j_groups.push_back(groups);
  }
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) d[i] = band(i, 0);
  for (std::size_t i = 1; i < n; ++i) e[i] = band(i - 1, 1);
}

/// s <- Q2 s with Q2 = G_1^T G_2^T ... G_N^T: the chase log replayed in
/// reverse order with transposed rotations, each mixing the contiguous
/// rows (col, col+1) of s. Column bands split across the pool; every band
/// sees the full reversed log in the same order, so the result is bitwise
/// identical for any thread count.
///
/// band_to_tridiagonal emits the log in wavefronts (per source column j,
/// per chase depth m, planes descending); reversing the log therefore
/// yields, within each (j, m) group, a run of rotations on consecutive
/// ascending planes. A run of K such rotations is applied as one
/// register-carried chain over K + 1 rows: rotation i mixes rows
/// (q0+i, q0+i+1) and hands the updated shared row to rotation i+1
/// without a round trip through memory, so each rotation costs ~1 row
/// load + 1 row store instead of 2 + 2 - and the replay is L2-bandwidth
/// bound, so halving the traffic nearly halves the wall time. The
/// per-element operation sequence matches the naive reversed replay
/// exactly (fma(c,u,s*l) / fma(c,l,-s*u) in log order), so the chaining
/// is bitwise neutral. Early-terminated chases leave holes in a
/// wavefront; runs are re-segmented by checking plane adjacency.
void apply_chase_rotations(const std::vector<GivensRotation>& log,
                           const std::vector<std::uint32_t>& group_len,
                           const std::vector<std::uint32_t>& j_groups,
                           RealMatrix& s) {
  if (log.empty()) return;
  const std::size_t rows = s.rows();
  const std::size_t cols = s.cols();
  std::size_t max_group = 0;
  for (std::uint32_t len : group_len) {
    max_group = std::max<std::size_t>(max_group, len);
  }
  // Each column tile is staged through a compact (rows x tile) buffer
  // before the replay: in place, successive rotation rows sit a full
  // matrix row apart (4 KiB at n = 512 - the critical stride, so the
  // reuse window of the chase replay collides onto one cache-set group
  // and every access pays an L2 round trip). The row stride is padded
  // off the power of two: the chain walks ~b rows at one vector's width
  // per visit, and a 1 KiB stride would land every visited line in the
  // same few L1 sets.
  // Cap the tile so the staging buffer stays L2-resident even when few
  // threads leave the grain wide (at one thread the grain is the whole
  // matrix: a 2 MiB tile at n = 512, which demotes the replay from L2
  // to L3 bandwidth).
  const std::size_t cap = std::max<std::size_t>(64, (1024 * 1024) / (8 * rows));
  const std::size_t band = std::min<std::size_t>(
      cap,
      std::min<std::size_t>(
          cols, std::max<std::size_t>(64, parallel_grain(6 * log.size()))));
  parallel_for(0, cols, band, [&](std::size_t lo, std::size_t hi) {
    const std::size_t tw = hi - lo;
    const std::size_t st = tw + 8;
    std::vector<double> tile(rows * st);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = s.row(r) + lo;
      double* dst = tile.data() + r * st;
      for (std::size_t k = 0; k < tw; ++k) dst[k] = src[k];
    }
    std::vector<double> cseg(max_group);
    std::vector<double> sseg(max_group);
    // Reversed log: j descending, wavefront depth m descending within
    // each j, planes ascending within each wavefront.
    std::size_t gi = group_len.size();
    std::size_t li = log.size();
    for (std::size_t jr = j_groups.size(); jr-- > 0;) {
      for (std::uint32_t gj = j_groups[jr]; gj-- > 0;) {
        --gi;
        const std::size_t len = group_len[gi];
        li -= len;
        // Group entries log[li .. li+len) hold descending planes; walk
        // them back-to-front and chain maximal adjacent-plane runs.
        std::size_t t = len;
        while (t > 0) {
          std::size_t t_lo = t - 1;  // run start (lowest plane)
          while (t_lo > 0 &&
                 log[li + t_lo - 1].col == log[li + t_lo].col + 1) {
            --t_lo;
          }
          const std::size_t nseg = t - t_lo;
          const std::size_t q0 = log[li + t - 1].col;
          for (std::size_t i = 0; i < nseg; ++i) {
            const GivensRotation& rot = log[li + t - 1 - i];
            cseg[i] = rot.c;
            sseg[i] = rot.s;
          }
          // Pipelined chain over rows q0 .. q0 + nseg: rotation i mixes
          // (q0+i, q0+i+1); the updated shared row stays in registers.
          std::size_t o = 0;
#if NDFT_GEMM_SIMD
          for (; o + 32 <= tw; o += 32) {
            double* base = tile.data() + q0 * st + o;
            V8d cur0 = v8_load(base);
            V8d cur1 = v8_load(base + 8);
            V8d cur2 = v8_load(base + 16);
            V8d cur3 = v8_load(base + 24);
            for (std::size_t i = 0; i < nseg; ++i) {
              const V8d cv = V8d{} + cseg[i];
              const V8d sv = V8d{} + sseg[i];
              const V8d nv = V8d{} - sv;
              double* up = base + i * st;
              const V8d nxt0 = v8_load(up + st);
              const V8d nxt1 = v8_load(up + st + 8);
              const V8d nxt2 = v8_load(up + st + 16);
              const V8d nxt3 = v8_load(up + st + 24);
              v8_store(up, v8_fma(cv, cur0, sv * nxt0));
              v8_store(up + 8, v8_fma(cv, cur1, sv * nxt1));
              v8_store(up + 16, v8_fma(cv, cur2, sv * nxt2));
              v8_store(up + 24, v8_fma(cv, cur3, sv * nxt3));
              cur0 = v8_fma(cv, nxt0, nv * cur0);
              cur1 = v8_fma(cv, nxt1, nv * cur1);
              cur2 = v8_fma(cv, nxt2, nv * cur2);
              cur3 = v8_fma(cv, nxt3, nv * cur3);
            }
            double* last = base + nseg * st;
            v8_store(last, cur0);
            v8_store(last + 8, cur1);
            v8_store(last + 16, cur2);
            v8_store(last + 24, cur3);
          }
          for (; o + 8 <= tw; o += 8) {
            double* base = tile.data() + q0 * st + o;
            V8d cur = v8_load(base);
            for (std::size_t i = 0; i < nseg; ++i) {
              const V8d cv = V8d{} + cseg[i];
              const V8d sv = V8d{} + sseg[i];
              double* up = base + i * st;
              const V8d nxt = v8_load(up + st);
              v8_store(up, v8_fma(cv, cur, sv * nxt));
              cur = v8_fma(cv, nxt, (V8d{} - sv) * cur);
            }
            v8_store(base + nseg * st, cur);
          }
#endif
          for (; o < tw; ++o) {
            double* base = tile.data() + q0 * st + o;
            double cur = base[0];
            for (std::size_t i = 0; i < nseg; ++i) {
              const double c = cseg[i];
              const double sn = sseg[i];
              double* up = base + i * st;
              const double nxt = up[st];
              up[0] = std::fma(c, cur, sn * nxt);
              cur = std::fma(c, nxt, -sn * cur);
            }
            base[nseg * st] = cur;
          }
          t = t_lo;
        }
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = tile.data() + r * st;
      double* dst = s.row(r) + lo;
      for (std::size_t k = 0; k < tw; ++k) dst[k] = src[k];
    }
  });
}

// ------------------------------------- divide & conquer tridiagonal stage
//
// Cuppen's method (dstedc/dlaed lineage): split the tridiagonal matrix in
// the middle as T = diag(T1'', T2'') + rho z z^T, solve the halves
// recursively, deflate (negligible z components and near-equal eigenvalue
// pairs, dlaed2 shape), find the surviving secular-equation roots by
// bisection to floating-point fixpoint, rebuild z from the computed roots
// (Gu/Eisenstat) so the secular eigenvectors come out orthogonal to
// working precision, and back-multiply through the merge as one GEMM. The
// recursion tree and every scan are serial and depend only on the data;
// the root solves and the GEMM partition disjoint outputs - bitwise
// identical for any thread count.

constexpr std::size_t kDcBase = 40;  ///< below this, tql2 solves directly


/// One secular root: lambda_j = dhat[origin] + tau, stored split so the
/// eigenvector denominators (dhat[i] - dhat[origin]) - tau stay accurate
/// next to the poles.
struct SecularRoot {
  std::size_t origin = 0;
  double tau = 0.0;
};

/// Secular function f(tau) = 1 + rho * sum_i zhat[i]^2 / (delta[i] - tau)
/// with delta[i] = dhat[i] - dhat[origin]; strictly increasing between
/// consecutive poles.
double secular_f(const std::vector<double>& delta,
                 const std::vector<double>& z2, double rho, double tau) {
  double sum = 0.0;
  const std::size_t k = delta.size();
  for (std::size_t i = 0; i < k; ++i) sum += z2[i] / (delta[i] - tau);
  return 1.0 + rho * sum;
}

/// psi/phi split sums and derivatives in one pass: psi ranges over poles
/// i < split, phi over i >= split, with psi = sum z2[i] / (delta[i] -
/// tau) and psip its derivative sum z2[i] / (delta[i] - tau)^2 (phi,
/// phip likewise). Fixed-width independent partial sums (same
/// determinism argument as dot_range: the accumulation order is a
/// function of the index range alone, never of the thread count).
void secular_sums(const double* __restrict delta,
                  const double* __restrict z2, std::size_t begin,
                  std::size_t end, double tau, double& sum, double& dsum) {
  std::size_t i = begin;
  double s_head = 0.0;
  double d_head = 0.0;
#if NDFT_GEMM_SIMD
  V8d sv{};
  V8d dv{};
  const V8d tv = V8d{} + tau;
  for (; i + 8 <= end; i += 8) {
    const V8d inv = (V8d{} + 1.0) / (v8_load(delta + i) - tv);
    const V8d term = v8_load(z2 + i) * inv;
    sv += term;
    dv += term * inv;
  }
  double sl[8];
  double dl[8];
  __builtin_memcpy(sl, &sv, sizeof(sl));
  __builtin_memcpy(dl, &dv, sizeof(dl));
  s_head = ((sl[0] + sl[1]) + (sl[2] + sl[3])) +
           ((sl[4] + sl[5]) + (sl[6] + sl[7]));
  d_head = ((dl[0] + dl[1]) + (dl[2] + dl[3])) +
           ((dl[4] + dl[5]) + (dl[6] + dl[7]));
#endif
  for (; i < end; ++i) {
    const double inv = 1.0 / (delta[i] - tau);
    const double term = z2[i] * inv;
    s_head += term;
    d_head += term * inv;
  }
  sum = s_head;
  dsum = d_head;
}

/// Finds the secular root on (tau_lo, tau_hi), where f < 0 at the left
/// end and f > 0 at the right (limits at the poles). dlaed4's "middle
/// way": each step splits f into psi (poles at or left of the bracket)
/// and phi (poles right of it), fits one rational term per side to the
/// sub-sum's value AND derivative at the iterate, and jumps to the root
/// of the fitted model c + A/(dj - t) + B/(dj1 - t) - a quadratic in t.
/// Matching the derivative makes the iteration quadratically convergent
/// even when the root hugs a pole, where plain Newton crawls; iteration
/// stops when |f| falls under a few eps of the sum's own magnitude (the
/// terms then cancel to roundoff, so no iterate can do better). The
/// sign-change bracket is kept at every step as a safeguard, a model
/// step outside it falls back to the midpoint, and a bounded iteration
/// cap finishes with pure bisection. `split` is the first phi pole
/// (split == k for the half-open last interval, which degrades the model
/// to its one-pole form). Fully serial and data-dependent only -
/// deterministic for any thread count.
double secular_solve(const std::vector<double>& delta,
                     const std::vector<double>& z2, double rho,
                     std::size_t split, double tau_lo, double tau_hi) {
  const std::size_t k = delta.size();
  double tau = 0.5 * (tau_lo + tau_hi);
  if (tau <= std::min(tau_lo, tau_hi) || tau >= std::max(tau_lo, tau_hi)) {
    return tau;  // bracket already spans at most one ulp
  }
  const double eps = std::numeric_limits<double>::epsilon();
  const double dj = delta[split - 1];
  const double dj1 = split < k ? delta[split] : 0.0;
  for (int iter = 0; iter < 64; ++iter) {
    double psi;
    double psip;
    double phi;
    double phip;
    secular_sums(delta.data(), z2.data(), 0, split, tau, psi, psip);
    secular_sums(delta.data(), z2.data(), split, k, tau, phi, phip);
    const double f = 1.0 + rho * (psi + phi);
    const double ftol =
        8.0 * eps * (1.0 + std::fabs(rho) * (std::fabs(psi) + std::fabs(phi)));
    if (std::fabs(f) <= ftol) return tau;
    if (f > 0.0) {
      tau_hi = tau;
    } else {
      tau_lo = tau;
    }
    const double blo = std::min(tau_lo, tau_hi);
    const double bhi = std::max(tau_lo, tau_hi);
    double next = tau - f / (rho * (psip + phip));  // Newton fallback
    const double wj = dj - tau;
    const double a_fit = rho * psip * wj * wj;    // pole weight at dj
    const double c1 = psi - psip * wj;            // psi's smooth part
    if (split < k) {
      const double wj1 = dj1 - tau;
      const double b_fit = rho * phip * wj1 * wj1;
      const double c2 = phi - phip * wj1;
      const double c = 1.0 + rho * (c1 + c2);
      // c + A/(dj - t) + B/(dj1 - t) = 0, denominators cleared:
      // c*t^2 - (c*(dj + dj1) + A + B)*t + (c*dj*dj1 + A*dj1 + B*dj) = 0
      const double qa = c;
      const double qb = -(c * (dj + dj1) + a_fit + b_fit);
      const double qc = c * dj * dj1 + a_fit * dj1 + b_fit * dj;
      if (qa != 0.0) {
        const double disc = qb * qb - 4.0 * qa * qc;
        if (disc >= 0.0) {
          const double sq = std::sqrt(disc);
          const double q = -0.5 * (qb + sign_of(sq, qb));
          const double r1 = q / qa;
          const double r2 = q != 0.0 ? qc / q : r1;
          const bool in1 = r1 > dj && r1 < dj1;
          const bool in2 = r2 > dj && r2 < dj1;
          if (in1 && !in2) {
            next = r1;
          } else if (in2 && !in1) {
            next = r2;
          } else if (in1 && in2) {
            next = std::fabs(r1 - tau) < std::fabs(r2 - tau) ? r1 : r2;
          }
        }
      } else if (qb != 0.0) {
        next = qc / qb;  // smooth part vanished: the model is linear
      }
    } else {
      // Half-open last interval: one fitted pole plus the constant.
      const double c = 1.0 + rho * (c1 + phi);
      if (c != 0.0) next = dj + a_fit / c;
    }
    if (!(next > blo && next < bhi)) next = 0.5 * (tau_lo + tau_hi);
    if (next == tau || next <= blo || next >= bhi) {
      return next == tau ? tau : 0.5 * (tau_lo + tau_hi);
    }
    tau = next;
  }
  // The model cycled without collapsing the bracket: finish by bisection.
  for (;;) {
    const double mid = 0.5 * (tau_lo + tau_hi);
    if (mid <= std::min(tau_lo, tau_hi) || mid >= std::max(tau_lo, tau_hi)) {
      break;
    }
    if (secular_f(delta, z2, rho, mid) > 0.0) {
      tau_hi = mid;
    } else {
      tau_lo = mid;
    }
  }
  return 0.5 * (tau_lo + tau_hi);
}

void dc_recurse(std::vector<double>& d, std::vector<double>& e,
                std::size_t lo, std::size_t hi, RealMatrix& q);

/// Merges the two solved halves of [lo, hi): deflation, secular roots,
/// Gu/Eisenstat z rebuild, GEMM back-multiply. `beta` is the original
/// coupling e[mid]; q1/q2 are the halves' eigenvector matrices.
void dc_merge(std::vector<double>& d, std::size_t lo, std::size_t mid,
              std::size_t hi, double beta, const RealMatrix& q1,
              const RealMatrix& q2, RealMatrix& q) {
  const std::size_t m1 = mid - lo;
  const std::size_t m2 = hi - mid;
  const std::size_t m = m1 + m2;
  const double rho = 2.0 * std::fabs(beta);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  const double sgn = beta >= 0.0 ? 1.0 : -1.0;

  // Stable merge of the two sorted spectra (first block wins ties), with
  // the rank-one vector z = [S1^T w1; +/- S2^T w2] / sqrt(2) permuted
  // alongside.
  std::vector<std::size_t> perm(m);
  {
    std::size_t i = 0, j = 0, t = 0;
    while (i < m1 || j < m2) {
      if (j >= m2 || (i < m1 && d[lo + i] <= d[mid + j])) {
        perm[t++] = i++;
      } else {
        perm[t++] = m1 + j++;
      }
    }
  }
  std::vector<double> ds(m);
  std::vector<double> zs(m);
  // Row-block support of each qm column (bit 0: rows [0, m1), bit 1:
  // rows [m1, m)) - block-diagonal until a type-2 deflation rotation
  // mixes a pair across the split. The back-multiply GEMM below is
  // restricted per row block to the columns with support there.
  std::vector<std::uint8_t> support(m);
  for (std::size_t t = 0; t < m; ++t) {
    const std::size_t src = perm[t];
    ds[t] = d[lo + src];
    zs[t] = src < m1 ? inv_sqrt2 * q1(m1 - 1, src)
                     : sgn * inv_sqrt2 * q2(0, src - m1);
    support[t] = src < m1 ? 1 : 2;
  }
  // Block-diagonal eigenvector matrix with the same column permutation,
  // filled row-wise: writes stay contiguous and the reads gather within
  // one source row (column-wise filling would store with stride m - the
  // 4 KiB critical stride at the top merge).
  RealMatrix qm(m, m);
  parallel_for(0, m, eig_grain(m), [&](std::size_t rlo, std::size_t rhi) {
    for (std::size_t r = rlo; r < rhi; ++r) {
      double* dst = qm.row(r);
      if (r < m1) {
        const double* srow = q1.row(r);
        for (std::size_t t = 0; t < m; ++t) {
          const std::size_t src = perm[t];
          if (src < m1) dst[t] = srow[src];
        }
      } else {
        const double* srow = q2.row(r - m1);
        for (std::size_t t = 0; t < m; ++t) {
          const std::size_t src = perm[t];
          if (src >= m1) dst[t] = srow[src - m1];
        }
      }
    }
  });

  // Deflation scan (dlaed2 shape). Type 1: rho*|z| negligible. Type 2:
  // near-equal eigenvalue pair - a Givens rotation on (z_prev, z_cur) and
  // the matching qm columns zeroes z_prev at an off-diagonal cost below
  // tolerance. Serial scan; the order is part of the determinism contract.
  const double eps = std::numeric_limits<double>::epsilon();
  double dmax = 0.0;
  double zmax = 0.0;
  for (std::size_t t = 0; t < m; ++t) {
    dmax = std::max(dmax, std::fabs(ds[t]));
    zmax = std::max(zmax, std::fabs(zs[t]));
  }
  const double tol = 8.0 * eps * std::max(dmax, rho * zmax);
  std::vector<std::size_t> keep;     // surviving (non-deflated) indices
  std::vector<std::size_t> deflated;
  keep.reserve(m);
  for (std::size_t t = 0; t < m; ++t) {
    if (rho * std::fabs(zs[t]) <= tol) {
      deflated.push_back(t);
      continue;
    }
    if (!keep.empty()) {
      const std::size_t prev = keep.back();
      const double zp = zs[prev];
      const double zc = zs[t];
      const double r = pythag(zp, zc);
      const double c = zc / r;
      const double s = -zp / r;
      if (std::fabs((ds[t] - ds[prev]) * c * s) <= tol) {
        // Rotate columns (prev, t) of qm and fold the pair: prev deflates
        // with the mixed eigenvalue, t survives carrying |z| = r.
        zs[prev] = 0.0;
        zs[t] = r;
        const double dp = ds[prev];
        const double dc_ = ds[t];
        ds[prev] = c * c * dp + s * s * dc_;
        ds[t] = s * s * dp + c * c * dc_;
        for (std::size_t row = 0; row < m; ++row) {
          const double qp = qm(row, prev);
          const double qc = qm(row, t);
          qm(row, prev) = c * qp + s * qc;
          qm(row, t) = c * qc - s * qp;
        }
        support[t] |= support[prev];
        support[prev] = support[t];
        keep.back() = t;
        deflated.push_back(prev);
        continue;
      }
    }
    keep.push_back(t);
  }
  const std::size_t k = keep.size();

  std::vector<double> dout(m);
  RealMatrix qout(m, m);
  if (k == 0) {
    // Fully deflated (e.g. beta == 0): the merge is a pure column
    // permutation of the deflated set, sorted by eigenvalue.
    std::stable_sort(deflated.begin(), deflated.end(),
                     [&](std::size_t x, std::size_t y) {
                       return ds[x] < ds[y];
                     });
    for (std::size_t t = 0; t < m; ++t) dout[t] = ds[deflated[t]];
    parallel_for(0, m, eig_grain(m),
                 [&](std::size_t rlo, std::size_t rhi) {
                   for (std::size_t r = rlo; r < rhi; ++r) {
                     const double* srow = qm.row(r);
                     double* dst = qout.row(r);
                     for (std::size_t t = 0; t < m; ++t) {
                       dst[t] = srow[deflated[t]];
                     }
                   }
                 });
    for (std::size_t t = 0; t < m; ++t) d[lo + t] = dout[t];
    q = std::move(qout);
    return;
  }

  // Secular roots: root j lives in (dhat[j], dhat[j+1]) (the last one in
  // (dhat[k-1], dhat[k-1] + rho ||zhat||^2]). The origin pole is picked by
  // the sign of f at the interval midpoint, and the root is stored as
  // (origin, tau) for accurate eigenvector denominators.
  std::vector<double> dhat(k);
  std::vector<double> zhat(k);
  for (std::size_t j = 0; j < k; ++j) {
    dhat[j] = ds[keep[j]];
    zhat[j] = zs[keep[j]];
  }
  double znorm2 = 0.0;
  for (std::size_t j = 0; j < k; ++j) znorm2 += zhat[j] * zhat[j];
  std::vector<SecularRoot> roots(k);
  parallel_for(0, k, eig_grain(64 * k), [&](std::size_t jlo,
                                            std::size_t jhi) {
    std::vector<double> delta(k);
    std::vector<double> z2(k);
    for (std::size_t i = 0; i < k; ++i) z2[i] = zhat[i] * zhat[i];
    for (std::size_t j = jlo; j < jhi; ++j) {
      SecularRoot root;
      if (j + 1 < k) {
        const double width = dhat[j + 1] - dhat[j];
        // f at the interval midpoint decides which pole anchors tau.
        for (std::size_t i = 0; i < k; ++i) delta[i] = dhat[i] - dhat[j];
        double fmid = 0.0;
        double unused = 0.0;
        secular_sums(delta.data(), z2.data(), 0, k, 0.5 * width, fmid,
                     unused);
        fmid = 1.0 + rho * fmid;
        if (fmid >= 0.0) {
          root.origin = j;
          root.tau =
              secular_solve(delta, z2, rho, j + 1, 0.0, 0.5 * width);
        } else {
          root.origin = j + 1;
          for (std::size_t i = 0; i < k; ++i) {
            delta[i] = dhat[i] - dhat[j + 1];
          }
          root.tau =
              secular_solve(delta, z2, rho, j + 1, -0.5 * width, 0.0);
        }
      } else {
        root.origin = k - 1;
        for (std::size_t i = 0; i < k; ++i) {
          delta[i] = dhat[i] - dhat[k - 1];
        }
        root.tau = secular_solve(delta, z2, rho, k, 0.0, rho * znorm2);
      }
      roots[j] = root;
    }
  });


  // Gu/Eisenstat: rebuild zhat from the computed roots so the analytic
  // eigenvector formula is orthogonal to working precision. Every factor
  // is positive by interlacing; the sign comes from the original zhat.
  std::vector<double> zre(k);
  parallel_for(0, k, eig_grain(8 * k), [&](std::size_t ilo,
                                           std::size_t ihi) {
    for (std::size_t i = ilo; i < ihi; ++i) {
      const double di = dhat[i];
      double prod =
          (dhat[roots[k - 1].origin] - di) + roots[k - 1].tau;
      for (std::size_t j = 0; j < i; ++j) {
        const double num = (dhat[roots[j].origin] - di) + roots[j].tau;
        prod *= num / (dhat[j] - di);
      }
      for (std::size_t j = i; j + 1 < k; ++j) {
        const double num = (dhat[roots[j].origin] - di) + roots[j].tau;
        prod *= num / (dhat[j + 1] - di);
      }
      zre[i] = sign_of(std::sqrt(std::fabs(prod)), zhat[i]);
    }
  });

  // Secular eigenvectors, rows of ut (ut(j, i) = component i of vector j),
  // then the back-multiply Q_keep * U as one GEMM (transpose_b folds the
  // row layout).
  RealMatrix ut(k, k);
  parallel_for(0, k, eig_grain(6 * k), [&](std::size_t jlo,
                                           std::size_t jhi) {
    for (std::size_t j = jlo; j < jhi; ++j) {
      double* row = ut.row(j);
      const double dorg = dhat[roots[j].origin];
      double norm2 = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        const double denom = (dhat[i] - dorg) - roots[j].tau;
        const double value = zre[i] / denom;
        row[i] = value;
        norm2 += value * value;
      }
      const double inv = 1.0 / std::sqrt(norm2);
      for (std::size_t i = 0; i < k; ++i) row[i] *= inv;
    }
  });
  // Back-multiply Q_keep * U^T, split per row block (dlaed3 shape): a
  // surviving column drawn from the first half is zero below row m1 and
  // vice versa, so each row block multiplies only the columns with
  // support there. With light deflation that halves the flops of the
  // dense m x k x k product; type-2-mixed columns simply join both
  // blocks. The packing is a row-wise gather, and each output block is
  // one GEMM writing disjoint rows - deterministic for any thread count.
  RealMatrix qsec(m, k);
  const std::size_t row_lo[2] = {0, m1};
  const std::size_t row_hi[2] = {m1, m};
  for (int blk = 0; blk < 2; ++blk) {
    const std::uint8_t bit = blk == 0 ? 1 : 2;
    std::vector<std::size_t> jb;
    jb.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      if (support[keep[j]] & bit) jb.push_back(j);
    }
    const std::size_t rows = row_hi[blk] - row_lo[blk];
    if (rows == 0) continue;
    const std::size_t kb = jb.size();
    if (kb == 0) {
      for (std::size_t r = row_lo[blk]; r < row_hi[blk]; ++r) {
        double* dst = qsec.row(r);
        for (std::size_t j = 0; j < k; ++j) dst[j] = 0.0;
      }
      continue;
    }
    RealMatrix qpack(rows, kb);
    parallel_for(0, rows, eig_grain(kb),
                 [&](std::size_t rlo, std::size_t rhi) {
                   for (std::size_t r = rlo; r < rhi; ++r) {
                     const double* src = qm.row(row_lo[blk] + r);
                     double* dst = qpack.row(r);
                     for (std::size_t c = 0; c < kb; ++c) {
                       dst[c] = src[keep[jb[c]]];
                     }
                   }
                 });
    RealMatrix upack(k, kb);
    parallel_for(0, k, eig_grain(kb),
                 [&](std::size_t jlo, std::size_t jhi) {
                   for (std::size_t j = jlo; j < jhi; ++j) {
                     const double* src = ut.row(j);
                     double* dst = upack.row(j);
                     for (std::size_t c = 0; c < kb; ++c) {
                       dst[c] = src[jb[c]];
                     }
                   }
                 });
    RealMatrix qblk;
    gemm(qpack, upack, qblk, 1.0, 0.0, /*transpose_a=*/false,
         /*transpose_b=*/true);
    parallel_for(0, rows, eig_grain(k),
                 [&](std::size_t rlo, std::size_t rhi) {
                   for (std::size_t r = rlo; r < rhi; ++r) {
                     const double* src = qblk.row(r);
                     double* dst = qsec.row(row_lo[blk] + r);
                     for (std::size_t j = 0; j < k; ++j) dst[j] = src[j];
                   }
                 });
  }


  // Assemble: merge the sorted secular roots with the sorted deflated set
  // (secular wins ties - a fixed, data-independent rule).
  std::stable_sort(deflated.begin(), deflated.end(),
                   [&](std::size_t x, std::size_t y) {
                     return ds[x] < ds[y];
                   });
  std::vector<double> lambda(k);
  for (std::size_t j = 0; j < k; ++j) {
    lambda[j] = dhat[roots[j].origin] + roots[j].tau;
  }
  // Column sources first, then one row-wise gather pass: per output
  // column either secular vector si or deflated qm column (column-wise
  // copying would write with the stride-m critical stride).
  std::vector<std::uint8_t> from_secular(m);
  std::vector<std::size_t> col_src(m);
  std::size_t si = 0;
  std::size_t di = 0;
  for (std::size_t t = 0; t < m; ++t) {
    const bool take_secular =
        si < k && (di >= deflated.size() || lambda[si] <= ds[deflated[di]]);
    from_secular[t] = take_secular ? 1 : 0;
    if (take_secular) {
      dout[t] = lambda[si];
      col_src[t] = si++;
    } else {
      const std::size_t src = deflated[di++];
      dout[t] = ds[src];
      col_src[t] = src;
    }
  }
  parallel_for(0, m, eig_grain(m),
               [&](std::size_t rlo, std::size_t rhi) {
                 for (std::size_t r = rlo; r < rhi; ++r) {
                   const double* srow_sec = qsec.row(r);
                   const double* srow_defl = qm.row(r);
                   double* dst = qout.row(r);
                   for (std::size_t t = 0; t < m; ++t) {
                     dst[t] = from_secular[t] ? srow_sec[col_src[t]]
                                              : srow_defl[col_src[t]];
                   }
                 }
               });
  for (std::size_t t = 0; t < m; ++t) d[lo + t] = dout[t];
  q = std::move(qout);
}

/// Solves [lo, hi) of the tridiagonal (d, e) recursively; on return
/// d[lo..hi) holds the eigenvalues ascending and q the eigenvectors
/// (column j pairs with d[lo + j]). The split point is a pure function of
/// the size, so the recursion tree is identical for any thread count.
void dc_recurse(std::vector<double>& d, std::vector<double>& e,
                std::size_t lo, std::size_t hi, RealMatrix& q) {
  const std::size_t m = hi - lo;
  if (m <= kDcBase) {
    std::vector<double> dd(d.begin() + static_cast<std::ptrdiff_t>(lo),
                           d.begin() + static_cast<std::ptrdiff_t>(hi));
    std::vector<double> ee(m, 0.0);
    for (std::size_t i = 1; i < m; ++i) ee[i] = e[lo + i];
    RealMatrix z(m, m);
    for (std::size_t i = 0; i < m; ++i) z(i, i) = 1.0;
    tql2(dd, ee, z);
    std::vector<std::size_t> order(m);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return dd[x] < dd[y]; });
    q = RealMatrix(m, m);
    for (std::size_t j = 0; j < m; ++j) {
      d[lo + j] = dd[order[j]];
      for (std::size_t i = 0; i < m; ++i) q(i, j) = z(i, order[j]);
    }
    return;
  }
  const std::size_t mid = lo + m / 2;
  const double beta = e[mid];  // couples rows (mid-1, mid)
  const double abeta = std::fabs(beta);
  d[mid - 1] -= abeta;
  d[mid] -= abeta;
  RealMatrix q1;
  RealMatrix q2;
  dc_recurse(d, e, lo, mid, q1);
  dc_recurse(d, e, mid, hi, q2);
  dc_merge(d, lo, mid, hi, beta, q1, q2, q);
}

/// Divide-and-conquer eigendecomposition of the tridiagonal (d, e)
/// (e[i] couples rows i-1 and i, e[0] unused). On return d holds the
/// eigenvalues ascending and q the eigenvectors as columns. The matrix is
/// pre-scaled to unit max-magnitude so the deflation tolerances are
/// scale-free.
void tridiag_dc(std::vector<double>& d, std::vector<double>& e,
                RealMatrix& q) {
  const std::size_t n = d.size();
  q = RealMatrix(n, n);
  if (n == 0) return;
  if (n == 1) {
    q(0, 0) = 1.0;
    return;
  }
  double amax = 0.0;
  for (std::size_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(d[i]));
  for (std::size_t i = 1; i < n; ++i) amax = std::max(amax, std::fabs(e[i]));
  if (amax == 0.0) {
    for (std::size_t i = 0; i < n; ++i) q(i, i) = 1.0;
    return;
  }
  const double inv = 1.0 / amax;
  for (std::size_t i = 0; i < n; ++i) d[i] *= inv;
  for (std::size_t i = 1; i < n; ++i) e[i] *= inv;
  dc_recurse(d, e, 0, n, q);
  for (std::size_t i = 0; i < n; ++i) d[i] *= amax;
}

// ---------------------------------------------- partial tridiagonal stage
//
// The partial-spectrum path replaces the QL stage: bisection (Sturm
// counts) finds the lowest m eigenvalues of the tridiagonal matrix, and
// inverse iteration builds just those m eigenvectors. Both stages process
// independent eigenvalue indices (clusters of close eigenvalues are one
// index group), so they split across the pool with disjoint writes and a
// fixed per-index operation order — bitwise identical for any thread
// count, like every other stage of the solver.

/// Number of eigenvalues of the tridiagonal matrix strictly below x, via
/// the LDL^T Sturm recurrence. `d` is the diagonal, `e2[i]` the squared
/// coupling of rows (i-1, i) (e2[0] unused); `pivmin` guards zero pivots
/// (dstebz convention).
std::size_t sturm_count_below(const std::vector<double>& d,
                              const std::vector<double>& e2, double pivmin,
                              double x) {
  const std::size_t n = d.size();
  std::size_t count = 0;
  double q = d[0] - x;
  if (q < 0.0) ++count;
  for (std::size_t i = 1; i < n; ++i) {
    if (std::fabs(q) < pivmin) q = -pivmin;
    q = d[i] - x - e2[i] / q;
    if (q < 0.0) ++count;
  }
  return count;
}

/// Bisects for eigenvalue `k` (0-based, ascending) inside [lo, hi], which
/// must satisfy count(lo) <= k < count(hi). Runs to floating-point
/// fixpoint (~60 halvings), so the result is determined by the matrix
/// alone.
double bisect_eigenvalue(const std::vector<double>& d,
                         const std::vector<double>& e2, double pivmin,
                         double lo, double hi, std::size_t k) {
  for (;;) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // interval shrunk to one ulp
    if (sturm_count_below(d, e2, pivmin, mid) > k) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;  // count(hi) > k: the k-th eigenvalue is at most hi
}

/// Solves (T - lambda I) x = b in place by Gaussian elimination with
/// partial pivoting (dgttrf/dgttrs shape, refactored per call — the solve
/// is O(n) either way). `e[i]` couples rows (i-1, i); zero pivots are
/// nudged to pivmin so exactly-converged shifts cannot divide by zero.
void tridiag_shifted_solve(const std::vector<double>& d,
                           const std::vector<double>& e, double lambda,
                           double pivmin, std::vector<double>& x,
                           std::vector<double>& diag,
                           std::vector<double>& upper,
                           std::vector<double>& upper2) {
  const std::size_t n = d.size();
  diag.resize(n);
  upper.resize(n);
  upper2.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = d[i] - lambda;
    upper[i] = (i + 1 < n) ? e[i + 1] : 0.0;  // T(i, i+1)
    upper2[i] = 0.0;                          // fill-in from row swaps
  }
  // Forward elimination, pivoting between rows i and i+1. Row swaps fold
  // into the stored upper diagonals; the multiplier applies to x directly.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double sub = e[i + 1];  // T(i+1, i), untouched by earlier steps
    if (std::fabs(diag[i]) >= std::fabs(sub)) {
      const double pivot =
          std::fabs(diag[i]) < pivmin ? sign_of(pivmin, diag[i]) : diag[i];
      const double mult = sub / pivot;
      diag[i] = pivot;
      diag[i + 1] -= mult * upper[i];
      x[i + 1] -= mult * x[i];
    } else {
      // Swap rows i and i+1; row i+1's upper element becomes fill-in.
      const double mult = diag[i] / sub;
      diag[i] = sub;
      const double old_upper = upper[i];
      upper[i] = diag[i + 1];
      upper2[i] = upper[i + 1];
      diag[i + 1] = old_upper - mult * upper[i];
      upper[i + 1] = -mult * upper2[i];
      std::swap(x[i], x[i + 1]);
      x[i + 1] -= mult * x[i];
    }
  }
  if (std::fabs(diag[n - 1]) < pivmin) {
    diag[n - 1] = sign_of(pivmin, diag[n - 1]);
  }
  // Back substitution.
  x[n - 1] /= diag[n - 1];
  if (n >= 2) {
    x[n - 2] = (x[n - 2] - upper[n - 2] * x[n - 1]) / diag[n - 2];
    for (std::size_t i = n - 2; i-- > 0;) {
      x[i] = (x[i] - upper[i] * x[i + 1] - upper2[i] * x[i + 2]) / diag[i];
    }
  }
}

/// Lowest-m eigenpairs of the tridiagonal matrix (d, e): eigenvalues by
/// bisection, eigenvectors by inverse iteration (dstein shape: clusters
/// of close eigenvalues are orthogonalised against their earlier members
/// every iteration, with ulp-scale shift perturbations separating exact
/// degeneracies). Vectors land in the rows of `vt` (m x n).
void tridiag_lowest(const std::vector<double>& d, const std::vector<double>& e,
                    std::size_t m, std::vector<double>& eigenvalues,
                    RealMatrix& vt) {
  const std::size_t n = d.size();
  std::vector<double> e2(n, 0.0);
  double emax2 = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    e2[i] = e[i] * e[i];
    emax2 = std::max(emax2, e2[i]);
  }
  const double pivmin = std::numeric_limits<double>::min() * emax2;

  // Gershgorin bounds, widened by a few ulps so the count invariants
  // (count(lo) == 0, count(hi) == n) hold strictly.
  double lo = d[0];
  double hi = d[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double radius = (i > 0 ? std::fabs(e[i]) : 0.0) +
                          (i + 1 < n ? std::fabs(e[i + 1]) : 0.0);
    lo = std::min(lo, d[i] - radius);
    hi = std::max(hi, d[i] + radius);
  }
  const double anorm = std::max(std::fabs(lo), std::fabs(hi));
  const double margin =
      16.0 * std::numeric_limits<double>::epsilon() * anorm + 2.0 * pivmin;
  lo -= margin;
  hi += margin;

  eigenvalues.assign(m, 0.0);
  parallel_for(0, m, eig_grain(64 * n),
               [&](std::size_t klo, std::size_t khi) {
                 for (std::size_t k = klo; k < khi; ++k) {
                   eigenvalues[k] =
                       bisect_eigenvalue(d, e2, pivmin, lo, hi, k);
                 }
               });

  // Cluster boundaries: consecutive eigenvalues closer than the dstein
  // orthogonalisation threshold iterate as one group, so their vectors
  // are re-orthogonalised against each other every inverse-iteration
  // pass. The grouping depends only on the eigenvalues.
  const double cluster_tol =
      1e-3 * std::max(anorm, std::numeric_limits<double>::min());
  std::vector<std::size_t> cluster_starts{0};
  for (std::size_t k = 1; k < m; ++k) {
    if (eigenvalues[k] - eigenvalues[k - 1] > cluster_tol) {
      cluster_starts.push_back(k);
    }
  }
  cluster_starts.push_back(m);

  vt = RealMatrix(m, n);
  const double eps = std::numeric_limits<double>::epsilon();
  parallel_for(
      0, cluster_starts.size() - 1, 1, [&](std::size_t clo, std::size_t chi) {
        std::vector<double> diag, upper, upper2;
        for (std::size_t c = clo; c < chi; ++c) {
          const std::size_t begin = cluster_starts[c];
          const std::size_t end = cluster_starts[c + 1];
          for (std::size_t k = begin; k < end; ++k) {
            // Exact degeneracies make (T - lambda I) singular in the same
            // direction for every member; an index-scaled ulp nudge plus
            // the per-pass orthogonalisation separates them (dstein).
            const double shift =
                eigenvalues[k] +
                static_cast<double>(k - begin) * 2.0 * eps * anorm;
            double* v = vt.row(k);
            Prng prng(0x9e1d5eedull + 1000003ull * k);
            std::vector<double> x(n);
            for (std::size_t i = 0; i < n; ++i) {
              x[i] = prng.next_double(-0.5, 0.5);
            }
            const auto orthogonalise_normalise = [&]() {
              for (std::size_t j = begin; j < k; ++j) {
                const double* u = vt.row(j);
                double dot = 0.0;
                for (std::size_t i = 0; i < n; ++i) dot += u[i] * x[i];
                for (std::size_t i = 0; i < n; ++i) x[i] -= dot * u[i];
              }
              double norm2 = 0.0;
              for (const double value : x) norm2 += value * value;
              if (!(norm2 > 0.0) || !std::isfinite(norm2)) {
                return false;
              }
              const double inv = 1.0 / std::sqrt(norm2);
              for (double& value : x) value *= inv;
              return true;
            };
            for (unsigned pass = 0; pass < 4; ++pass) {
              tridiag_shifted_solve(d, e, shift, pivmin, x, diag, upper,
                                    upper2);
              if (!orthogonalise_normalise()) {
                // Degenerate start (orthogonalised away or overflowed):
                // restart from the next deterministic random vector.
                for (std::size_t i = 0; i < n; ++i) {
                  x[i] = prng.next_double(-0.5, 0.5);
                }
              }
            }
            if (!orthogonalise_normalise()) {
              // Pathological fallback: a canonical basis vector made
              // orthogonal to the cluster prefix (still deterministic).
              std::fill(x.begin(), x.end(), 0.0);
              x[k % n] = 1.0;
              (void)orthogonalise_normalise();
            }
            std::copy(x.begin(), x.end(), v);
          }
        }
      });
}

/// Sorts eigenvalues ascending, permuting eigenvector columns to match.
void sort_eigenpairs(const std::vector<double>& d, const RealMatrix& z,
                     EigenResult& result) {
  const std::size_t n = d.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d[x] < d[y]; });
  result.eigenvalues.resize(n);
  RealMatrix sorted(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted(i, j) = z(i, order[j]);
    }
  }
  result.eigenvectors = std::move(sorted);
}

/// Analytic SYEVD tally shared by both solvers (the syevd_cost formula).
void count_syevd(std::size_t n, OpCount* count) {
  if (count == nullptr) return;
  const SyevdCost cost = syevd_cost(n);
  count->add(cost.flops, cost.bytes);
}

/// Conjugates complex values when `Conj`; the identity for doubles.
template <bool Conj, typename T>
T maybe_conj(const T& value) {
  if constexpr (Conj && !std::is_same_v<T, double>) {
    return std::conj(value);
  } else {
    return value;
  }
}

// ------------------------------------------------------------ GEMM layer
//
// BLIS-style blocking: C is computed in (kMc x kNr)-tall bands. op(A) and
// op(B) blocks are packed into contiguous micro-panels (the transpose /
// conjugation is absorbed by the packing, so whole-operand copies never
// happen), and an (kMr x kNr) register-tile microkernel runs over the
// packed panels. Row blocks are independent, so they are spread across
// the thread pool; every C element sees k-terms in the same order
// regardless of the thread count, keeping results bitwise deterministic.

constexpr std::size_t kMr = 6;    ///< microkernel rows (register tile)
constexpr std::size_t kNr = 16;   ///< microkernel cols (two AVX-512 lanes)
constexpr std::size_t kMc = 96;   ///< row block, multiple of kMr
constexpr std::size_t kKc = 240;  ///< depth block (packed panels stay hot)
constexpr std::size_t kNc = 2016; ///< column block, multiple of kNr

/// Below this op(A)*op(B) volume (m*n*k) the packing overhead dominates
/// and the reference loop wins; also keeps tiny products allocation-free.
constexpr std::size_t kSmallGemmVolume = 32768;

/// Packs an (mc x kc) block of op(A) into kMr-row micro-panels,
/// zero-padding the row remainder. Panel p holds rows [p*kMr, p*kMr+kMr)
/// in k-major order: element (i, l) of the block at p*kMr*kc + l*kMr + i.
template <bool Transpose, bool Conj, typename T>
void pack_a_block(const Matrix<T>& a, std::size_t row0, std::size_t col0,
                  std::size_t mc, std::size_t kc, T* buffer) {
  for (std::size_t ip = 0; ip < mc; ip += kMr) {
    const std::size_t rows = std::min(kMr, mc - ip);
    for (std::size_t l = 0; l < kc; ++l) {
      for (std::size_t i = 0; i < kMr; ++i) {
        T value{};
        if (i < rows) {
          value = Transpose
                      ? maybe_conj<Conj>(a(col0 + l, row0 + ip + i))
                      : a(row0 + ip + i, col0 + l);
        }
        *buffer++ = value;
      }
    }
  }
}

/// Packs a (kc x nc) block of op(B) into kNr-column micro-panels,
/// zero-padding the column remainder: element (l, j) of panel p sits at
/// p*kNr*kc + l*kNr + j.
template <bool Transpose, typename T>
void pack_b_block(const Matrix<T>& b, std::size_t row0, std::size_t col0,
                  std::size_t kc, std::size_t nc, T* buffer) {
  for (std::size_t jp = 0; jp < nc; jp += kNr) {
    const std::size_t cols = std::min(kNr, nc - jp);
    for (std::size_t l = 0; l < kc; ++l) {
      for (std::size_t j = 0; j < kNr; ++j) {
        T value{};
        if (j < cols) {
          value = Transpose ? b(col0 + jp + j, row0 + l)
                            : b(row0 + l, col0 + jp + j);
        }
        *buffer++ = value;
      }
    }
  }
}

/// Register-tile kernel: acc(kMr x kNr) += Apanel * Bpanel over kc terms.
/// The double path names every accumulator lane explicitly — compilers
/// reliably spill a 2D accumulator array to the stack, which costs an
/// order of magnitude here — and the generic path (complex, non-AVX512
/// builds) uses plain loops with compile-time extents.
template <typename T>
void micro_kernel(std::size_t kc, const T* __restrict a_panel,
                  const T* __restrict b_panel, T* __restrict acc) {
#if NDFT_GEMM_SIMD
  if constexpr (std::is_same_v<T, double>) {
    static_assert(kMr == 6 && kNr == 16, "tile shape is hard-wired below");
    V8d c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
    V8d c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
    for (std::size_t l = 0; l < kc; ++l) {
      const double* a = a_panel + l * kMr;
      const V8d b0 = v8_load(b_panel + l * kNr);
      const V8d b1 = v8_load(b_panel + l * kNr + 8);
      V8d av;
      av = V8d{} + a[0]; c00 = v8_fma(av, b0, c00); c01 = v8_fma(av, b1, c01);
      av = V8d{} + a[1]; c10 = v8_fma(av, b0, c10); c11 = v8_fma(av, b1, c11);
      av = V8d{} + a[2]; c20 = v8_fma(av, b0, c20); c21 = v8_fma(av, b1, c21);
      av = V8d{} + a[3]; c30 = v8_fma(av, b0, c30); c31 = v8_fma(av, b1, c31);
      av = V8d{} + a[4]; c40 = v8_fma(av, b0, c40); c41 = v8_fma(av, b1, c41);
      av = V8d{} + a[5]; c50 = v8_fma(av, b0, c50); c51 = v8_fma(av, b1, c51);
    }
    const V8d rows[12] = {c00, c01, c10, c11, c20, c21,
                          c30, c31, c40, c41, c50, c51};
    __builtin_memcpy(acc, rows, sizeof(rows));
    return;
  }
#endif
  for (std::size_t l = 0; l < kc; ++l) {
    const T* a = a_panel + l * kMr;
    const T* b = b_panel + l * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const T aval = a[i];
      T* row = acc + i * kNr;
      for (std::size_t j = 0; j < kNr; ++j) {
        row[j] += aval * b[j];
      }
    }
  }
}

/// Reference triple loop (also the small-product fast path): transposition
/// read through indexing, no operand copies, no branches in the k loop.
template <bool TransposeA, bool TransposeB, bool ConjA, typename T>
void gemm_reference(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                    T alpha, T beta, std::size_t m, std::size_t n,
                    std::size_t k) {
  for (std::size_t i = 0; i < m; ++i) {
    T* crow = c.row(i);
    if (beta == T{}) {
      std::fill(crow, crow + n, T{});
    } else if (beta != T{1.0}) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::size_t l = 0; l < k; ++l) {
      const T aval =
          alpha * (TransposeA ? maybe_conj<ConjA>(a(l, i)) : a(i, l));
      if constexpr (TransposeB) {
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aval * b(j, l);
        }
      } else {
        const T* brow = b.row(l);
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aval * brow[j];
        }
      }
    }
  }
}

template <typename T>
void gemm_reference_dispatch(const Matrix<T>& a, const Matrix<T>& b,
                             Matrix<T>& c, T alpha, T beta, bool transpose_a,
                             bool transpose_b, std::size_t m, std::size_t n,
                             std::size_t k) {
  if (transpose_a) {
    if (transpose_b) {
      gemm_reference<true, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_reference<true, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  } else {
    if (transpose_b) {
      gemm_reference<false, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_reference<false, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  }
}

/// Shape checks shared by every entry point; sizes C when allowed.
template <typename T>
void gemm_prepare(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                  T beta, bool transpose_a, bool transpose_b, std::size_t& m,
                  std::size_t& n, std::size_t& k) {
  m = transpose_a ? a.cols() : a.rows();
  k = transpose_a ? a.rows() : a.cols();
  const std::size_t b_rows = transpose_b ? b.cols() : b.rows();
  n = transpose_b ? b.rows() : b.cols();
  NDFT_REQUIRE(b_rows == k, "gemm: inner dimensions must agree");
  if (c.rows() != m || c.cols() != n) {
    NDFT_REQUIRE(beta == T{}, "gemm: beta != 0 requires a sized C");
    c = Matrix<T>(m, n);
  }
}

template <bool TransposeA, bool TransposeB, bool ConjA, typename T>
void gemm_blocked(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                  T alpha, T beta, std::size_t m, std::size_t n,
                  std::size_t k) {
  std::vector<T> b_pack(kKc * std::min(kNc, round_up(n, kNr)));
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const bool first_k_block = (pc == 0);
      pack_b_block<TransposeB>(b, pc, jc, kc, nc, b_pack.data());

      const std::size_t row_blocks = ceil_div(m, kMc);
      parallel_for(0, row_blocks, 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<T> a_pack(kMc * kc);
        T acc[kMr * kNr];
        for (std::size_t block = lo; block < hi; ++block) {
          const std::size_t ic = block * kMc;
          const std::size_t mc = std::min(kMc, m - ic);
          pack_a_block<TransposeA, ConjA>(a, ic, pc, mc, kc, a_pack.data());
          for (std::size_t jp = 0; jp < nc; jp += kNr) {
            const std::size_t cols = std::min(kNr, nc - jp);
            const T* b_panel = b_pack.data() + (jp / kNr) * kNr * kc;
            for (std::size_t ip = 0; ip < mc; ip += kMr) {
              const std::size_t rows = std::min(kMr, mc - ip);
              const T* a_panel = a_pack.data() + (ip / kMr) * kMr * kc;
              std::fill(acc, acc + kMr * kNr, T{});
              micro_kernel(kc, a_panel, b_panel, acc);
              for (std::size_t i = 0; i < rows; ++i) {
                T* crow = c.row(ic + ip + i) + jc + jp;
                const T* arow = acc + i * kNr;
                if (first_k_block) {
                  if (beta == T{}) {
                    for (std::size_t j = 0; j < cols; ++j) {
                      crow[j] = alpha * arow[j];
                    }
                  } else {
                    for (std::size_t j = 0; j < cols; ++j) {
                      crow[j] = beta * crow[j] + alpha * arow[j];
                    }
                  }
                } else {
                  for (std::size_t j = 0; j < cols; ++j) {
                    crow[j] += alpha * arow[j];
                  }
                }
              }
            }
          }
        }
      });
    }
  }
}

/// 3M split-complex product: op(A) op(B) through three real GEMMs on the
/// blocked real kernel (Re, Im and Re+Im products), recombined with the
/// complex alpha/beta afterwards. The conjugate transpose is absorbed by
/// negating Im(A) before the transposed real products. Every stage is
/// either the deterministic blocked kernel or a disjoint-row pool loop,
/// so the result is bitwise identical for any thread count.
void gemm_3m(const ComplexMatrix& a, const ComplexMatrix& b,
             ComplexMatrix& c, Complex alpha, Complex beta,
             bool conj_transpose_a, bool transpose_b, std::size_t m,
             std::size_t n) {
  RealMatrix a_re(a.rows(), a.cols());
  RealMatrix a_im(a.rows(), a.cols());
  RealMatrix a_sum(a.rows(), a.cols());
  const double im_sign = conj_transpose_a ? -1.0 : 1.0;
  parallel_for(0, a.rows(), parallel_grain(a.cols()),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   const Complex* src = a.row(r);
                   for (std::size_t j = 0; j < a.cols(); ++j) {
                     a_re(r, j) = src[j].real();
                     a_im(r, j) = im_sign * src[j].imag();
                     a_sum(r, j) = a_re(r, j) + a_im(r, j);
                   }
                 }
               });
  RealMatrix b_re(b.rows(), b.cols());
  RealMatrix b_im(b.rows(), b.cols());
  RealMatrix b_sum(b.rows(), b.cols());
  parallel_for(0, b.rows(), parallel_grain(b.cols()),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   const Complex* src = b.row(r);
                   for (std::size_t j = 0; j < b.cols(); ++j) {
                     b_re(r, j) = src[j].real();
                     b_im(r, j) = src[j].imag();
                     b_sum(r, j) = b_re(r, j) + b_im(r, j);
                   }
                 }
               });
  RealMatrix p1;  // Re x Re
  RealMatrix p2;  // Im x Im
  RealMatrix p3;  // (Re+Im) x (Re+Im)
  gemm(a_re, b_re, p1, 1.0, 0.0, conj_transpose_a, transpose_b);
  gemm(a_im, b_im, p2, 1.0, 0.0, conj_transpose_a, transpose_b);
  gemm(a_sum, b_sum, p3, 1.0, 0.0, conj_transpose_a, transpose_b);
  parallel_for(0, m, parallel_grain(n),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   Complex* crow = c.row(i);
                   for (std::size_t j = 0; j < n; ++j) {
                     const Complex prod{p1(i, j) - p2(i, j),
                                        p3(i, j) - p1(i, j) - p2(i, j)};
                     crow[j] = (beta == Complex{})
                                   ? alpha * prod
                                   : beta * crow[j] + alpha * prod;
                   }
                 }
               });
}

template <typename T>
void gemm_impl(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c, T alpha,
               T beta, bool transpose_a, bool transpose_b) {
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, transpose_a, transpose_b, m, n, k);
  if (m * n * k <= kSmallGemmVolume) {
    gemm_reference_dispatch(a, b, c, alpha, beta, transpose_a, transpose_b,
                            m, n, k);
    return;
  }
  if constexpr (std::is_same_v<T, Complex>) {
    // Large complex products ride the real microkernel via the 3M split
    // instead of the generic scalar complex micro-tile.
    gemm_3m(a, b, c, alpha, beta, transpose_a, transpose_b, m, n);
  } else {
    if (transpose_a) {
      if (transpose_b) {
        gemm_blocked<true, true, true>(a, b, c, alpha, beta, m, n, k);
      } else {
        gemm_blocked<true, false, true>(a, b, c, alpha, beta, m, n, k);
      }
    } else {
      if (transpose_b) {
        gemm_blocked<false, true, true>(a, b, c, alpha, beta, m, n, k);
      } else {
        gemm_blocked<false, false, true>(a, b, c, alpha, beta, m, n, k);
      }
    }
  }
}

}  // namespace

void gemm(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
          double alpha, double beta, bool transpose_a, bool transpose_b,
          OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kGemm, "gemm");
  {
    const std::size_t m = transpose_a ? a.cols() : a.rows();
    const std::size_t k = transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    trace.set_dims(m, n, k);
    trace.set_work(2ull * m * n * k,
                   (m * k + k * n + 2 * m * n) * sizeof(double));
    trace.set_io((m * k + k * n) * sizeof(double), m * n * sizeof(double));
  }
  gemm_impl(a, b, c, alpha, beta, transpose_a, transpose_b);
  if (count != nullptr) {
    const std::size_t m = transpose_a ? a.cols() : a.rows();
    const std::size_t k = transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    count->add(2ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(double));
  }
}

void gemm(const ComplexMatrix& a, const ComplexMatrix& b, ComplexMatrix& c,
          Complex alpha, Complex beta, bool conj_transpose_a,
          bool transpose_b, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kGemm, "gemm.c");
  {
    const std::size_t m = conj_transpose_a ? a.cols() : a.rows();
    const std::size_t k = conj_transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    trace.set_dims(m, n, k);
    trace.set_work(8ull * m * n * k,
                   (m * k + k * n + 2 * m * n) * sizeof(Complex));
    trace.set_io((m * k + k * n) * sizeof(Complex), m * n * sizeof(Complex));
  }
  gemm_impl(a, b, c, alpha, beta, conj_transpose_a, transpose_b);
  if (count != nullptr) {
    const std::size_t m = conj_transpose_a ? a.cols() : a.rows();
    const std::size_t k = conj_transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    count->add(8ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(Complex));
  }
}

void gemm_naive(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
                double alpha, double beta, bool transpose_a,
                bool transpose_b, OpCount* count) {
  LinalgTimerScope timer;
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, transpose_a, transpose_b, m, n, k);
  gemm_reference_dispatch(a, b, c, alpha, beta, transpose_a, transpose_b, m,
                          n, k);
  if (count != nullptr) {
    count->add(2ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(double));
  }
}

void gemm_naive(const ComplexMatrix& a, const ComplexMatrix& b,
                ComplexMatrix& c, Complex alpha, Complex beta,
                bool conj_transpose_a, bool transpose_b, OpCount* count) {
  LinalgTimerScope timer;
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, conj_transpose_a, transpose_b, m, n, k);
  gemm_reference_dispatch(a, b, c, alpha, beta, conj_transpose_a,
                          transpose_b, m, n, k);
  if (count != nullptr) {
    count->add(8ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(Complex));
  }
}

namespace {

/// One-stage solver body (blocked tridiagonalization + QL + compact WY),
/// shared by the public wrappers; runs under their timer/trace scopes.
EigenResult syevd_onestage_impl(const RealMatrix& symmetric,
                                OpCount* count) {
  const std::size_t n = symmetric.rows();
  EigenResult result;
  if (n == 0) return result;

  RealMatrix reduced = symmetric;
  std::vector<double> d;
  std::vector<double> e;
  std::vector<double> tau;
  {
    StageTimerScope stage(&LinalgStageTimes::reduce_ms);
    blocked_tridiagonalize(reduced, d, e, tau);
  }

  // Eigenvectors of the tridiagonal matrix, accumulated transposed so the
  // QL rotation sweeps touch contiguous rows.
  RealMatrix zt(n, n);
  for (std::size_t i = 0; i < n; ++i) zt(i, i) = 1.0;
  {
    StageTimerScope stage(&LinalgStageTimes::tridiag_ms);
    tridiag_ql(d, e, zt);
  }

  RealMatrix z(n, n);
  {
    StageTimerScope stage(&LinalgStageTimes::backtransform_ms);
    parallel_for(0, n, eig_grain(n),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t r = lo; r < hi; ++r) {
                     double* row = z.row(r);
                     for (std::size_t c = 0; c < n; ++c) row[c] = zt(c, r);
                   }
                 });
    apply_q_blocked(reduced, tau, z);
  }

  sort_eigenpairs(d, z, result);
  count_syevd(n, count);
  return result;
}

/// Two-stage solver body: full -> band -> tridiagonal, divide-and-conquer
/// on the tridiagonal matrix, then the reversed chase rotations and the
/// offset-b compact-WY panels bring the eigenvectors back.
EigenResult syevd_twostage_impl(const RealMatrix& symmetric,
                                OpCount* count) {
  const std::size_t n = symmetric.rows();
  EigenResult result;
  if (n == 0) return result;

  RealMatrix reduced = symmetric;
  std::vector<double> d;
  std::vector<double> e;
  std::vector<double> tau;
  std::vector<GivensRotation> chase_log;
  std::vector<std::uint32_t> chase_groups;
  std::vector<std::uint32_t> chase_j_groups;
  {
    StageTimerScope stage(&LinalgStageTimes::reduce_ms);
    band_reduce(reduced, tau);
    RealMatrix band = extract_band(reduced, band_width(n));
    band_to_tridiagonal(band, band_width(n), d, e, chase_log, chase_groups,
                        chase_j_groups);
  }

  RealMatrix s;
  {
    StageTimerScope stage(&LinalgStageTimes::tridiag_ms);
    tridiag_dc(d, e, s);  // d ascending, columns of s pair with d
  }

  {
    StageTimerScope stage(&LinalgStageTimes::backtransform_ms);
    apply_chase_rotations(chase_log, chase_groups, chase_j_groups,
                          s);                 // s <- Q2 s
    apply_q_panels(reduced, tau, s, band_width(n));  // s <- Q1 s
  }

  result.eigenvalues = std::move(d);
  result.eigenvectors = std::move(s);
  count_syevd(n, count);
  return result;
}

}  // namespace

EigenResult syevd(const RealMatrix& symmetric, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kSyevd, "syevd");
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syevd: matrix must be square");
  const std::size_t n = symmetric.rows();
  trace.set_dims(n, n, 0);
  {
    const SyevdCost cost = syevd_cost(n);
    trace.set_work(cost.flops, cost.bytes);
  }
  trace.set_io(n * n * sizeof(double), (n * n + n) * sizeof(double));
  if (n < kTwoStageMin) {
    return syevd_onestage_impl(symmetric, count);
  }
  return syevd_twostage_impl(symmetric, count);
}

EigenResult syevd_onestage(const RealMatrix& symmetric, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kSyevd, "syevd.onestage");
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syevd_onestage: matrix must be square");
  const std::size_t n = symmetric.rows();
  trace.set_dims(n, n, 0);
  {
    const SyevdCost cost = syevd_cost(n);
    trace.set_work(cost.flops, cost.bytes);
  }
  trace.set_io(n * n * sizeof(double), (n * n + n) * sizeof(double));
  return syevd_onestage_impl(symmetric, count);
}

EigenResult syevd_naive(const RealMatrix& symmetric, OpCount* count) {
  LinalgTimerScope timer;
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syevd_naive: matrix must be square");
  const std::size_t n = symmetric.rows();
  EigenResult result;
  result.eigenvectors = symmetric;  // tred2 works in place
  std::vector<double> d;
  std::vector<double> e;
  tred2(result.eigenvectors, d, e);
  tql2(d, e, result.eigenvectors);
  sort_eigenpairs(d, result.eigenvectors, result);
  count_syevd(n, count);
  return result;
}

namespace {

/// Full-spectrum answer cut down to the lowest m pairs: the fallback the
/// partial solver degrades to (and the fast path near the full spectrum).
EigenResult partial_from_full(const RealMatrix& symmetric, std::size_t m,
                              OpCount* count) {
  const std::size_t n = symmetric.rows();
  EigenResult full = syevd(symmetric, count);
  if (m == n) return full;
  EigenResult result;
  result.eigenvalues.assign(
      full.eigenvalues.begin(),
      full.eigenvalues.begin() + static_cast<std::ptrdiff_t>(m));
  result.eigenvectors = RealMatrix(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = full.eigenvectors.row(i);
    std::copy(src, src + m, result.eigenvectors.row(i));
  }
  return result;
}

}  // namespace

EigenResult syevd_partial(const RealMatrix& symmetric, std::size_t m,
                          OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kSyevd, "syevd.partial");
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syevd_partial: matrix must be square");
  const std::size_t n = symmetric.rows();
  NDFT_REQUIRE(m >= 1 && m <= n,
               "syevd_partial: eigenpair count must be in [1, n]");
  trace.set_dims(n, m, 0);
  {
    const SyevdCost cost = syevd_partial_cost(n, m);
    trace.set_work(cost.flops, cost.bytes);
  }
  trace.set_io(n * n * sizeof(double), (n * m + m) * sizeof(double));

  if (fault_fires("solver.syevd_partial")) {
    // Injected solver fault: degrade to the always-available full
    // solver instead of failing the job.
    note_degradation("syevd_partial:full_fallback");
    return partial_from_full(symmetric, m, count);
  }

  if (2 * m > n) {
    // The QL/back-transform savings vanish near the full spectrum; the
    // full blocked solver is both faster and more robust there. Nested
    // timer/trace entries fold into this one.
    return partial_from_full(symmetric, m, count);
  }

  try {
    RealMatrix reduced = symmetric;
    std::vector<double> d;
    std::vector<double> e;
    std::vector<double> tau;
    {
      StageTimerScope stage(&LinalgStageTimes::reduce_ms);
      blocked_tridiagonalize(reduced, d, e, tau);
    }

    EigenResult result;
    RealMatrix vt;  // tridiagonal eigenvectors, one per row
    {
      StageTimerScope stage(&LinalgStageTimes::tridiag_ms);
      tridiag_lowest(d, e, m, result.eigenvalues, vt);
    }

    // Assemble the n x m eigenvector block and push it through the same
    // compact-WY panels as the full solver — O(n^2 m) instead of O(n^3).
    RealMatrix z(n, m);
    {
      StageTimerScope stage(&LinalgStageTimes::backtransform_ms);
      parallel_for(0, n, eig_grain(m),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t r = lo; r < hi; ++r) {
                       double* row = z.row(r);
                       for (std::size_t c = 0; c < m; ++c) row[c] = vt(c, r);
                     }
                   });
      apply_q_blocked(reduced, tau, z);
    }
    result.eigenvectors = std::move(z);

    if (count != nullptr) {
      const SyevdCost cost = syevd_partial_cost(n, m);
      count->add(cost.flops, cost.bytes);
    }
    return result;
  } catch (const NdftError&) {
    // The partial path rejected the problem (e.g. a degenerate cluster
    // its inverse iteration cannot split): same answer from the full
    // solver, recorded as a degradation.
    note_degradation("syevd_partial:full_fallback");
    return partial_from_full(symmetric, m, count);
  }
}

SyevdCost syevd_partial_cost(std::size_t n, std::size_t m) noexcept {
  if (2 * m > n) return syevd_cost(n);
  const auto nn = static_cast<Flops>(n) * n;
  // Reduction (~4/3 n^3), WY back-transform (~2 n^2 m), bisection +
  // inverse iteration (~60 Sturm sweeps and a few O(n) solves per pair).
  return {nn * n * 4 / 3 + 2 * nn * m + 400ull * n * m,
          (2 * nn + 2 * static_cast<Bytes>(n) * m) * sizeof(double)};
}

HermitianEigenResult heev(const ComplexMatrix& hermitian, OpCount* count) {
  LinalgTimerScope timer;
  KernelTimer trace(KernelClass::kSyevd, "heev");
  NDFT_REQUIRE(hermitian.rows() == hermitian.cols(),
               "heev: matrix must be square");
  const std::size_t n = hermitian.rows();
  // Dims and costs follow the 2n x 2n real embedding the solve actually
  // runs: the trace consumers' SYEVD reuse model keys its arithmetic
  // intensity off dims[0], which must name the executed solve size.
  trace.set_dims(2 * n, 2 * n, 0);
  {
    const SyevdCost cost = syevd_cost(2 * n);
    trace.set_work(cost.flops, cost.bytes);
  }
  trace.set_io(n * n * sizeof(Complex), (n * n + n) * sizeof(Complex));
  // Real embedding M = [[A, -B], [B, A]] for H = A + iB: the Hermitian
  // solve rides the blocked real path.
  RealMatrix embedded(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const Complex h = hermitian(i, j);
      embedded(i, j) = h.real();
      embedded(i + n, j + n) = h.real();
      embedded(i, j + n) = -h.imag();
      embedded(i + n, j) = h.imag();
    }
  }
  EigenResult real_result = syevd(embedded, count);

  // Each eigenvalue of H appears twice; fold pairs and rebuild complex
  // eigenvectors v = x + i y, re-orthonormalising inside degenerate groups.
  HermitianEigenResult result;
  result.eigenvalues.reserve(n);
  result.eigenvectors = ComplexMatrix(n, n);
  std::vector<std::vector<Complex>> kept;
  kept.reserve(n);
  for (std::size_t j = 0; j < 2 * n && kept.size() < n; ++j) {
    std::vector<Complex> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = Complex{real_result.eigenvectors(i, j),
                     real_result.eigenvectors(i + n, j)};
    }
    // Project out already-kept vectors (modified Gram-Schmidt).
    for (const auto& u : kept) {
      Complex overlap{};
      for (std::size_t i = 0; i < n; ++i) overlap += std::conj(u[i]) * v[i];
      for (std::size_t i = 0; i < n; ++i) v[i] -= overlap * u[i];
    }
    double norm = 0.0;
    for (const Complex& value : v) norm += std::norm(value);
    norm = std::sqrt(norm);
    if (norm < 1e-8) {
      continue;  // duplicate of an already-kept pair partner
    }
    for (Complex& value : v) value /= norm;
    result.eigenvalues.push_back(real_result.eigenvalues[j]);
    kept.push_back(std::move(v));
  }
  NDFT_REQUIRE(kept.size() == n, "heev: failed to fold embedded eigenpairs");
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = kept[j][i];
    }
  }
  return result;
}

SyevdCost syevd_cost(std::size_t n) noexcept {
  const auto cubic = static_cast<Flops>(n) * n * n;
  const auto nn = static_cast<Flops>(n) * n;
  // Two-stage model: ~2n^3 band reduction + ~8/3 n^3 D&C merges + ~3n^3
  // reversed chase rotations + ~2n^3 compact WY (29/3 n^3 total), plus
  // the O(n^2 b) chase itself. Bytes: the per-panel trailing-square
  // copies (~24 n^3 / b) over the 3 n^2 matrix doubles.
  const auto b = static_cast<Flops>(band_width(n));
  return {cubic * 29 / 3 + nn * 6 * b,
          24ull * cubic / b + 3ull * nn * sizeof(double)};
}

void linalg_timer_reset() noexcept {
  tl_linalg_ms = 0.0;
  tl_stage_times = LinalgStageTimes{};
}

double linalg_timer_ms() noexcept { return tl_linalg_ms; }

LinalgStageTimes linalg_stage_times() noexcept { return tl_stage_times; }

void mirror_upper(RealMatrix& symmetric) {
  const std::size_t n = symmetric.rows();
  NDFT_REQUIRE(symmetric.cols() == n, "mirror_upper: matrix must be square");
  parallel_for(0, n, parallel_grain(n), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        symmetric(i, j) = symmetric(j, i);
      }
    }
  });
}

double eigen_residual(const RealMatrix& symmetric,
                      const EigenResult& result) {
  const std::size_t n = symmetric.rows();
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double value = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        value += symmetric(i, k) * result.eigenvectors(k, j);
      }
      value -= result.eigenvalues[j] * result.eigenvectors(i, j);
      sum += value * value;
    }
  }
  return std::sqrt(sum);
}

}  // namespace ndft::dft
