#pragma once
// Top-level machine configuration: Table III defaults plus the Section V
// baselines, and the executor's sampling knobs.

#include "cpu/cpu_complex.hpp"
#include "gpu/gpu_model.hpp"
#include "mem/dram_system.hpp"
#include "ndp/ndp_system.hpp"
#include "runtime/device_profile.hpp"
#include "runtime/pseudo_store.hpp"
#include "runtime/shared_memory.hpp"

namespace ndft::core {

/// Everything needed to build the three machines of the evaluation.
struct SystemConfig {
  /// Table III host CPU (8 cores, 3 GHz) of the CPU-NDP machine.
  cpu::CpuComplexConfig host_cpu = cpu::CpuComplexConfig::table3_host();
  /// Table III NDP memory system (4x4 HBM2 stacks, 128 NDP units).
  ndp::NdpSystemConfig ndp = ndp::NdpSystemConfig::table3();
  /// Section V CPU baseline (2x Xeon E5-2695, DDR4).
  cpu::CpuComplexConfig xeon = cpu::CpuComplexConfig::xeon_baseline();
  mem::DramConfig xeon_dram = mem::DramConfig::xeon_ddr4();
  /// Section V GPU baseline (DGX-1, 2x V100).
  gpu::GpuConfig gpu = gpu::GpuConfig::dgx1_v100x2();

  /// Scheduler beliefs about the two sides of the CPU-NDP machine.
  runtime::DeviceProfile cpu_profile = runtime::DeviceProfile::table3_cpu();
  runtime::DeviceProfile ndp_profile = runtime::DeviceProfile::table3_ndp();

  /// Worker-process counts (footprint model).
  runtime::ProcessConfig processes;
  /// Shared-memory runtime knobs.
  runtime::SharedMemoryConfig shared_memory;

  /// Trace sampling: total sampled memory ops per kernel, split across
  /// the executing cores (clamped to [min_ops, max_ops] per core).
  std::size_t sampled_ops_per_kernel = 150000;
  std::size_t min_ops_per_core = 1000;
  std::size_t max_ops_per_core = 40000;

  /// Memory capacity of the machines (64 GiB each, Section V).
  Bytes cpu_capacity = 64ull << 30;
  Bytes ndp_capacity = 64ull << 30;

  /// The paper's configuration.
  static SystemConfig paper_default() { return SystemConfig{}; }
};

/// Scheduler beliefs for the NDP side of an arbitrary machine config:
/// `base`'s sustained numbers (Table-III-calibrated) scaled by the ratio
/// of `machine`'s raw capability to the Table-III machine's — compute by
/// total cores x frequency x flops/cycle, DRAM by aggregate peak
/// bandwidth, link by aggregate SerDes bandwidth. The Table-III config
/// itself maps to `base` exactly; microarchitectural properties
/// (switch latency, blocked-kernel efficiency) carry over unscaled.
runtime::DeviceProfile ndp_profile_from(const ndp::NdpSystemConfig& machine,
                                        const runtime::DeviceProfile& base);

}  // namespace ndft::core
