#include "runtime/device_profile.hpp"

#include <string>

#include "common/error.hpp"
#include "common/units.hpp"

namespace ndft::runtime {

DeviceProfile DeviceProfile::table3_cpu() {
  DeviceProfile p;
  p.kind = DeviceKind::kCpu;
  p.peak_gflops = 8 * 3.0 * 32.0;  // 8 cores x 3 GHz x 32 flop/cyc
  p.dram_gbps = 100.0;             // HBM over 4 SerDes links, sustained
  p.link_gbps = 250.0;             // data relocation into CPU-friendly layout
  p.switch_latency_ps = 20 * kPsPerUs;
  p.blocked_compute_efficiency = 0.65;  // wide OoO cores on dense panels
  return p;
}

DeviceProfile DeviceProfile::table3_ndp() {
  DeviceProfile p;
  p.kind = DeviceKind::kNdp;
  p.peak_gflops = 256 * 2.0 * 0.8;   // 256 cores x 2 GHz x 0.8 flop/cyc
  p.dram_gbps = 2000.0;              // stack-local HBM, sustained aggregate
  p.link_gbps = 250.0;
  p.switch_latency_ps = 20 * kPsPerUs;
  p.blocked_compute_efficiency = 0.5;  // in-order cores on dense panels
  return p;
}

DeviceProfile DeviceProfile::xeon_baseline() {
  DeviceProfile p;
  p.kind = DeviceKind::kCpu;
  p.peak_gflops = 24 * 2.4 * 16.0;  // 24 cores x 2.4 GHz x 16 flop/cyc
  p.dram_gbps = 60.0;               // 4-channel DDR4-2400, sustained
  p.link_gbps = 60.0;
  p.switch_latency_ps = 0;
  p.blocked_compute_efficiency = 0.45;  // dual-socket NUMA panel scaling
  return p;
}

Json DeviceProfile::to_json() const {
  Json j = Json::object();
  j.set("kind", to_string(kind));
  j.set("peak_gflops", peak_gflops);
  j.set("dram_gbps", dram_gbps);
  j.set("link_gbps", link_gbps);
  j.set("switch_latency_ps", switch_latency_ps);
  j.set("blocked_compute_efficiency", blocked_compute_efficiency);
  return j;
}

DeviceProfile DeviceProfile::from_json(const Json& j) {
  DeviceProfile profile;
  if (const Json* kind_member = j.find("kind")) {
    const std::string& name = kind_member->as_string();
    bool known = false;
    for (const DeviceKind device :
         {DeviceKind::kCpu, DeviceKind::kNdp, DeviceKind::kGpu}) {
      if (name == to_string(device)) {
        profile.kind = device;
        known = true;
      }
    }
    if (!known) throw NdftError("unknown device: " + name);
  }
  if (const Json* v = j.find("peak_gflops")) profile.peak_gflops = v->as_double();
  if (const Json* v = j.find("dram_gbps")) profile.dram_gbps = v->as_double();
  if (const Json* v = j.find("link_gbps")) profile.link_gbps = v->as_double();
  if (const Json* v = j.find("switch_latency_ps")) {
    profile.switch_latency_ps = v->as_uint();
  }
  if (const Json* v = j.find("blocked_compute_efficiency")) {
    profile.blocked_compute_efficiency = v->as_double();
  }
  return profile;
}

}  // namespace ndft::runtime
