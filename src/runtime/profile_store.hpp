#pragma once
// Persistent store of fitted device profiles ("ndft.device_profile_store.v1"):
// when a CoDesignJob calibrates the CPU-side roofline constants from a
// measured trace, the fitted profile is recorded here keyed by
// {git SHA, hostname, kernel-pool width}, and later PlanJobs on the same
// build/host default to the calibrated beliefs instead of the static
// Table-III numbers. The key is deliberately narrow: a profile fitted on
// another machine, another pool width, or another build of the kernels
// says little about this one.
//
// One JSON file holds every entry. Writes go through a temp file + rename
// so a crash mid-write never corrupts the store, and a process-wide mutex
// serializes concurrent engines in one process. Cross-process writers are
// last-writer-wins per file replace — acceptable for a calibration cache
// whose entries converge to the same values.

#include <mutex>
#include <optional>
#include <string>

#include "runtime/device_profile.hpp"

namespace ndft::runtime {

/// Identity of one calibration context.
struct ProfileKey {
  std::string git_sha;       ///< build revision (common/run_metadata)
  std::string host;          ///< gethostname() of the measuring machine
  std::size_t pool_threads;  ///< kernel pool width during the run

  /// The calling process's context: build SHA, hostname, `pool_threads`.
  static ProfileKey current(std::size_t pool_threads);
};

/// File-backed map from ProfileKey to a fitted CPU DeviceProfile.
/// Thread-safe; every operation re-reads the file so multiple engines
/// (and processes) observe each other's writes.
class ProfileStore {
 public:
  /// Opens (lazily) the store at `path`. The file need not exist yet;
  /// it is created on the first put().
  explicit ProfileStore(std::string path);

  /// The fitted CPU profile recorded for `key`, if any. A missing file,
  /// an unreadable file, or a schema mismatch all read as "no entry" —
  /// the store is a cache, never a source of failure.
  std::optional<DeviceProfile> get_cpu(const ProfileKey& key) const;

  /// Records (or replaces) the fitted CPU profile for `key` and persists
  /// the store. Throws NdftError when the file cannot be written.
  void put_cpu(const ProfileKey& key, const DeviceProfile& profile);

  /// Number of entries currently persisted (0 for a missing file).
  std::size_t size() const;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  mutable std::mutex mutex_;
};

}  // namespace ndft::runtime
