#include "api/engine.hpp"

#include <algorithm>
#include <complex>

#include "common/thread_pool.hpp"
#include "dft/kpoints.hpp"
#include "dft/linalg.hpp"
#include "dft/pseudopotential.hpp"
#include "dft/spectrum.hpp"
#include "runtime/sca.hpp"

namespace ndft::api {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

constexpr double kHaPerRy = 0.5;
constexpr double kEvPerHa = 27.211386;

// ------------------------------------------------------------- executors
// Each executor wraps the existing free-function internals and distills
// the outcome into the serializable payload.

ScfPayload execute_scf(const ScfJob& job) {
  const dft::Crystal crystal = dft::Crystal::silicon_supercell(job.atoms);
  const dft::PlaneWaveBasis basis(crystal, job.ecut_ry * kHaPerRy);
  const dft::ScfResult scf = dft::solve_scf(basis, job.scf);

  ScfPayload payload;
  payload.atoms = job.atoms;
  payload.basis_size = basis.size();
  payload.grid_points = basis.fft_size();
  payload.converged = scf.converged;
  payload.iterations = scf.history.size();
  if (!scf.history.empty()) {
    payload.total_energy_ha = scf.history.back().total_energy_ha;
    payload.gap_ev = scf.history.back().gap_ev;
    payload.final_residual = scf.history.back().density_residual;
  }
  payload.electron_count = scf.electron_count(basis);
  payload.residual_history.reserve(scf.history.size());
  payload.energy_history.reserve(scf.history.size());
  for (const dft::ScfStep& step : scf.history) {
    payload.residual_history.push_back(step.density_residual);
    payload.energy_history.push_back(step.total_energy_ha);
  }
  return payload;
}

BandStructurePayload execute_band_structure(const BandStructureJob& job) {
  const dft::Crystal primitive = dft::silicon_primitive();
  const dft::PlaneWaveBasis basis(primitive, job.ecut_ry * kHaPerRy);
  const std::vector<dft::KPoint> path =
      dft::fcc_kpath(dft::kSiliconLatticeBohr, job.segments);
  const std::vector<dft::BandsAtK> structure =
      dft::band_structure(basis, path, job.bands);
  const dft::GapSummary gap = dft::find_gap(structure, job.valence_bands);

  BandStructurePayload payload;
  payload.basis_size = basis.size();
  payload.path.reserve(structure.size());
  for (const dft::BandsAtK& at_k : structure) {
    BandsAtKPayload point;
    point.label = at_k.kpoint.label;
    point.energies_ha = at_k.energies_ha;
    payload.path.push_back(std::move(point));
  }
  payload.vbm_ha = gap.vbm_ha;
  payload.cbm_ha = gap.cbm_ha;
  payload.vbm_label = gap.vbm_label;
  payload.cbm_label = gap.cbm_label;
  payload.indirect_gap_ev = gap.indirect_gap_ev();
  for (const dft::BandsAtK& at_k : structure) {
    if (at_k.kpoint.label == "Gamma" &&
        at_k.energies_ha.size() > job.valence_bands) {
      payload.direct_gap_gamma_ev =
          (at_k.energies_ha[job.valence_bands] -
           at_k.energies_ha[job.valence_bands - 1]) * kEvPerHa;
      break;
    }
  }
  return payload;
}

LrtddftPayload execute_lrtddft(const LrtddftJob& job) {
  const dft::Crystal crystal = dft::Crystal::silicon_supercell(job.atoms);
  const dft::PlaneWaveBasis basis(crystal, job.ecut_ry * kHaPerRy);
  const std::size_t bands =
      2 * job.atoms + std::max<std::size_t>(8, job.config.conduction_window);
  const dft::GroundState ground = dft::solve_epm(basis, bands);

  LrtddftPayload payload;
  payload.atoms = job.atoms;
  payload.basis_size = basis.size();
  const auto dims = basis.fft_dims();
  for (std::size_t i = 0; i < 3; ++i) payload.grid_dims[i] = dims[i];
  payload.ground_gap_ev = ground.band_gap_ev();
  payload.valence_bands = ground.valence_bands;

  // Nonlocal pseudopotential expectation on the lowest orbital
  // (Algorithm 1's update loop, one application).
  const dft::KbProjectors projectors(basis);
  payload.projector_count = projectors.count();
  std::vector<dft::Complex> psi(basis.size());
  for (std::size_t i = 0; i < basis.size(); ++i) {
    psi[i] = dft::Complex{ground.orbitals(i, 0), 0.0};
  }
  std::vector<dft::Complex> v_psi;
  projectors.apply(psi, v_psi);
  dft::Complex expectation{};
  for (std::size_t i = 0; i < basis.size(); ++i) {
    expectation += std::conj(psi[i]) * v_psi[i];
  }
  payload.nonlocal_expectation_ha = expectation.real();

  const dft::LrTddftResult result =
      dft::solve_lrtddft(basis, ground, job.config);
  payload.pair_count = result.pair_count;
  payload.excitations_ha = result.excitations_ha;
  payload.counts.reserve(result.counts.size());
  for (const auto& [cls, count] : result.counts) {
    KernelCountPayload entry;
    entry.cls = cls;
    entry.flops = count.flops;
    entry.bytes = count.bytes;
    payload.counts.push_back(entry);
  }
  if (job.oscillator_strengths) {
    for (const dft::OscillatorLine& line :
         dft::oscillator_strengths(basis, ground, job.config)) {
      payload.lines.push_back({line.energy_ev, line.strength});
    }
  }
  return payload;
}

SimulatePayload execute_simulate(const SimulateJob& job,
                                 const core::NdftSystem& shared_system,
                                 const core::SystemConfig& base_config) {
  // The engine's machine template covers the common case; a per-job
  // sampling override builds a one-shot system from the same config.
  const core::NdftSystem* system = &shared_system;
  std::unique_ptr<core::NdftSystem> scoped;
  if (job.sampled_ops != 0) {
    core::SystemConfig config = base_config;
    config.sampled_ops_per_kernel = job.sampled_ops;
    scoped = std::make_unique<core::NdftSystem>(config);
    system = scoped.get();
  }

  const dft::Workload workload = system->workload_for(job.atoms);
  const core::RunReport report = system->run(workload, job.mode);

  SimulatePayload payload;
  payload.mode = report.mode;
  payload.atoms = report.dims.atoms;
  payload.pairs = report.dims.pairs;
  payload.grid_points = report.dims.grid_points;
  payload.basis_size = report.dims.basis_size;
  payload.kernels.reserve(report.kernels.size());
  for (const core::KernelTime& k : report.kernels) {
    payload.kernels.push_back({k.name, k.cls, k.device, k.time_ps});
  }
  payload.total_ps = report.total_ps();
  payload.sched_overhead_ps = report.sched_overhead_ps;
  payload.memory_energy_mj = report.memory_energy_mj;
  payload.mesh_bytes = report.mesh_bytes;
  payload.sharing_bytes = report.sharing_bytes;
  payload.pseudo_total = report.pseudo.total;
  payload.pseudo_per_process = report.pseudo.per_process;
  payload.pseudo_capacity = report.pseudo.capacity;
  payload.pseudo_oom = report.pseudo.out_of_memory();
  return payload;
}

PlanPayload execute_plan(const PlanJob& job,
                         const core::NdftSystem& system,
                         const core::SystemConfig& base_config) {
  const runtime::DeviceProfile& cpu_profile =
      job.profile_override.empty() ? base_config.cpu_profile
                                   : job.profile_override[0];
  const runtime::DeviceProfile& ndp_profile =
      job.profile_override.empty() ? base_config.ndp_profile
                                   : job.profile_override[1];
  const dft::Workload workload = system.workload_for(job.atoms);
  const runtime::Sca sca(cpu_profile, ndp_profile);
  const runtime::CostModel cost(cpu_profile, ndp_profile);
  const runtime::Scheduler scheduler(sca, cost);
  const runtime::ExecutionPlan plan =
      scheduler.plan(workload, job.granularity);

  PlanPayload payload;
  payload.atoms = job.atoms;
  payload.granularity = job.granularity;
  payload.placements.reserve(plan.placements.size());
  for (std::size_t i = 0; i < workload.kernels.size(); ++i) {
    const dft::KernelWork& kernel = workload.kernels[i];
    const runtime::Placement& placement = plan.placements[i];
    const runtime::KernelAnalysis analysis = sca.analyze(kernel);
    PlacementPayload entry;
    entry.kernel = kernel.name;
    entry.cls = kernel.cls;
    entry.device = placement.device;
    entry.crossing = placement.crossing;
    entry.est_time_ps = placement.est_time_ps;
    entry.transfer_in_ps = placement.transfer_in_ps;
    entry.switch_in_ps = placement.switch_in_ps;
    entry.arithmetic_intensity = analysis.arithmetic_intensity;
    entry.est_cpu_ps = analysis.est_cpu_ps;
    entry.est_ndp_ps = analysis.est_ndp_ps;
    payload.placements.push_back(std::move(entry));
  }
  payload.est_total_ps = plan.est_total_ps;
  payload.est_overhead_ps = plan.est_overhead_ps;
  payload.crossings = plan.crossings;
  return payload;
}

}  // namespace

// -------------------------------------------------------------- JobHandle

std::uint64_t JobHandle::id() const {
  NDFT_REQUIRE(valid(), "empty job handle");
  return state_->id;
}

JobStatus JobHandle::status() const {
  NDFT_REQUIRE(valid(), "empty job handle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->status;
}

bool JobHandle::cancel() {
  NDFT_REQUIRE(valid(), "empty job handle");
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->status != JobStatus::kQueued) return false;
  state_->status = JobStatus::kCancelled;
  state_->result.status = JobStatus::kCancelled;
  state_->result.error = ErrorKind::kCancelled;
  state_->result.error_message = "job cancelled while queued";
  state_->result.timings.queue_ms =
      ms_between(state_->submitted_at, Clock::now());
  state_->result.timings.total_ms = state_->result.timings.queue_ms;
  state_->terminal = true;
  state_->cv.notify_all();
  return true;
}

const JobResult& JobHandle::wait() const {
  NDFT_REQUIRE(valid(), "empty job handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->terminal; });
  return state_->result;
}

// ----------------------------------------------------------------- Engine

Engine::Engine(EngineConfig config)
    : config_(std::move(config)), system_(config_.system) {
  // Warm the shared kernel pool so the first job does not pay thread
  // startup; the FFT plan cache warms lazily per grid size.
  (void)ThreadPool::instance();
  for (std::size_t i = 0; i < config_.dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

Engine::~Engine() {
  // Cancel everything still queued, then stop the dispatchers once the
  // in-flight jobs finish. Handles stay valid: their state is shared.
  std::deque<std::shared_ptr<detail::JobState>> orphaned;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    orphaned.swap(queue_);
  }
  for (const auto& state : orphaned) {
    JobHandle handle(state);
    handle.cancel();
    // Count every orphan that ends up cancelled, whether by us just now
    // or by the user earlier (never popped, so never counted elsewhere).
    if (handle.status() == JobStatus::kCancelled) {
      cancelled_.fetch_add(1);
    }
  }
  queue_cv_.notify_all();
  for (std::thread& dispatcher : dispatchers_) {
    dispatcher.join();
  }
}

const core::SystemConfig& Engine::system_config() const noexcept {
  return system_.config();
}

std::size_t Engine::pool_threads() const noexcept {
  return ThreadPool::instance().threads();
}

JobResult Engine::run(const JobRequest& request) {
  const Clock::time_point start = Clock::now();
  JobResult result = execute(request);
  result.engine.job_id = next_job_id_.fetch_add(1);
  result.timings.queue_ms = 0.0;
  result.timings.total_ms = ms_between(start, Clock::now());
  submitted_.fetch_add(1);
  completed_.fetch_add(1);
  return result;
}

JobHandle Engine::submit(JobRequest request) {
  auto state = std::make_shared<detail::JobState>();
  state->id = next_job_id_.fetch_add(1);
  state->request = std::move(request);
  state->submitted_at = Clock::now();
  // Engine metadata the cancel path also needs, stamped up front.
  state->result.engine.job_id = state->id;
  state->result.engine.kind = job_kind(state->request);
  state->result.engine.pool_threads = pool_threads();
  state->result.engine.dispatch_threads = config_.dispatch_threads;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    NDFT_REQUIRE(!stopping_, "engine is shutting down");
    NDFT_REQUIRE(queue_.size() < config_.max_pending,
                 "engine queue is full");
    queue_.push_back(state);
  }
  submitted_.fetch_add(1);
  queue_cv_.notify_one();
  return JobHandle(state);
}

std::vector<JobHandle> Engine::submit_batch(
    std::vector<JobRequest> requests) {
  std::vector<JobHandle> handles;
  handles.reserve(requests.size());
  for (JobRequest& request : requests) {
    handles.push_back(submit(std::move(request)));
  }
  return handles;
}

void Engine::drain() {
  if (config_.dispatch_threads == 0) {
    // Manual mode: the caller's thread is the dispatcher.
    for (;;) {
      std::shared_ptr<detail::JobState> state;
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (queue_.empty()) break;
        state = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
      }
      execute_queued(state);
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
    }
    return;
  }
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void Engine::dispatcher_loop() {
  for (;;) {
    std::shared_ptr<detail::JobState> state;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      state = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    execute_queued(state);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

void Engine::execute_queued(const std::shared_ptr<detail::JobState>& state) {
  Clock::time_point started;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (state->status != JobStatus::kQueued) {
      cancelled_.fetch_add(1);  // cancelled between pop and start
      return;
    }
    state->status = JobStatus::kRunning;
    started = Clock::now();
  }
  JobResult result = execute(state->request);
  result.engine = state->result.engine;  // id/kind stamped at submit
  result.timings.queue_ms = ms_between(state->submitted_at, started);
  result.timings.total_ms = result.timings.queue_ms + result.timings.run_ms;
  // Count before publishing: a waiter woken by the notify must already
  // observe this job in jobs_completed().
  completed_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->result = std::move(result);
    state->status = state->result.status;
    state->terminal = true;
    state->cv.notify_all();
  }
}

JobResult Engine::execute(const JobRequest& request) {
  JobResult result;
  result.engine.kind = job_kind(request);
  result.engine.pool_threads = pool_threads();
  result.engine.dispatch_threads = config_.dispatch_threads;

  std::vector<std::string> errors = validate(request);
  if (!errors.empty()) {
    result.status = JobStatus::kInvalid;
    result.error = ErrorKind::kInvalidRequest;
    result.error_message = "request failed validation";
    result.error_details = std::move(errors);
    return result;
  }

  const Clock::time_point start = Clock::now();
  // The job runs to completion on this thread, so the thread-local linalg
  // tally brackets exactly this job's dense-algebra share.
  dft::linalg_timer_reset();
  try {
    if (const auto* job = std::get_if<ScfJob>(&request)) {
      result.scf = execute_scf(*job);
    } else if (const auto* job = std::get_if<BandStructureJob>(&request)) {
      result.band_structure = execute_band_structure(*job);
    } else if (const auto* job = std::get_if<LrtddftJob>(&request)) {
      result.lrtddft = execute_lrtddft(*job);
    } else if (const auto* job = std::get_if<SimulateJob>(&request)) {
      result.simulate = execute_simulate(*job, system_, config_.system);
    } else if (const auto* job = std::get_if<PlanJob>(&request)) {
      result.plan = execute_plan(*job, system_, config_.system);
    } else {
      throw NdftError("unhandled job kind");
    }
    result.status = JobStatus::kOk;
  } catch (const NdftError& error) {
    result.status = JobStatus::kFailed;
    result.error = ErrorKind::kPhysics;
    result.error_message = error.what();
  } catch (const std::exception& error) {
    result.status = JobStatus::kFailed;
    result.error = ErrorKind::kInternal;
    result.error_message = error.what();
  }
  result.timings.run_ms = ms_between(start, Clock::now());
  result.timings.linalg_ms = dft::linalg_timer_ms();
  return result;
}

}  // namespace ndft::api
