#pragma once
// Analytical GPU baseline (Section V: DGX-1 with 2x NVIDIA V100).
//
// The paper uses the GPU only as an end-to-end comparison point, and the
// effects that decide the comparison are (1) host<->device transfers over
// PCIe for every offloaded kernel and (2) memory-bound kernels capped by
// device HBM bandwidth. Both are first-order analytical, so the GPU is
// modelled as a per-kernel-class roofline with transfer and launch costs
// instead of a cycle-level simulator.
//
// The per-class efficiency factors are calibration constants: they fold in
// everything a roofline misses (occupancy, tensor shapes, library quality
// on tall-skinny complex matrices, eigensolver serialization). Defaults
// were chosen so the kernel-level CPU/GPU ratios land inside the ranges
// the paper reports; EXPERIMENTS.md records the calibration.

#include "common/types.hpp"
#include "common/units.hpp"

namespace ndft::gpu {

/// Efficiency of one kernel family on the GPU.
struct KernelEfficiency {
  double compute = 0.5;  ///< fraction of peak FLOP/s actually achieved
  double memory = 0.6;   ///< fraction of peak HBM bandwidth achieved
};

/// GPU device + interconnect parameters.
struct GpuConfig {
  double peak_gflops = 2 * 7800.0;  ///< 2x V100, FP64
  double mem_gbps = 2 * 900.0;      ///< 2x HBM2
  /// Effective host<->device PCIe rate (pinned staging buffers).
  double pcie_gbps = 16.0;
  /// Effective GPU<->GPU rate for collective exchanges (NVLink on DGX-1,
  /// aggregate across links, including pack/unpack overheads).
  double nvlink_gbps = 140.0;
  TimePs kernel_launch_ps = 10 * kPsPerUs;
  Bytes device_memory = 2ull * 16 * 1024 * 1024 * 1024;  ///< 2x 16 GiB

  KernelEfficiency fft{0.30, 0.55};
  /// The response GEMMs are tall-skinny (inner dimension = the Davidson
  /// block of 16), which cuBLAS executes at single-digit percent of FP64
  /// peak; this reproduces the paper's modest (22-36 %) GPU GEMM
  /// advantage over the host CPU.
  KernelEfficiency gemm{0.048, 0.60};
  /// cuSOLVER-style dense eigensolvers are heavily serialized.
  KernelEfficiency syevd{0.05, 0.40};
  KernelEfficiency face_split{0.50, 0.70};
  KernelEfficiency pseudopotential{0.25, 0.55};
  /// Alltoall crosses the host: staged through PCIe both ways.
  KernelEfficiency alltoall{0.10, 0.30};
  KernelEfficiency other{0.30, 0.50};

  /// Section V baseline: DGX-1 with two V100s.
  static GpuConfig dgx1_v100x2();

  /// Efficiency entry for a kernel class.
  const KernelEfficiency& efficiency(KernelClass kernel_class) const;
};

/// Timing breakdown of one kernel offloaded to the GPU.
struct GpuStepTime {
  TimePs h2d = 0;     ///< host-to-device transfer
  TimePs kernel = 0;  ///< on-device execution (incl. launch)
  TimePs d2h = 0;     ///< device-to-host transfer

  TimePs total() const noexcept { return h2d + kernel + d2h; }
};

/// Stateless analytical timing model. Thread-safe: all methods const.
class GpuModel {
 public:
  explicit GpuModel(const GpuConfig& config) : config_(config) {}

  /// Time for one kernel: PCIe transfers + roofline execution.
  /// `device_bytes` is DRAM traffic on the device during the kernel;
  /// `h2d_bytes`/`d2h_bytes` are staged over PCIe before/after it.
  GpuStepTime execute(KernelClass kernel_class, Flops flops,
                      Bytes device_bytes, Bytes h2d_bytes,
                      Bytes d2h_bytes) const;

  /// Pure transfer (no kernel), e.g. input staging.
  TimePs transfer(Bytes bytes) const;

  /// GPU-to-GPU collective transfer (NVLink path).
  TimePs peer_transfer(Bytes bytes) const;

  const GpuConfig& config() const noexcept { return config_; }

 private:
  GpuConfig config_;
};

}  // namespace ndft::gpu
