#pragma once
// Cost-aware workload partitioning and scheduling (Section IV-A).
//
// Kernels are offloaded at *function* granularity: each pipeline stage is
// placed on the CPU or the NDP side by a dynamic program over the linear
// kernel chain that minimises estimated execution time plus the Eq. 1
// crossing overheads (DT + CXT at every CPU<->NDP boundary).
//
// The granularity ablation (bench/abl_granularity) models the paper's
// argument for function-level offload: finer granularities split each
// function into segments that each pay their own crossing overhead, while
// coarser granularity forces the whole iteration onto one device.

#include <vector>

#include "dft/workload.hpp"
#include "runtime/cost_model.hpp"
#include "runtime/sca.hpp"

namespace ndft::runtime {

/// Offload granularity choices of Section IV-A1.
enum class Granularity {
  kInstruction,  ///< every ~instruction group is a schedulable segment
  kBasicBlock,   ///< basic-block segments
  kFunction,     ///< one decision per kernel (NDFT's choice)
  kKernel,       ///< the whole iteration runs on a single device
};

/// Placement decision for one kernel.
struct Placement {
  DeviceKind device = DeviceKind::kCpu;
  TimePs est_time_ps = 0;       ///< SCA's roofline estimate on that device
  TimePs transfer_in_ps = 0;    ///< DT paid before the kernel starts
  TimePs switch_in_ps = 0;      ///< CXT paid before the kernel starts
  bool crossing = false;        ///< true if the device changed here
};

/// The full schedule for a workload.
struct ExecutionPlan {
  std::vector<Placement> placements;  ///< one per kernel, pipeline order
  TimePs est_total_ps = 0;            ///< estimate incl. overheads
  TimePs est_overhead_ps = 0;         ///< sum of DT + CXT terms
  unsigned crossings = 0;             ///< CPU<->NDP boundary count

  /// Fraction of the estimated total spent on scheduling overhead.
  double overhead_fraction() const noexcept {
    return est_total_ps == 0
               ? 0.0
               : static_cast<double>(est_overhead_ps) /
                     static_cast<double>(est_total_ps);
  }
};

/// The cost-aware offloading scheduler.
class Scheduler {
 public:
  Scheduler(const Sca& sca, const CostModel& cost)
      : sca_(&sca), cost_(&cost) {}

  /// Builds the minimal-cost plan for `workload` at the given granularity.
  /// `segments_per_kernel` only matters for sub-function granularities:
  /// it is how many independently-scheduled segments each kernel splits
  /// into (each segment pays its own crossing overhead when it moves).
  ExecutionPlan plan(const dft::Workload& workload,
                     Granularity granularity = Granularity::kFunction) const;

  /// Segment count a granularity implies for one kernel.
  static unsigned segments_for(Granularity granularity);

 private:
  ExecutionPlan plan_function_level(const dft::Workload& workload,
                                    unsigned segments_per_kernel) const;
  ExecutionPlan plan_single_device(const dft::Workload& workload) const;

  const Sca* sca_;
  const CostModel* cost_;
};

}  // namespace ndft::runtime
