#pragma once
// The abstract operation trace that couples the functional DFT kernels to
// the timing models. A kernel slice is rendered as a sequence of compute
// bundles and line-granularity memory accesses; the same trace can be
// replayed on a CPU core, an NDP core, or fed to the analytical GPU model.

#include <vector>

#include "common/types.hpp"

namespace ndft::cpu {

/// Kind of a trace operation.
enum class OpKind : std::uint8_t {
  kCompute,  ///< a bundle of floating-point work
  kLoad,     ///< memory read (size <= one cache line)
  kStore,    ///< memory write
};

/// One operation in a kernel trace.
struct TraceOp {
  OpKind kind = OpKind::kCompute;
  Addr addr = 0;    ///< valid for loads/stores
  Bytes size = 64;  ///< valid for loads/stores
  Flops flops = 0;  ///< valid for compute bundles
};

/// A sampled trace. `scale` says how many times longer the real kernel is
/// than the sampled window; simulated elapsed time is multiplied by it.
struct Trace {
  std::vector<TraceOp> ops;
  double scale = 1.0;

  /// Total flops in the sampled window.
  Flops total_flops() const noexcept {
    Flops total = 0;
    for (const TraceOp& op : ops) total += op.flops;
    return total;
  }

  /// Total bytes touched by loads+stores in the sampled window.
  Bytes total_bytes() const noexcept {
    Bytes total = 0;
    for (const TraceOp& op : ops) {
      if (op.kind != OpKind::kCompute) total += op.size;
    }
    return total;
  }
};

}  // namespace ndft::cpu
