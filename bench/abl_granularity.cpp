// Ablation A1 (Section IV-A1): offload granularity. The paper argues for
// function-level offloading because finer granularities multiply crossing
// overheads while LR-TDDFT functions are internally homogeneous, and
// whole-kernel granularity forfeits the CPU/NDP specialisation.

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"

using namespace ndft;

int main() {
  std::printf("Ablation A1: offload granularity (scheduler estimates)\n\n");
  const core::NdftSystem system;
  for (const std::size_t atoms : {std::size_t{64}, std::size_t{1024}}) {
    const dft::Workload w = system.workload_for(atoms);
    TextTable table({"granularity", "est. total", "overhead", "overhead %",
                     "crossings"});
    const auto row = [&](const char* name, runtime::Granularity g) {
      const runtime::ExecutionPlan plan = system.plan(w, g);
      table.add_row({name, format_time(plan.est_total_ps),
                     format_time(plan.est_overhead_ps),
                     format_percent(plan.overhead_fraction()),
                     strformat("%u", plan.crossings)});
    };
    row("instruction", runtime::Granularity::kInstruction);
    row("basic block", runtime::Granularity::kBasicBlock);
    row("function (NDFT)", runtime::Granularity::kFunction);
    row("whole kernel", runtime::Granularity::kKernel);
    std::printf("--- Si_%zu ---\n%s\n", atoms, table.render().c_str());
  }
  return 0;
}
