#pragma once
// Unified kernel-dispatch/trace layer: the hot kernels (fft3d, gemm,
// syevd/heev, Davidson applies) and the pipeline stage boundaries
// (SCF / LR-TDDFT / EPM) all report through here, so one real run emits
// an ordered stream of kernel events — class, analytic flop/byte counts,
// grid/matrix dimensions and the measured host wall time. The stream is
// the measured counterpart of the analytic dft::Workload: it feeds the
// co-design loop (Workload::from_trace + runtime::calibrate_cpu), closing
// the gap between the DFT numerics and the NDP scheduler.
//
// Recording model and determinism:
//  - A TraceScope installs a TraceRecorder on the *calling thread*; only
//    that thread emits events. Kernels invoked from pool workers inside a
//    parallel_for never record (they have no recorder installed), and
//    kernels the recording thread runs inline inside a parallel region
//    are suppressed by the enclosing TraceRegion. Event order is
//    therefore program order, and the recorded structure (class, name,
//    counts, dims) is bitwise identical for any pool width; only host_ms
//    varies between runs.
//  - Flop/byte counts are the analytic per-call tallies the kernels
//    already expose through OpCount (never sampled hardware counters),
//    which is what makes traces comparable against workload.hpp's
//    closed-form model.
//  - Nested kernels fold into their outermost entry (a GEMM inside syevd
//    is part of the syevd event), mirroring the linalg timer.
//
// When no recorder is installed every hook is a cheap no-op (one
// thread-local pointer test), so production runs without tracing pay
// nothing measurable.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"

namespace ndft {

/// One recorded kernel execution (or aggregated pipeline stage).
struct TraceEvent {
  KernelClass cls = KernelClass::kOther;
  std::string name;       ///< kernel / stage name ("syevd", "scf.density")
  std::string stage;      ///< enclosing pipeline stage ("scf[3]", "lrtddft")
  Flops flops = 0;        ///< analytic flop count (OpCount convention)
  Bytes bytes = 0;        ///< instruction-level traffic (OpCount convention)
  Bytes input_bytes = 0;  ///< operand bytes consumed from the prior stage
  Bytes output_bytes = 0; ///< result bytes handed to the next stage
  std::uint64_t dims[3] = {0, 0, 0};  ///< grid (nx,ny,nz) / matrix (m,n,k)
  double host_ms = 0.0;   ///< measured wall-clock milliseconds
};

/// An ordered kernel trace of one run plus the system metadata needed to
/// rebuild a dft::Workload from it.
struct KernelTrace {
  std::size_t atoms = 0;        ///< atom count of the traced system
  std::size_t basis_size = 0;   ///< N_G of the traced basis
  std::size_t grid_points = 0;  ///< Nr of the traced FFT grid
  std::size_t pool_threads = 0; ///< kernel pool width during the run
  bool truncated = false;       ///< event cap hit; tail events dropped
  std::vector<TraceEvent> events;

  Flops total_flops() const noexcept;
  Bytes total_bytes() const noexcept;
  double total_host_ms() const noexcept;
  /// Number of events of one kernel class.
  std::size_t count_of(KernelClass cls) const noexcept;
  /// Summed flops of one kernel class.
  Flops flops_of(KernelClass cls) const noexcept;
  /// Summed instruction-level bytes of one kernel class.
  Bytes bytes_of(KernelClass cls) const noexcept;

  /// Serializes under the "ndft.kernel_trace.v1" schema.
  Json to_json() const;
  /// Reconstructs a trace; throws NdftError on schema mismatch.
  static KernelTrace from_json(const Json& json);
};

/// Thread-safe per-run event sink. One recorder lives for the duration of
/// one traced job; TraceScope routes the calling thread's kernels to it.
class TraceRecorder {
 public:
  /// Hard cap on recorded events; beyond it events are dropped and the
  /// trace is marked truncated (a runaway SCF cannot eat the heap).
  static constexpr std::size_t kMaxEvents = 65536;

  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Appends one event (thread-safe, though in practice only the scope
  /// thread emits).
  void record(TraceEvent event);

  /// Stamps the traced system's dimensions (atoms / N_G / Nr).
  void set_system(std::size_t atoms, std::size_t basis_size,
                  std::size_t grid_points);

  /// Moves the accumulated trace out (the recorder resets to empty).
  KernelTrace take();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// True when the calling thread has a recorder installed and recording is
/// not suppressed by an enclosing region/kernel. Pipelines use this to
/// skip building per-event metadata (e.g. formatting per-iteration stage
/// labels) on untraced runs.
bool trace_active() noexcept;

/// RAII: routes the calling thread's kernel events to `recorder` for the
/// scope's lifetime. Scopes must not nest on one thread.
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder& recorder);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

/// RAII: labels events emitted in the scope with a pipeline stage name
/// ("scf[2]", "lrtddft", "bands[L]"). Nestable; restores the previous
/// label on exit. No-op when the thread is not recording.
class TraceStage {
 public:
  explicit TraceStage(std::string stage);
  ~TraceStage();
  TraceStage(const TraceStage&) = delete;
  TraceStage& operator=(const TraceStage&) = delete;

 private:
  std::string previous_;
  bool active_ = false;
};

/// RAII: aggregates a whole pipeline phase (e.g. the pair-product FFT
/// batch, the SCF density update) into ONE event. While a region is open
/// on the recording thread, individual kernel entries are suppressed —
/// their chunking under parallel_for would otherwise make the event
/// stream depend on the pool width. The region's flop/byte counts are
/// supplied explicitly by the pipeline (deterministic analytic tallies)
/// via add_work()/trace_add_work; the region measures its own wall time.
class TraceRegion {
 public:
  TraceRegion(KernelClass cls, std::string name);
  ~TraceRegion();
  TraceRegion(const TraceRegion&) = delete;
  TraceRegion& operator=(const TraceRegion&) = delete;

  /// Folds deterministic work into the region's event.
  void add_work(Flops flops, Bytes bytes) noexcept;
  /// Dimensions for the emitted event (grid or matrix shape).
  void set_dims(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept;
  /// Operand traffic for the scheduler's DT term.
  void set_io(Bytes input_bytes, Bytes output_bytes) noexcept;

  struct State;  ///< implementation detail (thread-local region chain)

 private:
  State* state_ = nullptr;  ///< null when the thread is not recording
};

/// Folds work into the innermost open TraceRegion on the calling thread
/// (no-op otherwise). Lets callbacks executed inside a region (e.g. the
/// Davidson apply functor) account work they perform outside the traced
/// kernel entry points.
void trace_add_work(Flops flops, Bytes bytes) noexcept;

/// Stamps the traced system's dimensions on the calling thread's recorder
/// (no-op when the thread is not recording). The pipelines call this with
/// their real basis/grid sizes so Workload::from_trace can rebuild
/// SystemDims from measured values.
void trace_set_system(std::size_t atoms, std::size_t basis_size,
                      std::size_t grid_points) noexcept;

/// RAII used inside the hot kernel entry points (fft3d, gemm, syevd,
/// heev): times the call and emits one event to the thread's recorder.
/// Only the outermost kernel on the thread emits (nested entries fold),
/// and an open TraceRegion suppresses emission entirely. All setters are
/// no-ops when the timer is inactive, so entry points may call them
/// unconditionally.
class KernelTimer {
 public:
  KernelTimer(KernelClass cls, const char* name);
  ~KernelTimer();
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

  /// True when this timer will emit an event (outermost + recording).
  bool active() const noexcept { return active_; }

  void set_work(Flops flops, Bytes bytes) noexcept;
  void set_dims(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept;
  void set_io(Bytes input_bytes, Bytes output_bytes) noexcept;

 private:
  TraceEvent event_;
  double start_ms_ = 0.0;
  bool active_ = false;
};

}  // namespace ndft
