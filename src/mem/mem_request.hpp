#pragma once
// The request type that flows from cores through caches into DRAM.

#include <functional>

#include "common/types.hpp"

namespace ndft::mem {

/// Completion callback; receives the simulated time at which data returned.
using MemCallback = std::function<void(TimePs)>;

/// A single memory transaction (one cache line by the time it reaches DRAM).
struct MemRequest {
  Addr addr = 0;
  Bytes size = 64;
  bool is_write = false;
  MemCallback on_complete;  ///< may be empty for writes (posted)
};

/// Interface implemented by anything that can service memory requests:
/// DRAM systems, caches (from the level above), and remote-access proxies.
class MemoryPort {
 public:
  virtual ~MemoryPort() = default;

  /// Submits a request; `req.on_complete` fires when data is available
  /// (reads) or when the write is accepted at its destination.
  virtual void access(MemRequest req) = 0;
};

}  // namespace ndft::mem
