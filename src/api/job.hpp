#pragma once
// Typed job requests: the one vocabulary through which every workload
// enters the system. Each job kind owns a validated, defaultable config;
// `JobRequest` is the closed sum type the Engine accepts, both for the
// synchronous `run()` path and the async `submit()` queue.
//
// A request describes *what* to compute, never *how*: machine
// configuration, thread counts and sampling knobs live in the Engine
// (EngineConfig), so the same request produces the same result on any
// engine with the same configuration.

#include <cstddef>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/json.hpp"
#include "common/kernel_trace.hpp"
#include "core/report.hpp"
#include "dft/kpoints.hpp"
#include "dft/lrtddft.hpp"
#include "dft/scf.hpp"
#include "runtime/device_profile.hpp"
#include "runtime/scheduler.hpp"

namespace ndft::api {

/// Self-consistent-field LDA ground state of an Si_n supercell
/// (dft::solve_scf).
struct ScfJob {
  std::size_t atoms = 8;        ///< supercell size (multiple of 8)
  double ecut_ry = 4.5;         ///< plane-wave cutoff in Rydberg
  dft::ScfConfig scf;           ///< mixing / tolerance / band controls
  /// Record the run's kernel trace into JobResult::trace (feeds a
  /// follow-up CoDesignJob).
  bool record_trace = false;
  /// Wall-clock budget in milliseconds, measured from submission
  /// (submit()) or from execution start (run()). 0 = unlimited. Expiry
  /// surfaces as JobStatus::kDeadlineExceeded, detected at the next
  /// stage boundary once the job is running.
  double deadline_ms = 0.0;
};

/// EPM band structure (dft::band_structure, dft::find_gap): the
/// Cohen-Bergstresser high-symmetry path on the primitive FCC cell, or
/// an arbitrary silicon crystal sampled on a Monkhorst-Pack grid whose
/// weights flow into the gap summary's band-energy integral.
struct BandStructureJob {
  /// How the Brillouin zone is sampled.
  enum class Sampling {
    kPath,           ///< FCC path L -> Gamma -> X -> K -> Gamma
    kMonkhorstPack,  ///< mp_grid[0] x mp_grid[1] x mp_grid[2] grid
    kExplicit,       ///< the `kpoints` list verbatim (shard sub-jobs)
  };

  /// One explicitly requested k-point (Sampling::kExplicit): Cartesian
  /// reciprocal coordinates in Bohr^-1, an integration weight flowing
  /// into the gap summary, and an optional high-symmetry label. This is
  /// how a scatter/gather front end (api/shard) expresses per-shard
  /// subsets of a folded grid over the wire.
  struct KPointSpec {
    double k[3] = {0.0, 0.0, 0.0};
    double weight = 1.0;
    std::string label;
  };

  /// Crystal spec: 0 selects the 2-atom primitive FCC cell; a positive
  /// multiple of 8 builds Crystal::silicon_supercell(atoms).
  std::size_t atoms = 0;
  double ecut_ry = 9.0;         ///< plane-wave cutoff in Rydberg
  Sampling sampling = Sampling::kPath;
  unsigned segments = 10;       ///< k-points per path leg (kPath)
  /// Monkhorst-Pack divisions per reciprocal axis (kMonkhorstPack).
  unsigned mp_grid[3] = {4, 4, 4};
  /// Explicit k-point list (kExplicit); solved verbatim, no folding.
  std::vector<KPointSpec> kpoints;
  std::size_t bands = 8;        ///< bands kept per k-point
  std::size_t valence_bands = 4;  ///< filled bands for the gap summary
  /// Record the run's kernel trace into JobResult::trace.
  bool record_trace = false;
  /// Wall-clock budget in milliseconds, measured from submission
  /// (submit()) or from execution start (run()). 0 = unlimited. Expiry
  /// surfaces as JobStatus::kDeadlineExceeded, detected at the next
  /// stage boundary once the job is running.
  double deadline_ms = 0.0;
};

/// Functional LR-TDDFT excitation spectrum on an EPM ground state
/// (dft::solve_lrtddft), optionally with oscillator strengths.
struct LrtddftJob {
  std::size_t atoms = 8;        ///< supercell size (multiple of 8)
  double ecut_ry = 4.5;         ///< plane-wave cutoff in Rydberg
  dft::LrTddftConfig config;    ///< excitation-window controls
  bool oscillator_strengths = false;  ///< also compute optical lines
  /// Record the run's kernel trace into JobResult::trace.
  bool record_trace = false;
  /// Wall-clock budget in milliseconds, measured from submission
  /// (submit()) or from execution start (run()). 0 = unlimited. Expiry
  /// surfaces as JobStatus::kDeadlineExceeded, detected at the next
  /// stage boundary once the job is running.
  double deadline_ms = 0.0;
};

/// Timing simulation of one LR-TDDFT iteration on one of the paper's
/// machines (core::NdftSystem::run).
struct SimulateJob {
  std::size_t atoms = 64;       ///< Si_n system (multiple of 8)
  core::ExecMode mode = core::ExecMode::kNdft;
  /// Sampled memory ops per kernel; 0 keeps the engine's default.
  std::size_t sampled_ops = 0;
  /// Optional "ndft.machine.v1" hardware description
  /// (ndp::NdpSystemConfig::from_json): this run simulates the described
  /// machine instead of the engine's default. Validated up front — a
  /// malformed document is kInvalid, never a mid-simulation throw.
  std::optional<Json> machine;
  /// Record the *simulator-emitted* per-kernel trace into
  /// JobResult::trace: one "ndft.kernel_trace.v1" entry per simulated
  /// kernel, stage "sim[cpu]"/"sim[ndp]"/"sim[gpu]", with host_ms
  /// carrying simulated time. Feeds CoDesignJob / AdaptiveScheduler like
  /// a measured trace does.
  bool record_trace = false;
  /// Wall-clock budget in milliseconds, measured from submission
  /// (submit()) or from execution start (run()). 0 = unlimited. Expiry
  /// surfaces as JobStatus::kDeadlineExceeded, detected at the next
  /// stage boundary once the job is running.
  double deadline_ms = 0.0;
};

/// Cost-aware schedule for one LR-TDDFT iteration, with optional what-if
/// device profiles (core::NdftSystem::plan / runtime::Scheduler).
struct PlanJob {
  std::size_t atoms = 64;       ///< Si_n system (multiple of 8)
  runtime::Granularity granularity = runtime::Granularity::kFunction;
  /// Override the engine's scheduler beliefs (what-if experiments). Both
  /// must be set together or left unset. When unset and the engine has a
  /// profile store (EngineConfig::profile_store_path), the plan defaults
  /// to the stored calibrated profile for this host instead.
  std::vector<runtime::DeviceProfile> profile_override;  ///< [cpu, ndp]
  /// Optional "ndft.machine.v1" hardware description to plan against.
  std::optional<Json> machine;
  /// Wall-clock budget in milliseconds, measured from submission
  /// (submit()) or from execution start (run()). 0 = unlimited. Expiry
  /// surfaces as JobStatus::kDeadlineExceeded, detected at the next
  /// stage boundary once the job is running.
  double deadline_ms = 0.0;
};

/// Replays a recorded kernel trace through the cost-aware scheduler (and
/// optionally the timing simulation): one Engine call answers "what would
/// the NDP machine do with *this actual* workload". The trace typically
/// comes from a previous job run with record_trace set (JobResult::trace).
struct CoDesignJob {
  KernelTrace trace;            ///< measured workload to replay
  runtime::Granularity granularity = runtime::Granularity::kFunction;
  /// Fit the SCA's CPU-side roofline constants from the measured kernel
  /// times before planning (runtime::calibrate_cpu).
  bool calibrate = true;
  /// Also simulate the planned schedule on the CPU-NDP machine
  /// (core::NdftSystem::run_planned) and attach the SimulatePayload.
  bool simulate = true;
  /// Optional "ndft.machine.v1" hardware description for the simulated
  /// leg (and the NDP-side scheduler beliefs derived from it).
  std::optional<Json> machine;
  /// Wall-clock budget in milliseconds, measured from submission
  /// (submit()) or from execution start (run()). 0 = unlimited. Expiry
  /// surfaces as JobStatus::kDeadlineExceeded, detected at the next
  /// stage boundary once the job is running.
  double deadline_ms = 0.0;
};

/// The closed sum of everything the Engine can execute.
using JobRequest = std::variant<ScfJob, BandStructureJob, LrtddftJob,
                                SimulateJob, PlanJob, CoDesignJob>;

/// Stable kind name of a request ("scf", "band_structure", "lrtddft",
/// "simulate", "plan", "codesign") — used in results, logs and JSON.
const char* job_kind(const JobRequest& request) noexcept;

/// The request's deadline_ms (every job kind carries one; 0 = unlimited).
double job_deadline_ms(const JobRequest& request) noexcept;

/// The k-set a BandStructureJob solves against `crystal`: the
/// high-symmetry path verbatim, the Monkhorst-Pack grid folded to its
/// time-reversal half (dft::fold_time_reversal), or the explicit list
/// verbatim. Shared by the Engine executor and the scatter/gather layer
/// (api/shard) so both sides carve bitwise-identical k-sets.
std::vector<dft::KPoint> band_job_kpoints(const BandStructureJob& job,
                                          const dft::Crystal& crystal);

/// Validates a request against the physics/simulation preconditions.
/// Returns every violation found (empty = the request is runnable).
/// The Engine refuses invalid requests with JobStatus::kInvalid instead
/// of letting NDFT_REQUIRE throw mid-pipeline.
std::vector<std::string> validate(const JobRequest& request);

}  // namespace ndft::api
