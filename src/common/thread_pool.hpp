#pragma once
// Process-wide worker pool and the `parallel_for` primitive used by the
// high-performance numerical kernels (FFT line batches, GEMM row blocks,
// Hamiltonian assembly).
//
// Design constraints, in order:
//  1. Determinism: parallel_for only ever partitions an index range into
//     disjoint chunks; callers guarantee chunk bodies write disjoint
//     outputs, so results are bitwise identical for any thread count.
//  2. Small problems stay serial: ranges at or below the caller-supplied
//     grain run inline on the calling thread with zero synchronisation.
//  3. Nesting is safe: a parallel_for issued from inside a worker (or from
//     inside another parallel_for body on the caller thread) runs inline
//     rather than deadlocking or oversubscribing.
//
// The pool size defaults to the hardware concurrency and can be overridden
// with the NDFT_NUM_THREADS environment variable (checked once, at first
// use) or programmatically with resize() (tests and benchmarks).

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>

namespace ndft {

class ThreadPool {
 public:
  /// The process-wide pool, created on first use.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in a parallel_for (workers + caller).
  std::size_t threads() const noexcept;

  /// Rebuilds the pool with `threads` total threads (>= 1). Must not be
  /// called while a parallel_for is in flight; intended for tests and
  /// benchmarks that pin the thread count.
  void resize(std::size_t threads);

  /// Runs `body(chunk_begin, chunk_end)` over disjoint chunks covering
  /// [begin, end). Serial (inline, no synchronisation) when the range has
  /// at most `grain` iterations, the pool has one thread, or the call is
  /// nested inside another parallel region. Chunk boundaries depend only
  /// on (range, grain, thread count), never on scheduling, so any body
  /// with disjoint writes is deterministic. The first exception thrown by
  /// a chunk is rethrown on the calling thread after all chunks finish.
  /// Thread-safe: concurrent top-level calls from different threads
  /// serialize, each running its job to completion with the full pool.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  explicit ThreadPool(std::size_t threads);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper over ThreadPool::instance().parallel_for.
inline void parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::instance().parallel_for(begin, end, grain, body);
}

/// Ceiling on the pool width an NDFT_NUM_THREADS override may request;
/// absurd values clamp here instead of spawning thousands of threads.
inline constexpr std::size_t kMaxPoolThreads = 512;

/// Parses an NDFT_NUM_THREADS-style override. Returns the thread count
/// for a well-formed positive integer (clamped to kMaxPoolThreads, with
/// `clamped` set when that happened), and 0 for anything else — null,
/// empty, non-numeric, trailing garbage ("8x"), or values below 1 — so
/// the caller can fall back to the hardware concurrency. Exposed
/// separately from the pool so the parsing rules are testable.
std::size_t thread_count_from_env(const char* value,
                                  bool* clamped = nullptr) noexcept;

/// The one place the serial/parallel cutoff policy lives: a grain that
/// keeps roughly 64k work units per chunk given the work per index
/// (elements of an FFT line, entries of a matrix row, ...). Ranges whose
/// total work falls below that stay serial in parallel_for.
inline std::size_t parallel_grain(std::size_t work_per_index) {
  return std::max<std::size_t>(
      1, (std::size_t{1} << 16) / std::max<std::size_t>(1, work_per_index));
}

}  // namespace ndft
