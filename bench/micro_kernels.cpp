// google-benchmark microbenchmarks of the from-scratch numerical kernels
// (FFT, GEMM, SYEVD, face-splitting product, pseudopotential apply).
// These measure the functional library itself, not the simulated machines.
//
// Besides the console table, the run writes BENCH_micro.json (kernel name,
// size, ns/op, GFLOP/s where defined) so the perf trajectory of the kernel
// layer can be tracked across commits. The blocked/planned kernels are
// benchmarked side by side with their naive references (gemm_naive here;
// the pre-plan FFT exists only in history).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/run_metadata.hpp"
#include "dft/basis.hpp"
#include "dft/epm.hpp"
#include "dft/fft.hpp"
#include "dft/lattice.hpp"
#include "dft/linalg.hpp"
#include "dft/pseudopotential.hpp"

using namespace ndft;

namespace {

void set_gflops(benchmark::State& state, double flops_per_iteration) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_iteration * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_Fft1d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dft::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dft::Complex{std::sin(0.1 * static_cast<double>(i)), 0.0};
  }
  for (auto _ : state) {
    dft::fft(data, dft::FftDirection::kForward);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  set_gflops(state, static_cast<double>(dft::fft_flops(n)));
}
BENCHMARK(BM_Fft1d)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(12000);

// Plan amortisation: the same transform through a cached plan and a
// caller-owned workspace (the fft3d inner loop), no per-call setup at all.
void BM_FftPlanned(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const dft::FftPlan& plan = dft::fft_plan(n);
  std::vector<dft::Complex> data(n);
  std::vector<dft::Complex> work(plan.workspace_size());
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = dft::Complex{std::sin(0.1 * static_cast<double>(i)), 0.0};
  }
  for (auto _ : state) {
    plan.execute(data.data(), work.data(), dft::FftDirection::kForward);
    benchmark::DoNotOptimize(data.data());
  }
  set_gflops(state, static_cast<double>(dft::fft_flops(n)));
}
BENCHMARK(BM_FftPlanned)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)->Arg(12000);

void BM_Fft3d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dft::Grid3 grid(n, n, n);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = dft::Complex{static_cast<double>(i % 7), 0.0};
  }
  for (auto _ : state) {
    dft::fft3d(grid, dft::FftDirection::kForward);
    benchmark::DoNotOptimize(grid.raw().data());
  }
  set_gflops(state, static_cast<double>(dft::fft_flops(grid.size())));
}
BENCHMARK(BM_Fft3d)->Arg(16)->Arg(24)->Arg(32)->Arg(48)->Arg(96);

template <typename GemmFn>
void gemm_benchmark(benchmark::State& state, GemmFn&& fn) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dft::RealMatrix a(n, n);
  dft::RealMatrix b(n, n);
  dft::RealMatrix c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = static_cast<double>((i + j) % 13) * 0.1;
      b(i, j) = static_cast<double>((i * 3 + j) % 7) * 0.2;
    }
  }
  for (auto _ : state) {
    fn(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                        static_cast<double>(n));
}

void BM_GemmReal(benchmark::State& state) {
  gemm_benchmark(state, [](const dft::RealMatrix& a, const dft::RealMatrix& b,
                           dft::RealMatrix& c) { dft::gemm(a, b, c); });
}
BENCHMARK(BM_GemmReal)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmNaive(benchmark::State& state) {
  gemm_benchmark(state,
                 [](const dft::RealMatrix& a, const dft::RealMatrix& b,
                    dft::RealMatrix& c) { dft::gemm_naive(a, b, c); });
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmComplex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dft::ComplexMatrix a(n, n);
  dft::ComplexMatrix b(n, n);
  dft::ComplexMatrix c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = dft::Complex{static_cast<double>((i + j) % 13) * 0.1,
                             static_cast<double>(i % 3) * 0.05};
      b(i, j) = dft::Complex{static_cast<double>((i * 3 + j) % 7) * 0.2,
                             static_cast<double>(j % 5) * 0.04};
    }
  }
  for (auto _ : state) {
    dft::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, 8.0 * static_cast<double>(n) * static_cast<double>(n) *
                        static_cast<double>(n));
}
BENCHMARK(BM_GemmComplex)->Arg(64)->Arg(128)->Arg(256);

void BM_Syevd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dft::RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = std::cos(static_cast<double>(i * j + 1));
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  for (auto _ : state) {
    const dft::EigenResult r = dft::syevd(m);
    benchmark::DoNotOptimize(r.eigenvalues.data());
  }
}
BENCHMARK(BM_Syevd)->Arg(64)->Arg(128)->Arg(256);

void BM_FaceSplit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<dft::Complex> v(n);
  std::vector<dft::Complex> c(n);
  std::vector<dft::Complex> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = dft::Complex{0.3, 0.1 * static_cast<double>(i % 5)};
    c[i] = dft::Complex{0.2, -0.1};
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::conj(v[i]) * c[i];
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 48);
}
BENCHMARK(BM_FaceSplit)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_PseudoApply(benchmark::State& state) {
  const dft::Crystal crystal = dft::Crystal::silicon_supercell(8);
  const dft::PlaneWaveBasis basis(crystal, 1.5);
  const dft::KbProjectors projectors(basis);
  std::vector<dft::Complex> psi(basis.size());
  for (std::size_t i = 0; i < psi.size(); ++i) {
    psi[i] = dft::Complex{1.0 / static_cast<double>(i + 1), 0.0};
  }
  std::vector<dft::Complex> out(psi.size());
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), dft::Complex{});
    projectors.apply(psi, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PseudoApply);

/// Console output as usual, plus a flat record of every run for the JSON
/// trajectory file.
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string kernel;
    long size = 0;
    double ns_per_op = 0.0;
    double gflops = 0.0;
    bool has_gflops = false;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Entry entry;
      const std::string name = run.benchmark_name();
      const std::size_t slash = name.find('/');
      entry.kernel = name.substr(0, slash);
      if (slash != std::string::npos) {
        entry.size = std::strtol(name.c_str() + slash + 1, nullptr, 10);
      }
      // Default time unit is nanoseconds, so this is ns per iteration.
      entry.ns_per_op = run.GetAdjustedRealTime();
      const auto counter = run.counters.find("GFLOP/s");
      if (counter != run.counters.end()) {
        entry.gflops = counter->second / 1e9;
        entry.has_gflops = true;
      }
      entries.push_back(entry);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Entry> entries;
};

bool write_json(const char* path,
                const std::vector<JsonCollectingReporter::Entry>& entries) {
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) return false;
  ndft::Json bench = ndft::Json::object();
  bench.set("bench", "micro_kernels");
  bench.set("meta", ndft::run_metadata_json());
  ndft::Json list = ndft::Json::array();
  for (const auto& e : entries) {
    ndft::Json entry = ndft::Json::object();
    entry.set("kernel", e.kernel);
    entry.set("size", e.size);
    entry.set("ns_per_op", e.ns_per_op);
    if (e.has_gflops) {
      entry.set("gflops", e.gflops);
    }
    list.push_back(std::move(entry));
  }
  bench.set("kernels", std::move(list));
  const std::string text = bench.dump(2);
  std::fwrite(text.data(), 1, text.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const char* path = "BENCH_micro.json";
  if (write_json(path, reporter.entries)) {
    std::printf("wrote %zu kernel records to %s\n", reporter.entries.size(),
                path);
  } else {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  return 0;
}
