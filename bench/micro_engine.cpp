// bench_micro_engine: overhead guard for the robustness machinery on the
// Engine hot path. Every job now passes through cancel scopes, fault
// checkpoints and the retry loop; with no fault spec installed each
// checkpoint must collapse to a branch-on-disabled-flag, so the
// disabled-faults path must stay within noise of a zero-probability
// armed spec (which pays the full PRNG roll at every site).
//
// Results go to BENCH_engine.json for cross-commit tracking.
//
// Modes:
//   bench_micro_engine           400 jobs per configuration
//   bench_micro_engine --smoke   100 jobs, exits nonzero when the
//                                disabled path is slower than the armed
//                                path beyond noise (ratio > 1.5; the
//                                verify.sh --bench-smoke gate)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "common/run_metadata.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"

using namespace ndft;

namespace {

using Clock = std::chrono::steady_clock;

struct Timing {
  double median_us = 0.0;
  double p90_us = 0.0;
};

/// Median / p90 wall time per run() of a near-free PlanJob: the job's own
/// work is tiny, so the engine wrapper (validation, scopes, checkpoints,
/// retry bookkeeping, result stamping) dominates what is measured.
Timing measure(const std::string& fault_spec, std::size_t iterations) {
  api::EngineConfig config;
  config.dispatch_threads = 0;
  config.fault_spec = fault_spec;
  api::Engine engine(config);
  const api::PlanJob job;
  for (std::size_t i = 0; i < iterations / 10 + 1; ++i) {
    (void)engine.run(job);  // warm caches and the pool
  }
  std::vector<double> samples;
  samples.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) {
    const Clock::time_point start = Clock::now();
    const api::JobResult result = engine.run(job);
    const Clock::time_point stop = Clock::now();
    if (!result.ok()) {
      throw NdftError(strformat("plan job failed: %s",
                                result.error_message.c_str()));
    }
    samples.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  Timing timing;
  timing.median_us = samples[samples.size() / 2];
  timing.p90_us = samples[samples.size() * 9 / 10];
  return timing;
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t iterations = smoke ? 100 : 400;
  std::printf("engine wrapper overhead, %zu jobs per configuration%s\n\n",
              iterations, smoke ? " (smoke)" : "");

  // Alternating A/B, best-of-two medians per configuration: a 1-us job
  // wrapper is at the mercy of scheduler noise, and the minimum median is
  // the stable estimator of the true cost floor.
  Timing disabled = measure("", iterations);
  Timing armed = measure("*=0.0", iterations);
  for (const Timing& t : {measure("", iterations), measure("", iterations)}) {
    if (t.median_us < disabled.median_us) disabled = t;
  }
  for (const Timing& t :
       {measure("*=0.0", iterations), measure("*=0.0", iterations)}) {
    if (t.median_us < armed.median_us) armed = t;
  }
  const double ratio =
      armed.median_us > 0.0 ? disabled.median_us / armed.median_us : 1.0;

  TextTable table({"configuration", "median", "p90"});
  table.add_row({"faults disabled", strformat("%.1f us", disabled.median_us),
                 strformat("%.1f us", disabled.p90_us)});
  table.add_row({"armed, p=0", strformat("%.1f us", armed.median_us),
                 strformat("%.1f us", armed.p90_us)});
  std::printf("%s\ndisabled/armed median ratio: %.3f\n",
              table.render().c_str(), ratio);

  Json bench = Json::object();
  bench.set("bench", "micro_engine");
  bench.set("meta", run_metadata_json());
  bench.set("iterations", iterations);
  bench.set("disabled_median_us", disabled.median_us);
  bench.set("disabled_p90_us", disabled.p90_us);
  bench.set("armed_median_us", armed.median_us);
  bench.set("armed_p90_us", armed.p90_us);
  bench.set("disabled_over_armed", ratio);
  const char* path = "BENCH_engine.json";
  if (std::FILE* file = std::fopen(path, "w")) {
    const std::string text = bench.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }

  if (smoke && ratio > 1.5) {
    // The disabled path must not cost more than the armed path plus
    // noise: a regression here means a checkpoint stopped being a
    // branch-on-disabled-flag.
    std::fprintf(stderr,
                 "FAIL: disabled-faults path %.2fx the armed path\n", ratio);
    return 1;
  }
  return 0;
} catch (const NdftError& error) {
  std::fprintf(stderr, "micro_engine: %s\n", error.what());
  return 1;
}
