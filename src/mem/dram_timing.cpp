#include "mem/dram_timing.hpp"

#include "common/units.hpp"

namespace ndft::mem {

DramTiming DramTiming::ddr4_2400() {
  DramTiming t{};
  t.tCK_ps = 833;  // 1200 MHz clock, 2400 MT/s
  t.CL = 17;
  t.CWL = 12;
  t.tRCD = 17;
  t.tRP = 17;
  t.tRAS = 39;
  t.tRC = 56;
  t.tCCD = 6;   // tCCD_L dominant for same-bank-group streams
  t.tRRD = 6;
  t.tFAW = 26;
  t.tWR = 18;
  t.tWTR = 9;
  t.tRTP = 9;
  t.tREFI = 9363;  // 7.8 us
  t.tRFC = 420;    // 350 ns for 8 Gb devices
  t.burst_length = 8;
  t.bus_width_bits = 64;
  return t;
}

DramTiming DramTiming::hbm2_1000() {
  DramTiming t{};
  t.tCK_ps = 1000;  // 1000 MHz clock, 2 Gb/s/pin
  t.CL = 14;
  t.CWL = 4;
  t.tRCD = 14;
  t.tRP = 14;
  t.tRAS = 33;
  t.tRC = 47;
  t.tCCD = 2;
  t.tRRD = 4;
  t.tFAW = 16;
  t.tWR = 16;
  t.tWTR = 8;
  t.tRTP = 5;
  t.tREFI = 3900;  // 3.9 us
  t.tRFC = 260;
  t.burst_length = 4;
  t.bus_width_bits = 128;
  return t;
}

DramGeometry DramGeometry::ddr4_16gb_channel() {
  DramGeometry g{};
  // 16 banks x 2 ranks, folded into one bank dimension: rank-level
  // parallelism matters for concurrent streams and the per-bank state
  // machine treats ranks identically at this modelling level.
  g.banks = 32;
  g.row_bytes = 8_KiB;
  g.rows = static_cast<unsigned>(16_GiB / (g.banks * g.row_bytes));
  return g;
}

DramGeometry DramGeometry::hbm2_512mb_channel() {
  DramGeometry g{};
  // 4 bank groups x 4 banks x 2 pseudo-channel halves.
  g.banks = 32;
  g.row_bytes = 2_KiB;
  g.rows = static_cast<unsigned>(512_MiB / (g.banks * g.row_bytes));
  return g;
}

}  // namespace ndft::mem
