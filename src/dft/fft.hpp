#pragma once
// From-scratch complex FFT: iterative radix-2, recursive mixed-radix for
// 2^a*3^b*5^c sizes, and Bluestein's algorithm for arbitrary lengths, plus
// the 3D transforms used on plane-wave grids. Forward transforms are
// unnormalised; the inverse divides by N so ifft(fft(x)) == x.

#include <cstddef>
#include <vector>

#include "dft/linalg.hpp"
#include "dft/matrix.hpp"

namespace ndft::dft {

/// Transform direction.
enum class FftDirection { kForward, kInverse };

/// In-place 1D FFT of arbitrary length (Bluestein handles prime sizes).
void fft(std::vector<Complex>& data, FftDirection direction);

/// True if n factors completely into 2, 3 and 5 (fast path, no Bluestein).
bool is_friendly_size(std::size_t n);

/// Smallest size >= n that factors into 2, 3 and 5; used when choosing
/// plane-wave FFT grid dimensions.
std::size_t friendly_size(std::size_t n);

/// A dense complex scalar field on an nx x ny x nz grid.
/// Storage order: x fastest, then y, then z.
class Grid3 {
 public:
  Grid3() = default;
  Grid3(std::size_t nx, std::size_t ny, std::size_t nz)
      : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz) {}

  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }
  std::size_t nz() const noexcept { return nz_; }
  std::size_t size() const noexcept { return data_.size(); }

  Complex& at(std::size_t ix, std::size_t iy, std::size_t iz) {
    NDFT_ASSERT(ix < nx_ && iy < ny_ && iz < nz_);
    return data_[(iz * ny_ + iy) * nx_ + ix];
  }
  const Complex& at(std::size_t ix, std::size_t iy, std::size_t iz) const {
    NDFT_ASSERT(ix < nx_ && iy < ny_ && iz < nz_);
    return data_[(iz * ny_ + iy) * nx_ + ix];
  }

  Complex& operator[](std::size_t i) { return data_[i]; }
  const Complex& operator[](std::size_t i) const { return data_[i]; }

  std::vector<Complex>& raw() noexcept { return data_; }
  const std::vector<Complex>& raw() const noexcept { return data_; }

 private:
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::size_t nz_ = 0;
  std::vector<Complex> data_;
};

/// In-place 3D FFT (one 1D pass per dimension). `count`, when non-null,
/// accumulates the analytic flop/byte cost of the transform.
void fft3d(Grid3& grid, FftDirection direction, OpCount* count = nullptr);

/// Analytic flop cost of a complex FFT of length n (~5 n log2 n).
Flops fft_flops(std::size_t n);

}  // namespace ndft::dft
