#pragma once
// The port/connection fabric of the timing simulator.
//
// Hardware components exchange typed messages through bounded, credit-based
// connections instead of capturing each other in free-form EventFn closures.
// A Connection<Msg> binds one sender to one receiver:
//
//   sender ──OutputPort──▶ [ wire: latency + serialization ] ──InputPort──▶
//           (credits)                                          (bounded queue)
//
// Flow control is credit-based: the connection carries at most `capacity`
// messages that have been sent but not yet popped by the receiver. send()
// consumes a credit; pop() (or return_credit(), in manual-credit mode)
// returns it and synchronously wakes the sender's on_credit callback, so a
// stalled producer resumes at the exact timestamp the buffer slot frees.
// A producer that must never drop messages stages them in a CreditedSender,
// which accounts the stall time — this is how back-pressure propagates
// upstream instead of queues growing without bound.
//
// Wire timing (all integer picoseconds, deterministic):
//   start   = max(now, free_at)          — the wire is busy until free_at
//   free_at = start + serialization      — transfer_time_ps(bytes, gbps)
//   arrival = start + latency_ps                    (kCutThrough — a
//             wormhole head: serialization overlaps downstream hops)
//   arrival = start + serialization + latency_ps    (kStoreForward)
// A connection with latency_ps == 0 and gbps == 0 delivers inline (no
// event), preserving the call ordering of a synchronous function call —
// used where the fabric bounds a queue without inserting wire time.
//
// Determinism: a connection schedules events only when traffic flows, never
// at construction, so simulation results are bitwise identical regardless
// of the order components are built in (pinned by fabric_test).
//
// Fault injection: the `sim.port` site (NDFT_FAULTS) models a message
// dropped on the wire and recovered by retransmission — delivery of the
// affected message is delayed by port_fault_delay_ps() and counted under
// the "fault_delays" statistic. Inline connections fall back to an event
// for the delayed delivery. The draw is per-message and deterministic.

#include <deque>
#include <functional>
#include <utility>

#include "common/error.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"

namespace ndft::sim {

/// Retransmission penalty applied when the `sim.port` fault site fires for
/// a message on a connection with the given wire latency (port.cpp).
TimePs port_fault_delay_ps(TimePs latency_ps) noexcept;

/// True when the `sim.port` fault site fires for the next message
/// (one deterministic draw; a plain wrapper so the template stays slim).
bool port_fault_fires() noexcept;

/// When the receiver observes a message relative to its wire occupancy.
enum class Delivery {
  kCutThrough,    ///< arrival = start + latency (wormhole head)
  kStoreForward,  ///< arrival = start + serialization + latency
};

/// Static parameters of one connection.
struct LinkConfig {
  TimePs latency_ps = 0;    ///< propagation/pipeline latency
  double gbps = 0.0;        ///< serialization bandwidth; 0 = untimed wire
  std::size_t capacity = 4; ///< receiver buffer depth (credits)
  Delivery delivery = Delivery::kCutThrough;
  /// Credits return on pop() (default) or only on an explicit
  /// return_credit() — for receivers whose internal pipeline is the
  /// resource being bounded (e.g. a DRAM controller's request queue).
  bool manual_credit = false;
};

/// A bounded, credit-flow-controlled, typed message channel.
template <typename Msg>
class Connection {
 public:
  /// `stats` receives this connection's counters ("contention_ps",
  /// "fault_delays", "queue_peak"); several connections may share one
  /// StatSet (e.g. all links of a mesh aggregate into the mesh's).
  Connection(EventQueue& queue, const LinkConfig& config, StatSet* stats)
      : queue_(&queue), config_(config), stats_(stats) {
    NDFT_REQUIRE(config.capacity > 0,
                 "connection capacity must be at least one message");
    credits_ = config.capacity;
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // ---- sender side (OutputPort view).

  /// True when a credit is available: send() may be called.
  bool can_send() const noexcept { return credits_ > 0; }

  /// Earliest time the wire is idle (reservation horizon).
  TimePs wire_free_at() const noexcept { return free_at_; }

  /// Sends one message occupying `wire_bytes` on the wire. Requires
  /// can_send(). Returns the arrival time at the receiver.
  TimePs send(Msg msg, Bytes wire_bytes) {
    NDFT_REQUIRE(credits_ > 0, "send() without a credit (use CreditedSender)");
    --credits_;
    const TimePs now = queue_->now();
    const TimePs serialization =
        config_.gbps > 0.0 ? transfer_time_ps(wire_bytes, config_.gbps) : 0;
    const TimePs start = std::max(now, free_at_);
    if (start > now && stats_ != nullptr) {
      stats_->add("contention_ps", static_cast<double>(start - now));
    }
    free_at_ = start + serialization;
    TimePs arrival = config_.delivery == Delivery::kCutThrough
                         ? start + config_.latency_ps
                         : start + serialization + config_.latency_ps;
    bool faulted = false;
    if (port_fault_fires()) {
      arrival += port_fault_delay_ps(config_.latency_ps);
      faulted = true;
      if (stats_ != nullptr) stats_->add("fault_delays");
    }
    if (arrival == now && !faulted && config_.latency_ps == 0 &&
        config_.gbps == 0.0) {
      // Untimed wire: deliver inline, preserving synchronous call order.
      deliver(std::move(msg));
      return arrival;
    }
    queue_->schedule_at(arrival, [this, m = std::move(msg)]() mutable {
      deliver(std::move(m));
    });
    return arrival;
  }

  /// Callback invoked (synchronously, inside pop()/return_credit()) when a
  /// credit returns. At most one; typically the owning component's pump.
  void on_credit(std::function<void()> fn) { on_credit_ = std::move(fn); }

  // ---- receiver side (InputPort view).

  /// Callback invoked when a message lands in the queue.
  void on_receive(std::function<void()> fn) { on_receive_ = std::move(fn); }

  bool empty() const noexcept { return queue_msgs_.empty(); }
  std::size_t queued() const noexcept { return queue_msgs_.size(); }
  const Msg& front() const { return queue_msgs_.front(); }
  Msg& front() { return queue_msgs_.front(); }

  /// Removes the head message. Returns the credit to the sender unless the
  /// connection is manual-credit.
  Msg pop() {
    NDFT_REQUIRE(!queue_msgs_.empty(), "pop() on an empty connection");
    Msg msg = std::move(queue_msgs_.front());
    queue_msgs_.pop_front();
    if (!config_.manual_credit) {
      give_credit();
    }
    return msg;
  }

  /// Returns one credit explicitly (manual-credit connections).
  void return_credit() {
    NDFT_REQUIRE(config_.manual_credit,
                 "return_credit() on an auto-credit connection");
    give_credit();
  }

  const LinkConfig& config() const noexcept { return config_; }
  std::size_t credits() const noexcept { return credits_; }

 private:
  void deliver(Msg msg) {
    queue_msgs_.push_back(std::move(msg));
    if (stats_ != nullptr &&
        static_cast<double>(queue_msgs_.size()) > stats_->get("queue_peak")) {
      stats_->set("queue_peak", static_cast<double>(queue_msgs_.size()));
    }
    if (on_receive_) on_receive_();
  }

  void give_credit() {
    NDFT_ASSERT(credits_ < config_.capacity);
    ++credits_;
    if (on_credit_) on_credit_();
  }

  EventQueue* queue_;
  LinkConfig config_;
  StatSet* stats_;
  std::size_t credits_ = 0;
  TimePs free_at_ = 0;
  std::deque<Msg> queue_msgs_;
  std::function<void()> on_receive_;
  std::function<void()> on_credit_;
};

/// The sender's named handle on a connection. Components own OutputPorts;
/// the wiring layer binds them (no hidden coupling to the peer component).
template <typename Msg>
class OutputPort {
 public:
  OutputPort() = default;
  explicit OutputPort(Connection<Msg>& connection)
      : connection_(&connection) {}
  void bind(Connection<Msg>& connection) { connection_ = &connection; }
  bool bound() const noexcept { return connection_ != nullptr; }
  bool can_send() const { return connection_->can_send(); }
  TimePs wire_free_at() const { return connection_->wire_free_at(); }
  TimePs send(Msg msg, Bytes wire_bytes) {
    return connection_->send(std::move(msg), wire_bytes);
  }
  void on_credit(std::function<void()> fn) {
    connection_->on_credit(std::move(fn));
  }
  Connection<Msg>& connection() { return *connection_; }

 private:
  Connection<Msg>* connection_ = nullptr;
};

/// The receiver's named handle on a connection.
template <typename Msg>
class InputPort {
 public:
  InputPort() = default;
  explicit InputPort(Connection<Msg>& connection)
      : connection_(&connection) {}
  void bind(Connection<Msg>& connection) { connection_ = &connection; }
  bool bound() const noexcept { return connection_ != nullptr; }
  void on_receive(std::function<void()> fn) {
    connection_->on_receive(std::move(fn));
  }
  bool empty() const { return connection_->empty(); }
  std::size_t queued() const { return connection_->queued(); }
  Msg& front() { return connection_->front(); }
  Msg pop() { return connection_->pop(); }
  void return_credit() { connection_->return_credit(); }

 private:
  Connection<Msg>* connection_ = nullptr;
};

/// Unbounded staging FIFO in front of an OutputPort for producers that are
/// structurally fire-and-forget (their offered load is bounded elsewhere —
/// a core's MLP window, one alltoall burst). When the connection is out of
/// credits the message waits here and the wait is accounted as
/// "backpressure_stall_ps" / "backpressure_stalls"; "staged_peak" records
/// the high-water mark so tests can pin that network buffers stay bounded
/// while the (observable) staging absorbs the burst.
template <typename Msg>
class CreditedSender {
 public:
  CreditedSender(EventQueue& queue, OutputPort<Msg>& port, StatSet* stats)
      : queue_(&queue), port_(&port), stats_(stats) {
    port_->on_credit([this] { drain(); });
  }
  CreditedSender(const CreditedSender&) = delete;
  CreditedSender& operator=(const CreditedSender&) = delete;

  /// Sends now when a credit is available (and nothing is already staged,
  /// preserving FIFO), otherwise stages the message.
  void push(Msg msg, Bytes wire_bytes) {
    if (staged_.empty() && port_->can_send()) {
      port_->send(std::move(msg), wire_bytes);
      return;
    }
    staged_.push_back(Staged{std::move(msg), wire_bytes, queue_->now()});
    if (stats_ != nullptr) {
      stats_->add("backpressure_stalls");
      if (static_cast<double>(staged_.size()) > stats_->get("staged_peak")) {
        stats_->set("staged_peak", static_cast<double>(staged_.size()));
      }
    }
  }

  std::size_t staged() const noexcept { return staged_.size(); }

 private:
  struct Staged {
    Msg msg;
    Bytes wire_bytes;
    TimePs since;
  };

  void drain() {
    while (!staged_.empty() && port_->can_send()) {
      Staged entry = std::move(staged_.front());
      staged_.pop_front();
      if (stats_ != nullptr) {
        stats_->add("backpressure_stall_ps",
                    static_cast<double>(queue_->now() - entry.since));
      }
      port_->send(std::move(entry.msg), entry.wire_bytes);
    }
  }

  EventQueue* queue_;
  OutputPort<Msg>* port_;
  StatSet* stats_;
  std::deque<Staged> staged_;
};

}  // namespace ndft::sim
