#pragma once
// A multicore CPU complex: N cores, private L1+L2 per core, a shared L3,
// and a memory port behind the L3 (either an owned DRAM system for the
// standalone Xeon baseline, or the HBM memory network of the CPU-NDP
// machine). Kernels run as one trace per core with barrier completion,
// matching the OpenMP-style parallel regions of LR-TDDFT.

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cpu/core.hpp"
#include "mem/dram_system.hpp"

namespace ndft::cpu {

/// Configuration of a CPU complex.
struct CpuComplexConfig {
  unsigned cores = 8;
  CoreConfig core = CoreConfig::host_core();
  cache::CacheConfig l1 = cache::CacheConfig::l1(3000);
  cache::CacheConfig l2 = cache::CacheConfig::l2(3000);
  cache::CacheConfig l3 = cache::CacheConfig::l3(3000);

  /// Aggregate peak FP throughput in GFLOP/s.
  double peak_gflops() const noexcept {
    return core.peak_gflops() * cores;
  }

  /// Table III host CPU: 8 cores, 3 GHz, 32K/256K/2M hierarchy.
  static CpuComplexConfig table3_host();
  /// Section V CPU baseline: 2x Xeon E5-2695 (24 cores total, 2.4 GHz).
  static CpuComplexConfig xeon_baseline();
};

/// The CPU complex. Construct with the memory port that sits behind the L3.
class CpuComplex {
 public:
  CpuComplex(const std::string& name, sim::EventQueue& queue,
             const CpuComplexConfig& config, mem::MemoryPort& memory);

  /// Runs one trace per core (traces beyond `cores` are rejected; fewer
  /// traces leave the remaining cores idle). `on_done` fires when every
  /// trace has retired. Traces must outlive the run.
  void run(const std::vector<const Trace*>& traces,
           std::function<void()> on_done);

  /// Invalidates all cache levels, writing dirty lines back.
  void flush_caches();

  /// Drops all cached lines without writebacks (between sampled windows).
  void invalidate_caches();

  unsigned core_count() const noexcept {
    return static_cast<unsigned>(cores_.size());
  }
  Core& core(unsigned i) { return *cores_.at(i); }
  cache::Cache& l3() noexcept { return *l3_; }
  const CpuComplexConfig& config() const noexcept { return config_; }

  /// Aggregates cache statistics under `prefix`.
  void collect_stats(const std::string& prefix, sim::StatSet& out) const;

 private:
  CpuComplexConfig config_;
  std::unique_ptr<cache::Cache> l3_;
  std::vector<std::unique_ptr<cache::PrivateHierarchy>> private_;
  std::vector<std::unique_ptr<Core>> cores_;
  unsigned running_ = 0;
  std::function<void()> on_done_;
};

}  // namespace ndft::cpu
