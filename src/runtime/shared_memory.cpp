#include "runtime/shared_memory.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace ndft::runtime {

SharedMemoryManager::SharedMemoryManager(std::string name,
                                         sim::EventQueue& queue,
                                         ndp::NdpSystem& ndp,
                                         const SharedMemoryConfig& config)
    : SimObject(std::move(name), queue), ndp_(&ndp), config_(config) {
  arbiter_free_.assign(ndp.stack_count(), 0);
  staged_.resize(ndp.stack_count());
  staged_bytes_.assign(ndp.stack_count(), 0);
}

SharedBlock SharedMemoryManager::alloc_shared(Bytes size,
                                              unsigned owner_unit) {
  NDFT_REQUIRE(size > 0, "cannot allocate an empty shared block");
  const unsigned units_per_stack = ndp_->config().stack.units;
  const unsigned stack = owner_unit / units_per_stack;
  NDFT_REQUIRE(stack < ndp_->stack_count(), "owner unit out of range");

  BlockState state;
  state.block.id = next_id_++;
  state.block.owner_stack = stack;
  state.block.size = size;
  state.spm_offset = ndp_->stack(stack).spm().alloc(size);
  state.block.in_spm = state.spm_offset.has_value();
  stats().add(state.block.in_spm ? "alloc_spm" : "alloc_dram");
  const SharedBlock handle = state.block;
  blocks_.emplace(handle.id, std::move(state));
  return handle;
}

void SharedMemoryManager::free_shared(const SharedBlock& block) {
  const auto it = blocks_.find(block.id);
  NDFT_REQUIRE(it != blocks_.end(), "unknown shared block");
  if (it->second.spm_offset.has_value()) {
    ndp_->stack(it->second.block.owner_stack)
        .spm()
        .free(*it->second.spm_offset);
  }
  for (auto& set : staged_) {
    set.erase(block.id);
  }
  blocks_.erase(it);
}

TimePs SharedMemoryManager::stack_dram_time(Bytes length) const {
  return config_.stack_dram_latency_ps +
         transfer_time_ps(std::max<Bytes>(length, 1),
                          config_.stack_dram_gbps);
}

TimePs SharedMemoryManager::arbiter_admit(unsigned stack, TimePs earliest) {
  TimePs& free_at = arbiter_free_.at(stack);
  const TimePs start = std::max(earliest, free_at);
  free_at = start + config_.arbiter_service_ps;
  return free_at;
}

void SharedMemoryManager::serve_at_owner(const BlockState& state,
                                         Bytes length, bool is_write,
                                         TimePs start, ShmCallback done) {
  const unsigned stack = state.block.owner_stack;
  if (state.spm_offset.has_value()) {
    // SPM access; the Spm model tracks its own port contention, so only
    // the extra start delay is layered on top.
    const TimePs delay = start > now() ? start - now() : 0;
    queue().schedule_after(delay, [this, stack, length, is_write,
                                   done = std::move(done)]() mutable {
      auto& spm = ndp_->stack(stack).spm();
      if (is_write) {
        spm.write(length, std::move(done));
      } else {
        spm.read(length, std::move(done));
      }
    });
    return;
  }
  const TimePs end = std::max(start, now()) + stack_dram_time(length);
  if (done) {
    queue().schedule_at(end, [done = std::move(done), end] { done(end); });
  }
}

void SharedMemoryManager::read(const SharedBlock& block, Bytes length,
                               ShmCallback done) {
  const auto it = blocks_.find(block.id);
  NDFT_REQUIRE(it != blocks_.end(), "unknown shared block");
  intra_bytes_ += length;
  stats().add("reads");
  serve_at_owner(it->second, length, /*is_write=*/false, now(),
                 std::move(done));
}

void SharedMemoryManager::write(const SharedBlock& block, Bytes length,
                                ShmCallback done) {
  const auto it = blocks_.find(block.id);
  NDFT_REQUIRE(it != blocks_.end(), "unknown shared block");
  intra_bytes_ += length;
  stats().add("writes");
  serve_at_owner(it->second, length, /*is_write=*/true, now(),
                 std::move(done));
}

void SharedMemoryManager::read_remote(const SharedBlock& block, Bytes length,
                                      unsigned requester_stack,
                                      ShmCallback done) {
  const auto it = blocks_.find(block.id);
  NDFT_REQUIRE(it != blocks_.end(), "unknown shared block");
  NDFT_REQUIRE(requester_stack < ndp_->stack_count(),
               "requester stack out of range");
  const BlockState& state = it->second;
  stats().add("remote_reads");

  if (state.block.owner_stack == requester_stack) {
    read(block, length, std::move(done));
    return;
  }

  if (config_.hierarchical) {
    // Local arbiter admission; the staging area acts as the filter.
    const TimePs admitted = arbiter_admit(requester_stack, now());
    auto& staged = staged_[requester_stack];
    if (staged.count(block.id) != 0) {
      ++staging_hits_;
      intra_bytes_ += length;
      const TimePs delay = admitted > now() ? admitted - now() : 0;
      queue().schedule_after(
          delay, [this, requester_stack, length,
                  done = std::move(done)]() mutable {
            ndp_->stack(requester_stack).spm().read(length, std::move(done));
          });
      return;
    }
    // Coalesce with an in-flight fetch of the same block by this stack.
    const std::uint64_t pending_key =
        (static_cast<std::uint64_t>(requester_stack) << 32) | block.id;
    if (auto pending_it = pending_.find(pending_key);
        pending_it != pending_.end()) {
      ++staging_hits_;
      intra_bytes_ += length;
      pending_it->second.push_back(std::move(done));
      return;
    }
    pending_[pending_key] = {};
    ++staging_misses_;
    inter_bytes_ += length + 2 * config_.request_bytes;

    // Request to the owner's arbiter, bulk read there, data back, stage
    // into the local SPM, then serve the requester.
    const unsigned owner = state.block.owner_stack;
    const unsigned block_id = block.id;
    const TimePs delay = admitted > now() ? admitted - now() : 0;
    queue().schedule_after(delay, [this, owner, requester_stack, length,
                                   block_id,
                                   done = std::move(done)]() mutable {
      ndp_->mesh().send(requester_stack, owner, config_.request_bytes,
                        [this, owner, requester_stack, length, block_id,
                         done = std::move(done)](TimePs) mutable {
        const auto state_it = blocks_.find(block_id);
        if (state_it == blocks_.end()) {
          if (done) done(now());
          return;
        }
        const TimePs served = arbiter_admit(owner, now());
        serve_at_owner(state_it->second, length, /*is_write=*/false, served,
                       [this, owner, requester_stack, length, block_id,
                        done = std::move(done)](TimePs) mutable {
          ndp_->mesh().send(owner, requester_stack,
                            length + config_.request_bytes,
                            [this, requester_stack, length, block_id,
                             done = std::move(done)](TimePs) mutable {
            // Stage locally (evict arbitrarily when over capacity).
            auto& spm = ndp_->stack(requester_stack).spm();
            auto& staged_set = staged_[requester_stack];
            auto& occupancy = staged_bytes_[requester_stack];
            if (occupancy + length > spm.capacity() &&
                !staged_set.empty()) {
              staged_set.clear();
              occupancy = 0;
              stats().add("staging_evictions");
            }
            staged_set.insert(block_id);
            occupancy += length;
            // Release the requester and any coalesced waiters.
            const std::uint64_t key =
                (static_cast<std::uint64_t>(requester_stack) << 32) |
                block_id;
            auto waiters = std::move(pending_[key]);
            pending_.erase(key);
            spm.write(length, std::move(done));
            for (auto& waiter : waiters) {
              spm.read(length, std::move(waiter));
            }
          });
        });
      });
    });
    return;
  }

  // Flat mode: direct mesh round trip for every request, no filtering.
  inter_bytes_ += length + 2 * config_.request_bytes;
  const unsigned owner = state.block.owner_stack;
  const unsigned block_id = block.id;
  ndp_->mesh().send(requester_stack, owner, config_.request_bytes,
                    [this, owner, requester_stack, length, block_id,
                     done = std::move(done)](TimePs) mutable {
    const auto state_it = blocks_.find(block_id);
    if (state_it == blocks_.end()) {
      if (done) done(now());
      return;
    }
    serve_at_owner(state_it->second, length, /*is_write=*/false, now(),
                   [this, owner, requester_stack, length,
                    done = std::move(done)](TimePs) mutable {
      ndp_->mesh().send(owner, requester_stack,
                        length + config_.request_bytes,
                        [done = std::move(done)](TimePs at) mutable {
                          if (done) done(at);
                        });
    });
  });
}

void SharedMemoryManager::write_remote(const SharedBlock& block,
                                       Bytes length,
                                       unsigned requester_stack,
                                       ShmCallback done) {
  const auto it = blocks_.find(block.id);
  NDFT_REQUIRE(it != blocks_.end(), "unknown shared block");
  const BlockState& state = it->second;
  stats().add("remote_writes");
  if (state.block.owner_stack == requester_stack) {
    write(block, length, std::move(done));
    return;
  }
  inter_bytes_ += length + config_.request_bytes;
  const TimePs admitted = config_.hierarchical
                              ? arbiter_admit(requester_stack, now())
                              : now();
  const unsigned owner = state.block.owner_stack;
  const unsigned block_id = block.id;
  const TimePs delay = admitted > now() ? admitted - now() : 0;
  queue().schedule_after(delay, [this, owner, requester_stack, length,
                                 block_id,
                                 done = std::move(done)]() mutable {
    ndp_->mesh().send(requester_stack, owner,
                      length + config_.request_bytes,
                      [this, owner, length, block_id,
                       done = std::move(done)](TimePs) mutable {
      const auto state_it = blocks_.find(block_id);
      if (state_it == blocks_.end()) {
        if (done) done(now());
        return;
      }
      const TimePs served = config_.hierarchical
                                ? arbiter_admit(owner, now())
                                : now();
      serve_at_owner(state_it->second, length, /*is_write=*/true, served,
                     std::move(done));
    });
  });
  // Invalidate stale staged copies everywhere.
  for (auto& set : staged_) {
    set.erase(block.id);
  }
}

void SharedMemoryManager::broadcast(const SharedBlock& block,
                                    ShmCallback done) {
  const auto it = blocks_.find(block.id);
  NDFT_REQUIRE(it != blocks_.end(), "unknown shared block");
  const BlockState& state = it->second;
  stats().add("broadcasts");
  const unsigned stacks = ndp_->stack_count();
  auto remaining = std::make_shared<unsigned>(stacks - 1);
  auto latest = std::make_shared<TimePs>(now());
  if (stacks == 1) {
    if (done) done(now());
    return;
  }
  for (unsigned s = 0; s < stacks; ++s) {
    if (s == state.block.owner_stack) {
      continue;
    }
    inter_bytes_ += state.block.size + config_.request_bytes;
    ndp_->mesh().send(
        state.block.owner_stack, s,
        state.block.size + config_.request_bytes,
        [this, s, id = block.id, size = state.block.size, remaining, latest,
         done](TimePs) mutable {
          staged_[s].insert(id);
          staged_bytes_[s] += size;
          ndp_->stack(s).spm().write(size, [remaining, latest,
                                            done](TimePs at) {
            *latest = std::max(*latest, at);
            if (--*remaining == 0 && done) {
              done(*latest);
            }
          });
        });
  }
}

}  // namespace ndft::runtime
