#pragma once
// Static code analyzer (SCA), Section IV-A2.
//
// The paper's SCA inspects each function's code to estimate execution
// time, memory access pattern and instruction dependences, then classifies
// it as compute- or memory-bound per device. Our kernels carry their
// analytic op/byte descriptors (dft::KernelWork), so the SCA's job is the
// classification and the per-device time estimate that feed the cost-aware
// offloading decision.

#include <vector>

#include "dft/workload.hpp"
#include "runtime/device_profile.hpp"

namespace ndft::runtime {

/// Boundedness verdict for one kernel on one device.
enum class Boundedness { kComputeBound, kMemoryBound };

/// SCA verdict for one kernel.
struct KernelAnalysis {
  double arithmetic_intensity = 0.0;  ///< flop per DRAM byte
  Boundedness on_cpu = Boundedness::kMemoryBound;
  Boundedness on_ndp = Boundedness::kMemoryBound;
  TimePs est_cpu_ps = 0;  ///< roofline time estimate on the CPU
  TimePs est_ndp_ps = 0;  ///< roofline time estimate on the NDP side
  DeviceKind preferred = DeviceKind::kCpu;  ///< faster device, ignoring DT
};

/// The static code analyzer.
class Sca {
 public:
  Sca(const DeviceProfile& cpu, const DeviceProfile& ndp)
      : cpu_(cpu), ndp_(ndp) {}

  /// Roofline time estimate of `work` on `device`.
  TimePs estimate(const dft::KernelWork& work,
                  const DeviceProfile& device) const;

  /// Full verdict for one kernel.
  KernelAnalysis analyze(const dft::KernelWork& work) const;

  /// Verdicts for a whole workload, in pipeline order.
  std::vector<KernelAnalysis> analyze(const dft::Workload& workload) const;

  const DeviceProfile& cpu() const noexcept { return cpu_; }
  const DeviceProfile& ndp() const noexcept { return ndp_; }

 private:
  DeviceProfile cpu_;
  DeviceProfile ndp_;
};

}  // namespace ndft::runtime
