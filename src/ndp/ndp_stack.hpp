#pragma once
// One 3D-stacked memory stack with near-data compute in its logic layer.
//
// Table III: 8 NDP units per stack, 2 in-order 2 GHz cores per unit with
// 32 KiB L1, 8 HBM2 channels (4 GiB), and a 256 KiB scratchpad. NDP cores
// reach their local DRAM through a TSV hop (~2 ns) instead of the CPU's
// off-chip SerDes path — that asymmetry is the entire point of NDP.

#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cpu/core.hpp"
#include "mem/dram_system.hpp"
#include "ndp/spm.hpp"

namespace ndft::ndp {

/// Configuration of one stack.
struct NdpStackConfig {
  unsigned units = 8;
  unsigned cores_per_unit = 2;
  cpu::CoreConfig core = cpu::CoreConfig::ndp_core();
  cache::CacheConfig l1;
  mem::DramConfig dram = mem::DramConfig::hbm2_stack();
  SpmConfig spm = SpmConfig::table3();

  unsigned total_cores() const noexcept { return units * cores_per_unit; }

  /// Table III stack configuration.
  static NdpStackConfig table3();
};

/// One HBM stack: local DRAM, SPM, and the NDP cores of its logic layer.
class NdpStack {
 public:
  NdpStack(const std::string& name, sim::EventQueue& queue,
           const NdpStackConfig& config);

  unsigned core_count() const noexcept {
    return static_cast<unsigned>(cores_.size());
  }
  cpu::Core& core(unsigned i) { return *cores_.at(i); }
  mem::DramSystem& dram() noexcept { return *dram_; }
  Spm& spm() noexcept { return *spm_; }
  const NdpStackConfig& config() const noexcept { return config_; }

  /// Invalidates all NDP L1s, writing dirty lines back.
  void flush_caches();

  /// Drops all cached lines without writebacks (between sampled windows).
  void invalidate_caches();

  /// Aggregates statistics under `prefix`.
  void collect_stats(const std::string& prefix, sim::StatSet& out) const;

 private:
  NdpStackConfig config_;
  std::unique_ptr<mem::DramSystem> dram_;
  std::unique_ptr<Spm> spm_;
  std::vector<std::unique_ptr<cache::Cache>> l1s_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;
};

}  // namespace ndft::ndp
