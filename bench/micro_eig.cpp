// Eigensolver microbenchmark: two-stage SYEVD (syevd: band reduction,
// bulge chase, divide-and-conquer) against the one-stage blocked solver
// (syevd_onestage) and the serial reference (syevd_naive), plus the
// partial-spectrum solver (syevd_partial, lowest n/8 pairs) against the
// two-stage full solve, across problem sizes and pool widths. Results go
// to BENCH_eig.json for cross-commit tracking; docs/PERF.md quotes a
// snapshot.
//
// Every configuration is warmed up once and reported as the median of
// five runs; the one-stage and two-stage timings are interleaved within
// each rep (1,2,1,2,...) so slow turbo/thermal drift cannot bias their
// ratio, which is the number the smoke gate and the PERF.md table quote.
//
// Modes:
//   bench_micro_eig            full sweep: n in {64..1024}, threads {1,2,4,8}
//   bench_micro_eig --smoke    n in {128, 256}; exits nonzero if the
//                              two-stage solver is slower than the
//                              reference at n=128, the partial solver is
//                              slower than the two-stage full solve, the
//                              two-stage solver is slower than the
//                              one-stage solver at n=256 single-thread,
//                              or the fused fft3d is slower than the
//                              unfused baseline (the verify.sh
//                              --bench-smoke gate; also wired into the
//                              ctest kernel tier)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/prng.hpp"
#include "common/run_metadata.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dft/fft.hpp"
#include "dft/linalg.hpp"

using namespace ndft;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kReps = 5;

dft::RealMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  dft::RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = prng.next_double(-1.0, 1.0);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

template <typename Fn>
double time_ms(Fn&& fn) {
  const Clock::time_point start = Clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct ThreadSample {
  std::size_t threads = 0;
  double onestage_ms = 0.0;
  double ms = 0.0;                  ///< two-stage syevd
  double speedup = 0.0;             ///< naive_ms / ms
  double speedup_vs_onestage = 0.0; ///< onestage_ms / ms
};

struct PartialSample {
  std::size_t threads = 0;
  double ms = 0.0;
  double speedup_vs_full = 0.0;  ///< two-stage full ms / partial ms
};

struct SizeSample {
  std::size_t n = 0;
  std::size_t partial_m = 0;  ///< lowest-pair window of the partial runs
  double naive_ms = 0.0;
  std::vector<ThreadSample> blocked;
  std::vector<PartialSample> partial;
  double max_eigenvalue_diff = 0.0;  ///< two-stage vs naive, sanity check
  double max_partial_diff = 0.0;     ///< partial vs naive on the window
};

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{128, 256}
            : std::vector<std::size_t>{64, 128, 256, 512, 1024};
  const std::vector<std::size_t> thread_sweep =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};

  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original_threads = pool.threads();

  std::printf(
      "SYEVD microbenchmark: two-stage vs one-stage vs serial reference%s\n\n",
      smoke ? " (smoke)" : "");

  std::vector<SizeSample> samples;
  for (const std::size_t n : sizes) {
    const dft::RealMatrix m = random_symmetric(n, 1000 + n);
    SizeSample sample;
    sample.n = n;

    // One untimed reference solve up front: the sweep diffs spectra
    // against it. The timed naive runs come after the sweep - seconds
    // of serial QL right before the single-thread comparison loop heats
    // the core and deflates sustained turbo, which biased the recorded
    // one-stage/two-stage times (though not their ratio) by ~10%.
    pool.resize(1);
    const dft::EigenResult naive = dft::syevd_naive(m);

    // The low-band window the physics consumers ask for: n/8 pairs (64
    // of 512 is the headline SCF/EPM shape), at least one.
    sample.partial_m = std::max<std::size_t>(1, n / 8);
    for (const std::size_t threads : thread_sweep) {
      pool.resize(threads);
      dft::EigenResult onestage = dft::syevd_onestage(m);  // warmup
      dft::EigenResult blocked = dft::syevd(m);            // warmup
      ThreadSample ts;
      ts.threads = threads;
      std::vector<double> t_one(kReps);
      std::vector<double> t_two(kReps);
      for (int r = 0; r < kReps; ++r) {  // interleaved: fair ratio
        t_one[r] = time_ms([&] { onestage = dft::syevd_onestage(m); });
        t_two[r] = time_ms([&] { blocked = dft::syevd(m); });
      }
      ts.onestage_ms = median(t_one);
      ts.ms = median(t_two);
      ts.speedup_vs_onestage = ts.ms > 0.0 ? ts.onestage_ms / ts.ms : 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        sample.max_eigenvalue_diff =
            std::max(sample.max_eigenvalue_diff,
                     std::fabs(blocked.eigenvalues[i] - naive.eigenvalues[i]));
      }
      sample.blocked.push_back(ts);

      dft::EigenResult partial =
          dft::syevd_partial(m, sample.partial_m);  // warmup
      PartialSample ps;
      ps.threads = threads;
      std::vector<double> t_part(kReps);
      for (int r = 0; r < kReps; ++r) {
        t_part[r] = time_ms([&] {
          partial = dft::syevd_partial(m, sample.partial_m);
        });
      }
      ps.ms = median(t_part);
      ps.speedup_vs_full = ps.ms > 0.0 ? ts.ms / ps.ms : 0.0;
      for (std::size_t i = 0; i < sample.partial_m; ++i) {
        sample.max_partial_diff =
            std::max(sample.max_partial_diff,
                     std::fabs(partial.eigenvalues[i] - naive.eigenvalues[i]));
      }
      sample.partial.push_back(ps);
    }

    // The reference path is serial; one thread keeps the pool out of it.
    pool.resize(1);
    {
      std::vector<double> t(kReps);
      for (int r = 0; r < kReps; ++r) {
        t[r] = time_ms([&] { dft::syevd_naive(m); });
      }
      sample.naive_ms = median(t);
    }
    for (ThreadSample& t : sample.blocked) {
      t.speedup = t.ms > 0.0 ? sample.naive_ms / t.ms : 0.0;
    }
    samples.push_back(std::move(sample));
  }

  // Fused vs unfused 3D FFT (the other half of the hot loop this bench
  // guards): 64^3, single thread, warmup + median-of-5 each, interleaved.
  double fft_fused_ms = 0.0;
  double fft_unfused_ms = 0.0;
  double fft_fused_min = 0.0;
  double fft_unfused_min = 0.0;
  {
    pool.resize(1);
    dft::Grid3 grid(64, 64, 64);
    Prng prng(7);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      grid[i] = dft::Complex(prng.next_double(-1.0, 1.0),
                             prng.next_double(-1.0, 1.0));
    }
    dft::Grid3 scratch = grid;
    dft::fft3d_unfused(scratch, dft::FftDirection::kForward);  // warmup
    scratch = grid;
    dft::fft3d(scratch, dft::FftDirection::kForward);  // warmup
    // The fusion saves grid sweeps around FFT lines that dominate the
    // wall time, so its margin is a few percent; more (cheap) reps and a
    // min-based gate keep the comparison out of the noise.
    constexpr int kFftReps = 9;
    std::vector<double> t_unfused(kFftReps);
    std::vector<double> t_fused(kFftReps);
    for (int r = 0; r < kFftReps; ++r) {
      scratch = grid;
      t_unfused[r] = time_ms(
          [&] { dft::fft3d_unfused(scratch, dft::FftDirection::kForward); });
      scratch = grid;
      t_fused[r] =
          time_ms([&] { dft::fft3d(scratch, dft::FftDirection::kForward); });
    }
    fft_unfused_ms = median(t_unfused);
    fft_fused_ms = median(t_fused);
    fft_unfused_min = *std::min_element(t_unfused.begin(), t_unfused.end());
    fft_fused_min = *std::min_element(t_fused.begin(), t_fused.end());
  }
  pool.resize(original_threads);

  TextTable table({"n", "naive", "threads", "one-stage", "two-stage",
                   "vs naive", "vs one-stage", "partial(m=n/8)", "vs full",
                   "max |dlambda|"});
  for (const SizeSample& s : samples) {
    for (std::size_t i = 0; i < s.blocked.size(); ++i) {
      const ThreadSample& t = s.blocked[i];
      const PartialSample& p = s.partial[i];
      table.add_row({strformat("%zu", s.n),
                     strformat("%.1f ms", s.naive_ms),
                     strformat("%zu", t.threads),
                     strformat("%.1f ms", t.onestage_ms),
                     strformat("%.1f ms", t.ms),
                     strformat("%.2fx", t.speedup),
                     strformat("%.2fx", t.speedup_vs_onestage),
                     strformat("%.1f ms", p.ms),
                     strformat("%.2fx", p.speedup_vs_full),
                     strformat("%.1e", std::max(s.max_eigenvalue_diff,
                                                s.max_partial_diff))});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("fft3d 64^3 1T: fused %.1f ms, unfused %.1f ms (%.2fx)\n\n",
              fft_fused_ms, fft_unfused_ms,
              fft_fused_ms > 0.0 ? fft_unfused_ms / fft_fused_ms : 0.0);

  Json bench = Json::object();
  bench.set("bench", "eig_syevd");
  bench.set("meta", run_metadata_json());
  bench.set("reps", static_cast<std::size_t>(kReps));
  Json entries = Json::array();
  for (const SizeSample& s : samples) {
    Json entry = Json::object();
    entry.set("n", s.n);
    entry.set("naive_ms", s.naive_ms);
    entry.set("max_eigenvalue_diff", s.max_eigenvalue_diff);
    Json runs = Json::array();
    for (const ThreadSample& t : s.blocked) {
      Json run = Json::object();
      run.set("threads", t.threads);
      run.set("onestage_ms", t.onestage_ms);
      run.set("ms", t.ms);
      run.set("speedup", t.speedup);
      run.set("speedup_vs_onestage", t.speedup_vs_onestage);
      runs.push_back(std::move(run));
    }
    entry.set("blocked", std::move(runs));
    entry.set("partial_m", s.partial_m);
    entry.set("max_partial_eigenvalue_diff", s.max_partial_diff);
    Json partial_runs = Json::array();
    for (const PartialSample& p : s.partial) {
      Json run = Json::object();
      run.set("threads", p.threads);
      run.set("ms", p.ms);
      run.set("speedup_vs_full", p.speedup_vs_full);
      partial_runs.push_back(std::move(run));
    }
    entry.set("partial", std::move(partial_runs));
    entries.push_back(std::move(entry));
  }
  bench.set("sizes", std::move(entries));
  Json fft = Json::object();
  fft.set("grid", static_cast<std::size_t>(64));
  fft.set("fused_ms", fft_fused_ms);
  fft.set("unfused_ms", fft_unfused_ms);
  bench.set("fft3d", std::move(fft));
  const char* path = "BENCH_eig.json";
  if (std::FILE* file = std::fopen(path, "w")) {
    const std::string text = bench.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("wrote %zu size records to %s\n", samples.size(), path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
  }

  for (const SizeSample& s : samples) {
    if (s.max_eigenvalue_diff > 1e-8) {
      std::fprintf(stderr, "FAIL: two-stage/naive spectra disagree at n=%zu\n",
                   s.n);
      return 1;
    }
    if (s.max_partial_diff > 1e-8) {
      std::fprintf(stderr,
                   "FAIL: partial/naive spectra disagree on the lowest "
                   "%zu pairs at n=%zu\n",
                   s.partial_m, s.n);
      return 1;
    }
  }
  if (smoke) {
    // Gate 1: at n=128 the two-stage path must not lose to the serial
    // reference at any swept thread count's best.
    const SizeSample& s128 = samples[0];
    double best = s128.blocked[0].ms;
    for (const ThreadSample& t : s128.blocked) best = std::min(best, t.ms);
    if (best > s128.naive_ms) {
      std::fprintf(stderr,
                   "FAIL: syevd slower than reference at n=128 "
                   "(%.1f ms vs %.1f ms)\n",
                   best, s128.naive_ms);
      return 1;
    }
    // Gate 2: the partial solver must not lose to the full solve.
    double best_partial = s128.partial[0].ms;
    for (const PartialSample& p : s128.partial) {
      best_partial = std::min(best_partial, p.ms);
    }
    if (best_partial > best) {
      std::fprintf(stderr,
                   "FAIL: partial SYEVD (m=%zu) slower than the full "
                   "solve at n=128 (%.1f ms vs %.1f ms)\n",
                   s128.partial_m, best_partial, best);
      return 1;
    }
    // Gate 3: at n=256 single-thread the two-stage solver must beat the
    // one-stage solver it replaced (interleaved medians, so machine
    // drift cannot manufacture a pass or a fail).
    const SizeSample& s256 = samples[1];
    const ThreadSample& t256 = s256.blocked[0];
    if (t256.ms > t256.onestage_ms) {
      std::fprintf(stderr,
                   "FAIL: two-stage syevd slower than one-stage at n=256 "
                   "single-thread (%.1f ms vs %.1f ms)\n",
                   t256.ms, t256.onestage_ms);
      return 1;
    }
    // Gate 4: the fused 3D FFT must not lose to the unfused baseline.
    // Best-of-reps with 5% headroom: the true margin is a few percent,
    // so a strict median comparison would flake on a loaded machine.
    if (fft_fused_min > 1.05 * fft_unfused_min) {
      std::fprintf(stderr,
                   "FAIL: fused fft3d slower than unfused at 64^3 "
                   "(min %.1f ms vs %.1f ms)\n",
                   fft_fused_min, fft_unfused_min);
      return 1;
    }
    std::printf(
        "smoke OK: two-stage %.1f ms <= naive %.1f ms at n=128, "
        "partial(m=%zu) %.1f ms <= full %.1f ms, two-stage %.1f ms <= "
        "one-stage %.1f ms at n=256 1T, fused fft3d %.1f ms <= unfused "
        "%.1f ms\n",
        best, s128.naive_ms, s128.partial_m, best_partial, best, t256.ms,
        t256.onestage_ms, fft_fused_ms, fft_unfused_ms);
  }
  return 0;
} catch (const NdftError& error) {
  std::fprintf(stderr, "micro_eig: %s\n", error.what());
  return 1;
}
