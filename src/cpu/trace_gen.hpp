#pragma once
// Synthesises representative operation traces from kernel-level parameters
// (flop count, traffic, access pattern). This is how large physical systems
// (Si_1024, Si_2048) are simulated in seconds: the trace is sampled down to
// `max_mem_ops` while preserving per-op arithmetic intensity and the access
// pattern's cache/row-buffer behaviour, and the elapsed time is scaled back
// up by the sampling factor.

#include "common/types.hpp"
#include "cpu/trace.hpp"

namespace ndft::cpu {

/// Parameters describing one kernel slice (the work of one core).
struct TraceParams {
  Flops flops = 0;           ///< FP work in this slice
  Bytes bytes_read = 0;      ///< total bytes loaded (not unique)
  Bytes bytes_written = 0;   ///< total bytes stored
  AccessPattern pattern = AccessPattern::kSequential;
  Bytes working_set = 1 << 20;  ///< unique footprint of the slice
  Bytes stride_bytes = 256;     ///< step for kStrided
  Addr base_addr = 0;           ///< placement of the slice's data
  Bytes access_bytes = 64;      ///< granularity of each memory op
  std::uint64_t seed = 1;       ///< PRNG seed for kRandom
  std::size_t max_mem_ops = 40000;  ///< sampling bound
  /// Tile size for kBlocked sweeps; set to roughly half the private cache
  /// of the executing core (128 KiB for host cores, 16 KiB for NDP cores).
  Bytes block_bytes = 128 * 1024;
};

/// Generates a sampled trace for the given parameters.
///
/// Invariants (checked by tests):
///  - per-op arithmetic intensity equals flops / (bytes_read+bytes_written)
///    up to rounding;
///  - ops.size() memory ops <= max_mem_ops;
///  - trace.scale * sampled traffic == requested traffic (±1 op).
Trace generate_trace(const TraceParams& params);

}  // namespace ndft::cpu
