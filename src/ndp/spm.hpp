#pragma once
// Scratchpad memory (SPM) in the logic layer of each HBM stack.
//
// The paper (Section IV-C) places a 256 KiB SPM per stack (16 KiB per NDP
// core) in the logic layer and uses it as software-managed shared memory
// for pseudopotential blocks. We model a first-fit allocator plus a single
// high-bandwidth port with low fixed latency; DRAM is ~20x slower to reach.

#include <functional>
#include <list>
#include <optional>

#include "common/types.hpp"
#include "sim/port.hpp"
#include "sim/sim_object.hpp"

namespace ndft::ndp {

/// SPM parameters (Table III: 16 KiB per core, 256 KiB per stack).
struct SpmConfig {
  Bytes capacity = 256 * 1024;
  TimePs access_latency_ps = 1500;  ///< ~3 cycles at 2 GHz
  double bandwidth_gbps = 128.0;    ///< wide on-die port
  std::size_t port_queue = 8;       ///< in-flight accesses on the port

  static SpmConfig table3() { return SpmConfig{}; }
};

/// One stack's scratchpad: allocator + timed access port.
class Spm : public sim::SimObject {
 public:
  Spm(std::string name, sim::EventQueue& queue, const SpmConfig& config);

  /// Allocates `size` bytes; returns the SPM-local offset or nullopt when
  /// fragmentation/capacity prevents the allocation.
  std::optional<Addr> alloc(Bytes size);

  /// Frees a block previously returned by alloc(); rejects unknown offsets.
  void free(Addr offset);

  /// Bytes currently allocated.
  Bytes used() const noexcept { return used_; }
  /// Total capacity.
  Bytes capacity() const noexcept { return config_.capacity; }

  /// Timed read of `size` bytes; `done` fires when data is available.
  void read(Bytes size, std::function<void(TimePs)> done);
  /// Timed write of `size` bytes; `done` fires when the write retires.
  void write(Bytes size, std::function<void(TimePs)> done);

  const SpmConfig& config() const noexcept { return config_; }

 private:
  struct Region {
    Addr offset;
    Bytes size;
    bool allocated;
  };

  /// One access in flight on the port connection.
  struct Access {
    std::function<void(TimePs)> done;
  };

  void timed_access(Bytes size, bool is_write,
                    std::function<void(TimePs)> done);

  SpmConfig config_;
  std::list<Region> regions_;  // ordered by offset; adjacent free merged
  Bytes used_ = 0;
  // The timed port is a store-forward fabric connection: an access holds
  // the wire for its serialization time (start = max(now, wire_free)),
  // completes latency + serialization later, and at most `port_queue`
  // accesses are in flight — beyond that, requests stage in sender_ and
  // the wait is accounted as backpressure_stall_ps in stats().
  sim::Connection<Access> port_;
  sim::OutputPort<Access> out_;
  sim::CreditedSender<Access> sender_;
};

}  // namespace ndft::ndp
