#include "net/service.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "api/request_json.hpp"
#include "common/json.hpp"

namespace ndft::net {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

HttpResponse json_response(int status, const Json& body) {
  HttpResponse response;
  response.status = status;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = body.dump(2) + "\n";
  return response;
}

HttpResponse error_response(int status, const std::string& message,
                            std::vector<std::string> details = {}) {
  Json error = Json::object();
  error.set("status", static_cast<std::int64_t>(status));
  error.set("message", message);
  if (!details.empty()) {
    Json list = Json::array();
    for (const std::string& detail : details) list.push_back(Json(detail));
    error.set("details", std::move(list));
  }
  Json body = Json::object();
  body.set("error", std::move(error));
  return json_response(status, body);
}

/// Parses "/v1/jobs/{id}"; returns false when the tail is not a job id.
bool parse_job_id(const std::string& path, std::uint64_t* id) {
  const std::string prefix = "/v1/jobs/";
  if (path.rfind(prefix, 0) != 0 || path.size() == prefix.size()) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = prefix.size(); i < path.size(); ++i) {
    const char c = path[i];
    if (c < '0' || c > '9') return false;
    if (value > (static_cast<std::uint64_t>(-1) - (c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *id = value;
  return true;
}

/// Parses the ?wait_ms= long-poll budget into `*out` (0 when absent).
/// Returns false on a malformed value — trailing garbage, negative, or
/// non-finite. The non-finite check matters: strtod happily parses "nan"
/// and "inf", NaN slips past a plain `value < 0.0` guard, and a NaN
/// budget poisons every duration comparison downstream of wait_for
/// (std::min(NaN, cap) is NaN). Malformed input must be a 400, not a
/// silent zero: a sharded client that typos its long-poll would
/// otherwise degrade to busy-polling without ever learning why.
bool parse_wait_ms(const HttpRequest& request, double* out) {
  *out = 0.0;
  const std::string raw = request.query("wait_ms");
  if (raw.empty()) return true;
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (end == nullptr || *end != '\0' || raw.c_str() == end ||
      !std::isfinite(value) || value < 0.0) {
    return false;
  }
  // Cap long-polls: a client cannot pin a connection thread forever.
  *out = std::min(value, 60000.0);
  return true;
}

Json status_stub(std::uint64_t id, api::JobStatus status) {
  Json body = Json::object();
  body.set("id", id);
  body.set("status", std::string(api::to_string(status)));
  return body;
}

}  // namespace

Service::Service(api::Engine& engine, ServiceConfig config)
    : engine_(engine), config_(std::move(config)) {
  tokens_ = config_.auth_tokens;
  if (tokens_.empty()) {
    if (const char* env = std::getenv("NDFT_AUTH_TOKENS")) {
      std::string text = env;
      std::size_t start = 0;
      while (start <= text.size()) {
        std::size_t end = text.find(',', start);
        if (end == std::string::npos) end = text.size();
        const std::string token = text.substr(start, end - start);
        if (!token.empty()) tokens_.push_back(token);
        start = end + 1;
      }
    }
  }
  if (config_.rate_burst <= 0.0) config_.rate_burst = config_.rate_limit_per_s;
}

HttpResponse Service::handle(const HttpRequest& request) {
  const Clock::time_point start = Clock::now();
  HttpResponse response;
  try {
    response = route(request);
  } catch (const std::exception& e) {
    response = error_response(500, std::string("internal error: ") + e.what());
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++status_counts_[response.status];
  }
  log_request(request, response.status, ms_since(start));
  return response;
}

std::uint64_t Service::responses_with_status(int status) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = status_counts_.find(status);
  return it == status_counts_.end() ? 0 : it->second;
}

HttpResponse Service::route(const HttpRequest& request) {
  const std::string path = request.path();
  if (path == "/healthz") {
    if (request.method != "GET") return error_response(405, "GET only");
    HttpResponse response;
    response.headers.emplace_back("Content-Type", "text/plain");
    response.body = "ok\n";
    return response;
  }
  if (path == "/metrics") {
    if (request.method != "GET") return error_response(405, "GET only");
    return metrics();
  }
  if (!authorized(request)) {
    HttpResponse response =
        error_response(401, "missing or invalid bearer token");
    response.headers.emplace_back("WWW-Authenticate", "Bearer");
    return response;
  }
  if (path == "/v1/jobs") {
    if (request.method != "POST") return error_response(405, "POST only");
    return post_job(request);
  }
  std::uint64_t id = 0;
  if (parse_job_id(path, &id)) {
    if (request.method == "GET") return get_job(request, id);
    if (request.method == "DELETE") return delete_job(request, id);
    return error_response(405, "GET or DELETE only");
  }
  return error_response(404, "no such route: " + path);
}

HttpResponse Service::post_job(const HttpRequest& request) {
  double retry_after_s = 1.0;
  if (!admit_rate(request.client, &retry_after_s)) {
    HttpResponse response = error_response(429, "rate limit exceeded");
    response.headers.emplace_back(
        "Retry-After",
        std::to_string(static_cast<long long>(retry_after_s)));
    return response;
  }
  // Parse + validate everything BEFORE touching the Engine: a malformed
  // request must leave no trace in engine counters or queue state.
  api::JobRequest job;
  try {
    const Json body = Json::parse(request.body);
    job = api::job_request_from_json(body);
  } catch (const NdftError& e) {
    return error_response(400, e.what());
  }
  const std::vector<std::string> errors = api::validate(job);
  if (!errors.empty()) {
    return error_response(400, "request failed validation", errors);
  }
  // The long-poll budget is part of the request contract too: reject it
  // here, while the Engine still has no record of the job.
  double wait_ms = 0.0;
  if (!parse_wait_ms(request, &wait_ms)) {
    return error_response(400, "malformed wait_ms query parameter");
  }
  if (config_.queue_quota > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (active_jobs_locked(request.client) >= config_.queue_quota) {
      HttpResponse response =
          error_response(429, "queue quota exceeded for client");
      response.headers.emplace_back("Retry-After", "1");
      return response;
    }
  }
  api::JobHandle handle;
  try {
    handle = engine_.submit(std::move(job));
  } catch (const NdftError& e) {
    // Pending queue full: backpressure, not client error.
    HttpResponse response = error_response(503, e.what());
    response.headers.emplace_back("Retry-After", "1");
    return response;
  }
  const std::uint64_t id = handle.id();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retain_locked(id, JobEntry{handle, request.client});
  }
  // wait_for happens OUTSIDE the service mutex: long-polls must not
  // serialize the route table.
  if (wait_ms > 0.0 && handle.wait_for(wait_ms)) {
    return json_response(200, handle.wait().to_json());
  }
  HttpResponse response = json_response(202, status_stub(id, handle.status()));
  response.headers.emplace_back("Location", "/v1/jobs/" + std::to_string(id));
  return response;
}

HttpResponse Service::get_job(const HttpRequest& request, std::uint64_t id) {
  double wait_ms = 0.0;
  if (!parse_wait_ms(request, &wait_ms)) {
    return error_response(400, "malformed wait_ms query parameter");
  }
  api::JobHandle handle;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return error_response(404, "no such job: " + std::to_string(id));
    }
    handle = it->second.handle;
  }
  if (wait_ms > 0.0) handle.wait_for(wait_ms);
  const api::JobStatus status = handle.status();
  if (status == api::JobStatus::kQueued || status == api::JobStatus::kRunning) {
    return json_response(200, status_stub(id, status));
  }
  return json_response(200, handle.wait().to_json());
}

HttpResponse Service::delete_job(const HttpRequest& request, std::uint64_t id) {
  (void)request;
  api::JobHandle handle;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return error_response(404, "no such job: " + std::to_string(id));
    }
    handle = it->second.handle;
  }
  const bool accepted = handle.cancel();
  Json body = status_stub(id, handle.status());
  body.set("cancel_accepted", accepted);
  return json_response(200, body);
}

HttpResponse Service::metrics() {
  std::string out;
  const auto counter = [&out](const char* name, const char* help,
                              std::uint64_t value) {
    out += "# HELP " + std::string(name) + " " + help + "\n";
    out += "# TYPE " + std::string(name) + " counter\n";
    out += std::string(name) + " " + std::to_string(value) + "\n";
  };
  const auto gauge = [&out](const char* name, const char* help,
                            std::uint64_t value) {
    out += "# HELP " + std::string(name) + " " + help + "\n";
    out += "# TYPE " + std::string(name) + " gauge\n";
    out += std::string(name) + " " + std::to_string(value) + "\n";
  };
  counter("ndft_engine_jobs_submitted_total", "Jobs accepted by the engine.",
          engine_.jobs_submitted());
  counter("ndft_engine_jobs_completed_total",
          "Jobs that reached a non-cancelled terminal state.",
          engine_.jobs_completed());
  counter("ndft_engine_jobs_cancelled_total", "Jobs cancelled.",
          engine_.jobs_cancelled());
  counter("ndft_engine_jobs_started_total",
          "Queued jobs that began executing (exec-sequence high-water mark).",
          engine_.jobs_started());
  counter("ndft_engine_jobs_retried_total",
          "Transient-failure retries across all jobs.",
          engine_.jobs_retried());
  counter("ndft_engine_jobs_deadline_exceeded_total",
          "Jobs that ended with an exceeded deadline.",
          engine_.jobs_deadline_exceeded());
  counter("ndft_engine_jobs_degraded_total",
          "Jobs that completed with degradation notes.",
          engine_.jobs_degraded());
  gauge("ndft_engine_jobs_pending", "Jobs waiting in the engine queue.",
        engine_.jobs_pending());
  gauge("ndft_engine_jobs_running", "Jobs currently executing.",
        engine_.jobs_running());
  gauge("ndft_engine_pool_threads", "Shared kernel thread-pool width.",
        engine_.pool_threads());
  gauge("ndft_engine_dispatch_threads", "Async queue drain width.",
        engine_.dispatch_threads());
  // Per-status response counts, one labelled series per code seen so far.
  out +=
      "# HELP ndft_http_responses_total HTTP responses sent by status "
      "code.\n";
  out += "# TYPE ndft_http_responses_total counter\n";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [status, count] : status_counts_) {
      out += "ndft_http_responses_total{code=\"" + std::to_string(status) +
             "\"} " + std::to_string(count) + "\n";
    }
  }
  HttpResponse response;
  response.headers.emplace_back("Content-Type",
                                "text/plain; version=0.0.4");
  response.body = std::move(out);
  return response;
}

bool Service::authorized(const HttpRequest& request) const {
  if (tokens_.empty()) return true;  // open mode
  const std::string auth = request.header("authorization");
  const std::string prefix = "Bearer ";
  if (auth.rfind(prefix, 0) != 0) return false;
  const std::string presented = auth.substr(prefix.size());
  for (const std::string& token : tokens_) {
    if (presented == token) return true;
  }
  return false;
}

bool Service::admit_rate(const std::string& client, double* retry_after_s) {
  if (config_.rate_limit_per_s <= 0.0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = buckets_[client];
  const Clock::time_point now = Clock::now();
  if (!bucket.initialized) {
    bucket.tokens = config_.rate_burst;
    bucket.last_refill = now;
    bucket.initialized = true;
  } else {
    const double elapsed_s =
        std::chrono::duration<double>(now - bucket.last_refill).count();
    bucket.tokens = std::min(config_.rate_burst,
                             bucket.tokens +
                                 elapsed_s * config_.rate_limit_per_s);
    bucket.last_refill = now;
  }
  if (bucket.tokens < 1.0) {
    // Tell the client when a retry can actually succeed: the bucket just
    // refilled, so the next admissible request is the time the remaining
    // token deficit takes to refill at the configured rate, rounded up
    // to whole seconds (Retry-After is integral) with a floor of 1. A
    // hardcoded "1" under-reports at low refill rates and turns polite
    // clients into a retry storm of guaranteed 429s.
    if (retry_after_s != nullptr) {
      const double deficit = 1.0 - bucket.tokens;
      *retry_after_s = std::max(
          1.0, std::ceil(deficit / config_.rate_limit_per_s));
    }
    return false;
  }
  bucket.tokens -= 1.0;
  return true;
}

std::size_t Service::active_jobs_locked(const std::string& client) {
  std::size_t active = 0;
  for (const auto& [id, entry] : jobs_) {
    if (entry.client != client) continue;
    const api::JobStatus status = entry.handle.status();
    if (status == api::JobStatus::kQueued ||
        status == api::JobStatus::kRunning) {
      ++active;
    }
  }
  return active;
}

void Service::retain_locked(std::uint64_t id, JobEntry entry) {
  jobs_.emplace(id, std::move(entry));
  job_order_.push_back(id);
  // Evict the oldest TERMINAL entries over the cap; live handles are
  // never dropped (clients could no longer poll or cancel them).
  while (jobs_.size() > config_.max_retained_jobs && !job_order_.empty()) {
    bool evicted = false;
    for (auto it = job_order_.begin(); it != job_order_.end(); ++it) {
      const auto jt = jobs_.find(*it);
      if (jt == jobs_.end()) {
        it = job_order_.erase(it);
        evicted = true;
        break;
      }
      const api::JobStatus status = jt->second.handle.status();
      if (status != api::JobStatus::kQueued &&
          status != api::JobStatus::kRunning) {
        jobs_.erase(jt);
        job_order_.erase(it);
        evicted = true;
        break;
      }
    }
    if (!evicted) break;  // everything live: allow temporary overshoot
  }
}

void Service::log_request(const HttpRequest& request, int status,
                          double latency_ms) const {
  if (config_.log == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mutex_);
  std::fprintf(config_.log, "ndft_serve: %s \"%s %s\" %d %zuB %.3fms\n",
               request.client.empty() ? "-" : request.client.c_str(),
               request.method.c_str(), request.target.c_str(), status,
               request.body.size(), latency_ms);
  std::fflush(config_.log);
}

}  // namespace ndft::net
