#include "runtime/profile_store.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/run_metadata.hpp"

namespace ndft::runtime {
namespace {

constexpr const char* kStoreSchema = "ndft.device_profile_store.v1";

struct Entry {
  ProfileKey key;
  DeviceProfile cpu;
};

bool same_key(const ProfileKey& a, const ProfileKey& b) {
  return a.git_sha == b.git_sha && a.host == b.host &&
         a.pool_threads == b.pool_threads;
}

/// Loads every entry from disk; any read/parse/schema problem yields an
/// empty list (the store is a cache — see header).
std::vector<Entry> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::vector<Entry> entries;
  try {
    const Json j = Json::parse(buffer.str());
    const Json* schema = j.find("schema");
    if (schema == nullptr || schema->as_string() != kStoreSchema) return {};
    for (const Json& item : j.at("entries").items()) {
      Entry entry;
      entry.key.git_sha = item.at("git_sha").as_string();
      entry.key.host = item.at("host").as_string();
      entry.key.pool_threads = item.at("pool_threads").as_uint();
      entry.cpu = DeviceProfile::from_json(item.at("cpu"));
      entries.push_back(std::move(entry));
    }
  } catch (const NdftError&) {
    return {};
  }
  return entries;
}

void save(const std::string& path, const std::vector<Entry>& entries) {
  Json j = Json::object();
  j.set("schema", kStoreSchema);
  Json items = Json::array();
  for (const Entry& entry : entries) {
    Json item = Json::object();
    item.set("git_sha", entry.key.git_sha);
    item.set("host", entry.key.host);
    item.set("pool_threads", entry.key.pool_threads);
    item.set("cpu", entry.cpu.to_json());
    items.push_back(std::move(item));
  }
  j.set("entries", std::move(items));
  // Temp file + rename: readers never observe a half-written store.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw NdftError("profile store: cannot write " + tmp);
    out << j.dump(2) << "\n";
    if (!out) throw NdftError("profile store: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw NdftError("profile store: cannot replace " + path);
  }
}

}  // namespace

ProfileKey ProfileKey::current(std::size_t pool_threads) {
  ProfileKey key;
  key.git_sha = build_git_sha();
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    key.host = host;
  } else {
    key.host = "unknown";
  }
  key.pool_threads = pool_threads;
  return key;
}

ProfileStore::ProfileStore(std::string path) : path_(std::move(path)) {}

std::optional<DeviceProfile> ProfileStore::get_cpu(
    const ProfileKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : load(path_)) {
    if (same_key(entry.key, key)) return entry.cpu;
  }
  return std::nullopt;
}

void ProfileStore::put_cpu(const ProfileKey& key,
                           const DeviceProfile& profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> entries = load(path_);
  for (Entry& entry : entries) {
    if (same_key(entry.key, key)) {
      entry.cpu = profile;
      save(path_, entries);
      return;
    }
  }
  entries.push_back(Entry{key, profile});
  save(path_, entries);
}

std::size_t ProfileStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return load(path_).size();
}

}  // namespace ndft::runtime
