# Script mode (cmake -P): regenerates the git-SHA header every build so
# BENCH_*.json provenance names the commit the binary was actually built
# from, not the one last configured. Writes only on change to keep
# incremental builds incremental.
#   cmake -DOUT=<header> -DSRC=<source-dir> -P git_sha.cmake

execute_process(COMMAND git rev-parse --short HEAD
                WORKING_DIRECTORY ${SRC}
                OUTPUT_VARIABLE NDFT_GIT_SHA
                OUTPUT_STRIP_TRAILING_WHITESPACE
                ERROR_QUIET)
if(NOT NDFT_GIT_SHA)
  set(NDFT_GIT_SHA "unknown")
endif()
set(CONTENT "#define NDFT_GIT_SHA \"${NDFT_GIT_SHA}\"\n")
set(OLD "")
if(EXISTS ${OUT})
  file(READ ${OUT} OLD)
endif()
if(NOT OLD STREQUAL CONTENT)
  file(WRITE ${OUT} "${CONTENT}")
endif()
