#pragma once
// Profile-guided refinement of the static schedule.
//
// The paper's SCA is purely static; its roofline estimates can mispredict
// when a kernel's cache behaviour diverges from its nominal intensity.
// AdaptiveScheduler keeps a table of *measured* per-(kernel, device)
// execution times and re-plans with measurements substituted for
// estimates — the classic profile-guided refinement loop layered on top
// of the Section IV-A mechanism. bench/abl_adaptive quantifies how much
// of the static plan's regret this recovers when the SCA is fed a wrong
// machine profile.

#include <map>
#include <string>

#include "common/kernel_trace.hpp"
#include "runtime/scheduler.hpp"

namespace ndft::runtime {

/// A scheduler that blends SCA estimates with runtime measurements.
class AdaptiveScheduler {
 public:
  AdaptiveScheduler(const Sca& sca, const CostModel& cost)
      : sca_(&sca), cost_(&cost) {}

  /// Records a measured execution time for one kernel on one device.
  /// Repeated measurements are blended with an exponential moving average.
  void record(const std::string& kernel_name, DeviceKind device,
              TimePs measured_ps);

  /// Feeds a whole kernel trace into the measurement table: one record()
  /// per event, with the device decoded from the event's stage label —
  /// "sim[ndp]" -> NDP, "sim[gpu]" -> GPU, anything else (measured host
  /// traces and "sim[cpu]") -> CPU — and host_ms converted to picoseconds.
  /// This is how simulator-emitted traces (SimulateJob::record_trace)
  /// close the loop back into profile-guided planning. Returns the number
  /// of events recorded (zero-time events are skipped).
  std::size_t record_trace(const KernelTrace& trace);

  /// True if a measurement exists for this (kernel, device).
  bool has_measurement(const std::string& kernel_name,
                       DeviceKind device) const;

  /// The current belief about a kernel's time on a device: the recorded
  /// measurement when available, the SCA roofline estimate otherwise.
  TimePs believed_time(const dft::KernelWork& kernel,
                       DeviceKind device) const;

  /// Plans like Scheduler::plan (function granularity), but using
  /// believed_time() in the dynamic program.
  ExecutionPlan plan(const dft::Workload& workload) const;

  /// Number of recorded (kernel, device) entries.
  std::size_t measurement_count() const noexcept {
    return measurements_.size();
  }

 private:
  const Sca* sca_;
  const CostModel* cost_;
  std::map<std::pair<std::string, DeviceKind>, double> measurements_;
};

}  // namespace ndft::runtime
