#pragma once
// String formatting helpers for reports and benchmark output.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace ndft {

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a byte count with a binary suffix, e.g. "4.43 GiB".
std::string format_bytes(Bytes bytes);

/// Formats a picosecond duration with an adaptive unit, e.g. "12.4 ms".
std::string format_time(TimePs ps);

/// Formats a dimensionless ratio as "N.NNx".
std::string format_speedup(double ratio);

/// Formats a fraction as a percentage, e.g. "55.15 %".
std::string format_percent(double fraction);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Left-pads or truncates to an exact width (for aligned plain-text tables).
std::string pad_right(const std::string& text, std::size_t width);

}  // namespace ndft
