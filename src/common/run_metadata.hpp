#pragma once
// Shared provenance block for every machine-readable artifact the repo
// emits (the BENCH_*.json files): git revision, build type and kernel
// pool width, stamped through one helper so the perf trajectory stays
// comparable across commits and machines.

#include "common/json.hpp"

namespace ndft {

/// Git SHA the build was configured from ("unknown" outside a checkout).
const char* build_git_sha() noexcept;

/// CMake build type the binary was compiled as ("Release", "Debug", ...).
const char* build_type() noexcept;

/// The provenance object every BENCH_*.json emitter sets under "meta":
/// {"git_sha", "build_type", "pool_threads"}.
Json run_metadata_json();

}  // namespace ndft
