#pragma once
// Deterministic pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs and platforms, so we
// carry our own xoshiro256** implementation instead of std::mt19937 whose
// distributions are implementation-defined.

#include <array>
#include <cstdint>

namespace ndft {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Deterministic across platforms; cheap enough for per-access decisions in
/// the trace generator.
class Prng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound) using rejection-free Lemire reduction.
  /// bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept;

  /// Standard normal variate via Box-Muller (no state besides the PRNG).
  double next_normal() noexcept;

  /// Bernoulli draw with probability `p` of true.
  bool next_bool(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace ndft
