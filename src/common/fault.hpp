#pragma once
// Deterministic fault injection: named sites at the hot-path boundaries
// (allocation pressure, solver non-convergence, trace-recorder failure,
// simulated NDP/DRAM faults) that an installed FaultSpec can arm.
//
// Decisions are PRNG-driven but replayable: each site keeps a sequence
// counter, and whether draw #k at site S fires depends only on
// (spec seed, S, k) — the same spec replays the same fault pattern
// bitwise from process start (fault_install resets the counters).
//
// The zero-fault path costs one relaxed atomic load per site: when no
// spec is installed every fault_fires()/fault_point() call is a
// branch-on-disabled-flag, so production runs keep current performance.
//
// Degradable sites (solver fallbacks, trace downgrade) record what they
// did through the thread-local degradation notes the Engine brackets
// around each job; see DegradationScope below.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ndft {

/// What an armed site simulates failing — determines how the Engine
/// classifies an escaped FaultInjected (transient kinds retry).
enum class FaultClass {
  kResource,  ///< allocation pressure (transient: retry may succeed)
  kDevice,    ///< simulated NDP/memory fault (transient)
  kSolver,    ///< solver non-convergence (degrades to a robust fallback)
  kTrace,     ///< trace-recorder failure (degrades to an untraced run)
};
const char* to_string(FaultClass cls) noexcept;

/// Thrown by fault_point() when its site fires (and by degradable sites
/// whose fallback is handled by the caller). Derives from NdftError so
/// un-instrumented layers fail the same way a genuine error would.
class FaultInjected : public NdftError {
 public:
  FaultInjected(std::string site, FaultClass cls, std::uint64_t sequence);

  const std::string& site() const noexcept { return site_; }
  FaultClass fault_class() const noexcept { return cls_; }
  /// Which draw at the site fired (0-based), for replay diagnostics.
  std::uint64_t sequence() const noexcept { return sequence_; }

 private:
  std::string site_;
  FaultClass cls_;
  std::uint64_t sequence_;
};

/// One registered injection point.
struct FaultSite {
  const char* name;         ///< stable id used in specs ("scf.alloc", ...)
  const char* description;  ///< what firing simulates
  FaultClass cls;
};

/// The static catalog of every injection site compiled into the binary
/// (the fault-sweep smoke iterates it; specs may only name these or "*").
const std::vector<FaultSite>& fault_sites();

/// One armed rule: fire at `site` with `probability` per draw, at most
/// `max_fires` times (0 = unlimited). site "*" matches any site without
/// its own rule.
struct FaultRule {
  std::string site;
  double probability = 0.0;
  std::uint64_t max_fires = 0;
};

/// A parsed fault spec. Grammar (see docs/ROBUSTNESS.md):
///   spec  := [entry (';' entry)*]
///   entry := "seed=" uint | site '=' prob ['@' max_fires]
/// e.g. "seed=7;scf.alloc=0.5;trace.recorder=1.0@1". ',' also separates.
struct FaultSpec {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  bool empty() const noexcept { return rules.empty(); }

  /// Parses the grammar above; throws NdftError on syntax errors or on
  /// sites that are neither registered nor "*".
  static FaultSpec parse(const std::string& text);
};

/// Installs `spec` process-wide (replacing any previous spec) and resets
/// every site's sequence counter, so the same spec replays bitwise.
void fault_install(const FaultSpec& spec);

/// Disarms all sites; the hot path returns to the single-branch check.
void fault_clear() noexcept;

/// True when any spec is armed (one relaxed load — the hot-path gate).
/// Fault-aware parallel regions serialize under this so injection
/// decisions and degradation notes stay on the job thread.
bool fault_enabled() noexcept;

namespace detail {
extern std::atomic<bool> g_fault_enabled;
/// Draws the site's next sequence number and decides deterministically.
bool fault_roll(const char* site) noexcept;
}  // namespace detail

/// True when the armed spec fires for this draw at `site`. The call is a
/// single branch when no spec is installed.
inline bool fault_fires(const char* site) noexcept {
  if (!detail::g_fault_enabled.load(std::memory_order_relaxed)) {
    return false;
  }
  return detail::fault_roll(site);
}

/// Checks `site` and throws FaultInjected (classified from the catalog)
/// when it fires; no-op otherwise.
void fault_point(const char* site);

// ------------------------------------------------------- degradation notes
// A job that survives a failure in degraded form (solver fallback,
// untraced run) records what happened instead of erroring. The Engine
// installs a thread-local sink around each job; note_degradation() is a
// no-op without one (and off the job thread), so library code can always
// call it.

/// RAII sink for degradation notes on the installing thread.
class DegradationScope {
 public:
  DegradationScope();
  ~DegradationScope();
  DegradationScope(const DegradationScope&) = delete;
  DegradationScope& operator=(const DegradationScope&) = delete;

  /// The notes recorded since construction, in program order.
  std::vector<std::string> take() noexcept { return std::move(notes_); }

 private:
  std::vector<std::string> notes_;
  std::vector<std::string>* previous_;
};

/// Records one degradation note into the innermost scope (no-op without
/// one). Notes are short stable tags, e.g. "syevd_partial:full_fallback".
void note_degradation(std::string note);

}  // namespace ndft
