#pragma once
// Block Davidson iterative eigensolver for the lowest eigenpairs of a
// real symmetric operator.
//
// Production LR-TDDFT codes never diagonalise the full Casida matrix for
// large systems: they run a block iterative solver whose hot loop is the
// response GEMM the paper's workload model carries (the Davidson block
// Nx). This module provides that solver, matrix-free: the operator is a
// callback, so it works both on explicit matrices and on implicitly
// applied response kernels.

#include <functional>
#include <vector>

#include "dft/linalg.hpp"

namespace ndft::dft {

/// y = A x for the operator under diagonalisation.
using ApplyFn =
    std::function<void(const std::vector<double>& x, std::vector<double>& y)>;

/// Solver controls.
struct DavidsonConfig {
  std::size_t wanted = 4;        ///< lowest eigenpairs to converge
  std::size_t block = 8;         ///< trial vectors added per iteration
  std::size_t max_subspace = 0;  ///< restart threshold (0 = 8x wanted)
  unsigned max_iterations = 200;
  double tolerance = 1e-8;       ///< residual 2-norm per eigenpair
};

/// Result of a Davidson run.
struct DavidsonResult {
  std::vector<double> eigenvalues;  ///< ascending, size = wanted
  RealMatrix eigenvectors;          ///< n x wanted, orthonormal columns
  bool converged = false;
  unsigned iterations = 0;
  std::size_t operator_applications = 0;  ///< #times ApplyFn was called
};

/// Runs block Davidson on an n-dimensional symmetric operator whose
/// diagonal is `diagonal` (used for the preconditioner and the initial
/// guess). Throws NdftError on invalid configuration.
DavidsonResult davidson(std::size_t n, const ApplyFn& apply,
                        const std::vector<double>& diagonal,
                        const DavidsonConfig& config = {});

/// Convenience overload for an explicit symmetric matrix.
DavidsonResult davidson(const RealMatrix& symmetric,
                        const DavidsonConfig& config = {});

}  // namespace ndft::dft
