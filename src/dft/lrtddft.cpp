#include "dft/lrtddft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/cancel.hpp"
#include "common/kernel_trace.hpp"
#include "common/thread_pool.hpp"

namespace ndft::dft {
namespace {

constexpr double kEvPerHa = 27.211386;
constexpr double kFourPi = 4.0 * std::numbers::pi;

/// Puts orbital `j` (real coefficients over G) onto the FFT grid and
/// transforms it to real space. Returns the real-space values.
Grid3 orbital_to_grid(const PlaneWaveBasis& basis, const GroundState& ground,
                      std::size_t band, KernelCounts& counts) {
  const auto dims = basis.fft_dims();
  Grid3 grid(dims[0], dims[1], dims[2]);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    grid[basis.grid_index(i)] = Complex{ground.orbitals(i, band), 0.0};
  }
  fft3d(grid, FftDirection::kInverse, &counts[KernelClass::kFft]);
  // Scale so that sum_r |psi(r)|^2 * (Omega/Nr) = 1 when sum_G |c|^2 = 1:
  // the inverse FFT divides by Nr, so multiply by Nr/sqrt(Omega) ... we
  // keep psi(r) = sqrt(Nr/Omega) * sum_G c_G e^{iGr} / ... Concretely:
  // ifft gives (1/Nr) sum_G c_G e^{iGr}; multiply by Nr/sqrt(Omega).
  const double scale = static_cast<double>(grid.size()) /
                       std::sqrt(basis.crystal().volume());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] *= scale;
  }
  return grid;
}

}  // namespace

double LrTddftResult::lowest_ev() const {
  NDFT_REQUIRE(!excitations_ha.empty(), "no excitations computed");
  return excitations_ha.front() * kEvPerHa;
}

std::vector<double> transition_energies(const GroundState& ground,
                                        const LrTddftConfig& config) {
  const std::size_t nv_total = ground.valence_bands;
  const std::size_t nv = (config.valence_window == 0)
                             ? nv_total
                             : std::min(config.valence_window, nv_total);
  const std::size_t nc = config.conduction_window;
  NDFT_REQUIRE(ground.energies_ha.size() >= nv_total + nc,
               "ground state carries too few conduction bands");
  std::vector<double> result;
  result.reserve(nv * nc);
  for (std::size_t v = nv_total - nv; v < nv_total; ++v) {
    for (std::size_t c = nv_total; c < nv_total + nc; ++c) {
      result.push_back(ground.energies_ha[c] - ground.energies_ha[v]);
    }
  }
  return result;
}

LrTddftResult solve_lrtddft(const PlaneWaveBasis& basis,
                            const GroundState& ground,
                            const LrTddftConfig& config) {
  cancel_point();  // stage boundary: before the orbital transforms
  LrTddftResult result;
  KernelCounts& counts = result.counts;

  const std::size_t nv_total = ground.valence_bands;
  const std::size_t nv = (config.valence_window == 0)
                             ? nv_total
                             : std::min(config.valence_window, nv_total);
  const std::size_t nc = config.conduction_window;
  NDFT_REQUIRE(nc > 0, "need at least one conduction band");
  NDFT_REQUIRE(ground.energies_ha.size() >= nv_total + nc,
               "ground state carries too few conduction bands");
  const std::size_t npair = nv * nc;
  result.pair_count = npair;

  const auto dims = basis.fft_dims();
  const std::size_t nr = basis.fft_size();
  const double omega = basis.crystal().volume();
  const TraceStage trace_stage("lrtddft");
  trace_set_system(basis.crystal().atom_count(), basis.size(), nr);

  // Real-space orbitals for the window (valence then conduction).
  std::vector<Grid3> valence;
  valence.reserve(nv);
  for (std::size_t v = nv_total - nv; v < nv_total; ++v) {
    valence.push_back(orbital_to_grid(basis, ground, v, counts));
  }
  std::vector<Grid3> conduction;
  conduction.reserve(nc);
  for (std::size_t c = nv_total; c < nv_total + nc; ++c) {
    conduction.push_back(orbital_to_grid(basis, ground, c, counts));
  }

  // Ground-state density for the ALDA kernel: n0(r) = 2 sum_v |psi_v|^2
  // over *all* valence bands (not just the window).
  std::vector<double> density(nr, 0.0);
  for (std::size_t v = 0; v < nv_total; ++v) {
    // Reuse window grids where possible; otherwise transform on demand.
    const std::size_t window_start = nv_total - nv;
    const Grid3* grid = nullptr;
    Grid3 scratch;
    if (v >= window_start) {
      grid = &valence[v - window_start];
    } else {
      scratch = orbital_to_grid(basis, ground, v, counts);
      grid = &scratch;
    }
    for (std::size_t i = 0; i < nr; ++i) {
      density[i] += 2.0 * std::norm((*grid)[i]);
    }
  }

  // ALDA kernel f_xc(r) = d V_x / d n at n0 (Slater exchange).
  std::vector<double> fxc(nr, 0.0);
  if (config.include_xc) {
    const double prefactor = -std::cbrt(3.0 / std::numbers::pi) / 3.0;
    for (std::size_t i = 0; i < nr; ++i) {
      const double n = std::max(density[i], 1e-12);
      fxc[i] = prefactor / std::cbrt(n * n);
    }
  }

  // Face-splitting products P_vc(r) = psi_v(r) * psi_c(r), stored as a
  // (pair x grid) matrix. Orbitals are real at Gamma, so P is real, but we
  // keep the complex container because the FFT pass transforms it.
  ComplexMatrix pair_real(npair, nr);
  {
    OpCount& oc = counts[KernelClass::kFaceSplit];
    TraceRegion region(KernelClass::kFaceSplit, "facesplit");
    region.set_dims(npair, nr, 0);
    region.add_work(6ull * npair * nr,
                    static_cast<Bytes>(npair) * nr * 3 * sizeof(Complex));
    region.set_io(static_cast<Bytes>(nv + nc) * nr * sizeof(Complex),
                  static_cast<Bytes>(npair) * nr * sizeof(Complex));
    parallel_for(0, npair, parallel_grain(nr),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t p = lo; p < hi; ++p) {
                     Complex* row = pair_real.row(p);
                     const Grid3& pv = valence[p / nc];
                     const Grid3& pc = conduction[p % nc];
                     for (std::size_t i = 0; i < nr; ++i) {
                       row[i] = std::conj(pv[i]) * pc[i];
                     }
                   }
                 });
    oc.add(6ull * npair * nr,
           static_cast<Bytes>(npair) * nr * 3 * sizeof(Complex));
  }

  // FFT each pair product to reciprocal space. Pairs are independent, so
  // they run across the pool (fft3d detects the nesting and keeps its own
  // line loops serial inside each task); the per-transform OpCount tally
  // is added afterwards, identical to per-call accumulation.
  ComplexMatrix pair_recip(npair, nr);
  {
    // The per-pair transforms run across the pool, so the individual
    // fft3d entries must not emit (the calling thread's inline chunk
    // would make the event stream depend on the pool width); the batch
    // is one aggregated trace event with the same analytic tally.
    TraceRegion region(KernelClass::kFft, "fft.pairs");
    region.set_dims(dims[0], dims[1], dims[2]);
    region.add_work(static_cast<Flops>(npair) * fft_flops(nr),
                    static_cast<Bytes>(npair) * 4 * nr * sizeof(Complex));
    region.set_io(static_cast<Bytes>(npair) * nr * sizeof(Complex),
                  static_cast<Bytes>(npair) * nr * sizeof(Complex));
    parallel_for(0, npair, 1, [&](std::size_t lo, std::size_t hi) {
      Grid3 grid(dims[0], dims[1], dims[2]);
      const double element = omega / static_cast<double>(nr);
      for (std::size_t p = lo; p < hi; ++p) {
        std::copy(pair_real.row(p), pair_real.row(p) + nr,
                  grid.raw().begin());
        fft3d(grid, FftDirection::kForward);
        // Forward FFT sum -> density Fourier coefficients need the grid
        // volume element Omega/Nr.
        for (std::size_t i = 0; i < nr; ++i) {
          pair_recip(p, i) = grid[i] * element;
        }
      }
    });
  }
  counts[KernelClass::kFft].add(
      static_cast<Flops>(npair) * fft_flops(nr),
      static_cast<Bytes>(npair) * 4 * nr * sizeof(Complex));

  // Coulomb-weighted conjugate copy: rows conjugated and scaled by
  // 4 pi / |G|^2, G = 0 dropped (compensated by the neutralising
  // background). The conjugation makes the kernel contraction below
  // Hermitian without assuming anything about orbital phases.
  ComplexMatrix pair_coulomb = pair_recip;
  {
    OpCount& oc = counts[KernelClass::kFaceSplit];
    TraceRegion region(KernelClass::kFaceSplit, "coulomb");
    region.set_dims(npair, nr, 0);
    region.add_work(2ull * npair * nr,
                    static_cast<Bytes>(npair) * nr * 2 * sizeof(Complex));
    region.set_io(static_cast<Bytes>(npair) * nr * sizeof(Complex),
                  static_cast<Bytes>(npair) * nr * sizeof(Complex));
    std::vector<double> weight(nr, 0.0);
    // Build |G|^2 on the full FFT grid from the basis mapping: grid points
    // not covered by any basis vector carry higher |G|^2 than the cutoff;
    // their pair amplitudes are negligible, so weight 0 is a safe cutoff.
    for (std::size_t i = 0; i < basis.size(); ++i) {
      const double g2 = basis.gvectors()[i].g2;
      weight[basis.grid_index(i)] = (g2 > 1e-12) ? kFourPi / g2 : 0.0;
    }
    parallel_for(0, npair, parallel_grain(nr),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t p = lo; p < hi; ++p) {
                     Complex* row = pair_coulomb.row(p);
                     for (std::size_t i = 0; i < nr; ++i) {
                       row[i] = std::conj(row[i]) * weight[i];
                     }
                   }
                 });
    oc.add(2ull * npair * nr,
           static_cast<Bytes>(npair) * nr * 2 * sizeof(Complex));
  }

  // Hartree kernel K_H(p, q) = (1/Omega) sum_G rho_p(G) v(G) conj(rho_q(G)):
  // Hermitian positive semidefinite for any orbital gauge. Eigensolver
  // orientations inside degenerate multiplets are arbitrary, so the
  // kernels must not assume real pair densities.
  ComplexMatrix k_hartree;
  gemm(pair_recip, pair_coulomb, k_hartree,
       Complex{1.0 / omega, 0.0}, Complex{}, /*conj_transpose_a=*/false,
       /*transpose_b=*/true, &counts[KernelClass::kGemm]);

  // XC kernel K_xc(p, q) = sum_r P_p(r) f_xc(r) conj(P_q(r)) dOmega,
  // Hermitian with a strictly negative diagonal (f_xc < 0).
  ComplexMatrix k_xc(npair, npair);
  if (config.include_xc) {
    ComplexMatrix weighted(npair, nr);
    const double element = omega / static_cast<double>(nr);
    {
      OpCount& oc = counts[KernelClass::kFaceSplit];
      TraceRegion region(KernelClass::kFaceSplit, "xc.weight");
      region.set_dims(npair, nr, 0);
      region.add_work(2ull * npair * nr,
                      static_cast<Bytes>(npair) * nr * 2 * sizeof(Complex));
      region.set_io(static_cast<Bytes>(npair) * nr * sizeof(Complex),
                    static_cast<Bytes>(npair) * nr * sizeof(Complex));
      parallel_for(0, npair, parallel_grain(nr),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t p = lo; p < hi; ++p) {
                       const Complex* src = pair_real.row(p);
                       Complex* dst = weighted.row(p);
                       for (std::size_t i = 0; i < nr; ++i) {
                         dst[i] = std::conj(src[i]) * (fxc[i] * element);
                       }
                     }
                   });
      oc.add(2ull * npair * nr,
             static_cast<Bytes>(npair) * nr * 2 * sizeof(Complex));
    }
    gemm(pair_real, weighted, k_xc, Complex{1.0, 0.0}, Complex{},
         /*conj_transpose_a=*/false, /*transpose_b=*/true,
         &counts[KernelClass::kGemm]);
  }

  cancel_point();  // stage boundary: kernels built, Casida solve ahead
  // Assemble the TDA (Casida) matrix A = diag(eps_c - eps_v) + s*(K_H+K_xc)
  // and Hermitise away the numerical skew from finite FFT grids. A is
  // complex Hermitian in general; it degenerates to real symmetric only
  // when every orbital happens to be real in real space.
  const std::vector<double> diagonal = transition_energies(ground, config);
  ComplexMatrix a_matrix(npair, npair);
  {
    TraceRegion region(KernelClass::kOther, "assemble");
    region.set_dims(npair, npair, 0);
    region.add_work(6ull * npair * npair,
                    static_cast<Bytes>(npair) * npair * 3 * sizeof(Complex));
    region.set_io(static_cast<Bytes>(npair) * npair * 2 * sizeof(Complex),
                  static_cast<Bytes>(npair) * npair * sizeof(Complex));
    for (std::size_t p = 0; p < npair; ++p) {
      for (std::size_t q = 0; q < npair; ++q) {
        Complex value = config.spin_factor *
                        (k_hartree(p, q) +
                         (config.include_xc ? k_xc(p, q) : Complex{}));
        if (p == q) {
          value = Complex{value.real() + diagonal[p], 0.0};
        }
        a_matrix(p, q) = value;
      }
    }
    for (std::size_t p = 0; p < npair; ++p) {
      a_matrix(p, p) = Complex{a_matrix(p, p).real(), 0.0};
      for (std::size_t q = p + 1; q < npair; ++q) {
        const Complex mean =
            0.5 * (a_matrix(p, q) + std::conj(a_matrix(q, p)));
        a_matrix(p, q) = mean;
        a_matrix(q, p) = std::conj(mean);
      }
    }
  }

  HermitianEigenResult eigen = heev(a_matrix, &counts[KernelClass::kSyevd]);
  result.excitations_ha = std::move(eigen.eigenvalues);
  if (config.keep_eigenvectors) {
    result.eigenvectors = std::move(eigen.eigenvectors);
  }
  return result;
}

}  // namespace ndft::dft
