#include "dft/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/math_util.hpp"
#include "common/thread_pool.hpp"

namespace ndft::dft {
namespace {

/// sqrt(a^2 + b^2) without destructive overflow.
double pythag(double a, double b) noexcept {
  const double absa = std::fabs(a);
  const double absb = std::fabs(b);
  if (absa > absb) {
    const double ratio = absb / absa;
    return absa * std::sqrt(1.0 + ratio * ratio);
  }
  if (absb == 0.0) {
    return 0.0;
  }
  const double ratio = absa / absb;
  return absb * std::sqrt(1.0 + ratio * ratio);
}

double sign_of(double magnitude, double sign) noexcept {
  return sign >= 0.0 ? std::fabs(magnitude) : -std::fabs(magnitude);
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// (EISPACK tred2 lineage). On return `z` holds the accumulated orthogonal
/// transformation, `d` the diagonal and `e` the subdiagonal (e[0] unused).
void tred2(RealMatrix& z, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t i = n - 1; i >= 1; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the transformation matrix.
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

/// Implicit-shift QL iteration on a tridiagonal matrix with eigenvector
/// accumulation (EISPACK tql2 lineage). `d` holds eigenvalues on return.
void tql2(std::vector<double>& d, std::vector<double>& e, RealMatrix& z) {
  const std::size_t n = d.size();
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    unsigned iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        NDFT_REQUIRE(iter++ < 50, "QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = pythag(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          double f = s * e[i];
          const double b = c * e[i];
          e[i + 1] = r = pythag(f, g);
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

/// Conjugates complex values when `Conj`; the identity for doubles.
template <bool Conj, typename T>
T maybe_conj(const T& value) {
  if constexpr (Conj && !std::is_same_v<T, double>) {
    return std::conj(value);
  } else {
    return value;
  }
}

// ------------------------------------------------------------ GEMM layer
//
// BLIS-style blocking: C is computed in (kMc x kNr)-tall bands. op(A) and
// op(B) blocks are packed into contiguous micro-panels (the transpose /
// conjugation is absorbed by the packing, so whole-operand copies never
// happen), and an (kMr x kNr) register-tile microkernel runs over the
// packed panels. Row blocks are independent, so they are spread across
// the thread pool; every C element sees k-terms in the same order
// regardless of the thread count, keeping results bitwise deterministic.

constexpr std::size_t kMr = 6;    ///< microkernel rows (register tile)
constexpr std::size_t kNr = 16;   ///< microkernel cols (two AVX-512 lanes)
constexpr std::size_t kMc = 96;   ///< row block, multiple of kMr
constexpr std::size_t kKc = 240;  ///< depth block (packed panels stay hot)
constexpr std::size_t kNc = 2016; ///< column block, multiple of kNr

/// Below this op(A)*op(B) volume (m*n*k) the packing overhead dominates
/// and the reference loop wins; also keeps tiny products allocation-free.
constexpr std::size_t kSmallGemmVolume = 32768;

/// Packs an (mc x kc) block of op(A) into kMr-row micro-panels,
/// zero-padding the row remainder. Panel p holds rows [p*kMr, p*kMr+kMr)
/// in k-major order: element (i, l) of the block at p*kMr*kc + l*kMr + i.
template <bool Transpose, bool Conj, typename T>
void pack_a_block(const Matrix<T>& a, std::size_t row0, std::size_t col0,
                  std::size_t mc, std::size_t kc, T* buffer) {
  for (std::size_t ip = 0; ip < mc; ip += kMr) {
    const std::size_t rows = std::min(kMr, mc - ip);
    for (std::size_t l = 0; l < kc; ++l) {
      for (std::size_t i = 0; i < kMr; ++i) {
        T value{};
        if (i < rows) {
          value = Transpose
                      ? maybe_conj<Conj>(a(col0 + l, row0 + ip + i))
                      : a(row0 + ip + i, col0 + l);
        }
        *buffer++ = value;
      }
    }
  }
}

/// Packs a (kc x nc) block of op(B) into kNr-column micro-panels,
/// zero-padding the column remainder: element (l, j) of panel p sits at
/// p*kNr*kc + l*kNr + j.
template <bool Transpose, typename T>
void pack_b_block(const Matrix<T>& b, std::size_t row0, std::size_t col0,
                  std::size_t kc, std::size_t nc, T* buffer) {
  for (std::size_t jp = 0; jp < nc; jp += kNr) {
    const std::size_t cols = std::min(kNr, nc - jp);
    for (std::size_t l = 0; l < kc; ++l) {
      for (std::size_t j = 0; j < kNr; ++j) {
        T value{};
        if (j < cols) {
          value = Transpose ? b(col0 + jp + j, row0 + l)
                            : b(row0 + l, col0 + jp + j);
        }
        *buffer++ = value;
      }
    }
  }
}

#if defined(__GNUC__) && defined(__AVX512F__)
#define NDFT_GEMM_SIMD 1
/// 8 doubles per lane; kNr is exactly two lanes.
typedef double V8d __attribute__((vector_size(64)));

V8d v8_load(const double* p) {
  V8d v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned load, folds to vmovupd
  return v;
}
#endif

/// Register-tile kernel: acc(kMr x kNr) += Apanel * Bpanel over kc terms.
/// The double path names every accumulator lane explicitly — compilers
/// reliably spill a 2D accumulator array to the stack, which costs an
/// order of magnitude here — and the generic path (complex, non-AVX512
/// builds) uses plain loops with compile-time extents.
template <typename T>
void micro_kernel(std::size_t kc, const T* __restrict a_panel,
                  const T* __restrict b_panel, T* __restrict acc) {
#if NDFT_GEMM_SIMD
  if constexpr (std::is_same_v<T, double>) {
    static_assert(kMr == 6 && kNr == 16, "tile shape is hard-wired below");
    V8d c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
    V8d c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
    for (std::size_t l = 0; l < kc; ++l) {
      const double* a = a_panel + l * kMr;
      const V8d b0 = v8_load(b_panel + l * kNr);
      const V8d b1 = v8_load(b_panel + l * kNr + 8);
      V8d av;
      av = V8d{} + a[0]; c00 += av * b0; c01 += av * b1;
      av = V8d{} + a[1]; c10 += av * b0; c11 += av * b1;
      av = V8d{} + a[2]; c20 += av * b0; c21 += av * b1;
      av = V8d{} + a[3]; c30 += av * b0; c31 += av * b1;
      av = V8d{} + a[4]; c40 += av * b0; c41 += av * b1;
      av = V8d{} + a[5]; c50 += av * b0; c51 += av * b1;
    }
    const V8d rows[12] = {c00, c01, c10, c11, c20, c21,
                          c30, c31, c40, c41, c50, c51};
    __builtin_memcpy(acc, rows, sizeof(rows));
    return;
  }
#endif
  for (std::size_t l = 0; l < kc; ++l) {
    const T* a = a_panel + l * kMr;
    const T* b = b_panel + l * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const T aval = a[i];
      T* row = acc + i * kNr;
      for (std::size_t j = 0; j < kNr; ++j) {
        row[j] += aval * b[j];
      }
    }
  }
}

/// Reference triple loop (also the small-product fast path): transposition
/// read through indexing, no operand copies, no branches in the k loop.
template <bool TransposeA, bool TransposeB, bool ConjA, typename T>
void gemm_reference(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                    T alpha, T beta, std::size_t m, std::size_t n,
                    std::size_t k) {
  for (std::size_t i = 0; i < m; ++i) {
    T* crow = c.row(i);
    if (beta == T{}) {
      std::fill(crow, crow + n, T{});
    } else if (beta != T{1.0}) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::size_t l = 0; l < k; ++l) {
      const T aval =
          alpha * (TransposeA ? maybe_conj<ConjA>(a(l, i)) : a(i, l));
      if constexpr (TransposeB) {
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aval * b(j, l);
        }
      } else {
        const T* brow = b.row(l);
        for (std::size_t j = 0; j < n; ++j) {
          crow[j] += aval * brow[j];
        }
      }
    }
  }
}

template <typename T>
void gemm_reference_dispatch(const Matrix<T>& a, const Matrix<T>& b,
                             Matrix<T>& c, T alpha, T beta, bool transpose_a,
                             bool transpose_b, std::size_t m, std::size_t n,
                             std::size_t k) {
  if (transpose_a) {
    if (transpose_b) {
      gemm_reference<true, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_reference<true, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  } else {
    if (transpose_b) {
      gemm_reference<false, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_reference<false, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  }
}

/// Shape checks shared by every entry point; sizes C when allowed.
template <typename T>
void gemm_prepare(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                  T beta, bool transpose_a, bool transpose_b, std::size_t& m,
                  std::size_t& n, std::size_t& k) {
  m = transpose_a ? a.cols() : a.rows();
  k = transpose_a ? a.rows() : a.cols();
  const std::size_t b_rows = transpose_b ? b.cols() : b.rows();
  n = transpose_b ? b.rows() : b.cols();
  NDFT_REQUIRE(b_rows == k, "gemm: inner dimensions must agree");
  if (c.rows() != m || c.cols() != n) {
    NDFT_REQUIRE(beta == T{}, "gemm: beta != 0 requires a sized C");
    c = Matrix<T>(m, n);
  }
}

template <bool TransposeA, bool TransposeB, bool ConjA, typename T>
void gemm_blocked(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c,
                  T alpha, T beta, std::size_t m, std::size_t n,
                  std::size_t k) {
  std::vector<T> b_pack(kKc * std::min(kNc, round_up(n, kNr)));
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      const bool first_k_block = (pc == 0);
      pack_b_block<TransposeB>(b, pc, jc, kc, nc, b_pack.data());

      const std::size_t row_blocks = ceil_div(m, kMc);
      parallel_for(0, row_blocks, 1, [&](std::size_t lo, std::size_t hi) {
        std::vector<T> a_pack(kMc * kc);
        T acc[kMr * kNr];
        for (std::size_t block = lo; block < hi; ++block) {
          const std::size_t ic = block * kMc;
          const std::size_t mc = std::min(kMc, m - ic);
          pack_a_block<TransposeA, ConjA>(a, ic, pc, mc, kc, a_pack.data());
          for (std::size_t jp = 0; jp < nc; jp += kNr) {
            const std::size_t cols = std::min(kNr, nc - jp);
            const T* b_panel = b_pack.data() + (jp / kNr) * kNr * kc;
            for (std::size_t ip = 0; ip < mc; ip += kMr) {
              const std::size_t rows = std::min(kMr, mc - ip);
              const T* a_panel = a_pack.data() + (ip / kMr) * kMr * kc;
              std::fill(acc, acc + kMr * kNr, T{});
              micro_kernel(kc, a_panel, b_panel, acc);
              for (std::size_t i = 0; i < rows; ++i) {
                T* crow = c.row(ic + ip + i) + jc + jp;
                const T* arow = acc + i * kNr;
                if (first_k_block) {
                  if (beta == T{}) {
                    for (std::size_t j = 0; j < cols; ++j) {
                      crow[j] = alpha * arow[j];
                    }
                  } else {
                    for (std::size_t j = 0; j < cols; ++j) {
                      crow[j] = beta * crow[j] + alpha * arow[j];
                    }
                  }
                } else {
                  for (std::size_t j = 0; j < cols; ++j) {
                    crow[j] += alpha * arow[j];
                  }
                }
              }
            }
          }
        }
      });
    }
  }
}

template <typename T>
void gemm_impl(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c, T alpha,
               T beta, bool transpose_a, bool transpose_b) {
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, transpose_a, transpose_b, m, n, k);
  if (m * n * k <= kSmallGemmVolume) {
    gemm_reference_dispatch(a, b, c, alpha, beta, transpose_a, transpose_b,
                            m, n, k);
    return;
  }
  if (transpose_a) {
    if (transpose_b) {
      gemm_blocked<true, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_blocked<true, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  } else {
    if (transpose_b) {
      gemm_blocked<false, true, true>(a, b, c, alpha, beta, m, n, k);
    } else {
      gemm_blocked<false, false, true>(a, b, c, alpha, beta, m, n, k);
    }
  }
}

}  // namespace

void gemm(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
          double alpha, double beta, bool transpose_a, bool transpose_b,
          OpCount* count) {
  gemm_impl(a, b, c, alpha, beta, transpose_a, transpose_b);
  if (count != nullptr) {
    const std::size_t m = transpose_a ? a.cols() : a.rows();
    const std::size_t k = transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    count->add(2ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(double));
  }
}

void gemm(const ComplexMatrix& a, const ComplexMatrix& b, ComplexMatrix& c,
          Complex alpha, Complex beta, bool conj_transpose_a,
          bool transpose_b, OpCount* count) {
  gemm_impl(a, b, c, alpha, beta, conj_transpose_a, transpose_b);
  if (count != nullptr) {
    const std::size_t m = conj_transpose_a ? a.cols() : a.rows();
    const std::size_t k = conj_transpose_a ? a.rows() : a.cols();
    const std::size_t n = transpose_b ? b.rows() : b.cols();
    count->add(8ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(Complex));
  }
}

void gemm_naive(const RealMatrix& a, const RealMatrix& b, RealMatrix& c,
                double alpha, double beta, bool transpose_a,
                bool transpose_b, OpCount* count) {
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, transpose_a, transpose_b, m, n, k);
  gemm_reference_dispatch(a, b, c, alpha, beta, transpose_a, transpose_b, m,
                          n, k);
  if (count != nullptr) {
    count->add(2ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(double));
  }
}

void gemm_naive(const ComplexMatrix& a, const ComplexMatrix& b,
                ComplexMatrix& c, Complex alpha, Complex beta,
                bool conj_transpose_a, bool transpose_b, OpCount* count) {
  std::size_t m, n, k;
  gemm_prepare(a, b, c, beta, conj_transpose_a, transpose_b, m, n, k);
  gemm_reference_dispatch(a, b, c, alpha, beta, conj_transpose_a,
                          transpose_b, m, n, k);
  if (count != nullptr) {
    count->add(8ull * m * n * k,
               (m * k + k * n + 2 * m * n) * sizeof(Complex));
  }
}

EigenResult syev(const RealMatrix& symmetric, OpCount* count) {
  NDFT_REQUIRE(symmetric.rows() == symmetric.cols(),
               "syev: matrix must be square");
  const std::size_t n = symmetric.rows();
  EigenResult result;
  result.eigenvectors = symmetric;  // tred2 works in place
  std::vector<double> d;
  std::vector<double> e;
  tred2(result.eigenvectors, d, e);
  tql2(d, e, result.eigenvectors);

  // Sort ascending, permuting eigenvector columns accordingly.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d[x] < d[y]; });
  result.eigenvalues.resize(n);
  RealMatrix sorted(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted(i, j) = result.eigenvectors(i, order[j]);
    }
  }
  result.eigenvectors = std::move(sorted);

  if (count != nullptr) {
    // Dense two-phase eigensolve: ~(4/3)n^3 for the reduction plus ~6n^3
    // for QL rotations with eigenvectors.
    const auto cubic = static_cast<Flops>(n) * n * n;
    count->add(cubic * 22 / 3, 3 * n * n * sizeof(double));
  }
  return result;
}

HermitianEigenResult heev(const ComplexMatrix& hermitian, OpCount* count) {
  NDFT_REQUIRE(hermitian.rows() == hermitian.cols(),
               "heev: matrix must be square");
  const std::size_t n = hermitian.rows();
  // Real embedding M = [[A, -B], [B, A]] for H = A + iB.
  RealMatrix embedded(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const Complex h = hermitian(i, j);
      embedded(i, j) = h.real();
      embedded(i + n, j + n) = h.real();
      embedded(i, j + n) = -h.imag();
      embedded(i + n, j) = h.imag();
    }
  }
  EigenResult real_result = syev(embedded, count);

  // Each eigenvalue of H appears twice; fold pairs and rebuild complex
  // eigenvectors v = x + i y, re-orthonormalising inside degenerate groups.
  HermitianEigenResult result;
  result.eigenvalues.reserve(n);
  result.eigenvectors = ComplexMatrix(n, n);
  std::vector<std::vector<Complex>> kept;
  kept.reserve(n);
  for (std::size_t j = 0; j < 2 * n && kept.size() < n; ++j) {
    std::vector<Complex> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = Complex{real_result.eigenvectors(i, j),
                     real_result.eigenvectors(i + n, j)};
    }
    // Project out already-kept vectors (modified Gram-Schmidt).
    for (const auto& u : kept) {
      Complex overlap{};
      for (std::size_t i = 0; i < n; ++i) overlap += std::conj(u[i]) * v[i];
      for (std::size_t i = 0; i < n; ++i) v[i] -= overlap * u[i];
    }
    double norm = 0.0;
    for (const Complex& value : v) norm += std::norm(value);
    norm = std::sqrt(norm);
    if (norm < 1e-8) {
      continue;  // duplicate of an already-kept pair partner
    }
    for (Complex& value : v) value /= norm;
    result.eigenvalues.push_back(real_result.eigenvalues[j]);
    kept.push_back(std::move(v));
  }
  NDFT_REQUIRE(kept.size() == n, "heev: failed to fold embedded eigenpairs");
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = kept[j][i];
    }
  }
  return result;
}

void mirror_upper(RealMatrix& symmetric) {
  const std::size_t n = symmetric.rows();
  NDFT_REQUIRE(symmetric.cols() == n, "mirror_upper: matrix must be square");
  parallel_for(0, n, parallel_grain(n), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        symmetric(i, j) = symmetric(j, i);
      }
    }
  });
}

double eigen_residual(const RealMatrix& symmetric,
                      const EigenResult& result) {
  const std::size_t n = symmetric.rows();
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double value = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        value += symmetric(i, k) * result.eigenvectors(k, j);
      }
      value -= result.eigenvalues[j] * result.eigenvectors(i, j);
      sum += value * value;
    }
  }
  return std::sqrt(sum);
}

}  // namespace ndft::dft
