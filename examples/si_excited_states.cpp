// Runs the *functional* LR-TDDFT pipeline end to end on a real silicon
// supercell through the Engine API: empirical-pseudopotential ground
// state, face-splitting products, FFTs, Coulomb/ALDA kernels, GEMM
// contraction and SYEVD diagonalization — printing the excitation
// energies, the optical spectrum, and the fully self-consistent LDA
// ground state for comparison. The LR-TDDFT and SCF jobs are submitted
// together and run concurrently through the engine queue.
//
//   ./si_excited_states [atoms] [ecut_ry]    (defaults: Si_8, 4.5 Ry)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/engine.hpp"
#include "dft/spectrum.hpp"

using namespace ndft;

namespace {
constexpr double kEvPerHa = 27.211386;
}

int main(int argc, char** argv) {
  std::size_t atoms = 8;
  double ecut_ry = 4.5;
  if (argc > 1) atoms = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) ecut_ry = std::strtod(argv[2], nullptr);

  api::Engine engine;

  // LR-TDDFT excitation spectrum (TDA) over a window around the gap,
  // with oscillator strengths for the optical spectrum.
  api::LrtddftJob excitation_job;
  excitation_job.atoms = atoms;
  excitation_job.ecut_ry = ecut_ry;
  excitation_job.config.valence_window =
      std::min<std::size_t>(2 * atoms, 8);
  excitation_job.config.conduction_window = 4;
  excitation_job.oscillator_strengths = true;

  // Fully self-consistent ground state (Ashcroft empty-core + LDA) for
  // comparison with the empirical one.
  api::ScfJob scf_job;
  scf_job.atoms = atoms;
  scf_job.ecut_ry = ecut_ry;
  scf_job.scf.tolerance = 1e-5;

  std::vector<api::JobHandle> handles =
      engine.submit_batch({excitation_job, scf_job});

  const api::JobResult& excitation_result = handles[0].wait();
  if (!excitation_result.ok()) {
    std::fprintf(stderr, "si_excited_states: lrtddft job failed: %s\n",
                 excitation_result.error_message.c_str());
    return 1;
  }
  const api::LrtddftPayload& lr = *excitation_result.lrtddft;

  std::printf("Si_%zu: %zu plane waves at %.1f Ry, FFT grid %zux%zux%zu\n",
              lr.atoms, lr.basis_size, ecut_ry, lr.grid_dims[0],
              lr.grid_dims[1], lr.grid_dims[2]);
  std::printf("ground state: %zu valence bands, gap %.3f eV\n",
              lr.valence_bands, lr.ground_gap_ev);
  std::printf("nonlocal pseudopotential: %zu projectors, <psi0|V_nl|psi0> "
              "= %.4f Ha\n",
              lr.projector_count, lr.nonlocal_expectation_ha);

  std::printf("\nLR-TDDFT (TDA): %zu pair states\n", lr.pair_count);
  std::printf("  lowest excitations (eV):");
  for (std::size_t i = 0;
       i < std::min<std::size_t>(6, lr.excitations_ha.size()); ++i) {
    std::printf(" %.3f", lr.excitations_ha[i] * kEvPerHa);
  }
  std::printf("\n  per-kernel cost of this run:\n");
  for (const api::KernelCountPayload& count : lr.counts) {
    std::printf("    %-16s %8.2f MFLOP  %8.2f MB\n", to_string(count.cls),
                static_cast<double>(count.flops) / 1e6,
                static_cast<double>(count.bytes) / 1e6);
  }

  // Oscillator strengths and a broadened absorption spectrum, plotted
  // from the payload's optical lines.
  double strongest = 0.0;
  double strongest_ev = 0.0;
  std::vector<dft::OscillatorLine> lines;
  for (const api::OscillatorLinePayload& line : lr.lines) {
    lines.push_back({line.energy_ev, line.strength});
    if (line.strength > strongest) {
      strongest = line.strength;
      strongest_ev = line.energy_ev;
    }
  }
  std::printf("\nstrongest optical line: %.2f eV (f = %.3f)\n",
              strongest_ev, strongest);
  std::printf("absorption spectrum (0.5 eV bins, Lorentzian 0.2 eV):\n  ");
  std::vector<double> grid;
  for (double e = 0.5; e <= 12.0; e += 0.5) grid.push_back(e);
  const auto sigma = dft::absorption_spectrum(lines, grid, 0.2);
  double peak = 1e-12;
  for (const double v : sigma) peak = std::max(peak, v);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const int bars = static_cast<int>(sigma[i] / peak * 40.0);
    std::printf("%5.1f eV |%.*s\n  ", grid[i], bars,
                "########################################");
  }
  std::printf("\n");

  const api::JobResult& scf_result = handles[1].wait();
  if (!scf_result.ok()) {
    std::fprintf(stderr, "si_excited_states: scf job failed: %s\n",
                 scf_result.error_message.c_str());
    return 1;
  }
  const api::ScfPayload& scf = *scf_result.scf;
  std::printf("SCF-LDA ground state: %s after %zu iterations, gap %.3f eV, "
              "%.1f electrons\n",
              scf.converged ? "converged" : "NOT converged",
              scf.iterations, scf.gap_ev, scf.electron_count);
  return 0;
}
