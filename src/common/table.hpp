#pragma once
// Plain-text table rendering used by the benchmark harness to print rows in
// the same layout as the paper's tables and figure data series.

#include <string>
#include <vector>

namespace ndft {

/// Accumulates rows of string cells and renders an aligned plain-text table
/// with a header rule, suitable for terminal output and EXPERIMENTS.md.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table (header, rule, rows) as a multi-line string.
  std::string render() const;

  /// Renders as comma-separated values (header row first).
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ndft
