#include "runtime/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/units.hpp"
#include "dft/workload.hpp"

namespace ndft::runtime {
namespace {

/// Significance floor: events shorter than this enter neither the fit nor
/// the mismatch report. Sub-millisecond kernels are dominated by call
/// overhead, allocation and cache warmup — effects the roofline terms
/// being fitted do not model — while the offload decision is driven by
/// the kernels that actually carry the run.
constexpr double kMinEventMs = 0.05;
constexpr double kMinEventShare = 0.02;

struct Sample {
  dft::KernelWork work;
  double ms = 0.0;
  bool blocked = false;
};

/// Roofline time in ms for one sample under (P GFLOP/s, B GB/s, eff).
double estimate_ms(const Sample& s, double p_gflops, double b_gbps,
                   double blocked_eff) {
  const double gflops =
      s.blocked ? p_gflops * blocked_eff : p_gflops;
  const double compute_ms =
      gflops <= 0.0 ? 0.0
                    : static_cast<double>(s.work.flops) / (gflops * 1e6);
  const double memory_ms =
      b_gbps <= 0.0
          ? 0.0
          : static_cast<double>(s.work.dram_bytes) / (b_gbps * 1e6);
  return std::max(compute_ms, memory_ms);
}

double mismatch(double est_ms, double measured_ms) {
  if (est_ms <= 0.0 || measured_ms <= 0.0) return 1e18;
  return std::max(est_ms / measured_ms, measured_ms / est_ms);
}

double worst_mismatch(const std::vector<Sample>& samples, double p,
                      double b, double eff) {
  double worst = 1.0;
  for (const Sample& s : samples) {
    worst = std::max(worst, mismatch(estimate_ms(s, p, b, eff), s.ms));
  }
  return worst;
}

}  // namespace

CpuCalibration calibrate_cpu(const KernelTrace& trace,
                             const DeviceProfile& base) {
  CpuCalibration result;
  result.profile = base;

  const double total_ms = trace.total_host_ms();
  const double floor_ms =
      std::max(kMinEventMs, total_ms * kMinEventShare);

  std::vector<Sample> plain;    // sequential / strided events
  std::vector<Sample> blocked;  // GEMM / SYEVD panel events
  for (const TraceEvent& event : trace.events) {
    if (event.cls == KernelClass::kOther) continue;
    if (event.host_ms < floor_ms) continue;
    if (event.flops == 0 && event.bytes == 0) continue;
    Sample s;
    s.work = dft::kernel_work_from_event(event);
    s.ms = event.host_ms;
    s.blocked = s.work.pattern == AccessPattern::kBlocked;
    (s.blocked ? blocked : plain).push_back(std::move(s));
  }
  if (plain.empty() && blocked.empty()) {
    return result;  // nothing significant to fit against
  }

  // Candidate rates are the ones the events themselves achieved; the fit
  // picks the pair minimising the worst-case multiplicative mismatch.
  // When there are no non-blocked events the blocked ones fix (P, B)
  // directly (efficiency folds into P).
  const std::vector<Sample>& pb_samples = plain.empty() ? blocked : plain;
  std::vector<double> cand_p{base.peak_gflops};
  std::vector<double> cand_b{base.dram_gbps};
  for (const Sample& s : pb_samples) {
    if (s.work.flops > 0) {
      cand_p.push_back(static_cast<double>(s.work.flops) / (s.ms * 1e6));
    }
    if (s.work.dram_bytes > 0) {
      cand_b.push_back(
          static_cast<double>(s.work.dram_bytes) / (s.ms * 1e6));
    }
  }
  double best_p = base.peak_gflops;
  double best_b = base.dram_gbps;
  double best = worst_mismatch(pb_samples, best_p, best_b, 1.0);
  for (const double p : cand_p) {
    for (const double b : cand_b) {
      const double w = worst_mismatch(pb_samples, p, b, 1.0);
      if (w < best) {
        best = w;
        best_p = p;
        best_b = b;
      }
    }
  }

  // Blocked-panel efficiency, fitted with (P, B) held fixed.
  double best_eff = base.blocked_compute_efficiency;
  if (!blocked.empty() && !plain.empty()) {
    std::vector<double> cand_eff{base.blocked_compute_efficiency};
    for (const Sample& s : blocked) {
      if (s.work.flops == 0 || best_p <= 0.0) continue;
      const double achieved =
          static_cast<double>(s.work.flops) / (s.ms * 1e6);
      cand_eff.push_back(std::clamp(achieved / best_p, 1e-3, 1.0));
    }
    double best_blocked = worst_mismatch(blocked, best_p, best_b, best_eff);
    for (const double eff : cand_eff) {
      const double w = worst_mismatch(blocked, best_p, best_b, eff);
      if (w < best_blocked) {
        best_blocked = w;
        best_eff = eff;
      }
    }
  } else if (plain.empty()) {
    best_eff = 1.0;  // efficiency already folded into the fitted P
  }

  result.profile.peak_gflops = best_p;
  result.profile.dram_gbps = best_b;
  result.profile.blocked_compute_efficiency = best_eff;
  result.calibrated = true;
  result.fitted_events = plain.size() + blocked.size();
  double worst = worst_mismatch(plain, best_p, best_b, best_eff);
  worst = std::max(worst, worst_mismatch(blocked, best_p, best_b, best_eff));
  result.max_ratio = worst;
  for (const Sample& s : plain) result.fitted_ms += s.ms;
  for (const Sample& s : blocked) result.fitted_ms += s.ms;
  return result;
}

}  // namespace ndft::runtime
