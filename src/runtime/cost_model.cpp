#include "runtime/cost_model.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace ndft::runtime {

TimePs CostModel::transfer_time(Bytes bytes) const {
  if (bytes == 0) {
    return 0;
  }
  // The crossing is limited by the slower of the two devices' link rates.
  const double gbps = std::min(cpu_.link_gbps, ndp_.link_gbps);
  return transfer_time_ps(bytes, gbps);
}

TimePs CostModel::context_switch_time() const {
  return std::max(cpu_.switch_latency_ps, ndp_.switch_latency_ps);
}

}  // namespace ndft::runtime
