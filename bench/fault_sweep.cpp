// bench_fault_sweep: fault-injection sweep over every registered site.
// For each site in the catalog, arms the site at probability 1.0 (capped
// to one fire, then uncapped) and drives a small job through the layer
// that owns the site, asserting the contract of its fault class:
//
//   resource/device (transient)  @1: retries to success, attempts == 2
//                                uncapped: classified transient failure
//                                with attempts == max_attempts
//   solver/trace (degradable)    job stays Ok and reports the fallback in
//                                JobResult::degraded
//
// Exits nonzero on any contract violation — and simply completing proves
// no site hangs or crashes the engine. Results go to
// BENCH_fault_sweep.json for cross-commit tracking.
//
// Modes:
//   bench_fault_sweep           full sweep (capped + uncapped per site)
//   bench_fault_sweep --smoke   same sweep, smaller jobs (the
//                               verify.sh --bench-smoke gate)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "common/fault.hpp"
#include "common/run_metadata.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "dft/davidson.hpp"
#include "dft/linalg.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

using namespace ndft;

namespace {

struct SweepRow {
  std::string site;
  FaultClass cls = FaultClass::kResource;
  std::string capped_outcome;
  std::string uncapped_outcome;
  bool pass = false;
};

/// A small job that reaches the layer owning `site`.
api::JobRequest job_for_site(const char* site, bool smoke) {
  if (std::strcmp(site, "scf.alloc") == 0 ||
      std::strcmp(site, "trace.recorder") == 0) {
    api::ScfJob job;
    job.scf.max_iterations = smoke ? 2 : 4;
    job.scf.tolerance = 1e-2;
    job.record_trace = std::strcmp(site, "trace.recorder") == 0;
    return job;
  }
  if (std::strcmp(site, "bands.alloc") == 0 ||
      std::strcmp(site, "solver.syevd_partial") == 0) {
    api::BandStructureJob job;
    job.segments = smoke ? 1 : 2;
    return job;
  }
  if (std::strcmp(site, "sim.mem") == 0) {
    api::SimulateJob job;
    job.atoms = 16;
    return job;
  }
  return api::PlanJob{};  // engine.alloc and anything engine-level
}

/// The davidson site lives outside the Engine's job kinds: drive the
/// dense overload directly and report in the same outcome vocabulary.
SweepRow sweep_davidson() {
  SweepRow row;
  row.site = "solver.davidson";
  row.cls = FaultClass::kSolver;
  dft::RealMatrix m(32, 32);
  for (std::size_t i = 0; i < 32; ++i) {
    m(i, i) = static_cast<double>(i) + 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      m(i, j) = m(j, i) = 0.05 / static_cast<double>(i + j + 1);
    }
  }
  dft::DavidsonConfig config;
  config.wanted = 3;
  bool pass = true;
  for (const bool capped : {true, false}) {
    fault_install(FaultSpec::parse(capped ? "solver.davidson=1.0@1"
                                          : "solver.davidson=1.0"));
    DegradationScope notes;
    const dft::DavidsonResult result = dft::davidson(m, config);
    const std::vector<std::string> taken = notes.take();
    const bool ok = result.converged && !taken.empty();
    (capped ? row.capped_outcome : row.uncapped_outcome) =
        ok ? "ok+" + taken.front() : "FAIL";
    pass = pass && ok;
  }
  fault_clear();
  row.pass = pass;
  return row;
}

/// net.accept lives at the service boundary, not inside an Engine job:
/// drive a real loopback server and let the client's reconnect play the
/// role of the Engine's retry loop.
SweepRow sweep_net_accept() {
  SweepRow row;
  row.site = "net.accept";
  row.cls = FaultClass::kDevice;
  bool pass = true;
  for (const bool capped : {true, false}) {
    fault_install(
        FaultSpec::parse(capped ? "net.accept=1.0@1" : "net.accept=1.0"));
    net::HttpServer server(net::ServerConfig{},
                           [](const net::HttpRequest&) {
                             net::HttpResponse response;
                             response.body = "ok";
                             return response;
                           });
    server.start();
    const auto attempt_once = [&server] {
      try {
        net::HttpClient client("127.0.0.1", server.port());
        return client.get("/").status == 200;
      } catch (const NdftError&) {
        return false;  // connection dropped at accept
      }
    };
    bool ok;
    std::string outcome;
    if (capped) {
      // First connection dropped, the retry connects and is served.
      const bool first = attempt_once();
      const bool second = attempt_once();
      ok = !first && second && server.connections_dropped() == 1;
      outcome = strformat("%s@2", ok ? "ok" : "served-through-fault");
    } else {
      // Every connection dropped; nothing gets through.
      bool any_served = false;
      for (int i = 0; i < 3; ++i) any_served = attempt_once() || any_served;
      ok = !any_served && server.connections_dropped() == 3;
      outcome = ok ? "all-dropped@3" : "leaked-through";
    }
    server.shutdown();
    (capped ? row.capped_outcome : row.uncapped_outcome) =
        ok ? outcome : "FAIL:" + outcome;
    pass = pass && ok;
  }
  fault_clear();
  row.pass = pass;
  return row;
}

/// sim.port never throws: the dropped message is recovered *inside* the
/// simulation as a delayed retransmission, so there is no retry and no
/// degradation note. The contract is observability — the job stays Ok on
/// its first attempt, the delay count surfaces in the payload statistics
/// ("<group>.fault_delays"), and the simulated time never shrinks below
/// the fault-free run.
SweepRow sweep_sim_port() {
  SweepRow row;
  row.site = "sim.port";
  row.cls = FaultClass::kDevice;
  const auto run_once = [](const char* spec) {
    api::EngineConfig config;
    config.dispatch_threads = 0;
    config.system.sampled_ops_per_kernel = 20000;
    config.system.min_ops_per_core = 200;
    if (spec != nullptr) config.fault_spec = spec;
    api::Engine engine(config);
    api::SimulateJob job;
    job.atoms = 16;
    return engine.run(job);
  };
  const auto fault_delays = [](const api::JobResult& result) {
    double delays = 0.0;
    if (result.simulate) {
      constexpr const char* kLeaf = "fault_delays";
      const std::size_t n = std::strlen(kLeaf);
      for (const auto& [key, value] : result.simulate->stats) {
        if (key.size() > n && key.compare(key.size() - n, n, kLeaf) == 0) {
          delays += value;
        }
      }
    }
    return delays;
  };

  const api::JobResult clean = run_once(nullptr);
  bool pass = clean.ok() && fault_delays(clean) == 0.0;
  for (const bool capped : {true, false}) {
    const api::JobResult result =
        run_once(capped ? "sim.port=1.0@1" : "sim.port=1.0");
    const double delays = fault_delays(result);
    bool ok = result.ok() && result.engine.attempts == 1 &&
              result.simulate->total_ps >= clean.simulate->total_ps;
    // Capped: exactly the one injected drop; uncapped: every message.
    ok = ok && (capped ? delays == 1.0 : delays > 1.0);
    (capped ? row.capped_outcome : row.uncapped_outcome) =
        (ok ? "ok,delays=" : "FAIL:delays=") + strformat("%g", delays);
    pass = pass && ok;
  }
  row.pass = pass;
  return row;
}

bool transient(FaultClass cls) {
  return cls == FaultClass::kResource || cls == FaultClass::kDevice;
}

}  // namespace

int main(int argc, char** argv) try {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf("fault sweep over %zu sites%s\n\n", fault_sites().size(),
              smoke ? " (smoke)" : "");

  constexpr unsigned kMaxAttempts = 3;
  std::vector<SweepRow> rows;
  for (const FaultSite& site : fault_sites()) {
    if (std::strcmp(site.name, "solver.davidson") == 0) {
      rows.push_back(sweep_davidson());
      continue;
    }
    if (std::strcmp(site.name, "net.accept") == 0) {
      rows.push_back(sweep_net_accept());
      continue;
    }
    if (std::strcmp(site.name, "sim.port") == 0) {
      rows.push_back(sweep_sim_port());
      continue;
    }
    SweepRow row;
    row.site = site.name;
    row.cls = site.cls;
    bool pass = true;
    for (const bool capped : {true, false}) {
      api::EngineConfig config;
      config.dispatch_threads = 0;
      config.system.sampled_ops_per_kernel = 20000;
      config.system.min_ops_per_core = 200;
      config.max_attempts = kMaxAttempts;
      config.retry_backoff_ms = 0.1;
      config.fault_spec =
          std::string(site.name) + (capped ? "=1.0@1" : "=1.0");
      api::Engine engine(config);
      const api::JobResult result =
          engine.run(job_for_site(site.name, smoke));
      bool ok;
      std::string outcome;
      if (transient(site.cls)) {
        if (capped) {
          // One injected failure, then the retry succeeds.
          ok = result.ok() && result.engine.attempts == 2;
          outcome = strformat("ok@%u", result.engine.attempts);
        } else {
          // Every attempt fails: a classified transient error, with the
          // whole retry budget spent and recorded.
          ok = result.status == api::JobStatus::kFailed &&
               api::is_transient(result.error) &&
               result.engine.attempts == kMaxAttempts;
          outcome = strformat("%s@%u", api::to_string(result.error),
                              result.engine.attempts);
        }
      } else {
        // Degradable: the job succeeds and says how it degraded.
        ok = result.ok() && !result.degraded.empty();
        outcome = ok ? "ok+" + result.degraded.front()
                     : strformat("%s", api::to_string(result.status));
      }
      (capped ? row.capped_outcome : row.uncapped_outcome) =
          ok ? outcome : "FAIL:" + outcome;
      pass = pass && ok;
    }
    row.pass = pass;
    rows.push_back(row);
  }

  TextTable table({"site", "class", "capped @1", "uncapped", "verdict"});
  bool all_pass = true;
  for (const SweepRow& row : rows) {
    table.add_row({row.site, to_string(row.cls), row.capped_outcome,
                   row.uncapped_outcome, row.pass ? "pass" : "FAIL"});
    all_pass = all_pass && row.pass;
  }
  std::printf("%s\n", table.render().c_str());

  Json bench = Json::object();
  bench.set("bench", "fault_sweep");
  bench.set("meta", run_metadata_json());
  Json entries = Json::array();
  for (const SweepRow& row : rows) {
    Json entry = Json::object();
    entry.set("site", row.site);
    entry.set("class", to_string(row.cls));
    entry.set("capped", row.capped_outcome);
    entry.set("uncapped", row.uncapped_outcome);
    entry.set("pass", row.pass);
    entries.push_back(std::move(entry));
  }
  bench.set("sites", std::move(entries));
  const char* path = "BENCH_fault_sweep.json";
  if (std::FILE* file = std::fopen(path, "w")) {
    const std::string text = bench.dump(2);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("wrote %zu site records to %s\n", rows.size(), path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }
  if (!all_pass) {
    std::fprintf(stderr, "fault sweep: contract violation (see table)\n");
    return 1;
  }
  return 0;
} catch (const NdftError& error) {
  std::fprintf(stderr, "fault_sweep: %s\n", error.what());
  return 1;
}
