// Ablation A3 (Section IV-C): hierarchical communication (per-stack
// arbiters + SPM staging) versus flat remote reads. Simulates the
// pseudopotential sharing pattern: every NDP unit of every stack reads
// every remote atom block once.

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "ndp/ndp_system.hpp"
#include "runtime/shared_memory.hpp"

using namespace ndft;

namespace {

/// All units of all stacks read `reads_per_unit` remote blocks of
/// `block_bytes`; returns the makespan.
TimePs run_pattern(bool hierarchical, Bytes block_bytes,
                   unsigned reads_per_unit, Bytes* mesh_bytes) {
  sim::EventQueue queue;
  ndp::NdpSystem ndp("ndp", queue, ndp::NdpSystemConfig::table3());
  runtime::SharedMemoryConfig config;
  config.hierarchical = hierarchical;
  runtime::SharedMemoryManager shm("shm", queue, ndp, config);

  // One block per stack, owned by that stack's unit 0.
  const unsigned stacks = ndp.stack_count();
  const unsigned units = ndp.config().stack.units;
  std::vector<runtime::SharedBlock> blocks;
  blocks.reserve(stacks);
  for (unsigned s = 0; s < stacks; ++s) {
    blocks.push_back(shm.alloc_shared(block_bytes, s * units));
  }

  TimePs last = 0;
  for (unsigned s = 0; s < stacks; ++s) {
    for (unsigned u = 0; u < units; ++u) {
      for (unsigned r = 0; r < reads_per_unit; ++r) {
        const unsigned owner = (s + 1 + r) % stacks;  // always remote
        shm.read_remote(blocks[owner], block_bytes, s,
                        [&last](TimePs at) { last = std::max(last, at); });
      }
    }
  }
  queue.run();
  *mesh_bytes = shm.inter_stack_bytes();
  return last;
}

}  // namespace

int main() {
  std::printf("Ablation A3: hierarchical vs flat inter-stack "
              "communication\n");
  std::printf("(every unit reads remote pseudopotential blocks; the "
              "arbiter's staging filter\n serves repeat readers within a "
              "stack locally)\n\n");
  TextTable table({"block", "reads/unit", "flat time", "hier time",
                   "speedup", "mesh bytes flat", "mesh bytes hier"});
  for (const Bytes block : {Bytes{64} << 10, Bytes{256} << 10}) {
    for (const unsigned reads : {4u, 12u}) {
      Bytes flat_bytes = 0;
      Bytes hier_bytes = 0;
      const TimePs flat = run_pattern(false, block, reads, &flat_bytes);
      const TimePs hier = run_pattern(true, block, reads, &hier_bytes);
      table.add_row({format_bytes(block), strformat("%u", reads),
                     format_time(flat), format_time(hier),
                     format_speedup(static_cast<double>(flat) /
                                    static_cast<double>(hier)),
                     format_bytes(flat_bytes), format_bytes(hier_bytes)});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
