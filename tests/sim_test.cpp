// Unit tests for the discrete-event engine and statistics.

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "sim/event_queue.hpp"
#include "sim/sim_object.hpp"
#include "sim/stats.hpp"

namespace ndft::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(300, [&] { order.push_back(3); });
  queue.schedule_at(100, [&] { order.push_back(1); });
  queue.schedule_at(200, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 300u);
}

TEST(EventQueueTest, SameTimestampIsFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  queue.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(10, [&] {
    ++fired;
    queue.schedule_after(5, [&] { ++fired; });
  });
  queue.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.now(), 15u);
}

TEST(EventQueueTest, RejectsPastEvents) {
  EventQueue queue;
  queue.schedule_at(100, [] {});
  queue.run();
  EXPECT_THROW(queue.schedule_at(50, [] {}), NdftError);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(10, [&] { ++fired; });
  queue.schedule_at(100, [&] { ++fired; });
  queue.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 50u);
  EXPECT_EQ(queue.pending(), 1u);
  queue.run();
  EXPECT_EQ(fired, 2);
}

// run_until pins: now() lands exactly on the deadline (a clean clamp) —
// when events remain past it, when the queue drains early, and never
// backwards once time has passed the deadline.
TEST(EventQueueTest, RunUntilClampsExactlyToDeadlineWithEventsRemaining) {
  EventQueue queue;
  queue.schedule_at(10, [] {});
  queue.schedule_at(100, [] {});
  EXPECT_EQ(queue.run_until(50), 50u);
  EXPECT_EQ(queue.now(), 50u);  // not 10 (last event), not 100 (next event)
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesToDeadlineWhenQueueDrainsEarly) {
  EventQueue queue;
  queue.schedule_at(10, [] {});
  EXPECT_EQ(queue.run_until(75), 75u);
  EXPECT_EQ(queue.now(), 75u);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueueTest, RunUntilOnEmptyQueueStillAdvancesTime) {
  EventQueue queue;
  EXPECT_EQ(queue.run_until(40), 40u);
  EXPECT_EQ(queue.now(), 40u);
}

TEST(EventQueueTest, RunUntilNeverMovesTimeBackwards) {
  EventQueue queue;
  queue.schedule_at(100, [] {});
  queue.run();
  EXPECT_EQ(queue.now(), 100u);
  EXPECT_EQ(queue.run_until(50), 100u);  // past deadline: clamp is a no-op
  EXPECT_EQ(queue.now(), 100u);
}

TEST(EventQueueTest, RunUntilRunsEventsScheduledExactlyAtDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(50, [&] { ++fired; });
  queue.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now(), 50u);
}

TEST(EventQueueTest, CountsExecutedEvents) {
  EventQueue queue;
  for (int i = 0; i < 25; ++i) {
    queue.schedule_after(static_cast<TimePs>(i), [] {});
  }
  queue.run();
  EXPECT_EQ(queue.executed(), 25u);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue queue;
  TimePs inner_fired_at = 0;
  queue.schedule_at(100, [&] {
    queue.schedule_after(30, [&] { inner_fired_at = queue.now(); });
  });
  queue.run();
  EXPECT_EQ(inner_fired_at, 130u);
}

TEST(StatSetTest, AddAndGet) {
  StatSet stats;
  EXPECT_EQ(stats.get("missing"), 0.0);
  EXPECT_FALSE(stats.contains("missing"));
  stats.add("hits");
  stats.add("hits", 2.0);
  EXPECT_DOUBLE_EQ(stats.get("hits"), 3.0);
  stats.set("hits", 10.0);
  EXPECT_DOUBLE_EQ(stats.get("hits"), 10.0);
}

TEST(StatSetTest, MergePrefixed) {
  StatSet a;
  StatSet b;
  b.add("x", 5.0);
  a.merge_prefixed("child", b);
  EXPECT_DOUBLE_EQ(a.get("child.x"), 5.0);
  a.merge_prefixed("child", b);
  EXPECT_DOUBLE_EQ(a.get("child.x"), 10.0);  // merging accumulates
}

TEST(StatSetTest, RenderContainsEntries) {
  StatSet stats;
  stats.set("alpha", 1.5);
  const std::string out = stats.render();
  EXPECT_NE(out.find("alpha = 1.5"), std::string::npos);
}

TEST(HistogramTest, MeanMaxCount) {
  Histogram h(10.0, 10);
  h.record(5.0);
  h.record(15.0);
  h.record(25.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
  EXPECT_DOUBLE_EQ(h.max(), 25.0);
}

TEST(HistogramTest, PercentileFromBuckets) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.record(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.percentile(50), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(90), 90.0, 1.5);
  EXPECT_NEAR(h.percentile(100), 99.5, 1.0);
}

TEST(HistogramTest, OverflowGoesToLastBucket) {
  Histogram h(1.0, 4);
  h.record(1000.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h(1.0, 4);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(SimObjectTest, NameAndQueueAccess) {
  EventQueue queue;
  SimObject object("top.child", queue);
  EXPECT_EQ(object.name(), "top.child");
  EXPECT_EQ(object.now(), 0u);
  object.stats().add("events");
  EXPECT_DOUBLE_EQ(object.stats().get("events"), 1.0);
}

}  // namespace
}  // namespace ndft::sim
