// Reproduces Figure 8: speedup of NDFT and the GPU baseline over the CPU
// baseline across physical system scales Si_16 ... Si_2048.

#include <cstdio>

#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/ndft_system.hpp"

using namespace ndft;

int main() {
  std::printf("Fig. 8 reproduction: NDFT / GPU speedup over CPU vs system "
              "scale\n");
  std::printf("(paper: NDFT advantage grows with size, up to 5.33x at "
              "Si_2048)\n\n");
  const core::NdftSystem system;
  TextTable table({"system", "CPU time", "GPU speedup", "NDFT speedup"});
  for (const std::size_t atoms : {16, 32, 64, 128, 256, 1024, 2048}) {
    const dft::Workload workload = system.workload_for(atoms);
    const core::RunReport cpu =
        system.run(workload, core::ExecMode::kCpuBaseline);
    const core::RunReport gpu =
        system.run(workload, core::ExecMode::kGpuBaseline);
    const core::RunReport ndft = system.run(workload, core::ExecMode::kNdft);
    table.add_row({strformat("Si_%zu", atoms), format_time(cpu.total_ps()),
                   format_speedup(core::speedup(cpu, gpu)),
                   format_speedup(core::speedup(cpu, ndft))});
    std::fflush(stdout);
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
