// Tests for the unified kernel trace layer: recorder semantics (program
// order, nesting, regions, stages), JSON round trips, the measured /
// analytic workload agreement for real LR-TDDFT runs, bitwise trace
// determinism across pool widths, and the trace -> Workload conversion.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/kernel_trace.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "dft/basis.hpp"
#include "dft/epm.hpp"
#include "dft/fft.hpp"
#include "dft/lattice.hpp"
#include "dft/linalg.hpp"
#include "dft/lrtddft.hpp"
#include "dft/scf.hpp"
#include "dft/workload.hpp"

namespace ndft::dft {
namespace {

RealMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = prng.next_double(-1.0, 1.0);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

ComplexMatrix random_hermitian(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  ComplexMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = Complex{prng.next_double(-1.0, 1.0), 0.0};
    for (std::size_t j = i + 1; j < n; ++j) {
      const Complex v{prng.next_double(-1.0, 1.0),
                      prng.next_double(-1.0, 1.0)};
      m(i, j) = v;
      m(j, i) = std::conj(v);
    }
  }
  return m;
}

// ------------------------------------------------------- recorder semantics

TEST(TraceRecorderTest, KernelEntriesEmitInProgramOrder) {
  TraceRecorder recorder;
  {
    TraceScope scope(recorder);
    EXPECT_TRUE(trace_active());
    RealMatrix a = random_symmetric(24, 1);
    RealMatrix b = random_symmetric(24, 2);
    RealMatrix c;
    gemm(a, b, c);
    syevd(a);
    Grid3 grid(8, 8, 8);
    fft3d(grid, FftDirection::kForward);
  }
  EXPECT_FALSE(trace_active());
  const KernelTrace trace = recorder.take();
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.events[0].cls, KernelClass::kGemm);
  EXPECT_EQ(trace.events[0].name, "gemm");
  EXPECT_EQ(trace.events[0].dims[0], 24u);
  EXPECT_EQ(trace.events[0].dims[2], 24u);
  EXPECT_EQ(trace.events[0].flops, 2ull * 24 * 24 * 24);
  EXPECT_GE(trace.events[0].host_ms, 0.0);
  EXPECT_EQ(trace.events[1].cls, KernelClass::kSyevd);
  EXPECT_EQ(trace.events[1].name, "syevd");
  EXPECT_EQ(trace.events[2].cls, KernelClass::kFft);
  EXPECT_EQ(trace.events[2].dims[0], 8u);
  EXPECT_EQ(trace.events[2].flops, fft_flops(512));
}

TEST(TraceRecorderTest, NestedKernelsFoldIntoOutermost) {
  // heev runs syevd (which runs gemm) internally; only the outermost
  // entry may emit.
  TraceRecorder recorder;
  {
    TraceScope scope(recorder);
    heev(random_hermitian(20, 3));
  }
  const KernelTrace trace = recorder.take();
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].name, "heev");
  EXPECT_EQ(trace.events[0].cls, KernelClass::kSyevd);
  // Dims and costs follow the 2n x 2n real embedding the solve runs.
  EXPECT_EQ(trace.events[0].dims[0], 40u);
  EXPECT_EQ(trace.events[0].flops, syevd_cost(40).flops);
}

TEST(TraceRecorderTest, RegionsAggregateAndSuppressInnerKernels) {
  TraceRecorder recorder;
  {
    TraceScope scope(recorder);
    TraceRegion region(KernelClass::kFft, "batch");
    region.add_work(1234, 5678);
    region.set_dims(4, 5, 6);
    region.set_io(10, 20);
    Grid3 grid(8, 8, 8);
    fft3d(grid, FftDirection::kForward);  // suppressed by the region
  }
  const KernelTrace trace = recorder.take();
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].name, "batch");
  EXPECT_EQ(trace.events[0].flops, 1234u);
  EXPECT_EQ(trace.events[0].bytes, 5678u);
  EXPECT_EQ(trace.events[0].dims[1], 5u);
  EXPECT_EQ(trace.events[0].input_bytes, 10u);
  EXPECT_EQ(trace.events[0].output_bytes, 20u);
}

TEST(TraceRecorderTest, StageLabelsAttachAndRestore) {
  TraceRecorder recorder;
  {
    TraceScope scope(recorder);
    RealMatrix a = random_symmetric(16, 4);
    {
      TraceStage stage("alpha");
      syevd(a);
      {
        TraceStage inner("beta");
        syevd(a);
      }
      syevd(a);
    }
    syevd(a);
  }
  const KernelTrace trace = recorder.take();
  ASSERT_EQ(trace.events.size(), 4u);
  EXPECT_EQ(trace.events[0].stage, "alpha");
  EXPECT_EQ(trace.events[1].stage, "beta");
  EXPECT_EQ(trace.events[2].stage, "alpha");
  EXPECT_EQ(trace.events[3].stage, "");
}

TEST(TraceRecorderTest, UntracedThreadRecordsNothing) {
  EXPECT_FALSE(trace_active());
  // All hooks are no-ops without a scope; this must simply not crash and
  // not leak state into a later scope.
  RealMatrix a = random_symmetric(16, 5);
  syevd(a);
  trace_add_work(1, 1);
  trace_set_system(8, 100, 1000);
  TraceRecorder recorder;
  {
    TraceScope scope(recorder);
  }
  EXPECT_TRUE(recorder.take().events.empty());
}

TEST(KernelTraceTest, JsonRoundTripIsLossless) {
  KernelTrace trace;
  trace.atoms = 8;
  trace.basis_size = 181;
  trace.grid_points = 8000;
  trace.pool_threads = 4;
  TraceEvent event;
  event.cls = KernelClass::kSyevd;
  event.name = "syevd";
  event.stage = "scf[3]";
  event.flops = 123456789;
  event.bytes = 987654;
  event.input_bytes = 111;
  event.output_bytes = 222;
  event.dims[0] = 181;
  event.dims[1] = 181;
  event.host_ms = 12.375;
  trace.events.push_back(event);
  const std::string dumped = trace.to_json().dump(2);
  const KernelTrace rebuilt = KernelTrace::from_json(Json::parse(dumped));
  EXPECT_EQ(rebuilt.to_json().dump(2), dumped);
  EXPECT_EQ(rebuilt.events[0].flops, event.flops);
  EXPECT_EQ(rebuilt.atoms, 8u);
}

// ------------------------------------------- trace vs analytic agreement

/// Records one real LR-TDDFT run (4x4 excitation window).
KernelTrace record_lrtddft(std::size_t atoms) {
  const Crystal crystal = Crystal::silicon_supercell(atoms);
  const PlaneWaveBasis basis(crystal, 2.25);
  LrTddftConfig config;
  config.valence_window = 4;
  config.conduction_window = 4;
  const GroundState ground =
      solve_epm(basis, 2 * atoms + config.conduction_window + 4);
  TraceRecorder recorder;
  {
    TraceScope scope(recorder);
    solve_lrtddft(basis, ground, config);
  }
  return recorder.take();
}

/// The analytic descriptors evaluated at the real run's dimensions.
Workload analytic_model(std::size_t atoms, const KernelTrace& trace) {
  SystemDims dims;
  dims.atoms = atoms;
  dims.valence_bands = 2 * atoms;
  dims.valence_window = 4;
  dims.conduction_window = 4;
  dims.pairs = 16;
  // The functional solver diagonalises the pair space through the 2n
  // real embedding (heev), so the comparable SYEVD dimension is 2*pairs.
  dims.subspace = 2 * dims.pairs;
  dims.davidson_block = 16;
  dims.grid_points = trace.grid_points;
  dims.basis_size = trace.basis_size;
  return Workload::lrtddft_iteration(dims);
}

Flops model_flops(const Workload& model, KernelClass cls) {
  Flops total = 0;
  for (const KernelWork& k : model.kernels) {
    if (k.cls == cls) total += k.flops;
  }
  return total;
}

Bytes model_bytes(const Workload& model, KernelClass cls) {
  Bytes total = 0;
  for (const KernelWork& k : model.kernels) {
    if (k.cls == cls) total += k.l1_bytes;
  }
  return total;
}

double ratio(double measured, double analytic) {
  return analytic == 0.0 ? 0.0 : measured / analytic;
}

TEST(TraceAgreementTest, LrtddftTraceMatchesAnalyticModel) {
  // Documented tolerances (docs/CODESIGN.md): the closed-form model
  // describes one iteration's pair-space work, while the real run also
  // transforms the window orbitals and the full-valence density, so the
  // FFT class may exceed the model by the extra-transform ratio; the
  // streaming and eigensolver classes must match tightly.
  for (const std::size_t atoms : {std::size_t{8}, std::size_t{16}}) {
    const KernelTrace trace = record_lrtddft(atoms);
    ASSERT_FALSE(trace.events.empty());
    EXPECT_EQ(trace.atoms, atoms);
    const Workload model = analytic_model(atoms, trace);

    // Face-splitting + kernel application: 10 flops and 112 bytes per
    // pair-point on both sides.
    EXPECT_GT(ratio(static_cast<double>(trace.flops_of(KernelClass::kFaceSplit)),
                    static_cast<double>(model_flops(model, KernelClass::kFaceSplit))),
              0.5)
        << "atoms=" << atoms;
    EXPECT_LT(ratio(static_cast<double>(trace.flops_of(KernelClass::kFaceSplit)),
                    static_cast<double>(model_flops(model, KernelClass::kFaceSplit))),
              2.0)
        << "atoms=" << atoms;
    EXPECT_GT(ratio(static_cast<double>(trace.bytes_of(KernelClass::kFaceSplit)),
                    static_cast<double>(model_bytes(model, KernelClass::kFaceSplit))),
              0.5)
        << "atoms=" << atoms;
    EXPECT_LT(ratio(static_cast<double>(trace.bytes_of(KernelClass::kFaceSplit)),
                    static_cast<double>(model_bytes(model, KernelClass::kFaceSplit))),
              2.0)
        << "atoms=" << atoms;

    // FFT: the model covers the pair transforms; the real run adds the
    // orbital/density transforms (bounded by 4x for these windows).
    const double fft_ratio =
        ratio(static_cast<double>(trace.flops_of(KernelClass::kFft)),
              static_cast<double>(model_flops(model, KernelClass::kFft)));
    EXPECT_GT(fft_ratio, 1.0) << "atoms=" << atoms;
    EXPECT_LT(fft_ratio, 4.0) << "atoms=" << atoms;

    // Response GEMMs: the model's Davidson-block contraction against the
    // real run's two kernel contractions.
    const double gemm_ratio =
        ratio(static_cast<double>(trace.flops_of(KernelClass::kGemm)),
              static_cast<double>(model_flops(model, KernelClass::kGemm)));
    EXPECT_GT(gemm_ratio, 0.25) << "atoms=" << atoms;
    EXPECT_LT(gemm_ratio, 4.0) << "atoms=" << atoms;

    // Eigensolve: the embedded Casida diagonalisation.
    const double syevd_ratio =
        ratio(static_cast<double>(trace.flops_of(KernelClass::kSyevd)),
              static_cast<double>(model_flops(model, KernelClass::kSyevd)));
    EXPECT_GT(syevd_ratio, 0.5) << "atoms=" << atoms;
    EXPECT_LT(syevd_ratio, 2.0) << "atoms=" << atoms;

    // Kernel counts: one aggregated face-split batch, at least the pair
    // FFT batch, both kernel contractions, one eigensolve.
    EXPECT_GE(trace.count_of(KernelClass::kFft), 1u);
    EXPECT_GE(trace.count_of(KernelClass::kGemm), 2u);
    EXPECT_EQ(trace.count_of(KernelClass::kSyevd), 1u);
  }
}

// ------------------------------------------------------------ determinism

/// Everything except the measured time, for bitwise comparison.
using EventShape =
    std::tuple<KernelClass, std::string, std::string, Flops, Bytes, Bytes,
               Bytes, std::uint64_t, std::uint64_t, std::uint64_t>;

std::vector<EventShape> shape_of(const KernelTrace& trace) {
  std::vector<EventShape> shapes;
  shapes.reserve(trace.events.size());
  for (const TraceEvent& e : trace.events) {
    shapes.emplace_back(e.cls, e.name, e.stage, e.flops, e.bytes,
                        e.input_bytes, e.output_bytes, e.dims[0], e.dims[1],
                        e.dims[2]);
  }
  return shapes;
}

TEST(TraceDeterminismTest, TraceShapeBitwiseIdenticalAcrossPoolWidths) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.0);
  LrTddftConfig config;
  config.valence_window = 2;
  config.conduction_window = 2;
  const GroundState ground = solve_epm(basis, 16 + 8);

  ThreadPool& pool = ThreadPool::instance();
  const std::size_t original = pool.threads();
  std::vector<std::vector<EventShape>> shapes;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    pool.resize(threads);
    TraceRecorder recorder;
    {
      TraceScope scope(recorder);
      solve_lrtddft(basis, ground, config);
    }
    shapes.push_back(shape_of(recorder.take()));
  }
  pool.resize(original);
  ASSERT_FALSE(shapes[0].empty());
  EXPECT_EQ(shapes[0], shapes[1]);
  EXPECT_EQ(shapes[0], shapes[2]);
}

// ------------------------------------------------- workload from the trace

TEST(WorkloadFromTraceTest, ScfTraceBecomesSchedulableWorkload) {
  const Crystal crystal = Crystal::silicon_supercell(8);
  const PlaneWaveBasis basis(crystal, 2.0);
  ScfConfig config;
  config.max_iterations = 2;
  TraceRecorder recorder;
  {
    TraceScope scope(recorder);
    solve_scf(basis, config);
  }
  const KernelTrace trace = recorder.take();
  ASSERT_FALSE(trace.events.empty());
  EXPECT_EQ(trace.atoms, 8u);
  EXPECT_EQ(trace.basis_size, basis.size());
  EXPECT_EQ(trace.grid_points, basis.fft_size());

  const Workload workload = Workload::from_trace(trace);
  EXPECT_EQ(workload.dims.atoms, 8u);
  EXPECT_EQ(workload.dims.basis_size, basis.size());
  EXPECT_EQ(workload.dims.grid_points, basis.fft_size());
  ASSERT_FALSE(workload.kernels.empty());
  EXPECT_LE(workload.kernels.size(), trace.events.size());
  for (const KernelWork& k : workload.kernels) {
    EXPECT_GT(k.dram_bytes, 0u) << k.name;
    EXPECT_GE(k.l1_bytes, k.dram_bytes) << k.name;
    if (k.cls == KernelClass::kSyevd || k.cls == KernelClass::kGemm) {
      EXPECT_EQ(k.pattern, AccessPattern::kBlocked) << k.name;
    }
    if (k.cls == KernelClass::kFft) {
      EXPECT_EQ(k.pattern, AccessPattern::kStrided) << k.name;
    }
  }
  // Trace order is pipeline order: the per-geometry v_ion tabulation
  // comes first, an eigensolve appears in every iteration.
  EXPECT_NE(workload.kernels[0].name.find("v_ion"), std::string::npos);
  std::size_t syevds = 0;
  for (const KernelWork& k : workload.kernels) {
    if (k.cls == KernelClass::kSyevd) ++syevds;
  }
  EXPECT_EQ(syevds, 2u);  // one per SCF iteration
}

TEST(WorkloadFromTraceTest, RejectsTracesWithoutWork) {
  EXPECT_THROW(Workload::from_trace(KernelTrace{}), NdftError);
  KernelTrace markers;
  TraceEvent marker;
  marker.name = "empty";
  markers.events.push_back(marker);
  EXPECT_THROW(Workload::from_trace(markers), NdftError);
}

}  // namespace
}  // namespace ndft::dft
