// ndft_run: command-line driver for one-off jobs through the Engine API.
//
//   ndft_run --atoms 256 --mode ndft
//   ndft_run --atoms 64 --mode all --csv
//   ndft_run --atoms 16 --mode ndft --json
//   ndft_run --atoms 1024 --plan-only --granularity kernel
//
// Modes: cpu | gpu | ndp | ndft | all. With --csv the per-kernel
// breakdown is emitted as comma-separated values for plotting; with
// --json the full JobResult is emitted under the ndft.job_result.v1
// schema (an array when --mode all produces several results).

#include <cstdio>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "common/str_util.hpp"
#include "common/table.hpp"
#include "core/cli.hpp"

using namespace ndft;

namespace {

/// Execution modes a --mode name stands for ("all" fans out like the
/// quickstart comparison: CPU, GPU, NDFT).
std::vector<core::ExecMode> modes_from(const std::string& name) {
  if (name == "cpu") return {core::ExecMode::kCpuBaseline};
  if (name == "gpu") return {core::ExecMode::kGpuBaseline};
  if (name == "ndp") return {core::ExecMode::kNdpOnly};
  if (name == "ndft") return {core::ExecMode::kNdft};
  if (name == "all") {
    return {core::ExecMode::kCpuBaseline, core::ExecMode::kGpuBaseline,
            core::ExecMode::kNdft};
  }
  throw NdftError("unknown mode: " + name + " (cpu|gpu|ndp|ndft|all)");
}

runtime::Granularity granularity_from(const std::string& name) {
  if (name == "instruction") return runtime::Granularity::kInstruction;
  if (name == "block") return runtime::Granularity::kBasicBlock;
  if (name == "function") return runtime::Granularity::kFunction;
  if (name == "kernel") return runtime::Granularity::kKernel;
  throw NdftError("unknown granularity: " + name);
}

void emit_table(const api::SimulatePayload& sim) {
  std::printf("%s\n",
              core::render_kernel_table(sim.mode, sim.atoms, sim.kernels,
                                        sim.total_ps, sim.sched_overhead_ps,
                                        sim.memory_energy_mj).c_str());
}

void emit_csv(const api::SimulatePayload& sim) {
  TextTable table({"machine", "kernel", "class", "device", "time_ps"});
  for (const core::KernelTime& k : sim.kernels) {
    table.add_row({core::to_string(sim.mode), k.name, to_string(k.cls),
                   to_string(k.device),
                   strformat("%llu",
                             static_cast<unsigned long long>(k.time_ps))});
  }
  std::printf("%s", table.render_csv().c_str());
}

/// Unwraps a result or throws with its error taxonomy; the throw unwinds
/// past the Engine (joining its dispatchers) before main reports it.
const api::JobResult& check(const api::JobResult& result) {
  if (!result.ok()) {
    std::string message =
        strformat("job %s failed (%s): %s", result.engine.kind.c_str(),
                  to_string(result.error), result.error_message.c_str());
    for (const std::string& detail : result.error_details) {
      message += "\n  - " + detail;
    }
    throw NdftError(message);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const core::CliArgs args(argc, argv);
    if (args.has("help")) {
      std::printf("usage: ndft_run [--atoms N] [--mode cpu|gpu|ndp|ndft|all]"
                  " [--csv] [--json] [--plan-only] [--granularity g]"
                  " [--ops N]\n");
      return 0;
    }
    const auto atoms =
        static_cast<std::size_t>(args.get_int("atoms", 64));
    const std::string mode_name = args.get("mode", "ndft");
    const bool csv = args.has("csv");
    const bool json = args.has("json");
    const auto sampled_ops = static_cast<std::size_t>(
        args.has("ops") ? args.get_int("ops", 150000) : 0);

    api::Engine engine;

    if (args.has("plan-only")) {
      api::PlanJob job;
      job.atoms = atoms;
      job.granularity =
          granularity_from(args.get("granularity", "function"));
      const api::JobResult result = check(engine.run(job));
      if (json) {
        std::printf("%s\n", result.to_json().dump(2).c_str());
        return 0;
      }
      const api::PlanPayload& plan = *result.plan;
      for (const api::PlacementPayload& p : plan.placements) {
        std::printf("%-22s -> %-4s%s\n", p.kernel.c_str(),
                    to_string(p.device), p.crossing ? "  (crossing)" : "");
      }
      std::printf("estimated total %s, overhead %s (%.1f %%)\n",
                  format_time(plan.est_total_ps).c_str(),
                  format_time(plan.est_overhead_ps).c_str(),
                  plan.overhead_fraction() * 100.0);
      return 0;
    }

    // Simulation path: submit every requested machine as one async batch
    // and drain it through the engine queue.
    std::vector<api::JobRequest> batch;
    for (const core::ExecMode mode : modes_from(mode_name)) {
      api::SimulateJob job;
      job.atoms = atoms;
      job.mode = mode;
      job.sampled_ops = sampled_ops;
      batch.emplace_back(job);
    }
    std::vector<api::JobHandle> handles =
        engine.submit_batch(std::move(batch));

    std::vector<api::JobResult> results;
    for (const api::JobHandle& handle : handles) {
      results.push_back(check(handle.wait()));
    }

    if (json) {
      if (results.size() == 1) {
        std::printf("%s\n", results.front().to_json().dump(2).c_str());
      } else {
        Json array = Json::array();
        for (const api::JobResult& result : results) {
          array.push_back(result.to_json());
        }
        std::printf("%s\n", array.dump(2).c_str());
      }
      return 0;
    }
    for (const api::JobResult& result : results) {
      if (csv) {
        emit_csv(*result.simulate);
      } else {
        emit_table(*result.simulate);
      }
    }
    if (!csv && results.size() > 1) {
      const double ndft =
          static_cast<double>(results.back().simulate->total_ps);
      std::printf("NDFT speedup: %s vs CPU, %s vs GPU\n",
                  format_speedup(
                      static_cast<double>(results[0].simulate->total_ps) /
                      ndft).c_str(),
                  format_speedup(
                      static_cast<double>(results[1].simulate->total_ps) /
                      ndft).c_str());
    }
    return 0;
  } catch (const NdftError& error) {
    std::fprintf(stderr, "ndft_run: %s\n", error.what());
    return 1;
  }
}
