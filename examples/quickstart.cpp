// Quickstart: one Engine, one batch of jobs — the schedule NDFT picks,
// the Fig. 7-style machine comparison, and the headline speedups for a
// small silicon system, all through the job API.
//
//   ./quickstart [atoms]        (default Si_64; must be a multiple of 8)

#include <cstdio>
#include <cstdlib>

#include "api/engine.hpp"
#include "common/str_util.hpp"

using namespace ndft;

int main(int argc, char** argv) {
  std::size_t atoms = 64;
  if (argc > 1) {
    atoms = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
  }

  // 1. Build the engine with the paper's Table III configuration. It owns
  //    the machine template and the shared kernel thread pool.
  api::Engine engine;

  // 2. Inspect the schedule NDFT's cost-aware offloader chooses.
  api::PlanJob plan_job;
  plan_job.atoms = atoms;
  const api::JobResult planned = engine.run(plan_job);
  if (!planned.ok()) {
    std::fprintf(stderr, "plan failed: %s\n", planned.error_message.c_str());
    for (const std::string& detail : planned.error_details) {
      std::fprintf(stderr, "  - %s\n", detail.c_str());
    }
    return 1;
  }
  const api::PlanPayload& plan = *planned.plan;
  std::printf("NDFT schedule for Si_%zu (function granularity, "
              "%u crossings, est. overhead %s):\n",
              atoms, plan.crossings,
              format_time(plan.est_overhead_ps).c_str());
  for (const api::PlacementPayload& p : plan.placements) {
    std::printf("  %-22s -> %s\n", p.kernel.c_str(), to_string(p.device));
  }
  std::printf("\n");

  // 3. Simulate the iteration on each machine: one async batch through
  //    the engine queue.
  std::vector<api::JobRequest> batch;
  for (const core::ExecMode mode :
       {core::ExecMode::kCpuBaseline, core::ExecMode::kGpuBaseline,
        core::ExecMode::kNdft}) {
    api::SimulateJob job;
    job.atoms = atoms;
    job.mode = mode;
    batch.emplace_back(job);
  }
  std::vector<api::JobHandle> handles =
      engine.submit_batch(std::move(batch));

  std::vector<api::SimulatePayload> reports;
  for (api::JobHandle& handle : handles) {
    const api::JobResult& result = handle.wait();
    if (!result.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   result.error_message.c_str());
      return 1;
    }
    reports.push_back(*result.simulate);
  }

  for (const api::SimulatePayload& report : reports) {
    std::printf("%s on Si_%zu: total %s", core::to_string(report.mode),
                report.atoms, format_time(report.total_ps).c_str());
    if (report.memory_energy_mj > 0.0) {
      std::printf(", memory energy %.2f mJ", report.memory_energy_mj);
    }
    std::printf("\n");
    for (const core::KernelTime& k : report.kernels) {
      std::printf("  %-22s %-4s %s\n", k.name.c_str(), to_string(k.device),
                  format_time(k.time_ps).c_str());
    }
    std::printf("\n");
  }

  // 4. Headline speedups straight off the payloads.
  const double cpu = static_cast<double>(reports[0].total_ps);
  const double gpu = static_cast<double>(reports[1].total_ps);
  const double ndft = static_cast<double>(reports[2].total_ps);
  std::printf("NDFT speedup: %s vs CPU, %s vs GPU\n",
              format_speedup(cpu / ndft).c_str(),
              format_speedup(gpu / ndft).c_str());
  std::printf("(%llu jobs executed by the engine)\n",
              static_cast<unsigned long long>(engine.jobs_completed()));
  return 0;
}
