#include "dft/kpoints.hpp"

#include <cmath>

#include "common/kernel_trace.hpp"
#include "common/str_util.hpp"
#include "dft/linalg.hpp"

namespace ndft::dft {

Crystal silicon_primitive() {
  const double a0 = kSiliconLatticeBohr;
  const Vec3 a1{0.0, a0 / 2.0, a0 / 2.0};
  const Vec3 a2{a0 / 2.0, 0.0, a0 / 2.0};
  const Vec3 a3{a0 / 2.0, a0 / 2.0, 0.0};
  const Vec3 tau{a0 / 8.0, a0 / 8.0, a0 / 8.0};
  return Crystal(a1, a2, a3, {tau, tau * -1.0});
}

std::vector<KPoint> fcc_kpath(double a0, unsigned segments) {
  NDFT_REQUIRE(segments >= 1, "need at least one point per leg");
  const double unit = 2.0 * std::numbers::pi / a0;
  const Vec3 gamma{0.0, 0.0, 0.0};
  const Vec3 x{0.0, unit, 0.0};                       // zone boundary
  const Vec3 l{unit / 2.0, unit / 2.0, unit / 2.0};
  const Vec3 k_point{0.75 * unit, 0.75 * unit, 0.0};  // K

  const struct Leg {
    Vec3 from;
    Vec3 to;
    const char* from_label;
    const char* to_label;
  } legs[] = {{l, gamma, "L", "Gamma"},
              {gamma, x, "Gamma", "X"},
              {x, k_point, "X", "K"},
              {k_point, gamma, "K", "Gamma"}};

  std::vector<KPoint> path;
  for (const Leg& leg : legs) {
    for (unsigned s = 0; s < segments; ++s) {
      const double t = static_cast<double>(s) / segments;
      KPoint kp;
      kp.k = leg.from + (leg.to - leg.from) * t;
      if (s == 0) {
        kp.label = leg.from_label;
      }
      path.push_back(kp);
    }
  }
  KPoint last;
  last.k = gamma;
  last.label = "Gamma";
  path.push_back(last);
  return path;
}

std::vector<KPoint> monkhorst_pack(const Crystal& crystal, unsigned n1,
                                   unsigned n2, unsigned n3) {
  NDFT_REQUIRE(n1 > 0 && n2 > 0 && n3 > 0, "grid dimensions must be >= 1");
  std::vector<KPoint> grid;
  grid.reserve(static_cast<std::size_t>(n1) * n2 * n3);
  const double weight = 1.0 / (static_cast<double>(n1) * n2 * n3);
  for (unsigned i = 0; i < n1; ++i) {
    for (unsigned j = 0; j < n2; ++j) {
      for (unsigned k = 0; k < n3; ++k) {
        // Monkhorst-Pack fractional coordinates (2r - n - 1) / 2n.
        const double f1 = (2.0 * i + 1.0 - n1) / (2.0 * n1);
        const double f2 = (2.0 * j + 1.0 - n2) / (2.0 * n2);
        const double f3 = (2.0 * k + 1.0 - n3) / (2.0 * n3);
        KPoint kp;
        kp.k = crystal.b1() * f1 + crystal.b2() * f2 + crystal.b3() * f3;
        kp.weight = weight;
        grid.push_back(kp);
      }
    }
  }
  return grid;
}

BandsAtK solve_epm_at_k(const PlaneWaveBasis& basis, const KPoint& kpoint,
                        std::size_t bands) {
  const std::size_t n = basis.size();
  NDFT_REQUIRE(n > 0, "empty plane-wave basis");
  const auto& g = basis.gvectors();

  RealMatrix hamiltonian(n, n);
  {
    TraceRegion region(KernelClass::kOther, "bands.assembly");
    region.set_dims(n, n, 0);
    region.add_work(static_cast<Flops>(n) * n * 8,
                    static_cast<Bytes>(n) * n * sizeof(double));
    region.set_io(0, static_cast<Bytes>(n) * n * sizeof(double));
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 kg = kpoint.k + g[i].g;
      hamiltonian(i, i) = 0.5 * kg.norm2();
      for (std::size_t j = i + 1; j < n; ++j) {
        const double v = epm_potential(basis.crystal(), g[i], g[j]);
        hamiltonian(i, j) = v;
        hamiltonian(j, i) = v;
      }
    }
  }
  EigenResult eigen = syevd(hamiltonian);

  BandsAtK result;
  result.kpoint = kpoint;
  const std::size_t keep = bands == 0 ? n : std::min(bands, n);
  result.energies_ha.assign(
      eigen.eigenvalues.begin(),
      eigen.eigenvalues.begin() + static_cast<std::ptrdiff_t>(keep));
  return result;
}

std::vector<BandsAtK> band_structure(const PlaneWaveBasis& basis,
                                     const std::vector<KPoint>& path,
                                     std::size_t bands) {
  trace_set_system(basis.crystal().atom_count(), basis.size(),
                   basis.fft_size());
  std::vector<BandsAtK> result;
  result.reserve(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    const KPoint& kp = path[i];
    const TraceStage trace_stage(
        trace_active()
            ? strformat("bands[%zu]%s%s", i, kp.label.empty() ? "" : ":",
                        kp.label.c_str())
            : std::string());
    result.push_back(solve_epm_at_k(basis, kp, bands));
  }
  return result;
}

GapSummary find_gap(const std::vector<BandsAtK>& bands,
                    std::size_t valence) {
  NDFT_REQUIRE(!bands.empty(), "no k-points solved");
  GapSummary summary;
  summary.vbm_ha = -1e18;
  summary.cbm_ha = 1e18;
  for (const BandsAtK& at_k : bands) {
    NDFT_REQUIRE(at_k.energies_ha.size() > valence,
                 "need at least one conduction band per k-point");
    const double vbm = at_k.energies_ha[valence - 1];
    const double cbm = at_k.energies_ha[valence];
    if (vbm > summary.vbm_ha) {
      summary.vbm_ha = vbm;
      summary.vbm_label = at_k.kpoint.label;
    }
    if (cbm < summary.cbm_ha) {
      summary.cbm_ha = cbm;
      summary.cbm_label = at_k.kpoint.label;
    }
  }
  return summary;
}

}  // namespace ndft::dft
